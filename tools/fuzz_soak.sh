#!/bin/sh
# Long-running differential-fuzz soak under both sanitizer builds.
#
#   tools/fuzz_soak.sh [MINUTES] [BUILD_ROOT]
#
# Configures an ASan+UBSan build and a TSan build (under BUILD_ROOT,
# default ./build-soak), builds each, runs the `robustness`, `resilience`,
# `native` and `serve` ctest labels (guarded execution, checkpoint
# hardening, fault-injection supervisor, native AOT region dispatch — the
# native artifacts are compiled with the same sanitizer flags, so the
# dlopen'd regions run instrumented too — and the multi-session run-
# quantum scheduler), then runs a wall-clock fuzz soak with the resilience
# sweep and a 3-session serve sweep enabled (MINUTES per sanitizer,
# default 10, split across the three built-in targets). Any divergence —
# i.e. any repro bundle emitted, a failing labeled test, or a sanitizer
# report aborting the run — fails the script. Companion to
# tools/bench_compare.py on the performance side.
set -eu

MINUTES="${1:-10}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${2:-$ROOT/build-soak}"
SECONDS_PER_TARGET=$(( MINUTES * 60 / 3 ))
[ "$SECONDS_PER_TARGET" -ge 1 ] || SECONDS_PER_TARGET=1
STATUS=0

for SAN in ASAN TSAN; do
  BUILD="$BUILD_ROOT/$(echo "$SAN" | tr '[:upper:]' '[:lower:]')"
  echo "=== configuring $SAN build in $BUILD ==="
  cmake -B "$BUILD" -S "$ROOT" "-DLISASIM_$SAN=ON" > /dev/null
  cmake --build "$BUILD" -j "$(nproc)" > /dev/null
  for LABEL in robustness resilience native serve; do
    echo "=== $SAN ctest -L $LABEL ==="
    if ! ctest --test-dir "$BUILD" -L "$LABEL" --output-on-failure \
        -j "$(nproc)" > "$BUILD/ctest-$LABEL.log" 2>&1; then
      echo "FAIL: $SAN ctest -L $LABEL (see $BUILD/ctest-$LABEL.log)"
      tail -40 "$BUILD/ctest-$LABEL.log"
      STATUS=1
    fi
  done
  for TARGET in tinydsp c54x c62x; do
    REPROS="$BUILD/fuzz-repros-$TARGET"
    rm -rf "$REPROS"
    echo "=== $SAN soak @$TARGET (${SECONDS_PER_TARGET}s) ==="
    if ! "$BUILD/tools/lisasim-fuzz" "@$TARGET" --resilience --serve 3 \
        --soak "$SECONDS_PER_TARGET" --stats --repro-dir "$REPROS"; then
      echo "FAIL: $SAN soak on @$TARGET reported a divergence or crashed"
      STATUS=1
    fi
    if [ -d "$REPROS" ] && [ -n "$(ls -A "$REPROS" 2>/dev/null)" ]; then
      echo "FAIL: repro bundles under $REPROS:"
      ls "$REPROS"
      STATUS=1
    fi
  done
done

if [ "$STATUS" = "0" ]; then
  echo "fuzz_soak: clean ($MINUTES minutes per sanitizer)"
fi
exit "$STATUS"
