// lisasim-serve — simulation-as-a-service driver over the run-quantum
// SessionManager (src/serve).
//
//   lisasim-serve <model> --jobs FILE [options]      batch mode
//   lisasim-serve <model> --interactive [options]    REPL on stdin
//   lisasim-serve <model> --listen PATH [options]    REPL on a unix socket
//
// <model> is a path to a machine description, or one of the built-in
// models "@tinydsp" / "@c54x" / "@c62x". All sessions share the model,
// the table cache and (for the native tier) the module registry; state
// is private per session.
//
// Job file format — blank lines and '#' comments ignored:
//
//   # scheduler directives (anywhere in the file; last one wins)
//   threads 4
//   quantum 8192
//   max-resident 16
//   evict-dir /tmp/serve-evict
//   cache-dir /tmp/serve-artifacts
//   native-blocking
//
//   # one session per line: name, program, then key=value options
//   session fir0 @fir level=static
//   session fir-fleet @fir level=static copies=32
//   session smc @smc level=static guard=recompile
//   session mine path/to/prog.asm level=trace max-cycles=100000 watchdog=1000000
//
// Programs: @fir | @adpcm | @gsm | @smc (built-in workload generators;
// @smc picks the model's SMC variant) or a path to an assembly file.
// Session keys: level=interp|cached|dynamic|static|trace|native,
// guard=off|recompile|fallback, copies=N (N sessions sharing one loaded
// program image), max-cycles=N, watchdog=N, stuck=N.
//
// REPL commands (interactive/listen modes):
//   open NAME PROGRAM [key=value...]   register a session
//   run NAME CYCLES                    run one session inline for N cycles
//   runall                             quantum-schedule all open sessions
//   state NAME                         dump nonzero architectural state
//   report NAME                        one-line session report
//   checkpoint NAME PATH               serialize the session to PATH
//   restore NAME PATH                  restore the session from PATH
//   evict NAME                         checkpoint to evict-dir and tear down
//   metrics                            aggregate scheduler counters
//   quit                               leave the REPL / close the client
//   shutdown                           (listen mode) stop the server loop
//
// exit codes: 0 every session halted or hit its cycle budget, 1 fatal
// error or any session fatal, 2 usage error, 3 some session stopped on a
// recoverable error (watchdog/stuck) — matching the lisasim driver.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "decode/decoder.hpp"
#include "model/sema.hpp"
#include "serve/session_io.hpp"
#include "serve/session_manager.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"
#include "workloads/workloads.hpp"

using namespace lisasim;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <model> (--jobs FILE | --interactive | --listen PATH) "
      "[options]\n"
      "  <model>: @tinydsp | @c54x | @c62x | path to a .lisa file\n"
      "  --jobs FILE        run a job file of sessions ('-' = stdin)\n"
      "  --interactive      REPL on stdin\n"
      "  --listen PATH      REPL over a unix-domain socket\n"
      "  --threads N        scheduler worker threads (default: hardware)\n"
      "  --quantum N        cycles per scheduler slice (default 16384)\n"
      "  --max-resident N   LRU cap on live sessions (0 = unbounded)\n"
      "  --evict-dir DIR    eviction checkpoint directory\n"
      "  --cache-dir DIR    native artifact directory (shared table cache)\n"
      "  --native-blocking  deterministic native-tier installs\n"
      "  --metrics          print aggregate metrics after the batch\n"
      "exit codes: 0 all sessions completed, 1 fatal, 2 usage,\n"
      "            3 recoverable stop (watchdog/stuck) in some session\n",
      argv0);
  return 2;
}

std::string model_source(const std::string& spec) {
  if (spec == "@tinydsp") return std::string(targets::tinydsp_model_source());
  if (spec == "@c54x") return std::string(targets::c54x_model_source());
  if (spec == "@c62x") return std::string(targets::c62x_model_source());
  std::ifstream in(spec);
  if (!in) throw SimError("cannot open '" + spec + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string model_name(const std::string& spec) {
  if (!spec.empty() && spec[0] == '@') return spec.substr(1);
  return spec;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

/// Loads (and memoizes) program specs: built-in workload generators or
/// assembly files. Memoization is what lets `copies=N` — and any two
/// sessions naming the same spec — share one LoadedProgram image.
class ProgramLibrary {
 public:
  ProgramLibrary(const Model& model, const Decoder& decoder)
      : model_(model), decoder_(decoder) {}

  std::shared_ptr<const LoadedProgram> get(const std::string& spec) {
    auto it = programs_.find(spec);
    if (it != programs_.end()) return it->second;
    std::string source;
    std::string name = spec;
    if (spec == "@fir") {
      source = workloads::make_fir(16, 64).asm_source;
    } else if (spec == "@adpcm") {
      source = workloads::make_adpcm(64).asm_source;
    } else if (spec == "@gsm") {
      source = workloads::make_gsm(40).asm_source;
    } else if (spec == "@smc") {
      source = model_.name == "tinydsp"
                   ? workloads::make_smc_tinydsp().asm_source
                   : workloads::make_smc_c62x().asm_source;
    } else if (!spec.empty() && spec[0] == '@') {
      throw SimError("unknown built-in program '" + spec +
                     "' (want @fir, @adpcm, @gsm or @smc)");
    } else {
      std::ifstream in(spec);
      if (!in) throw SimError("cannot open program '" + spec + "'");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    }
    auto program = std::make_shared<const LoadedProgram>(
        assemble_or_throw(model_, decoder_, source, name));
    programs_.emplace(spec, program);
    return program;
  }

 private:
  const Model& model_;
  const Decoder& decoder_;
  std::map<std::string, std::shared_ptr<const LoadedProgram>> programs_;
};

/// Parse one "key=value" session option. Returns false on unknown keys or
/// bad values (message already on `err`).
bool apply_session_option(const std::string& item, SessionSpec& spec,
                          std::uint64_t& copies, std::string& err) {
  const std::size_t eq = item.find('=');
  if (eq == std::string::npos) {
    err = "expected key=value, got '" + item + "'";
    return false;
  }
  const std::string key = item.substr(0, eq);
  const std::string value = item.substr(eq + 1);
  std::uint64_t n = 0;
  if (key == "level") {
    if (!parse_sim_level_token(value, spec.level)) {
      err = "unknown level '" + value + "'";
      return false;
    }
  } else if (key == "guard") {
    if (!parse_guard_policy_token(value, spec.guard)) {
      err = "unknown guard policy '" + value + "'";
      return false;
    }
  } else if (key == "copies") {
    if (!parse_u64(value, n) || n == 0 || n > 4096) {
      err = "bad copies '" + value + "'";
      return false;
    }
    copies = n;
  } else if (key == "max-cycles") {
    if (!parse_u64(value, spec.limits.max_cycles)) {
      err = "bad max-cycles '" + value + "'";
      return false;
    }
  } else if (key == "watchdog") {
    if (!parse_u64(value, spec.limits.watchdog_cycles)) {
      err = "bad watchdog '" + value + "'";
      return false;
    }
  } else if (key == "stuck") {
    if (!parse_u64(value, spec.limits.max_stuck_cycles)) {
      err = "bad stuck '" + value + "'";
      return false;
    }
  } else {
    err = "unknown session option '" + key + "'";
    return false;
  }
  return true;
}

void print_report(FILE* out, const SessionReport& r) {
  std::fprintf(out,
               "session %s: %s level=%s guard=%s cycles=%llu packets=%llu "
               "slots=%llu fetches=%llu quanta=%llu evictions=%llu "
               "rehydrations=%llu",
               r.name.c_str(), session_outcome_name(r.outcome),
               sim_level_token(r.level), guard_policy_token(r.guard),
               static_cast<unsigned long long>(r.result.cycles),
               static_cast<unsigned long long>(r.result.packets_retired),
               static_cast<unsigned long long>(r.result.slots_retired),
               static_cast<unsigned long long>(r.result.fetches),
               static_cast<unsigned long long>(r.quanta),
               static_cast<unsigned long long>(r.evictions),
               static_cast<unsigned long long>(r.rehydrations));
  if (r.outcome == SessionOutcome::kError)
    std::fprintf(out, " %s=\"%s\"", r.recoverable ? "stopped" : "fatal",
                 r.error.c_str());
  std::fputc('\n', out);
}

void print_metrics(FILE* out, const ServeMetrics& m) {
  const double wall_s = static_cast<double>(m.wall_ns) / 1e9;
  const double mips =
      wall_s > 0.0 ? static_cast<double>(m.total_slots) / wall_s / 1e6 : 0.0;
  std::fprintf(out,
               "metrics: sessions=%llu finished=%llu errors=%llu "
               "quanta=%llu evictions=%llu rehydrations=%llu "
               "evict_failures=%llu "
               "cycles=%llu slots=%llu wall_ms=%.1f aggregate_mips=%.2f "
               "p50_step_us=%.1f p99_step_us=%.1f\n",
               static_cast<unsigned long long>(m.sessions),
               static_cast<unsigned long long>(m.finished),
               static_cast<unsigned long long>(m.errors),
               static_cast<unsigned long long>(m.quanta),
               static_cast<unsigned long long>(m.evictions),
               static_cast<unsigned long long>(m.rehydrations),
               static_cast<unsigned long long>(m.evict_failures),
               static_cast<unsigned long long>(m.total_cycles),
               static_cast<unsigned long long>(m.total_slots), wall_s * 1e3,
               mips, static_cast<double>(m.p50_step_ns) / 1e3,
               static_cast<double>(m.p99_step_ns) / 1e3);
}

/// 0 all completed, 3 some recoverable stop, 1 some fatal (worst wins).
int exit_code_for(const std::vector<SessionReport>& reports) {
  int code = 0;
  for (const SessionReport& r : reports) {
    if (r.outcome != SessionOutcome::kError) continue;
    if (!r.recoverable) return 1;
    code = 3;
  }
  return code;
}

struct JobFile {
  ServeConfig config;
  std::string cache_dir;
  struct Entry {
    SessionSpec spec;       // program filled in later (spec string below)
    std::string program;
    std::uint64_t copies = 1;
  };
  std::vector<Entry> entries;
};

/// Parse a job file. Directives may appear anywhere (last one wins) and
/// are folded into `config` on top of the command-line values.
JobFile parse_job_file(std::istream& in, ServeConfig base,
                       const std::string& base_cache_dir) {
  JobFile job;
  job.config = std::move(base);
  job.cache_dir = base_cache_dir;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto fail = [&](const std::string& message) -> void {
      throw SimError("jobs:" + std::to_string(lineno) + ": " + message);
    };
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    std::uint64_t n = 0;
    if (directive == "threads") {
      if (tokens.size() != 2 || !parse_u64(tokens[1], n) || n > 1024)
        fail("bad threads directive");
      job.config.threads = static_cast<unsigned>(n);
    } else if (directive == "quantum") {
      if (tokens.size() != 2 || !parse_u64(tokens[1], n) || n == 0)
        fail("bad quantum directive");
      job.config.quantum_cycles = n;
    } else if (directive == "max-resident") {
      if (tokens.size() != 2 || !parse_u64(tokens[1], n))
        fail("bad max-resident directive");
      job.config.max_resident = n;
    } else if (directive == "evict-dir") {
      if (tokens.size() != 2) fail("bad evict-dir directive");
      job.config.evict_dir = tokens[1];
    } else if (directive == "cache-dir") {
      if (tokens.size() != 2) fail("bad cache-dir directive");
      job.cache_dir = tokens[1];
    } else if (directive == "native-blocking") {
      if (tokens.size() != 1) fail("bad native-blocking directive");
      job.config.native_blocking = true;
    } else if (directive == "session") {
      if (tokens.size() < 3) fail("session needs a name and a program");
      JobFile::Entry entry;
      entry.spec.name = tokens[1];
      entry.program = tokens[2];
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::string err;
        if (!apply_session_option(tokens[i], entry.spec, entry.copies, err))
          fail(err);
      }
      job.entries.push_back(std::move(entry));
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }
  return job;
}

int run_jobs(const Model& model, const Decoder& decoder, const JobFile& job,
             bool show_metrics) {
  ServeConfig config = job.config;
  SessionManager manager(config);
  if (!job.cache_dir.empty()) manager.cache().set_artifact_dir(job.cache_dir);
  ProgramLibrary library(model, decoder);
  for (const JobFile::Entry& entry : job.entries) {
    const auto program = library.get(entry.program);
    for (std::uint64_t copy = 0; copy < entry.copies; ++copy) {
      SessionSpec spec = entry.spec;
      spec.model = &model;
      spec.program = program;
      if (entry.copies > 1) {
        spec.name.push_back('-');
        spec.name += std::to_string(copy);
      }
      manager.add_session(spec);
    }
  }
  manager.run_all();
  const std::vector<SessionReport> reports = manager.reports();
  for (const SessionReport& r : reports) print_report(stdout, r);
  if (show_metrics) print_metrics(stdout, manager.metrics());
  return exit_code_for(reports);
}

// ---- interactive REPL ------------------------------------------------------

/// Serves one command stream. Returns false only for `shutdown` (listen
/// mode stops accepting); `quit`/EOF return true (client done).
class Repl {
 public:
  Repl(const Model& model, const Decoder& decoder, const ServeConfig& config,
       const std::string& cache_dir)
      : model_(model),
        decoder_(decoder),
        manager_(config),
        library_(model, decoder) {
    if (!cache_dir.empty()) manager_.cache().set_artifact_dir(cache_dir);
  }

  bool serve(FILE* in, FILE* out) {
    std::fprintf(out, "lisasim-serve ready (%s)\n", model_.name.c_str());
    std::fflush(out);
    char buffer[4096];
    while (std::fgets(buffer, sizeof buffer, in) != nullptr) {
      const std::vector<std::string> tokens = split_tokens(buffer);
      if (tokens.empty()) continue;
      if (tokens[0] == "quit") return true;
      if (tokens[0] == "shutdown") return false;
      try {
        command(tokens, out);
      } catch (const SimError& e) {
        std::fprintf(out, "error %s\n", e.what());
      } catch (const std::exception& e) {
        std::fprintf(out, "error %s\n", e.what());
      }
      std::fflush(out);
    }
    return true;
  }

 private:
  std::size_t id_of(const std::string& name) {
    const auto it = names_.find(name);
    if (it == names_.end())
      throw SimError("no session '" + name + "'", SimErrorKind::kRecoverable);
    return it->second;
  }

  void command(const std::vector<std::string>& tokens, FILE* out) {
    const std::string& cmd = tokens[0];
    if (cmd == "open") {
      if (tokens.size() < 3)
        throw SimError("usage: open NAME PROGRAM [key=value...]");
      if (names_.count(tokens[1]) != 0)
        throw SimError("session '" + tokens[1] + "' already open");
      SessionSpec spec;
      spec.name = tokens[1];
      spec.model = &model_;
      spec.program = library_.get(tokens[2]);
      std::uint64_t copies = 1;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::string err;
        if (!apply_session_option(tokens[i], spec, copies, err))
          throw SimError(err);
      }
      const std::size_t id = manager_.add_session(spec);
      names_.emplace(tokens[1], id);
      std::fprintf(out, "ok open %s id=%zu\n", tokens[1].c_str(), id);
    } else if (cmd == "run") {
      std::uint64_t cycles = 0;
      if (tokens.size() != 3 || !parse_u64(tokens[2], cycles) || cycles == 0)
        throw SimError("usage: run NAME CYCLES");
      const RunResult delta = manager_.run_session(id_of(tokens[1]), cycles);
      std::fprintf(out, "ok run %s cycles=%llu halted=%d\n",
                   tokens[1].c_str(),
                   static_cast<unsigned long long>(delta.cycles),
                   delta.halted ? 1 : 0);
    } else if (cmd == "runall") {
      manager_.run_all();
      std::fprintf(out, "ok runall sessions=%zu\n", manager_.session_count());
    } else if (cmd == "state") {
      if (tokens.size() != 2) throw SimError("usage: state NAME");
      const std::string dump = manager_.session_state(id_of(tokens[1]));
      std::fprintf(out, "ok state %s\n%s.\n", tokens[1].c_str(),
                   dump.c_str());
    } else if (cmd == "report") {
      if (tokens.size() != 2) throw SimError("usage: report NAME");
      print_report(out, manager_.report(id_of(tokens[1])));
    } else if (cmd == "checkpoint") {
      if (tokens.size() != 3) throw SimError("usage: checkpoint NAME PATH");
      manager_.checkpoint_session(id_of(tokens[1]), tokens[2]);
      std::fprintf(out, "ok checkpoint %s %s\n", tokens[1].c_str(),
                   tokens[2].c_str());
    } else if (cmd == "restore") {
      if (tokens.size() != 3) throw SimError("usage: restore NAME PATH");
      manager_.restore_session(id_of(tokens[1]), tokens[2]);
      std::fprintf(out, "ok restore %s %s\n", tokens[1].c_str(),
                   tokens[2].c_str());
    } else if (cmd == "evict") {
      if (tokens.size() != 2) throw SimError("usage: evict NAME");
      manager_.evict_session(id_of(tokens[1]));
      std::fprintf(out, "ok evict %s\n", tokens[1].c_str());
    } else if (cmd == "metrics") {
      print_metrics(out, manager_.metrics());
    } else {
      throw SimError("unknown command '" + cmd + "'");
    }
  }

  const Model& model_;
  const Decoder& decoder_;
  SessionManager manager_;
  ProgramLibrary library_;
  std::map<std::string, std::size_t> names_;
};

int serve_socket(const Model& model, const Decoder& decoder,
                 const ServeConfig& config, const std::string& cache_dir,
                 const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path)
    throw SimError("socket path too long: '" + path + "'");
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw SimError("socket() failed");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 1) != 0) {
    ::close(fd);
    throw SimError("cannot listen on '" + path + "'");
  }
  std::printf("listening on %s\n", path.c_str());
  std::fflush(stdout);
  bool keep_going = true;
  while (keep_going) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) break;
    FILE* in = ::fdopen(client, "r");
    FILE* out = ::fdopen(::dup(client), "w");
    if (in != nullptr && out != nullptr) {
      // One manager per connection: a client owns its sessions, and a
      // fresh cache per client keeps the lifetime story simple. (The
      // kNative module registry still shares across connections — it is
      // process-wide by design.)
      Repl repl(model, decoder, config, cache_dir);
      keep_going = repl.serve(in, out);
    }
    if (in != nullptr) std::fclose(in);
    if (out != nullptr) std::fclose(out);
  }
  ::close(fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string spec = argv[1];
  if (spec == "--help" || spec == "-h") {
    usage(argv[0]);
    return 0;
  }

  std::string jobs_path;
  std::string listen_path;
  std::string cache_dir;
  bool interactive = false;
  bool show_metrics = false;
  ServeConfig config;
  config.quantum_cycles = std::uint64_t{1} << 14;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      jobs_path = v;
    } else if (arg == "--interactive") {
      interactive = true;
    } else if (arg == "--listen") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      listen_path = v;
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, n) || n > 1024) return usage(argv[0]);
      config.threads = static_cast<unsigned>(n);
    } else if (arg == "--quantum") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      config.quantum_cycles = n;
    } else if (arg == "--max-resident") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, n)) return usage(argv[0]);
      config.max_resident = n;
    } else if (arg == "--evict-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config.evict_dir = v;
    } else if (arg == "--cache-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cache_dir = v;
    } else if (arg == "--native-blocking") {
      config.native_blocking = true;
    } else if (arg == "--metrics") {
      show_metrics = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  const int modes = (jobs_path.empty() ? 0 : 1) + (interactive ? 1 : 0) +
                    (listen_path.empty() ? 0 : 1);
  if (modes != 1) {
    std::fprintf(stderr,
                 "pick exactly one of --jobs, --interactive, --listen\n");
    return usage(argv[0]);
  }

  try {
    const std::unique_ptr<Model> model =
        compile_model_source_or_throw(model_source(spec), model_name(spec));
    const Decoder decoder(*model);

    if (!jobs_path.empty()) {
      JobFile job;
      if (jobs_path == "-") {
        job = parse_job_file(std::cin, config, cache_dir);
      } else {
        std::ifstream in(jobs_path);
        if (!in) throw SimError("cannot open jobs file '" + jobs_path + "'");
        job = parse_job_file(in, config, cache_dir);
      }
      if (job.entries.empty()) throw SimError("job file defines no sessions");
      return run_jobs(*model, decoder, job, show_metrics);
    }
    if (interactive) {
      Repl repl(*model, decoder, config, cache_dir);
      repl.serve(stdin, stdout);
      return 0;
    }
    return serve_socket(*model, decoder, config, cache_dir, listen_path);
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
