// lisasim-fuzz — retargetable differential fuzzer driver.
//
//   lisasim-fuzz <model> [options]
//
// <model> is a path to a machine description, or one of the built-in
// models "@tinydsp" / "@c54x" / "@c62x". Each seed maps to a random
// program generated from the model's SYNTAX/CODING tables; the program
// runs through all five simulation levels under every applicable guard
// policy and any disagreement with the interpretive oracle is reported,
// minimized, and persisted as a repro bundle.
//
// options:
//   --seeds A..B | --seeds N        seed range (default 0..63); N means 0..N-1
//   --soak SECONDS                  keep consuming seeds (ascending from the
//                                   range start) until the wall clock expires
//   --packets MIN..MAX              packets per program (default 10..40)
//   --mem-bound N                   data-memory traffic bound (default 48)
//   --weights k=v[,k=v...]          feature weights in percent; keys: branch,
//                                   backward, predicate, parallel, memory,
//                                   smc, chaos
//   --max-cycles N                  soft per-run cycle cap (default 30000)
//   --watchdog N                    hard watchdog cycle limit (default off)
//   --stuck N                       livelock watchdog (default 2048)
//   --attempts N                    generation attempts per seed (default 16)
//   --schedule                      coverage-guided seed scheduling: reweight
//                                   each seed's feature mix toward whatever
//                                   the campaign has under-hit so far
//   --repro-dir DIR                 bundle directory (default fuzz-repros)
//   --no-minimize                   skip the greedy program minimizer
//   --inject-divergence SEED        test hook: corrupt the trace level's
//                                   compared state for SEED, forcing the
//                                   divergence path end to end
//   --resilience                    sixth sweep mode: re-run each agreeing
//                                   seed under a RunSupervisor with a
//                                   seed-derived fault schedule; the
//                                   supervised run must stay bit-identical
//                                   to the unfaulted interpretive oracle
//   --resilience-faults N           injected faults per supervised run
//                                   (default 3)
//   --serve N                       seventh sweep mode: run N concurrent
//                                   serve sessions of each agreeing seed
//                                   through the run-quantum SessionManager
//                                   (shared tables, eviction churn); every
//                                   session must finish bit-identical to
//                                   the interpretive oracle
//   --print SEED                    print SEED's generated program and exit
//   --stats                         print accumulated coverage counters
//
// exit codes: 0 no divergence, 1 divergence found or fatal error, 2 usage
// error (matching the lisasim driver's conventions).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/differ.hpp"
#include "model/sema.hpp"
#include "targets/c54x.hpp"
#include "targets/c62x.hpp"
#include "targets/tinydsp.hpp"

using namespace lisasim;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <model> [options]\n"
      "  <model>: @tinydsp | @c54x | @c62x | path to a .lisa file\n"
      "  --seeds A..B | --seeds N   seed range (default 0..63)\n"
      "  --soak SECONDS             run until the wall clock expires\n"
      "  --packets MIN..MAX         packets per program\n"
      "  --mem-bound N              data-memory traffic bound\n"
      "  --weights k=v[,k=v...]     branch backward predicate parallel\n"
      "                             memory smc chaos (percent)\n"
      "  --max-cycles N | --watchdog N | --stuck N | --attempts N\n"
      "  --repro-dir DIR | --no-minimize | --schedule\n"
      "  --resilience | --resilience-faults N | --serve N\n"
      "  --inject-divergence SEED | --print SEED | --stats\n"
      "exit codes: 0 clean, 1 divergence or fatal error, 2 usage error\n",
      argv0);
  return 2;
}

std::string model_source(const std::string& spec) {
  if (spec == "@tinydsp") return std::string(targets::tinydsp_model_source());
  if (spec == "@c54x") return std::string(targets::c54x_model_source());
  if (spec == "@c62x") return std::string(targets::c62x_model_source());
  std::ifstream in(spec);
  if (!in) throw SimError("cannot open '" + spec + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string model_name(const std::string& spec) {
  if (!spec.empty() && spec[0] == '@') return spec.substr(1);
  return spec;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

bool parse_range(const std::string& spec, std::uint64_t& lo,
                 std::uint64_t& hi) {
  const std::size_t dots = spec.find("..");
  if (dots == std::string::npos) {
    std::uint64_t n = 0;
    if (!parse_u64(spec.c_str(), n) || n == 0) return false;
    lo = 0;
    hi = n - 1;
    return true;
  }
  return parse_u64(spec.substr(0, dots).c_str(), lo) &&
         parse_u64(spec.substr(dots + 2).c_str(), hi) && lo <= hi;
}

bool apply_weights(const std::string& spec, fuzz::FeatureWeights& w) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    std::uint64_t value = 0;
    if (!parse_u64(item.substr(eq + 1).c_str(), value) || value > 100)
      return false;
    const unsigned v = static_cast<unsigned>(value);
    if (key == "branch") w.branch = v;
    else if (key == "backward") w.backward = v;
    else if (key == "predicate") w.predicate = v;
    else if (key == "parallel") w.parallel = v;
    else if (key == "memory") w.memory = v;
    else if (key == "smc") w.smc = v;
    else if (key == "chaos") w.chaos = v;
    else return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string spec = argv[1];
  if (spec == "--help" || spec == "-h") {
    usage(argv[0]);
    return 0;
  }

  std::uint64_t seed_lo = 0;
  std::uint64_t seed_hi = 63;
  std::uint64_t soak_seconds = 0;
  bool print_stats = false;
  bool do_print = false;
  std::uint64_t print_seed = 0;
  fuzz::FuzzOptions opts;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--seeds") {
      const char* v = value();
      if (v == nullptr || !parse_range(v, seed_lo, seed_hi))
        return usage(argv[0]);
    } else if (arg == "--soak") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, soak_seconds)) return usage(argv[0]);
    } else if (arg == "--packets") {
      const char* v = value();
      std::uint64_t lo = 0, hi = 0;
      if (v == nullptr || !parse_range(v, lo, hi) || lo == 0 || hi > 4096)
        return usage(argv[0]);
      opts.gen.min_packets = static_cast<int>(lo);
      opts.gen.max_packets = static_cast<int>(hi);
    } else if (arg == "--mem-bound") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, n) || n == 0) return usage(argv[0]);
      opts.gen.mem_bound = n;
    } else if (arg == "--weights") {
      const char* v = value();
      if (v == nullptr || !apply_weights(v, opts.gen.weights))
        return usage(argv[0]);
    } else if (arg == "--max-cycles") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, opts.max_cycles))
        return usage(argv[0]);
    } else if (arg == "--watchdog") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, opts.watchdog_cycles))
        return usage(argv[0]);
    } else if (arg == "--stuck") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, opts.max_stuck_cycles))
        return usage(argv[0]);
    } else if (arg == "--attempts") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, n) || n == 0 || n > 1024)
        return usage(argv[0]);
      opts.attempts_per_seed = static_cast<int>(n);
    } else if (arg == "--repro-dir") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      opts.repro_dir = v;
    } else if (arg == "--schedule") {
      opts.coverage_schedule = true;
    } else if (arg == "--no-minimize") {
      opts.minimize = false;
    } else if (arg == "--resilience") {
      opts.resilience = true;
    } else if (arg == "--resilience-faults") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, n) || n == 0 || n > 64)
        return usage(argv[0]);
      opts.resilience_faults = static_cast<unsigned>(n);
    } else if (arg == "--serve") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, n) || n == 0 || n > 256)
        return usage(argv[0]);
      opts.serve_sessions = static_cast<unsigned>(n);
    } else if (arg == "--inject-divergence") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, opts.inject_seed))
        return usage(argv[0]);
      opts.inject = true;
    } else if (arg == "--print") {
      const char* v = value();
      if (v == nullptr || !parse_u64(v, print_seed)) return usage(argv[0]);
      do_print = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  try {
    const std::unique_ptr<Model> model =
        compile_model_source_or_throw(model_source(spec), model_name(spec));
    fuzz::DifferentialFuzzer fuzzer(*model);

    if (do_print) {
      const fuzz::GeneratedProgram prog =
          fuzzer.program_for_seed(print_seed, opts);
      std::fputs(prog.source.c_str(), stdout);
      return 0;
    }

    const fuzz::ProgramGenerator& gen = fuzzer.generator();
    std::printf("%s: %zu instruction templates (smc=%d predication=%d "
                "branches=%d packets=%d)\n",
                model->name.c_str(), gen.instruction_templates(),
                gen.supports_smc() ? 1 : 0,
                gen.supports_predication() ? 1 : 0,
                gen.supports_branches() ? 1 : 0,
                gen.supports_packets() ? 1 : 0);

    const auto start = std::chrono::steady_clock::now();
    const auto expired = [&]() {
      if (soak_seconds == 0) return false;
      return std::chrono::steady_clock::now() - start >=
             std::chrono::seconds(soak_seconds);
    };

    fuzz::FuzzStats stats;
    int divergences = 0;
    std::uint64_t seed = seed_lo;
    for (;; ++seed) {
      if (soak_seconds != 0) {
        if (expired()) break;
      } else if (seed > seed_hi) {
        break;
      }
      const auto d = fuzzer.run_seed(seed, opts, stats);
      if (!d) continue;
      ++divergences;
      std::printf("DIVERGENCE seed %llu: %s level, %s guard: %s\n",
                  static_cast<unsigned long long>(d->seed),
                  d->level.c_str(), d->policy.c_str(),
                  d->description.c_str());
      std::printf("  last agreeing cycle %llu, minimized to %d packets\n",
                  static_cast<unsigned long long>(d->last_agree_cycle),
                  d->minimized_packets);
      if (!d->bundle_dir.empty())
        std::printf("  repro bundle: %s\n", d->bundle_dir.c_str());
    }

    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("%llu seeds, %llu programs (%llu rejected attempts), "
                "%d divergences in %.1fs\n",
                static_cast<unsigned long long>(stats.seeds),
                static_cast<unsigned long long>(stats.programs),
                static_cast<unsigned long long>(stats.rejected), divergences,
                elapsed);
    if (print_stats) std::fputs(stats.coverage.to_string().c_str(), stdout);
    return divergences == 0 ? 0 : 1;
  } catch (const SimError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
