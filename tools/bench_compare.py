#!/usr/bin/env python3
"""Compare a fresh bench_sim_speed --json run against a checked-in baseline.

Usage:
    bench/bench_sim_speed --json > /tmp/bench_new.json
    python3 tools/bench_compare.py /tmp/bench_new.json [BENCH_sim.json]

Rows are matched on (app, level) and compared on cycles_per_second. A row
that regresses by more than the threshold (default 15%, override with
--threshold PCT) is flagged and the script exits nonzero, so the check can
gate a refresh of the checked-in numbers. Guard-overhead rows marked
noise_dominated in either file are reported but never flagged. Batched
lockstep rows are matched on (app, lanes) and gated on aggregate_mips under
the same threshold; a baseline written before the batched section existed
is reported as skipped, not failed. Supervisor rows (the resilient
RunSupervisor wrapping the static level with no faults firing) are gated
on the fresh run's absolute overhead_percent staying at or below
--supervisor-threshold (default 2%); noise_dominated rows are reported but
not flagged, and a fresh run without the section is reported as skipped.
Native AOT rows are gated on the fresh run's absolute speedup_vs_trace
staying at or above --native-min-speedup (default 2x); a fresh run without
the section (no out-of-process toolchain in that environment) is reported
as skipped, not failed.

The same script also compares serve snapshots (bench_serve --json against
BENCH_serve.json):

    bench/bench_serve --json /tmp/serve_new.json
    python3 tools/bench_compare.py /tmp/serve_new.json BENCH_serve.json

Serve rows are matched on (app, level, threads, max_resident) and gated on
aggregate_mips under the regression threshold, plus one absolute contract
gate: the fresh run's table_compiles must be exactly 1 (K sessions of one
program, one simulation-compiler run). A baseline written before the serve
bench existed is reported as skipped, not failed. serve_native rows gate
on native_shares > 0 (the fleet shared a dlopen'd module); a fresh run
without them (no toolchain) is skipped.
"""

import argparse
import json
import sys
from pathlib import Path


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for row in data.get("levels", []):
        rows[(row["app"], row["level"])] = row
    return data, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON from a new bench_sim_speed --json run")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sim.json"),
        help="checked-in baseline (default: repo BENCH_sim.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        help="regression threshold in percent (default 15)",
    )
    parser.add_argument(
        "--supervisor-threshold",
        type=float,
        default=2.0,
        help="no-fault supervisor overhead ceiling in percent (default 2)",
    )
    parser.add_argument(
        "--native-min-speedup",
        type=float,
        default=2.0,
        help="native AOT floor as a multiple of the trace tier (default 2)",
    )
    args = parser.parse_args()

    fresh_data, fresh = load_rows(args.fresh)
    base_data, base = load_rows(args.baseline)

    if fresh_data.get("target") != base_data.get("target"):
        print(
            f"note: target differs ({fresh_data.get('target')} vs "
            f"{base_data.get('target')}); comparing anyway",
            file=sys.stderr,
        )

    regressions = []
    if base or fresh:
        print(f"{'app':8s} {'level':8s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}")
    for key in sorted(base):
        b = base[key]["cycles_per_second"]
        if key not in fresh:
            print(f"{key[0]:8s} {key[1]:8s} {b:12,d} {'missing':>12s}")
            regressions.append((key, "row missing from fresh run"))
            continue
        f = fresh[key]["cycles_per_second"]
        delta = (f - b) / b * 100.0
        flag = ""
        if delta < -args.threshold:
            flag = f"  << regression > {args.threshold:.0f}%"
            regressions.append((key, f"{delta:+.1f}%"))
        print(f"{key[0]:8s} {key[1]:8s} {b:12,d} {f:12,d} {delta:+7.1f}%{flag}")
    for key in sorted(set(fresh) - set(base)):
        print(f"{key[0]:8s} {key[1]:8s} {'new row':>12s} "
              f"{fresh[key]['cycles_per_second']:12,d}")

    # Guard overhead: informational only. The measurement is a ratio of two
    # timings of the same work, so run-to-run noise routinely exceeds the
    # signal; rows self-identify via noise_dominated.
    base_guard = {(r["app"], r["level"]): r for r in base_data.get("guard_overhead", [])}
    fresh_guard = {(r["app"], r["level"]): r for r in fresh_data.get("guard_overhead", [])}
    shared = sorted(set(base_guard) & set(fresh_guard))
    if shared:
        print("\nguard overhead (informational):")
        for key in shared:
            b, f = base_guard[key], fresh_guard[key]
            noisy = b.get("noise_dominated") or f.get("noise_dominated")
            print(
                f"{key[0]:8s} {key[1]:8s} "
                f"{b['overhead_percent']:+6.2f}% -> {f['overhead_percent']:+6.2f}%"
                f"{'  (noise)' if noisy else ''}"
            )

    # Supervisor overhead: gated on the FRESH run's absolute overhead — the
    # acceptance bar is "a no-fault supervised run costs <= 2%", not a
    # delta against the baseline. Noise-dominated rows (the drift band is
    # wider than the measured effect) are reported but not flagged.
    base_sup = {r["app"]: r for r in base_data.get("supervisor", [])}
    fresh_sup = {r["app"]: r for r in fresh_data.get("supervisor", [])}
    if not fresh_sup:
        print(
            "\nsupervisor overhead: fresh run has no supervisor rows; "
            "skipping the gate (rerun bench_sim_speed from this tree)."
        )
    else:
        print(f"\nsupervisor overhead (gate: <= {args.supervisor_threshold:.1f}%):")
        for app in sorted(fresh_sup):
            f = fresh_sup[app]
            b = base_sup.get(app)
            baseline_text = (
                f"{b['overhead_percent']:+6.2f}%" if b else "   new"
            )
            noisy = f.get("noise_dominated")
            flag = ""
            if not noisy and f["overhead_percent"] > args.supervisor_threshold:
                flag = f"  << exceeds {args.supervisor_threshold:.1f}% ceiling"
                regressions.append(
                    ((app, "supervisor"), f"+{f['overhead_percent']:.2f}%")
                )
            print(
                f"{app:8s} {baseline_text} -> {f['overhead_percent']:+6.2f}%"
                f"{'  (noise)' if noisy else ''}{flag}"
            )

    # Native AOT rows: gated on the FRESH run's absolute speedup over the
    # trace tier — the acceptance bar is "a natively compiled region set
    # runs at least Nx the trace tier", not a delta against the baseline.
    # The compile-cost columns are informational (they measure the host
    # compiler, not the simulator).
    base_native = {r["app"]: r for r in base_data.get("native", [])}
    fresh_native = {r["app"]: r for r in fresh_data.get("native", [])}
    if not fresh_native:
        print(
            "\nnative AOT: fresh run has no native rows (no out-of-process "
            "toolchain?); skipping the gate."
        )
    else:
        print(f"\nnative AOT (gate: >= {args.native_min_speedup:.1f}x trace):")
        for app in sorted(fresh_native):
            f = fresh_native[app]
            b = base_native.get(app)
            baseline_text = f"{b['speedup_vs_trace']:5.2f}x" if b else "   new"
            flag = ""
            if f["speedup_vs_trace"] < args.native_min_speedup:
                flag = f"  << below {args.native_min_speedup:.1f}x floor"
                regressions.append(
                    ((app, "native"), f"{f['speedup_vs_trace']:.2f}x vs trace")
                )
            print(
                f"{app:8s} {baseline_text} -> {f['speedup_vs_trace']:5.2f}x"
                f"  (cold compile {f['compile_seconds_cold']:.2f}s, "
                f"warm load {f['load_seconds_warm'] * 1e3:.1f}ms, "
                f"break-even {f['break_even_runs']:.1f} runs){flag}"
            )

    # Batched lockstep rows: gated on aggregate MIPS, matched on (app, lanes).
    base_batched = {(r["app"], r["lanes"]): r for r in base_data.get("batched", [])}
    fresh_batched = {(r["app"], r["lanes"]): r for r in fresh_data.get("batched", [])}
    if not base_batched:
        print(
            "\nbatched lockstep: baseline has no batched rows "
            "(predates the batched bench section); skipping the comparison. "
            "Refresh BENCH_sim.json to start gating them."
        )
    elif not fresh_batched:
        print(
            "\nbatched lockstep: fresh run has no batched rows; skipping "
            "the comparison (rerun bench_sim_speed from this tree)."
        )
    else:
        print("\nbatched lockstep (aggregate MIPS):")
        print(f"{'app':8s} {'lanes':>5s} {'baseline':>10s} {'fresh':>10s} {'delta':>8s}")
        for key in sorted(base_batched):
            b = base_batched[key]["aggregate_mips"]
            if key not in fresh_batched:
                print(f"{key[0]:8s} {key[1]:5d} {b:10.2f} {'missing':>10s}")
                regressions.append((key, "batched row missing from fresh run"))
                continue
            f = fresh_batched[key]["aggregate_mips"]
            delta = (f - b) / b * 100.0
            flag = ""
            if delta < -args.threshold:
                flag = f"  << regression > {args.threshold:.0f}%"
                regressions.append((key, f"{delta:+.1f}%"))
            print(f"{key[0]:8s} {key[1]:5d} {b:10.2f} {f:10.2f} {delta:+7.1f}%{flag}")
        for key in sorted(set(fresh_batched) - set(base_batched)):
            print(f"{key[0]:8s} {key[1]:5d} {'new row':>10s} "
                  f"{fresh_batched[key]['aggregate_mips']:10.2f}")

    # Serve rows (bench_serve --json vs BENCH_serve.json): matched on
    # (app, level, threads, max_resident), gated on aggregate_mips under
    # the threshold — plus the absolute shared-table contract: a fresh row
    # whose table_compiles is not exactly 1 failed to coalesce K sessions
    # of one program onto one simulation-compiler run and is flagged no
    # matter how fast it went.
    def serve_key(row):
        return (row["app"], row["level"], row["threads"],
                row.get("max_resident", 0))

    base_serve = {serve_key(r): r for r in base_data.get("serve", [])}
    fresh_serve = {serve_key(r): r for r in fresh_data.get("serve", [])}
    if fresh_serve and not base_serve:
        print(
            "\nserve: baseline has no serve rows (predates the serve "
            "bench); skipping the comparison. Refresh BENCH_serve.json "
            "to start gating them."
        )
    if fresh_serve:
        print("\nserve (aggregate MIPS; table_compiles must be 1):")
        print(f"{'app':8s} {'thr':>3s} {'resid':>5s} {'baseline':>10s} "
              f"{'fresh':>10s} {'delta':>8s} {'compiles':>8s}")
        for key in sorted(base_serve):
            if key not in fresh_serve:
                print(f"{key[0]:8s} {key[2]:3d} {key[3]:5d} "
                      f"{base_serve[key]['aggregate_mips']:10.2f} "
                      f"{'missing':>10s}")
                regressions.append((key[:2], "serve row missing from fresh run"))
        for key in sorted(fresh_serve):
            f = fresh_serve[key]
            b = base_serve.get(key)
            delta = ((f["aggregate_mips"] - b["aggregate_mips"]) /
                     b["aggregate_mips"] * 100.0) if b else None
            flag = ""
            if b and delta < -args.threshold:
                flag = f"  << regression > {args.threshold:.0f}%"
                regressions.append((key[:2], f"{delta:+.1f}%"))
            if f.get("table_compiles", 1) != 1:
                flag += (f"  << {f['table_compiles']} table compiles "
                         "(want exactly 1)")
                regressions.append(
                    (key[:2], f"{f['table_compiles']} table compiles")
                )
            baseline_text = f"{b['aggregate_mips']:10.2f}" if b else f"{'new row':>10s}"
            delta_text = f"{delta:+7.1f}%" if b else f"{'':8s}"
            print(f"{key[0]:8s} {key[2]:3d} {key[3]:5d} {baseline_text} "
                  f"{f['aggregate_mips']:10.2f} {delta_text} "
                  f"{f.get('table_compiles', 1):8d}{flag}")
    elif base_serve:
        print(
            "\nserve: fresh run has no serve rows; skipping the comparison "
            "(rerun bench_serve from this tree)."
        )

    # serve_native rows: absolute gate only — the fleet must actually have
    # shared a module (native_shares > 0). Skipped cleanly when the fresh
    # environment has no out-of-process toolchain.
    base_snative = {r["app"]: r for r in base_data.get("serve_native", [])}
    fresh_snative = {r["app"]: r for r in fresh_data.get("serve_native", [])}
    if fresh_snative:
        print("\nserve native (module sharing):")
        for app in sorted(fresh_snative):
            f = fresh_snative[app]
            b = base_snative.get(app)
            flag = ""
            if f.get("native_shares", 0) == 0:
                flag = "  << fleet never shared a module"
                regressions.append(((app, "serve_native"), "native_shares == 0"))
            baseline_text = (
                f"{b['native_builds']}b/{b['native_shares']}s" if b else "new"
            )
            print(
                f"{app:8s} {baseline_text:>8s} -> "
                f"{f['native_builds']} build(s), {f['native_shares']} "
                f"share(s), {f['aggregate_mips']:.2f} MIPS{flag}"
            )
    elif base_snative:
        print(
            "\nserve native: fresh run has no serve_native rows (no "
            "out-of-process toolchain?); skipping the gate."
        )

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0f}%:",
              file=sys.stderr)
        for key, what in regressions:
            print(f"  {key[0]}/{key[1]}: {what}", file=sys.stderr)
        return 1
    print(f"\nOK: no row regressed by more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
