#!/usr/bin/env python3
"""Compare a fresh bench_sim_speed --json run against a checked-in baseline.

Usage:
    bench/bench_sim_speed --json > /tmp/bench_new.json
    python3 tools/bench_compare.py /tmp/bench_new.json [BENCH_sim.json]

Rows are matched on (app, level) and compared on cycles_per_second. A row
that regresses by more than the threshold (default 15%, override with
--threshold PCT) is flagged and the script exits nonzero, so the check can
gate a refresh of the checked-in numbers. Guard-overhead rows marked
noise_dominated in either file are reported but never flagged. Batched
lockstep rows are matched on (app, lanes) and gated on aggregate_mips under
the same threshold; a baseline written before the batched section existed
is reported as skipped, not failed. Supervisor rows (the resilient
RunSupervisor wrapping the static level with no faults firing) are gated
on the fresh run's absolute overhead_percent staying at or below
--supervisor-threshold (default 2%); noise_dominated rows are reported but
not flagged, and a fresh run without the section is reported as skipped.
Native AOT rows are gated on the fresh run's absolute speedup_vs_trace
staying at or above --native-min-speedup (default 2x); a fresh run without
the section (no out-of-process toolchain in that environment) is reported
as skipped, not failed.
"""

import argparse
import json
import sys
from pathlib import Path


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for row in data.get("levels", []):
        rows[(row["app"], row["level"])] = row
    return data, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON from a new bench_sim_speed --json run")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sim.json"),
        help="checked-in baseline (default: repo BENCH_sim.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=15.0,
        help="regression threshold in percent (default 15)",
    )
    parser.add_argument(
        "--supervisor-threshold",
        type=float,
        default=2.0,
        help="no-fault supervisor overhead ceiling in percent (default 2)",
    )
    parser.add_argument(
        "--native-min-speedup",
        type=float,
        default=2.0,
        help="native AOT floor as a multiple of the trace tier (default 2)",
    )
    args = parser.parse_args()

    fresh_data, fresh = load_rows(args.fresh)
    base_data, base = load_rows(args.baseline)

    if fresh_data.get("target") != base_data.get("target"):
        print(
            f"note: target differs ({fresh_data.get('target')} vs "
            f"{base_data.get('target')}); comparing anyway",
            file=sys.stderr,
        )

    regressions = []
    print(f"{'app':8s} {'level':8s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}")
    for key in sorted(base):
        b = base[key]["cycles_per_second"]
        if key not in fresh:
            print(f"{key[0]:8s} {key[1]:8s} {b:12,d} {'missing':>12s}")
            regressions.append((key, "row missing from fresh run"))
            continue
        f = fresh[key]["cycles_per_second"]
        delta = (f - b) / b * 100.0
        flag = ""
        if delta < -args.threshold:
            flag = f"  << regression > {args.threshold:.0f}%"
            regressions.append((key, f"{delta:+.1f}%"))
        print(f"{key[0]:8s} {key[1]:8s} {b:12,d} {f:12,d} {delta:+7.1f}%{flag}")
    for key in sorted(set(fresh) - set(base)):
        print(f"{key[0]:8s} {key[1]:8s} {'new row':>12s} "
              f"{fresh[key]['cycles_per_second']:12,d}")

    # Guard overhead: informational only. The measurement is a ratio of two
    # timings of the same work, so run-to-run noise routinely exceeds the
    # signal; rows self-identify via noise_dominated.
    base_guard = {(r["app"], r["level"]): r for r in base_data.get("guard_overhead", [])}
    fresh_guard = {(r["app"], r["level"]): r for r in fresh_data.get("guard_overhead", [])}
    shared = sorted(set(base_guard) & set(fresh_guard))
    if shared:
        print("\nguard overhead (informational):")
        for key in shared:
            b, f = base_guard[key], fresh_guard[key]
            noisy = b.get("noise_dominated") or f.get("noise_dominated")
            print(
                f"{key[0]:8s} {key[1]:8s} "
                f"{b['overhead_percent']:+6.2f}% -> {f['overhead_percent']:+6.2f}%"
                f"{'  (noise)' if noisy else ''}"
            )

    # Supervisor overhead: gated on the FRESH run's absolute overhead — the
    # acceptance bar is "a no-fault supervised run costs <= 2%", not a
    # delta against the baseline. Noise-dominated rows (the drift band is
    # wider than the measured effect) are reported but not flagged.
    base_sup = {r["app"]: r for r in base_data.get("supervisor", [])}
    fresh_sup = {r["app"]: r for r in fresh_data.get("supervisor", [])}
    if not fresh_sup:
        print(
            "\nsupervisor overhead: fresh run has no supervisor rows; "
            "skipping the gate (rerun bench_sim_speed from this tree)."
        )
    else:
        print(f"\nsupervisor overhead (gate: <= {args.supervisor_threshold:.1f}%):")
        for app in sorted(fresh_sup):
            f = fresh_sup[app]
            b = base_sup.get(app)
            baseline_text = (
                f"{b['overhead_percent']:+6.2f}%" if b else "   new"
            )
            noisy = f.get("noise_dominated")
            flag = ""
            if not noisy and f["overhead_percent"] > args.supervisor_threshold:
                flag = f"  << exceeds {args.supervisor_threshold:.1f}% ceiling"
                regressions.append(
                    ((app, "supervisor"), f"+{f['overhead_percent']:.2f}%")
                )
            print(
                f"{app:8s} {baseline_text} -> {f['overhead_percent']:+6.2f}%"
                f"{'  (noise)' if noisy else ''}{flag}"
            )

    # Native AOT rows: gated on the FRESH run's absolute speedup over the
    # trace tier — the acceptance bar is "a natively compiled region set
    # runs at least Nx the trace tier", not a delta against the baseline.
    # The compile-cost columns are informational (they measure the host
    # compiler, not the simulator).
    base_native = {r["app"]: r for r in base_data.get("native", [])}
    fresh_native = {r["app"]: r for r in fresh_data.get("native", [])}
    if not fresh_native:
        print(
            "\nnative AOT: fresh run has no native rows (no out-of-process "
            "toolchain?); skipping the gate."
        )
    else:
        print(f"\nnative AOT (gate: >= {args.native_min_speedup:.1f}x trace):")
        for app in sorted(fresh_native):
            f = fresh_native[app]
            b = base_native.get(app)
            baseline_text = f"{b['speedup_vs_trace']:5.2f}x" if b else "   new"
            flag = ""
            if f["speedup_vs_trace"] < args.native_min_speedup:
                flag = f"  << below {args.native_min_speedup:.1f}x floor"
                regressions.append(
                    ((app, "native"), f"{f['speedup_vs_trace']:.2f}x vs trace")
                )
            print(
                f"{app:8s} {baseline_text} -> {f['speedup_vs_trace']:5.2f}x"
                f"  (cold compile {f['compile_seconds_cold']:.2f}s, "
                f"warm load {f['load_seconds_warm'] * 1e3:.1f}ms, "
                f"break-even {f['break_even_runs']:.1f} runs){flag}"
            )

    # Batched lockstep rows: gated on aggregate MIPS, matched on (app, lanes).
    base_batched = {(r["app"], r["lanes"]): r for r in base_data.get("batched", [])}
    fresh_batched = {(r["app"], r["lanes"]): r for r in fresh_data.get("batched", [])}
    if not base_batched:
        print(
            "\nbatched lockstep: baseline has no batched rows "
            "(predates the batched bench section); skipping the comparison. "
            "Refresh BENCH_sim.json to start gating them."
        )
    elif not fresh_batched:
        print(
            "\nbatched lockstep: fresh run has no batched rows; skipping "
            "the comparison (rerun bench_sim_speed from this tree)."
        )
    else:
        print("\nbatched lockstep (aggregate MIPS):")
        print(f"{'app':8s} {'lanes':>5s} {'baseline':>10s} {'fresh':>10s} {'delta':>8s}")
        for key in sorted(base_batched):
            b = base_batched[key]["aggregate_mips"]
            if key not in fresh_batched:
                print(f"{key[0]:8s} {key[1]:5d} {b:10.2f} {'missing':>10s}")
                regressions.append((key, "batched row missing from fresh run"))
                continue
            f = fresh_batched[key]["aggregate_mips"]
            delta = (f - b) / b * 100.0
            flag = ""
            if delta < -args.threshold:
                flag = f"  << regression > {args.threshold:.0f}%"
                regressions.append((key, f"{delta:+.1f}%"))
            print(f"{key[0]:8s} {key[1]:5d} {b:10.2f} {f:10.2f} {delta:+7.1f}%{flag}")
        for key in sorted(set(fresh_batched) - set(base_batched)):
            print(f"{key[0]:8s} {key[1]:5d} {'new row':>10s} "
                  f"{fresh_batched[key]['aggregate_mips']:10.2f}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0f}%:",
              file=sys.stderr)
        for key, what in regressions:
            print(f"  {key[0]}/{key[1]}: {what}", file=sys.stderr)
        return 1
    print(f"\nOK: no row regressed by more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
