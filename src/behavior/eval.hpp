// Tree-walking evaluation of behavior IR against a processor state and a
// decoded instruction. This is the semantic core shared by both simulators:
// the interpretive simulator walks the original operation trees (resolving
// coding-time conditionals at run time, every time), while the compiled
// simulator walks trees that the specializer has already folded.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "behavior/ir.hpp"
#include "decode/decoded.hpp"
#include "model/model.hpp"
#include "model/state.hpp"

namespace lisasim {

/// Pipeline-control requests raised by behavior intrinsics. The engine
/// inspects and clears these after running each operation.
struct PipelineControl {
  bool flush = false;     // squash younger in-flight instructions
  int stall_cycles = 0;   // hold this instruction in its stage
  bool halt = false;      // stop simulation

  void clear() { *this = {}; }
  /// Any request pending? The engine tests this once after each execute
  /// and only clears when something fired, so the (overwhelmingly common)
  /// uneventful execute costs one predictable branch.
  bool any() const { return flush || halt || stall_cycles != 0; }
};

/// Engine callback used for ACTIVATION: schedule `child` (a node of the
/// same decode tree) to run in its declared pipeline stage.
class ActivationSink {
 public:
  virtual ~ActivationSink() = default;
  virtual void activate(const DecodedNode& child) = 0;
};

class Evaluator {
 public:
  Evaluator(ProcessorState& state, PipelineControl& control)
      : state_(&state), control_(&control) {}

  /// Execute the BEHAVIOR and ACTIVATION items of `node`'s operation,
  /// resolving coding-time conditionals against the decode tree. `sink`
  /// receives activation requests (may be null when the operation is known
  /// to have none, e.g. specialized single-stage programs).
  void run_op(const DecodedNode& node, ActivationSink* sink);

  /// Execute a statement list in the context of `node` with fresh locals.
  void exec_program(std::span<const StmtPtr> stmts, const DecodedNode& node);

  /// Execute a fully specialized statement list (no decode-tree context:
  /// symbols are only locals and resources). Used by the compiled simulator
  /// at the dynamic-scheduling level.
  void exec_flat(std::span<const StmtPtr> stmts, int num_locals);

  /// Evaluate an expression in the context of `node`.
  std::int64_t eval(const Expr& expr, const DecodedNode& node);

  /// Evaluate the EXPRESSION item of `node`'s operation (operand access).
  std::int64_t eval_op_expression(const DecodedNode& node);

  ProcessorState& state() { return *state_; }

 private:
  struct Frame {
    const DecodedNode* node = nullptr;
    // Base offset into locals_stack_; indexed indirectly because nested
    // evaluation may grow (and reallocate) the stack.
    std::size_t local_base = 0;
  };

  std::int64_t& local(const Frame& frame, std::int32_t slot) {
    return locals_stack_[frame.local_base + static_cast<std::size_t>(slot)];
  }

  void exec_stmts(std::span<const StmtPtr> stmts, Frame& frame);
  void exec_stmt(const Stmt& stmt, Frame& frame);
  std::int64_t eval_expr(const Expr& expr, Frame& frame);
  void assign(const Expr& lhs, std::int64_t value, Frame& frame);
  void assign_to_op_expression(const DecodedNode& node, std::int64_t value);
  std::int64_t eval_call(const Expr& expr, Frame& frame);

  /// Equality with the coding-time identity semantics: if either side names
  /// an operation, compare decoded-operation identities, else values.
  bool equal_identity_or_value(const Expr& lhs, const Expr& rhs,
                               Frame& frame);

  /// Identity of the operation a symbol denotes in a coding-time comparison
  /// (`mode == short`): kEnumOp yields the named operation, kChild/kUpward
  /// yield the decoded choice. Returns -1 when the symbol is not an
  /// operation reference.
  OperationId op_identity(const Expr& expr, const Frame& frame);

  /// Resolve an upward REFERENCE: find `name_id` as a label or child of an
  /// enclosing decode-tree node. Returns the owning node and what was found.
  struct UpwardHit {
    const DecodedNode* node = nullptr;
    int label_slot = -1;
    int child_slot = -1;
  };
  UpwardHit resolve_upward(StringId name_id, const DecodedNode& from) const;

  const DecodedNode& child_node(const DecodedNode& node, int slot) const;

  /// Walk the operation's items resolving coding-time conditionals, calling
  /// `fn(item)` for every reachable non-conditional item.
  template <typename Fn>
  void for_each_active_item(const DecodedNode& node, Frame& frame, Fn&& fn);

  /// Reserve a frame of `n` local slots; returns its base offset. Frames
  /// are not zeroed: local declarations always store before any read (sema
  /// enforces declaration-before-use).
  std::size_t push_locals(std::size_t n) {
    const std::size_t base = locals_top_;
    locals_top_ = base + n;
    if (locals_stack_.size() < locals_top_) locals_stack_.resize(locals_top_);
    return base;
  }
  void pop_locals(std::size_t base) { locals_top_ = base; }

  ProcessorState* state_;
  PipelineControl* control_;
  // Shared local-variable stack with a high-water mark: exec_program/run_op
  // push a frame and pop it on exit, so the hot path never allocates or
  // zero-fills.
  std::vector<std::int64_t> locals_stack_;
  std::size_t locals_top_ = 0;
};

}  // namespace lisasim
