#include "behavior/ir.hpp"

#include <array>
#include <cassert>

namespace lisasim {

namespace {

struct IntrinsicInfo {
  Intrinsic id;
  const char* name;
  int arity;
};

constexpr std::array<IntrinsicInfo, 9> kIntrinsics = {{
    {Intrinsic::kSext, "sext", 2},
    {Intrinsic::kZext, "zext", 2},
    {Intrinsic::kSat, "sat", 2},
    {Intrinsic::kAbs, "abs", 1},
    {Intrinsic::kMin, "min", 2},
    {Intrinsic::kMax, "max", 2},
    {Intrinsic::kFlush, "flush", 0},
    {Intrinsic::kStall, "stall", 1},
    {Intrinsic::kHalt, "halt", 0},
}};

}  // namespace

Intrinsic intrinsic_by_name(std::string_view name) {
  for (const auto& info : kIntrinsics)
    if (name == info.name) return info.id;
  return Intrinsic::kNone;
}

int intrinsic_arity(Intrinsic i) {
  for (const auto& info : kIntrinsics)
    if (info.id == i) return info.arity;
  return -1;
}

const char* intrinsic_name(Intrinsic i) {
  for (const auto& info : kIntrinsics)
    if (info.id == i) return info.name;
  return "<none>";
}

const char* bin_op_spelling(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kRem: return "%";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kLogicalAnd: return "&&";
    case BinOp::kLogicalOr: return "||";
  }
  return "?";
}

const char* un_op_spelling(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kLogicalNot: return "!";
    case UnOp::kBitNot: return "~";
  }
  return "?";
}

ExprPtr Expr::make_int(std::int64_t v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->value = v;
  e->loc = std::move(loc);
  return e;
}

ExprPtr Expr::make_sym(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kSym;
  e->sym.name = std::move(name);
  e->loc = std::move(loc);
  return e;
}

ExprPtr Expr::make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->loc = lhs->loc;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::make_unary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->loc = operand->loc;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->value = value;
  e->sym = sym;
  e->un_op = un_op;
  e->bin_op = bin_op;
  e->callee = callee;
  e->intrinsic = intrinsic;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->clone());
  return e;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  s->decl_type = decl_type;
  s->name = name;
  s->local_slot = local_slot;
  if (lhs) s->lhs = lhs->clone();
  if (value) s->value = value->clone();
  s->then_body = clone_stmts(then_body);
  s->else_body = clone_stmts(else_body);
  return s;
}

std::vector<StmtPtr> clone_stmts(const std::vector<StmtPtr>& stmts) {
  std::vector<StmtPtr> out;
  out.reserve(stmts.size());
  for (const auto& s : stmts) out.push_back(s->clone());
  return out;
}

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::kIntLit:
      return std::to_string(value);
    case ExprKind::kSym:
      return sym.name;
    case ExprKind::kIndex:
      return sym.name + "[" + children[0]->to_string() + "]";
    case ExprKind::kUnary:
      return std::string(un_op_spelling(un_op)) + "(" +
             children[0]->to_string() + ")";
    case ExprKind::kBinary:
      return "(" + children[0]->to_string() + " " +
             bin_op_spelling(bin_op) + " " + children[1]->to_string() + ")";
    case ExprKind::kTernary:
      return "(" + children[0]->to_string() + " ? " +
             children[1]->to_string() + " : " + children[2]->to_string() +
             ")";
    case ExprKind::kCall: {
      std::string out =
          intrinsic == Intrinsic::kNone ? callee : intrinsic_name(intrinsic);
      out += "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->to_string();
      }
      out += ")";
      return out;
    }
  }
  return "<expr>";
}

std::string Stmt::to_string(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (kind) {
    case StmtKind::kLocalDecl: {
      std::string out = pad + decl_type.to_string() + " " + name;
      if (value) out += " = " + value->to_string();
      return out + ";\n";
    }
    case StmtKind::kAssign:
      return pad + lhs->to_string() + " = " + value->to_string() + ";\n";
    case StmtKind::kExpr:
      return pad + value->to_string() + ";\n";
    case StmtKind::kIf: {
      std::string out = pad + "if (" + value->to_string() + ") {\n";
      for (const auto& s : then_body) out += s->to_string(indent + 1);
      out += pad + "}";
      if (!else_body.empty()) {
        out += " else {\n";
        for (const auto& s : else_body) out += s->to_string(indent + 1);
        out += pad + "}";
      }
      return out + "\n";
    }
  }
  return pad + "<stmt>\n";
}

}  // namespace lisasim
