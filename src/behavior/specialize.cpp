#include "behavior/specialize.hpp"

#include <cassert>

#include "behavior/fold.hpp"

namespace lisasim {

namespace {

bool is_int(const ExprPtr& e) { return e && e->kind == ExprKind::kIntLit; }

ExprPtr make_bool(ExprPtr e) {
  // Normalize a value to 0/1 (used when folding short-circuit operators).
  auto zero = Expr::make_int(0);
  return Expr::make_binary(BinOp::kNe, std::move(e), std::move(zero));
}

}  // namespace

void collect_auto_ops(
    const DecodedNode& node,
    std::vector<std::pair<const DecodedNode*, int>>& out) {
  if (node.op->has_behavior || !node.op->items.empty())
    out.emplace_back(&node, effective_stage_of(node));
  for (std::size_t slot = 0; slot < node.op->children.size(); ++slot) {
    if (!node.op->children[slot].in_coding) continue;
    if (node.children[slot]) collect_auto_ops(*node.children[slot], out);
  }
}

struct Specializer::Builder {
  std::vector<SpecProgram> stages;
  // FIFO activation queues, one per stage: requests for later stages are
  // enqueued and drained after that stage's auto-run programs.
  std::vector<std::vector<const DecodedNode*>> queues;
  int current_stage = 0;
};

const DecodedNode& Specializer::child_node(const DecodedNode& node,
                                           int slot) const {
  const auto& child = node.children[static_cast<std::size_t>(slot)];
  if (!child)
    throw SimError("group '" +
                   node.op->children[static_cast<std::size_t>(slot)].name +
                   "' of operation '" + node.op->name +
                   "' has no decoded choice");
  return *child;
}

PacketSchedule Specializer::schedule_packet(const DecodedPacket& packet) const {
  const int depth = model_->pipeline.depth();
  Builder builder;
  builder.stages.resize(static_cast<std::size_t>(depth));
  builder.queues.resize(static_cast<std::size_t>(depth));

  std::vector<std::pair<const DecodedNode*, int>> autos;
  for (const auto& slot : packet.slots) collect_auto_ops(*slot, autos);

  for (int stage = 0; stage < depth; ++stage) {
    builder.current_stage = stage;
    for (const auto& [node, node_stage] : autos)
      if (node_stage == stage) emit_node_program(*node, stage, builder);
    auto& queue = builder.queues[static_cast<std::size_t>(stage)];
    for (std::size_t i = 0; i < queue.size(); ++i)
      emit_node_program(*queue[i], stage, builder);
  }

  PacketSchedule schedule;
  schedule.stage_programs = std::move(builder.stages);
  return schedule;
}

void Specializer::emit_node_program(const DecodedNode& node, int stage,
                                    Builder& builder) const {
  if (stage < 0 || static_cast<std::size_t>(stage) >= builder.stages.size())
    throw SimError("operation '" + node.op->name +
                   "' scheduled outside the pipeline");
  SpecProgram& program = builder.stages[static_cast<std::size_t>(stage)];
  const int local_base = program.num_locals;
  program.num_locals += node.op->num_locals;

  for_each_static_item(node, [&](const OpItem& item) {
    switch (item.kind) {
      case OpItem::Kind::kBehavior: {
        auto specialized = specialize_stmts(item.stmts, node, local_base);
        for (auto& s : specialized) {
          // Local slots were rebased during specialization.
          program.stmts.push_back(std::move(s));
        }
        break;
      }
      case OpItem::Kind::kActivation:
        for (std::int32_t slot : item.activation_slots) {
          const DecodedNode& child = child_node(node, slot);
          const int child_stage =
              child.op->stage >= 0 ? child.op->stage : stage;
          // Later stages: enqueue for that stage's column (FIFO, matching
          // the interpretive engine). Same-or-earlier stages execute inline
          // at the activation point.
          if (child_stage > stage)
            builder.queues[static_cast<std::size_t>(child_stage)].push_back(
                &child);
          else
            emit_node_program(child, stage, builder);
        }
        break;
      default:
        break;  // kExpression is pulled by operand access
    }
  });
}

ExprPtr Specializer::specialize_expr(const Expr& expr,
                                     const DecodedNode& node) const {
  return spec_expr(expr, node, 0);
}

ExprPtr Specializer::specialize_op_expression(const DecodedNode& node) const {
  const Expr* found = nullptr;
  for_each_static_item(node, [&](const OpItem& item) {
    if (!found && item.kind == OpItem::Kind::kExpression)
      found = item.expr.get();
  });
  if (!found)
    throw SimError("operation '" + node.op->name +
                   "' is used as an operand but has no active EXPRESSION");
  return spec_expr(*found, node, 0);
}

std::vector<StmtPtr> Specializer::specialize_stmts(
    const std::vector<StmtPtr>& stmts, const DecodedNode& node,
    int local_base) const {
  std::vector<StmtPtr> out;
  out.reserve(stmts.size());
  for (const auto& stmt : stmts) {
    StmtPtr s = specialize_stmt(*stmt, node, local_base, out);
    if (s) out.push_back(std::move(s));
  }
  return out;
}

StmtPtr Specializer::specialize_stmt(const Stmt& stmt, const DecodedNode& node,
                                     int local_base,
                                     std::vector<StmtPtr>& out) const {
  switch (stmt.kind) {
    case StmtKind::kLocalDecl: {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kLocalDecl;
      s->loc = stmt.loc;
      s->decl_type = stmt.decl_type;
      s->name = stmt.name;
      s->local_slot = stmt.local_slot + local_base;
      if (stmt.value) s->value = spec_expr(*stmt.value, node, local_base);
      return s;
    }
    case StmtKind::kAssign: {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kAssign;
      s->loc = stmt.loc;
      s->lhs = spec_expr(*stmt.lhs, node, local_base);
      s->value = spec_expr(*stmt.value, node, local_base);
      return s;
    }
    case StmtKind::kExpr: {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kExpr;
      s->loc = stmt.loc;
      s->value = spec_expr(*stmt.value, node, local_base);
      if (s->value->kind == ExprKind::kIntLit) return nullptr;  // no effect
      return s;
    }
    case StmtKind::kIf: {
      ExprPtr cond = spec_expr(*stmt.value, node, local_base);
      if (cond->kind == ExprKind::kIntLit) {
        // Decode-static condition: splice the taken branch inline. This is
        // where unpredicated instructions lose their predicate test.
        const auto& body =
            cond->value != 0 ? stmt.then_body : stmt.else_body;
        for (const auto& sub : body) {
          StmtPtr s = specialize_stmt(*sub, node, local_base, out);
          if (s) out.push_back(std::move(s));
        }
        return nullptr;
      }
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kIf;
      s->loc = stmt.loc;
      s->value = std::move(cond);
      s->then_body = specialize_stmts(stmt.then_body, node, local_base);
      s->else_body = specialize_stmts(stmt.else_body, node, local_base);
      return s;
    }
  }
  return nullptr;
}

ExprPtr Specializer::spec_expr(const Expr& expr, const DecodedNode& node,
                               int local_base) const {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return expr.clone();

    case ExprKind::kSym:
      switch (expr.sym.kind) {
        case SymKind::kLocal: {
          auto e = expr.clone();
          e->sym.index += local_base;
          return e;
        }
        case SymKind::kResource:
          return expr.clone();
        case SymKind::kField:
          // Compile-time decoding: the operand bits become a constant.
          return Expr::make_int(
              node.fields[static_cast<std::size_t>(expr.sym.index)],
              expr.loc);
        case SymKind::kChild:
          return specialize_op_expression(
              child_node(node, expr.sym.index));
        case SymKind::kUpward: {
          for (const DecodedNode* a = node.parent; a; a = a->parent) {
            if (const int slot = a->op->label_slot(expr.sym.name_id);
                slot >= 0)
              return Expr::make_int(
                  a->fields[static_cast<std::size_t>(slot)], expr.loc);
            if (const int slot = a->op->child_slot(expr.sym.name_id);
                slot >= 0)
              return specialize_op_expression(child_node(*a, slot));
          }
          throw SimError("unresolved REFERENCE '" + expr.sym.name +
                         "' in operation '" + node.op->name + "'");
        }
        case SymKind::kEnumOp:
          throw SimError("operation name '" + expr.sym.name +
                         "' used as a value outside an identity comparison");
        case SymKind::kUnresolved:
          throw SimError("unresolved symbol '" + expr.sym.name + "'");
      }
      return expr.clone();

    case ExprKind::kIndex: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIndex;
      e->loc = expr.loc;
      e->sym = expr.sym;
      e->children.push_back(spec_expr(*expr.children[0], node, local_base));
      return e;
    }

    case ExprKind::kUnary: {
      ExprPtr operand = spec_expr(*expr.children[0], node, local_base);
      if (is_int(operand))
        return Expr::make_int(fold_unary(expr.un_op, operand->value),
                              expr.loc);
      auto e = Expr::make_unary(expr.un_op, std::move(operand));
      e->loc = expr.loc;
      return e;
    }

    case ExprKind::kBinary: {
      // Identity comparisons are always decode-static.
      if (expr.bin_op == BinOp::kEq || expr.bin_op == BinOp::kNe) {
        const auto is_enum_op = [](const Expr& e) {
          return e.kind == ExprKind::kSym && e.sym.kind == SymKind::kEnumOp;
        };
        if (is_enum_op(*expr.children[0]) || is_enum_op(*expr.children[1])) {
          const OperationId a = static_identity(*expr.children[0], node);
          const OperationId b = static_identity(*expr.children[1], node);
          const bool eq = a >= 0 && a == b;
          return Expr::make_int((expr.bin_op == BinOp::kEq) == eq ? 1 : 0,
                                expr.loc);
        }
      }
      ExprPtr lhs = spec_expr(*expr.children[0], node, local_base);
      ExprPtr rhs = spec_expr(*expr.children[1], node, local_base);
      if (expr.bin_op == BinOp::kLogicalAnd && is_int(lhs))
        return lhs->value == 0 ? Expr::make_int(0, expr.loc)
                               : make_bool(std::move(rhs));
      if (expr.bin_op == BinOp::kLogicalOr && is_int(lhs))
        return lhs->value != 0 ? Expr::make_int(1, expr.loc)
                               : make_bool(std::move(rhs));
      if (is_int(lhs) && is_int(rhs)) {
        if (const auto v = fold_binary(expr.bin_op, lhs->value, rhs->value))
          return Expr::make_int(*v, expr.loc);
        // Division by a constant zero: keep it, fail at run time like the
        // interpretive simulator would.
      }
      auto e = Expr::make_binary(expr.bin_op, std::move(lhs), std::move(rhs));
      e->loc = expr.loc;
      return e;
    }

    case ExprKind::kTernary: {
      ExprPtr cond = spec_expr(*expr.children[0], node, local_base);
      if (is_int(cond))
        return spec_expr(cond->value != 0 ? *expr.children[1]
                                          : *expr.children[2],
                         node, local_base);
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kTernary;
      e->loc = expr.loc;
      e->children.push_back(std::move(cond));
      e->children.push_back(spec_expr(*expr.children[1], node, local_base));
      e->children.push_back(spec_expr(*expr.children[2], node, local_base));
      return e;
    }

    case ExprKind::kCall: {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCall;
      e->loc = expr.loc;
      e->callee = expr.callee;
      e->intrinsic = expr.intrinsic;
      bool all_const = true;
      for (const auto& arg : expr.children) {
        e->children.push_back(spec_expr(*arg, node, local_base));
        all_const = all_const && is_int(e->children.back());
      }
      if (all_const) {
        std::vector<std::int64_t> args;
        args.reserve(e->children.size());
        for (const auto& arg : e->children) args.push_back(arg->value);
        if (const auto v = fold_intrinsic(expr.intrinsic, args))
          return Expr::make_int(*v, expr.loc);
      }
      return e;
    }
  }
  return expr.clone();
}

OperationId Specializer::static_identity(const Expr& expr,
                                         const DecodedNode& node) const {
  if (expr.kind != ExprKind::kSym) return -1;
  switch (expr.sym.kind) {
    case SymKind::kEnumOp:
      return expr.sym.index;
    case SymKind::kChild:
      return child_node(node, expr.sym.index).op->id;
    case SymKind::kUpward:
      for (const DecodedNode* a = node.parent; a; a = a->parent)
        if (const int slot = a->op->child_slot(expr.sym.name_id); slot >= 0)
          return child_node(*a, slot).op->id;
      return -1;
    default:
      return -1;
  }
}

std::int64_t Specializer::eval_static(const Expr& expr,
                                      const DecodedNode& node) const {
  ExprPtr folded = spec_expr(expr, node, 0);
  if (folded->kind != ExprKind::kIntLit)
    throw SimError(
        "coding-time condition is not decode-static in operation '" +
        node.op->name + "': " + expr.to_string());
  return folded->value;
}

template <typename Fn>
void Specializer::for_each_static_item(const DecodedNode& node,
                                       Fn&& fn) const {
  const auto walk = [&](const auto& self,
                        const std::vector<OpItemPtr>& items) -> void {
    for (const auto& item : items) {
      switch (item->kind) {
        case OpItem::Kind::kIf:
          if (eval_static(*item->cond, node) != 0)
            self(self, item->then_items);
          else
            self(self, item->else_items);
          break;
        case OpItem::Kind::kSwitch: {
          const OpItem::Case* chosen = nullptr;
          const OpItem::Case* fallback = nullptr;
          for (const auto& c : item->cases) {
            if (c.is_default) {
              fallback = &c;
              continue;
            }
            const auto is_enum_op = [](const Expr& e) {
              return e.kind == ExprKind::kSym &&
                     e.sym.kind == SymKind::kEnumOp;
            };
            bool match;
            if (is_enum_op(*item->cond) || is_enum_op(*c.match)) {
              const OperationId a = static_identity(*item->cond, node);
              const OperationId b = static_identity(*c.match, node);
              match = a >= 0 && a == b;
            } else {
              match = eval_static(*item->cond, node) ==
                      eval_static(*c.match, node);
            }
            if (match) {
              chosen = &c;
              break;
            }
          }
          if (!chosen) chosen = fallback;
          if (chosen) self(self, chosen->items);
          break;
        }
        default:
          fn(*item);
      }
    }
  };
  walk(walk, node.op->items);
}

}  // namespace lisasim
