// Behavior IR: the expression/statement language used inside BEHAVIOR and
// EXPRESSION sections of a machine description, and (re-used) for the
// coding-time conditions of IF/ELSE and SWITCH/CASE around sections.
//
// The IR is produced by the LISA parser with unresolved symbol references;
// semantic analysis (src/model/sema) resolves each SymRef against the
// enclosing operation's DECLARE items and the model's resources. The
// interpretive simulator walks these trees directly; the simulation
// compiler partially evaluates them (src/behavior/specialize) and lowers
// them to micro-operations (src/behavior/microops).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diag.hpp"
#include "support/interner.hpp"
#include "support/value.hpp"

namespace lisasim {

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,  // kShr is arithmetic on the 64-bit domain
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogicalAnd, kLogicalOr,
};

enum class UnOp : std::uint8_t { kNeg, kLogicalNot, kBitNot };

/// Built-in functions callable from BEHAVIOR sections.
enum class Intrinsic : std::uint8_t {
  kNone,
  kSext,   // sext(v, bits): sign-extend the low `bits` of v
  kZext,   // zext(v, bits): zero-extend the low `bits` of v
  kSat,    // sat(v, bits): signed saturation to `bits` bits
  kAbs,    // abs(v)
  kMin,    // min(a, b) signed
  kMax,    // max(a, b) signed
  kFlush,  // flush(): squash younger in-flight instructions, refetch at PC
  kStall,  // stall(n): hold this instruction in its stage n extra cycles
  kHalt,   // halt(): stop the simulation after this cycle
};

/// How a name in a behavior/expression resolved. Filled in by sema.
enum class SymKind : std::uint8_t {
  kUnresolved,
  kLocal,     // local variable: index = local slot in the enclosing behavior
  kResource,  // model resource (scalar, register file or memory): index =
              // ResourceId; arrays are read via Index expressions
  kField,     // terminal coding field (LABEL) of the current operation:
              // index = label slot in the operation
  kChild,     // GROUP/INSTANCE of the current operation: index = child slot;
              // reads/writes delegate to the chosen operation's EXPRESSION
  kUpward,    // REFERENCE: resolved by name against enclosing decode-tree
              // nodes at evaluation/specialization time
  kEnumOp,    // an operation name used as a value in coding-time conditions
              // (e.g. `mode == short`): index = OperationId
};

struct SymRef {
  std::string name;
  StringId name_id = 0;  // interned by sema for fast upward lookup
  SymKind kind = SymKind::kUnresolved;
  std::int32_t index = -1;
};

enum class ExprKind : std::uint8_t {
  kIntLit,
  kSym,
  kIndex,    // sym[children[0]] — element of a register file or memory
  kUnary,    // un_op children[0]
  kBinary,   // children[0] bin_op children[1]
  kTernary,  // children[0] ? children[1] : children[2]
  kCall,     // intrinsic(children...)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kIntLit;
  SourceLoc loc;

  std::int64_t value = 0;  // kIntLit
  SymRef sym;              // kSym, kIndex (the array base)
  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;
  std::string callee;                    // kCall, before resolution
  Intrinsic intrinsic = Intrinsic::kNone;  // kCall, after resolution
  std::vector<ExprPtr> children;

  ExprPtr clone() const;
  std::string to_string() const;

  static ExprPtr make_int(std::int64_t v, SourceLoc loc = {});
  static ExprPtr make_sym(std::string name, SourceLoc loc = {});
  static ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr make_unary(UnOp op, ExprPtr operand);
};

enum class StmtKind : std::uint8_t {
  kLocalDecl,  // type name = init;
  kAssign,     // lhs = value;
  kIf,         // if (value) then_body else else_body   (run-time conditional)
  kExpr,       // value;  (intrinsic call for its side effect)
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  SourceLoc loc;

  // kLocalDecl
  ValueType decl_type;
  std::string name;
  std::int32_t local_slot = -1;  // assigned by sema

  ExprPtr lhs;    // kAssign target
  ExprPtr value;  // kAssign value / kIf condition / kExpr expression /
                  // kLocalDecl initializer (may be null)
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;

  StmtPtr clone() const;
  std::string to_string(int indent = 0) const;
};

std::vector<StmtPtr> clone_stmts(const std::vector<StmtPtr>& stmts);

/// Resolve an intrinsic by source name; returns kNone if unknown.
Intrinsic intrinsic_by_name(std::string_view name);
/// Number of arguments the intrinsic requires.
int intrinsic_arity(Intrinsic i);
const char* intrinsic_name(Intrinsic i);

const char* bin_op_spelling(BinOp op);
const char* un_op_spelling(UnOp op);

}  // namespace lisasim
