#include "behavior/fuse.hpp"

#include "behavior/opt_util.hpp"

namespace lisasim {

namespace {

bool commutative(BinOp bop) {
  switch (bop) {
    case BinOp::kAdd:
    case BinOp::kMul:
    case BinOp::kAnd:
    case BinOp::kOr:
    case BinOp::kXor:
    case BinOp::kEq:
    case BinOp::kNe:
      return true;
    default:
      return false;
  }
}

bool is_div_rem(BinOp bop) {
  return bop == BinOp::kDiv || bop == BinOp::kRem;
}

class Fuser {
 public:
  explicit Fuser(MicroProgram& program) : program_(program) {}

  bool run() {
    const std::size_t n = program_.ops.size();
    if (n < 2) return false;
    if (!mo_collect_targets(program_, is_target_)) return false;
    // tgt_prefix_[i] = branch targets at indices <= i; a producer at p may
    // fuse into a consumer at q only when no target lies in (p, q] — a
    // branch entering between them would skip the producer's half of the
    // fused op.
    tgt_prefix_.assign(n + 1, 0);
    std::int32_t running = 0;
    for (std::size_t i = 0; i <= n; ++i) {
      running += is_target_[i];
      tgt_prefix_[i] = running;
    }
    count_defs_uses();
    dead_.assign(n, 0);
    fuse_const_operands();
    fuse_elem_indices();
    fuse_adjacent_pairs();
    fuse_scalar_moves();
    fuse_scalar_branches();
    mo_remove_marked(program_, dead_);
    return changed_;
  }

 private:
  void count_defs_uses() {
    const auto nt = static_cast<std::size_t>(program_.num_temps);
    def_count_.assign(nt, 0);
    use_count_.assign(nt, 0);
    def_idx_.assign(nt, -1);
    for (std::size_t i = 0; i < program_.ops.size(); ++i) {
      const MicroOp& op = program_.ops[i];
      mo_for_each_read(op, [&](std::int16_t r) {
        ++use_count_[static_cast<std::size_t>(r)];
      });
      const std::int32_t d = mo_def_of(op);
      if (d >= 0) {
        ++def_count_[static_cast<std::size_t>(d)];
        def_idx_[static_cast<std::size_t>(d)] =
            static_cast<std::int32_t>(i);
      }
    }
  }

  /// Index of the sole definition of `t`, or -1 when `t` has several (or
  /// is a live-in local slot, which the lowerer zero-initializes — so
  /// def_count >= 1 always holds for read temps).
  std::int32_t single_def(std::int32_t t) const {
    return def_count_[static_cast<std::size_t>(t)] == 1
               ? def_idx_[static_cast<std::size_t>(t)]
               : -1;
  }

  bool no_target_between(std::int32_t p, std::int32_t q) const {
    return tgt_prefix_[static_cast<std::size_t>(q)] ==
           tgt_prefix_[static_cast<std::size_t>(p)];
  }

  /// A read of `t` was fused away. When the last use of a single-def pure
  /// producer disappears, the producer dies too, cascading through its own
  /// reads (kConst feeding kBinImm feeding kReadElemOff, for example).
  void drop_use(std::int32_t t) {
    if (--use_count_[static_cast<std::size_t>(t)] > 0) return;
    const std::int32_t d = single_def(t);
    if (d < 0 || dead_[static_cast<std::size_t>(d)]) return;
    const MicroOp& def = program_.ops[static_cast<std::size_t>(d)];
    if (!mo_is_pure_def(def)) return;
    dead_[static_cast<std::size_t>(d)] = 1;
    mo_for_each_read(def, [&](std::int16_t r) { drop_use(r); });
  }

  /// If `t` is a single-def kConst visible at `use` (no target between),
  /// return its def index.
  std::int32_t const_def_at(std::int32_t t, std::int32_t use) const {
    const std::int32_t d = single_def(t);
    if (d < 0 || dead_[static_cast<std::size_t>(d)]) return -1;
    if (program_.ops[static_cast<std::size_t>(d)].kind != MKind::kConst)
      return -1;
    if (!no_target_between(d, use)) return -1;
    return d;
  }

  // -- pattern 1: const -> bin -------------------------------------------

  void fuse_const_operands() {
    for (std::size_t i = 0; i < program_.ops.size(); ++i) {
      MicroOp& op = program_.ops[i];
      if (op.kind == MKind::kIntr && intrinsic_arity(op.intr()) == 2) {
        // sext/zext and friends almost always take a constant width.
        const std::int32_t cd =
            const_def_at(op.c, static_cast<std::int32_t>(i));
        if (cd >= 0) {
          const std::int16_t t = op.c;
          op = mo_intr_imm(
              op.intr(), op.a, op.b,
              static_cast<std::int32_t>(
                  program_.ops[static_cast<std::size_t>(cd)].imm));
          drop_use(t);
          changed_ = true;
        }
        continue;
      }
      if (op.kind != MKind::kBin) continue;
      const auto use = static_cast<std::int32_t>(i);
      // Right operand constant is the straightforward kBinImm form; a
      // constant-zero divisor must stay a kBin so it throws at run time.
      const std::int32_t cd = const_def_at(op.c, use);
      if (cd >= 0) {
        const std::int32_t cval =
            static_cast<std::int32_t>(
                program_.ops[static_cast<std::size_t>(cd)].imm);
        if (is_div_rem(op.bop()) && cval == 0) continue;
        const std::int16_t t = op.c;
        op = mo_bin_imm(op.bop(), op.a, op.b, cval);
        drop_use(t);
        changed_ = true;
        continue;
      }
      const std::int32_t bd = const_def_at(op.b, use);
      if (bd >= 0) {
        const std::int32_t bval =
            static_cast<std::int32_t>(
                program_.ops[static_cast<std::size_t>(bd)].imm);
        const std::int16_t t = op.b;
        if (commutative(op.bop())) {
          op = mo_bin_imm(op.bop(), op.a, op.c, bval);
        } else {
          // imm <op> t[b]: the divisor stays dynamic, so /0 still throws.
          op = mo_bin_imm_r(op.bop(), op.a, bval, op.c);
        }
        drop_use(t);
        changed_ = true;
      }
    }
  }

  // -- pattern 2: folded element indices ---------------------------------

  /// The index temp of kReadElem/kWriteElem lives in .b for both kinds.
  void fuse_elem_indices() {
    for (std::size_t i = 0; i < program_.ops.size(); ++i) {
      MicroOp& op = program_.ops[i];
      const bool is_read = op.kind == MKind::kReadElem;
      const bool is_write = op.kind == MKind::kWriteElem;
      if (!is_read && !is_write) continue;
      const auto use = static_cast<std::int32_t>(i);
      const std::int32_t d = single_def(op.b);
      if (d < 0 || dead_[static_cast<std::size_t>(d)]) continue;
      if (!no_target_between(d, use)) continue;
      const MicroOp& def = program_.ops[static_cast<std::size_t>(d)];
      if (def.kind == MKind::kConst) {
        const std::int16_t t = op.b;
        op = is_read ? mo_read_elem_c(op.a, op.res,
                                      static_cast<std::int32_t>(def.imm))
                     : mo_write_elem_c(op.res,
                                       static_cast<std::int32_t>(def.imm),
                                       op.a);
        drop_use(t);
        changed_ = true;
        continue;
      }
      if (def.kind == MKind::kBinImm && def.bop() == BinOp::kAdd) {
        // index = src + #k: the fused op wrap-adds exactly like kBinImm
        // kAdd followed by the uint64 index cast. The source temp must
        // still hold its def-site value at the use.
        const std::int16_t src = def.b;
        if (redefined_between(src, d, use)) continue;
        const std::int16_t t = op.b;
        op = is_read ? mo_read_elem_off(op.a, op.res, src, def.imm)
                     : mo_write_elem_off(op.res, src, def.imm, op.a);
        ++use_count_[static_cast<std::size_t>(src)];
        drop_use(t);
        changed_ = true;
        continue;
      }
      // index = scal r: kReadElemScal re-reads r at the consumer's slot,
      // so nothing between the pair may write r.
      if (is_read && def.kind == MKind::kReadScal &&
          !resource_written_between(def.res, d, use)) {
        const std::int16_t t = op.b;
        op = mo_read_elem_scal(op.a, op.res, def.res);
        drop_use(t);
        changed_ = true;
      }
    }
  }

  bool redefined_between(std::int32_t t, std::int32_t def,
                         std::int32_t use) const {
    for (std::int32_t j = def + 1; j < use; ++j) {
      if (dead_[static_cast<std::size_t>(j)]) continue;
      if (mo_def_of(program_.ops[static_cast<std::size_t>(j)]) == t)
        return true;
    }
    return false;
  }

  // -- pattern 3: adjacent producer/consumer pairs -----------------------

  std::int32_t next_live(std::size_t i) const {
    for (std::size_t j = i + 1; j < program_.ops.size(); ++j)
      if (!dead_[j]) return static_cast<std::int32_t>(j);
    return -1;
  }

  void fuse_adjacent_pairs() {
    for (std::size_t i = 0; i < program_.ops.size(); ++i) {
      if (dead_[i]) continue;
      MicroOp& prod = program_.ops[i];
      const bool bin = prod.kind == MKind::kBin;
      const bool bin_imm = prod.kind == MKind::kBinImm;
      if (!bin && !bin_imm) continue;
      const std::int32_t j = next_live(i);
      if (j < 0) continue;
      if (!no_target_between(static_cast<std::int32_t>(i), j)) continue;
      const std::int32_t t = prod.a;
      // The intermediate must exist only for this pair: one def, one use.
      if (single_def(t) != static_cast<std::int32_t>(i)) continue;
      if (use_count_[static_cast<std::size_t>(t)] != 1) continue;
      MicroOp& cons = program_.ops[static_cast<std::size_t>(j)];
      if (bin && cons.kind == MKind::kWriteScal && cons.b == t) {
        // kWriteBin evaluates the same operands and throws the same /0
        // before any store, so div/rem fuse soundly here.
        cons = mo_write_bin(prod.bop(), cons.res, prod.b, prod.c);
        dead_[i] = 1;
        changed_ = true;
        continue;
      }
      if (cons.kind == MKind::kBrZero && cons.a == t &&
          !is_div_rem(prod.bop())) {
        if (bin) {
          cons = mo_br_bin(prod.bop(), prod.b, prod.c, cons.imm);
          dead_[i] = 1;
          changed_ = true;
        } else if (prod.imm >= INT16_MIN && prod.imm <= INT16_MAX) {
          cons = mo_br_bin_imm(prod.bop(), prod.b, prod.imm, cons.imm);
          dead_[i] = 1;
          changed_ = true;
        }
      }
    }
  }

  // -- pattern 4: scalar register moves ----------------------------------

  /// Pipeline-register shifts between stages are chains of
  /// `t = scal r_src; scal r_dst = t` pairs, and constant control writes
  /// are `t = #k; scal r = t`. Both collapse into a single dispatch
  /// (kMovScal / kWriteScalImm) when the temp exists only for the pair.
  /// kMovScal re-reads the source at the consumer's position, so nothing
  /// between the pair may write r_src.
  void fuse_scalar_moves() {
    for (std::size_t i = 0; i < program_.ops.size(); ++i) {
      if (dead_[i]) continue;
      MicroOp& cons = program_.ops[i];
      if (cons.kind == MKind::kWriteElemC) {
        // scal -> element store: the scalar is re-read at the consumer's
        // slot, so nothing between the pair may write it.
        const auto use = static_cast<std::int32_t>(i);
        const std::int32_t d = single_def(cons.a);
        if (d < 0 || dead_[static_cast<std::size_t>(d)]) continue;
        if (!no_target_between(d, use)) continue;
        const MicroOp& def = program_.ops[static_cast<std::size_t>(d)];
        if (def.kind == MKind::kReadScal &&
            !resource_written_between(def.res, d, use)) {
          const std::int16_t t = cons.a;
          cons = mo_mov_elem_scal(cons.res, cons.imm, def.res);
          drop_use(t);
          changed_ = true;
        }
        continue;
      }
      if (cons.kind != MKind::kWriteScal) continue;
      const auto use = static_cast<std::int32_t>(i);
      const std::int32_t d = single_def(cons.b);
      if (d < 0 || dead_[static_cast<std::size_t>(d)]) continue;
      if (!no_target_between(d, use)) continue;
      const MicroOp& def = program_.ops[static_cast<std::size_t>(d)];
      if (def.kind == MKind::kConst) {
        const std::int16_t t = cons.b;
        cons = mo_write_scal_imm(cons.res, def.imm);
        drop_use(t);
        changed_ = true;
        continue;
      }
      // kReadScal exists only where the regcache proved the resource
      // scalar, so kMovScal's scalar read/write stays in bounds.
      if (def.kind == MKind::kReadScal &&
          !resource_written_between(def.res, d, use)) {
        const std::int16_t t = cons.b;
        cons = mo_mov_scal(cons.res, def.res);
        drop_use(t);
        changed_ = true;
        continue;
      }
      // element -> scal move: a kReadElemC can throw, and fusing moves
      // that throw to the consumer's slot, so the pair must be adjacent
      // (no live op in between that could observe the difference).
      if (def.kind == MKind::kReadElemC &&
          next_live(static_cast<std::size_t>(d)) == use) {
        const std::int16_t t = cons.b;
        cons = mo_mov_scal_elem(cons.res, def.res, def.imm);
        drop_use(t);
        changed_ = true;
      }
    }
  }

  // -- pattern 5: scalar-conditioned branches ----------------------------

  /// `t = scal r; brzero t -> L` re-reads r at the branch, so nothing
  /// between the pair may write r.
  void fuse_scalar_branches() {
    for (std::size_t i = 0; i < program_.ops.size(); ++i) {
      if (dead_[i]) continue;
      MicroOp& cons = program_.ops[i];
      if (cons.kind != MKind::kBrZero) continue;
      const auto use = static_cast<std::int32_t>(i);
      const std::int32_t d = single_def(cons.a);
      if (d < 0 || dead_[static_cast<std::size_t>(d)]) continue;
      if (!no_target_between(d, use)) continue;
      const MicroOp& def = program_.ops[static_cast<std::size_t>(d)];
      if (def.kind != MKind::kReadScal) continue;
      if (resource_written_between(def.res, d, use)) continue;
      const std::int16_t t = cons.a;
      cons = mo_br_scal_zero(def.res, cons.imm);
      drop_use(t);
      changed_ = true;
    }
  }

  bool resource_written_between(std::int16_t res, std::int32_t def,
                                std::int32_t use) const {
    for (std::int32_t j = def + 1; j < use; ++j) {
      if (dead_[static_cast<std::size_t>(j)]) continue;
      const MicroOp& op = program_.ops[static_cast<std::size_t>(j)];
      if (mo_writes_res(op.kind) && op.res == res) return true;
    }
    return false;
  }

  MicroProgram& program_;
  std::vector<char> is_target_;
  std::vector<char> dead_;
  std::vector<std::int32_t> tgt_prefix_;
  std::vector<std::int32_t> def_count_;
  std::vector<std::int32_t> use_count_;
  std::vector<std::int32_t> def_idx_;
  bool changed_ = false;
};

}  // namespace

bool fuse_microops(MicroProgram& program) {
  return Fuser(program).run();
}

}  // namespace lisasim
