// Micro-operation lowering: the third step of compiled simulation
// ("operation instantiation and simulation loop unfolding", paper §3 —
// listed as future work there). Specialized behavior trees are flattened
// into linear register-machine programs executed by a tight dispatch loop
// (threaded computed-goto where the compiler supports it, a switch loop
// otherwise), removing the tree-walk overhead from the simulation hot path.
//
// Micro-programs are produced per packet per pipeline stage; the simulation
// table and the decode-cached level pack them into one contiguous
// MicroArena (behavior/microarena.hpp) and keep only (offset, len,
// num_temps) spans, so the execution core walks a single flat buffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "behavior/eval.hpp"
#include "behavior/specialize.hpp"
#include "model/model.hpp"
#include "model/state.hpp"

namespace lisasim {

enum class MKind : std::uint8_t {
  kConst,      // t[a] = imm
  kMov,        // t[a] = t[b]
  kReadRes,    // t[a] = state[res]
  kReadElem,   // t[a] = state[res][t[b]]
  kWriteRes,   // state[res] = t[a]
  kWriteElem,  // state[res][t[b]] = t[a]
  kBin,        // t[a] = t[b] <bop> t[c]   (throws on /0, %0)
  kUn,         // t[a] = <uop> t[b]
  kIntr,       // t[a] = intr(t[b] [, t[c]])   pure intrinsics
  kBrZero,     // if (t[a] == 0) goto imm
  kBr,         // goto imm
  kFlush,      // control.flush = true
  kStall,      // control.stall_cycles += t[a]
  kHalt,       // control.halt = true
};

/// Number of MKind enumerators (dispatch tables are sized by this).
inline constexpr int kNumMKinds = static_cast<int>(MKind::kHalt) + 1;

struct MicroOp {
  MKind kind = MKind::kConst;
  BinOp bop = BinOp::kAdd;
  UnOp uop = UnOp::kNeg;
  Intrinsic intr = Intrinsic::kNone;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  ResourceId res = -1;
  std::int64_t imm = 0;
};

struct MicroProgram {
  std::vector<MicroOp> ops;
  int num_temps = 0;

  bool empty() const { return ops.empty(); }
};

/// Lower a specialized program to micro-operations. The input must be fully
/// specialized (symbols restricted to locals and resources); anything else
/// throws SimError. The result is validated (validate_microops) before it
/// is returned, so malformed branch targets surface at simulation-compile
/// time, never as an out-of-bounds dispatch at run time.
MicroProgram lower_to_microops(const SpecProgram& program);

/// Structural validation of a micro-program: every branch target must lie
/// in [0, ops.size()] (== size is the fall-off-the-end exit) and every
/// temp operand in [0, num_temps). Throws SimError. Called by
/// lower_to_microops and optimize_microops; exec_microops trusts its input.
void validate_microops(const MicroProgram& program);

/// Execute `count` micro-ops starting at `ops` — a span of a MicroArena or
/// the body of a MicroProgram. `temps` must point at scratch with room for
/// the program's num_temps slots; no zero-fill is required because lowering
/// guarantees every temp is written before it is read. This is the hot
/// dispatch loop of the compiled-static and decode-cached levels.
void exec_microops(const MicroOp* ops, std::uint32_t count,
                   ProcessorState& state, PipelineControl& control,
                   std::int64_t* temps);

/// Instrumented variant of exec_microops: identical semantics, returns the
/// number of micro-ops dispatched (benchmarks report micro-ops/cycle with
/// it; the uncounted loop stays branch-free of instrumentation).
std::uint64_t exec_microops_counted(const MicroOp* ops, std::uint32_t count,
                                    ProcessorState& state,
                                    PipelineControl& control,
                                    std::int64_t* temps);

/// Convenience wrapper over exec_microops: `temps` is caller-provided
/// scratch, resized here so repeated executions do not allocate.
void run_microops(const MicroProgram& program, ProcessorState& state,
                  PipelineControl& control, std::vector<std::int64_t>& temps);

/// Disassemble for debugging/tests.
std::string microops_to_string(const MicroOp* ops, std::size_t count);
std::string microops_to_string(const MicroProgram& program);

}  // namespace lisasim
