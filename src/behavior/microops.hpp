// Micro-operation lowering: the third step of compiled simulation
// ("operation instantiation and simulation loop unfolding", paper §3 —
// listed as future work there). Specialized behavior trees are flattened
// into linear register-machine programs executed by a tight dispatch loop
// (threaded computed-goto where the compiler supports it, a switch loop
// otherwise), removing the tree-walk overhead from the simulation hot path.
//
// Micro-programs are produced per packet per pipeline stage; the simulation
// table and the decode-cached level pack them into one contiguous
// MicroArena (behavior/microarena.hpp) and keep only (offset, len,
// num_temps) spans, so the execution core walks a single flat buffer.
//
// Encoding (16 bytes per op — half a cache line holds four):
//
//     byte  0      1      2..3   4..5   6..7   8..9   10..11  12..15
//           kind   sub    a      b      c      res    (pad)   imm
//
// `kind`/`sub` form the directly-dispatched opcode byte-pair: `kind`
// selects the handler, `sub` selects the BinOp/UnOp/Intrinsic inside it.
// Temps and resource ids are int16 (validated at lowering; trace splicing
// re-checks its accumulated temp base). `imm` is int32 and multiplexes
// small constants, branch targets, element indices/offsets and constant-
// pool indices; 64-bit immediates that do not fit live in a per-program
// (later per-arena) constant pool addressed by kConstPool.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "behavior/eval.hpp"
#include "behavior/specialize.hpp"
#include "model/model.hpp"
#include "model/state.hpp"

namespace lisasim {

// The op-kind list is an X-macro so the enum, the dispatch tables and the
// completeness static_asserts are generated from one place: adding a kind
// without a handler label fails to compile instead of falling through.
//
// The first group is the base ISA the lowerer emits; the second group is
// produced only by the optimizer (behavior/regcache.cpp promotes scalar
// resource accesses, behavior/fuse.cpp emits superinstructions).
#define LISASIM_MKIND_LIST(X)                                               \
  X(kConst)        /* t[a] = imm                                         */ \
  X(kMov)          /* t[a] = t[b]                                        */ \
  X(kReadRes)      /* t[a] = state[res]         (hook-aware)             */ \
  X(kReadElem)     /* t[a] = state[res][t[b]]                            */ \
  X(kWriteRes)     /* state[res] = t[a]         (hook-aware)             */ \
  X(kWriteElem)    /* state[res][t[b]] = t[a]                            */ \
  X(kBin)          /* t[a] = t[b] <sub> t[c]    (throws on /0, %0)       */ \
  X(kUn)           /* t[a] = <sub> t[b]                                  */ \
  X(kIntr)         /* t[a] = sub(t[b] [, t[c]])  pure intrinsics         */ \
  X(kBrZero)       /* if (t[a] == 0) goto imm                            */ \
  X(kBr)           /* goto imm                                           */ \
  X(kFlush)        /* control.flush = true                               */ \
  X(kStall)        /* control.stall_cycles += t[a]                       */ \
  X(kHalt)         /* control.halt = true                                */ \
  X(kConstPool)    /* t[a] = pool[imm]                                   */ \
  X(kReadScal)     /* t[a] = scalar res         (no bounds/hook check)   */ \
  X(kWriteScal)    /* scalar res = t[b]         (no bounds/hook check)   */ \
  X(kWriteOut)     /* scalar res = t[b]; t[a] = stored (canonical) value */ \
  X(kBinImm)       /* t[a] = t[b] <sub> imm     (imm != 0 for /, %)      */ \
  X(kBinImmR)      /* t[a] = imm <sub> t[b]     (throws on /0, %0)       */ \
  X(kWriteBin)     /* scalar res = t[b] <sub> t[c]  (throws on /0, %0)   */ \
  X(kBrBin)        /* if ((t[b] <sub> t[c]) == 0) goto imm  (no /, %)    */ \
  X(kBrBinImm)     /* if ((t[b] <sub> c) == 0) goto imm     (no /, %)    */ \
  X(kReadElemC)    /* t[a] = state[res][imm]                             */ \
  X(kWriteElemC)   /* state[res][imm] = t[a]                             */ \
  X(kReadElemOff)  /* t[a] = state[res][t[b] + imm]                      */ \
  X(kWriteElemOff) /* state[res][t[b] + imm] = t[a]                      */ \
  X(kWriteScalImm) /* scalar res = imm                                   */ \
  X(kMovScal)      /* scalar res = scalar b     (b is a resource id)     */ \
  X(kBrScalZero)   /* if (scalar b == 0) goto imm                        */ \
  X(kIntrImm)      /* t[a] = sub(t[b], imm)     arity-2 intrinsics       */ \
  X(kMovScalElem)  /* scalar res = state[b][imm]   (b is an array id)    */ \
  X(kMovElemScal)  /* state[res][imm] = scalar b                         */ \
  X(kReadElemScal) /* t[a] = state[res][scalar b]                        */

enum class MKind : std::uint8_t {
#define LISASIM_MKIND_ENUM(name) name,
  LISASIM_MKIND_LIST(LISASIM_MKIND_ENUM)
#undef LISASIM_MKIND_ENUM
};

/// Number of MKind enumerators (dispatch tables are sized by this).
inline constexpr int kNumMKinds = 0
#define LISASIM_MKIND_COUNT(name) +1
    LISASIM_MKIND_LIST(LISASIM_MKIND_COUNT)
#undef LISASIM_MKIND_COUNT
    ;

struct MicroOp {
  MKind kind = MKind::kConst;
  std::uint8_t sub = 0;  // BinOp / UnOp / Intrinsic selector
  std::int16_t a = 0;
  std::int16_t b = 0;
  std::int16_t c = 0;
  std::int16_t res = -1;
  std::int32_t imm = 0;

  BinOp bop() const { return static_cast<BinOp>(sub); }
  UnOp uop() const { return static_cast<UnOp>(sub); }
  Intrinsic intr() const { return static_cast<Intrinsic>(sub); }
};

// The compact layout is the contract the dispatch loop, the arena packing
// and SimTable::signature() all rely on; growing the struct is a perf (and
// signature) break, not a refactor.
static_assert(sizeof(MicroOp) <= 16, "MicroOp must stay within 16 bytes");

/// Does `imm` fit the in-op 32-bit immediate field (wider constants go
/// through the per-program constant pool)?
inline bool mo_imm_fits(std::int64_t value) {
  return value >= INT32_MIN && value <= INT32_MAX;
}

struct MicroProgram {
  std::vector<MicroOp> ops;
  std::vector<std::int64_t> pool;  // kConstPool operands (64-bit immediates)
  std::int32_t num_temps = 0;

  bool empty() const { return ops.empty(); }

  /// Intern `value` into the constant pool (deduplicated; programs are
  /// small, a linear probe keeps this deterministic and allocation-free).
  std::int32_t add_pool(std::int64_t value) {
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (pool[i] == value) return static_cast<std::int32_t>(i);
    pool.push_back(value);
    return static_cast<std::int32_t>(pool.size()) - 1;
  }
};

// -- op constructors ---------------------------------------------------------
// The int16 operand narrowing happens in exactly one place (here); the
// lowerer and the optimizer passes validate ranges before calling.

inline MicroOp mo_op(MKind kind, int sub, std::int32_t a, std::int32_t b,
                     std::int32_t c, std::int32_t res, std::int64_t imm) {
  MicroOp op;
  op.kind = kind;
  op.sub = static_cast<std::uint8_t>(sub);
  op.a = static_cast<std::int16_t>(a);
  op.b = static_cast<std::int16_t>(b);
  op.c = static_cast<std::int16_t>(c);
  op.res = static_cast<std::int16_t>(res);
  op.imm = static_cast<std::int32_t>(imm);
  return op;
}

inline MicroOp mo_const(std::int32_t t, std::int64_t imm) {
  return mo_op(MKind::kConst, 0, t, 0, 0, -1, imm);
}
inline MicroOp mo_pool(std::int32_t t, std::int32_t index) {
  return mo_op(MKind::kConstPool, 0, t, 0, 0, -1, index);
}
inline MicroOp mo_mov(std::int32_t a, std::int32_t b) {
  return mo_op(MKind::kMov, 0, a, b, 0, -1, 0);
}
inline MicroOp mo_read_res(std::int32_t t, ResourceId res) {
  return mo_op(MKind::kReadRes, 0, t, 0, 0, res, 0);
}
inline MicroOp mo_read_elem(std::int32_t t, ResourceId res, std::int32_t idx) {
  return mo_op(MKind::kReadElem, 0, t, idx, 0, res, 0);
}
inline MicroOp mo_write_res(ResourceId res, std::int32_t t) {
  return mo_op(MKind::kWriteRes, 0, t, 0, 0, res, 0);
}
inline MicroOp mo_write_elem(ResourceId res, std::int32_t idx,
                             std::int32_t t) {
  return mo_op(MKind::kWriteElem, 0, t, idx, 0, res, 0);
}
inline MicroOp mo_bin(BinOp bop, std::int32_t a, std::int32_t b,
                      std::int32_t c) {
  return mo_op(MKind::kBin, static_cast<int>(bop), a, b, c, -1, 0);
}
inline MicroOp mo_un(UnOp uop, std::int32_t a, std::int32_t b) {
  return mo_op(MKind::kUn, static_cast<int>(uop), a, b, 0, -1, 0);
}
inline MicroOp mo_intr(Intrinsic intr, std::int32_t a, std::int32_t b,
                       std::int32_t c) {
  return mo_op(MKind::kIntr, static_cast<int>(intr), a, b, c, -1, 0);
}
inline MicroOp mo_brzero(std::int32_t t, std::int32_t target) {
  return mo_op(MKind::kBrZero, 0, t, 0, 0, -1, target);
}
inline MicroOp mo_br(std::int32_t target) {
  return mo_op(MKind::kBr, 0, 0, 0, 0, -1, target);
}
inline MicroOp mo_flush() { return mo_op(MKind::kFlush, 0, 0, 0, 0, -1, 0); }
inline MicroOp mo_stall(std::int32_t t) {
  return mo_op(MKind::kStall, 0, t, 0, 0, -1, 0);
}
inline MicroOp mo_halt() { return mo_op(MKind::kHalt, 0, 0, 0, 0, -1, 0); }
inline MicroOp mo_read_scal(std::int32_t t, ResourceId res) {
  return mo_op(MKind::kReadScal, 0, t, 0, 0, res, 0);
}
inline MicroOp mo_write_scal(ResourceId res, std::int32_t t) {
  return mo_op(MKind::kWriteScal, 0, 0, t, 0, res, 0);
}
inline MicroOp mo_write_out(ResourceId res, std::int32_t out,
                            std::int32_t t) {
  return mo_op(MKind::kWriteOut, 0, out, t, 0, res, 0);
}
inline MicroOp mo_bin_imm(BinOp bop, std::int32_t a, std::int32_t b,
                          std::int32_t imm) {
  return mo_op(MKind::kBinImm, static_cast<int>(bop), a, b, 0, -1, imm);
}
inline MicroOp mo_bin_imm_r(BinOp bop, std::int32_t a, std::int32_t imm,
                            std::int32_t b) {
  return mo_op(MKind::kBinImmR, static_cast<int>(bop), a, b, 0, -1, imm);
}
inline MicroOp mo_write_bin(BinOp bop, ResourceId res, std::int32_t b,
                            std::int32_t c) {
  return mo_op(MKind::kWriteBin, static_cast<int>(bop), 0, b, c, res, 0);
}
inline MicroOp mo_br_bin(BinOp bop, std::int32_t b, std::int32_t c,
                         std::int32_t target) {
  return mo_op(MKind::kBrBin, static_cast<int>(bop), 0, b, c, -1, target);
}
inline MicroOp mo_br_bin_imm(BinOp bop, std::int32_t b, std::int32_t cimm,
                             std::int32_t target) {
  return mo_op(MKind::kBrBinImm, static_cast<int>(bop), 0, b, cimm, -1,
               target);
}
inline MicroOp mo_read_elem_c(std::int32_t t, ResourceId res,
                              std::int32_t index) {
  return mo_op(MKind::kReadElemC, 0, t, 0, 0, res, index);
}
inline MicroOp mo_write_elem_c(ResourceId res, std::int32_t index,
                               std::int32_t t) {
  return mo_op(MKind::kWriteElemC, 0, t, 0, 0, res, index);
}
inline MicroOp mo_read_elem_off(std::int32_t t, ResourceId res,
                                std::int32_t b, std::int32_t off) {
  return mo_op(MKind::kReadElemOff, 0, t, b, 0, res, off);
}
inline MicroOp mo_write_elem_off(ResourceId res, std::int32_t b,
                                 std::int32_t off, std::int32_t t) {
  return mo_op(MKind::kWriteElemOff, 0, t, b, 0, res, off);
}
inline MicroOp mo_write_scal_imm(ResourceId res, std::int32_t imm) {
  return mo_op(MKind::kWriteScalImm, 0, 0, 0, 0, res, imm);
}
inline MicroOp mo_mov_scal(ResourceId dst, ResourceId src) {
  return mo_op(MKind::kMovScal, 0, 0, src, 0, dst, 0);
}
inline MicroOp mo_br_scal_zero(ResourceId res, std::int32_t target) {
  return mo_op(MKind::kBrScalZero, 0, 0, res, 0, -1, target);
}
inline MicroOp mo_intr_imm(Intrinsic intr, std::int32_t a, std::int32_t b,
                           std::int32_t imm) {
  return mo_op(MKind::kIntrImm, static_cast<int>(intr), a, b, 0, -1, imm);
}
inline MicroOp mo_mov_scal_elem(ResourceId dst, ResourceId array,
                                std::int32_t index) {
  return mo_op(MKind::kMovScalElem, 0, 0, array, 0, dst, index);
}
inline MicroOp mo_mov_elem_scal(ResourceId array, std::int32_t index,
                                ResourceId src) {
  return mo_op(MKind::kMovElemScal, 0, 0, src, 0, array, index);
}
inline MicroOp mo_read_elem_scal(std::int32_t t, ResourceId res,
                                 ResourceId index_scal) {
  return mo_op(MKind::kReadElemScal, 0, t, index_scal, 0, res, 0);
}

// -- shared per-kind structure helpers ---------------------------------------
// Every pass that walks micro-programs (peephole, regcache, fuse, trace
// splicing, validation) classifies ops through these four helpers, so a new
// kind added to LISASIM_MKIND_LIST is handled — or rejected by -Wswitch —
// in one audit instead of five.

inline bool mo_is_branch(MKind kind) {
  return kind == MKind::kBrZero || kind == MKind::kBr ||
         kind == MKind::kBrBin || kind == MKind::kBrBinImm ||
         kind == MKind::kBrScalZero;
}

/// Destination temp of `op`, or -1 when it has none.
inline std::int32_t mo_def_of(const MicroOp& op) {
  switch (op.kind) {
    case MKind::kConst:
    case MKind::kConstPool:
    case MKind::kMov:
    case MKind::kReadRes:
    case MKind::kReadScal:
    case MKind::kReadElem:
    case MKind::kReadElemC:
    case MKind::kReadElemOff:
    case MKind::kBin:
    case MKind::kBinImm:
    case MKind::kBinImmR:
    case MKind::kUn:
    case MKind::kIntr:
    case MKind::kIntrImm:
    case MKind::kReadElemScal:
    case MKind::kWriteOut:
      return op.a;
    case MKind::kWriteRes:
    case MKind::kWriteScal:
    case MKind::kWriteElem:
    case MKind::kWriteElemC:
    case MKind::kWriteElemOff:
    case MKind::kWriteBin:
    case MKind::kBrZero:
    case MKind::kBr:
    case MKind::kBrBin:
    case MKind::kBrBinImm:
    case MKind::kFlush:
    case MKind::kStall:
    case MKind::kHalt:
    case MKind::kWriteScalImm:
    case MKind::kMovScal:
    case MKind::kBrScalZero:
    case MKind::kMovScalElem:
    case MKind::kMovElemScal:
      return -1;
  }
  return -1;
}

/// Ops whose only effect is writing their destination temp. kBin is pure
/// except division/remainder (they throw on a zero divisor) and element
/// reads can throw on an out-of-range index — both must execute even if
/// their result is dead, or error behavior would diverge from the tree
/// walk. kBinImm divisions are pure: fusion guarantees a nonzero constant
/// divisor (validated).
inline bool mo_is_pure_def(const MicroOp& op) {
  switch (op.kind) {
    case MKind::kConst:
    case MKind::kConstPool:
    case MKind::kMov:
    case MKind::kReadRes:
    case MKind::kReadScal:
    case MKind::kUn:
    case MKind::kIntr:
    case MKind::kIntrImm:
    case MKind::kBinImm:
      return true;
    case MKind::kBin:
    case MKind::kBinImmR:
      return op.bop() != BinOp::kDiv && op.bop() != BinOp::kRem;
    default:
      return false;
  }
}

/// Invoke `fn` on every temp `op` reads (destinations excluded). The second
/// operand of an arity-1 intrinsic is padding, not a read; kBrBinImm's `c`
/// is a 16-bit immediate, not a temp.
template <typename Fn>
void mo_for_each_read(const MicroOp& op, Fn&& fn) {
  switch (op.kind) {
    case MKind::kMov:
    case MKind::kReadElem:
    case MKind::kReadElemOff:
    case MKind::kUn:
    case MKind::kWriteScal:
    case MKind::kWriteOut:
    case MKind::kBinImm:
    case MKind::kBinImmR:
    case MKind::kBrBinImm:
    case MKind::kIntrImm:
      fn(op.b);
      break;
    case MKind::kWriteRes:
    case MKind::kWriteElemC:
    case MKind::kBrZero:
    case MKind::kStall:
      fn(op.a);
      break;
    case MKind::kWriteElem:
    case MKind::kWriteElemOff:
      fn(op.a);
      fn(op.b);
      break;
    case MKind::kBin:
      fn(op.b);
      fn(op.c);
      break;
    case MKind::kWriteBin:
    case MKind::kBrBin:
      fn(op.b);
      fn(op.c);
      break;
    case MKind::kIntr:
      fn(op.b);
      if (intrinsic_arity(op.intr()) > 1) fn(op.c);
      break;
    case MKind::kConst:
    case MKind::kConstPool:
    case MKind::kReadRes:
    case MKind::kReadScal:
    case MKind::kReadElemC:
    case MKind::kBr:
    case MKind::kFlush:
    case MKind::kHalt:
    case MKind::kWriteScalImm:
    case MKind::kMovScal:      // b is a resource id, not a temp
    case MKind::kBrScalZero:   // likewise
    case MKind::kMovScalElem:  // likewise
    case MKind::kMovElemScal:  // likewise
    case MKind::kReadElemScal: // likewise (a is the def, not a read)
      break;
  }
}

/// Invoke `fn` with a mutable reference to every temp-operand *field* of
/// `op` (reads and destinations alike) — the single place that knows which
/// int16 fields hold temp indices. Trace splicing rebases temps through
/// this; peephole compaction renumbers through it.
template <typename Fn>
void mo_for_each_temp_field(MicroOp& op, Fn&& fn) {
  switch (op.kind) {
    case MKind::kConst:
    case MKind::kConstPool:
    case MKind::kReadRes:
    case MKind::kReadScal:
    case MKind::kReadElemC:
    case MKind::kWriteRes:
    case MKind::kWriteElemC:
    case MKind::kBrZero:
    case MKind::kStall:
      fn(op.a);
      break;
    case MKind::kMov:
    case MKind::kReadElem:
    case MKind::kReadElemOff:
    case MKind::kWriteElem:
    case MKind::kWriteElemOff:
    case MKind::kUn:
    case MKind::kWriteOut:
      fn(op.a);
      fn(op.b);
      break;
    case MKind::kBin:
    case MKind::kIntr:
      fn(op.a);
      fn(op.b);
      fn(op.c);
      break;
    case MKind::kBinImm:
    case MKind::kBinImmR:
    case MKind::kIntrImm:
      fn(op.a);
      fn(op.b);
      break;
    case MKind::kWriteScal:
      fn(op.b);
      break;
    case MKind::kWriteBin:
    case MKind::kBrBin:
      fn(op.b);
      fn(op.c);
      break;
    case MKind::kBrBinImm:
      fn(op.b);
      break;
    case MKind::kReadElemScal:
      fn(op.a);  // b is a resource id, not a temp
      break;
    case MKind::kBr:
    case MKind::kFlush:
    case MKind::kHalt:
    case MKind::kWriteScalImm:
    case MKind::kMovScal:     // b is a resource id, not a temp
    case MKind::kBrScalZero:  // likewise
    case MKind::kMovScalElem:
    case MKind::kMovElemScal:
      break;
  }
}

/// Kinds that write a processor resource (scalar or element). Used by the
/// trace scanner (fetch-memory / PC detection) and the regcache pass.
inline bool mo_writes_res(MKind kind) {
  switch (kind) {
    case MKind::kWriteRes:
    case MKind::kWriteScal:
    case MKind::kWriteOut:
    case MKind::kWriteBin:
    case MKind::kWriteElem:
    case MKind::kWriteElemC:
    case MKind::kWriteElemOff:
    case MKind::kWriteScalImm:
    case MKind::kMovScal:
    case MKind::kMovScalElem:
    case MKind::kMovElemScal:
      return true;
    default:
      return false;
  }
}

/// Can executing `op` throw a SimError (zero divisor, out-of-bounds
/// element index)? The dead-store barrier of the regcache pass.
inline bool mo_can_throw(const MicroOp& op) {
  switch (op.kind) {
    case MKind::kBin:
    case MKind::kBinImmR:
    case MKind::kWriteBin:
      return op.bop() == BinOp::kDiv || op.bop() == BinOp::kRem;
    case MKind::kReadElem:
    case MKind::kReadElemC:
    case MKind::kReadElemOff:
    case MKind::kWriteElem:
    case MKind::kWriteElemC:
    case MKind::kWriteElemOff:
    case MKind::kMovScalElem:
    case MKind::kMovElemScal:
    case MKind::kReadElemScal:
      return true;
    default:
      return false;
  }
}

/// Lower a specialized program to micro-operations. The input must be fully
/// specialized (symbols restricted to locals and resources); anything else
/// throws SimError. The result is validated (validate_microops) before it
/// is returned, so malformed branch targets surface at simulation-compile
/// time, never as an out-of-bounds dispatch at run time.
MicroProgram lower_to_microops(const SpecProgram& program);

/// Structural validation of a micro-program: every branch target must lie
/// in [0, ops.size()] (== size is the fall-off-the-end exit), every temp
/// operand in [0, num_temps), every pool index in [0, pool.size()), and
/// fused-division immediates nonzero. Throws SimError. Called by
/// lower_to_microops and optimize_microops; exec_microops trusts its input.
void validate_microops(const MicroProgram& program);

/// Execute `count` micro-ops starting at `ops` — a span of a MicroArena or
/// the body of a MicroProgram. `pool` is the owning arena's (or program's)
/// constant pool; it may be null only when no op is kConstPool. `temps`
/// must point at scratch with room for the program's num_temps slots; no
/// zero-fill is required because lowering guarantees every temp is written
/// before it is read. This is the hot dispatch loop of the compiled-static
/// and decode-cached levels.
void exec_microops(const MicroOp* ops, std::uint32_t count,
                   const std::int64_t* pool, ProcessorState& state,
                   PipelineControl& control, std::int64_t* temps);

/// Instrumented variant of exec_microops: identical semantics, returns the
/// number of micro-ops dispatched (benchmarks report micro-ops/cycle with
/// it; the uncounted loop stays branch-free of instrumentation).
std::uint64_t exec_microops_counted(const MicroOp* ops, std::uint32_t count,
                                    const std::int64_t* pool,
                                    ProcessorState& state,
                                    PipelineControl& control,
                                    std::int64_t* temps);

/// Lane masks and batch widths are 64-bit sets, so a batch holds at most
/// 64 lanes (the batched engine splits wider requests).
inline constexpr unsigned kMaxBatchLanes = 64;

/// Execute one micro-program across up to 64 lanes in lockstep. Lane `l`
/// (for each set bit of `active`) runs against `states[l]` / `controls[l]`;
/// all lanes share `ops`/`pool` (one compile, N lanes). `temps` is a shared
/// structure-of-arrays scratch buffer: temp `i` of lane `l` lives at
/// `temps[i * temp_stride + l]`, so non-branch ops loop over lanes in the
/// innermost position over contiguous storage. On branch divergence the
/// active set is split: the taken subset is queued and resumed at the
/// target after the fall-through subset finishes (lanes share no state, so
/// any group schedule is bit-identical per lane to sequential execution).
/// A lane whose op throws a SimError is dropped from the active set with
/// the error recorded in `faults[l]` (size >= kMaxBatchLanes), leaving its
/// state exactly as the sequential executor's unwind would. Returns the
/// mask of faulted lanes.
std::uint64_t exec_microops_lanes(const MicroOp* ops, std::uint32_t count,
                                  const std::int64_t* pool,
                                  ProcessorState* const* states,
                                  PipelineControl* const* controls,
                                  std::uint64_t active, std::int64_t* temps,
                                  std::uint32_t temp_stride,
                                  std::optional<SimError>* faults);

/// Convenience wrapper over exec_microops: `temps` is caller-provided
/// scratch, resized here so repeated executions do not allocate.
void run_microops(const MicroProgram& program, ProcessorState& state,
                  PipelineControl& control, std::vector<std::int64_t>& temps);

/// Disassemble for debugging/tests. With a `pool`, kConstPool operands
/// print their value; without, the pool index.
std::string microops_to_string(const MicroOp* ops, std::size_t count,
                               const std::int64_t* pool = nullptr);
std::string microops_to_string(const MicroProgram& program);

}  // namespace lisasim
