// Micro-operation lowering: the third step of compiled simulation
// ("operation instantiation and simulation loop unfolding", paper §3 —
// listed as future work there). Specialized behavior trees are flattened
// into linear register-machine programs executed by a tight dispatch loop,
// removing the tree-walk overhead from the simulation hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "behavior/eval.hpp"
#include "behavior/specialize.hpp"
#include "model/model.hpp"
#include "model/state.hpp"

namespace lisasim {

enum class MKind : std::uint8_t {
  kConst,      // t[a] = imm
  kMov,        // t[a] = t[b]
  kReadRes,    // t[a] = state[res]
  kReadElem,   // t[a] = state[res][t[b]]
  kWriteRes,   // state[res] = t[a]
  kWriteElem,  // state[res][t[b]] = t[a]
  kBin,        // t[a] = t[b] <bop> t[c]   (throws on /0, %0)
  kUn,         // t[a] = <uop> t[b]
  kIntr,       // t[a] = intr(t[b] [, t[c]])   pure intrinsics
  kBrZero,     // if (t[a] == 0) goto imm
  kBr,         // goto imm
  kFlush,      // control.flush = true
  kStall,      // control.stall_cycles += t[a]
  kHalt,       // control.halt = true
};

struct MicroOp {
  MKind kind = MKind::kConst;
  BinOp bop = BinOp::kAdd;
  UnOp uop = UnOp::kNeg;
  Intrinsic intr = Intrinsic::kNone;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  ResourceId res = -1;
  std::int64_t imm = 0;
};

struct MicroProgram {
  std::vector<MicroOp> ops;
  int num_temps = 0;

  bool empty() const { return ops.empty(); }
};

/// Lower a specialized program to micro-operations. The input must be fully
/// specialized (symbols restricted to locals and resources); anything else
/// throws SimError.
MicroProgram lower_to_microops(const SpecProgram& program);

/// Execute a micro-program. `temps` is caller-provided scratch, resized and
/// zeroed here so repeated executions do not allocate.
void run_microops(const MicroProgram& program, ProcessorState& state,
                  PipelineControl& control, std::vector<std::int64_t>& temps);

/// Disassemble for debugging/tests.
std::string microops_to_string(const MicroProgram& program);

}  // namespace lisasim
