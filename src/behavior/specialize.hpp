// The specializer: compile-time partial evaluation of operation behavior
// against a decoded instruction. This implements the a-priori-knowledge
// exploitation of compiled simulation (paper §3):
//
//  * compile-time decoding — terminal coding fields become integer
//    constants; operand groups are inlined through their chosen
//    alternative's EXPRESSION;
//  * coding-time conditionals (IF/ELSE, SWITCH/CASE around sections,
//    paper §5.1) are folded away, selecting the specific behavior variant;
//  * constant arithmetic is folded, so e.g. an unpredicated instruction's
//    `if (pred) {...}` disappears entirely.
//
// The result is behavior code whose symbols are only locals and resources —
// independent of the decode tree, ready to be stored in the simulation
// table and (optionally) lowered to micro-operations.
#pragma once

#include <cstdint>
#include <vector>

#include "behavior/ir.hpp"
#include "decode/decoded.hpp"
#include "model/model.hpp"

namespace lisasim {

/// A specialized, self-contained behavior fragment: statements whose local
/// slots start at 0 and run up to num_locals.
struct SpecProgram {
  std::vector<StmtPtr> stmts;
  int num_locals = 0;

  bool empty() const { return stmts.empty(); }
};

/// Per-stage schedule of one decoded execute packet: the row of the
/// simulation table (paper Fig. 1). stage_programs[s] holds the merged,
/// specialized behavior the packet executes when it occupies pipeline stage
/// s. Activations are resolved statically: same-or-earlier-stage targets
/// are inlined at the activation point, later-stage targets are appended to
/// their stage's program.
struct PacketSchedule {
  std::vector<SpecProgram> stage_programs;  // indexed by pipeline stage

  bool has_work(int stage) const {
    return stage >= 0 &&
           static_cast<std::size_t>(stage) < stage_programs.size() &&
           !stage_programs[static_cast<std::size_t>(stage)].empty();
  }
};

/// Collect the auto-run operations of a decode tree in tree order: every
/// coding-selected node (activation-only instances run via ACTIVATION).
/// Shared by the interpretive engine and the simulation compiler so both
/// execute identical within-cycle operation sequences.
void collect_auto_ops(
    const DecodedNode& node,
    std::vector<std::pair<const DecodedNode*, int>>& out);

class Specializer {
 public:
  explicit Specializer(const Model& model) : model_(&model) {}

  /// Build the per-stage schedule for a decoded packet. Throws SimError if
  /// a coding-time conditional is not decode-static.
  ///
  /// Column construction mirrors the interpretive engine's timeline
  /// exactly: for each stage, first the auto-run operations in tree order,
  /// then activation requests in FIFO order; activations targeting the
  /// current (or an earlier) stage are inlined at the activation point.
  PacketSchedule schedule_packet(const DecodedPacket& packet) const;

  /// Specialize a single expression in the context of `node` (exposed for
  /// tests and for the code generator).
  ExprPtr specialize_expr(const Expr& expr, const DecodedNode& node) const;

 private:
  struct Builder;  // accumulates per-stage statement lists + queues

  void emit_node_program(const DecodedNode& node, int stage,
                         Builder& builder) const;

  /// Resolve the active EXPRESSION item of `node` (folding coding-time
  /// conditionals) and specialize it.
  ExprPtr specialize_op_expression(const DecodedNode& node) const;

  std::vector<StmtPtr> specialize_stmts(const std::vector<StmtPtr>& stmts,
                                        const DecodedNode& node,
                                        int local_base) const;
  StmtPtr specialize_stmt(const Stmt& stmt, const DecodedNode& node,
                          int local_base,
                          std::vector<StmtPtr>& out) const;
  ExprPtr spec_expr(const Expr& expr, const DecodedNode& node,
                    int local_base) const;

  /// Evaluate a coding-time condition statically. Throws SimError when the
  /// condition depends on run-time state.
  std::int64_t eval_static(const Expr& expr, const DecodedNode& node) const;

  /// Operation identity of a symbol in a coding-time comparison; -1 if the
  /// symbol does not denote an operation.
  OperationId static_identity(const Expr& expr,
                              const DecodedNode& node) const;

  /// Walk the operation's items with coding-time conditionals folded,
  /// invoking `fn` on each active leaf item.
  template <typename Fn>
  void for_each_static_item(const DecodedNode& node, Fn&& fn) const;

  const DecodedNode& child_node(const DecodedNode& node, int slot) const;

  const Model* model_;
};

}  // namespace lisasim
