#include "behavior/regcache.hpp"

#include "behavior/opt_util.hpp"

namespace lisasim {

bool regcache_microops(MicroProgram& program, const Model& model) {
  const std::size_t n = program.ops.size();
  if (n == 0) return false;
  // The pass mints one out-temp per scalar write; if even the worst case
  // cannot fit the int16 temp encoding, skip (giant spliced traces).
  if (static_cast<std::size_t>(program.num_temps) + n >
      static_cast<std::size_t>(INT16_MAX))
    return false;
  std::vector<char> is_target;
  if (!mo_collect_targets(program, is_target)) return false;

  const std::size_t num_res = model.resources.size();
  const auto scalar = [&](std::int16_t res) {
    return res >= 0 && static_cast<std::size_t>(res) < num_res &&
           !model.resources[static_cast<std::size_t>(res)].is_array();
  };

  // cache[res] = temp currently holding the resource's canonical value,
  // -1 when unknown. Reset at joins; invalidated when the temp is
  // redefined by anything else.
  std::vector<std::int32_t> cache(num_res, -1);
  const auto reset_cache = [&] { cache.assign(num_res, -1); };

  bool changed = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_target[i]) reset_cache();
    MicroOp& op = program.ops[i];
    std::int32_t just_cached_res = -1;
    switch (op.kind) {
      case MKind::kReadRes:
      case MKind::kReadScal:
        if (scalar(op.res)) {
          const std::int32_t res = op.res;
          const std::int32_t cached = cache[static_cast<std::size_t>(res)];
          if (cached >= 0) {
            // A self-move (cached == a) is dead and the peephole drops it;
            // either way the resource's entry stays valid.
            op = mo_mov(op.a, cached);
            just_cached_res = res;
          } else {
            if (op.kind == MKind::kReadRes) op.kind = MKind::kReadScal;
            cache[static_cast<std::size_t>(res)] = op.a;
            just_cached_res = res;
          }
          changed = true;
        }
        break;
      case MKind::kWriteRes:
        if (scalar(op.res)) {
          const std::int32_t out = program.num_temps++;
          op = mo_write_out(op.res, out, op.a);
          cache[static_cast<std::size_t>(op.res)] = out;
          just_cached_res = op.res;
          changed = true;
        }
        break;
      case MKind::kWriteScal: {
        const std::int32_t out = program.num_temps++;
        op = mo_write_out(op.res, out, op.b);
        cache[static_cast<std::size_t>(op.res)] = out;
        just_cached_res = op.res;
        changed = true;
        break;
      }
      case MKind::kWriteOut:
        cache[static_cast<std::size_t>(op.res)] = op.a;
        just_cached_res = op.res;
        break;
      case MKind::kWriteBin:
      case MKind::kWriteScalImm:
      case MKind::kMovScal:
      case MKind::kMovScalElem:
        // The stored value exists in no temp; forget the resource.
        cache[static_cast<std::size_t>(op.res)] = -1;
        break;
      default:
        break;
    }
    // Any redefinition of a temp invalidates cache entries pointing at it
    // (other than the entry this very op just established).
    const std::int32_t d = mo_def_of(op);
    if (d >= 0) {
      for (std::size_t r = 0; r < num_res; ++r)
        if (cache[r] == d && static_cast<std::int32_t>(r) != just_cached_res)
          cache[r] = -1;
    }
  }
  return changed;
}

}  // namespace lisasim
