#include "behavior/microops.hpp"

#include <bit>
#include <cassert>
#include <span>
#include <string>

#include "behavior/fold.hpp"

namespace lisasim {

namespace {

class Lowerer {
 public:
  MicroProgram lower(const SpecProgram& program) {
    check_temp_budget(program.num_locals);
    num_temps_ = program.num_locals;  // local slot i lives in temp i
    emit_stmts(program.stmts);
    MicroProgram out;
    out.ops = std::move(ops_);
    out.pool = std::move(pool_);
    out.num_temps = num_temps_;
    return out;
  }

 private:
  // Temps and resource ids are int16 in the compact encoding; the lowerer
  // is the narrowing boundary, so it is the one that checks.
  static void check_temp_budget(std::int32_t n) {
    if (n > INT16_MAX)
      throw SimError("micro-op lowering: temp count " + std::to_string(n) +
                     " exceeds the int16 encoding limit");
  }

  static std::int16_t check_res(std::int32_t res) {
    if (res < 0 || res > INT16_MAX)
      throw SimError("micro-op lowering: resource id " + std::to_string(res) +
                     " exceeds the int16 encoding limit");
    return static_cast<std::int16_t>(res);
  }

  std::int32_t new_temp() {
    check_temp_budget(num_temps_ + 1);
    return num_temps_++;
  }

  std::int32_t emit(MicroOp op) {
    ops_.push_back(op);
    return static_cast<std::int32_t>(ops_.size() - 1);
  }

  std::int32_t emit_const(std::int32_t t, std::int64_t value) {
    if (mo_imm_fits(value)) return emit(mo_const(t, value));
    std::int32_t index;
    for (index = 0; index < static_cast<std::int32_t>(pool_.size()); ++index)
      if (pool_[static_cast<std::size_t>(index)] == value) break;
    if (index == static_cast<std::int32_t>(pool_.size()))
      pool_.push_back(value);
    return emit(mo_pool(t, index));
  }

  void emit_stmts(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) emit_stmt(*s);
  }

  void emit_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kLocalDecl: {
        const std::int32_t slot = stmt.local_slot;
        if (stmt.value) {
          const std::int32_t v = emit_expr(*stmt.value);
          emit(mo_mov(slot, v));
        } else {
          emit(mo_const(slot, 0));
        }
        break;
      }
      case StmtKind::kAssign: {
        const std::int32_t v = emit_expr(*stmt.value);
        emit_assign(*stmt.lhs, v);
        break;
      }
      case StmtKind::kExpr:
        emit_expr(*stmt.value);
        break;
      case StmtKind::kIf: {
        const std::int32_t cond = emit_expr(*stmt.value);
        const std::int32_t br_else = emit(mo_brzero(cond, 0));
        emit_stmts(stmt.then_body);
        if (stmt.else_body.empty()) {
          patch(br_else, here());
        } else {
          const std::int32_t br_end = emit(mo_br(0));
          patch(br_else, here());
          emit_stmts(stmt.else_body);
          patch(br_end, here());
        }
        break;
      }
    }
  }

  std::int32_t here() const { return static_cast<std::int32_t>(ops_.size()); }

  void patch(std::int32_t branch_index, std::int32_t target) {
    ops_[static_cast<std::size_t>(branch_index)].imm = target;
  }

  void emit_assign(const Expr& lhs, std::int32_t value_temp) {
    switch (lhs.kind) {
      case ExprKind::kSym:
        switch (lhs.sym.kind) {
          case SymKind::kLocal:
            emit(mo_mov(lhs.sym.index, value_temp));
            return;
          case SymKind::kResource:
            emit(mo_write_res(check_res(lhs.sym.index), value_temp));
            return;
          default:
            break;
        }
        break;
      case ExprKind::kIndex: {
        const std::int32_t idx = emit_expr(*lhs.children[0]);
        emit(mo_write_elem(check_res(lhs.sym.index), idx, value_temp));
        return;
      }
      default:
        break;
    }
    throw SimError("micro-op lowering: unsupported assignment target: " +
                   lhs.to_string());
  }

  std::int32_t emit_expr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit: {
        const std::int32_t t = new_temp();
        emit_const(t, expr.value);
        return t;
      }
      case ExprKind::kSym:
        switch (expr.sym.kind) {
          case SymKind::kLocal:
            return expr.sym.index;  // locals live in their temp slots
          case SymKind::kResource: {
            const std::int32_t t = new_temp();
            emit(mo_read_res(t, check_res(expr.sym.index)));
            return t;
          }
          default:
            throw SimError(
                "micro-op lowering: unspecialized symbol '" + expr.sym.name +
                "' (did specialization run?)");
        }
      case ExprKind::kIndex: {
        const std::int32_t idx = emit_expr(*expr.children[0]);
        const std::int32_t t = new_temp();
        emit(mo_read_elem(t, check_res(expr.sym.index), idx));
        return t;
      }
      case ExprKind::kUnary: {
        const std::int32_t v = emit_expr(*expr.children[0]);
        const std::int32_t t = new_temp();
        emit(mo_un(expr.un_op, t, v));
        return t;
      }
      case ExprKind::kBinary: {
        if (expr.bin_op == BinOp::kLogicalAnd ||
            expr.bin_op == BinOp::kLogicalOr) {
          // Short-circuit: t = bool(lhs); if (need) t = bool(rhs);
          const bool is_and = expr.bin_op == BinOp::kLogicalAnd;
          const std::int32_t t = new_temp();
          const std::int32_t lhs = emit_expr(*expr.children[0]);
          const std::int32_t zero = new_temp();
          emit(mo_const(zero, 0));
          emit(mo_bin(BinOp::kNe, t, lhs, zero));
          std::int32_t skip;
          if (is_and) {
            skip = emit(mo_brzero(t, 0));
          } else {
            // skip rhs when lhs != 0: brzero over an unconditional branch
            const std::int32_t over = emit(mo_brzero(t, 0));
            skip = emit(mo_br(0));
            patch(over, here());
          }
          const std::int32_t rhs = emit_expr(*expr.children[1]);
          emit(mo_bin(BinOp::kNe, t, rhs, zero));
          patch(skip, here());
          return t;
        }
        const std::int32_t a = emit_expr(*expr.children[0]);
        const std::int32_t b = emit_expr(*expr.children[1]);
        const std::int32_t t = new_temp();
        emit(mo_bin(expr.bin_op, t, a, b));
        return t;
      }
      case ExprKind::kTernary: {
        const std::int32_t t = new_temp();
        const std::int32_t cond = emit_expr(*expr.children[0]);
        const std::int32_t br_else = emit(mo_brzero(cond, 0));
        const std::int32_t then_v = emit_expr(*expr.children[1]);
        emit(mo_mov(t, then_v));
        const std::int32_t br_end = emit(mo_br(0));
        patch(br_else, here());
        const std::int32_t else_v = emit_expr(*expr.children[2]);
        emit(mo_mov(t, else_v));
        patch(br_end, here());
        return t;
      }
      case ExprKind::kCall:
        switch (expr.intrinsic) {
          case Intrinsic::kFlush: {
            emit(mo_flush());
            return result_zero();
          }
          case Intrinsic::kStall: {
            const std::int32_t v = emit_expr(*expr.children[0]);
            emit(mo_stall(v));
            return result_zero();
          }
          case Intrinsic::kHalt: {
            emit(mo_halt());
            return result_zero();
          }
          case Intrinsic::kNone:
            throw SimError("micro-op lowering: unresolved intrinsic '" +
                           expr.callee + "'");
          default: {
            const std::int32_t a = emit_expr(*expr.children[0]);
            const std::int32_t b =
                expr.children.size() > 1 ? emit_expr(*expr.children[1]) : 0;
            const std::int32_t t = new_temp();
            emit(mo_intr(expr.intrinsic, t, a, b));
            return t;
          }
        }
    }
    throw SimError("micro-op lowering: unsupported expression");
  }

  std::int32_t result_zero() {
    const std::int32_t t = new_temp();
    emit(mo_const(t, 0));
    return t;
  }

  std::vector<MicroOp> ops_;
  std::vector<std::int64_t> pool_;
  std::int32_t num_temps_ = 0;
};

[[noreturn]] void bad_temp(std::size_t index, std::int32_t temp,
                           int num_temps) {
  throw SimError("micro-op " + std::to_string(index) + ": temp t" +
                 std::to_string(temp) + " outside scratch of " +
                 std::to_string(num_temps));
}

inline std::int64_t bin_or_throw(BinOp bop, std::int64_t x, std::int64_t y) {
  const auto folded = fold_binary(bop, x, y);
  if (!folded) [[unlikely]]
    throw SimError(bop == BinOp::kDiv ? "division by zero"
                                      : "remainder by zero");
  return *folded;
}

}  // namespace

MicroProgram lower_to_microops(const SpecProgram& program) {
  MicroProgram out = Lowerer().lower(program);
  validate_microops(out);
  return out;
}

void validate_microops(const MicroProgram& program) {
  const auto size = static_cast<std::int64_t>(program.ops.size());
  const auto pool_size = static_cast<std::int64_t>(program.pool.size());
  const auto check_temp = [&](std::size_t i, std::int32_t t) {
    if (t < 0 || t >= program.num_temps) bad_temp(i, t, program.num_temps);
  };
  for (std::size_t i = 0; i < program.ops.size(); ++i) {
    const MicroOp& op = program.ops[i];
    const std::int32_t def = mo_def_of(op);
    if (def >= 0) check_temp(i, def);
    mo_for_each_read(op, [&](std::int16_t t) { check_temp(i, t); });
    if (mo_is_branch(op.kind)) {
      // Target == size is the regular fall-off-the-end exit.
      if (op.imm < 0 || op.imm > size)
        throw SimError("micro-op " + std::to_string(i) + ": branch target " +
                       std::to_string(op.imm) + " outside program of " +
                       std::to_string(size) + " ops");
    }
    switch (op.kind) {
      case MKind::kConstPool:
        if (op.imm < 0 || op.imm >= pool_size)
          throw SimError("micro-op " + std::to_string(i) + ": pool index " +
                         std::to_string(op.imm) + " outside pool of " +
                         std::to_string(pool_size) + " entries");
        break;
      case MKind::kBinImm:
        // kBinImm is treated as a pure def by DCE, so a constant zero
        // divisor (which would throw) must never be encoded.
        if ((op.bop() == BinOp::kDiv || op.bop() == BinOp::kRem) &&
            op.imm == 0)
          throw SimError("micro-op " + std::to_string(i) +
                         ": fused division by constant zero");
        break;
      case MKind::kBrBin:
      case MKind::kBrBinImm:
        // Fused compare-and-branch never carries a throwing operator.
        if (op.bop() == BinOp::kDiv || op.bop() == BinOp::kRem)
          throw SimError("micro-op " + std::to_string(i) +
                         ": division fused into a branch");
        break;
      case MKind::kIntrImm:
        // The immediate replaces exactly the second operand, so only
        // arity-2 intrinsics may be encoded this way.
        if (intrinsic_arity(op.intr()) != 2)
          throw SimError("micro-op " + std::to_string(i) +
                         ": kIntrImm on intrinsic of arity " +
                         std::to_string(intrinsic_arity(op.intr())));
        break;
      default:
        break;
    }
  }
}

// The dispatch loop exists twice: a computed-goto threaded version (one
// indirect jump per op, no bounds re-check, the form generated compiled
// simulators use) and a portable switch loop that doubles as the counted
// instrumentation path. Both share the per-op semantics via OP_* macros so
// they cannot diverge.
#define LISASIM_OP_CONST(op) t[(op).a] = (op).imm
#define LISASIM_OP_CONST_POOL(op) t[(op).a] = pool[(op).imm]
#define LISASIM_OP_MOV(op) t[(op).a] = t[(op).b]
#define LISASIM_OP_READ_RES(op) t[(op).a] = state.read((op).res)
#define LISASIM_OP_READ_SCAL(op) t[(op).a] = state.read_scalar((op).res)
#define LISASIM_OP_READ_ELEM(op) \
  t[(op).a] = state.read((op).res, static_cast<std::uint64_t>(t[(op).b]))
#define LISASIM_OP_READ_ELEM_C(op)   \
  t[(op).a] = state.read((op).res,   \
                         static_cast<std::uint64_t>( \
                             static_cast<std::int64_t>((op).imm)))
#define LISASIM_OP_READ_ELEM_OFF(op)                        \
  t[(op).a] = state.read((op).res,                          \
                         static_cast<std::uint64_t>(t[(op).b]) + \
                             static_cast<std::uint64_t>(    \
                                 static_cast<std::int64_t>((op).imm)))
#define LISASIM_OP_WRITE_RES(op) state.write((op).res, 0, t[(op).a])
#define LISASIM_OP_WRITE_SCAL(op) state.write_scalar((op).res, t[(op).b])
#define LISASIM_OP_WRITE_OUT(op) \
  t[(op).a] = state.write_scalar((op).res, t[(op).b])
#define LISASIM_OP_WRITE_SCAL_IMM(op) state.write_scalar((op).res, (op).imm)
#define LISASIM_OP_MOV_SCAL(op) \
  state.write_scalar((op).res, state.read_scalar((op).b))
#define LISASIM_OP_WRITE_ELEM(op) \
  state.write((op).res, static_cast<std::uint64_t>(t[(op).b]), t[(op).a])
#define LISASIM_OP_WRITE_ELEM_C(op) \
  state.write((op).res,             \
              static_cast<std::uint64_t>(static_cast<std::int64_t>((op).imm)), \
              t[(op).a])
#define LISASIM_OP_WRITE_ELEM_OFF(op)                       \
  state.write((op).res,                                     \
              static_cast<std::uint64_t>(t[(op).b]) +       \
                  static_cast<std::uint64_t>(               \
                      static_cast<std::int64_t>((op).imm)), \
              t[(op).a])
#define LISASIM_OP_BIN(op) \
  t[(op).a] = bin_or_throw((op).bop(), t[(op).b], t[(op).c])
#define LISASIM_OP_BIN_IMM(op) \
  t[(op).a] = bin_or_throw((op).bop(), t[(op).b], (op).imm)
#define LISASIM_OP_BIN_IMM_R(op) \
  t[(op).a] = bin_or_throw((op).bop(), (op).imm, t[(op).b])
#define LISASIM_OP_WRITE_BIN(op) \
  state.write_scalar((op).res, bin_or_throw((op).bop(), t[(op).b], t[(op).c]))
#define LISASIM_OP_UN(op) t[(op).a] = fold_unary((op).uop(), t[(op).b])
#define LISASIM_OP_INTR(op)                                             \
  do {                                                                  \
    const std::int64_t args[2] = {t[(op).b], t[(op).c]};                \
    t[(op).a] = fold_intrinsic(                                         \
                    (op).intr(),                                        \
                    std::span<const std::int64_t>(                      \
                        args, static_cast<std::size_t>(                 \
                                  intrinsic_arity((op).intr()))))       \
                    .value_or(0);                                       \
  } while (0)
// Fused arity-2 intrinsic with an immediate second operand (sext/zext
// widths are almost always constants).
#define LISASIM_OP_INTR_IMM(op)                                         \
  do {                                                                  \
    const std::int64_t args[2] = {t[(op).b],                            \
                                  static_cast<std::int64_t>((op).imm)}; \
    t[(op).a] = fold_intrinsic(                                         \
                    (op).intr(),                                        \
                    std::span<const std::int64_t>(args, 2))             \
                    .value_or(0);                                       \
  } while (0)
#define LISASIM_OP_MOV_SCAL_ELEM(op)                       \
  state.write_scalar((op).res,                             \
                     state.read((op).b,                    \
                                static_cast<std::uint64_t>( \
                                    static_cast<std::int64_t>((op).imm))))
#define LISASIM_OP_MOV_ELEM_SCAL(op)                                   \
  state.write((op).res,                                                \
              static_cast<std::uint64_t>(                              \
                  static_cast<std::int64_t>((op).imm)),                \
              state.read_scalar((op).b))
#define LISASIM_OP_READ_ELEM_SCAL(op)  \
  t[(op).a] = state.read((op).res,     \
                         static_cast<std::uint64_t>(state.read_scalar((op).b)))
#define LISASIM_BR_SCAL_ZERO_TAKEN(op) (state.read_scalar((op).b) == 0)
// Validation bars kDiv/kRem from the fused branches, so fold_binary cannot
// come back empty here; value_or(1) keeps the impossible case a no-branch
// instead of UB.
#define LISASIM_BR_BIN_TAKEN(op) \
  (fold_binary((op).bop(), t[(op).b], t[(op).c]).value_or(1) == 0)
#define LISASIM_BR_BIN_IMM_TAKEN(op)           \
  (fold_binary((op).bop(), t[(op).b],          \
               static_cast<std::int64_t>((op).c)) \
       .value_or(1) == 0)

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(LISASIM_NO_COMPUTED_GOTO)
#define LISASIM_COMPUTED_GOTO 1
#endif

void exec_microops(const MicroOp* ops, std::uint32_t count,
                   const std::int64_t* pool, ProcessorState& state,
                   PipelineControl& control, std::int64_t* temps) {
  if (count == 0) return;
  std::int64_t* const t = temps;
  const MicroOp* op = ops;
  const MicroOp* const end = ops + count;
#ifdef LISASIM_COMPUTED_GOTO
  // Label order must match the MKind enumerator order
  // (LISASIM_MKIND_LIST); the static_assert below pins the count so a new
  // kind without a handler label fails the build here.
  static const void* const kDispatch[] = {
      &&l_const,         &&l_mov,          &&l_read_res,
      &&l_read_elem,     &&l_write_res,    &&l_write_elem,
      &&l_bin,           &&l_un,           &&l_intr,
      &&l_brzero,        &&l_br,           &&l_flush,
      &&l_stall,         &&l_halt,         &&l_const_pool,
      &&l_read_scal,     &&l_write_scal,   &&l_write_out,
      &&l_bin_imm,       &&l_bin_imm_r,    &&l_write_bin,
      &&l_br_bin,        &&l_br_bin_imm,   &&l_read_elem_c,
      &&l_write_elem_c,  &&l_read_elem_off, &&l_write_elem_off,
      &&l_write_scal_imm, &&l_mov_scal,     &&l_br_scal_zero,
      &&l_intr_imm,      &&l_mov_scal_elem, &&l_mov_elem_scal,
      &&l_read_elem_scal,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) == kNumMKinds,
                "dispatch table must have a label per MKind");
#define LISASIM_DISPATCH() goto* kDispatch[static_cast<int>(op->kind)]
#define LISASIM_NEXT() \
  do {                 \
    if (++op == end)   \
      return;          \
    LISASIM_DISPATCH(); \
  } while (0)
  LISASIM_DISPATCH();
l_const:
  LISASIM_OP_CONST(*op);
  LISASIM_NEXT();
l_const_pool:
  LISASIM_OP_CONST_POOL(*op);
  LISASIM_NEXT();
l_mov:
  LISASIM_OP_MOV(*op);
  LISASIM_NEXT();
l_read_res:
  LISASIM_OP_READ_RES(*op);
  LISASIM_NEXT();
l_read_scal:
  LISASIM_OP_READ_SCAL(*op);
  LISASIM_NEXT();
l_read_elem:
  LISASIM_OP_READ_ELEM(*op);
  LISASIM_NEXT();
l_read_elem_c:
  LISASIM_OP_READ_ELEM_C(*op);
  LISASIM_NEXT();
l_read_elem_off:
  LISASIM_OP_READ_ELEM_OFF(*op);
  LISASIM_NEXT();
l_write_res:
  LISASIM_OP_WRITE_RES(*op);
  LISASIM_NEXT();
l_write_scal:
  LISASIM_OP_WRITE_SCAL(*op);
  LISASIM_NEXT();
l_write_out:
  LISASIM_OP_WRITE_OUT(*op);
  LISASIM_NEXT();
l_write_scal_imm:
  LISASIM_OP_WRITE_SCAL_IMM(*op);
  LISASIM_NEXT();
l_mov_scal:
  LISASIM_OP_MOV_SCAL(*op);
  LISASIM_NEXT();
l_mov_scal_elem:
  LISASIM_OP_MOV_SCAL_ELEM(*op);
  LISASIM_NEXT();
l_mov_elem_scal:
  LISASIM_OP_MOV_ELEM_SCAL(*op);
  LISASIM_NEXT();
l_read_elem_scal:
  LISASIM_OP_READ_ELEM_SCAL(*op);
  LISASIM_NEXT();
l_intr_imm:
  LISASIM_OP_INTR_IMM(*op);
  LISASIM_NEXT();
l_write_elem:
  LISASIM_OP_WRITE_ELEM(*op);
  LISASIM_NEXT();
l_write_elem_c:
  LISASIM_OP_WRITE_ELEM_C(*op);
  LISASIM_NEXT();
l_write_elem_off:
  LISASIM_OP_WRITE_ELEM_OFF(*op);
  LISASIM_NEXT();
l_bin:
  LISASIM_OP_BIN(*op);
  LISASIM_NEXT();
l_bin_imm:
  LISASIM_OP_BIN_IMM(*op);
  LISASIM_NEXT();
l_bin_imm_r:
  LISASIM_OP_BIN_IMM_R(*op);
  LISASIM_NEXT();
l_write_bin:
  LISASIM_OP_WRITE_BIN(*op);
  LISASIM_NEXT();
l_un:
  LISASIM_OP_UN(*op);
  LISASIM_NEXT();
l_intr:
  LISASIM_OP_INTR(*op);
  LISASIM_NEXT();
l_brzero:
  if (t[op->a] == 0) {
    op = ops + op->imm;
    if (op == end) return;
    LISASIM_DISPATCH();
  }
  LISASIM_NEXT();
l_br_bin:
  if (LISASIM_BR_BIN_TAKEN(*op)) {
    op = ops + op->imm;
    if (op == end) return;
    LISASIM_DISPATCH();
  }
  LISASIM_NEXT();
l_br_bin_imm:
  if (LISASIM_BR_BIN_IMM_TAKEN(*op)) {
    op = ops + op->imm;
    if (op == end) return;
    LISASIM_DISPATCH();
  }
  LISASIM_NEXT();
l_br_scal_zero:
  if (LISASIM_BR_SCAL_ZERO_TAKEN(*op)) {
    op = ops + op->imm;
    if (op == end) return;
    LISASIM_DISPATCH();
  }
  LISASIM_NEXT();
l_br:
  op = ops + op->imm;
  if (op == end) return;
  LISASIM_DISPATCH();
l_flush:
  control.flush = true;
  LISASIM_NEXT();
l_stall:
  control.stall_cycles += static_cast<int>(t[op->a]);
  LISASIM_NEXT();
l_halt:
  control.halt = true;
  LISASIM_NEXT();
#undef LISASIM_NEXT
#undef LISASIM_DISPATCH
#else
  while (op != end) {
    switch (op->kind) {
      case MKind::kConst: LISASIM_OP_CONST(*op); break;
      case MKind::kConstPool: LISASIM_OP_CONST_POOL(*op); break;
      case MKind::kMov: LISASIM_OP_MOV(*op); break;
      case MKind::kReadRes: LISASIM_OP_READ_RES(*op); break;
      case MKind::kReadScal: LISASIM_OP_READ_SCAL(*op); break;
      case MKind::kReadElem: LISASIM_OP_READ_ELEM(*op); break;
      case MKind::kReadElemC: LISASIM_OP_READ_ELEM_C(*op); break;
      case MKind::kReadElemOff: LISASIM_OP_READ_ELEM_OFF(*op); break;
      case MKind::kWriteRes: LISASIM_OP_WRITE_RES(*op); break;
      case MKind::kWriteScal: LISASIM_OP_WRITE_SCAL(*op); break;
      case MKind::kWriteOut: LISASIM_OP_WRITE_OUT(*op); break;
      case MKind::kWriteScalImm: LISASIM_OP_WRITE_SCAL_IMM(*op); break;
      case MKind::kMovScal: LISASIM_OP_MOV_SCAL(*op); break;
      case MKind::kMovScalElem: LISASIM_OP_MOV_SCAL_ELEM(*op); break;
      case MKind::kMovElemScal: LISASIM_OP_MOV_ELEM_SCAL(*op); break;
      case MKind::kReadElemScal: LISASIM_OP_READ_ELEM_SCAL(*op); break;
      case MKind::kIntrImm: LISASIM_OP_INTR_IMM(*op); break;
      case MKind::kWriteElem: LISASIM_OP_WRITE_ELEM(*op); break;
      case MKind::kWriteElemC: LISASIM_OP_WRITE_ELEM_C(*op); break;
      case MKind::kWriteElemOff: LISASIM_OP_WRITE_ELEM_OFF(*op); break;
      case MKind::kBin: LISASIM_OP_BIN(*op); break;
      case MKind::kBinImm: LISASIM_OP_BIN_IMM(*op); break;
      case MKind::kBinImmR: LISASIM_OP_BIN_IMM_R(*op); break;
      case MKind::kWriteBin: LISASIM_OP_WRITE_BIN(*op); break;
      case MKind::kUn: LISASIM_OP_UN(*op); break;
      case MKind::kIntr: LISASIM_OP_INTR(*op); break;
      case MKind::kBrZero:
        if (t[op->a] == 0) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBrBin:
        if (LISASIM_BR_BIN_TAKEN(*op)) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBrBinImm:
        if (LISASIM_BR_BIN_IMM_TAKEN(*op)) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBrScalZero:
        if (LISASIM_BR_SCAL_ZERO_TAKEN(*op)) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBr:
        op = ops + op->imm;
        continue;
      case MKind::kFlush: control.flush = true; break;
      case MKind::kStall:
        control.stall_cycles += static_cast<int>(t[op->a]);
        break;
      case MKind::kHalt: control.halt = true; break;
    }
    ++op;
  }
#endif
}

std::uint64_t exec_microops_counted(const MicroOp* ops, std::uint32_t count,
                                    const std::int64_t* pool,
                                    ProcessorState& state,
                                    PipelineControl& control,
                                    std::int64_t* temps) {
  std::int64_t* const t = temps;
  const MicroOp* op = ops;
  const MicroOp* const end = ops + count;
  std::uint64_t dispatched = 0;
  while (op != end) {
    ++dispatched;
    switch (op->kind) {
      case MKind::kConst: LISASIM_OP_CONST(*op); break;
      case MKind::kConstPool: LISASIM_OP_CONST_POOL(*op); break;
      case MKind::kMov: LISASIM_OP_MOV(*op); break;
      case MKind::kReadRes: LISASIM_OP_READ_RES(*op); break;
      case MKind::kReadScal: LISASIM_OP_READ_SCAL(*op); break;
      case MKind::kReadElem: LISASIM_OP_READ_ELEM(*op); break;
      case MKind::kReadElemC: LISASIM_OP_READ_ELEM_C(*op); break;
      case MKind::kReadElemOff: LISASIM_OP_READ_ELEM_OFF(*op); break;
      case MKind::kWriteRes: LISASIM_OP_WRITE_RES(*op); break;
      case MKind::kWriteScal: LISASIM_OP_WRITE_SCAL(*op); break;
      case MKind::kWriteOut: LISASIM_OP_WRITE_OUT(*op); break;
      case MKind::kWriteScalImm: LISASIM_OP_WRITE_SCAL_IMM(*op); break;
      case MKind::kMovScal: LISASIM_OP_MOV_SCAL(*op); break;
      case MKind::kMovScalElem: LISASIM_OP_MOV_SCAL_ELEM(*op); break;
      case MKind::kMovElemScal: LISASIM_OP_MOV_ELEM_SCAL(*op); break;
      case MKind::kReadElemScal: LISASIM_OP_READ_ELEM_SCAL(*op); break;
      case MKind::kIntrImm: LISASIM_OP_INTR_IMM(*op); break;
      case MKind::kWriteElem: LISASIM_OP_WRITE_ELEM(*op); break;
      case MKind::kWriteElemC: LISASIM_OP_WRITE_ELEM_C(*op); break;
      case MKind::kWriteElemOff: LISASIM_OP_WRITE_ELEM_OFF(*op); break;
      case MKind::kBin: LISASIM_OP_BIN(*op); break;
      case MKind::kBinImm: LISASIM_OP_BIN_IMM(*op); break;
      case MKind::kBinImmR: LISASIM_OP_BIN_IMM_R(*op); break;
      case MKind::kWriteBin: LISASIM_OP_WRITE_BIN(*op); break;
      case MKind::kUn: LISASIM_OP_UN(*op); break;
      case MKind::kIntr: LISASIM_OP_INTR(*op); break;
      case MKind::kBrZero:
        if (t[op->a] == 0) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBrBin:
        if (LISASIM_BR_BIN_TAKEN(*op)) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBrBinImm:
        if (LISASIM_BR_BIN_IMM_TAKEN(*op)) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBrScalZero:
        if (LISASIM_BR_SCAL_ZERO_TAKEN(*op)) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBr:
        op = ops + op->imm;
        continue;
      case MKind::kFlush: control.flush = true; break;
      case MKind::kStall:
        control.stall_cycles += static_cast<int>(t[op->a]);
        break;
      case MKind::kHalt: control.halt = true; break;
    }
    ++op;
  }
  return dispatched;
}

namespace {

// Strided view of the shared lane-SoA temp buffer: temp `i` of a lane lives
// at base[i * stride + lane], so the same temp of every lane is contiguous
// and the lane-innermost loops below are plain unit-stride vector code. The
// operator[] shape lets the LISASIM_OP_* macros above be reused verbatim.
struct LaneTempView {
  std::int64_t* base;
  std::size_t stride;
  std::size_t lane;
  std::int64_t& operator[](std::int64_t i) const {
    return base[static_cast<std::size_t>(i) * stride + lane];
  }
};

}  // namespace

// Iterate the active lanes of `mask`, binding the names the LISASIM_OP_*
// macros expect (`state`, `control`, `t`) to the lane's view. The void
// casts keep kinds that touch only a subset of the bindings warning-free.
#define LISASIM_LANES(body)                                               \
  for (std::uint64_t rest_ = mask; rest_ != 0; rest_ &= rest_ - 1) {      \
    const std::size_t lane = static_cast<std::size_t>(                    \
        std::countr_zero(rest_));                                         \
    ProcessorState& state = *states[lane];                                \
    PipelineControl& control = *controls[lane];                           \
    const LaneTempView t{temps, temp_stride, lane};                       \
    (void)state;                                                          \
    (void)control;                                                        \
    (void)t;                                                              \
    body;                                                                 \
  }

// Same, for kinds that can throw (element accesses, division): a faulting
// lane is dropped from the group with its error recorded, its state frozen
// exactly where the sequential executor's unwind would leave it; the other
// lanes continue.
#define LISASIM_LANES_THROW(body)                                         \
  for (std::uint64_t rest_ = mask; rest_ != 0; rest_ &= rest_ - 1) {      \
    const std::size_t lane = static_cast<std::size_t>(                    \
        std::countr_zero(rest_));                                         \
    ProcessorState& state = *states[lane];                                \
    PipelineControl& control = *controls[lane];                           \
    const LaneTempView t{temps, temp_stride, lane};                       \
    (void)state;                                                          \
    (void)control;                                                        \
    (void)t;                                                              \
    try {                                                                 \
      body;                                                               \
    } catch (const SimError& e) {                                         \
      faults[lane].emplace(e);                                            \
      const std::uint64_t bit_ = std::uint64_t{1} << lane;                \
      mask &= ~bit_;                                                      \
      faulted |= bit_;                                                    \
    }                                                                     \
  }

std::uint64_t exec_microops_lanes(const MicroOp* ops, std::uint32_t count,
                                  const std::int64_t* pool,
                                  ProcessorState* const* states,
                                  PipelineControl* const* controls,
                                  std::uint64_t active, std::int64_t* temps,
                                  std::uint32_t temp_stride,
                                  std::optional<SimError>* faults) {
  if (count == 0 || active == 0) return 0;
  // Worklist of (ip, lane set) groups. All masks — the current group's and
  // every stacked one — stay pairwise disjoint (a divergent branch moves
  // bits from the current mask onto the stack), so with at least one lane
  // per entry the stack never holds more than kMaxBatchLanes groups.
  struct Group {
    std::uint32_t ip;
    std::uint64_t mask;
  };
  Group stack[kMaxBatchLanes + 1];
  int top = 0;
  stack[top++] = {0, active};
  std::uint64_t faulted = 0;
  while (top > 0) {
    std::uint32_t ip = stack[top - 1].ip;
    std::uint64_t mask = stack[top - 1].mask;
    --top;
    while (ip < count && mask != 0) {
      const MicroOp& op = ops[ip];
      switch (op.kind) {
        case MKind::kConst: LISASIM_LANES(LISASIM_OP_CONST(op)); break;
        case MKind::kConstPool:
          LISASIM_LANES(LISASIM_OP_CONST_POOL(op));
          break;
        case MKind::kMov: LISASIM_LANES(LISASIM_OP_MOV(op)); break;
        case MKind::kReadRes: LISASIM_LANES(LISASIM_OP_READ_RES(op)); break;
        case MKind::kReadScal:
          LISASIM_LANES(LISASIM_OP_READ_SCAL(op));
          break;
        case MKind::kReadElem:
          LISASIM_LANES_THROW(LISASIM_OP_READ_ELEM(op));
          break;
        case MKind::kReadElemC:
          LISASIM_LANES_THROW(LISASIM_OP_READ_ELEM_C(op));
          break;
        case MKind::kReadElemOff:
          LISASIM_LANES_THROW(LISASIM_OP_READ_ELEM_OFF(op));
          break;
        case MKind::kWriteRes:
          LISASIM_LANES(LISASIM_OP_WRITE_RES(op));
          break;
        case MKind::kWriteScal:
          LISASIM_LANES(LISASIM_OP_WRITE_SCAL(op));
          break;
        case MKind::kWriteOut: LISASIM_LANES(LISASIM_OP_WRITE_OUT(op)); break;
        case MKind::kWriteScalImm:
          LISASIM_LANES(LISASIM_OP_WRITE_SCAL_IMM(op));
          break;
        case MKind::kMovScal: LISASIM_LANES(LISASIM_OP_MOV_SCAL(op)); break;
        case MKind::kMovScalElem:
          LISASIM_LANES_THROW(LISASIM_OP_MOV_SCAL_ELEM(op));
          break;
        case MKind::kMovElemScal:
          LISASIM_LANES_THROW(LISASIM_OP_MOV_ELEM_SCAL(op));
          break;
        case MKind::kReadElemScal:
          LISASIM_LANES_THROW(LISASIM_OP_READ_ELEM_SCAL(op));
          break;
        case MKind::kIntrImm: LISASIM_LANES(LISASIM_OP_INTR_IMM(op)); break;
        case MKind::kWriteElem:
          LISASIM_LANES_THROW(LISASIM_OP_WRITE_ELEM(op));
          break;
        case MKind::kWriteElemC:
          LISASIM_LANES_THROW(LISASIM_OP_WRITE_ELEM_C(op));
          break;
        case MKind::kWriteElemOff:
          LISASIM_LANES_THROW(LISASIM_OP_WRITE_ELEM_OFF(op));
          break;
        case MKind::kBin:
          // Only a zero divisor throws; decide once per group so the hot
          // arithmetic lane loops stay free of landing pads and vectorize.
          if (op.bop() == BinOp::kDiv || op.bop() == BinOp::kRem) {
            LISASIM_LANES_THROW(LISASIM_OP_BIN(op));
          } else {
            LISASIM_LANES(LISASIM_OP_BIN(op));
          }
          break;
        case MKind::kBinImm: LISASIM_LANES(LISASIM_OP_BIN_IMM(op)); break;
        case MKind::kBinImmR:
          if (op.bop() == BinOp::kDiv || op.bop() == BinOp::kRem) {
            LISASIM_LANES_THROW(LISASIM_OP_BIN_IMM_R(op));
          } else {
            LISASIM_LANES(LISASIM_OP_BIN_IMM_R(op));
          }
          break;
        case MKind::kWriteBin:
          if (op.bop() == BinOp::kDiv || op.bop() == BinOp::kRem) {
            LISASIM_LANES_THROW(LISASIM_OP_WRITE_BIN(op));
          } else {
            LISASIM_LANES(LISASIM_OP_WRITE_BIN(op));
          }
          break;
        case MKind::kUn: LISASIM_LANES(LISASIM_OP_UN(op)); break;
        case MKind::kIntr: LISASIM_LANES(LISASIM_OP_INTR(op)); break;
        case MKind::kBrZero:
        case MKind::kBrBin:
        case MKind::kBrBinImm:
        case MKind::kBrScalZero: {
          // Evaluate the predicate per lane, then mask-and-split: the taken
          // subset is queued for the target, the fall-through subset keeps
          // running. Wholesale agreement (all lanes taken) jumps directly.
          std::uint64_t taken = 0;
          switch (op.kind) {
            case MKind::kBrZero:
              LISASIM_LANES(if (t[op.a] == 0) taken |=
                            std::uint64_t{1} << lane);
              break;
            case MKind::kBrBin:
              LISASIM_LANES(if (LISASIM_BR_BIN_TAKEN(op)) taken |=
                            std::uint64_t{1} << lane);
              break;
            case MKind::kBrBinImm:
              LISASIM_LANES(if (LISASIM_BR_BIN_IMM_TAKEN(op)) taken |=
                            std::uint64_t{1} << lane);
              break;
            default:
              LISASIM_LANES(if (LISASIM_BR_SCAL_ZERO_TAKEN(op)) taken |=
                            std::uint64_t{1} << lane);
              break;
          }
          if (taken == mask) {
            ip = static_cast<std::uint32_t>(op.imm);
            continue;
          }
          if (taken != 0) {
            stack[top] = {static_cast<std::uint32_t>(op.imm), taken};
            ++top;
            mask &= ~taken;
          }
          ++ip;
          continue;
        }
        case MKind::kBr:
          ip = static_cast<std::uint32_t>(op.imm);
          continue;
        case MKind::kFlush: LISASIM_LANES(control.flush = true); break;
        case MKind::kStall:
          LISASIM_LANES(control.stall_cycles += static_cast<int>(t[op.a]));
          break;
        case MKind::kHalt: LISASIM_LANES(control.halt = true); break;
      }
      ++ip;
    }
  }
  return faulted;
}

#undef LISASIM_LANES
#undef LISASIM_LANES_THROW

#undef LISASIM_OP_CONST
#undef LISASIM_OP_CONST_POOL
#undef LISASIM_OP_MOV
#undef LISASIM_OP_READ_RES
#undef LISASIM_OP_READ_SCAL
#undef LISASIM_OP_READ_ELEM
#undef LISASIM_OP_READ_ELEM_C
#undef LISASIM_OP_READ_ELEM_OFF
#undef LISASIM_OP_WRITE_RES
#undef LISASIM_OP_WRITE_SCAL
#undef LISASIM_OP_WRITE_OUT
#undef LISASIM_OP_WRITE_SCAL_IMM
#undef LISASIM_OP_MOV_SCAL
#undef LISASIM_OP_WRITE_ELEM
#undef LISASIM_OP_WRITE_ELEM_C
#undef LISASIM_OP_WRITE_ELEM_OFF
#undef LISASIM_OP_BIN
#undef LISASIM_OP_BIN_IMM
#undef LISASIM_OP_BIN_IMM_R
#undef LISASIM_OP_WRITE_BIN
#undef LISASIM_OP_UN
#undef LISASIM_OP_INTR
#undef LISASIM_BR_BIN_TAKEN
#undef LISASIM_BR_BIN_IMM_TAKEN
#undef LISASIM_OP_INTR_IMM
#undef LISASIM_OP_MOV_SCAL_ELEM
#undef LISASIM_OP_MOV_ELEM_SCAL
#undef LISASIM_OP_READ_ELEM_SCAL
#undef LISASIM_BR_SCAL_ZERO_TAKEN

void run_microops(const MicroProgram& program, ProcessorState& state,
                  PipelineControl& control,
                  std::vector<std::int64_t>& temps) {
  // No zero-fill: lowering guarantees every temp (including local slots) is
  // written before it is read.
  if (temps.size() < static_cast<std::size_t>(program.num_temps))
    temps.resize(static_cast<std::size_t>(program.num_temps));
  exec_microops(program.ops.data(),
                static_cast<std::uint32_t>(program.ops.size()),
                program.pool.data(), state, control, temps.data());
}

std::string microops_to_string(const MicroOp* ops, std::size_t count,
                               const std::int64_t* pool) {
  std::string out;
  for (std::size_t i = 0; i < count; ++i) {
    const MicroOp& op = ops[i];
    out += std::to_string(i) + ": ";
    const auto t = [](std::int32_t x) { return "t" + std::to_string(x); };
    const auto r = [](std::int32_t x) { return "res" + std::to_string(x); };
    switch (op.kind) {
      case MKind::kConst:
        out += t(op.a) + " = " + std::to_string(op.imm);
        break;
      case MKind::kConstPool:
        out += t(op.a) + " = pool[" + std::to_string(op.imm) + "]";
        if (pool) out += " (" + std::to_string(pool[op.imm]) + ")";
        break;
      case MKind::kMov:
        out += t(op.a) + " = " + t(op.b);
        break;
      case MKind::kReadRes:
        out += t(op.a) + " = " + r(op.res);
        break;
      case MKind::kReadScal:
        out += t(op.a) + " = scal " + r(op.res);
        break;
      case MKind::kReadElem:
        out += t(op.a) + " = " + r(op.res) + "[" + t(op.b) + "]";
        break;
      case MKind::kReadElemC:
        out += t(op.a) + " = " + r(op.res) + "[" + std::to_string(op.imm) +
               "]";
        break;
      case MKind::kReadElemOff:
        out += t(op.a) + " = " + r(op.res) + "[" + t(op.b) + " + " +
               std::to_string(op.imm) + "]";
        break;
      case MKind::kWriteRes:
        out += r(op.res) + " = " + t(op.a);
        break;
      case MKind::kWriteScal:
        out += "scal " + r(op.res) + " = " + t(op.b);
        break;
      case MKind::kWriteOut:
        out += "scal " + r(op.res) + " = " + t(op.b) + " -> " + t(op.a);
        break;
      case MKind::kWriteScalImm:
        out += "scal " + r(op.res) + " = " + std::to_string(op.imm);
        break;
      case MKind::kMovScal:
        out += "scal " + r(op.res) + " = scal " + r(op.b);
        break;
      case MKind::kMovScalElem:
        out += "scal " + r(op.res) + " = " + r(op.b) + "[" +
               std::to_string(op.imm) + "]";
        break;
      case MKind::kMovElemScal:
        out += r(op.res) + "[" + std::to_string(op.imm) + "] = scal " +
               r(op.b);
        break;
      case MKind::kReadElemScal:
        out += t(op.a) + " = " + r(op.res) + "[scal " + r(op.b) + "]";
        break;
      case MKind::kWriteElem:
        out += r(op.res) + "[" + t(op.b) + "] = " + t(op.a);
        break;
      case MKind::kWriteElemC:
        out += r(op.res) + "[" + std::to_string(op.imm) + "] = " + t(op.a);
        break;
      case MKind::kWriteElemOff:
        out += r(op.res) + "[" + t(op.b) + " + " + std::to_string(op.imm) +
               "] = " + t(op.a);
        break;
      case MKind::kBin:
        out += t(op.a) + " = " + t(op.b) + " " + bin_op_spelling(op.bop()) +
               " " + t(op.c);
        break;
      case MKind::kBinImm:
        out += t(op.a) + " = " + t(op.b) + " " + bin_op_spelling(op.bop()) +
               " " + std::to_string(op.imm);
        break;
      case MKind::kBinImmR:
        out += t(op.a) + " = " + std::to_string(op.imm) + " " +
               bin_op_spelling(op.bop()) + " " + t(op.b);
        break;
      case MKind::kWriteBin:
        out += "scal " + r(op.res) + " = " + t(op.b) + " " +
               bin_op_spelling(op.bop()) + " " + t(op.c);
        break;
      case MKind::kUn:
        out += t(op.a) + " = " + un_op_spelling(op.uop()) + t(op.b);
        break;
      case MKind::kIntr:
        out += t(op.a) + " = " + intrinsic_name(op.intr()) + "(" + t(op.b) +
               ", " + t(op.c) + ")";
        break;
      case MKind::kIntrImm:
        out += t(op.a) + " = " + intrinsic_name(op.intr()) + "(" + t(op.b) +
               ", " + std::to_string(op.imm) + ")";
        break;
      case MKind::kBrZero:
        out += "brzero " + t(op.a) + " -> " + std::to_string(op.imm);
        break;
      case MKind::kBrBin:
        out += "brzero (" + t(op.b) + " " + bin_op_spelling(op.bop()) + " " +
               t(op.c) + ") -> " + std::to_string(op.imm);
        break;
      case MKind::kBrBinImm:
        out += "brzero (" + t(op.b) + " " + bin_op_spelling(op.bop()) + " " +
               std::to_string(op.c) + ") -> " + std::to_string(op.imm);
        break;
      case MKind::kBrScalZero:
        out += "brzero scal " + r(op.b) + " -> " + std::to_string(op.imm);
        break;
      case MKind::kBr:
        out += "br -> " + std::to_string(op.imm);
        break;
      case MKind::kFlush: out += "flush"; break;
      case MKind::kStall: out += "stall " + t(op.a); break;
      case MKind::kHalt: out += "halt"; break;
    }
    out += "\n";
  }
  return out;
}

std::string microops_to_string(const MicroProgram& program) {
  return microops_to_string(program.ops.data(), program.ops.size(),
                            program.pool.data());
}

}  // namespace lisasim
