#include "behavior/microops.hpp"

#include <cassert>
#include <string>

#include "behavior/fold.hpp"

namespace lisasim {

namespace {

class Lowerer {
 public:
  MicroProgram lower(const SpecProgram& program) {
    num_temps_ = program.num_locals;  // local slot i lives in temp i
    emit_stmts(program.stmts);
    MicroProgram out;
    out.ops = std::move(ops_);
    out.num_temps = num_temps_;
    return out;
  }

 private:
  std::int32_t new_temp() { return num_temps_++; }

  std::int32_t emit(MicroOp op) {
    ops_.push_back(op);
    return static_cast<std::int32_t>(ops_.size() - 1);
  }

  void emit_stmts(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) emit_stmt(*s);
  }

  void emit_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kLocalDecl: {
        const std::int32_t slot = stmt.local_slot;
        if (stmt.value) {
          const std::int32_t v = emit_expr(*stmt.value);
          emit({.kind = MKind::kMov, .a = slot, .b = v});
        } else {
          emit({.kind = MKind::kConst, .a = slot, .imm = 0});
        }
        break;
      }
      case StmtKind::kAssign: {
        const std::int32_t v = emit_expr(*stmt.value);
        emit_assign(*stmt.lhs, v);
        break;
      }
      case StmtKind::kExpr:
        emit_expr(*stmt.value);
        break;
      case StmtKind::kIf: {
        const std::int32_t cond = emit_expr(*stmt.value);
        const std::int32_t br_else =
            emit({.kind = MKind::kBrZero, .a = cond});
        emit_stmts(stmt.then_body);
        if (stmt.else_body.empty()) {
          patch(br_else, here());
        } else {
          const std::int32_t br_end = emit({.kind = MKind::kBr});
          patch(br_else, here());
          emit_stmts(stmt.else_body);
          patch(br_end, here());
        }
        break;
      }
    }
  }

  std::int32_t here() const { return static_cast<std::int32_t>(ops_.size()); }

  void patch(std::int32_t branch_index, std::int32_t target) {
    ops_[static_cast<std::size_t>(branch_index)].imm = target;
  }

  void emit_assign(const Expr& lhs, std::int32_t value_temp) {
    switch (lhs.kind) {
      case ExprKind::kSym:
        switch (lhs.sym.kind) {
          case SymKind::kLocal:
            emit({.kind = MKind::kMov, .a = lhs.sym.index, .b = value_temp});
            return;
          case SymKind::kResource:
            emit({.kind = MKind::kWriteRes,
                  .a = value_temp,
                  .res = lhs.sym.index});
            return;
          default:
            break;
        }
        break;
      case ExprKind::kIndex: {
        const std::int32_t idx = emit_expr(*lhs.children[0]);
        emit({.kind = MKind::kWriteElem,
              .a = value_temp,
              .b = idx,
              .res = lhs.sym.index});
        return;
      }
      default:
        break;
    }
    throw SimError("micro-op lowering: unsupported assignment target: " +
                   lhs.to_string());
  }

  std::int32_t emit_expr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit: {
        const std::int32_t t = new_temp();
        emit({.kind = MKind::kConst, .a = t, .imm = expr.value});
        return t;
      }
      case ExprKind::kSym:
        switch (expr.sym.kind) {
          case SymKind::kLocal:
            return expr.sym.index;  // locals live in their temp slots
          case SymKind::kResource: {
            const std::int32_t t = new_temp();
            emit({.kind = MKind::kReadRes, .a = t, .res = expr.sym.index});
            return t;
          }
          default:
            throw SimError(
                "micro-op lowering: unspecialized symbol '" + expr.sym.name +
                "' (did specialization run?)");
        }
      case ExprKind::kIndex: {
        const std::int32_t idx = emit_expr(*expr.children[0]);
        const std::int32_t t = new_temp();
        emit({.kind = MKind::kReadElem,
              .a = t,
              .b = idx,
              .res = expr.sym.index});
        return t;
      }
      case ExprKind::kUnary: {
        const std::int32_t v = emit_expr(*expr.children[0]);
        const std::int32_t t = new_temp();
        emit({.kind = MKind::kUn, .uop = expr.un_op, .a = t, .b = v});
        return t;
      }
      case ExprKind::kBinary: {
        if (expr.bin_op == BinOp::kLogicalAnd ||
            expr.bin_op == BinOp::kLogicalOr) {
          // Short-circuit: t = bool(lhs); if (need) t = bool(rhs);
          const bool is_and = expr.bin_op == BinOp::kLogicalAnd;
          const std::int32_t t = new_temp();
          const std::int32_t lhs = emit_expr(*expr.children[0]);
          const std::int32_t zero = new_temp();
          emit({.kind = MKind::kConst, .a = zero, .imm = 0});
          emit({.kind = MKind::kBin, .bop = BinOp::kNe, .a = t, .b = lhs,
                .c = zero});
          std::int32_t skip;
          if (is_and) {
            skip = emit({.kind = MKind::kBrZero, .a = t});
          } else {
            // skip rhs when lhs != 0: brzero over an unconditional branch
            const std::int32_t over = emit({.kind = MKind::kBrZero, .a = t});
            skip = emit({.kind = MKind::kBr});
            patch(over, here());
          }
          const std::int32_t rhs = emit_expr(*expr.children[1]);
          emit({.kind = MKind::kBin, .bop = BinOp::kNe, .a = t, .b = rhs,
                .c = zero});
          patch(skip, here());
          return t;
        }
        const std::int32_t a = emit_expr(*expr.children[0]);
        const std::int32_t b = emit_expr(*expr.children[1]);
        const std::int32_t t = new_temp();
        emit({.kind = MKind::kBin, .bop = expr.bin_op, .a = t, .b = a,
              .c = b});
        return t;
      }
      case ExprKind::kTernary: {
        const std::int32_t t = new_temp();
        const std::int32_t cond = emit_expr(*expr.children[0]);
        const std::int32_t br_else = emit({.kind = MKind::kBrZero, .a = cond});
        const std::int32_t then_v = emit_expr(*expr.children[1]);
        emit({.kind = MKind::kMov, .a = t, .b = then_v});
        const std::int32_t br_end = emit({.kind = MKind::kBr});
        patch(br_else, here());
        const std::int32_t else_v = emit_expr(*expr.children[2]);
        emit({.kind = MKind::kMov, .a = t, .b = else_v});
        patch(br_end, here());
        return t;
      }
      case ExprKind::kCall:
        switch (expr.intrinsic) {
          case Intrinsic::kFlush: {
            emit({.kind = MKind::kFlush});
            return result_zero();
          }
          case Intrinsic::kStall: {
            const std::int32_t v = emit_expr(*expr.children[0]);
            emit({.kind = MKind::kStall, .a = v});
            return result_zero();
          }
          case Intrinsic::kHalt: {
            emit({.kind = MKind::kHalt});
            return result_zero();
          }
          case Intrinsic::kNone:
            throw SimError("micro-op lowering: unresolved intrinsic '" +
                           expr.callee + "'");
          default: {
            const std::int32_t a = emit_expr(*expr.children[0]);
            const std::int32_t b =
                expr.children.size() > 1 ? emit_expr(*expr.children[1]) : 0;
            const std::int32_t t = new_temp();
            emit({.kind = MKind::kIntr,
                  .intr = expr.intrinsic,
                  .a = t,
                  .b = a,
                  .c = b});
            return t;
          }
        }
    }
    throw SimError("micro-op lowering: unsupported expression");
  }

  std::int32_t result_zero() {
    const std::int32_t t = new_temp();
    emit({.kind = MKind::kConst, .a = t, .imm = 0});
    return t;
  }

  std::vector<MicroOp> ops_;
  std::int32_t num_temps_ = 0;
};

[[noreturn]] void bad_temp(std::size_t index, std::int32_t temp,
                           int num_temps) {
  throw SimError("micro-op " + std::to_string(index) + ": temp t" +
                 std::to_string(temp) + " outside scratch of " +
                 std::to_string(num_temps));
}

}  // namespace

MicroProgram lower_to_microops(const SpecProgram& program) {
  MicroProgram out = Lowerer().lower(program);
  validate_microops(out);
  return out;
}

void validate_microops(const MicroProgram& program) {
  const auto size = static_cast<std::int64_t>(program.ops.size());
  const auto check_temp = [&](std::size_t i, std::int32_t t) {
    if (t < 0 || t >= program.num_temps) bad_temp(i, t, program.num_temps);
  };
  for (std::size_t i = 0; i < program.ops.size(); ++i) {
    const MicroOp& op = program.ops[i];
    switch (op.kind) {
      case MKind::kConst:
      case MKind::kReadRes:
      case MKind::kStall:
        check_temp(i, op.a);
        break;
      case MKind::kMov:
      case MKind::kReadElem:
      case MKind::kWriteElem:
      case MKind::kUn:
        check_temp(i, op.a);
        check_temp(i, op.b);
        break;
      case MKind::kWriteRes:
        check_temp(i, op.a);
        break;
      case MKind::kBin:
        check_temp(i, op.a);
        check_temp(i, op.b);
        check_temp(i, op.c);
        break;
      case MKind::kIntr:
        check_temp(i, op.a);
        check_temp(i, op.b);
        if (intrinsic_arity(op.intr) > 1) check_temp(i, op.c);
        break;
      case MKind::kBrZero:
        check_temp(i, op.a);
        [[fallthrough]];
      case MKind::kBr:
        // Target == size is the regular fall-off-the-end exit.
        if (op.imm < 0 || op.imm > size)
          throw SimError("micro-op " + std::to_string(i) +
                         ": branch target " + std::to_string(op.imm) +
                         " outside program of " + std::to_string(size) +
                         " ops");
        break;
      case MKind::kFlush:
      case MKind::kHalt:
        break;
    }
  }
}

// The dispatch loop exists twice: a computed-goto threaded version (one
// indirect jump per op, no bounds re-check, the form generated compiled
// simulators use) and a portable switch loop that doubles as the counted
// instrumentation path. Both share the per-op semantics via OP_* macros so
// they cannot diverge.
#define LISASIM_OP_CONST(op) t[(op).a] = (op).imm
#define LISASIM_OP_MOV(op) t[(op).a] = t[(op).b]
#define LISASIM_OP_READ_RES(op) t[(op).a] = state.read((op).res)
#define LISASIM_OP_READ_ELEM(op) \
  t[(op).a] = state.read((op).res, static_cast<std::uint64_t>(t[(op).b]))
#define LISASIM_OP_WRITE_RES(op) state.write((op).res, 0, t[(op).a])
#define LISASIM_OP_WRITE_ELEM(op) \
  state.write((op).res, static_cast<std::uint64_t>(t[(op).b]), t[(op).a])
#define LISASIM_OP_BIN(op)                                              \
  do {                                                                  \
    const auto folded = fold_binary((op).bop, t[(op).b], t[(op).c]);    \
    if (!folded)                                                        \
      throw SimError((op).bop == BinOp::kDiv ? "division by zero"       \
                                             : "remainder by zero");    \
    t[(op).a] = *folded;                                                \
  } while (0)
#define LISASIM_OP_UN(op) t[(op).a] = fold_unary((op).uop, t[(op).b])
#define LISASIM_OP_INTR(op)                                             \
  do {                                                                  \
    const std::int64_t args[2] = {t[(op).b], t[(op).c]};                \
    t[(op).a] = fold_intrinsic(                                         \
                    (op).intr,                                          \
                    std::span<const std::int64_t>(                      \
                        args, static_cast<std::size_t>(                 \
                                  intrinsic_arity((op).intr))))         \
                    .value_or(0);                                       \
  } while (0)

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(LISASIM_NO_COMPUTED_GOTO)
#define LISASIM_COMPUTED_GOTO 1
#endif

void exec_microops(const MicroOp* ops, std::uint32_t count,
                   ProcessorState& state, PipelineControl& control,
                   std::int64_t* temps) {
  if (count == 0) return;
  std::int64_t* const t = temps;
  const MicroOp* op = ops;
  const MicroOp* const end = ops + count;
#ifdef LISASIM_COMPUTED_GOTO
  // Label order must match the MKind enumerator order.
  static const void* const kDispatch[kNumMKinds] = {
      &&l_const,      &&l_mov, &&l_read_res, &&l_read_elem, &&l_write_res,
      &&l_write_elem, &&l_bin, &&l_un,       &&l_intr,      &&l_brzero,
      &&l_br,         &&l_flush, &&l_stall,  &&l_halt,
  };
#define LISASIM_DISPATCH() goto* kDispatch[static_cast<int>(op->kind)]
#define LISASIM_NEXT() \
  do {                 \
    if (++op == end)   \
      return;          \
    LISASIM_DISPATCH(); \
  } while (0)
  LISASIM_DISPATCH();
l_const:
  LISASIM_OP_CONST(*op);
  LISASIM_NEXT();
l_mov:
  LISASIM_OP_MOV(*op);
  LISASIM_NEXT();
l_read_res:
  LISASIM_OP_READ_RES(*op);
  LISASIM_NEXT();
l_read_elem:
  LISASIM_OP_READ_ELEM(*op);
  LISASIM_NEXT();
l_write_res:
  LISASIM_OP_WRITE_RES(*op);
  LISASIM_NEXT();
l_write_elem:
  LISASIM_OP_WRITE_ELEM(*op);
  LISASIM_NEXT();
l_bin:
  LISASIM_OP_BIN(*op);
  LISASIM_NEXT();
l_un:
  LISASIM_OP_UN(*op);
  LISASIM_NEXT();
l_intr:
  LISASIM_OP_INTR(*op);
  LISASIM_NEXT();
l_brzero:
  if (t[op->a] == 0) {
    op = ops + op->imm;
    if (op == end) return;
    LISASIM_DISPATCH();
  }
  LISASIM_NEXT();
l_br:
  op = ops + op->imm;
  if (op == end) return;
  LISASIM_DISPATCH();
l_flush:
  control.flush = true;
  LISASIM_NEXT();
l_stall:
  control.stall_cycles += static_cast<int>(t[op->a]);
  LISASIM_NEXT();
l_halt:
  control.halt = true;
  LISASIM_NEXT();
#undef LISASIM_NEXT
#undef LISASIM_DISPATCH
#else
  while (op != end) {
    switch (op->kind) {
      case MKind::kConst: LISASIM_OP_CONST(*op); break;
      case MKind::kMov: LISASIM_OP_MOV(*op); break;
      case MKind::kReadRes: LISASIM_OP_READ_RES(*op); break;
      case MKind::kReadElem: LISASIM_OP_READ_ELEM(*op); break;
      case MKind::kWriteRes: LISASIM_OP_WRITE_RES(*op); break;
      case MKind::kWriteElem: LISASIM_OP_WRITE_ELEM(*op); break;
      case MKind::kBin: LISASIM_OP_BIN(*op); break;
      case MKind::kUn: LISASIM_OP_UN(*op); break;
      case MKind::kIntr: LISASIM_OP_INTR(*op); break;
      case MKind::kBrZero:
        if (t[op->a] == 0) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBr:
        op = ops + op->imm;
        continue;
      case MKind::kFlush: control.flush = true; break;
      case MKind::kStall:
        control.stall_cycles += static_cast<int>(t[op->a]);
        break;
      case MKind::kHalt: control.halt = true; break;
    }
    ++op;
  }
#endif
}

std::uint64_t exec_microops_counted(const MicroOp* ops, std::uint32_t count,
                                    ProcessorState& state,
                                    PipelineControl& control,
                                    std::int64_t* temps) {
  std::int64_t* const t = temps;
  const MicroOp* op = ops;
  const MicroOp* const end = ops + count;
  std::uint64_t dispatched = 0;
  while (op != end) {
    ++dispatched;
    switch (op->kind) {
      case MKind::kConst: LISASIM_OP_CONST(*op); break;
      case MKind::kMov: LISASIM_OP_MOV(*op); break;
      case MKind::kReadRes: LISASIM_OP_READ_RES(*op); break;
      case MKind::kReadElem: LISASIM_OP_READ_ELEM(*op); break;
      case MKind::kWriteRes: LISASIM_OP_WRITE_RES(*op); break;
      case MKind::kWriteElem: LISASIM_OP_WRITE_ELEM(*op); break;
      case MKind::kBin: LISASIM_OP_BIN(*op); break;
      case MKind::kUn: LISASIM_OP_UN(*op); break;
      case MKind::kIntr: LISASIM_OP_INTR(*op); break;
      case MKind::kBrZero:
        if (t[op->a] == 0) {
          op = ops + op->imm;
          continue;
        }
        break;
      case MKind::kBr:
        op = ops + op->imm;
        continue;
      case MKind::kFlush: control.flush = true; break;
      case MKind::kStall:
        control.stall_cycles += static_cast<int>(t[op->a]);
        break;
      case MKind::kHalt: control.halt = true; break;
    }
    ++op;
  }
  return dispatched;
}

#undef LISASIM_OP_CONST
#undef LISASIM_OP_MOV
#undef LISASIM_OP_READ_RES
#undef LISASIM_OP_READ_ELEM
#undef LISASIM_OP_WRITE_RES
#undef LISASIM_OP_WRITE_ELEM
#undef LISASIM_OP_BIN
#undef LISASIM_OP_UN
#undef LISASIM_OP_INTR

void run_microops(const MicroProgram& program, ProcessorState& state,
                  PipelineControl& control,
                  std::vector<std::int64_t>& temps) {
  // No zero-fill: lowering guarantees every temp (including local slots) is
  // written before it is read.
  if (temps.size() < static_cast<std::size_t>(program.num_temps))
    temps.resize(static_cast<std::size_t>(program.num_temps));
  exec_microops(program.ops.data(),
                static_cast<std::uint32_t>(program.ops.size()), state,
                control, temps.data());
}

std::string microops_to_string(const MicroOp* ops, std::size_t count) {
  std::string out;
  for (std::size_t i = 0; i < count; ++i) {
    const MicroOp& op = ops[i];
    out += std::to_string(i) + ": ";
    const auto t = [](std::int32_t x) { return "t" + std::to_string(x); };
    switch (op.kind) {
      case MKind::kConst:
        out += t(op.a) + " = " + std::to_string(op.imm);
        break;
      case MKind::kMov:
        out += t(op.a) + " = " + t(op.b);
        break;
      case MKind::kReadRes:
        out += t(op.a) + " = res" + std::to_string(op.res);
        break;
      case MKind::kReadElem:
        out += t(op.a) + " = res" + std::to_string(op.res) + "[" + t(op.b) +
               "]";
        break;
      case MKind::kWriteRes:
        out += "res" + std::to_string(op.res) + " = " + t(op.a);
        break;
      case MKind::kWriteElem:
        out += "res" + std::to_string(op.res) + "[" + t(op.b) + "] = " +
               t(op.a);
        break;
      case MKind::kBin:
        out += t(op.a) + " = " + t(op.b) + " " + bin_op_spelling(op.bop) +
               " " + t(op.c);
        break;
      case MKind::kUn:
        out += t(op.a) + " = " + un_op_spelling(op.uop) + t(op.b);
        break;
      case MKind::kIntr:
        out += t(op.a) + " = " + intrinsic_name(op.intr) + "(" + t(op.b) +
               ", " + t(op.c) + ")";
        break;
      case MKind::kBrZero:
        out += "brzero " + t(op.a) + " -> " + std::to_string(op.imm);
        break;
      case MKind::kBr:
        out += "br -> " + std::to_string(op.imm);
        break;
      case MKind::kFlush: out += "flush"; break;
      case MKind::kStall: out += "stall " + t(op.a); break;
      case MKind::kHalt: out += "halt"; break;
    }
    out += "\n";
  }
  return out;
}

std::string microops_to_string(const MicroProgram& program) {
  return microops_to_string(program.ops.data(), program.ops.size());
}

}  // namespace lisasim
