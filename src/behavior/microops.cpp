#include "behavior/microops.hpp"

#include <cassert>
#include <string>

#include "behavior/fold.hpp"

namespace lisasim {

namespace {

class Lowerer {
 public:
  MicroProgram lower(const SpecProgram& program) {
    num_temps_ = program.num_locals;  // local slot i lives in temp i
    emit_stmts(program.stmts);
    MicroProgram out;
    out.ops = std::move(ops_);
    out.num_temps = num_temps_;
    return out;
  }

 private:
  std::int32_t new_temp() { return num_temps_++; }

  std::int32_t emit(MicroOp op) {
    ops_.push_back(op);
    return static_cast<std::int32_t>(ops_.size() - 1);
  }

  void emit_stmts(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) emit_stmt(*s);
  }

  void emit_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kLocalDecl: {
        const std::int32_t slot = stmt.local_slot;
        if (stmt.value) {
          const std::int32_t v = emit_expr(*stmt.value);
          emit({.kind = MKind::kMov, .a = slot, .b = v});
        } else {
          emit({.kind = MKind::kConst, .a = slot, .imm = 0});
        }
        break;
      }
      case StmtKind::kAssign: {
        const std::int32_t v = emit_expr(*stmt.value);
        emit_assign(*stmt.lhs, v);
        break;
      }
      case StmtKind::kExpr:
        emit_expr(*stmt.value);
        break;
      case StmtKind::kIf: {
        const std::int32_t cond = emit_expr(*stmt.value);
        const std::int32_t br_else =
            emit({.kind = MKind::kBrZero, .a = cond});
        emit_stmts(stmt.then_body);
        if (stmt.else_body.empty()) {
          patch(br_else, here());
        } else {
          const std::int32_t br_end = emit({.kind = MKind::kBr});
          patch(br_else, here());
          emit_stmts(stmt.else_body);
          patch(br_end, here());
        }
        break;
      }
    }
  }

  std::int32_t here() const { return static_cast<std::int32_t>(ops_.size()); }

  void patch(std::int32_t branch_index, std::int32_t target) {
    ops_[static_cast<std::size_t>(branch_index)].imm = target;
  }

  void emit_assign(const Expr& lhs, std::int32_t value_temp) {
    switch (lhs.kind) {
      case ExprKind::kSym:
        switch (lhs.sym.kind) {
          case SymKind::kLocal:
            emit({.kind = MKind::kMov, .a = lhs.sym.index, .b = value_temp});
            return;
          case SymKind::kResource:
            emit({.kind = MKind::kWriteRes,
                  .a = value_temp,
                  .res = lhs.sym.index});
            return;
          default:
            break;
        }
        break;
      case ExprKind::kIndex: {
        const std::int32_t idx = emit_expr(*lhs.children[0]);
        emit({.kind = MKind::kWriteElem,
              .a = value_temp,
              .b = idx,
              .res = lhs.sym.index});
        return;
      }
      default:
        break;
    }
    throw SimError("micro-op lowering: unsupported assignment target: " +
                   lhs.to_string());
  }

  std::int32_t emit_expr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit: {
        const std::int32_t t = new_temp();
        emit({.kind = MKind::kConst, .a = t, .imm = expr.value});
        return t;
      }
      case ExprKind::kSym:
        switch (expr.sym.kind) {
          case SymKind::kLocal:
            return expr.sym.index;  // locals live in their temp slots
          case SymKind::kResource: {
            const std::int32_t t = new_temp();
            emit({.kind = MKind::kReadRes, .a = t, .res = expr.sym.index});
            return t;
          }
          default:
            throw SimError(
                "micro-op lowering: unspecialized symbol '" + expr.sym.name +
                "' (did specialization run?)");
        }
      case ExprKind::kIndex: {
        const std::int32_t idx = emit_expr(*expr.children[0]);
        const std::int32_t t = new_temp();
        emit({.kind = MKind::kReadElem,
              .a = t,
              .b = idx,
              .res = expr.sym.index});
        return t;
      }
      case ExprKind::kUnary: {
        const std::int32_t v = emit_expr(*expr.children[0]);
        const std::int32_t t = new_temp();
        emit({.kind = MKind::kUn, .uop = expr.un_op, .a = t, .b = v});
        return t;
      }
      case ExprKind::kBinary: {
        if (expr.bin_op == BinOp::kLogicalAnd ||
            expr.bin_op == BinOp::kLogicalOr) {
          // Short-circuit: t = bool(lhs); if (need) t = bool(rhs);
          const bool is_and = expr.bin_op == BinOp::kLogicalAnd;
          const std::int32_t t = new_temp();
          const std::int32_t lhs = emit_expr(*expr.children[0]);
          const std::int32_t zero = new_temp();
          emit({.kind = MKind::kConst, .a = zero, .imm = 0});
          emit({.kind = MKind::kBin, .bop = BinOp::kNe, .a = t, .b = lhs,
                .c = zero});
          std::int32_t skip;
          if (is_and) {
            skip = emit({.kind = MKind::kBrZero, .a = t});
          } else {
            // skip rhs when lhs != 0: brzero over an unconditional branch
            const std::int32_t over = emit({.kind = MKind::kBrZero, .a = t});
            skip = emit({.kind = MKind::kBr});
            patch(over, here());
          }
          const std::int32_t rhs = emit_expr(*expr.children[1]);
          emit({.kind = MKind::kBin, .bop = BinOp::kNe, .a = t, .b = rhs,
                .c = zero});
          patch(skip, here());
          return t;
        }
        const std::int32_t a = emit_expr(*expr.children[0]);
        const std::int32_t b = emit_expr(*expr.children[1]);
        const std::int32_t t = new_temp();
        emit({.kind = MKind::kBin, .bop = expr.bin_op, .a = t, .b = a,
              .c = b});
        return t;
      }
      case ExprKind::kTernary: {
        const std::int32_t t = new_temp();
        const std::int32_t cond = emit_expr(*expr.children[0]);
        const std::int32_t br_else = emit({.kind = MKind::kBrZero, .a = cond});
        const std::int32_t then_v = emit_expr(*expr.children[1]);
        emit({.kind = MKind::kMov, .a = t, .b = then_v});
        const std::int32_t br_end = emit({.kind = MKind::kBr});
        patch(br_else, here());
        const std::int32_t else_v = emit_expr(*expr.children[2]);
        emit({.kind = MKind::kMov, .a = t, .b = else_v});
        patch(br_end, here());
        return t;
      }
      case ExprKind::kCall:
        switch (expr.intrinsic) {
          case Intrinsic::kFlush: {
            emit({.kind = MKind::kFlush});
            return result_zero();
          }
          case Intrinsic::kStall: {
            const std::int32_t v = emit_expr(*expr.children[0]);
            emit({.kind = MKind::kStall, .a = v});
            return result_zero();
          }
          case Intrinsic::kHalt: {
            emit({.kind = MKind::kHalt});
            return result_zero();
          }
          case Intrinsic::kNone:
            throw SimError("micro-op lowering: unresolved intrinsic '" +
                           expr.callee + "'");
          default: {
            const std::int32_t a = emit_expr(*expr.children[0]);
            const std::int32_t b =
                expr.children.size() > 1 ? emit_expr(*expr.children[1]) : 0;
            const std::int32_t t = new_temp();
            emit({.kind = MKind::kIntr,
                  .intr = expr.intrinsic,
                  .a = t,
                  .b = a,
                  .c = b});
            return t;
          }
        }
    }
    throw SimError("micro-op lowering: unsupported expression");
  }

  std::int32_t result_zero() {
    const std::int32_t t = new_temp();
    emit({.kind = MKind::kConst, .a = t, .imm = 0});
    return t;
  }

  std::vector<MicroOp> ops_;
  std::int32_t num_temps_ = 0;
};

}  // namespace

MicroProgram lower_to_microops(const SpecProgram& program) {
  return Lowerer().lower(program);
}

void run_microops(const MicroProgram& program, ProcessorState& state,
                  PipelineControl& control,
                  std::vector<std::int64_t>& temps) {
  // No zero-fill: lowering guarantees every temp (including local slots) is
  // written before it is read.
  if (temps.size() < static_cast<std::size_t>(program.num_temps))
    temps.resize(static_cast<std::size_t>(program.num_temps));
  std::int64_t* t = temps.data();
  const MicroOp* ops = program.ops.data();
  const std::size_t count = program.ops.size();
  std::size_t i = 0;
  while (i < count) {
    const MicroOp& op = ops[i];
    switch (op.kind) {
      case MKind::kConst:
        t[op.a] = op.imm;
        break;
      case MKind::kMov:
        t[op.a] = t[op.b];
        break;
      case MKind::kReadRes:
        t[op.a] = state.read(op.res);
        break;
      case MKind::kReadElem:
        t[op.a] = state.read(op.res, static_cast<std::uint64_t>(t[op.b]));
        break;
      case MKind::kWriteRes:
        state.write(op.res, 0, t[op.a]);
        break;
      case MKind::kWriteElem:
        state.write(op.res, static_cast<std::uint64_t>(t[op.b]), t[op.a]);
        break;
      case MKind::kBin: {
        const auto v = fold_binary(op.bop, t[op.b], t[op.c]);
        if (!v)
          throw SimError(op.bop == BinOp::kDiv ? "division by zero"
                                               : "remainder by zero");
        t[op.a] = *v;
        break;
      }
      case MKind::kUn:
        t[op.a] = fold_unary(op.uop, t[op.b]);
        break;
      case MKind::kIntr: {
        const std::int64_t args[2] = {t[op.b], t[op.c]};
        const auto v = fold_intrinsic(
            op.intr, std::span<const std::int64_t>(
                         args, static_cast<std::size_t>(
                                   intrinsic_arity(op.intr))));
        t[op.a] = v.value_or(0);
        break;
      }
      case MKind::kBrZero:
        if (t[op.a] == 0) {
          i = static_cast<std::size_t>(op.imm);
          continue;
        }
        break;
      case MKind::kBr:
        i = static_cast<std::size_t>(op.imm);
        continue;
      case MKind::kFlush:
        control.flush = true;
        break;
      case MKind::kStall:
        control.stall_cycles += static_cast<int>(t[op.a]);
        break;
      case MKind::kHalt:
        control.halt = true;
        break;
    }
    ++i;
  }
}

std::string microops_to_string(const MicroProgram& program) {
  std::string out;
  for (std::size_t i = 0; i < program.ops.size(); ++i) {
    const MicroOp& op = program.ops[i];
    out += std::to_string(i) + ": ";
    const auto t = [](std::int32_t x) { return "t" + std::to_string(x); };
    switch (op.kind) {
      case MKind::kConst:
        out += t(op.a) + " = " + std::to_string(op.imm);
        break;
      case MKind::kMov:
        out += t(op.a) + " = " + t(op.b);
        break;
      case MKind::kReadRes:
        out += t(op.a) + " = res" + std::to_string(op.res);
        break;
      case MKind::kReadElem:
        out += t(op.a) + " = res" + std::to_string(op.res) + "[" + t(op.b) +
               "]";
        break;
      case MKind::kWriteRes:
        out += "res" + std::to_string(op.res) + " = " + t(op.a);
        break;
      case MKind::kWriteElem:
        out += "res" + std::to_string(op.res) + "[" + t(op.b) + "] = " +
               t(op.a);
        break;
      case MKind::kBin:
        out += t(op.a) + " = " + t(op.b) + " " + bin_op_spelling(op.bop) +
               " " + t(op.c);
        break;
      case MKind::kUn:
        out += t(op.a) + " = " + un_op_spelling(op.uop) + t(op.b);
        break;
      case MKind::kIntr:
        out += t(op.a) + " = " + intrinsic_name(op.intr) + "(" + t(op.b) +
               ", " + t(op.c) + ")";
        break;
      case MKind::kBrZero:
        out += "brzero " + t(op.a) + " -> " + std::to_string(op.imm);
        break;
      case MKind::kBr:
        out += "br -> " + std::to_string(op.imm);
        break;
      case MKind::kFlush: out += "flush"; break;
      case MKind::kStall: out += "stall " + t(op.a); break;
      case MKind::kHalt: out += "halt"; break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace lisasim
