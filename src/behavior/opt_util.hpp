// Small shared utilities for the micro-op optimizer passes (peephole,
// regcache, fuse): branch-target collection and marked-op removal. These
// are compile-time-only helpers; nothing here runs on the execution path.
#pragma once

#include <vector>

#include "behavior/microops.hpp"

namespace lisasim {

/// Collect branch targets of `program` into `is_target` (sized ops+1; the
/// one-past-the-end slot is the fall-off exit). Returns false — and leaves
/// `is_target` unspecified — when the program has a backward branch, which
/// the lowerer never emits; passes skip such programs rather than reason
/// about loops.
inline bool mo_collect_targets(const MicroProgram& program,
                               std::vector<char>& is_target) {
  const std::size_t n = program.ops.size();
  is_target.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const MicroOp& op = program.ops[i];
    if (!mo_is_branch(op.kind)) continue;
    if (op.imm <= static_cast<std::int64_t>(i)) return false;
    is_target[static_cast<std::size_t>(op.imm)] = 1;
  }
  return true;
}

/// Drop every op with dead[i] != 0, remapping branch targets onto the
/// compacted indices. Temps and the constant pool are left untouched (the
/// peephole's full compaction renumbers those); a branch to a dead op
/// lands on the next live one, which is exactly the semantics of skipping
/// a removed no-op.
inline void mo_remove_marked(MicroProgram& program,
                             const std::vector<char>& dead) {
  const std::size_t n = program.ops.size();
  std::vector<std::int32_t> new_index(n + 1, 0);
  std::int32_t live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    new_index[i] = live;
    if (!dead[i]) ++live;
  }
  new_index[n] = live;
  if (static_cast<std::size_t>(live) == n) return;

  std::vector<MicroOp> out;
  out.reserve(static_cast<std::size_t>(live));
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    MicroOp op = program.ops[i];
    if (mo_is_branch(op.kind))
      op.imm = new_index[static_cast<std::size_t>(op.imm)];
    out.push_back(op);
  }
  program.ops = std::move(out);
}

}  // namespace lisasim
