#include "behavior/peephole.hpp"

#include <optional>

#include "behavior/fold.hpp"

namespace lisasim {

namespace {

bool is_branch(MKind k) { return k == MKind::kBrZero || k == MKind::kBr; }

/// Ops whose only effect is writing their destination temp. kBin is pure
/// except division/remainder (they throw on a zero divisor) and kReadElem
/// can throw on an out-of-range index — both must execute even if their
/// result is dead, or error behavior would diverge from the tree walk.
bool is_pure_def(const MicroOp& op) {
  switch (op.kind) {
    case MKind::kConst:
    case MKind::kMov:
    case MKind::kReadRes:
    case MKind::kUn:
    case MKind::kIntr:
      return true;
    case MKind::kBin:
      return op.bop != BinOp::kDiv && op.bop != BinOp::kRem;
    default:
      return false;
  }
}

/// Invoke `fn` on every temp `op` reads (destinations excluded). The second
/// operand of an arity-1 intrinsic is padding, not a read.
template <typename Fn>
void for_each_read(const MicroOp& op, Fn&& fn) {
  switch (op.kind) {
    case MKind::kMov:
    case MKind::kReadElem:
    case MKind::kUn:
      fn(op.b);
      break;
    case MKind::kWriteRes:
    case MKind::kBrZero:
    case MKind::kStall:
      fn(op.a);
      break;
    case MKind::kWriteElem:
      fn(op.a);
      fn(op.b);
      break;
    case MKind::kBin:
      fn(op.b);
      fn(op.c);
      break;
    case MKind::kIntr:
      fn(op.b);
      if (intrinsic_arity(op.intr) > 1) fn(op.c);
      break;
    case MKind::kConst:
    case MKind::kReadRes:
    case MKind::kBr:
    case MKind::kFlush:
    case MKind::kHalt:
      break;
  }
}

/// Destination temp of `op`, or -1 when it has none.
std::int32_t def_of(const MicroOp& op) {
  switch (op.kind) {
    case MKind::kConst:
    case MKind::kMov:
    case MKind::kReadRes:
    case MKind::kReadElem:
    case MKind::kBin:
    case MKind::kUn:
    case MKind::kIntr:
      return op.a;
    default:
      return -1;
  }
}

class Peephole {
 public:
  explicit Peephole(MicroProgram& program) : program_(program) {}

  void run() {
    const std::size_t n = program_.ops.size();
    if (n == 0) return;
    is_target_.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const MicroOp& op = program_.ops[i];
      if (!is_branch(op.kind)) continue;
      // Backward branches could loop; the lowerer never emits them, so
      // rather than reason about fixpoints just leave such programs alone.
      if (op.imm <= static_cast<std::int64_t>(i)) return;
      is_target_[static_cast<std::size_t>(op.imm)] = 1;
    }
    dead_.assign(n, 0);
    propagate();
    remove_dead();
    compact();
    validate_microops(program_);
  }

 private:
  // -- pass 1: const/copy propagation ------------------------------------

  void lattice_reset() {
    const_val_.assign(const_val_.size(), std::nullopt);
    copy_of_.assign(copy_of_.size(), -1);
  }

  /// Temp `d` was redefined: forget its value and every copy of it.
  void kill(std::int32_t d) {
    const_val_[static_cast<std::size_t>(d)].reset();
    copy_of_[static_cast<std::size_t>(d)] = -1;
    for (auto& c : copy_of_)
      if (c == d) c = -1;
  }

  std::int32_t resolve(std::int32_t t) const {
    const std::int32_t src = copy_of_[static_cast<std::size_t>(t)];
    return src >= 0 ? src : t;
  }

  std::optional<std::int64_t> known(std::int32_t t) const {
    return const_val_[static_cast<std::size_t>(t)];
  }

  void set_const(MicroOp& op, std::int64_t value) {
    op = MicroOp{.kind = MKind::kConst, .a = op.a, .imm = value};
    kill(op.a);
    const_val_[static_cast<std::size_t>(op.a)] = value;
  }

  void propagate() {
    const std::size_t n = program_.ops.size();
    const_val_.assign(static_cast<std::size_t>(program_.num_temps),
                      std::nullopt);
    copy_of_.assign(static_cast<std::size_t>(program_.num_temps), -1);
    bool reachable = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_target_[i]) {
        lattice_reset();
        reachable = true;
      }
      if (!reachable) {  // between an unconditional branch and its target
        dead_[i] = 1;
        continue;
      }
      MicroOp& op = program_.ops[i];
      switch (op.kind) {
        case MKind::kConst:
          kill(op.a);
          const_val_[static_cast<std::size_t>(op.a)] = op.imm;
          break;
        case MKind::kMov: {
          op.b = resolve(op.b);
          if (const auto v = known(op.b)) {
            set_const(op, *v);
          } else if (op.b == op.a) {
            dead_[i] = 1;  // t[a] = t[a]; value unchanged, lattice intact
          } else {
            kill(op.a);
            copy_of_[static_cast<std::size_t>(op.a)] = op.b;
          }
          break;
        }
        case MKind::kReadRes:
          kill(op.a);
          break;
        case MKind::kReadElem:
          op.b = resolve(op.b);
          kill(op.a);
          break;
        case MKind::kWriteRes:
          op.a = resolve(op.a);
          break;
        case MKind::kWriteElem:
          op.a = resolve(op.a);
          op.b = resolve(op.b);
          break;
        case MKind::kBin: {
          op.b = resolve(op.b);
          op.c = resolve(op.c);
          const auto b = known(op.b);
          const auto c = known(op.c);
          if (b && c) {
            // nullopt == constant /0 or %0: must still throw at run time.
            if (const auto v = fold_binary(op.bop, *b, *c)) {
              set_const(op, *v);
              break;
            }
          }
          kill(op.a);
          break;
        }
        case MKind::kUn: {
          op.b = resolve(op.b);
          if (const auto b = known(op.b)) {
            set_const(op, fold_unary(op.uop, *b));
          } else {
            kill(op.a);
          }
          break;
        }
        case MKind::kIntr: {
          op.b = resolve(op.b);
          const bool binary = intrinsic_arity(op.intr) > 1;
          if (binary) op.c = resolve(op.c);
          const auto b = known(op.b);
          const auto c = binary ? known(op.c) : std::optional<std::int64_t>{0};
          if (b && c) {
            const std::int64_t args[2] = {*b, *c};
            if (const auto v = fold_intrinsic(
                    op.intr,
                    std::span<const std::int64_t>(
                        args,
                        static_cast<std::size_t>(intrinsic_arity(op.intr))))) {
              set_const(op, *v);
              break;
            }
          }
          kill(op.a);
          break;
        }
        case MKind::kBrZero: {
          op.a = resolve(op.a);
          if (op.imm == static_cast<std::int64_t>(i) + 1) {
            dead_[i] = 1;  // branches to fall-through either way
            break;
          }
          if (const auto v = known(op.a)) {
            if (*v == 0) {
              op = MicroOp{.kind = MKind::kBr, .imm = op.imm};  // always taken
              reachable = false;
            } else {
              dead_[i] = 1;  // never taken
            }
          }
          break;
        }
        case MKind::kBr:
          if (op.imm == static_cast<std::int64_t>(i) + 1) {
            dead_[i] = 1;
          } else {
            reachable = false;
          }
          break;
        case MKind::kStall:
          op.a = resolve(op.a);
          break;
        case MKind::kFlush:
        case MKind::kHalt:
          break;
      }
    }
  }

  // -- pass 2: conservative dead-op removal ------------------------------

  /// With forward-only branches an op can only be executed before any op at
  /// a higher index, so "no live op at a higher index reads the dest" is a
  /// sound (over-approximate) liveness test. Writes do NOT kill liveness —
  /// a read past a join may see either definition.
  void remove_dead() {
    const std::size_t n = program_.ops.size();
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (dead_[i]) continue;
        const MicroOp& op = program_.ops[i];
        const std::int32_t d = def_of(op);
        if (d < 0 || !is_pure_def(op)) continue;
        bool read_later = false;
        for (std::size_t j = i + 1; j < n && !read_later; ++j) {
          if (dead_[j]) continue;
          for_each_read(program_.ops[j], [&](std::int32_t r) {
            if (r == d) read_later = true;
          });
        }
        if (!read_later) {
          dead_[i] = 1;
          changed = true;
        }
      }
    }
  }

  // -- pass 3: compaction ------------------------------------------------

  void compact() {
    const std::size_t n = program_.ops.size();
    // Prefix map: new_index[i] == number of live ops before i, which is
    // also where a branch to i (live or dead) lands after compaction.
    std::vector<std::int32_t> new_index(n + 1, 0);
    std::int32_t live = 0;
    for (std::size_t i = 0; i < n; ++i) {
      new_index[i] = live;
      if (!dead_[i]) ++live;
    }
    new_index[n] = live;

    // Dense temp renumbering over live ops only.
    std::vector<std::int32_t> temp_map(
        static_cast<std::size_t>(program_.num_temps), -1);
    std::int32_t next_temp = 0;
    const auto remap = [&](std::int32_t t) {
      auto& m = temp_map[static_cast<std::size_t>(t)];
      if (m < 0) m = next_temp++;
      return m;
    };

    std::vector<MicroOp> out;
    out.reserve(static_cast<std::size_t>(live));
    for (std::size_t i = 0; i < n; ++i) {
      if (dead_[i]) continue;
      MicroOp op = program_.ops[i];
      switch (op.kind) {
        case MKind::kConst:
        case MKind::kReadRes:
        case MKind::kWriteRes:
        case MKind::kBrZero:
        case MKind::kStall:
          op.a = remap(op.a);
          break;
        case MKind::kMov:
        case MKind::kReadElem:
        case MKind::kWriteElem:
        case MKind::kUn:
          op.a = remap(op.a);
          op.b = remap(op.b);
          break;
        case MKind::kBin:
          op.a = remap(op.a);
          op.b = remap(op.b);
          op.c = remap(op.c);
          break;
        case MKind::kIntr:
          op.a = remap(op.a);
          op.b = remap(op.b);
          // Arity-1 padding operand: renumbering may drop its old temp, so
          // pin it to slot 0 (the op above guarantees at least one temp).
          op.c = intrinsic_arity(op.intr) > 1 ? remap(op.c) : 0;
          break;
        case MKind::kBr:
        case MKind::kFlush:
        case MKind::kHalt:
          break;
      }
      if (is_branch(op.kind))
        op.imm = new_index[static_cast<std::size_t>(op.imm)];
      out.push_back(op);
    }
    program_.ops = std::move(out);
    program_.num_temps = next_temp;
  }

  MicroProgram& program_;
  std::vector<char> is_target_;
  std::vector<char> dead_;
  std::vector<std::optional<std::int64_t>> const_val_;
  std::vector<std::int32_t> copy_of_;
};

}  // namespace

void optimize_microops(MicroProgram& program) {
  validate_microops(program);
  Peephole(program).run();
}

}  // namespace lisasim
