#include "behavior/peephole.hpp"

#include <optional>

#include "behavior/fold.hpp"
#include "behavior/fuse.hpp"
#include "behavior/opt_util.hpp"
#include "behavior/regcache.hpp"

namespace lisasim {

namespace {

/// v on the given side leaves the other operand unchanged (x+0, x*1,
/// x&-1, x<<0, x/1, ...). Folding to a plain mov is sound even when the
/// other operand is unknown.
bool bin_identity(BinOp bop, std::int64_t v, bool on_right) {
  switch (bop) {
    case BinOp::kAdd:
    case BinOp::kOr:
    case BinOp::kXor:
      return v == 0;
    case BinOp::kSub:
    case BinOp::kShl:
    case BinOp::kShr:
      return on_right && v == 0;
    case BinOp::kMul:
      return v == 1;
    case BinOp::kDiv:
      return on_right && v == 1;
    case BinOp::kAnd:
      return v == -1;
    default:
      return false;
  }
}

/// v on the given side forces the result to zero regardless of the other
/// operand (x*0, x&0, 0<<x, x%1). Division is excluded on the left: 0/x
/// must still throw when x is zero.
bool bin_annihilator(BinOp bop, std::int64_t v, bool on_right) {
  switch (bop) {
    case BinOp::kMul:
    case BinOp::kAnd:
      return v == 0;
    case BinOp::kShl:
    case BinOp::kShr:
      return !on_right && v == 0;
    case BinOp::kRem:
      return on_right && v == 1;
    default:
      return false;
  }
}

class Peephole {
 public:
  explicit Peephole(MicroProgram& program) : program_(program) {}

  void run() {
    const std::size_t n = program_.ops.size();
    if (n == 0) return;
    if (!mo_collect_targets(program_, is_target_)) return;
    dead_.assign(n, 0);
    propagate();
    remove_dead();
    downgrade_write_outs();
    compact();
    validate_microops(program_);
  }

 private:
  // -- pass 1: const/copy propagation ------------------------------------

  void lattice_reset() {
    const_val_.assign(const_val_.size(), std::nullopt);
    copy_of_.assign(copy_of_.size(), -1);
  }

  /// Temp `d` was redefined: forget its value and every copy of it.
  void kill(std::int32_t d) {
    const_val_[static_cast<std::size_t>(d)].reset();
    copy_of_[static_cast<std::size_t>(d)] = -1;
    for (auto& c : copy_of_)
      if (c == d) c = -1;
  }

  std::int16_t resolve(std::int16_t t) const {
    const std::int32_t src = copy_of_[static_cast<std::size_t>(t)];
    return src >= 0 ? static_cast<std::int16_t>(src) : t;
  }

  std::optional<std::int64_t> known(std::int32_t t) const {
    return const_val_[static_cast<std::size_t>(t)];
  }

  /// Rewrite the op at `i` (defining through a) into `t[a] = t[src]`,
  /// updating the copy lattice exactly like a source-level kMov.
  void set_mov(std::size_t i, MicroOp& op, std::int16_t src) {
    const std::int16_t dst = op.a;
    if (src == dst) {
      dead_[i] = 1;  // value unchanged, lattice intact
      return;
    }
    op = mo_mov(dst, src);
    kill(dst);
    copy_of_[static_cast<std::size_t>(dst)] = src;
  }

  void set_const(MicroOp& op, std::int64_t value) {
    const std::int16_t dst = op.a;  // every foldable op defines through a
    op = mo_imm_fits(value) ? mo_const(dst, value)
                            : mo_pool(dst, program_.add_pool(value));
    kill(dst);
    const_val_[static_cast<std::size_t>(dst)] = value;
  }

  void propagate() {
    const std::size_t n = program_.ops.size();
    const_val_.assign(static_cast<std::size_t>(program_.num_temps),
                      std::nullopt);
    copy_of_.assign(static_cast<std::size_t>(program_.num_temps), -1);
    bool reachable = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_target_[i]) {
        lattice_reset();
        reachable = true;
      }
      if (!reachable) {  // between an unconditional branch and its target
        dead_[i] = 1;
        continue;
      }
      MicroOp& op = program_.ops[i];
      switch (op.kind) {
        case MKind::kConst:
          kill(op.a);
          const_val_[static_cast<std::size_t>(op.a)] = op.imm;
          break;
        case MKind::kConstPool:
          kill(op.a);
          const_val_[static_cast<std::size_t>(op.a)] =
              program_.pool[static_cast<std::size_t>(op.imm)];
          break;
        case MKind::kMov: {
          op.b = resolve(op.b);
          if (const auto v = known(op.b)) {
            set_const(op, *v);
          } else if (op.b == op.a) {
            dead_[i] = 1;  // t[a] = t[a]; value unchanged, lattice intact
          } else {
            kill(op.a);
            copy_of_[static_cast<std::size_t>(op.a)] = op.b;
          }
          break;
        }
        case MKind::kReadRes:
        case MKind::kReadScal:
        case MKind::kReadElemC:
          kill(op.a);
          break;
        case MKind::kReadElem:
          op.b = resolve(op.b);
          kill(op.a);
          break;
        case MKind::kReadElemOff: {
          op.b = resolve(op.b);
          if (const auto b = known(op.b)) {
            // Constant base folds the offset add away entirely.
            const std::int64_t index = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(*b) +
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(op.imm)));
            if (mo_imm_fits(index))
              op = mo_read_elem_c(op.a, op.res,
                                  static_cast<std::int32_t>(index));
          }
          kill(op.a);
          break;
        }
        case MKind::kWriteRes:
          op.a = resolve(op.a);
          break;
        case MKind::kWriteScal:
          op.b = resolve(op.b);
          break;
        case MKind::kWriteOut:
          op.b = resolve(op.b);
          kill(op.a);  // canonicalized value; not the raw source
          break;
        case MKind::kWriteElem:
          op.a = resolve(op.a);
          op.b = resolve(op.b);
          break;
        case MKind::kWriteElemC:
          op.a = resolve(op.a);
          break;
        case MKind::kWriteElemOff: {
          op.a = resolve(op.a);
          op.b = resolve(op.b);
          if (const auto b = known(op.b)) {
            const std::int64_t index = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(*b) +
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(op.imm)));
            if (mo_imm_fits(index))
              op = mo_write_elem_c(op.res,
                                   static_cast<std::int32_t>(index), op.a);
          }
          break;
        }
        case MKind::kBin: {
          op.b = resolve(op.b);
          op.c = resolve(op.c);
          const auto b = known(op.b);
          const auto c = known(op.c);
          if (b && c) {
            // nullopt == constant /0 or %0: must still throw at run time.
            if (const auto v = fold_binary(op.bop(), *b, *c)) {
              set_const(op, *v);
              break;
            }
          } else if (c && bin_identity(op.bop(), *c, true)) {
            set_mov(i, op, op.b);
            break;
          } else if (c && bin_annihilator(op.bop(), *c, true)) {
            set_const(op, 0);
            break;
          } else if (b && bin_identity(op.bop(), *b, false)) {
            set_mov(i, op, op.c);
            break;
          } else if (b && bin_annihilator(op.bop(), *b, false)) {
            set_const(op, 0);
            break;
          }
          kill(op.a);
          break;
        }
        case MKind::kBinImm: {
          op.b = resolve(op.b);
          if (const auto b = known(op.b)) {
            // Validation bars a constant zero divisor in kBinImm, so the
            // fold cannot come back empty.
            if (const auto v = fold_binary(op.bop(), *b, op.imm)) {
              set_const(op, *v);
              break;
            }
          }
          if (bin_identity(op.bop(), op.imm, true)) {
            set_mov(i, op, op.b);
            break;
          }
          if (bin_annihilator(op.bop(), op.imm, true)) {
            set_const(op, 0);
            break;
          }
          kill(op.a);
          break;
        }
        case MKind::kBinImmR: {
          op.b = resolve(op.b);
          if (const auto b = known(op.b)) {
            if (const auto v = fold_binary(op.bop(), op.imm, *b)) {
              set_const(op, *v);
              break;
            }
          }
          if (bin_identity(op.bop(), op.imm, false)) {
            set_mov(i, op, op.b);
            break;
          }
          if (bin_annihilator(op.bop(), op.imm, false)) {
            set_const(op, 0);
            break;
          }
          kill(op.a);
          break;
        }
        case MKind::kWriteBin:
          op.b = resolve(op.b);
          op.c = resolve(op.c);
          break;
        case MKind::kUn: {
          op.b = resolve(op.b);
          if (const auto b = known(op.b)) {
            set_const(op, fold_unary(op.uop(), *b));
          } else {
            kill(op.a);
          }
          break;
        }
        case MKind::kIntr: {
          op.b = resolve(op.b);
          const bool binary = intrinsic_arity(op.intr()) > 1;
          if (binary) op.c = resolve(op.c);
          const auto b = known(op.b);
          const auto c = binary ? known(op.c) : std::optional<std::int64_t>{0};
          if (b && c) {
            const std::int64_t args[2] = {*b, *c};
            if (const auto v = fold_intrinsic(
                    op.intr(),
                    std::span<const std::int64_t>(
                        args, static_cast<std::size_t>(
                                  intrinsic_arity(op.intr()))))) {
              set_const(op, *v);
              break;
            }
          }
          kill(op.a);
          break;
        }
        case MKind::kBrZero: {
          op.a = resolve(op.a);
          if (op.imm == static_cast<std::int64_t>(i) + 1) {
            dead_[i] = 1;  // branches to fall-through either way
            break;
          }
          if (const auto v = known(op.a)) {
            if (*v == 0) {
              op = mo_br(op.imm);  // always taken
              reachable = false;
            } else {
              dead_[i] = 1;  // never taken
            }
          }
          break;
        }
        case MKind::kIntrImm: {
          op.b = resolve(op.b);
          if (const auto b = known(op.b)) {
            const std::int64_t args[2] = {*b,
                                          static_cast<std::int64_t>(op.imm)};
            if (const auto v = fold_intrinsic(
                    op.intr(), std::span<const std::int64_t>(args, 2))) {
              set_const(op, *v);
              break;
            }
          }
          kill(op.a);
          break;
        }
        case MKind::kReadElemScal:
          kill(op.a);
          break;
        case MKind::kBrScalZero:
          // Scalar-resource condition: not foldable from the temp lattice,
          // but a branch to its own fall-through is still dead.
          if (op.imm == static_cast<std::int64_t>(i) + 1) dead_[i] = 1;
          break;
        case MKind::kBrBin: {
          op.b = resolve(op.b);
          op.c = resolve(op.c);
          if (op.imm == static_cast<std::int64_t>(i) + 1) {
            dead_[i] = 1;
            break;
          }
          const auto b = known(op.b);
          const auto c = known(op.c);
          if (b && c) {
            // Validation bars /,% in fused branches, so the fold is total.
            if (fold_binary(op.bop(), *b, *c).value_or(1) == 0) {
              op = mo_br(op.imm);
              reachable = false;
            } else {
              dead_[i] = 1;
            }
          }
          break;
        }
        case MKind::kBrBinImm: {
          op.b = resolve(op.b);
          if (op.imm == static_cast<std::int64_t>(i) + 1) {
            dead_[i] = 1;
            break;
          }
          if (const auto b = known(op.b)) {
            if (fold_binary(op.bop(), *b,
                            static_cast<std::int64_t>(op.c))
                    .value_or(1) == 0) {
              op = mo_br(op.imm);
              reachable = false;
            } else {
              dead_[i] = 1;
            }
          }
          break;
        }
        case MKind::kBr:
          if (op.imm == static_cast<std::int64_t>(i) + 1) {
            dead_[i] = 1;
          } else {
            reachable = false;
          }
          break;
        case MKind::kStall:
          op.a = resolve(op.a);
          break;
        case MKind::kWriteScalImm:
        case MKind::kMovScal:      // resource-to-resource; no temps involved
        case MKind::kMovScalElem:  // resource-to-resource; no temps involved
        case MKind::kMovElemScal:  // resource-to-resource; no temps involved
        case MKind::kFlush:
        case MKind::kHalt:
          break;
      }
    }
  }

  // -- pass 2: conservative dead-op removal ------------------------------

  /// With forward-only branches an op can only be executed before any op at
  /// a higher index, so "no live op at a higher index reads the dest" is a
  /// sound (over-approximate) liveness test. Writes do NOT kill liveness —
  /// a read past a join may see either definition.
  void remove_dead() {
    const std::size_t n = program_.ops.size();
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (dead_[i]) continue;
        const MicroOp& op = program_.ops[i];
        const std::int32_t d = mo_def_of(op);
        if (d < 0 || !mo_is_pure_def(op)) continue;
        if (!read_later(i, d)) {
          dead_[i] = 1;
          changed = true;
        }
      }
    }
  }

  bool read_later(std::size_t i, std::int32_t d) const {
    const std::size_t n = program_.ops.size();
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dead_[j]) continue;
      bool read = false;
      mo_for_each_read(program_.ops[j], [&](std::int16_t r) {
        if (r == d) read = true;
      });
      if (read) return true;
    }
    return false;
  }

  /// kWriteOut defines the canonicalized stored value for store-to-load
  /// forwarding (behavior/regcache.cpp); once propagation and DCE settle,
  /// an out-temp nothing reads makes the op a plain store again.
  void downgrade_write_outs() {
    const std::size_t n = program_.ops.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (dead_[i]) continue;
      MicroOp& op = program_.ops[i];
      if (op.kind != MKind::kWriteOut) continue;
      if (!read_later(i, op.a)) {
        op.kind = MKind::kWriteScal;
        op.a = 0;  // no longer a def; keep the encoding deterministic
      }
    }
  }

  // -- pass 3: compaction ------------------------------------------------

  void compact() {
    const std::size_t n = program_.ops.size();
    // Prefix map: new_index[i] == number of live ops before i, which is
    // also where a branch to i (live or dead) lands after compaction.
    std::vector<std::int32_t> new_index(n + 1, 0);
    std::int32_t live = 0;
    for (std::size_t i = 0; i < n; ++i) {
      new_index[i] = live;
      if (!dead_[i]) ++live;
    }
    new_index[n] = live;

    // Dense temp renumbering over live ops only.
    std::vector<std::int32_t> temp_map(
        static_cast<std::size_t>(program_.num_temps), -1);
    std::int32_t next_temp = 0;
    const auto remap = [&](std::int16_t t) {
      auto& m = temp_map[static_cast<std::size_t>(t)];
      if (m < 0) m = next_temp++;
      return static_cast<std::int16_t>(m);
    };

    // The pool is rebuilt from surviving kConstPool ops in program order,
    // so folded-away wide constants do not linger in the arena.
    std::vector<std::int64_t> new_pool;
    std::vector<std::int32_t> pool_map(program_.pool.size(), -1);

    std::vector<MicroOp> out;
    out.reserve(static_cast<std::size_t>(live));
    for (std::size_t i = 0; i < n; ++i) {
      if (dead_[i]) continue;
      MicroOp op = program_.ops[i];
      // Arity-1 intrinsic padding operand: renumbering may drop its old
      // temp, so alias it to the real operand instead of pinning a slot.
      if (op.kind == MKind::kIntr && intrinsic_arity(op.intr()) <= 1)
        op.c = op.b;
      mo_for_each_temp_field(op, [&](std::int16_t& t) { t = remap(t); });
      if (mo_is_branch(op.kind))
        op.imm = new_index[static_cast<std::size_t>(op.imm)];
      if (op.kind == MKind::kConstPool) {
        auto& m = pool_map[static_cast<std::size_t>(op.imm)];
        if (m < 0) {
          m = static_cast<std::int32_t>(new_pool.size());
          new_pool.push_back(program_.pool[static_cast<std::size_t>(op.imm)]);
        }
        op.imm = m;
      }
      out.push_back(op);
    }
    program_.ops = std::move(out);
    program_.pool = std::move(new_pool);
    program_.num_temps = next_temp;
  }

  MicroProgram& program_;
  std::vector<char> is_target_;
  std::vector<char> dead_;
  std::vector<std::optional<std::int64_t>> const_val_;
  std::vector<std::int32_t> copy_of_;
};

}  // namespace

void optimize_microops(MicroProgram& program, const Model* model) {
  validate_microops(program);
  Peephole(program).run();
  if (model != nullptr) {
    // Register caching needs the model to prove scalar-ness; the second
    // peephole sweep folds the movs it plants into their use sites.
    if (regcache_microops(program, *model)) Peephole(program).run();
  }
  // Fusion exposes one more round of simplification: const operands fused
  // into identity kBinImm forms (x+0, x*1) fold to movs that copy-
  // propagate away only on a sweep after the fuser ran.
  if (fuse_microops(program)) Peephole(program).run();
  validate_microops(program);
}

}  // namespace lisasim
