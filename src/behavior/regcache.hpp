// Hot-resource register caching: promote scalar resource accesses inside a
// micro-program (one packet span, or one spliced trace superblock) onto
// the temp bank.
//
//   * every scalar read/write drops its bounds/hook checks (kReadScal /
//     kWriteOut — the model proves the resource is scalar, and
//     ProcessorState::map_hook refuses hooks on scalars),
//   * a read of a scalar whose value is already in a temp — loaded by an
//     earlier read or produced by an earlier write in the same span —
//     becomes a register move, which the follow-up peephole sweep then
//     forwards into the use sites and deletes. Store-to-load forwarding
//     goes through kWriteOut's canonicalized result, never the raw source
//     temp, so narrow-typed resources read back exactly what state holds.
//
// The pass is write-through: every write still reaches ProcessorState
// immediately, so nothing needs flushing at side exits, guard stamps,
// watchdog fires, checkpoints, or SimError escapes — state is consistent
// at every op boundary by construction, and observer/guard semantics are
// untouched. The cache lattice resets at branch targets (joins) exactly
// like the peephole's const lattice.
#pragma once

#include "behavior/microops.hpp"
#include "model/model.hpp"

namespace lisasim {

/// Promote scalar resource accesses of `program` in place; `model` is
/// consulted only for Resource::is_array(). Returns true when anything
/// changed (callers re-run the peephole to clean up the planted movs).
/// Programs with backward branches are left untouched.
bool regcache_microops(MicroProgram& program, const Model& model);

}  // namespace lisasim
