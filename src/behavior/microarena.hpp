// MicroArena: one contiguous, packed buffer of MicroOps shared by every
// micro-program of a simulation table (or of a decode-cached program).
// Owners keep (offset, len, num_temps) spans instead of per-entry
// std::vector<MicroOp> heap blocks, so
//
//  * the execution core walks a single flat allocation (no pointer chase
//    from table row to scattered vectors on the hot path),
//  * spans stay valid across arena growth (offsets, not pointers — the
//    decode-cached level appends lazily while the simulation runs),
//  * sharded parallel table builds merge per-shard arenas with one splice
//    per shard plus an offset rebase, reproducing the sequential layout
//    byte for byte (the SimTable::signature() merge invariant).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "behavior/microops.hpp"

namespace lisasim {

/// A micro-program's location inside a MicroArena. A default-constructed
/// span is empty (len == 0) and safe to execute as a no-op.
struct MicroSpan {
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
  std::int32_t num_temps = 0;

  bool empty() const { return len == 0; }
};

class MicroArena {
 public:
  /// Append a lowered program; returns its span. The program's ops are
  /// copied, so the MicroProgram may be discarded afterwards. The program's
  /// constant pool is concatenated onto the arena pool and the copied
  /// kConstPool ops are rebased to the arena-wide indices, so every span
  /// of the arena reads the same flat pool at execution time.
  MicroSpan append(const MicroProgram& program) {
    MicroSpan span;
    span.offset = static_cast<std::uint32_t>(ops_.size());
    span.len = static_cast<std::uint32_t>(program.ops.size());
    span.num_temps = program.num_temps;
    ops_.insert(ops_.end(), program.ops.begin(), program.ops.end());
    if (!program.pool.empty()) {
      const auto pool_base = static_cast<std::int32_t>(pool_.size());
      pool_.insert(pool_.end(), program.pool.begin(), program.pool.end());
      rebase_pool_refs(span.offset, pool_base);
    }
    if (program.num_temps > max_temps_) max_temps_ = program.num_temps;
    return span;
  }

  /// Concatenate a whole shard arena (deterministic parallel-build merge).
  /// Returns the offset the shard's spans must be rebased by; appending
  /// shards in shard order reproduces the sequential build's layout — the
  /// pool concatenates in the same order, with the spliced ops' pool
  /// indices rebased just like their span offsets.
  std::uint32_t splice(const MicroArena& shard) {
    const auto base = static_cast<std::uint32_t>(ops_.size());
    ops_.insert(ops_.end(), shard.ops_.begin(), shard.ops_.end());
    if (!shard.pool_.empty()) {
      const auto pool_base = static_cast<std::int32_t>(pool_.size());
      pool_.insert(pool_.end(), shard.pool_.begin(), shard.pool_.end());
      rebase_pool_refs(base, pool_base);
    }
    if (shard.max_temps_ > max_temps_) max_temps_ = shard.max_temps_;
    return base;
  }

  std::span<const MicroOp> view(const MicroSpan& span) const {
    return {ops_.data() + span.offset, span.len};
  }

  const MicroOp* data() const { return ops_.data(); }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Arena-wide constant pool (kConstPool operands of every span).
  const std::int64_t* pool_data() const { return pool_.data(); }
  std::size_t pool_size() const { return pool_.size(); }

  /// Largest num_temps of any appended program: size the per-backend temp
  /// scratch once, then reuse it across packets without per-call checks.
  std::int32_t max_temps() const { return max_temps_; }

  void reserve(std::size_t ops) { ops_.reserve(ops); }

  void clear() {
    ops_.clear();
    pool_.clear();
    max_temps_ = 0;
  }

 private:
  void rebase_pool_refs(std::uint32_t first_op, std::int32_t pool_base) {
    for (std::size_t i = first_op; i < ops_.size(); ++i)
      if (ops_[i].kind == MKind::kConstPool) ops_[i].imm += pool_base;
  }

  std::vector<MicroOp> ops_;
  std::vector<std::int64_t> pool_;
  std::int32_t max_temps_ = 0;
};

}  // namespace lisasim
