#include "behavior/eval.hpp"

#include <cassert>

#include "behavior/fold.hpp"
#include "support/bits.hpp"

namespace lisasim {

void Evaluator::run_op(const DecodedNode& node, ActivationSink* sink) {
  const std::size_t base =
      push_locals(static_cast<std::size_t>(node.op->num_locals));
  Frame frame{&node, base};
  for_each_active_item(node, frame, [&](const OpItem& item) {
    switch (item.kind) {
      case OpItem::Kind::kBehavior:
        exec_stmts(item.stmts, frame);
        break;
      case OpItem::Kind::kActivation:
        for (std::int32_t slot : item.activation_slots) {
          const DecodedNode& child = child_node(node, slot);
          if (sink)
            sink->activate(child);
          else
            throw SimError("activation from operation '" + node.op->name +
                           "' in a context without an activation sink");
        }
        break;
      default:
        break;  // kExpression is pulled by operand access, not executed
    }
  });
  pop_locals(base);
}

void Evaluator::exec_program(std::span<const StmtPtr> stmts,
                             const DecodedNode& node) {
  const std::size_t base =
      push_locals(static_cast<std::size_t>(node.op->num_locals));
  Frame frame{&node, base};
  exec_stmts(stmts, frame);
  pop_locals(base);
}

void Evaluator::exec_flat(std::span<const StmtPtr> stmts, int num_locals) {
  const std::size_t base = push_locals(static_cast<std::size_t>(num_locals));
  Frame frame{nullptr, base};
  exec_stmts(stmts, frame);
  pop_locals(base);
}

std::int64_t Evaluator::eval(const Expr& expr, const DecodedNode& node) {
  Frame frame{&node, {}};
  return eval_expr(expr, frame);
}

std::int64_t Evaluator::eval_op_expression(const DecodedNode& node) {
  Frame frame{&node, {}};
  const Expr* found = nullptr;
  for_each_active_item(node, frame, [&](const OpItem& item) {
    if (!found && item.kind == OpItem::Kind::kExpression)
      found = item.expr.get();
  });
  if (!found)
    throw SimError("operation '" + node.op->name +
                   "' is used as an operand but has no active EXPRESSION");
  return eval_expr(*found, frame);
}

void Evaluator::exec_stmts(std::span<const StmtPtr> stmts, Frame& frame) {
  for (const auto& stmt : stmts) exec_stmt(*stmt, frame);
}

void Evaluator::exec_stmt(const Stmt& stmt, Frame& frame) {
  switch (stmt.kind) {
    case StmtKind::kLocalDecl: {
      // Locals are 64-bit scratch; width semantics live in resources and in
      // explicit sext/zext/sat calls (same rule at every simulation level).
      local(frame, stmt.local_slot) =
          stmt.value ? eval_expr(*stmt.value, frame) : 0;
      break;
    }
    case StmtKind::kAssign:
      assign(*stmt.lhs, eval_expr(*stmt.value, frame), frame);
      break;
    case StmtKind::kExpr:
      eval_expr(*stmt.value, frame);
      break;
    case StmtKind::kIf:
      if (eval_expr(*stmt.value, frame) != 0)
        exec_stmts(stmt.then_body, frame);
      else
        exec_stmts(stmt.else_body, frame);
      break;
  }
}

OperationId Evaluator::op_identity(const Expr& expr, const Frame& frame) {
  if (expr.kind != ExprKind::kSym) return -1;
  switch (expr.sym.kind) {
    case SymKind::kEnumOp:
      return expr.sym.index;
    case SymKind::kChild:
      return child_node(*frame.node, expr.sym.index).op->id;
    case SymKind::kUpward: {
      const UpwardHit hit = resolve_upward(expr.sym.name_id, *frame.node);
      if (hit.child_slot >= 0)
        return child_node(*hit.node, hit.child_slot).op->id;
      return -1;
    }
    default:
      return -1;
  }
}

bool Evaluator::equal_identity_or_value(const Expr& lhs, const Expr& rhs,
                                        Frame& frame) {
  // Identity semantics apply only when one side explicitly names an
  // operation (kEnumOp); a group compared against a number compares the
  // chosen operand's value.
  const auto is_enum_op = [](const Expr& e) {
    return e.kind == ExprKind::kSym && e.sym.kind == SymKind::kEnumOp;
  };
  if (is_enum_op(lhs) || is_enum_op(rhs)) {
    const OperationId a = op_identity(lhs, frame);
    const OperationId b = op_identity(rhs, frame);
    return a >= 0 && a == b;
  }
  return eval_expr(lhs, frame) == eval_expr(rhs, frame);
}

std::int64_t Evaluator::eval_expr(const Expr& expr, Frame& frame) {
  switch (expr.kind) {
    case ExprKind::kIntLit:
      return expr.value;

    case ExprKind::kSym:
      switch (expr.sym.kind) {
        case SymKind::kLocal:
          return local(frame, expr.sym.index);
        case SymKind::kResource:
          return state_->read(expr.sym.index);
        case SymKind::kField:
          return frame.node->fields[static_cast<std::size_t>(expr.sym.index)];
        case SymKind::kChild:
          return eval_op_expression(child_node(*frame.node, expr.sym.index));
        case SymKind::kUpward: {
          const UpwardHit hit =
              resolve_upward(expr.sym.name_id, *frame.node);
          if (hit.label_slot >= 0)
            return hit.node->fields[static_cast<std::size_t>(hit.label_slot)];
          if (hit.child_slot >= 0)
            return eval_op_expression(child_node(*hit.node, hit.child_slot));
          throw SimError("unresolved REFERENCE '" + expr.sym.name +
                         "' in operation '" + frame.node->op->name + "'");
        }
        case SymKind::kEnumOp:
          throw SimError("operation name '" + expr.sym.name +
                         "' used as a value outside an identity comparison");
        case SymKind::kUnresolved:
          throw SimError("unresolved symbol '" + expr.sym.name + "'");
      }
      return 0;

    case ExprKind::kIndex: {
      const std::int64_t index = eval_expr(*expr.children[0], frame);
      return state_->read(expr.sym.index,
                          static_cast<std::uint64_t>(index));
    }

    case ExprKind::kUnary: {
      const std::int64_t v = eval_expr(*expr.children[0], frame);
      switch (expr.un_op) {
        case UnOp::kNeg:
          return static_cast<std::int64_t>(
              -static_cast<std::uint64_t>(v));
        case UnOp::kLogicalNot: return v == 0 ? 1 : 0;
        case UnOp::kBitNot: return ~v;
      }
      return 0;
    }

    case ExprKind::kBinary: {
      // Identity comparisons (`mode == short`) — paper §5.1.
      if (expr.bin_op == BinOp::kEq || expr.bin_op == BinOp::kNe) {
        const bool lhs_is_op =
            expr.children[0]->kind == ExprKind::kSym &&
            expr.children[0]->sym.kind == SymKind::kEnumOp;
        const bool rhs_is_op =
            expr.children[1]->kind == ExprKind::kSym &&
            expr.children[1]->sym.kind == SymKind::kEnumOp;
        if (lhs_is_op || rhs_is_op) {
          const bool eq =
              equal_identity_or_value(*expr.children[0], *expr.children[1],
                                      frame);
          return (expr.bin_op == BinOp::kEq) == eq ? 1 : 0;
        }
      }
      if (expr.bin_op == BinOp::kLogicalAnd) {
        return eval_expr(*expr.children[0], frame) != 0 &&
                       eval_expr(*expr.children[1], frame) != 0
                   ? 1
                   : 0;
      }
      if (expr.bin_op == BinOp::kLogicalOr) {
        return eval_expr(*expr.children[0], frame) != 0 ||
                       eval_expr(*expr.children[1], frame) != 0
                   ? 1
                   : 0;
      }
      const std::int64_t a = eval_expr(*expr.children[0], frame);
      const std::int64_t b = eval_expr(*expr.children[1], frame);
      const auto result = fold_binary(expr.bin_op, a, b);
      if (!result)
        throw SimError(expr.bin_op == BinOp::kDiv ? "division by zero"
                                                  : "remainder by zero");
      return *result;
    }

    case ExprKind::kTernary:
      return eval_expr(*expr.children[0], frame) != 0
                 ? eval_expr(*expr.children[1], frame)
                 : eval_expr(*expr.children[2], frame);

    case ExprKind::kCall:
      return eval_call(expr, frame);
  }
  return 0;
}

std::int64_t Evaluator::eval_call(const Expr& expr, Frame& frame) {
  switch (expr.intrinsic) {
    case Intrinsic::kSext:
    case Intrinsic::kZext:
    case Intrinsic::kSat:
    case Intrinsic::kAbs:
    case Intrinsic::kMin:
    case Intrinsic::kMax: {
      std::int64_t args[2] = {0, 0};
      for (std::size_t i = 0; i < expr.children.size() && i < 2; ++i)
        args[i] = eval_expr(*expr.children[i], frame);
      const auto result = fold_intrinsic(
          expr.intrinsic,
          std::span<const std::int64_t>(args, expr.children.size()));
      return result.value_or(0);
    }
    case Intrinsic::kFlush:
      control_->flush = true;
      return 0;
    case Intrinsic::kStall:
      control_->stall_cycles +=
          static_cast<int>(eval_expr(*expr.children[0], frame));
      return 0;
    case Intrinsic::kHalt:
      control_->halt = true;
      return 0;
    case Intrinsic::kNone:
      throw SimError("call to unresolved intrinsic '" + expr.callee + "'");
  }
  return 0;
}

void Evaluator::assign(const Expr& lhs, std::int64_t value, Frame& frame) {
  switch (lhs.kind) {
    case ExprKind::kSym:
      switch (lhs.sym.kind) {
        case SymKind::kLocal:
          local(frame, lhs.sym.index) = value;
          return;
        case SymKind::kResource:
          state_->write(lhs.sym.index, 0, value);
          return;
        case SymKind::kChild: {
          const DecodedNode& child = child_node(*frame.node, lhs.sym.index);
          assign_to_op_expression(child, value);
          return;
        }
        case SymKind::kUpward: {
          const UpwardHit hit = resolve_upward(lhs.sym.name_id, *frame.node);
          if (hit.child_slot >= 0) {
            assign_to_op_expression(child_node(*hit.node, hit.child_slot),
                                    value);
            return;
          }
          throw SimError("cannot assign through REFERENCE '" + lhs.sym.name +
                         "'");
        }
        default:
          throw SimError("invalid assignment target");
      }
    case ExprKind::kIndex: {
      const std::int64_t index = eval_expr(*lhs.children[0], frame);
      state_->write(lhs.sym.index, static_cast<std::uint64_t>(index), value);
      return;
    }
    default:
      throw SimError("invalid assignment target");
  }
}

void Evaluator::assign_to_op_expression(const DecodedNode& node,
                                        std::int64_t value) {
  Frame frame{&node, {}};
  const Expr* found = nullptr;
  for_each_active_item(node, frame, [&](const OpItem& item) {
    if (!found && item.kind == OpItem::Kind::kExpression)
      found = item.expr.get();
  });
  if (!found)
    throw SimError("operation '" + node.op->name +
                   "' is used as a destination but has no active EXPRESSION");
  assign(*found, value, frame);
}

Evaluator::UpwardHit Evaluator::resolve_upward(StringId name_id,
                                               const DecodedNode& from) const {
  for (const DecodedNode* a = from.parent; a; a = a->parent) {
    if (const int slot = a->op->label_slot(name_id); slot >= 0)
      return {a, slot, -1};
    if (const int slot = a->op->child_slot(name_id); slot >= 0)
      return {a, -1, slot};
  }
  return {};
}

const DecodedNode& Evaluator::child_node(const DecodedNode& node,
                                         int slot) const {
  const auto& child = node.children[static_cast<std::size_t>(slot)];
  if (!child)
    throw SimError("group '" +
                   node.op->children[static_cast<std::size_t>(slot)].name +
                   "' of operation '" + node.op->name +
                   "' has no decoded choice");
  return *child;
}

template <typename Fn>
void Evaluator::for_each_active_item(const DecodedNode& node, Frame& frame,
                                     Fn&& fn) {
  // Explicit stack of item lists avoids recursion for nested conditionals.
  const auto walk = [&](const auto& self,
                        const std::vector<OpItemPtr>& items) -> void {
    for (const auto& item : items) {
      switch (item->kind) {
        case OpItem::Kind::kIf:
          if (eval_expr(*item->cond, frame) != 0)
            self(self, item->then_items);
          else
            self(self, item->else_items);
          break;
        case OpItem::Kind::kSwitch: {
          const OpItem::Case* chosen = nullptr;
          const OpItem::Case* fallback = nullptr;
          for (const auto& c : item->cases) {
            if (c.is_default) {
              fallback = &c;
              continue;
            }
            if (equal_identity_or_value(*item->cond, *c.match, frame)) {
              chosen = &c;
              break;
            }
          }
          if (!chosen) chosen = fallback;
          if (chosen) self(self, chosen->items);
          break;
        }
        default:
          fn(*item);
      }
    }
  };
  walk(walk, node.op->items);
}

}  // namespace lisasim
