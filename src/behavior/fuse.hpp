// Superinstruction fusion: collapse the dominant micro-op chains left
// after constant folding and DCE into single fused dispatches, halving the
// dispatch count of typical packet bodies. Runs at simulation-compile time
// from optimize_microops (and therefore again across trace seams when the
// trace runtime re-optimizes a spliced superblock).
//
// Fusion catalog (all conservative — a pattern only fires when the
// intermediate temp has exactly one def and one use and no branch target
// falls between producer and consumer):
//
//   kConst t; kBin a,b,t        -> kBinImm a,b,#imm   (kBinImmR when the
//                                  constant is the left operand of a non-
//                                  commutative operator; /0 %0 never fused)
//   kBinImm t,b,#k (kAdd);
//     kReadElem a,res,t         -> kReadElemOff a,res[b+#k]   (same for
//                                  kWriteElem; a bare kConst index fuses
//                                  to kReadElemC/kWriteElemC)
//   kBin t,b,c; kWriteScal res,t-> kWriteBin res, b <op> c
//   kBin t,b,c; kBrZero t,L     -> kBrBin (b <op> c) -> L    (no /, %)
//   kBinImm t,b,#k; kBrZero t,L -> kBrBinImm (b <op> #k) -> L (#k must
//                                  fit int16)
//   kConst t; kWriteScal r,t    -> kWriteScalImm r,#imm
//   kReadScal t,r1;
//     kWriteScal r2,t           -> kMovScal r2,r1  (only when nothing
//                                  between the pair writes r1 — the fused
//                                  op re-reads r1 at the consumer's slot)
//   kConst t; kIntr a,b,t       -> kIntrImm a,b,#imm  (arity-2 only; the
//                                  immediate replaces the second operand)
//   kReadScal t,r; kBrZero t,L  -> kBrScalZero r -> L  (re-reads r, so no
//                                  write to r may fall between the pair)
//   kReadElemC t,arr[#k];
//     kWriteScal r,t            -> kMovScalElem r,arr[#k]  (the element
//                                  read can throw, so the pair must be
//                                  adjacent)
//   kReadScal t,r;
//     kWriteElemC arr[#k],t     -> kMovElemScal arr[#k],r  (re-reads r)
//   kReadScal t,r; kReadElem
//     a,arr[t]                  -> kReadElemScal a,arr[scal r] (re-reads r)
//
// Consumed producers whose temp has no remaining uses are removed; branch
// targets are remapped. Temps are not renumbered here — the peephole's
// compaction already ran, and scratch sizing tolerates gaps.
#pragma once

#include "behavior/microops.hpp"

namespace lisasim {

/// Fuse superinstructions in `program`, in place. Programs with backward
/// branches are left untouched. Semantics (including SimError behavior)
/// are preserved exactly. Returns true when anything fused, so the caller
/// can run one more peephole sweep over the simplified program.
bool fuse_microops(MicroProgram& program);

}  // namespace lisasim
