// Shared arithmetic semantics for behavior evaluation and constant folding.
// Both the run-time evaluator and the compile-time specializer use these
// helpers, so partial evaluation can never diverge from interpretation —
// the invariant behind the paper's "no loss in accuracy" claim.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "behavior/ir.hpp"
#include "support/bits.hpp"

namespace lisasim {

/// Apply a binary operator on the 64-bit evaluation domain. Returns nullopt
/// for division/remainder by zero (the evaluator turns that into a run-time
/// error; the specializer refuses to fold it). kLogicalAnd/kLogicalOr are
/// evaluated non-short-circuit here — callers that need short-circuiting
/// handle them before calling.
inline std::optional<std::int64_t> fold_binary(BinOp op, std::int64_t a,
                                               std::int64_t b) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case BinOp::kAdd: return static_cast<std::int64_t>(ua + ub);
    case BinOp::kSub: return static_cast<std::int64_t>(ua - ub);
    case BinOp::kMul: return static_cast<std::int64_t>(ua * ub);
    case BinOp::kDiv:
      if (b == 0) return std::nullopt;
      if (b == -1) return static_cast<std::int64_t>(-ua);
      return a / b;
    case BinOp::kRem:
      if (b == 0) return std::nullopt;
      if (b == -1) return 0;
      return a % b;
    case BinOp::kAnd: return a & b;
    case BinOp::kOr: return a | b;
    case BinOp::kXor: return a ^ b;
    case BinOp::kShl: return static_cast<std::int64_t>(ua << (ub & 63));
    case BinOp::kShr: return a >> (ub & 63);  // arithmetic shift
    case BinOp::kEq: return a == b ? 1 : 0;
    case BinOp::kNe: return a != b ? 1 : 0;
    case BinOp::kLt: return a < b ? 1 : 0;
    case BinOp::kLe: return a <= b ? 1 : 0;
    case BinOp::kGt: return a > b ? 1 : 0;
    case BinOp::kGe: return a >= b ? 1 : 0;
    case BinOp::kLogicalAnd: return (a != 0 && b != 0) ? 1 : 0;
    case BinOp::kLogicalOr: return (a != 0 || b != 0) ? 1 : 0;
  }
  return std::nullopt;
}

inline std::int64_t fold_unary(UnOp op, std::int64_t v) {
  switch (op) {
    case UnOp::kNeg:
      return static_cast<std::int64_t>(-static_cast<std::uint64_t>(v));
    case UnOp::kLogicalNot: return v == 0 ? 1 : 0;
    case UnOp::kBitNot: return ~v;
  }
  return 0;
}

inline std::int64_t fold_saturate(std::int64_t v, unsigned bits) {
  if (bits == 0 || bits >= 64) return v;
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -hi - 1;
  return v > hi ? hi : (v < lo ? lo : v);
}

/// Fold a pure intrinsic with constant arguments. Control intrinsics
/// (flush/stall/halt) are side-effecting and return nullopt.
inline std::optional<std::int64_t> fold_intrinsic(
    Intrinsic intr, std::span<const std::int64_t> args) {
  switch (intr) {
    case Intrinsic::kSext:
      return sign_extend(static_cast<std::uint64_t>(args[0]),
                         static_cast<unsigned>(args[1]));
    case Intrinsic::kZext:
      return static_cast<std::int64_t>(
          truncate(args[0], static_cast<unsigned>(args[1])));
    case Intrinsic::kSat:
      return fold_saturate(args[0], static_cast<unsigned>(args[1]));
    case Intrinsic::kAbs:
      return args[0] < 0 ? fold_unary(UnOp::kNeg, args[0]) : args[0];
    case Intrinsic::kMin: return args[0] < args[1] ? args[0] : args[1];
    case Intrinsic::kMax: return args[0] > args[1] ? args[0] : args[1];
    case Intrinsic::kFlush:
    case Intrinsic::kStall:
    case Intrinsic::kHalt:
    case Intrinsic::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace lisasim
