// Peephole optimization over lowered micro-programs, run once at
// simulation-compile time (lowering), never on the execution hot path.
// optimize_microops chains the passes of the whole optimizer:
//
//  1. const/copy propagation — fold kBin/kUn/kIntr (and their fused forms)
//     with constant operands, forward mov sources into use sites, resolve
//     constant-condition branches; the lattice resets at every branch
//     target so joins stay sound,
//  2. conservative dead-op removal — pure ops whose destination temp is
//     never read at a higher index are dropped (iterated to fixpoint;
//     division/remainder and element reads are kept, they can throw), and
//     kWriteOut stores whose forwarded value is never read downgrade to
//     plain kWriteScal,
//  3. compaction — dead ops removed, branch targets remapped, temps
//     renumbered densely, the constant pool rebuilt from surviving
//     kConstPool ops so no orphaned entries remain,
//  4. with a Model: hot-resource register caching (behavior/regcache.cpp)
//     promotes scalar resource accesses onto the temp bank, followed by a
//     second peephole sweep to clean up the introduced movs,
//  5. superinstruction fusion (behavior/fuse.cpp) collapses the dominant
//     two-op chains into single fused dispatches.
//
// The result is validated; semantics (including SimError behavior) are
// bit-identical to the unoptimized program.
#pragma once

#include "behavior/microops.hpp"

namespace lisasim {

/// Optimize `program` in place. Programs with backward branches (never
/// produced by the lowerer) are left untouched. With a `model`, scalar
/// resource accesses are additionally promoted to hook-free fast paths and
/// cached in temps (the model is what proves a resource is scalar); without
/// one, only the model-independent passes run.
void optimize_microops(MicroProgram& program, const Model* model = nullptr);

}  // namespace lisasim
