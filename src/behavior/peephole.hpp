// Peephole optimization over lowered micro-programs, run once at
// simulation-compile time (lowering), never on the execution hot path.
// Three passes over the straight-line, forward-branching programs the
// lowerer emits:
//
//  1. const/copy propagation — fold kBin/kUn/kIntr with constant operands,
//     forward mov sources into use sites, resolve constant-condition
//     branches; the lattice resets at every branch target so joins stay
//     sound,
//  2. conservative dead-op removal — pure ops whose destination temp is
//     never read at a higher index are dropped (iterated to fixpoint;
//     division/remainder and element reads are kept, they can throw),
//  3. compaction — dead ops removed, branch targets remapped, temps
//     renumbered densely so the scratch buffer shrinks with the program.
//
// The result is validated; semantics (including SimError behavior) are
// bit-identical to the unoptimized program.
#pragma once

#include "behavior/microops.hpp"

namespace lisasim {

/// Optimize `program` in place. Programs with backward branches (never
/// produced by the lowerer) are left untouched.
void optimize_microops(MicroProgram& program);

}  // namespace lisasim
