// Hand-written lexer for the machine description language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lisa/token.hpp"
#include "support/diag.hpp"

namespace lisasim {

class Lexer {
 public:
  /// `file` is used for diagnostics only; `source` must outlive the lexer.
  Lexer(std::string_view source, std::string file, DiagnosticEngine& diags);

  /// Lex the whole input. The result always ends with a kEof token.
  std::vector<Token> lex_all();

 private:
  Token next();
  char peek(std::size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_whitespace_and_comments();
  SourceLoc here() const;

  Token lex_number();
  Token lex_bits();
  Token lex_ident();
  Token lex_string();

  std::string_view src_;
  std::string file_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  unsigned line_ = 1;
  unsigned column_ = 1;
};

}  // namespace lisasim
