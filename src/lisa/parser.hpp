// Recursive-descent parser: token stream -> ast::ModelAst.
#pragma once

#include <string>
#include <vector>

#include "lisa/ast.hpp"
#include "lisa/token.hpp"
#include "support/diag.hpp"

namespace lisasim {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parse a complete machine description. Diagnostics are reported to the
  /// engine passed at construction; the returned AST is best-effort when
  /// errors occurred (callers must check diags.has_errors()).
  ast::ModelAst parse_model();

 private:
  const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  bool at(Tok kind) const { return peek().kind == kind; }
  bool at_name() const;
  std::string expect_name(const char* context);
  bool match(Tok kind);
  bool expect(Tok kind, const char* context);
  void error_here(const std::string& message);
  void sync_to(Tok kind);

  void parse_resource_section(ast::ModelAst& model);
  void parse_fetch_section(ast::ModelAst& model);
  ast::OperationAst parse_operation();
  void parse_op_items(ast::OpBody& body, ast::OperationAst* op);
  void parse_declare_section(ast::OperationAst& op);
  ast::CodingSec parse_coding_section();
  ast::SyntaxSec parse_syntax_section();
  ast::BehaviorSec parse_behavior_section();
  ast::ActivationSec parse_activation_section();
  ast::ExpressionSec parse_expression_section();
  std::unique_ptr<ast::CondSections> parse_cond_sections();
  std::unique_ptr<ast::SwitchSections> parse_switch_sections();

  // Behavior language.
  StmtPtr parse_stmt();
  std::vector<StmtPtr> parse_stmt_block();
  ExprPtr parse_expr();
  ExprPtr parse_ternary();
  ExprPtr parse_binary(int min_prec);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticEngine& diags_;
};

/// Convenience: lex + parse a model source text.
ast::ModelAst parse_model_source(std::string_view source, std::string file,
                                 DiagnosticEngine& diags);

}  // namespace lisasim
