// Abstract syntax tree of a machine description, as produced by the parser
// and consumed by semantic analysis (src/model/sema). Behavior code and
// coding-time conditions are represented with the shared behavior IR.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "behavior/ir.hpp"
#include "support/diag.hpp"
#include "support/value.hpp"

namespace lisasim::ast {

/// FETCH block: instruction word width and optional VLIW packet chaining.
/// `PACKET n PARALLEL_BIT b` means: up to n consecutive words form one
/// execute packet, chained while bit b of a word is set (the C6x p-bit).
struct FetchSpec {
  unsigned word_bits = 32;
  unsigned packet_max = 1;  // 1 = single-issue
  int parallel_bit = -1;    // <0 = no chaining bit
  std::string memory;       // MEMORY <name>: the memory fetch reads from
  SourceLoc loc;
};

struct PipelineDecl {
  std::string name;
  std::vector<std::string> stages;
  SourceLoc loc;
};

enum class ResourceKind : std::uint8_t {
  kScalar,
  kRegisterFile,
  kMemory,
  kProgramCounter,
};

struct ResourceDecl {
  ResourceKind kind = ResourceKind::kScalar;
  ValueType type;
  std::string name;
  std::uint64_t size = 1;  // element count for register files / memories
  SourceLoc loc;
};

struct DeclareItem {
  enum class Kind : std::uint8_t { kGroup, kInstance, kLabel, kReference };
  Kind kind = Kind::kLabel;
  std::string name;
  // kGroup: the alternatives; kInstance: a single target operation name.
  std::vector<std::string> targets;
  SourceLoc loc;
};

struct CodingElem {
  enum class Kind : std::uint8_t { kBits, kField, kRef };
  Kind kind = Kind::kBits;
  std::uint64_t bits = 0;  // kBits value
  unsigned width = 0;      // kBits / kField width
  std::string name;        // kField (LABEL name) / kRef (GROUP or INSTANCE)
  SourceLoc loc;
};

struct SyntaxElem {
  enum class Kind : std::uint8_t { kLiteral, kRef };
  Kind kind = Kind::kLiteral;
  std::string text;  // literal text, or referenced name for kRef
  SourceLoc loc;
};

struct CodingSec {
  std::vector<CodingElem> elems;
  SourceLoc loc;
};
struct SyntaxSec {
  std::vector<SyntaxElem> elems;
  SourceLoc loc;
};
struct BehaviorSec {
  std::vector<StmtPtr> stmts;
  SourceLoc loc;
};
struct ActivationSec {
  std::vector<std::string> targets;
  SourceLoc loc;
};
struct ExpressionSec {
  ExprPtr expr;
  SourceLoc loc;
};

struct CondSections;
struct SwitchSections;

using SectionItem =
    std::variant<CodingSec, SyntaxSec, BehaviorSec, ActivationSec,
                 ExpressionSec, std::unique_ptr<CondSections>,
                 std::unique_ptr<SwitchSections>>;

struct OpBody {
  std::vector<SectionItem> items;
};

/// Coding-time IF (cond) { sections } ELSE { sections } — paper §5.1.
struct CondSections {
  ExprPtr cond;
  OpBody then_body;
  OpBody else_body;
  SourceLoc loc;
};

/// Coding-time SWITCH (subject) { CASE m: { sections } ... DEFAULT: ... }.
struct SwitchSections {
  struct Case {
    bool is_default = false;
    ExprPtr match;  // operation name or integer; null for default
    OpBody body;
    SourceLoc loc;
  };
  ExprPtr subject;
  std::vector<Case> cases;
  SourceLoc loc;
};

struct OperationAst {
  std::string name;
  bool has_stage = false;
  std::string pipe;   // IN pipe.stage
  std::string stage;
  std::vector<DeclareItem> declares;
  OpBody body;
  SourceLoc loc;
};

struct ModelAst {
  std::string name = "machine";
  FetchSpec fetch;
  std::vector<PipelineDecl> pipelines;
  std::vector<ResourceDecl> resources;
  std::vector<OperationAst> operations;
};

}  // namespace lisasim::ast
