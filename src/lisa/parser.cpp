#include "lisa/parser.hpp"

#include <cassert>
#include <utility>

#include "lisa/lexer.hpp"

namespace lisasim {

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  assert(!tokens_.empty() && tokens_.back().kind == Tok::kEof);
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok kind) {
  if (!at(kind)) return false;
  advance();
  return true;
}

bool Parser::expect(Tok kind, const char* context) {
  if (match(kind)) return true;
  diags_.error(peek().loc, std::string("expected ") + tok_name(kind) +
                               " in " + context + ", found " +
                               tok_name(peek().kind));
  return false;
}

void Parser::error_here(const std::string& message) {
  diags_.error(peek().loc, message);
}

void Parser::sync_to(Tok kind) {
  // Skip forward to just past `kind`, balancing braces so that recovery
  // from an error inside a nested block does not desynchronize the outer
  // structure.
  int depth = 0;
  while (!at(Tok::kEof)) {
    const Tok k = peek().kind;
    if (depth == 0 && k == kind) {
      advance();
      return;
    }
    if (k == Tok::kLBrace) ++depth;
    if (k == Tok::kRBrace) {
      if (depth == 0) return;  // let the caller consume the closing brace
      --depth;
    }
    advance();
  }
}

bool Parser::at_name() const {
  // Pipeline stage names may collide with keywords (a stage called "IF" is
  // idiomatic); any keyword token still carries its spelling.
  return at(Tok::kIdent) || !peek().text.empty();
}

std::string Parser::expect_name(const char* context) {
  if (at_name()) return advance().text;
  diags_.error(peek().loc, std::string("expected name in ") + context);
  return {};
}

ast::ModelAst Parser::parse_model() {
  ast::ModelAst model;
  while (!at(Tok::kEof)) {
    switch (peek().kind) {
      case Tok::kKwModel: {
        advance();
        if (at(Tok::kIdent)) model.name = advance().text;
        expect(Tok::kSemi, "MODEL declaration");
        break;
      }
      case Tok::kKwResource:
        parse_resource_section(model);
        break;
      case Tok::kKwFetch:
        parse_fetch_section(model);
        break;
      case Tok::kKwOperation:
        model.operations.push_back(parse_operation());
        break;
      default:
        error_here(std::string("expected RESOURCE, FETCH or OPERATION, found ") +
                   tok_name(peek().kind));
        advance();
    }
  }
  return model;
}

void Parser::parse_resource_section(ast::ModelAst& model) {
  advance();  // RESOURCE
  if (!expect(Tok::kLBrace, "RESOURCE section")) return;
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    const SourceLoc loc = peek().loc;
    switch (peek().kind) {
      case Tok::kKwPipeline: {
        advance();
        ast::PipelineDecl pipe;
        pipe.loc = loc;
        if (at(Tok::kIdent)) pipe.name = advance().text;
        expect(Tok::kAssign, "PIPELINE declaration");
        expect(Tok::kLBrace, "PIPELINE declaration");
        while (at_name() && !at(Tok::kRBrace)) {
          pipe.stages.push_back(advance().text);
          if (!match(Tok::kSemi) && !match(Tok::kComma)) break;
        }
        expect(Tok::kRBrace, "PIPELINE declaration");
        expect(Tok::kSemi, "PIPELINE declaration");
        model.pipelines.push_back(std::move(pipe));
        break;
      }
      case Tok::kKwRegister:
      case Tok::kKwMemory:
      case Tok::kKwProgramCounter: {
        const Tok intro = advance().kind;
        ast::ResourceDecl decl;
        decl.loc = loc;
        decl.kind = intro == Tok::kKwMemory ? ast::ResourceKind::kMemory
                    : intro == Tok::kKwProgramCounter
                        ? ast::ResourceKind::kProgramCounter
                        : ast::ResourceKind::kScalar;  // refined below
        if (at(Tok::kIdent)) {
          auto type = ValueType::parse(peek().text);
          if (type) {
            decl.type = *type;
            advance();
          } else {
            error_here("expected element type (e.g. int32)");
          }
        }
        if (at(Tok::kIdent)) decl.name = advance().text;
        if (match(Tok::kLBracket)) {
          if (at(Tok::kInt))
            decl.size = static_cast<std::uint64_t>(advance().value);
          else
            error_here("expected array size");
          expect(Tok::kRBracket, "resource declaration");
          if (intro == Tok::kKwRegister)
            decl.kind = ast::ResourceKind::kRegisterFile;
        } else if (intro == Tok::kKwMemory) {
          error_here("MEMORY requires a size, e.g. MEMORY int32 mem[1024];");
        }
        expect(Tok::kSemi, "resource declaration");
        model.resources.push_back(std::move(decl));
        break;
      }
      case Tok::kIdent: {
        // Plain scalar resource: `int32 acc;`
        ast::ResourceDecl decl;
        decl.loc = loc;
        decl.kind = ast::ResourceKind::kScalar;
        auto type = ValueType::parse(peek().text);
        if (!type) {
          error_here("unknown resource declaration");
          sync_to(Tok::kSemi);
          break;
        }
        decl.type = *type;
        advance();
        if (at(Tok::kIdent)) decl.name = advance().text;
        expect(Tok::kSemi, "resource declaration");
        model.resources.push_back(std::move(decl));
        break;
      }
      default:
        error_here("unexpected token in RESOURCE section");
        advance();
    }
  }
  expect(Tok::kRBrace, "RESOURCE section");
}

void Parser::parse_fetch_section(ast::ModelAst& model) {
  model.fetch.loc = peek().loc;
  advance();  // FETCH
  if (!expect(Tok::kLBrace, "FETCH section")) return;
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    if (match(Tok::kKwWord)) {
      if (at(Tok::kInt))
        model.fetch.word_bits = static_cast<unsigned>(advance().value);
      else
        error_here("expected word width in bits");
      expect(Tok::kSemi, "FETCH section");
    } else if (match(Tok::kKwPacket)) {
      if (at(Tok::kInt))
        model.fetch.packet_max = static_cast<unsigned>(advance().value);
      else
        error_here("expected packet size");
      if (match(Tok::kKwParallelBit)) {
        if (at(Tok::kInt))
          model.fetch.parallel_bit = static_cast<int>(advance().value);
        else
          error_here("expected parallel bit index");
      }
      expect(Tok::kSemi, "FETCH section");
    } else if (match(Tok::kKwMemory)) {
      if (at(Tok::kIdent))
        model.fetch.memory = advance().text;
      else
        error_here("expected memory name");
      expect(Tok::kSemi, "FETCH section");
    } else {
      error_here("expected WORD, PACKET or MEMORY in FETCH section");
      advance();
    }
  }
  expect(Tok::kRBrace, "FETCH section");
}

ast::OperationAst Parser::parse_operation() {
  ast::OperationAst op;
  op.loc = peek().loc;
  advance();  // OPERATION
  if (at(Tok::kIdent))
    op.name = advance().text;
  else
    error_here("expected operation name");
  if (match(Tok::kKwIn)) {
    op.has_stage = true;
    if (at(Tok::kIdent)) op.pipe = advance().text;
    expect(Tok::kDot, "IN pipe.stage");
    op.stage = expect_name("IN pipe.stage");
  }
  if (!expect(Tok::kLBrace, "OPERATION")) return op;
  parse_op_items(op.body, &op);
  expect(Tok::kRBrace, "OPERATION");
  return op;
}

void Parser::parse_op_items(ast::OpBody& body, ast::OperationAst* op) {
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    switch (peek().kind) {
      case Tok::kKwDeclare:
        if (op) {
          parse_declare_section(*op);
        } else {
          error_here("DECLARE is only allowed at operation top level");
          advance();
          sync_to(Tok::kRBrace);
          expect(Tok::kRBrace, "DECLARE section");
        }
        break;
      case Tok::kKwCoding:
        body.items.emplace_back(parse_coding_section());
        break;
      case Tok::kKwSyntax:
        body.items.emplace_back(parse_syntax_section());
        break;
      case Tok::kKwBehavior:
        body.items.emplace_back(parse_behavior_section());
        break;
      case Tok::kKwActivation:
        body.items.emplace_back(parse_activation_section());
        break;
      case Tok::kKwExpression:
        body.items.emplace_back(parse_expression_section());
        break;
      case Tok::kKwIf:
        body.items.emplace_back(parse_cond_sections());
        break;
      case Tok::kKwSwitch:
        body.items.emplace_back(parse_switch_sections());
        break;
      default:
        error_here(std::string("unexpected token in operation body: ") +
                   tok_name(peek().kind));
        advance();
    }
  }
}

void Parser::parse_declare_section(ast::OperationAst& op) {
  advance();  // DECLARE
  if (!expect(Tok::kLBrace, "DECLARE section")) return;
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    ast::DeclareItem item;
    item.loc = peek().loc;
    switch (peek().kind) {
      case Tok::kKwGroup: {
        advance();
        item.kind = ast::DeclareItem::Kind::kGroup;
        if (at(Tok::kIdent)) item.name = advance().text;
        expect(Tok::kAssign, "GROUP declaration");
        expect(Tok::kLBrace, "GROUP declaration");
        while (at(Tok::kIdent)) {
          item.targets.push_back(advance().text);
          if (!match(Tok::kPipePipe)) break;
        }
        expect(Tok::kRBrace, "GROUP declaration");
        expect(Tok::kSemi, "GROUP declaration");
        op.declares.push_back(std::move(item));
        break;
      }
      case Tok::kKwInstance: {
        advance();
        item.kind = ast::DeclareItem::Kind::kInstance;
        if (at(Tok::kIdent)) item.name = advance().text;
        if (match(Tok::kAssign)) {
          if (at(Tok::kIdent)) item.targets.push_back(advance().text);
        } else {
          // `INSTANCE foo;` instantiates the operation named foo.
          item.targets.push_back(item.name);
        }
        expect(Tok::kSemi, "INSTANCE declaration");
        op.declares.push_back(std::move(item));
        break;
      }
      case Tok::kKwLabel:
      case Tok::kKwReference: {
        const bool is_ref = advance().kind == Tok::kKwReference;
        do {
          ast::DeclareItem each;
          each.loc = peek().loc;
          each.kind = is_ref ? ast::DeclareItem::Kind::kReference
                             : ast::DeclareItem::Kind::kLabel;
          if (at(Tok::kIdent))
            each.name = advance().text;
          else
            error_here("expected name");
          op.declares.push_back(std::move(each));
        } while (match(Tok::kComma));
        expect(Tok::kSemi, "LABEL/REFERENCE declaration");
        break;
      }
      default:
        error_here("expected GROUP, INSTANCE, LABEL or REFERENCE");
        advance();
    }
  }
  expect(Tok::kRBrace, "DECLARE section");
}

ast::CodingSec Parser::parse_coding_section() {
  ast::CodingSec sec;
  sec.loc = peek().loc;
  advance();  // CODING
  if (!expect(Tok::kLBrace, "CODING section")) return sec;
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    ast::CodingElem elem;
    elem.loc = peek().loc;
    if (at(Tok::kBits)) {
      const Token& t = advance();
      elem.kind = ast::CodingElem::Kind::kBits;
      elem.bits = static_cast<std::uint64_t>(t.value);
      elem.width = t.width;
    } else if (at(Tok::kIdent)) {
      elem.name = advance().text;
      if (match(Tok::kAssign)) {
        elem.kind = ast::CodingElem::Kind::kField;
        if (at(Tok::kFieldPat)) {
          elem.width = advance().width;
        } else {
          error_here("expected field pattern 0bx[n]");
          advance();
        }
      } else {
        elem.kind = ast::CodingElem::Kind::kRef;
      }
    } else {
      error_here("expected bit pattern, field or reference in CODING");
      advance();
      continue;
    }
    sec.elems.push_back(std::move(elem));
  }
  expect(Tok::kRBrace, "CODING section");
  return sec;
}

ast::SyntaxSec Parser::parse_syntax_section() {
  ast::SyntaxSec sec;
  sec.loc = peek().loc;
  advance();  // SYNTAX
  if (!expect(Tok::kLBrace, "SYNTAX section")) return sec;
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    ast::SyntaxElem elem;
    elem.loc = peek().loc;
    if (at(Tok::kString)) {
      elem.kind = ast::SyntaxElem::Kind::kLiteral;
      elem.text = advance().text;
    } else if (at(Tok::kIdent)) {
      elem.kind = ast::SyntaxElem::Kind::kRef;
      elem.text = advance().text;
    } else if (match(Tok::kTilde)) {
      continue;  // LISA's glue operator; adjacency is implicit here
    } else {
      error_here("expected string literal or reference in SYNTAX");
      advance();
      continue;
    }
    sec.elems.push_back(std::move(elem));
  }
  expect(Tok::kRBrace, "SYNTAX section");
  return sec;
}

ast::BehaviorSec Parser::parse_behavior_section() {
  ast::BehaviorSec sec;
  sec.loc = peek().loc;
  advance();  // BEHAVIOR
  if (!expect(Tok::kLBrace, "BEHAVIOR section")) return sec;
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    auto stmt = parse_stmt();
    if (stmt) sec.stmts.push_back(std::move(stmt));
  }
  expect(Tok::kRBrace, "BEHAVIOR section");
  return sec;
}

ast::ActivationSec Parser::parse_activation_section() {
  ast::ActivationSec sec;
  sec.loc = peek().loc;
  advance();  // ACTIVATION
  if (!expect(Tok::kLBrace, "ACTIVATION section")) return sec;
  while (at(Tok::kIdent)) {
    sec.targets.push_back(advance().text);
    if (!match(Tok::kComma) && !match(Tok::kSemi)) break;
  }
  expect(Tok::kRBrace, "ACTIVATION section");
  return sec;
}

ast::ExpressionSec Parser::parse_expression_section() {
  ast::ExpressionSec sec;
  sec.loc = peek().loc;
  advance();  // EXPRESSION
  if (!expect(Tok::kLBrace, "EXPRESSION section")) return sec;
  sec.expr = parse_expr();
  match(Tok::kSemi);  // optional trailing semicolon
  expect(Tok::kRBrace, "EXPRESSION section");
  return sec;
}

std::unique_ptr<ast::CondSections> Parser::parse_cond_sections() {
  auto cond = std::make_unique<ast::CondSections>();
  cond->loc = peek().loc;
  advance();  // IF
  expect(Tok::kLParen, "coding-time IF");
  cond->cond = parse_expr();
  expect(Tok::kRParen, "coding-time IF");
  expect(Tok::kLBrace, "coding-time IF");
  parse_op_items(cond->then_body, nullptr);
  expect(Tok::kRBrace, "coding-time IF");
  if (match(Tok::kKwElse)) {
    if (at(Tok::kKwIf)) {
      cond->else_body.items.emplace_back(parse_cond_sections());
    } else {
      expect(Tok::kLBrace, "coding-time ELSE");
      parse_op_items(cond->else_body, nullptr);
      expect(Tok::kRBrace, "coding-time ELSE");
    }
  }
  return cond;
}

std::unique_ptr<ast::SwitchSections> Parser::parse_switch_sections() {
  auto sw = std::make_unique<ast::SwitchSections>();
  sw->loc = peek().loc;
  advance();  // SWITCH
  expect(Tok::kLParen, "coding-time SWITCH");
  sw->subject = parse_expr();
  expect(Tok::kRParen, "coding-time SWITCH");
  expect(Tok::kLBrace, "coding-time SWITCH");
  while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
    ast::SwitchSections::Case c;
    c.loc = peek().loc;
    if (match(Tok::kKwCase)) {
      c.match = parse_expr();
    } else if (match(Tok::kKwDefault)) {
      c.is_default = true;
    } else {
      error_here("expected CASE or DEFAULT");
      advance();
      continue;
    }
    expect(Tok::kColon, "SWITCH case");
    expect(Tok::kLBrace, "SWITCH case");
    parse_op_items(c.body, nullptr);
    expect(Tok::kRBrace, "SWITCH case");
    sw->cases.push_back(std::move(c));
  }
  expect(Tok::kRBrace, "coding-time SWITCH");
  return sw;
}

StmtPtr Parser::parse_stmt() {
  const SourceLoc loc = peek().loc;

  // Local declaration: `int32 x = ...;`
  if (at(Tok::kIdent) && peek(1).kind == Tok::kIdent) {
    if (auto type = ValueType::parse(peek().text)) {
      advance();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kLocalDecl;
      stmt->loc = loc;
      stmt->decl_type = *type;
      stmt->name = advance().text;
      if (match(Tok::kAssign)) stmt->value = parse_expr();
      expect(Tok::kSemi, "local declaration");
      return stmt;
    }
  }

  if (match(Tok::kKwLowerIf)) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->loc = loc;
    expect(Tok::kLParen, "if statement");
    stmt->value = parse_expr();
    expect(Tok::kRParen, "if statement");
    stmt->then_body = parse_stmt_block();
    if (match(Tok::kKwLowerElse)) {
      if (at(Tok::kKwLowerIf)) {
        stmt->else_body.push_back(parse_stmt());
      } else {
        stmt->else_body = parse_stmt_block();
      }
    }
    return stmt;
  }

  // Expression or assignment statement.
  ExprPtr lhs = parse_expr();
  if (!lhs) {
    sync_to(Tok::kSemi);
    return nullptr;
  }
  auto stmt = std::make_unique<Stmt>();
  stmt->loc = loc;
  if (match(Tok::kAssign)) {
    stmt->kind = StmtKind::kAssign;
    stmt->lhs = std::move(lhs);
    stmt->value = parse_expr();
  } else {
    stmt->kind = StmtKind::kExpr;
    stmt->value = std::move(lhs);
  }
  expect(Tok::kSemi, "statement");
  return stmt;
}

std::vector<StmtPtr> Parser::parse_stmt_block() {
  std::vector<StmtPtr> stmts;
  if (match(Tok::kLBrace)) {
    while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
      auto s = parse_stmt();
      if (s) stmts.push_back(std::move(s));
    }
    expect(Tok::kRBrace, "block");
  } else {
    auto s = parse_stmt();
    if (s) stmts.push_back(std::move(s));
  }
  return stmts;
}

ExprPtr Parser::parse_expr() { return parse_ternary(); }

ExprPtr Parser::parse_ternary() {
  ExprPtr cond = parse_binary(0);
  if (!cond || !match(Tok::kQuestion)) return cond;
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kTernary;
  e->loc = cond->loc;
  e->children.push_back(std::move(cond));
  e->children.push_back(parse_expr());
  expect(Tok::kColon, "conditional expression");
  e->children.push_back(parse_expr());
  return e;
}

namespace {

/// Binary operator precedence, C-like. Returns -1 for non-operators.
int binary_prec(Tok kind) {
  switch (kind) {
    case Tok::kPipePipe: return 1;
    case Tok::kAmpAmp: return 2;
    case Tok::kPipe: return 3;
    case Tok::kCaret: return 4;
    case Tok::kAmp: return 5;
    case Tok::kEq:
    case Tok::kNe: return 6;
    case Tok::kLt:
    case Tok::kLe:
    case Tok::kGt:
    case Tok::kGe: return 7;
    case Tok::kShl:
    case Tok::kShr: return 8;
    case Tok::kPlus:
    case Tok::kMinus: return 9;
    case Tok::kStar:
    case Tok::kSlash:
    case Tok::kPercent: return 10;
    default: return -1;
  }
}

BinOp binary_op(Tok kind) {
  switch (kind) {
    case Tok::kPipePipe: return BinOp::kLogicalOr;
    case Tok::kAmpAmp: return BinOp::kLogicalAnd;
    case Tok::kPipe: return BinOp::kOr;
    case Tok::kCaret: return BinOp::kXor;
    case Tok::kAmp: return BinOp::kAnd;
    case Tok::kEq: return BinOp::kEq;
    case Tok::kNe: return BinOp::kNe;
    case Tok::kLt: return BinOp::kLt;
    case Tok::kLe: return BinOp::kLe;
    case Tok::kGt: return BinOp::kGt;
    case Tok::kGe: return BinOp::kGe;
    case Tok::kShl: return BinOp::kShl;
    case Tok::kShr: return BinOp::kShr;
    case Tok::kPlus: return BinOp::kAdd;
    case Tok::kMinus: return BinOp::kSub;
    case Tok::kStar: return BinOp::kMul;
    case Tok::kSlash: return BinOp::kDiv;
    case Tok::kPercent: return BinOp::kRem;
    default: return BinOp::kAdd;
  }
}

}  // namespace

ExprPtr Parser::parse_binary(int min_prec) {
  ExprPtr lhs = parse_unary();
  if (!lhs) return nullptr;
  for (;;) {
    const int prec = binary_prec(peek().kind);
    if (prec < 0 || prec < min_prec) return lhs;
    const BinOp op = binary_op(advance().kind);
    ExprPtr rhs = parse_binary(prec + 1);
    if (!rhs) return lhs;
    lhs = Expr::make_binary(op, std::move(lhs), std::move(rhs));
  }
}

ExprPtr Parser::parse_unary() {
  const SourceLoc loc = peek().loc;
  if (match(Tok::kMinus)) {
    auto e = Expr::make_unary(UnOp::kNeg, parse_unary());
    e->loc = loc;
    return e;
  }
  if (match(Tok::kBang)) {
    auto e = Expr::make_unary(UnOp::kLogicalNot, parse_unary());
    e->loc = loc;
    return e;
  }
  if (match(Tok::kTilde)) {
    auto e = Expr::make_unary(UnOp::kBitNot, parse_unary());
    e->loc = loc;
    return e;
  }
  if (match(Tok::kPlus)) return parse_unary();
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  if (!e) return nullptr;
  while (match(Tok::kLBracket)) {
    if (e->kind != ExprKind::kSym) {
      diags_.error(e->loc, "only named resources can be indexed");
    }
    auto idx = std::make_unique<Expr>();
    idx->kind = ExprKind::kIndex;
    idx->loc = e->loc;
    idx->sym = e->sym;
    idx->children.push_back(parse_expr());
    expect(Tok::kRBracket, "index expression");
    e = std::move(idx);
  }
  return e;
}

ExprPtr Parser::parse_primary() {
  const SourceLoc loc = peek().loc;
  if (at(Tok::kInt) || at(Tok::kBits)) {
    return Expr::make_int(advance().value, loc);
  }
  if (at(Tok::kIdent)) {
    std::string name = advance().text;
    if (match(Tok::kLParen)) {
      auto call = std::make_unique<Expr>();
      call->kind = ExprKind::kCall;
      call->loc = loc;
      call->callee = std::move(name);
      if (!at(Tok::kRParen)) {
        do {
          call->children.push_back(parse_expr());
        } while (match(Tok::kComma));
      }
      expect(Tok::kRParen, "call expression");
      return call;
    }
    return Expr::make_sym(std::move(name), loc);
  }
  if (match(Tok::kLParen)) {
    ExprPtr e = parse_expr();
    expect(Tok::kRParen, "parenthesized expression");
    return e;
  }
  error_here(std::string("expected expression, found ") +
             tok_name(peek().kind));
  advance();
  return Expr::make_int(0, loc);
}

ast::ModelAst parse_model_source(std::string_view source, std::string file,
                                 DiagnosticEngine& diags) {
  Lexer lexer(source, std::move(file), diags);
  Parser parser(lexer.lex_all(), diags);
  return parser.parse_model();
}

}  // namespace lisasim
