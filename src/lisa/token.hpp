// Token definitions for the machine description language.
#pragma once

#include <cstdint>
#include <string>

#include "support/diag.hpp"

namespace lisasim {

enum class Tok : std::uint8_t {
  kEof,
  kIdent,
  kInt,      // decimal or hexadecimal integer literal
  kBits,     // 0b... literal: fixed bit pattern (value + width)
  kFieldPat, // 0bx[n]: an n-bit operand field pattern
  kString,   // "..." literal (SYNTAX sections)

  // Section-level keywords (case-sensitive, upper case).
  kKwModel, kKwResource, kKwFetch, kKwOperation, kKwDeclare, kKwCoding,
  kKwSyntax, kKwBehavior, kKwActivation, kKwExpression,
  kKwGroup, kKwInstance, kKwLabel, kKwReference,
  kKwRegister, kKwMemory, kKwProgramCounter, kKwPipeline,
  kKwIn, kKwIf, kKwElse, kKwSwitch, kKwCase, kKwDefault,
  kKwWord, kKwPacket, kKwParallelBit, kKwEntry,
  // Behavior-level keywords (lower case, C-like).
  kKwLowerIf, kKwLowerElse,

  // Punctuation and operators.
  kLBrace, kRBrace, kLParen, kRParen, kLBracket, kRBracket,
  kSemi, kComma, kColon, kDot, kQuestion,
  kAssign, kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr, kAmpAmp, kPipePipe,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;         // identifier spelling or string literal body
  std::int64_t value = 0;   // kInt / kBits value
  unsigned width = 0;       // kBits / kFieldPat width in bits
  SourceLoc loc;
};

const char* tok_name(Tok kind);

}  // namespace lisasim
