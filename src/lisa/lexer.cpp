#include "lisa/lexer.hpp"

#include <array>
#include <cctype>
#include <utility>

namespace lisasim {

namespace {

struct Keyword {
  const char* spelling;
  Tok kind;
};

// Section-level keywords are upper case; the C-like behavior language uses
// lower-case `if`/`else` so that coding-time and run-time conditionals are
// visibly distinct (paper §4.1 / §5.1).
constexpr std::array<Keyword, 31> kKeywords = {{
    {"MODEL", Tok::kKwModel},
    {"RESOURCE", Tok::kKwResource},
    {"FETCH", Tok::kKwFetch},
    {"OPERATION", Tok::kKwOperation},
    {"DECLARE", Tok::kKwDeclare},
    {"CODING", Tok::kKwCoding},
    {"SYNTAX", Tok::kKwSyntax},
    {"BEHAVIOR", Tok::kKwBehavior},
    {"ACTIVATION", Tok::kKwActivation},
    {"EXPRESSION", Tok::kKwExpression},
    {"GROUP", Tok::kKwGroup},
    {"INSTANCE", Tok::kKwInstance},
    {"LABEL", Tok::kKwLabel},
    {"REFERENCE", Tok::kKwReference},
    {"REGISTER", Tok::kKwRegister},
    {"MEMORY", Tok::kKwMemory},
    {"PROGRAM_COUNTER", Tok::kKwProgramCounter},
    {"PIPELINE", Tok::kKwPipeline},
    {"IN", Tok::kKwIn},
    {"IF", Tok::kKwIf},
    {"ELSE", Tok::kKwElse},
    {"SWITCH", Tok::kKwSwitch},
    {"CASE", Tok::kKwCase},
    {"DEFAULT", Tok::kKwDefault},
    {"WORD", Tok::kKwWord},
    {"PACKET", Tok::kKwPacket},
    {"PARALLEL_BIT", Tok::kKwParallelBit},
    {"ENTRY", Tok::kKwEntry},
    {"if", Tok::kKwLowerIf},
    {"else", Tok::kKwLowerElse},
    {"THEN", Tok::kKwIf},  // tolerated alias; IF (c) THEN {..} is not used
}};

}  // namespace

const char* tok_name(Tok kind) {
  switch (kind) {
    case Tok::kEof: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kInt: return "integer literal";
    case Tok::kBits: return "bit literal";
    case Tok::kFieldPat: return "field pattern";
    case Tok::kString: return "string literal";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kColon: return "':'";
    case Tok::kDot: return "'.'";
    case Tok::kQuestion: return "'?'";
    case Tok::kAssign: return "'='";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kBang: return "'!'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kAmpAmp: return "'&&'";
    case Tok::kPipePipe: return "'||'";
    default: return "keyword";
  }
}

Lexer::Lexer(std::string_view source, std::string file,
             DiagnosticEngine& diags)
    : src_(source), file_(std::move(file)), diags_(diags) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = peek();
  if (c == '\0') return c;
  ++pos_;
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

SourceLoc Lexer::here() const { return {file_, line_, column_}; }

void Lexer::skip_whitespace_and_comments() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SourceLoc start = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error(start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    const bool done = t.kind == Tok::kEof;
    out.push_back(std::move(t));
    if (done) return out;
  }
}

Token Lexer::lex_number() {
  Token t;
  t.kind = Tok::kInt;
  t.loc = here();
  std::int64_t value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    bool any = false;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      const char c = advance();
      const int digit = std::isdigit(static_cast<unsigned char>(c))
                            ? c - '0'
                            : (std::tolower(c) - 'a' + 10);
      value = value * 16 + digit;
      any = true;
    }
    if (!any) diags_.error(t.loc, "expected hex digits after 0x");
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      value = value * 10 + (advance() - '0');
  }
  t.value = value;
  return t;
}

Token Lexer::lex_bits() {
  // Called with "0b" pending. Forms:
  //   0b0101    fixed bit pattern (kBits, value + width)
  //   0bx[5]    5-bit operand field (kFieldPat, width)
  Token t;
  t.loc = here();
  advance();  // 0
  advance();  // b
  if (peek() == 'x' && !std::isdigit(static_cast<unsigned char>(peek(1))) &&
      peek(1) != 'x') {
    advance();  // x
    t.kind = Tok::kFieldPat;
    if (!match('[')) {
      diags_.error(t.loc, "expected '[width]' after 0bx");
      return t;
    }
    unsigned width = 0;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      width = width * 10 + static_cast<unsigned>(advance() - '0');
    if (!match(']')) diags_.error(t.loc, "expected ']' after field width");
    if (width == 0 || width > 64)
      diags_.error(t.loc, "field width must be 1..64");
    t.width = width;
    return t;
  }
  t.kind = Tok::kBits;
  std::int64_t value = 0;
  unsigned width = 0;
  while (peek() == '0' || peek() == '1') {
    value = (value << 1) | (advance() - '0');
    ++width;
  }
  if (width == 0) {
    diags_.error(t.loc, "expected binary digits after 0b");
  } else if (width > 64) {
    diags_.error(t.loc, "bit literal wider than 64 bits");
  }
  t.value = value;
  t.width = width;
  return t;
}

Token Lexer::lex_ident() {
  Token t;
  t.loc = here();
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    text.push_back(advance());
  for (const auto& kw : kKeywords) {
    if (text == kw.spelling) {
      t.kind = kw.kind;
      t.text = std::move(text);
      return t;
    }
  }
  t.kind = Tok::kIdent;
  t.text = std::move(text);
  return t;
}

Token Lexer::lex_string() {
  Token t;
  t.kind = Tok::kString;
  t.loc = here();
  advance();  // opening quote
  std::string text;
  for (;;) {
    const char c = peek();
    if (c == '\0' || c == '\n') {
      diags_.error(t.loc, "unterminated string literal");
      break;
    }
    advance();
    if (c == '"') break;
    if (c == '\\') {
      const char esc = advance();
      switch (esc) {
        case 'n': text.push_back('\n'); break;
        case 't': text.push_back('\t'); break;
        case '\\': text.push_back('\\'); break;
        case '"': text.push_back('"'); break;
        default:
          diags_.error(here(), "unknown escape sequence");
          text.push_back(esc);
      }
    } else {
      text.push_back(c);
    }
  }
  t.text = std::move(text);
  return t;
}

Token Lexer::next() {
  skip_whitespace_and_comments();
  const SourceLoc loc = here();
  const char c = peek();
  if (c == '\0') return {Tok::kEof, "", 0, 0, loc};
  if (c == '0' && (peek(1) == 'b' || peek(1) == 'B')) return lex_bits();
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
    return lex_ident();
  if (c == '"') return lex_string();

  advance();
  auto simple = [&](Tok kind) { return Token{kind, "", 0, 0, loc}; };
  switch (c) {
    case '{': return simple(Tok::kLBrace);
    case '}': return simple(Tok::kRBrace);
    case '(': return simple(Tok::kLParen);
    case ')': return simple(Tok::kRParen);
    case '[': return simple(Tok::kLBracket);
    case ']': return simple(Tok::kRBracket);
    case ';': return simple(Tok::kSemi);
    case ',': return simple(Tok::kComma);
    case ':': return simple(Tok::kColon);
    case '.': return simple(Tok::kDot);
    case '?': return simple(Tok::kQuestion);
    case '+': return simple(Tok::kPlus);
    case '-': return simple(Tok::kMinus);
    case '*': return simple(Tok::kStar);
    case '/': return simple(Tok::kSlash);
    case '%': return simple(Tok::kPercent);
    case '^': return simple(Tok::kCaret);
    case '~': return simple(Tok::kTilde);
    case '=': return simple(match('=') ? Tok::kEq : Tok::kAssign);
    case '!': return simple(match('=') ? Tok::kNe : Tok::kBang);
    case '<':
      if (match('<')) return simple(Tok::kShl);
      return simple(match('=') ? Tok::kLe : Tok::kLt);
    case '>':
      if (match('>')) return simple(Tok::kShr);
      return simple(match('=') ? Tok::kGe : Tok::kGt);
    case '&': return simple(match('&') ? Tok::kAmpAmp : Tok::kAmp);
    case '|': return simple(match('|') ? Tok::kPipePipe : Tok::kPipe);
    default:
      diags_.error(loc, std::string("unexpected character '") + c + "'");
      return next();
  }
}

}  // namespace lisasim
