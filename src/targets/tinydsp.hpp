// tinydsp: a small 4-stage (IF ID EX WB) DSP model — the pedagogical
// machine of the paper's Fig. 2/Fig. 4: it demonstrates the intra-
// instruction precedence of operations (load write-back via ACTIVATION into
// WB), control hazards with flush(), and the non-orthogonal mode field of
// the paper's Example 1 (REFERENCE mode + coding-time IF/ELSE).
//
// ISA summary (32-bit words, absolute word addressing):
//   ADD.S/L Rd, Rs, Rt   SUB.S/L  MUL.S/L     (.S = 16-bit operands)
//   LD Rd, Rs, off       Rd <- dmem[Rs+off]   (write-back in WB)
//   ST Rd, Rs, off       dmem[Rs+off] <- Rd
//   MVK imm16, Rd        Rd <- sext(imm)
//   B target             branch (flushes IF/ID: 2-cycle penalty)
//   BZ Rs, target        branch if Rs == 0
//   NOP n                occupy EX for n cycles
//   HALT
#pragma once

#include <string_view>

namespace lisasim::targets {

std::string_view tinydsp_model_source();

}  // namespace lisasim::targets
