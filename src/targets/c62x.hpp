// c62x: a TMS320C62x-class VLIW DSP model — the paper's case-study target.
// Structure preserved from the real device (simplified encodings, see
// DESIGN.md):
//   * 11-stage pipeline PG PS PW PR DP DC E1 E2 E3 E4 E5
//   * two 16-register files A and B
//   * fetch packets of up to 8 32-bit words chained by the p-bit (bit 0)
//   * full predication: 3-bit creg + z bit ([B0], [!B0], ... [A2], [!A2])
//   * exposed pipeline: MPY has 1 delay slot, loads 4, branches 5
//
// ISA (TI-style operand order, results written last):
//   ADD/SUB/AND/OR/XOR/SHL/SHR src1, src2, dst
//   SADD/SSUB (saturating), MIN2/MAX2, CMPEQ/CMPGT/CMPLT
//   MPY/MPYH/SMPY src1, src2, dst           (result in E2)
//   MV src, dst   ABS src, dst
//   MVK imm16, dst   MVKH imm16, dst   ADDK imm16, dst
//   SHLI/SHRI src, imm5, dst
//   LDW/LDH base, off, dst                  (result in E5; off signed)
//   STW/STH src, base, off                  (memory written in E3)
//   B target                                (resolves in DC; 5 delay slots)
//   NOP n   HALT
// Constraint (documented substitution): at most one load, one store and
// one multiply per execute packet (the model uses one set of pipeline
// registers per class instead of per-side duplicates).
#pragma once

#include <string_view>

namespace lisasim::targets {

std::string_view c62x_model_source();

}  // namespace lisasim::targets
