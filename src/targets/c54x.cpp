#include "targets/c54x.hpp"

namespace lisasim::targets {

namespace {

constexpr std::string_view kC54x = R"LISA(
MODEL c54x;

RESOURCE {
  PROGRAM_COUNTER uint32 PC;
  int64 ACCA;                  // 40-bit accumulator A (kept in 64 bits,
  int64 ACCB;                  // wrapped/saturated to 40 explicitly)
  int32 T;                     // multiplicand register
  REGISTER int32 AR[8];        // auxiliary (address) registers
  MEMORY uint16 pmem[8192];
  MEMORY int16 dmem[8192];
  PIPELINE pipe = { PF; F; D; A; R; X };
}

FETCH {
  WORD 16;
  MEMORY pmem;
}

// ---------------------------------------------------------------- operands

OPERATION acca {
  CODING { 0b0 }
  SYNTAX { "A" }
  EXPRESSION { ACCA }
}

OPERATION accb {
  CODING { 0b1 }
  SYNTAX { "B" }
  EXPRESSION { ACCB }
}

// ------------------------------------------------------ accumulator ops (X)

OPERATION ld_acc IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL a; }
  CODING { 0b00001 acc a=0bx[10] }
  SYNTAX { "LD @" a ", " acc }
  BEHAVIOR { acc = dmem[a]; }
}

OPERATION st_acc IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL a; }
  CODING { 0b00010 acc a=0bx[10] }
  SYNTAX { "ST " acc ", @" a }
  BEHAVIOR { dmem[a] = sat(acc, 16); }
}

OPERATION add_acc IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL a; }
  CODING { 0b00011 acc a=0bx[10] }
  SYNTAX { "ADD @" a ", " acc }
  BEHAVIOR { acc = sat(acc + dmem[a], 40); }
}

OPERATION sub_acc IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL a; }
  CODING { 0b00100 acc a=0bx[10] }
  SYNTAX { "SUB @" a ", " acc }
  BEHAVIOR { acc = sat(acc - dmem[a], 40); }
}

OPERATION mac_acc IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL a; }
  CODING { 0b00101 acc a=0bx[10] }
  SYNTAX { "MAC @" a ", " acc }
  BEHAVIOR { acc = sat(acc + T * dmem[a], 40); }
}

OPERATION ldt IN pipe.X {
  DECLARE { LABEL a; }
  CODING { 0b00110 0b0 a=0bx[10] }
  SYNTAX { "LDT @" a }
  BEHAVIOR { T = dmem[a]; }
}

OPERATION ldi IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL imm; }
  CODING { 0b00111 acc imm=0bx[10] }
  SYNTAX { "LDI " imm ", " acc }
  BEHAVIOR { acc = sext(imm, 10); }
}

OPERATION sftl IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL k; }
  CODING { 0b01000 acc k=0bx[5] 0b00000 }
  SYNTAX { "SFTL " acc ", " k }
  BEHAVIOR { acc = sext(acc << k, 40); }
}

// -------------------------------------------- indirect addressing ops (X)

OPERATION ld_ind IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL ar; }
  CODING { 0b01101 acc ar=0bx[3] 0b0000000 }
  SYNTAX { "LD *AR" ar ", " acc }
  BEHAVIOR { acc = dmem[AR[ar]]; }
}

OPERATION mac_ind IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL ar; }
  CODING { 0b01110 acc ar=0bx[3] 0b0000000 }
  SYNTAX { "MAC *AR" ar ", " acc }
  BEHAVIOR { acc = sat(acc + T * dmem[AR[ar]], 40); }
}

OPERATION st_ind IN pipe.X {
  DECLARE { GROUP acc = { acca || accb }; LABEL ar; }
  CODING { 0b01111 acc ar=0bx[3] 0b0000000 }
  SYNTAX { "ST " acc ", *AR" ar }
  BEHAVIOR { dmem[AR[ar]] = sat(acc, 16); }
}

// ----------------------------------------------------- control ops (stage A)
// Branches resolve in A (stage 3): a taken branch squashes the 3 younger
// fetches. AR *writes* stay in X with the other data operations, so an AR
// update can never overtake an older indirect access; BANZ reads (and
// decrements) its counter in A, which still observes every older write
// because X executes first within a cycle.

OPERATION b_op IN pipe.A {
  DECLARE { LABEL a; }
  CODING { 0b01001 0b0 a=0bx[10] }
  SYNTAX { "B " a }
  BEHAVIOR {
    PC = a;
    flush();
  }
}

OPERATION banz IN pipe.A {
  DECLARE { LABEL ar, a; }
  CODING { 0b01010 ar=0bx[3] a=0bx[8] }
  SYNTAX { "BANZ " a ", AR" ar }
  BEHAVIOR {
    if (AR[ar] != 0) {
      AR[ar] = AR[ar] - 1;
      PC = a;
      flush();
    }
  }
}

OPERATION ldar IN pipe.X {
  DECLARE { LABEL ar, imm; }
  CODING { 0b01100 ar=0bx[3] imm=0bx[8] }
  SYNTAX { "LDAR AR" ar ", " imm }
  BEHAVIOR { AR[ar] = zext(imm, 8); }
}

OPERATION mar IN pipe.X {
  DECLARE { LABEL ar, imm; }
  CODING { 0b01011 ar=0bx[3] imm=0bx[8] }
  SYNTAX { "MAR AR" ar ", " imm }
  BEHAVIOR { AR[ar] = AR[ar] + sext(imm, 8); }
}

// ----------------------------------------------------------------- misc

OPERATION nop_op IN pipe.X {
  CODING { 0b10000 0b00000000000 }
  SYNTAX { "NOP" }
  BEHAVIOR { }
}

OPERATION halt_op IN pipe.X {
  CODING { 0b11111 0b00000000000 }
  SYNTAX { "HALT" }
  BEHAVIOR { halt(); }
}

// ----------------------------------------------------------------- decode

OPERATION instruction {
  DECLARE {
    GROUP insn = { ld_acc || st_acc || add_acc || sub_acc || mac_acc ||
                   ldt || ldi || sftl || ld_ind || mac_ind || st_ind ||
                   b_op || banz || ldar || mar || nop_op || halt_op };
  }
  CODING { insn }
  SYNTAX { insn }
}
)LISA";

}  // namespace

std::string_view c54x_model_source() { return kC54x; }

}  // namespace lisasim::targets
