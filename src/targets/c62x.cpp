#include "targets/c62x.hpp"

namespace lisasim::targets {

namespace {

constexpr std::string_view kC62x = R"LISA(
MODEL c62x;

RESOURCE {
  PROGRAM_COUNTER uint32 PC;
  REGISTER int32 A[16];
  REGISTER int32 B[16];
  MEMORY uint32 pmem[16384];
  MEMORY int32 dmem[16384];

  // Pipeline registers. Scalars suffice because stages drain oldest-first
  // within a cycle and each class of instruction is limited to one slot
  // per execute packet.
  int32 mpy_g1;  int32 mpy_v1;                          // MPY E1 -> E2
  int32 ld_g1;   int32 ld_a1;   int32 ld_h1;            // load E1 -> E2
  int32 ld_g2;   int32 ld_a2;   int32 ld_h2;            // load E2 -> E3
  int32 ld_g3;   int32 ld_v3;                           // load E3 -> E4
  int32 ld_g4;   int32 ld_v4;                           // load E4 -> E5
  int32 st_g1;   int32 st_a1;   int32 st_v1; int32 st_h1;  // store E1 -> E2
  int32 st_g2;   int32 st_a2;   int32 st_v2; int32 st_h2;  // store E2 -> E3

  PIPELINE pipe = { PG; PS; PW; PR; DP; DC; E1; E2; E3; E4; E5 };
}

FETCH {
  WORD 32;
  PACKET 8 PARALLEL_BIT 0;
  MEMORY pmem;
}

// ---------------------------------------------------------------- operands

OPERATION rega {
  DECLARE { LABEL idx; }
  CODING { 0b0 idx=0bx[4] }
  SYNTAX { "A" idx }
  EXPRESSION { A[idx] }
}

OPERATION regb {
  DECLARE { LABEL idx; }
  CODING { 0b1 idx=0bx[4] }
  SYNTAX { "B" idx }
  EXPRESSION { B[idx] }
}

OPERATION reg {
  DECLARE { GROUP r = { rega || regb }; }
  CODING { r }
  SYNTAX { r }
  EXPRESSION { r }
}

// -------------------------------------------------------------- predicates
// creg(3)+z(1) exactly as on the C62x: B0=001, B1=010, B2=011, A1=100,
// A2=101; z inverts. 0000 = unconditional.

OPERATION p_b0  { CODING { 0b0010 } SYNTAX { "[B0] " }  EXPRESSION { B[0] != 0 } }
OPERATION p_b0z { CODING { 0b0011 } SYNTAX { "[!B0] " } EXPRESSION { B[0] == 0 } }
OPERATION p_b1  { CODING { 0b0100 } SYNTAX { "[B1] " }  EXPRESSION { B[1] != 0 } }
OPERATION p_b1z { CODING { 0b0101 } SYNTAX { "[!B1] " } EXPRESSION { B[1] == 0 } }
OPERATION p_b2  { CODING { 0b0110 } SYNTAX { "[B2] " }  EXPRESSION { B[2] != 0 } }
OPERATION p_b2z { CODING { 0b0111 } SYNTAX { "[!B2] " } EXPRESSION { B[2] == 0 } }
OPERATION p_a1  { CODING { 0b1000 } SYNTAX { "[A1] " }  EXPRESSION { A[1] != 0 } }
OPERATION p_a1z { CODING { 0b1001 } SYNTAX { "[!A1] " } EXPRESSION { A[1] == 0 } }
OPERATION p_a2  { CODING { 0b1010 } SYNTAX { "[A2] " }  EXPRESSION { A[2] != 0 } }
OPERATION p_a2z { CODING { 0b1011 } SYNTAX { "[!A2] " } EXPRESSION { A[2] == 0 } }
OPERATION p_always { CODING { 0b0000 } SYNTAX { "" } EXPRESSION { 1 } }

// --------------------------------------------------- single-cycle (E1) ops

OPERATION add IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b000001 dst src1 src2 0b000000 }
  SYNTAX { "ADD " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 + src2; } }
}

OPERATION sub IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b000010 dst src1 src2 0b000000 }
  SYNTAX { "SUB " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 - src2; } }
}

OPERATION and_op IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b000100 dst src1 src2 0b000000 }
  SYNTAX { "AND " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 & src2; } }
}

OPERATION or_op IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b000101 dst src1 src2 0b000000 }
  SYNTAX { "OR " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 | src2; } }
}

OPERATION xor_op IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b000110 dst src1 src2 0b000000 }
  SYNTAX { "XOR " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 ^ src2; } }
}

OPERATION shl IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b000111 dst src1 src2 0b000000 }
  SYNTAX { "SHL " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 << (src2 & 31); } }
}

OPERATION shr IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b001000 dst src1 src2 0b000000 }
  SYNTAX { "SHR " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 >> (src2 & 31); } }
}

OPERATION cmpeq IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b001001 dst src1 src2 0b000000 }
  SYNTAX { "CMPEQ " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 == src2; } }
}

OPERATION cmpgt IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b001010 dst src1 src2 0b000000 }
  SYNTAX { "CMPGT " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 > src2; } }
}

OPERATION cmplt IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b001011 dst src1 src2 0b000000 }
  SYNTAX { "CMPLT " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = src1 < src2; } }
}

OPERATION sadd IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b001100 dst src1 src2 0b000000 }
  SYNTAX { "SADD " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = sat(src1 + src2, 32); } }
}

OPERATION ssub IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b001101 dst src1 src2 0b000000 }
  SYNTAX { "SSUB " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = sat(src1 - src2, 32); } }
}

OPERATION min2 IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b001110 dst src1 src2 0b000000 }
  SYNTAX { "MIN2 " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = min(src1, src2); } }
}

OPERATION max2 IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg; }
  CODING { 0b001111 dst src1 src2 0b000000 }
  SYNTAX { "MAX2 " src1 ", " src2 ", " dst }
  BEHAVIOR { if (pred) { dst = max(src1, src2); } }
}

OPERATION mv IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE src1 = reg; INSTANCE dst = reg; }
  CODING { 0b010001 src1 dst 0b00000000000 }
  SYNTAX { "MV " src1 ", " dst }
  BEHAVIOR { if (pred) { dst = src1; } }
}

OPERATION absv IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE src1 = reg; INSTANCE dst = reg; }
  CODING { 0b010010 src1 dst 0b00000000000 }
  SYNTAX { "ABS " src1 ", " dst }
  BEHAVIOR { if (pred) { dst = sat(abs(src1), 32); } }
}

OPERATION mvk IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE dst = reg; LABEL imm; }
  CODING { 0b010011 dst imm=0bx[16] }
  SYNTAX { "MVK " imm ", " dst }
  BEHAVIOR { if (pred) { dst = sext(imm, 16); } }
}

OPERATION mvkh IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE dst = reg; LABEL imm; }
  CODING { 0b010100 dst imm=0bx[16] }
  SYNTAX { "MVKH " imm ", " dst }
  BEHAVIOR { if (pred) { dst = (imm << 16) | zext(dst, 16); } }
}

OPERATION addk IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE dst = reg; LABEL imm; }
  CODING { 0b010101 dst imm=0bx[16] }
  SYNTAX { "ADDK " imm ", " dst }
  BEHAVIOR { if (pred) { dst = dst + sext(imm, 16); } }
}

OPERATION shli IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE src1 = reg; INSTANCE dst = reg;
            LABEL amt; }
  CODING { 0b010110 dst src1 amt=0bx[5] 0b000000 }
  SYNTAX { "SHLI " src1 ", " amt ", " dst }
  BEHAVIOR { if (pred) { dst = src1 << amt; } }
}

OPERATION shri IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE src1 = reg; INSTANCE dst = reg;
            LABEL amt; }
  CODING { 0b010111 dst src1 amt=0bx[5] 0b000000 }
  SYNTAX { "SHRI " src1 ", " amt ", " dst }
  BEHAVIOR { if (pred) { dst = src1 >> amt; } }
}

// ------------------------------------------------------- multiplies (E2 wb)

OPERATION mpy IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg;
            INSTANCE mpy_e2; }
  CODING { 0b000011 dst src1 src2 0b000000 }
  SYNTAX { "MPY " src1 ", " src2 ", " dst }
  BEHAVIOR {
    mpy_g1 = pred;
    mpy_v1 = sext(src1, 16) * sext(src2, 16);
  }
  ACTIVATION { mpy_e2 }
}

OPERATION mpyh IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg;
            INSTANCE mpy_e2; }
  CODING { 0b010000 dst src1 src2 0b000000 }
  SYNTAX { "MPYH " src1 ", " src2 ", " dst }
  BEHAVIOR {
    mpy_g1 = pred;
    mpy_v1 = sext(src1 >> 16, 16) * sext(src2 >> 16, 16);
  }
  ACTIVATION { mpy_e2 }
}

OPERATION smpy IN pipe.E1 {
  DECLARE { REFERENCE pred;
            INSTANCE src1 = reg; INSTANCE src2 = reg; INSTANCE dst = reg;
            INSTANCE mpy_e2; }
  CODING { 0b011111 dst src1 src2 0b000000 }
  SYNTAX { "SMPY " src1 ", " src2 ", " dst }
  BEHAVIOR {
    mpy_g1 = pred;
    mpy_v1 = sat((sext(src1, 16) * sext(src2, 16)) << 1, 32);
  }
  ACTIVATION { mpy_e2 }
}

OPERATION mpy_e2 IN pipe.E2 {
  DECLARE { REFERENCE dst; }
  BEHAVIOR { if (mpy_g1) { dst = mpy_v1; } }
}

// ------------------------------------------------------------ loads (E5 wb)

OPERATION ldw IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE base = reg; INSTANCE dst = reg;
            LABEL off; INSTANCE ld_e2; }
  CODING { 0b011000 dst base off=0bx[11] }
  SYNTAX { "LDW " base ", " off ", " dst }
  BEHAVIOR {
    ld_g1 = pred;
    ld_a1 = base + sext(off, 11);
    ld_h1 = 0;
  }
  ACTIVATION { ld_e2 }
}

OPERATION ldh IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE base = reg; INSTANCE dst = reg;
            LABEL off; INSTANCE ld_e2; }
  CODING { 0b011001 dst base off=0bx[11] }
  SYNTAX { "LDH " base ", " off ", " dst }
  BEHAVIOR {
    ld_g1 = pred;
    ld_a1 = base + sext(off, 11);
    ld_h1 = 1;
  }
  ACTIVATION { ld_e2 }
}

OPERATION ld_e2 IN pipe.E2 {
  DECLARE { INSTANCE ld_e3; }
  BEHAVIOR {
    ld_g2 = ld_g1;
    ld_a2 = ld_a1;
    ld_h2 = ld_h1;
  }
  ACTIVATION { ld_e3 }
}

OPERATION ld_e3 IN pipe.E3 {
  DECLARE { INSTANCE ld_e4; }
  BEHAVIOR {
    ld_g3 = ld_g2;
    if (ld_g2) {
      if (ld_h2) {
        ld_v3 = sext(dmem[ld_a2], 16);
      } else {
        ld_v3 = dmem[ld_a2];
      }
    }
  }
  ACTIVATION { ld_e4 }
}

OPERATION ld_e4 IN pipe.E4 {
  DECLARE { INSTANCE ld_e5; }
  BEHAVIOR {
    ld_g4 = ld_g3;
    ld_v4 = ld_v3;
  }
  ACTIVATION { ld_e5 }
}

OPERATION ld_e5 IN pipe.E5 {
  DECLARE { REFERENCE dst; }
  BEHAVIOR { if (ld_g4) { dst = ld_v4; } }
}

// ------------------------------------------------------------ stores (E3)

OPERATION stw IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE src1 = reg; INSTANCE base = reg;
            LABEL off; INSTANCE st_e2; }
  CODING { 0b011010 src1 base off=0bx[11] }
  SYNTAX { "STW " src1 ", " base ", " off }
  BEHAVIOR {
    st_g1 = pred;
    st_a1 = base + sext(off, 11);
    st_v1 = src1;
    st_h1 = 0;
  }
  ACTIVATION { st_e2 }
}

OPERATION sth IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE src1 = reg; INSTANCE base = reg;
            LABEL off; INSTANCE st_e2; }
  CODING { 0b011011 src1 base off=0bx[11] }
  SYNTAX { "STH " src1 ", " base ", " off }
  BEHAVIOR {
    st_g1 = pred;
    st_a1 = base + sext(off, 11);
    st_v1 = src1;
    st_h1 = 1;
  }
  ACTIVATION { st_e2 }
}

OPERATION st_e2 IN pipe.E2 {
  DECLARE { INSTANCE st_e3; }
  BEHAVIOR {
    st_g2 = st_g1;
    st_a2 = st_a1;
    st_v2 = st_v1;
    st_h2 = st_h1;
  }
  ACTIVATION { st_e3 }
}

OPERATION st_e3 IN pipe.E3 {
  BEHAVIOR {
    if (st_g2) {
      if (st_h2) {
        dmem[st_a2] = (dmem[st_a2] & ~0xFFFF) | zext(st_v2, 16);
      } else {
        dmem[st_a2] = st_v2;
      }
    }
  }
}

// ------------------------------------------------- program-memory access
// LDP/STP move whole instruction words between registers and pmem
// (overlay loaders, self-patching kernels). Modeled as single-cycle E1
// accesses: pmem has no load/store pipeline on this model, and a store
// into fetched code is the self-modifying-code hazard the write guards
// detect.

OPERATION ldp IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE base = reg; INSTANCE dst = reg;
            LABEL off; }
  CODING { 0b100000 dst base off=0bx[11] }
  SYNTAX { "LDP " base ", " off ", " dst }
  BEHAVIOR { if (pred) { dst = pmem[base + sext(off, 11)]; } }
}

OPERATION stp IN pipe.E1 {
  DECLARE { REFERENCE pred; INSTANCE src1 = reg; INSTANCE base = reg;
            LABEL off; }
  CODING { 0b100001 src1 base off=0bx[11] }
  SYNTAX { "STP " src1 ", " base ", " off }
  BEHAVIOR { if (pred) { pmem[base + sext(off, 11)] = src1; } }
}

// ----------------------------------------------------------------- control

// The branch resolves in DC, which yields exactly 5 delay slots with the
// oldest-first transition ordering (see DESIGN.md).
OPERATION b_op IN pipe.DC {
  DECLARE { REFERENCE pred; LABEL target; }
  CODING { 0b011100 target=0bx[21] }
  SYNTAX { "B " target }
  BEHAVIOR { if (pred) { PC = target; } }
}

OPERATION nop_op IN pipe.E1 {
  DECLARE { LABEL cnt; }
  CODING { 0b011101 cnt=0bx[4] 0b00000000000000000 }
  SYNTAX { "NOP " cnt }
  BEHAVIOR {
    if (cnt > 1) {
      stall(cnt - 1);
    }
  }
}

OPERATION halt_op IN pipe.E1 {
  CODING { 0b011110 0b000000000000000000000 }
  SYNTAX { "HALT" }
  BEHAVIOR { halt(); }
}

// ----------------------------------------------------------------- decode

OPERATION instruction {
  DECLARE {
    GROUP pred = { p_b0 || p_b0z || p_b1 || p_b1z || p_b2 || p_b2z ||
                   p_a1 || p_a1z || p_a2 || p_a2z || p_always };
    GROUP insn = { add || sub || mpy || and_op || or_op || xor_op || shl ||
                   shr || cmpeq || cmpgt || cmplt || sadd || ssub || min2 ||
                   max2 || mpyh || mv || absv || mvk || mvkh || addk ||
                   shli || shri || ldw || ldh || stw || sth || ldp || stp ||
                   b_op || nop_op || halt_op || smpy };
    LABEL p;
  }
  CODING { pred insn p=0bx[1] }
  SYNTAX { pred insn }
}
)LISA";

}  // namespace

std::string_view c62x_model_source() { return kC62x; }

}  // namespace lisasim::targets
