#include "targets/tinydsp.hpp"

namespace lisasim::targets {

namespace {

constexpr std::string_view kTinyDsp = R"LISA(
MODEL tinydsp;

RESOURCE {
  PROGRAM_COUNTER uint32 PC;
  REGISTER int32 R[16];
  MEMORY uint32 pmem[4096];
  MEMORY int32 dmem[4096];
  int32 ld_pipe;                     // EX -> WB pipeline register for loads
  PIPELINE pipe = { IF; ID; EX; WB };
}

FETCH {
  WORD 32;
  MEMORY pmem;
}

// ---------------------------------------------------------------- operands

OPERATION reg {
  DECLARE { LABEL idx; }
  CODING { idx=0bx[4] }
  SYNTAX { "R" idx }
  EXPRESSION { R[idx] }
}

// Paper Fig. 4 / Example 1: a mode field shared non-orthogonally by the
// arithmetic instructions (short/long operand arithmetic).
OPERATION short_mode {
  CODING { 0b0 }
  SYNTAX { ".S" }
}

OPERATION long_mode {
  CODING { 0b1 }
  SYNTAX { ".L" }
}

// ------------------------------------------------------------- arithmetic

OPERATION arith {
  DECLARE {
    GROUP aop = { add || sub || mul };
    GROUP mode = { short_mode || long_mode };
    LABEL rdst, rs1, rs2;
  }
  CODING { 0b01 aop mode rdst=0bx[4] rs1=0bx[4] rs2=0bx[4] 0b000000000000000 }
  SYNTAX { aop mode " R" rdst ", R" rs1 ", R" rs2 }
}

OPERATION add IN pipe.EX {
  DECLARE { REFERENCE mode; REFERENCE rdst; REFERENCE rs1; REFERENCE rs2; }
  CODING { 0b00 }
  SYNTAX { "ADD" }
  IF (mode == short_mode) {
    BEHAVIOR { R[rdst] = sext(sext(R[rs1], 16) + sext(R[rs2], 16), 16); }
  } ELSE {
    BEHAVIOR { R[rdst] = R[rs1] + R[rs2]; }
  }
}

OPERATION sub IN pipe.EX {
  DECLARE { REFERENCE mode; REFERENCE rdst; REFERENCE rs1; REFERENCE rs2; }
  CODING { 0b01 }
  SYNTAX { "SUB" }
  IF (mode == short_mode) {
    BEHAVIOR { R[rdst] = sext(sext(R[rs1], 16) - sext(R[rs2], 16), 16); }
  } ELSE {
    BEHAVIOR { R[rdst] = R[rs1] - R[rs2]; }
  }
}

OPERATION mul IN pipe.EX {
  DECLARE { REFERENCE mode; REFERENCE rdst; REFERENCE rs1; REFERENCE rs2; }
  CODING { 0b10 }
  SYNTAX { "MUL" }
  // Short multiply keeps the full 32-bit product of the 16-bit operands —
  // the classic DSP MAC building block.
  IF (mode == short_mode) {
    BEHAVIOR { R[rdst] = sext(R[rs1], 16) * sext(R[rs2], 16); }
  } ELSE {
    BEHAVIOR { R[rdst] = R[rs1] * R[rs2]; }
  }
}

// ---------------------------------------------------------- memory access

OPERATION ld IN pipe.EX {
  DECLARE { INSTANCE rd = reg; INSTANCE rs = reg; LABEL off;
            INSTANCE ld_wb; }
  CODING { 0b0010 rd rs off=0bx[16] 0b0000 }
  SYNTAX { "LD " rd ", " rs ", " off }
  BEHAVIOR { ld_pipe = dmem[rs + sext(off, 16)]; }
  ACTIVATION { ld_wb }
}

OPERATION ld_wb IN pipe.WB {
  DECLARE { REFERENCE rd; }
  BEHAVIOR { rd = ld_pipe; }
}

OPERATION st IN pipe.EX {
  DECLARE { INSTANCE rd = reg; INSTANCE rs = reg; LABEL off; }
  CODING { 0b0011 rd rs off=0bx[16] 0b0000 }
  SYNTAX { "ST " rd ", " rs ", " off }
  BEHAVIOR { dmem[rs + sext(off, 16)] = rd; }
}

// Program-memory access (overlay loaders, self-patching kernels). LDP/STP
// move whole instruction words between registers and pmem; a store into
// fetched code is the self-modifying-code hazard the write guards detect.

OPERATION ldp IN pipe.EX {
  DECLARE { INSTANCE rd = reg; INSTANCE rs = reg; LABEL off; }
  CODING { 0b1011 rd rs off=0bx[16] 0b0000 }
  SYNTAX { "LDP " rd ", " rs ", " off }
  BEHAVIOR { rd = pmem[rs + sext(off, 16)]; }
}

OPERATION stp IN pipe.EX {
  DECLARE { INSTANCE rd = reg; INSTANCE rs = reg; LABEL off; }
  CODING { 0b1100 rd rs off=0bx[16] 0b0000 }
  SYNTAX { "STP " rd ", " rs ", " off }
  BEHAVIOR { pmem[rs + sext(off, 16)] = rd; }
}

// ------------------------------------------------------- moves and control

OPERATION mvk IN pipe.EX {
  DECLARE { INSTANCE rd = reg; LABEL imm; }
  CODING { 0b1000 rd imm=0bx[16] 0b00000000 }
  SYNTAX { "MVK " imm ", " rd }
  BEHAVIOR { rd = sext(imm, 16); }
}

OPERATION br IN pipe.EX {
  DECLARE { LABEL target; }
  CODING { 0b1001 target=0bx[16] 0b000000000000 }
  SYNTAX { "B " target }
  BEHAVIOR {
    PC = target;
    flush();
  }
}

OPERATION brz IN pipe.EX {
  DECLARE { INSTANCE rs = reg; LABEL target; }
  CODING { 0b1010 rs target=0bx[16] 0b00000000 }
  SYNTAX { "BZ " rs ", " target }
  BEHAVIOR {
    if (rs == 0) {
      PC = target;
      flush();
    }
  }
}

OPERATION nop_op IN pipe.EX {
  DECLARE { LABEL cnt; }
  CODING { 0b0001 cnt=0bx[4] 0b000000000000000000000000 }
  SYNTAX { "NOP " cnt }
  BEHAVIOR {
    if (cnt > 1) {
      stall(cnt - 1);
    }
  }
}

OPERATION halt_op IN pipe.EX {
  CODING { 0b1111 0b0000000000000000000000000000 }
  SYNTAX { "HALT" }
  BEHAVIOR { halt(); }
}

// ----------------------------------------------------------------- decode

OPERATION instruction {
  DECLARE {
    GROUP insn = { arith || ld || st || ldp || stp || mvk || br || brz ||
                   nop_op || halt_op };
  }
  CODING { insn }
  SYNTAX { insn }
}
)LISA";

}  // namespace

std::string_view tinydsp_model_source() { return kTinyDsp; }

}  // namespace lisasim::targets
