// c54x: a TMS320C54x-class accumulator DSP model — the paper's §6
// comparison processor ("a custom compiled simulator for the less complex
// TMS320C54x (six-stage pipeline) [took] the same designer more than 12
// months"); modeling it here takes ~150 lines of description. Structure
// preserved (simplified encodings, see DESIGN.md):
//
//   * 6-stage pipeline PF F D A R X (prefetch..execute)
//   * two 40-bit accumulators A and B, a T multiplicand register,
//     eight auxiliary (address) registers AR0..AR7
//   * 16-bit instruction words, single issue
//   * MAC-oriented ISA with direct and AR-indirect addressing and the
//     classic BANZ decrement-and-branch loop instruction
//
// ISA (dst accumulator written as A or B):
//   LD @a, A      A <- dmem[a]          LDI imm, A    A <- sext(imm10)
//   ST A, @a      dmem[a] <- sat16(A)   LDT @a        T <- dmem[a]
//   ADD @a, A     A <- sat40(A + m)     SUB @a, A
//   MAC @a, A     A <- sat40(A + T*m)   SFTL A, k     A <<= k
//   LD *ARn, A    indirect load         MAC *ARn, A   indirect MAC
//   ST A, *ARn    indirect store
//   LDAR ARn, imm8    AR <- imm         MAR ARn, imm8  AR += sext(imm)
//   B a           branch (resolves in A: 3-cycle penalty)
//   BANZ a, ARn   if (ARn != 0) { ARn--; branch }  — the loop primitive
//   NOP           HALT
#pragma once

#include <string_view>

namespace lisasim::targets {

std::string_view c54x_model_source();

}  // namespace lisasim::targets
