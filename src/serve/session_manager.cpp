#include "serve/session_manager.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <utility>

#include "resilience/supervisor.hpp"
#include "serve/session_io.hpp"
#include "sim/cached_interp.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"
#include "support/thread_pool.hpp"

namespace lisasim {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// Type-erasing holder, serve edition. The supervisor's HolderSim is
/// private to resilience/supervisor.cpp on purpose (its construction is
/// entangled with fault budgets); the serve holder is the plain subset.
template <typename SimT>
class ServeSim final : public AnySim {
 public:
  template <typename... Args>
  explicit ServeSim(SimLevel level, Args&&... args)
      : sim_(std::forward<Args>(args)...), level_(level) {}

  void load(const LoadedProgram& program) override { sim_.load(program); }
  RunResult run(const RunLimits& limits) override { return sim_.run(limits); }
  EngineCheckpoint save_checkpoint() const override {
    return sim_.save_checkpoint();
  }
  void restore_checkpoint(const EngineCheckpoint& cp) override {
    sim_.restore_checkpoint(cp);
  }
  ProcessorState& state() override { return sim_.state(); }
  SimLevel level() const override { return level_; }

  SimT& sim() { return sim_; }

 private:
  SimT sim_;
  SimLevel level_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw SimError("serve-session: cannot open '" + path + "'",
                   SimErrorKind::kRecoverable);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad())
    throw SimError("serve-session: read error on '" + path + "'",
                   SimErrorKind::kRecoverable);
  return text;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out)
    throw SimError("serve-session: cannot write '" + path + "'");
}

void accumulate(RunResult& acc, const RunResult& delta) {
  acc.cycles += delta.cycles;
  acc.packets_retired += delta.packets_retired;
  acc.slots_retired += delta.slots_retired;
  acc.fetches += delta.fetches;
  acc.halted = delta.halted;
}

std::uint64_t elapsed_ns(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           since)
          .count());
}

std::uint64_t percentile_ns(std::vector<std::uint64_t> sorted, unsigned pct) {
  if (sorted.empty()) return 0;
  std::size_t index = sorted.size() * pct / 100;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace

std::unique_ptr<AnySim> make_session_sim(const Model& model, SimLevel level,
                                         GuardPolicy guard,
                                         SimTableCache* cache,
                                         bool native_blocking) {
  switch (level) {
    case SimLevel::kInterpretive:
      return std::make_unique<ServeSim<InterpSimulator>>(level, model);
    case SimLevel::kDecodeCached: {
      auto holder =
          std::make_unique<ServeSim<CachedInterpSimulator>>(level, model);
      holder->sim().set_guard_policy(guard);
      return holder;
    }
    case SimLevel::kCompiledDynamic:
    case SimLevel::kCompiledStatic:
    case SimLevel::kTrace:
    case SimLevel::kNative: {
      auto holder =
          std::make_unique<ServeSim<CompiledSimulator>>(level, model, level);
      holder->sim().set_guard_policy(guard);
      holder->sim().set_threads(1);  // sharding is the scheduler's job
      if (cache != nullptr) holder->sim().set_table_cache(cache);
      if (level == SimLevel::kNative && native_blocking) {
        NativeConfig config;
        config.blocking = true;
        holder->sim().set_native_config(config);
      }
      return holder;
    }
  }
  throw SimError("make_session_sim: unknown simulation level");
}

/// All mutable per-session fields. Ownership discipline: report-visible
/// fields (acc, outcome, counters, claim, the sim *pointer*) are written
/// only under the manager mutex; the simulator object itself is touched
/// only by the worker holding the session's claim, outside the lock —
/// claim transitions under the mutex provide the happens-before edge.
struct SessionManager::Session {
  enum class Claim : std::uint8_t { kIdle, kRunning, kEvicting };

  std::size_t id = 0;
  SessionSpec spec;

  Claim claim = Claim::kIdle;
  std::unique_ptr<AnySim> sim;  // resident iff non-null
  /// Deferred restore sources, consumed by ensure_resident: a parsed
  /// checkpoint (add_session_from_checkpoint) or a file to re-read (the
  /// eviction path re-reads its own file so every rehydration exercises
  /// the on-disk round trip — the cross-process format never rots).
  std::unique_ptr<SessionCheckpoint> pending_restore;
  std::string restore_path;

  RunResult acc;
  SessionOutcome outcome = SessionOutcome::kPending;
  bool recoverable = false;
  std::string error;
  std::string state_dump;
  std::uint64_t quanta = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
  std::uint64_t last_used = 0;  // manager tick of the latest claim
};

SessionManager::SessionManager(ServeConfig config) : cfg_(std::move(config)) {
  if (cfg_.quantum_cycles == 0) cfg_.quantum_cycles = 1;
  if (cfg_.max_resident > 0 && cfg_.evict_dir.empty())
    throw SimError("SessionManager: max_resident requires an evict_dir");
  if (cfg_.cache != nullptr) {
    cache_ = cfg_.cache;
  } else {
    owned_cache_ = std::make_unique<SimTableCache>(cfg_.cache_capacity);
    cache_ = owned_cache_.get();
  }
}

SessionManager::~SessionManager() = default;

SessionManager::Session& SessionManager::session_at(std::size_t id) {
  if (id >= sessions_.size())
    throw SimError("SessionManager: no session " + std::to_string(id));
  return *sessions_[id];
}

const SessionManager::Session& SessionManager::session_at(
    std::size_t id) const {
  if (id >= sessions_.size())
    throw SimError("SessionManager: no session " + std::to_string(id));
  return *sessions_[id];
}

std::size_t SessionManager::add_session(SessionSpec spec) {
  if (spec.model == nullptr || spec.program == nullptr)
    throw SimError("SessionManager: session needs a model and a program");
  std::lock_guard<std::mutex> lock(mutex_);
  auto session = std::make_unique<Session>();
  session->id = sessions_.size();
  if (spec.name.empty())
    spec.name = "session-" + std::to_string(session->id);
  session->spec = std::move(spec);
  sessions_.push_back(std::move(session));
  ++totals_.sessions;
  return sessions_.back()->id;
}

std::size_t SessionManager::add_session_from_checkpoint(
    SessionSpec spec, const std::string& checkpoint_path) {
  auto cp = std::make_unique<SessionCheckpoint>(
      parse_session_checkpoint(read_file(checkpoint_path)));
  if (spec.model == nullptr || spec.program == nullptr)
    throw SimError("SessionManager: session needs a model and a program");
  if (cp->target != spec.model->name)
    throw SimError("SessionManager: checkpoint target '" + cp->target +
                   "' does not match model '" + spec.model->name + "'");
  if (cp->level != spec.level)
    throw SimError(std::string("SessionManager: checkpoint level ") +
                   sim_level_token(cp->level) + " does not match spec level " +
                   sim_level_token(spec.level));
  if (cp->guard != spec.guard)
    throw SimError(std::string("SessionManager: checkpoint guard ") +
                   guard_policy_token(cp->guard) +
                   " does not match spec guard " +
                   guard_policy_token(spec.guard));
  if (spec.name.empty()) spec.name = cp->name;
  const std::size_t id = add_session(std::move(spec));
  std::lock_guard<std::mutex> lock(mutex_);
  Session& s = *sessions_[id];
  s.acc = cp->acc;
  s.quanta = cp->quanta;
  s.pending_restore = std::move(cp);
  return id;
}

void SessionManager::ensure_resident(Session& s) {
  if (s.sim) return;
  std::unique_ptr<AnySim> sim = make_session_sim(
      *s.spec.model, s.spec.level, s.spec.guard, cache_, cfg_.native_blocking);
  sim->load(*s.spec.program);
  std::unique_ptr<SessionCheckpoint> cp;
  bool rehydrated = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cp = std::move(s.pending_restore);
    if (!cp && !s.restore_path.empty()) {
      const std::string path = s.restore_path;
      lock.unlock();
      cp = std::make_unique<SessionCheckpoint>(
          parse_session_checkpoint(read_file(path)));
      rehydrated = true;
    }
  }
  if (cp) sim->restore_checkpoint(cp->engine);
  std::lock_guard<std::mutex> lock(mutex_);
  s.sim = std::move(sim);
  s.restore_path.clear();
  ++resident_;
  if (rehydrated) {
    ++s.rehydrations;
    ++totals_.rehydrations;
  }
}

void SessionManager::evict_locked(std::unique_lock<std::mutex>& lock,
                                  Session& victim) {
  victim.claim = Session::Claim::kEvicting;
  lock.unlock();
  try {
    SessionCheckpoint cp;
    cp.name = victim.spec.name;
    cp.target = victim.spec.model->name;
    cp.level = victim.spec.level;
    cp.guard = victim.spec.guard;
    cp.acc = victim.acc;  // stable: only the claim holder writes it
    cp.quanta = victim.quanta;
    cp.engine = victim.sim->save_checkpoint();
    fs::create_directories(cfg_.evict_dir);
    const std::string path =
        (fs::path(cfg_.evict_dir) /
         ("session-" + std::to_string(victim.id) + ".ckpt"))
            .string();
    write_file(path, serialize_session_checkpoint(cp));
    std::unique_ptr<AnySim> dead;
    lock.lock();
    dead = std::move(victim.sim);
    victim.restore_path = path;
    --resident_;
    ++victim.evictions;
    ++totals_.evictions;
    victim.claim = Session::Claim::kIdle;
    lock.unlock();
    dead.reset();  // simulator teardown (worker joins) outside the lock
    lock.lock();
  } catch (...) {
    // Serialize/write failed: the victim stays resident and healthy — it
    // must not be left claimed.
    if (!lock.owns_lock()) lock.lock();
    victim.claim = Session::Claim::kIdle;
    throw;
  }
}

void SessionManager::make_room_locked(std::unique_lock<std::mutex>& lock) {
  std::uint64_t failed_before = 0;  // sessions skipped this call, by tick
  while (cfg_.max_resident > 0 && resident_ + 1 > cfg_.max_resident) {
    Session* victim = nullptr;
    for (const std::unique_ptr<Session>& up : sessions_) {
      Session& candidate = *up;
      if (!candidate.sim || candidate.claim != Session::Claim::kIdle) continue;
      if (candidate.outcome != SessionOutcome::kPending) continue;
      if (failed_before > 0 && candidate.last_used < failed_before) continue;
      if (victim == nullptr || candidate.last_used < victim->last_used)
        victim = &candidate;
    }
    // Every resident session is mid-quantum or mid-eviction: proceed over
    // the (soft) cap rather than deadlock waiting on peers that may be
    // waiting on us.
    if (victim == nullptr) return;
    try {
      evict_locked(lock, *victim);
    } catch (...) {
      // Eviction failing (disk full, unwritable dir) must not error the
      // *current* — innocent — session. Record the failure, skip this
      // victim (and everything at least as stale — same dir, same fate)
      // and try a fresher candidate before running over the soft cap.
      if (!lock.owns_lock()) lock.lock();
      ++totals_.evict_failures;
      failed_before = victim->last_used + 1;
    }
  }
}

void SessionManager::retire(Session& s) {
  std::string dump;
  if (s.sim && (s.outcome != SessionOutcome::kError || s.recoverable))
    dump = s.sim->state().dump_nonzero();
  std::unique_ptr<AnySim> dead;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.state_dump = std::move(dump);
    if (s.sim) {
      dead = std::move(s.sim);
      --resident_;
    }
    if (s.outcome == SessionOutcome::kError)
      ++totals_.errors;
    else
      ++totals_.finished;
  }
  dead.reset();
}

bool SessionManager::run_one_quantum(Session& s) {
  try {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!s.sim) make_room_locked(lock);
    }
    ensure_resident(s);

    const RunLimits& limits = s.spec.limits;
    const std::uint64_t pos = s.acc.cycles;
    std::uint64_t remaining = cfg_.quantum_cycles;
    if (limits.max_cycles != UINT64_MAX) {
      if (limits.max_cycles <= pos) {
        std::lock_guard<std::mutex> lock(mutex_);
        s.outcome = SessionOutcome::kLimit;
        return false;  // caller retires
      }
      remaining = std::min(remaining, limits.max_cycles - pos);
    }
    RunLimits quantum;
    quantum.max_cycles = remaining;
    // Rebase the absolute watchdog into this quantum so it fires at the
    // same absolute cycle a standalone run() would. The stuck limit passes
    // through untranslated: streaks reset at quantum boundaries, so a
    // stuck stop can fire up to one quantum later than standalone (same
    // caveat as the resilience supervisor).
    if (limits.watchdog_cycles > 0)
      quantum.watchdog_cycles =
          limits.watchdog_cycles > pos ? limits.watchdog_cycles - pos : 1;
    quantum.max_stuck_cycles = limits.max_stuck_cycles;

    const Clock::time_point start = Clock::now();
    const RunResult delta = s.sim->run(quantum);
    const std::uint64_t ns = elapsed_ns(start);

    std::lock_guard<std::mutex> lock(mutex_);
    accumulate(s.acc, delta);
    ++s.quanta;
    ++totals_.quanta;
    totals_.total_cycles += delta.cycles;
    totals_.total_slots += delta.slots_retired;
    step_ns_.push_back(ns);
    if (s.acc.halted) {
      s.outcome = SessionOutcome::kHalted;
      return false;
    }
    if (limits.max_cycles != UINT64_MAX && s.acc.cycles >= limits.max_cycles) {
      s.outcome = SessionOutcome::kLimit;
      return false;
    }
    return true;
  } catch (const SimError& e) {
    std::string dump;
    if (e.recoverable() && s.sim) dump = s.sim->state().dump_nonzero();
    std::lock_guard<std::mutex> lock(mutex_);
    s.outcome = SessionOutcome::kError;
    s.recoverable = e.recoverable();
    s.error = e.what();
    s.state_dump = std::move(dump);
    return false;
  } catch (const std::exception& e) {
    // Filesystem and other non-simulation failures: a worker task must
    // never let an exception reach the pool (std::terminate).
    std::lock_guard<std::mutex> lock(mutex_);
    s.outcome = SessionOutcome::kError;
    s.recoverable = false;
    s.error = e.what();
    return false;
  }
}

void SessionManager::run_all() {
  std::vector<std::size_t> runnable;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<Session>& s : sessions_)
      if (s->outcome == SessionOutcome::kPending) runnable.push_back(s->id);
  }
  if (runnable.empty()) return;

  const Clock::time_point start = Clock::now();
  ThreadPool pool(cfg_.threads);

  // The pool's FIFO queue is the run queue: one task = one quantum, and a
  // session that wants more requeues itself behind every other runnable
  // session — round-robin fairness for free. `schedule` stays alive until
  // wait_idle() proves the last task (and thus the last capture of it)
  // has finished.
  std::function<void(std::size_t)> schedule = [&](std::size_t id) {
    pool.submit([this, &schedule, id] {
      Session& s = *sessions_[id];
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (s.outcome != SessionOutcome::kPending) return;
        if (s.claim != Session::Claim::kIdle) {
          // Mid-eviction (another worker's make_room chose us): requeue
          // behind the queue rather than block a worker.
          schedule(id);
          return;
        }
        s.claim = Session::Claim::kRunning;
        s.last_used = ++tick_;
      }
      const bool more = run_one_quantum(s);
      // Retire *before* dropping the claim: the claim is what excludes a
      // concurrent make_room from touching this session's simulator.
      if (!more) retire(s);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        s.claim = Session::Claim::kIdle;
      }
      if (more) schedule(id);
    });
  };
  for (std::size_t id : runnable) schedule(id);
  pool.wait_idle();

  std::lock_guard<std::mutex> lock(mutex_);
  totals_.wall_ns += elapsed_ns(start);
}

std::size_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

SessionReport SessionManager::report_locked(const Session& s) const {
  SessionReport r;
  r.name = s.spec.name;
  r.level = s.spec.level;
  r.guard = s.spec.guard;
  r.outcome = s.outcome;
  r.result = s.acc;
  r.recoverable = s.recoverable;
  r.error = s.error;
  r.state_dump = s.state_dump;
  r.quanta = s.quanta;
  r.evictions = s.evictions;
  r.rehydrations = s.rehydrations;
  return r;
}

SessionReport SessionManager::report(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return report_locked(session_at(id));
}

std::vector<SessionReport> SessionManager::reports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionReport> out;
  out.reserve(sessions_.size());
  for (const std::unique_ptr<Session>& s : sessions_)
    out.push_back(report_locked(*s));
  return out;
}

ServeMetrics SessionManager::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeMetrics m = totals_;
  std::vector<std::uint64_t> sorted = step_ns_;
  std::sort(sorted.begin(), sorted.end());
  m.p50_step_ns = percentile_ns(sorted, 50);
  m.p99_step_ns = percentile_ns(sorted, 99);
  return m;
}

RunResult SessionManager::run_session(std::size_t id,
                                      std::uint64_t max_cycles) {
  Session& s = session_at(id);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (s.outcome != SessionOutcome::kPending) return RunResult{};
    if (s.claim != Session::Claim::kIdle)
      throw SimError("SessionManager: session " + std::to_string(id) +
                     " is busy");
    s.claim = Session::Claim::kRunning;
    s.last_used = ++tick_;
  }
  const RunResult before = s.acc;
  const std::uint64_t saved_quantum = cfg_.quantum_cycles;
  // Borrow the quantum machinery with the caller's budget. cfg_ is only
  // read by quantum runners, all of which are excluded here (interactive
  // seams must not race run_all — documented in the header).
  cfg_.quantum_cycles = max_cycles == 0 ? 1 : max_cycles;
  const bool more = run_one_quantum(s);
  cfg_.quantum_cycles = saved_quantum;
  if (!more) retire(s);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.claim = Session::Claim::kIdle;
  }
  RunResult delta;
  std::lock_guard<std::mutex> lock(mutex_);
  delta.cycles = s.acc.cycles - before.cycles;
  delta.packets_retired = s.acc.packets_retired - before.packets_retired;
  delta.slots_retired = s.acc.slots_retired - before.slots_retired;
  delta.fetches = s.acc.fetches - before.fetches;
  delta.halted = s.acc.halted;
  return delta;
}

std::string SessionManager::session_state(std::size_t id) {
  Session& s = session_at(id);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!s.sim && s.outcome != SessionOutcome::kPending) return s.state_dump;
  }
  ensure_resident(s);
  return s.sim->state().dump_nonzero();
}

void SessionManager::checkpoint_session(std::size_t id,
                                        const std::string& path) {
  Session& s = session_at(id);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!s.sim && s.outcome != SessionOutcome::kPending &&
        s.restore_path.empty() && !s.pending_restore)
      throw SimError("SessionManager: session " + std::to_string(id) +
                         " already retired and torn down",
                     SimErrorKind::kRecoverable);
  }
  ensure_resident(s);
  SessionCheckpoint cp;
  cp.name = s.spec.name;
  cp.target = s.spec.model->name;
  cp.level = s.spec.level;
  cp.guard = s.spec.guard;
  cp.acc = s.acc;
  cp.quanta = s.quanta;
  cp.engine = s.sim->save_checkpoint();
  write_file(path, serialize_session_checkpoint(cp));
}

void SessionManager::restore_session(std::size_t id, const std::string& path) {
  Session& s = session_at(id);
  auto cp = std::make_unique<SessionCheckpoint>(
      parse_session_checkpoint(read_file(path)));
  if (cp->target != s.spec.model->name || cp->level != s.spec.level ||
      cp->guard != s.spec.guard)
    throw SimError(
        "SessionManager: checkpoint identity does not match session " +
        std::to_string(id));
  if (s.sim) s.sim->restore_checkpoint(cp->engine);
  std::lock_guard<std::mutex> lock(mutex_);
  // Un-retiring rolls the aggregate outcome counters back so a restored-
  // then-finished session is not double-counted.
  if (s.outcome == SessionOutcome::kError)
    --totals_.errors;
  else if (s.outcome != SessionOutcome::kPending)
    --totals_.finished;
  s.acc = cp->acc;
  s.quanta = cp->quanta;
  s.outcome = SessionOutcome::kPending;
  s.recoverable = false;
  s.error.clear();
  s.state_dump.clear();
  if (!s.sim) {
    s.pending_restore = std::move(cp);
    s.restore_path.clear();
  }
}

void SessionManager::evict_session(std::size_t id) {
  Session& s = session_at(id);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!s.sim || s.claim != Session::Claim::kIdle) return;
  if (cfg_.evict_dir.empty())
    throw SimError("SessionManager: evict_session needs an evict_dir");
  evict_locked(lock, s);
}

}  // namespace lisasim
