// Text serialization of SessionCheckpoint — the serve layer's eviction/
// rehydration and cross-process hand-off format. A session checkpoint is
// a small line-oriented header (identity + accumulated counters) wrapping
// the standard "lisasim-checkpoint 1" engine block, so a session evicted
// mid-flight in one process can be restored into a freshly constructed
// manager — or a fresh process — and finish bit-identically.
#pragma once

#include <string>
#include <string_view>

#include "serve/session.hpp"

namespace lisasim {

/// Render `cp` as a self-contained text block (header
/// "lisasim-serve-session 1"). Deterministic: equal checkpoints serialize
/// to equal text.
std::string serialize_session_checkpoint(const SessionCheckpoint& cp);

/// Parse text produced by serialize_session_checkpoint. Throws SimError
/// (fatal) on any malformed or truncated input.
SessionCheckpoint parse_session_checkpoint(std::string_view text);

/// CLI-style spelling helpers shared by the serve CLI, job files and the
/// checkpoint format: "interp|cached|dynamic|static|trace|native" and
/// "off|recompile|fallback". Return false on an unknown spelling.
bool parse_sim_level_token(std::string_view token, SimLevel& out);
bool parse_guard_policy_token(std::string_view token, GuardPolicy& out);
const char* sim_level_token(SimLevel level);
const char* guard_policy_token(GuardPolicy policy);

}  // namespace lisasim
