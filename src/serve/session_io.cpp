#include "serve/session_io.hpp"

#include <charconv>
#include <string>

#include "model/model.hpp"
#include "sim/checkpoint_io.hpp"

namespace lisasim {

namespace {

constexpr std::string_view kHeader = "lisasim-serve-session 1";

/// Session-checkpoint input is untrusted (eviction files, cross-process
/// hand-offs): malformed text is a *recoverable* condition — parsing
/// happens before any session state is touched, so the caller may discard
/// the file and keep serving.
[[noreturn]] void fail(const std::string& message) {
  throw SimError("serve-session: " + message, SimErrorKind::kRecoverable);
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char c = s[++i];
      out += c == 'n' ? '\n' : c == 'r' ? '\r' : c;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Line reader over the header section. Each header line is
/// "<keyword> <rest>"; the engine block that follows is length-prefixed,
/// so the reader never has to guess where untrusted text ends.
class Lines {
 public:
  explicit Lines(std::string_view text) : text_(text) {}

  std::string_view next_line() {
    if (pos_ >= text_.size()) fail("truncated input");
    const std::size_t nl = text_.find('\n', pos_);
    const std::size_t end = nl == std::string_view::npos ? text_.size() : nl;
    std::string_view line = text_.substr(pos_, end - pos_);
    pos_ = end + 1;
    return line;
  }

  /// Rest of line after "<keyword> "; the keyword mismatch message names
  /// what was expected so truncated files diagnose themselves.
  std::string_view field(std::string_view keyword) {
    std::string_view line = next_line();
    if (line.size() < keyword.size() ||
        line.substr(0, keyword.size()) != keyword ||
        (line.size() > keyword.size() && line[keyword.size()] != ' '))
      fail("expected '" + std::string(keyword) + "' line, got '" +
           std::string(line.substr(0, 32)) + "'");
    return line.size() > keyword.size() ? line.substr(keyword.size() + 1)
                                        : std::string_view{};
  }

  std::string_view rest() const { return text_.substr(pos_); }
  std::size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::uint64_t parse_u64(std::string_view token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    fail("bad " + std::string(what) + " value '" + std::string(token) + "'");
  return value;
}

std::string_view next_token(std::string_view& rest, const char* what) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (rest.empty()) fail("missing " + std::string(what));
  std::size_t end = rest.find(' ');
  if (end == std::string_view::npos) end = rest.size();
  std::string_view token = rest.substr(0, end);
  rest.remove_prefix(end);
  return token;
}

}  // namespace

bool parse_sim_level_token(std::string_view token, SimLevel& out) {
  if (token == "interp") out = SimLevel::kInterpretive;
  else if (token == "cached") out = SimLevel::kDecodeCached;
  else if (token == "dynamic") out = SimLevel::kCompiledDynamic;
  else if (token == "static") out = SimLevel::kCompiledStatic;
  else if (token == "trace") out = SimLevel::kTrace;
  else if (token == "native") out = SimLevel::kNative;
  else return false;
  return true;
}

const char* sim_level_token(SimLevel level) {
  switch (level) {
    case SimLevel::kInterpretive: return "interp";
    case SimLevel::kDecodeCached: return "cached";
    case SimLevel::kCompiledDynamic: return "dynamic";
    case SimLevel::kCompiledStatic: return "static";
    case SimLevel::kTrace: return "trace";
    case SimLevel::kNative: return "native";
  }
  return "?";
}

bool parse_guard_policy_token(std::string_view token, GuardPolicy& out) {
  if (token == "off") out = GuardPolicy::kOff;
  else if (token == "recompile") out = GuardPolicy::kRecompile;
  else if (token == "fallback") out = GuardPolicy::kFallback;
  else return false;
  return true;
}

const char* guard_policy_token(GuardPolicy policy) {
  switch (policy) {
    case GuardPolicy::kOff: return "off";
    case GuardPolicy::kRecompile: return "recompile";
    case GuardPolicy::kFallback: return "fallback";
  }
  return "?";
}

std::string serialize_session_checkpoint(const SessionCheckpoint& cp) {
  const std::string engine = serialize_checkpoint(cp.engine);
  std::string out;
  out.reserve(engine.size() + 256);
  out += kHeader;
  out += "\nname ";
  append_escaped(out, cp.name);
  out += "\ntarget ";
  append_escaped(out, cp.target);
  out += "\nlevel ";
  out += sim_level_token(cp.level);
  out += "\nguard ";
  out += guard_policy_token(cp.guard);
  out += "\nresult " + std::to_string(cp.acc.cycles) + ' ' +
         std::to_string(cp.acc.packets_retired) + ' ' +
         std::to_string(cp.acc.slots_retired) + ' ' +
         std::to_string(cp.acc.fetches) + ' ' +
         (cp.acc.halted ? "1" : "0");
  out += "\nquanta " + std::to_string(cp.quanta);
  // Length-prefixed engine block: exact truncation detection, and the
  // parser hands parse_checkpoint a precisely bounded slice.
  out += "\nengine " + std::to_string(engine.size()) + '\n';
  out += engine;
  return out;
}

SessionCheckpoint parse_session_checkpoint(std::string_view text) {
  Lines lines(text);
  if (lines.next_line() != kHeader) fail("bad header (want '" +
                                         std::string(kHeader) + "')");
  SessionCheckpoint cp;
  cp.name = unescape(lines.field("name"));
  cp.target = unescape(lines.field("target"));
  if (!parse_sim_level_token(lines.field("level"), cp.level))
    fail("unknown level");
  if (!parse_guard_policy_token(lines.field("guard"), cp.guard))
    fail("unknown guard policy");
  std::string_view result = lines.field("result");
  cp.acc.cycles = parse_u64(next_token(result, "cycles"), "cycles");
  cp.acc.packets_retired = parse_u64(next_token(result, "packets"), "packets");
  cp.acc.slots_retired = parse_u64(next_token(result, "slots"), "slots");
  cp.acc.fetches = parse_u64(next_token(result, "fetches"), "fetches");
  cp.acc.halted = parse_u64(next_token(result, "halted"), "halted") != 0;
  cp.quanta = parse_u64(lines.field("quanta"), "quanta");
  const std::uint64_t engine_bytes =
      parse_u64(lines.field("engine"), "engine byte count");
  std::string_view engine = lines.rest();
  if (engine.size() < engine_bytes) fail("truncated engine block");
  cp.engine = parse_checkpoint(engine.substr(0, engine_bytes));
  return cp;
}

}  // namespace lisasim
