// Simulation-as-a-service: SessionManager multiplexes N independent
// simulation sessions over one support::ThreadPool with run-quantum
// scheduling (docs/INTERNALS.md §5.11).
//
// Scheduling: each scheduled task runs one session for a bounded quantum
// (ServeConfig::quantum_cycles, rebased into the session's own RunLimits)
// and then *resubmits the session to the pool* — the pool's FIFO queue is
// the run queue, so K runnable sessions interleave round-robin on W
// workers regardless of their relative lengths. One session is never run
// by two workers at once (a per-session claim), but any worker may run
// any session — sessions own no thread.
//
// Sharing: all sessions compile through one SimTableCache, whose
// single-flight election (sim/table_cache.hpp) makes K concurrent
// sessions of the same (model, program, level) cost exactly one
// simulation-compiler run; the kNative tier's process-wide module
// registry (sim/native.hpp) does the same for dlopen'd artifacts. Mutable
// state — ProcessorState, guard generations, trace budgets — is strictly
// per-session.
//
// Eviction: when ServeConfig::max_resident binds, the least-recently-run
// idle session is serialized (serve/session_io.hpp) to evict_dir and its
// simulator destroyed; its next quantum rehydrates it — rebuilding the
// simulator through the shared cache and restoring the engine checkpoint
// — and continues bit-identically. The same format serves cross-process
// hand-off via checkpoint_session/add_session_from_checkpoint.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/session.hpp"
#include "sim/table_cache.hpp"

namespace lisasim {

class AnySim;

/// Build the simulator for one session: the serve-side analogue of
/// make_supervised_sim (resilience/supervisor.hpp), constructing the
/// right engine for `level` wired to the shared `cache` and `guard`.
/// kNative sessions honor `native_blocking` (deterministic installs).
std::unique_ptr<AnySim> make_session_sim(const Model& model, SimLevel level,
                                         GuardPolicy guard,
                                         SimTableCache* cache,
                                         bool native_blocking);

class SessionManager {
 public:
  explicit SessionManager(ServeConfig config = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Register a session; returns its id (dense, starting at 0). The
  /// simulator is built lazily on the session's first quantum — so
  /// registration is cheap and compile coalescing happens under the
  /// scheduler, where it is actually contended. Not callable while
  /// run_all() is in flight.
  std::size_t add_session(SessionSpec spec);

  /// Register a session resuming from a serialized session checkpoint
  /// (file produced by checkpoint_session or a prior manager's eviction —
  /// possibly in another process). The checkpoint's target/level/guard
  /// must match `spec`; accumulated counters carry over, so the final
  /// report equals an uninterrupted run's. Throws SimError on mismatch or
  /// malformed input.
  std::size_t add_session_from_checkpoint(SessionSpec spec,
                                          const std::string& checkpoint_path);

  /// Drive every unfinished session to retirement (halt, whole-session
  /// limit, or error) under run-quantum scheduling. Session errors land in
  /// reports, not exceptions; run_all itself throws only on scheduler
  /// bugs. Callable repeatedly (later calls pick up sessions added since).
  void run_all();

  std::size_t session_count() const;
  SessionReport report(std::size_t id) const;
  std::vector<SessionReport> reports() const;
  ServeMetrics metrics() const;
  SimTableCache& cache() { return *cache_; }

  // -- Interactive seams (lisasim-serve's REPL; not thread-safe against a
  //    concurrent run_all) --

  /// Run one session inline for up to `max_cycles` more cycles (its spec
  /// limits still apply). Returns this call's delta result; a no-op {} if
  /// the session already retired.
  RunResult run_session(std::size_t id, std::uint64_t max_cycles);
  /// dump_nonzero() of the session's current architectural state
  /// (rehydrates an evicted session to produce it).
  std::string session_state(std::size_t id);
  /// Serialize the session to `path` (supported mid-flight and after
  /// retirement as long as the simulator is still resident).
  void checkpoint_session(std::size_t id, const std::string& path);
  /// Replace the session's state from a checkpoint file (target/level/
  /// guard cross-checked against its spec).
  void restore_session(std::size_t id, const std::string& path);
  /// Checkpoint to the evict dir and destroy the simulator now (the LRU
  /// path, forced). No-op if not resident.
  void evict_session(std::size_t id);

 private:
  struct Session;

  Session& session_at(std::size_t id);
  const Session& session_at(std::size_t id) const;
  /// Build/rebuild the session's simulator (through the shared cache) and,
  /// if it has an eviction checkpoint, restore and consume it. Caller
  /// must hold the session's claim; runs unlocked.
  void ensure_resident(Session& s);
  /// Evict LRU idle resident sessions until the resident count fits
  /// `max_resident` again (called with the manager lock; unlocks to
  /// serialize). Soft: gives up rather than deadlock when every candidate
  /// is claimed.
  void make_room_locked(std::unique_lock<std::mutex>& lock);
  void evict_locked(std::unique_lock<std::mutex>& lock, Session& victim);
  /// Run one quantum of `s` (claim already held): ensure residency, run,
  /// accumulate, retire or mark runnable again. Returns true while the
  /// session wants more quanta.
  bool run_one_quantum(Session& s);
  void retire(Session& s);
  SessionReport report_locked(const Session& s) const;
  void restore_from_checkpoint(Session& s, const SessionCheckpoint& cp);

  ServeConfig cfg_;
  std::unique_ptr<SimTableCache> owned_cache_;
  SimTableCache* cache_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::size_t resident_ = 0;
  std::uint64_t tick_ = 0;  // LRU clock: bumped per quantum
  ServeMetrics totals_;     // counters only; percentiles derived on demand
  std::vector<std::uint64_t> step_ns_;  // per-quantum sim->run() wall times
};

}  // namespace lisasim
