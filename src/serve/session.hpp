// Simulation-as-a-service session types: the specs, reports and metrics
// exchanged with the SessionManager (serve/session_manager.hpp). A session
// is one program run at one simulation level under one guard policy; the
// manager multiplexes many of them over a worker pool in run-quantum
// slices, sharing the immutable compiled artifacts (SimTable objects,
// native modules) across every session of the same (model, program).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "asm/program.hpp"
#include "model/model.hpp"
#include "sim/checkpoint.hpp"
#include "sim/guard.hpp"
#include "sim/result.hpp"

namespace lisasim {

/// One simulation job handed to SessionManager::add_session. The program
/// is shared (not copied) because N sessions of one program is the
/// service's dominant pattern; the model must outlive the manager.
struct SessionSpec {
  std::string name;  // report label; "" = auto "session-<id>"
  const Model* model = nullptr;
  std::shared_ptr<const LoadedProgram> program;
  SimLevel level = SimLevel::kCompiledStatic;
  GuardPolicy guard = GuardPolicy::kOff;
  /// Whole-session limits. max_cycles is the total budget across all
  /// quanta (soft stop); watchdog_cycles is an absolute cycle ceiling
  /// (recoverable error), rebased into each quantum so it fires at the
  /// same absolute cycle as a standalone run. max_stuck_cycles passes
  /// through per-quantum: streaks reset at quantum boundaries, so a stuck
  /// stop may fire up to one quantum later than standalone (the same
  /// documented caveat as the resilience supervisor).
  RunLimits limits;
};

/// Where a session ended up. kPending also covers "still running" while
/// run_all is in flight; after run_all returns it means the whole-session
/// max_cycles budget was spent without halting (the kLimit outcome) —
/// kLimit is reported explicitly so callers never have to infer it.
enum class SessionOutcome : std::uint8_t {
  kPending,  // not yet scheduled / still in flight
  kHalted,   // program executed halt()
  kLimit,    // whole-session max_cycles budget exhausted
  kError,    // SimError (recoverable: watchdog/stuck stop; or fatal)
};

inline const char* session_outcome_name(SessionOutcome outcome) {
  switch (outcome) {
    case SessionOutcome::kPending: return "pending";
    case SessionOutcome::kHalted: return "halted";
    case SessionOutcome::kLimit: return "limit";
    case SessionOutcome::kError: return "error";
  }
  return "?";
}

/// Per-session result snapshot. `result` accumulates across quanta and —
/// for halted/limit outcomes — is bit-identical to the RunResult one
/// standalone run() with the same RunLimits would have returned (the
/// serve contract test_serve.cpp pins).
struct SessionReport {
  std::string name;
  SimLevel level = SimLevel::kCompiledStatic;
  GuardPolicy guard = GuardPolicy::kOff;
  SessionOutcome outcome = SessionOutcome::kPending;
  RunResult result;
  bool recoverable = false;   // outcome == kError: was the SimError recoverable?
  std::string error;          // outcome == kError: the SimError text
  std::string state_dump;     // dump_nonzero() at retirement ("" if fatal)
  std::uint64_t quanta = 0;   // scheduler slices this session consumed
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
};

/// Scheduler configuration.
struct ServeConfig {
  /// Worker threads driving quanta (0 = hardware concurrency).
  unsigned threads = 0;
  /// Cycles granted per scheduler slice. Smaller = fairer + more overhead.
  std::uint64_t quantum_cycles = std::uint64_t{1} << 14;
  /// Max sessions with live simulator state at once; 0 = unbounded. When
  /// the cap binds, the least-recently-run idle session is checkpointed to
  /// `evict_dir` and torn down, then rehydrated on its next quantum. The
  /// cap is soft: with every idle resident claimed by concurrent evictors
  /// a quantum proceeds over-cap rather than deadlock.
  std::size_t max_resident = 0;
  /// Directory evicted session checkpoints land in (created on demand).
  /// Required when max_resident > 0.
  std::string evict_dir;
  /// Shared table cache. nullptr = the manager owns a private cache of
  /// `cache_capacity` tables. Either way every session compiles through
  /// it, so K sessions of one (model, program, level) cost one compile.
  class SimTableCache* cache = nullptr;
  std::size_t cache_capacity = 64;
  /// Run kNative sessions with blocking compiles (deterministic dispatch
  /// for tests/benches; the service default is the async engine).
  bool native_blocking = false;
};

/// Aggregate scheduler counters. Latency percentiles are over individual
/// quantum step times (sim->run() wall time), the serve bench's p50/p99.
struct ServeMetrics {
  std::uint64_t sessions = 0;
  std::uint64_t finished = 0;  // halted or limit
  std::uint64_t errors = 0;
  std::uint64_t quanta = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
  /// Eviction attempts that failed (serialize/write error) and ran
  /// over-cap instead. Nonzero means the resident cap is not being
  /// honored — check evict_dir health.
  std::uint64_t evict_failures = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_slots = 0;
  std::uint64_t wall_ns = 0;  // cumulative run_all() wall time
  std::uint64_t p50_step_ns = 0;
  std::uint64_t p99_step_ns = 0;
};

/// Portable snapshot of a mid-flight session: identity + accumulated
/// counters wrapped around the engine checkpoint. Written on eviction and
/// by checkpoint_session; serve/session_io.hpp defines the text format.
struct SessionCheckpoint {
  std::string name;
  std::string target;  // model name, cross-checked on restore
  SimLevel level = SimLevel::kCompiledStatic;
  GuardPolicy guard = GuardPolicy::kOff;
  RunResult acc;            // counters accumulated before the snapshot
  std::uint64_t quanta = 0;
  EngineCheckpoint engine;
};

}  // namespace lisasim
