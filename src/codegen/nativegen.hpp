// Native AOT region generation: lowers micro-op regions (static
// simulation-table spans and hot-trace superblock bodies) to straight-line
// C++ functions behind the C ABI of codegen/native_abi.hpp. The emitted
// source embeds the cppgen simulator prelude (CppGenOptions::emit_main =
// false) for the wrapping-arithmetic helpers, bakes resource offsets,
// canonicalization widths and pool constants into the code, and reports
// faults (zero divisors, out-of-bounds element indices) through fault-table
// returns instead of exceptions — the host re-raises them through its
// normal SimError paths, so error behavior is bit-identical to the
// micro-op core (tests/test_native.cpp verifies this differentially).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "behavior/microops.hpp"
#include "model/model.hpp"

namespace lisasim {

/// One micro-op region to lower. Regions are snapshots: the runtime copies
/// ops and pool out of the live arenas before handing them to the compile
/// worker, because arenas may grow (and reallocate) while the engine keeps
/// running.
struct NativeRegionSpec {
  std::uint64_t key = 0;      // micro-arena offset: the dispatch key
  std::uint32_t kind = 0;     // 0 = static table span, 1 = trace body
  std::int32_t num_temps = 0;
  std::vector<MicroOp> ops;
  std::vector<std::int64_t> pool;  // owning arena's constant pool
};

struct NativeGenInput {
  const Model* model = nullptr;
  const LoadedProgram* program = nullptr;
  std::uint64_t model_hash = 0;
  std::uint64_t program_hash = 0;
  std::vector<NativeRegionSpec> regions;
};

/// Deterministic hash of everything that shapes the generated source:
/// ABI version, model/program hashes, and every region's ops (with pool
/// constants resolved to values). This keys the on-disk `.so` artifact —
/// equal hash means the cached artifact is byte-compatible with what a
/// fresh compile would produce for these regions.
std::uint64_t native_content_hash(const NativeGenInput& input);

/// Generate the complete C++ source of a native artifact. Throws SimError
/// when the embedded cppgen prelude cannot be generated for this program
/// (the caller falls back to the trace tier).
std::string generate_native_source(const NativeGenInput& input);

}  // namespace lisasim
