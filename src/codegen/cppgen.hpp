// C++ code generation: emits a standalone, dependency-free C++17 source
// file implementing the compiled simulator for one (model, program) pair —
// the paper's Fig. 5 output ("the simulation compiler generator ...
// produces source code in C++"). The emitted simulator contains:
//
//   * a State struct with all model resources (canonicalizing stores),
//   * one function per non-empty (table row, pipeline stage) cell holding
//     the fully specialized behavior of that cell,
//   * the simulation table as a constant array of function-pointer rows,
//   * the same fused pipeline sweep as src/sim/engine.hpp,
//   * a main() that runs to halt and prints the cycle count and all
//     non-zero state in the library's dump_nonzero() format,
//
// so `c++ -O2 generated.cpp && ./a.out` reproduces the library simulation
// exactly — cycle count and final state (verified by tests).
#pragma once

#include <string>

#include "asm/program.hpp"
#include "model/model.hpp"

namespace lisasim {

struct CppGenOptions {
  std::uint64_t max_cycles = 100'000'000;
  bool emit_main = true;  // false: only State/table/run() (embedding)
};

/// Generate the simulator source. Throws SimError on programs the
/// simulation compiler cannot translate (non-decode-static conditionals).
std::string generate_cpp_simulator(const Model& model,
                                   const LoadedProgram& program,
                                   const CppGenOptions& options = {});

}  // namespace lisasim
