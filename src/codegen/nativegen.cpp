#include "codegen/nativegen.hpp"

#include <set>
#include <sstream>
#include <string>

#include "codegen/cppgen.hpp"
#include "codegen/native_abi.hpp"

namespace lisasim {
namespace {

// Same FNV-1a as sim/table_cache.cpp; kept local so codegen does not
// depend on the sim layer (the dependency runs the other way).
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

/// A decimal int64 literal that is valid C++ even for INT64_MIN (whose
/// positive magnitude does not fit the pre-negation literal).
std::string lit64(std::int64_t v) {
  if (v == INT64_MIN) return "(-INT64_C(9223372036854775807) - 1)";
  return "INT64_C(" + std::to_string(v) + ")";
}

std::string lit_u64(std::uint64_t v) {
  return "UINT64_C(" + std::to_string(v) + ")";
}

struct FaultRec {
  int kind = 0;  // 0 div0, 1 rem0, 2 oob read, 3 oob write
  std::int32_t res = -1;
};

/// Per-model layout facts the emitter bakes into generated code. Offsets
/// are recomputed from resource declaration order — the same running sum
/// ProcessorState uses — and cross-checked at .so load via the entry
/// table's state_elements.
class RegionEmitter {
 public:
  explicit RegionEmitter(const Model& model) : model_(&model) {
    offsets_.reserve(model.resources.size());
    std::size_t running = 0;
    for (const auto& r : model.resources) {
      offsets_.push_back(running);
      running += static_cast<std::size_t>(r.size);
    }
    total_elements_ = running;
  }

  std::size_t total_elements() const { return total_elements_; }

  void emit_region(std::ostringstream& out, const NativeRegionSpec& spec,
                   std::size_t index, std::vector<FaultRec>& faults);

 private:
  const Resource& res(std::int32_t id) const {
    return model_->resources[static_cast<std::size_t>(id)];
  }
  std::string off(std::int32_t id) const {
    return std::to_string(offsets_[static_cast<std::size_t>(id)]);
  }
  std::string cell(std::int32_t id) const { return "S[" + off(id) + "]"; }
  std::string cell_at(std::int32_t id, const std::string& index) const {
    return "S[" + off(id) + " + " + index + "]";
  }
  /// Canonicalize `expr` to the element type of resource `id` — the exact
  /// ValueType::canonicalize used by ProcessorState::write/write_scalar
  /// (cppgen's canon_expr emits the same calls).
  std::string canon(std::int32_t id, const std::string& expr) const {
    const ValueType& t = res(id).type;
    return (t.is_signed ? "xsext(" : "xzext(") + expr + ", " +
           std::to_string(t.width) + ")";
  }

  const Model* model_;
  std::vector<std::size_t> offsets_;
  std::size_t total_elements_ = 0;
};

std::string temp(std::int32_t i) { return "t" + std::to_string(i); }

/// The value expression of a non-faulting binary op (everything except
/// kDiv/kRem, which need guard statements). Mirrors fold_binary exactly:
/// wrapping add/sub/mul, masked shifts, 0/1 comparisons, non-short-circuit
/// logicals over already-evaluated operands.
std::string bin_expr(BinOp bop, const std::string& a, const std::string& b) {
  switch (bop) {
    case BinOp::kAdd: return "wadd(" + a + ", " + b + ")";
    case BinOp::kSub: return "wsub(" + a + ", " + b + ")";
    case BinOp::kMul: return "wmul(" + a + ", " + b + ")";
    case BinOp::kAnd: return "(" + a + " & " + b + ")";
    case BinOp::kOr: return "(" + a + " | " + b + ")";
    case BinOp::kXor: return "(" + a + " ^ " + b + ")";
    case BinOp::kShl: return "wshl(" + a + ", " + b + ")";
    case BinOp::kShr: return "wshr(" + a + ", " + b + ")";
    case BinOp::kEq: return "((" + a + " == " + b + ") ? 1 : 0)";
    case BinOp::kNe: return "((" + a + " != " + b + ") ? 1 : 0)";
    case BinOp::kLt: return "((" + a + " < " + b + ") ? 1 : 0)";
    case BinOp::kLe: return "((" + a + " <= " + b + ") ? 1 : 0)";
    case BinOp::kGt: return "((" + a + " > " + b + ") ? 1 : 0)";
    case BinOp::kGe: return "((" + a + " >= " + b + ") ? 1 : 0)";
    case BinOp::kLogicalAnd:
      return "(((" + a + " != 0) && (" + b + " != 0)) ? 1 : 0)";
    case BinOp::kLogicalOr:
      return "(((" + a + " != 0) || (" + b + " != 0)) ? 1 : 0)";
    case BinOp::kDiv:
    case BinOp::kRem:
      break;  // handled by the guarded statement forms
  }
  throw SimError("nativegen: bin_expr on faulting operator");
}

/// The intrinsic-call expression mirroring fold_intrinsic; control
/// intrinsics fold to nullopt and exec_microops substitutes 0.
std::string intr_expr(Intrinsic intr, const std::string& a,
                      const std::string& b) {
  switch (intr) {
    case Intrinsic::kSext: return "xsext(" + a + ", " + b + ")";
    case Intrinsic::kZext: return "xzext(" + a + ", " + b + ")";
    case Intrinsic::kSat: return "xsat(" + a + ", " + b + ")";
    case Intrinsic::kAbs: return "xabs(" + a + ")";
    case Intrinsic::kMin: return "xmin(" + a + ", " + b + ")";
    case Intrinsic::kMax: return "xmax(" + a + ", " + b + ")";
    case Intrinsic::kNone:
    case Intrinsic::kFlush:
    case Intrinsic::kStall:
    case Intrinsic::kHalt:
      return "INT64_C(0)";
  }
  return "INT64_C(0)";
}

void RegionEmitter::emit_region(std::ostringstream& out,
                                const NativeRegionSpec& spec,
                                std::size_t index,
                                std::vector<FaultRec>& faults) {
  const std::uint32_t len = static_cast<std::uint32_t>(spec.ops.size());

  // Branch targets become labels; target == len is the fall-off-the-end
  // exit (validate_microops guarantees targets lie in [0, len]).
  std::set<std::int32_t> targets;
  for (const MicroOp& op : spec.ops)
    if (mo_is_branch(op.kind)) targets.insert(op.imm);

  // A fault return transfers control to the host with 1 + fault index;
  // the fault table tells the host which SimError to re-raise.
  auto fault_ret = [&faults](int kind, std::int32_t res) {
    faults.push_back({kind, res});
    return "return " + std::to_string(faults.size()) + ";";
  };
  auto label = [len, &targets](std::int32_t j) {
    return j == static_cast<std::int32_t>(len) ? std::string("Lend")
                                               : "L" + std::to_string(j);
  };

  out << "static int32_t lisa_region_" << index << "(LisaNativeCtx* ctx) {\n"
      << "  i64* const S = ctx->state;\n  (void)S;\n";
  for (std::int32_t t = 0; t < spec.num_temps; ++t)
    out << "  i64 " << temp(t) << " = 0; (void)" << temp(t) << ";\n";

  // Guarded dynamic element access: bounds-check against the resource
  // size (baked), store the index for the host's error message, fault.
  auto elem_guard = [&](const std::string& idx_expr, std::int32_t rid,
                        int fault_kind, const std::string& body) {
    out << "  { const u64 i_ = " << idx_expr << ";\n"
        << "    if (i_ >= " << lit_u64(res(rid).size) << ") { "
        << "ctx->fault_arg = (i64)i_; " << fault_ret(fault_kind, rid)
        << " }\n"
        << "    " << body << " }\n";
  };
  // Constant element index: checked at generation time. An out-of-range
  // constant lowers to an unconditional fault (matching the micro-op
  // core, which throws every time it executes the op).
  auto const_elem = [&](std::int64_t idx, std::int32_t rid, int fault_kind,
                        const std::string& body) {
    if (static_cast<std::uint64_t>(idx) >= res(rid).size) {
      out << "  ctx->fault_arg = " << lit64(idx) << "; "
          << fault_ret(fault_kind, rid) << "\n";
    } else {
      out << "  " << body << "\n";
    }
  };

  for (std::uint32_t j = 0; j < len; ++j) {
    if (targets.count(static_cast<std::int32_t>(j)))
      out << "L" << j << ":;\n";
    const MicroOp& op = spec.ops[j];
    const std::string ta = temp(op.a);
    const std::string tb = temp(op.b);
    const std::string tc = temp(op.c);
    switch (op.kind) {
      case MKind::kConst:
        out << "  " << ta << " = " << lit64(op.imm) << ";\n";
        break;
      case MKind::kConstPool:
        out << "  " << ta << " = "
            << lit64(spec.pool[static_cast<std::size_t>(op.imm)]) << ";\n";
        break;
      case MKind::kMov:
        out << "  " << ta << " = " << tb << ";\n";
        break;
      case MKind::kReadRes:  // hook-aware in the core; the runtime stands
      case MKind::kReadScal: // down when a non-guard hook is mapped, and
                             // the guard's on_read is the identity.
        out << "  " << ta << " = " << cell(op.res) << ";\n";
        break;
      case MKind::kReadElem:
        elem_guard("(u64)" + tb, op.res, 2,
                   ta + " = " + cell_at(op.res, "i_") + ";");
        break;
      case MKind::kReadElemC:
        const_elem(op.imm, op.res, 2,
                   ta + " = " +
                       cell_at(op.res, std::to_string(op.imm)) + ";");
        break;
      case MKind::kReadElemOff:
        elem_guard("(u64)" + tb + " + (u64)" + lit64(op.imm), op.res, 2,
                   ta + " = " + cell_at(op.res, "i_") + ";");
        break;
      case MKind::kReadElemScal:
        elem_guard("(u64)" + cell(op.b), op.res, 2,
                   ta + " = " + cell_at(op.res, "i_") + ";");
        break;
      case MKind::kWriteRes:
        out << "  " << cell(op.res) << " = " << canon(op.res, ta) << ";\n";
        break;
      case MKind::kWriteScal:
        out << "  " << cell(op.res) << " = " << canon(op.res, tb) << ";\n";
        break;
      case MKind::kWriteOut:
        // write_scalar returns the stored canonical value; forward it.
        out << "  " << ta << " = " << canon(op.res, tb) << "; "
            << cell(op.res) << " = " << ta << ";\n";
        break;
      case MKind::kWriteScalImm:
        out << "  " << cell(op.res) << " = "
            << lit64(res(op.res).type.canonicalize(op.imm)) << ";\n";
        break;
      case MKind::kMovScal:
        out << "  " << cell(op.res) << " = " << canon(op.res, cell(op.b))
            << ";\n";
        break;
      case MKind::kWriteElem:
        elem_guard("(u64)" + tb, op.res, 3,
                   cell_at(op.res, "i_") + " = " + canon(op.res, ta) + ";");
        break;
      case MKind::kWriteElemC:
        const_elem(op.imm, op.res, 3,
                   cell_at(op.res, std::to_string(op.imm)) + " = " +
                       canon(op.res, ta) + ";");
        break;
      case MKind::kWriteElemOff:
        elem_guard("(u64)" + tb + " + (u64)" + lit64(op.imm), op.res, 3,
                   cell_at(op.res, "i_") + " = " + canon(op.res, ta) + ";");
        break;
      case MKind::kMovScalElem:
        const_elem(op.imm, op.b, 2,
                   cell(op.res) + " = " +
                       canon(op.res,
                             cell_at(op.b, std::to_string(op.imm))) + ";");
        break;
      case MKind::kMovElemScal:
        const_elem(op.imm, op.res, 3,
                   cell_at(op.res, std::to_string(op.imm)) + " = " +
                       canon(op.res, cell(op.b)) + ";");
        break;
      case MKind::kBin:
        if (op.bop() == BinOp::kDiv) {
          out << "  { const i64 d_ = " << tc << ";\n    if (d_ == 0) "
              << fault_ret(0, -1) << "\n    " << ta
              << " = (d_ == -1) ? wneg(" << tb << ") : " << tb
              << " / d_; }\n";
        } else if (op.bop() == BinOp::kRem) {
          out << "  { const i64 d_ = " << tc << ";\n    if (d_ == 0) "
              << fault_ret(1, -1) << "\n    " << ta
              << " = (d_ == -1) ? (i64)0 : " << tb << " % d_; }\n";
        } else {
          out << "  " << ta << " = " << bin_expr(op.bop(), tb, tc) << ";\n";
        }
        break;
      case MKind::kBinImm: {
        // Fusion guarantees a nonzero constant divisor; specialize the
        // INT64_MIN / -1 wrap at generation time.
        const std::string imm = lit64(op.imm);
        if (op.bop() == BinOp::kDiv) {
          out << "  " << ta << " = "
              << (op.imm == -1 ? "wneg(" + tb + ")" : tb + " / " + imm)
              << ";\n";
        } else if (op.bop() == BinOp::kRem) {
          out << "  " << ta << " = "
              << (op.imm == -1 ? "INT64_C(0)" : tb + " % " + imm) << ";\n";
        } else {
          out << "  " << ta << " = " << bin_expr(op.bop(), tb, imm)
              << ";\n";
        }
        break;
      }
      case MKind::kBinImmR: {
        const std::string imm = lit64(op.imm);
        if (op.bop() == BinOp::kDiv) {
          out << "  { const i64 d_ = " << tb << ";\n    if (d_ == 0) "
              << fault_ret(0, -1) << "\n    " << ta
              << " = (d_ == -1) ? wneg(" << imm << ") : " << imm
              << " / d_; }\n";
        } else if (op.bop() == BinOp::kRem) {
          out << "  { const i64 d_ = " << tb << ";\n    if (d_ == 0) "
              << fault_ret(1, -1) << "\n    " << ta
              << " = (d_ == -1) ? (i64)0 : " << imm << " % d_; }\n";
        } else {
          out << "  " << ta << " = " << bin_expr(op.bop(), imm, tb)
              << ";\n";
        }
        break;
      }
      case MKind::kWriteBin:
        if (op.bop() == BinOp::kDiv) {
          out << "  { const i64 d_ = " << tc << ";\n    if (d_ == 0) "
              << fault_ret(0, -1) << "\n    const i64 v_ = (d_ == -1) ? "
              << "wneg(" << tb << ") : " << tb << " / d_;\n    "
              << cell(op.res) << " = " << canon(op.res, "v_") << "; }\n";
        } else if (op.bop() == BinOp::kRem) {
          out << "  { const i64 d_ = " << tc << ";\n    if (d_ == 0) "
              << fault_ret(1, -1) << "\n    const i64 v_ = (d_ == -1) ? "
              << "(i64)0 : " << tb << " % d_;\n    " << cell(op.res)
              << " = " << canon(op.res, "v_") << "; }\n";
        } else {
          out << "  " << cell(op.res) << " = "
              << canon(op.res, bin_expr(op.bop(), tb, tc)) << ";\n";
        }
        break;
      case MKind::kUn:
        switch (op.uop()) {
          case UnOp::kNeg:
            out << "  " << ta << " = wneg(" << tb << ");\n";
            break;
          case UnOp::kLogicalNot:
            out << "  " << ta << " = (" << tb << " == 0) ? 1 : 0;\n";
            break;
          case UnOp::kBitNot:
            out << "  " << ta << " = ~" << tb << ";\n";
            break;
        }
        break;
      case MKind::kIntr:
        out << "  " << ta << " = " << intr_expr(op.intr(), tb, tc)
            << ";\n";
        break;
      case MKind::kIntrImm:
        out << "  " << ta << " = "
            << intr_expr(op.intr(), tb, lit64(op.imm)) << ";\n";
        break;
      case MKind::kBrZero:
        out << "  if (" << ta << " == 0) goto " << label(op.imm) << ";\n";
        break;
      case MKind::kBr:
        out << "  goto " << label(op.imm) << ";\n";
        break;
      case MKind::kBrScalZero:
        out << "  if (" << cell(op.b) << " == 0) goto " << label(op.imm)
            << ";\n";
        break;
      case MKind::kBrBin:
        // fold_binary(...).value_or(1) == 0; validation excludes div/rem,
        // so the fold never misses and the comparison is exact.
        out << "  if (" << bin_expr(op.bop(), tb, tc) << " == 0) goto "
            << label(op.imm) << ";\n";
        break;
      case MKind::kBrBinImm:
        // `c` is a 16-bit immediate here, not a temp.
        out << "  if ("
            << bin_expr(op.bop(), tb,
                        lit64(static_cast<std::int64_t>(op.c)))
            << " == 0) goto " << label(op.imm) << ";\n";
        break;
      case MKind::kFlush:
        out << "  ctx->flush = 1;\n";
        break;
      case MKind::kStall:
        // control.stall_cycles += (int)t[a], with defined wrapping.
        out << "  ctx->stall = (int32_t)((u64)ctx->stall + (u64)" << ta
            << ");\n";
        break;
      case MKind::kHalt:
        out << "  ctx->halt = 1;\n";
        break;
    }
  }
  if (targets.count(static_cast<std::int32_t>(len))) out << "Lend:;\n";
  out << "  return 0;\n}\n\n";
}

}  // namespace

std::uint64_t native_content_hash(const NativeGenInput& input) {
  std::uint64_t h = kFnvOffset;
  h = fnv_u64(h, kNativeAbiVersion);
  h = fnv_u64(h, input.model_hash);
  h = fnv_u64(h, input.program_hash);
  h = fnv_u64(h, input.regions.size());
  for (const NativeRegionSpec& r : input.regions) {
    h = fnv_u64(h, r.key);
    h = fnv_u64(h, r.kind);
    h = fnv_u64(h, static_cast<std::uint64_t>(r.num_temps));
    h = fnv_u64(h, r.ops.size());
    for (const MicroOp& op : r.ops) {
      h = fnv_u64(h, (static_cast<std::uint64_t>(op.kind) << 8) |
                         static_cast<std::uint64_t>(op.sub));
      h = fnv_u64(h, static_cast<std::uint64_t>(
                         static_cast<std::uint16_t>(op.a)) |
                         (static_cast<std::uint64_t>(
                              static_cast<std::uint16_t>(op.b)) << 16) |
                         (static_cast<std::uint64_t>(
                              static_cast<std::uint16_t>(op.c)) << 32) |
                         (static_cast<std::uint64_t>(
                              static_cast<std::uint16_t>(op.res)) << 48));
      h = fnv_u64(h, static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(op.imm)));
      if (op.kind == MKind::kConstPool)
        h = fnv_u64(h, static_cast<std::uint64_t>(
                           r.pool[static_cast<std::size_t>(op.imm)]));
    }
  }
  return h;
}

std::string generate_native_source(const NativeGenInput& input) {
  CppGenOptions prelude_options;
  prelude_options.emit_main = false;

  std::ostringstream out;
  // The cppgen prelude supplies the wrapping-arithmetic helpers (and the
  // standalone State/table code, unused here but kept per the embedding
  // contract: one emitter, no duplicated helper definitions).
  out << generate_cpp_simulator(*input.model, *input.program,
                                prelude_options);

  out << "\n// ---- native AOT region entry table "
      << "(see codegen/native_abi.hpp) ----\n\n"
      << "#include <stdint.h>\n\n"
      << kNativeAbiText << "\n";

  RegionEmitter emitter(*input.model);
  std::vector<std::vector<FaultRec>> fault_tables;
  fault_tables.reserve(input.regions.size());
  for (std::size_t i = 0; i < input.regions.size(); ++i) {
    std::vector<FaultRec> faults;
    emitter.emit_region(out, input.regions[i], i, faults);
    if (!faults.empty()) {
      out << "static const LisaNativeFault lisa_faults_" << i << "[] = {\n";
      for (const FaultRec& f : faults)
        out << "  {" << f.kind << ", " << f.res << "},\n";
      out << "};\n\n";
    }
    fault_tables.push_back(std::move(faults));
  }

  const std::uint64_t content = native_content_hash(input);
  if (!input.regions.empty()) {
    out << "static const LisaNativeRegion lisa_regions[] = {\n";
    for (std::size_t i = 0; i < input.regions.size(); ++i) {
      const NativeRegionSpec& r = input.regions[i];
      out << "  {" << lit_u64(r.key) << ", " << r.kind << "u, "
          << r.ops.size() << "u, " << r.num_temps << "u, "
          << fault_tables[i].size() << "u, &lisa_region_" << i << ", "
          << (fault_tables[i].empty()
                  ? std::string("nullptr")
                  : "lisa_faults_" + std::to_string(i))
          << "},\n";
    }
    out << "};\n\n";
  }
  out << "static const LisaNativeEntry lisa_entry = {\n"
      << "  " << kNativeAbiVersion << "u, "
      << input.regions.size() << "u,\n"
      << "  " << lit_u64(input.model_hash) << ",\n"
      << "  " << lit_u64(input.program_hash) << ",\n"
      << "  " << lit_u64(content) << ",\n"
      << "  " << lit_u64(emitter.total_elements()) << ",\n"
      << "  " << (input.regions.empty() ? "nullptr" : "lisa_regions")
      << ",\n};\n\n"
      << "extern \"C\" const LisaNativeEntry* lisa_native_entry(void) "
      << "{ return &lisa_entry; }\n";
  return out.str();
}

}  // namespace lisasim
