// The C ABI between lisasim and its dlopen'd native AOT region libraries.
//
// A native artifact is a shared object compiled from generated C++ (see
// codegen/nativegen.cpp): one straight-line function per lowered micro-op
// region (a static simulation-table span or a hot-trace superblock body),
// plus one exported entry-table symbol describing them. The host never
// throws across the boundary and the library never calls back into the
// host: regions operate on the flat processor-state array alone and report
// faults (zero divisors, out-of-bounds element indices) by returning a
// fault index the host re-raises through its normal SimError paths.
//
// `kNativeAbiText` below is embedded verbatim into every generated source
// file; the host-side mirror structs must stay layout-identical (pinned by
// static_asserts here and a golden test in tests/test_native.cpp). Any
// change to the layout must bump kNativeAbiVersion — version-mismatched
// artifacts are discarded and recompiled, never reinterpreted.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lisasim {

inline constexpr std::uint32_t kNativeAbiVersion = 1;

/// Name of the single exported symbol of a native artifact.
inline constexpr const char kNativeEntrySymbol[] = "lisa_native_entry";

// ---- host-side mirrors of the generated structs ---------------------------

struct NativeCtx {
  std::int64_t* state = nullptr;  // flat element storage, stride 1
  std::int64_t fault_arg = 0;     // out: faulting element index
  std::int32_t stall = 0;         // out: accumulated stall cycles
  std::uint8_t flush = 0;         // out
  std::uint8_t halt = 0;          // out
  std::uint8_t reserved0 = 0;
  std::uint8_t reserved1 = 0;
};

/// Returns 0 on success or 1 + fault-table index.
using NativeRegionFn = std::int32_t (*)(NativeCtx*);

struct NativeFault {
  std::int32_t kind = 0;  // 0 div0, 1 rem0, 2 oob read, 3 oob write
  std::int32_t res = -1;  // faulting resource id for the oob kinds
};

struct NativeRegion {
  std::uint64_t key = 0;        // micro-arena offset of the lowered span
  std::uint32_t kind = 0;       // 0 static table span, 1 trace body
  std::uint32_t len = 0;        // micro-op count of the lowered span
  std::uint32_t num_temps = 0;
  std::uint32_t fault_count = 0;
  NativeRegionFn fn = nullptr;
  const NativeFault* faults = nullptr;
};

struct NativeEntry {
  std::uint32_t abi_version = 0;
  std::uint32_t region_count = 0;
  std::uint64_t model_hash = 0;
  std::uint64_t program_hash = 0;
  std::uint64_t content_hash = 0;
  std::uint64_t state_elements = 0;
  const NativeRegion* regions = nullptr;
};

/// Signature of the exported entry symbol.
using NativeEntryFn = const NativeEntry* (*)();

// The generated side (below) uses the same field order and only
// fixed-width C types, so mirror layout is a plain offset check.
static_assert(sizeof(NativeCtx) == 24);
static_assert(offsetof(NativeCtx, fault_arg) == 8);
static_assert(offsetof(NativeCtx, stall) == 16);
static_assert(offsetof(NativeCtx, flush) == 20);
static_assert(offsetof(NativeCtx, halt) == 21);
static_assert(sizeof(NativeFault) == 8);
static_assert(sizeof(NativeRegion) == 40);
static_assert(offsetof(NativeRegion, fn) == 24);
static_assert(offsetof(NativeRegion, faults) == 32);
static_assert(sizeof(NativeEntry) == 48);
static_assert(offsetof(NativeEntry, regions) == 40);

// ---- the declaration text embedded into generated sources -----------------

inline constexpr const char kNativeAbiText[] =
    R"(/* lisasim native AOT region ABI, version 1 */
typedef struct LisaNativeCtx {
  int64_t* state;
  int64_t fault_arg;
  int32_t stall;
  uint8_t flush;
  uint8_t halt;
  uint8_t reserved0;
  uint8_t reserved1;
} LisaNativeCtx;

typedef int32_t (*LisaNativeRegionFn)(LisaNativeCtx*);

typedef struct LisaNativeFault {
  int32_t kind; /* 0 div0, 1 rem0, 2 oob read, 3 oob write */
  int32_t res;  /* faulting resource id for the oob kinds */
} LisaNativeFault;

typedef struct LisaNativeRegion {
  uint64_t key;  /* micro-arena offset of the lowered span */
  uint32_t kind; /* 0 static table span, 1 trace body */
  uint32_t len;  /* micro-op count of the lowered span */
  uint32_t num_temps;
  uint32_t fault_count;
  LisaNativeRegionFn fn;
  const LisaNativeFault* faults;
} LisaNativeRegion;

typedef struct LisaNativeEntry {
  uint32_t abi_version;
  uint32_t region_count;
  uint64_t model_hash;
  uint64_t program_hash;
  uint64_t content_hash;
  uint64_t state_elements;
  const LisaNativeRegion* regions;
} LisaNativeEntry;
)";

}  // namespace lisasim
