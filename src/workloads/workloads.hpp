// The three benchmark workloads of the paper's §6.1 — "a FIR filter, the
// ADPCM G.721 codec, and the GSM speech encoder" — as c62x assembly
// generators with bit-exact C reference models:
//
//   * FIR      — direct-form FIR filter (MAC inner loop, nested counted
//                loops in branch delay slots);
//   * ADPCM    — IMA ADPCM speech encoder (table-driven adaptive
//                quantizer, fully predicated/branch-free sample body) —
//                stands in for G.721 (same codec class, see DESIGN.md);
//   * GSM      — GSM 06.10-style front end (Q15 preemphasis with rounded
//                saturating multiplies, saturating autocorrelation with
//                SMPY/SADD, block normalization, and the Le Roux–Gueguen /
//                schur reflection-coefficient recursion with shift-subtract
//                Q15 division — the LPC analysis core of the encoder).
//
// Every generator takes a `repeat` knob that emits independent copies of
// the kernel (unique label prefixes): the instruction-count axis of the
// paper's Fig. 6 without changing the computation.
//
// On top of the paper suite, SMC (self-modifying code) variants for
// tinydsp and c62x exercise the write guards: they patch their own loop
// body through program memory mid-run, so compiled levels are only
// correct with guarded execution enabled.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lisasim::workloads {

struct Workload {
  std::string name;
  std::string asm_source;
  // Expected dmem contents after a run (address -> value), computed by the
  // C reference model. Used by tests and by the accuracy bench.
  std::vector<std::pair<std::uint64_t, std::int64_t>> expected_dmem;
};

/// FIR filter: `taps` coefficients over `samples` outputs.
Workload make_fir(int taps, int samples, int repeat = 1);

/// IMA ADPCM encoder over `samples` input samples.
Workload make_adpcm(int samples, int repeat = 1);

/// IMA ADPCM encoder + decoder round trip: encodes the input to 4-bit
/// codes, then decodes the codes back to PCM in the same program. The
/// expected output covers both the code stream and the reconstructed
/// samples (which the reference model guarantees track the input within
/// the quantizer's error bound).
Workload make_adpcm_roundtrip(int samples);

/// GSM-style front end over a frame of `samples` (<= 160 idiomatic).
Workload make_gsm(int samples, int repeat = 1);

/// Self-modifying accumulator (guarded-execution test target): phase 1
/// runs an ADD loop `phase1_trips` times, then the program patches its
/// own loop body with a SUB template word via STP and runs `phase2_trips`
/// more trips. dmem[32] = 100 + 3*phase1_trips - 3*phase2_trips. Only
/// agrees with the interpretive oracle when write guards are on.
Workload make_smc_tinydsp(int phase1_trips = 5, int phase2_trips = 7);
/// The same program shape on c62x (patch sequence predicated inside the
/// exit branch's delay slots).
Workload make_smc_c62x(int phase1_trips = 5, int phase2_trips = 7);

/// The paper's three-application suite at representative sizes.
std::vector<Workload> paper_suite();

}  // namespace lisasim::workloads
