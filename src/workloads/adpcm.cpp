#include <array>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace lisasim::workloads {

namespace {

// Standard IMA ADPCM tables.
constexpr std::array<std::int64_t, 89> kStepTable = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr std::array<std::int64_t, 16> kIndexTable = {
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};

// dmem layout (word addresses)
constexpr std::uint64_t kStepBase = 0;    // 89 words
constexpr std::uint64_t kIndexBase = 100; // 16 words
constexpr std::uint64_t kInputBase = 128;
constexpr std::uint64_t kOutputBase = 4096;   // encoder codes
constexpr std::uint64_t kDecodedBase = 8192;  // decoder PCM output

std::vector<std::int64_t> make_input(int samples) {
  detail::Prng prng(0xAD9Cu * 2654435761u + 7u);
  std::vector<std::int64_t> input;
  // A wandering waveform, speech-ish dynamics.
  std::int64_t level = 0;
  for (int n = 0; n < samples; ++n) {
    level += prng.range(-900, 900);
    if (level > 20000) level = 20000;
    if (level < -20000) level = -20000;
    input.push_back(level);
  }
  return input;
}

/// IMA ADPCM encoder block; the per-sample body is branch-free
/// (predicated), the classic C6x coding style. Register use: A0 = constant
/// zero (never written), A4 = valpred, A5 = index, A6 = step, A9/A10 =
/// in/out cursors.
void emit_encoder(detail::AsmBuilder& b, const std::string& p, int samples) {
  b.op("MVK 0, A4");   // valpred
  b.op("MVK 0, A5");   // index
  b.op("MVK 7, A6");   // step = stepTable[0]
  b.op("MVK " + std::to_string(kInputBase) + ", A9");
  b.op("MVK " + std::to_string(kOutputBase) + ", A10");
  b.op("MVK " + std::to_string(samples) + ", B0");
  b.label(p + "loop");
  b.op("LDW A9, 0, A12");            // sample
  b.op("NOP 4");
  b.op("SUB A12, A4, A13");          // diff = sample - valpred
  b.op("CMPLT A13, A0, B2");         // sign
  b.op("MVK 0, A15");                // code
  b.op("[B2] SUB A0, A13, A13");     // diff = -diff
  b.op("[B2] MVK 8, A15");           // code = 8
  b.op("SHRI A6, 3, A14");           // vpdiff = step >> 3
  // bit 2 (value 4): full step
  b.op("CMPLT A13, A6, B1");
  b.op("[!B1] SUB A13, A6, A13");
  b.op("[!B1] ADD A14, A6, A14");
  b.op("[!B1] ADDK 4, A15");
  // bit 1 (value 2): step >> 1
  b.op("SHRI A6, 1, A11");
  b.op("CMPLT A13, A11, B1");
  b.op("[!B1] SUB A13, A11, A13");
  b.op("[!B1] ADD A14, A11, A14");
  b.op("[!B1] ADDK 2, A15");
  // bit 0 (value 1): step >> 2
  b.op("SHRI A6, 2, A11");
  b.op("CMPLT A13, A11, B1");
  b.op("[!B1] SUB A13, A11, A13");
  b.op("[!B1] ADD A14, A11, A14");
  b.op("[!B1] ADDK 1, A15");
  // predicted value update + clamp
  b.op("[B2] SUB A4, A14, A4");
  b.op("[!B2] ADD A4, A14, A4");
  b.op("MVK 32767, A11");
  b.op("MIN2 A4, A11, A4");
  b.op("MVK -32768, A11");
  b.op("MAX2 A4, A11, A4");
  // emit code
  b.op("STW A15, A10, 0");
  // index += indexTable[code], clamp [0, 88]
  b.op("MVK " + std::to_string(kIndexBase) + ", A3");
  b.op("ADD A3, A15, A3");
  b.op("LDW A3, 0, A11");
  b.op("NOP 4");
  b.op("ADD A5, A11, A5");
  b.op("MAX2 A5, A0, A5");
  b.op("MVK 88, A11");
  b.op("MIN2 A5, A11, A5");
  // step = stepTable[index]
  b.op("LDW A5, " + std::to_string(kStepBase) + ", A6");
  b.op("NOP 4");
  // next sample
  b.op("ADDK 1, A9");
  b.op("ADDK 1, A10");
  b.op("ADDK -1, B0");
  b.op("[B0] B " + p + "loop");
  for (int i = 0; i < 5; ++i) b.op("NOP 1");
}

/// IMA decoder block: codes at kOutputBase -> PCM at kDecodedBase.
void emit_decoder(detail::AsmBuilder& b, const std::string& p, int samples) {
  b.op("MVK 0, A4");   // valpred
  b.op("MVK 0, A5");   // index
  b.op("MVK 7, A6");   // step
  b.op("MVK " + std::to_string(kOutputBase) + ", A9");
  b.op("MVK " + std::to_string(kDecodedBase) + ", A10");
  b.op("MVK " + std::to_string(samples) + ", B0");
  b.label(p + "dloop");
  b.op("LDW A9, 0, A15");            // code
  b.op("NOP 4");
  // sign flag: (code >> 3) & 1, via a constant-one register
  b.op("MVK 1, A12");
  b.op("SHRI A15, 3, A11");
  b.op("AND A11, A12, B2");          // B2 = sign
  b.op("SHRI A6, 3, A14");           // vpdiff = step >> 3
  // magnitude bit 2
  b.op("SHRI A15, 2, A11");
  b.op("AND A11, A12, B1");
  b.op("[B1] ADD A14, A6, A14");
  // magnitude bit 1
  b.op("SHRI A15, 1, A11");
  b.op("AND A11, A12, B1");
  b.op("SHRI A6, 1, A13");
  b.op("[B1] ADD A14, A13, A14");
  // magnitude bit 0
  b.op("AND A15, A12, B1");
  b.op("SHRI A6, 2, A13");
  b.op("[B1] ADD A14, A13, A14");
  // predicted value update + clamp
  b.op("[B2] SUB A4, A14, A4");
  b.op("[!B2] ADD A4, A14, A4");
  b.op("MVK 32767, A11");
  b.op("MIN2 A4, A11, A4");
  b.op("MVK -32768, A11");
  b.op("MAX2 A4, A11, A4");
  b.op("STW A4, A10, 0");            // reconstructed sample
  // index += indexTable[code], clamp, step = stepTable[index]
  b.op("MVK " + std::to_string(kIndexBase) + ", A3");
  b.op("ADD A3, A15, A3");
  b.op("LDW A3, 0, A11");
  b.op("NOP 4");
  b.op("ADD A5, A11, A5");
  b.op("MAX2 A5, A0, A5");
  b.op("MVK 88, A11");
  b.op("MIN2 A5, A11, A5");
  b.op("LDW A5, " + std::to_string(kStepBase) + ", A6");
  b.op("NOP 4");
  b.op("ADDK 1, A9");
  b.op("ADDK 1, A10");
  b.op("ADDK -1, B0");
  b.op("[B0] B " + p + "dloop");
  for (int i = 0; i < 5; ++i) b.op("NOP 1");
}

void emit_tables_and_input(detail::AsmBuilder& b,
                           const std::vector<std::int64_t>& input) {
  b.data("dmem", kStepBase,
         std::vector<std::int64_t>(kStepTable.begin(), kStepTable.end()));
  b.data("dmem", kIndexBase,
         std::vector<std::int64_t>(kIndexTable.begin(), kIndexTable.end()));
  b.data("dmem", kInputBase, input);
}

/// Reference IMA encode (mirrors emit_encoder).
std::vector<std::int32_t> reference_encode(
    const std::vector<std::int64_t>& input) {
  std::int32_t valpred = 0;
  int index = 0;
  std::int32_t step = 7;
  std::vector<std::int32_t> codes;
  codes.reserve(input.size());
  for (const std::int64_t sample64 : input) {
    const std::int32_t sample = static_cast<std::int32_t>(sample64);
    std::int32_t diff = sample - valpred;
    std::int32_t code = 0;
    if (diff < 0) {
      code = 8;
      diff = -diff;
    }
    std::int32_t vpdiff = step >> 3;
    if (diff >= step) {
      code |= 4;
      diff -= step;
      vpdiff += step;
    }
    if (diff >= (step >> 1)) {
      code |= 2;
      diff -= step >> 1;
      vpdiff += step >> 1;
    }
    if (diff >= (step >> 2)) {
      code |= 1;
      vpdiff += step >> 2;
    }
    valpred = (code & 8) ? valpred - vpdiff : valpred + vpdiff;
    if (valpred > 32767) valpred = 32767;
    if (valpred < -32768) valpred = -32768;
    index += static_cast<int>(kIndexTable[static_cast<std::size_t>(code)]);
    if (index < 0) index = 0;
    if (index > 88) index = 88;
    step = static_cast<std::int32_t>(
        kStepTable[static_cast<std::size_t>(index)]);
    codes.push_back(code);
  }
  return codes;
}

/// Reference IMA decode (mirrors emit_decoder).
std::vector<std::int32_t> reference_decode(
    const std::vector<std::int32_t>& codes) {
  std::int32_t valpred = 0;
  int index = 0;
  std::int32_t step = 7;
  std::vector<std::int32_t> out;
  out.reserve(codes.size());
  for (const std::int32_t code : codes) {
    std::int32_t vpdiff = step >> 3;
    if (code & 4) vpdiff += step;
    if (code & 2) vpdiff += step >> 1;
    if (code & 1) vpdiff += step >> 2;
    valpred = (code & 8) ? valpred - vpdiff : valpred + vpdiff;
    if (valpred > 32767) valpred = 32767;
    if (valpred < -32768) valpred = -32768;
    index += static_cast<int>(kIndexTable[static_cast<std::size_t>(code)]);
    if (index < 0) index = 0;
    if (index > 88) index = 88;
    step = static_cast<std::int32_t>(
        kStepTable[static_cast<std::size_t>(index)]);
    out.push_back(valpred);
  }
  return out;
}

}  // namespace

Workload make_adpcm(int samples, int repeat) {
  const std::vector<std::int64_t> input = make_input(samples);

  Workload w;
  w.name = "adpcm";
  detail::AsmBuilder b;
  b.raw("; IMA ADPCM encoder: " + std::to_string(samples) + " samples, x" +
        std::to_string(repeat));
  b.raw("        .entry start");
  b.label("start");
  for (int r = 0; r < repeat; ++r)
    emit_encoder(b, "a" + std::to_string(r) + "_", samples);
  b.op("HALT");
  emit_tables_and_input(b, input);
  w.asm_source = b.take();

  const std::vector<std::int32_t> codes = reference_encode(input);
  for (std::size_t n = 0; n < codes.size(); ++n)
    w.expected_dmem.emplace_back(kOutputBase + n, codes[n]);
  return w;
}

Workload make_adpcm_roundtrip(int samples) {
  const std::vector<std::int64_t> input = make_input(samples);

  Workload w;
  w.name = "adpcm-roundtrip";
  detail::AsmBuilder b;
  b.raw("; IMA ADPCM encode + decode round trip: " +
        std::to_string(samples) + " samples");
  b.raw("        .entry start");
  b.label("start");
  emit_encoder(b, "enc_", samples);
  emit_decoder(b, "dec_", samples);
  b.op("HALT");
  emit_tables_and_input(b, input);
  w.asm_source = b.take();

  const std::vector<std::int32_t> codes = reference_encode(input);
  const std::vector<std::int32_t> decoded = reference_decode(codes);
  for (std::size_t n = 0; n < codes.size(); ++n) {
    w.expected_dmem.emplace_back(kOutputBase + n, codes[n]);
    w.expected_dmem.emplace_back(kDecodedBase + n, decoded[n]);
  }
  return w;
}

}  // namespace lisasim::workloads
