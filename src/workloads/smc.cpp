#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace lisasim::workloads {

// Self-modifying accumulator: phase 1 runs an ADD loop body `k` times,
// then the program copies a SUB template word from its own text over the
// loop body (LDP/STP through program memory) and runs `m` more trips.
// Final accumulator = 100 + 3k - 3m, stored to dmem[32].
//
// The patch is the canonical compiled-simulation hazard (paper §3: the
// simulation table assumes immutable program memory), so these workloads
// only agree with the interpretive oracle when write guards are enabled.
// On both targets the STP resolves several cycles before the patched word
// can be re-fetched (branch redirect latency), so the program is
// timing-safe: no in-flight fetch ever races the store.

namespace {

constexpr std::uint64_t kResultAddr = 32;
constexpr int kInitial = 100;
constexpr int kAddend = 3;

void expect_result(Workload& w, int phase1_trips, int phase2_trips) {
  const std::int64_t acc =
      kInitial + static_cast<std::int64_t>(kAddend) * phase1_trips -
      static_cast<std::int64_t>(kAddend) * phase2_trips;
  w.expected_dmem.emplace_back(kResultAddr, acc);
}

}  // namespace

Workload make_smc_tinydsp(int phase1_trips, int phase2_trips) {
  Workload w;
  w.name = "smc";

  detail::AsmBuilder b;
  b.raw("; self-modifying accumulator: " + std::to_string(phase1_trips) +
        " ADD trips, patch, " + std::to_string(phase2_trips) + " SUB trips");
  b.raw("        .entry start");
  b.label("start");
  b.op("MVK 0, R0");  // pmem base for LDP/STP
  b.op("MVK " + std::to_string(kAddend) + ", R2");
  b.op("MVK " + std::to_string(kInitial) + ", R6");  // accumulator
  b.op("MVK 1, R5");                                 // loop decrement
  b.op("MVK 1, R9");                                 // phase flag, 1 = phase 1
  b.op("MVK " + std::to_string(phase1_trips) + ", R4");
  b.label_op("loop", "BZ R4, phase");
  b.label_op("patch", "ADD.L R6, R6, R2");  // overwritten with tmpl's word
  b.op("SUB.L R4, R4, R5");
  b.op("B loop");
  b.label_op("phase", "BZ R9, done");
  b.op("MVK 0, R9");
  b.op("LDP R7, R0, tmpl");    // read the template instruction word
  b.op("STP R7, R0, patch");   // ...and patch the loop body with it
  b.op("MVK " + std::to_string(phase2_trips) + ", R4");
  b.op("B loop");
  b.label_op("done", "ST R6, R0, " + std::to_string(kResultAddr));
  b.op("HALT");
  b.label_op("tmpl", "SUB.L R6, R6, R2");  // template, never executed here
  w.asm_source = b.take();

  expect_result(w, phase1_trips, phase2_trips);
  return w;
}

Workload make_smc_c62x(int phase1_trips, int phase2_trips) {
  Workload w;
  w.name = "smc";

  detail::AsmBuilder b;
  b.raw("; self-modifying accumulator: " + std::to_string(phase1_trips) +
        " ADD trips, patch, " + std::to_string(phase2_trips) + " SUB trips");
  b.raw("        .entry start");
  b.label("start");
  b.op("MVK 0, A0");  // pmem base for LDP/STP
  b.op("MVK " + std::to_string(kAddend) + ", A3");
  b.op("MVK " + std::to_string(kInitial) + ", A7");  // accumulator
  b.op("MVK 1, A1");                                 // phase flag, 1 = phase 1
  b.op("MVK " + std::to_string(phase1_trips) + ", B0");
  b.label_op("loop", "ADDK -1, B0");
  b.label_op("patch", "ADD A7, A3, A7");  // overwritten with tmpl's word
  b.op("[B0] B loop");
  for (int i = 0; i < 5; ++i) b.op("NOP 1");  // branch delay slots
  // Phase transition. The [!A1] exit branch has five delay slots, so the
  // patch sequence sits inside them, predicated on [A1]: it runs on the
  // phase-1 fall-through and is a no-op on the phase-2 one.
  b.op("[!A1] B done");
  b.op("[A1] LDP A0, tmpl, A5");    // read the template instruction word
  b.op("[A1] STP A5, A0, patch");   // ...and patch the loop body with it
  b.op("[A1] MVK " + std::to_string(phase2_trips) + ", B0");
  b.op("[A1] MVK 0, A1");
  b.op("NOP 1");
  b.op("B loop");
  for (int i = 0; i < 5; ++i) b.op("NOP 1");
  b.label_op("done", "MVK " + std::to_string(kResultAddr) + ", A8");
  b.op("STW A7, A8, 0");
  for (int i = 0; i < 4; ++i) b.op("NOP 1");  // drain the store before HALT
  b.op("HALT");
  b.label_op("tmpl", "SUB A7, A3, A7");  // template, never executed here
  w.asm_source = b.take();

  expect_result(w, phase1_trips, phase2_trips);
  return w;
}

}  // namespace lisasim::workloads
