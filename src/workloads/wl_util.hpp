// Internal helpers for workload generators: an assembly text builder, a
// deterministic data generator and C models of the c62x arithmetic ops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace lisasim::workloads::detail {

class AsmBuilder {
 public:
  /// Append one instruction/directive line (indented).
  void op(const std::string& text) { out_ += "        " + text + "\n"; }
  /// Append a labeled line.
  void label(const std::string& name) { out_ += name + ":\n"; }
  void label_op(const std::string& name, const std::string& text) {
    out_ += name + ": " + text + "\n";
  }
  /// Append a raw line (comments, directives).
  void raw(const std::string& text) { out_ += text + "\n"; }
  /// Emit a .data section with values.
  void data(const std::string& memory, std::uint64_t base,
            const std::vector<std::int64_t>& values) {
    raw("        .data " + memory + " " + std::to_string(base));
    std::string line;
    for (std::size_t i = 0; i < values.size(); ++i) {
      line += (line.empty() ? "" : ", ") + std::to_string(values[i]);
      if ((i + 1) % 8 == 0 || i + 1 == values.size()) {
        raw("        .word " + line);
        line.clear();
      }
    }
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Deterministic pseudo-random generator, so workloads are reproducible
/// without seeding machinery. The shared unbiased generator replaces a
/// third hand-rolled xorshift copy (the two others lived in the fuzz
/// tests).
using Prng = ::lisasim::support::SplitMix64;

// ---- C models of the target arithmetic (must mirror the c62x model) ------

inline std::int32_t sext16(std::int64_t v) {
  return static_cast<std::int16_t>(static_cast<std::uint64_t>(v));
}

inline std::int32_t sat32(std::int64_t v) {
  if (v > INT32_MAX) return INT32_MAX;
  if (v < INT32_MIN) return INT32_MIN;
  return static_cast<std::int32_t>(v);
}

inline std::int32_t c_mpy(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::int64_t>(sext16(a)) *
                                   sext16(b));
}

inline std::int32_t c_smpy(std::int32_t a, std::int32_t b) {
  const std::int64_t p = static_cast<std::int64_t>(sext16(a)) * sext16(b);
  return sat32(p << 1);
}

inline std::int32_t c_sadd(std::int32_t a, std::int32_t b) {
  return sat32(static_cast<std::int64_t>(a) + b);
}

inline std::int32_t c_ssub(std::int32_t a, std::int32_t b) {
  return sat32(static_cast<std::int64_t>(a) - b);
}

}  // namespace lisasim::workloads::detail
