#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace lisasim::workloads {

namespace {

// dmem layout (word addresses)
constexpr std::uint64_t kCoeffBase = 0;
constexpr std::uint64_t kInputBase = 256;
constexpr std::uint64_t kOutputBase = 2048;

}  // namespace

// y[n] = sum_k h[k] * x[n+k], 16x16 multiplies, 32-bit accumulate.
Workload make_fir(int taps, int samples, int repeat) {
  detail::Prng prng(0xF1A2B3C4u);
  std::vector<std::int64_t> coeffs, input;
  for (int k = 0; k < taps; ++k) coeffs.push_back(prng.range(-1000, 1000));
  for (int n = 0; n < samples + taps - 1; ++n)
    input.push_back(prng.range(-1000, 1000));

  Workload w;
  w.name = "fir";

  detail::AsmBuilder b;
  b.raw("; FIR filter: " + std::to_string(taps) + " taps, " +
        std::to_string(samples) + " samples, x" + std::to_string(repeat));
  b.raw("        .entry start");
  b.label("start");
  for (int r = 0; r < repeat; ++r) {
    const std::string p = "f" + std::to_string(r) + "_";
    b.op("MVK " + std::to_string(samples) + ", B0");  // outer trip count
    b.op("MVK 0, A10");                               // n
    b.label(p + "outer");
    b.op("MVK 0, A7");                                // acc
    b.op("MVK " + std::to_string(taps) + ", B1");     // inner trip count
    b.op("MVK 0, A8");                                // k
    b.label(p + "kloop");
    b.op("ADD A8, A10, A3");                          // n + k
    b.op("ADDK " + std::to_string(kInputBase) + ", A3");
    b.op("LDW A3, 0, A12");                           // x[n+k]
    b.op("LDW A8, " + std::to_string(kCoeffBase) + ", A13");  // h[k]
    b.op("NOP 3");                                    // load delay
    b.op("MPY A12, A13, A14");
    b.op("ADD A7, A14, A7");                          // product drains first
    b.op("ADDK 1, A8");
    b.op("ADDK -1, B1");
    b.op("[B1] B " + p + "kloop");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");        // branch delay slots
    b.op("MV A10, A3");
    b.op("ADDK " + std::to_string(kOutputBase) + ", A3");
    b.op("STW A7, A3, 0");
    b.op("ADDK 1, A10");
    b.op("ADDK -1, B0");
    b.op("[B0] B " + p + "outer");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
  }
  b.op("HALT");
  b.data("dmem", kCoeffBase, coeffs);
  b.data("dmem", kInputBase, input);
  w.asm_source = b.take();

  // Reference model.
  for (int n = 0; n < samples; ++n) {
    std::int32_t acc = 0;
    for (int k = 0; k < taps; ++k)
      acc = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(acc) +
          static_cast<std::uint32_t>(detail::c_mpy(
              static_cast<std::int32_t>(
                  input[static_cast<std::size_t>(n + k)]),
              static_cast<std::int32_t>(coeffs[static_cast<std::size_t>(k)]))));
    w.expected_dmem.emplace_back(kOutputBase + static_cast<std::uint64_t>(n),
                                 acc);
  }
  return w;
}

}  // namespace lisasim::workloads
