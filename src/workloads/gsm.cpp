#include <cstdlib>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace lisasim::workloads {

namespace {

// dmem layout (word addresses)
constexpr std::uint64_t kInputBase = 0;
constexpr std::uint64_t kScratchBase = 512;   // preemphasized samples
constexpr std::uint64_t kResultBase = 8192;   // r[0..8], norm at +9
constexpr std::uint64_t kPBase = 8210;        // schur P[0..8]
constexpr std::uint64_t kKBase = 8220;        // schur K[1..7] (slot 0 pad)
constexpr std::uint64_t kReflBase = 8230;     // reflection coeffs k[0..7]
constexpr int kLags = 9;                      // GSM 06.10 uses r[0..8]
constexpr int kCoeffs = 8;                    // 8 reflection coefficients

// ---- fixed-point helpers of the schur recursion (C reference) ------------

std::int32_t clamp16(std::int32_t v) {
  return v > 32767 ? 32767 : (v < -32768 ? -32768 : v);
}

/// Rounded Q15 multiply: (a*b + 16384) >> 15, saturated to 16 bits.
std::int32_t mult_r16(std::int32_t a, std::int32_t b) {
  return clamp16(static_cast<std::int32_t>(
      (static_cast<std::int64_t>(a) * b + 16384) >> 15));
}

/// Q15 shift-subtract division, 0 <= num <= den, den > 0 (GSM gsm_div).
std::int32_t div_q15(std::int32_t num, std::int32_t den) {
  std::int32_t quotient = 0;
  std::int32_t rest = num;
  for (int i = 0; i < 15; ++i) {
    quotient <<= 1;
    rest <<= 1;
    if (rest >= den) {
      rest -= den;
      quotient += 1;
    }
  }
  return quotient;
}

/// Le Roux–Gueguen (schur) recursion on the 16-bit normalized ACF — the
/// reflection-coefficient computation of the GSM 06.10 LPC analysis.
std::vector<std::int32_t> reference_schur(
    const std::vector<std::int32_t>& r16) {
  std::vector<std::int32_t> refl(kCoeffs, 0);
  std::vector<std::int32_t> p(r16.begin(), r16.end());  // P[0..8]
  std::vector<std::int32_t> kk(r16.begin(), r16.end()); // K[m] = r16[m]
  for (int n = 0; n < kCoeffs; ++n) {
    const std::int32_t p1 = p[1];
    const std::int32_t ap1 = p1 < 0 ? -p1 : p1;
    if (p[0] <= 0 || p[0] < ap1) break;  // remaining coefficients stay 0
    std::int32_t k = div_q15(ap1, p[0]);
    if (p1 > 0) k = -k;
    refl[static_cast<std::size_t>(n)] = k;
    if (n == kCoeffs - 1) break;
    p[0] = clamp16(p[0] + mult_r16(p1, k));
    for (int m = 1; m <= 7 - n; ++m) {
      const std::int32_t pm1 = p[static_cast<std::size_t>(m) + 1];
      const std::int32_t km = kk[static_cast<std::size_t>(m)];
      p[static_cast<std::size_t>(m)] = clamp16(pm1 + mult_r16(km, k));
      kk[static_cast<std::size_t>(m)] = clamp16(km + mult_r16(pm1, k));
    }
  }
  return refl;
}

}  // namespace

// GSM 06.10-style front end: Q15 preemphasis (rounded saturating multiply
// by 28180/32768), saturating autocorrelation over 9 lags (SMPY + SADD —
// the L_MAC of the GSM reference code), and block normalization of the
// autocorrelation values (the scaling step before schur recursion).
Workload make_gsm(int samples, int repeat) {
  detail::Prng prng(0x65A39C11u);
  std::vector<std::int64_t> input;
  std::int64_t level = 0;
  for (int n = 0; n < samples; ++n) {
    level += prng.range(-700, 700);
    if (level > 5000) level = 5000;
    if (level < -5000) level = -5000;
    input.push_back(level);
  }

  Workload w;
  w.name = "gsm";

  detail::AsmBuilder b;
  b.raw("; GSM-style front end: " + std::to_string(samples) +
        " samples, x" + std::to_string(repeat));
  b.raw("        .entry start");
  b.label("start");
  for (int r = 0; r < repeat; ++r) {
    const std::string p = "g" + std::to_string(r) + "_";
    // ---- phase 1: preemphasis -------------------------------------------
    b.op("MVK 16384, A15");
    b.op("ADD A15, A15, A15");  // A15 = 32768 (Q15 rounding constant)
    b.op("MVK 28180, A14");     // preemphasis coefficient
    b.op("LDW A0, " + std::to_string(kInputBase) + ", A12");  // in[0]
    b.op("NOP 4");
    b.op("MVK " + std::to_string(kScratchBase) + ", A3");
    b.op("STW A12, A3, 0");     // s[0] = in[0]
    b.op("MVK " + std::to_string(samples - 1) + ", B0");
    b.op("MVK 1, A9");          // n = 1
    b.label(p + "pre");
    b.op("LDW A9, " + std::to_string(kInputBase) + ", A13");  // in[n]
    b.op("SUB A9, A0, A3");     // (avoids negative offset fields)
    b.op("ADDK -1, A3");
    b.op("LDW A3, " + std::to_string(kInputBase) + ", A12");  // in[n-1]
    b.op("NOP 3");
    b.op("SMPY A12, A14, A11"); // (in[n-1] * 28180) << 1, saturated
    b.op("SADD A11, A15, A11"); // + 32768 (round)
    b.op("SHRI A11, 16, A11");  // Q15 result
    b.op("SSUB A13, A11, A11"); // s[n] = in[n] - t
    b.op("MV A9, A3");
    b.op("ADDK " + std::to_string(kScratchBase) + ", A3");
    b.op("STW A11, A3, 0");
    b.op("ADDK 1, A9");
    b.op("ADDK -1, B0");
    b.op("[B0] B " + p + "pre");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    // ---- phase 2: autocorrelation, r[k] = L_MAC over n ------------------
    b.op("MVK " + std::to_string(kLags) + ", B1");
    b.op("MVK 0, A10");         // k
    b.label(p + "ak");
    b.op("MVK 0, A7");          // acc
    b.op("MV A10, A9");         // n = k
    b.op("MVK " + std::to_string(samples) + ", A3");
    b.op("SUB A3, A10, A3");
    b.op("MV A3, B0");          // inner trips = samples - k
    b.label(p + "an");
    b.op("MV A9, A3");
    b.op("ADDK " + std::to_string(kScratchBase) + ", A3");
    b.op("LDW A3, 0, A12");     // s[n]
    b.op("SUB A9, A10, A3");
    b.op("ADDK " + std::to_string(kScratchBase) + ", A3");
    b.op("LDW A3, 0, A13");     // s[n-k]
    b.op("NOP 3");
    b.op("SMPY A12, A13, A14");
    b.op("SADD A7, A14, A7");   // L_MAC
    b.op("ADDK 1, A9");
    b.op("ADDK -1, B0");
    b.op("[B0] B " + p + "an");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.op("MV A10, A3");
    b.op("ADDK " + std::to_string(kResultBase) + ", A3");
    b.op("STW A7, A3, 0");      // r[k]
    b.op("ADDK 1, A10");
    b.op("ADDK -1, B1");
    b.op("[B1] B " + p + "ak");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    // ---- phase 3: block normalization -----------------------------------
    // smax = max |r[k]|
    b.op("MVK 0, A7");
    b.op("MVK " + std::to_string(kLags) + ", B1");
    b.op("MVK " + std::to_string(kResultBase) + ", A9");
    b.label(p + "fmax");
    b.op("LDW A9, 0, A12");
    b.op("NOP 4");
    b.op("ABS A12, A12");
    b.op("MAX2 A7, A12, A7");
    b.op("ADDK 1, A9");
    b.op("ADDK -1, B1");
    b.op("[B1] B " + p + "fmax");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    // norm = leading shift count to bring smax into [2^30, 2^31)
    b.op("MVK 0, A8");
    b.op("CMPEQ A7, A0, B2");
    b.op("[B2] B " + p + "ndone");  // all-zero frame
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.op("MVK 0, A11");
    b.op("MVKH 16384, A11");    // 2^30
    b.label(p + "nloop");
    b.op("CMPLT A7, A11, B2");
    b.op("[!B2] B " + p + "ndone");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.op("SHLI A7, 1, A7");
    b.op("ADDK 1, A8");
    b.op("B " + p + "nloop");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.label(p + "ndone");
    b.op("MVK " + std::to_string(kResultBase + kLags) + ", A3");
    b.op("STW A8, A3, 0");      // norm
    // r[k] <<= norm
    b.op("MVK " + std::to_string(kLags) + ", B1");
    b.op("MVK " + std::to_string(kResultBase) + ", A9");
    b.label(p + "scale");
    b.op("LDW A9, 0, A12");
    b.op("NOP 4");
    b.op("SHL A12, A8, A12");
    b.op("STW A12, A9, 0");
    b.op("ADDK 1, A9");
    b.op("ADDK -1, B1");
    b.op("[B1] B " + p + "scale");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    // ---- phase 4: reflection coefficients (Le Roux-Gueguen / schur) ----
    // P[i] = K[i] = r_scaled[i] >> 16 (16-bit normalized ACF)
    b.op("MVK " + std::to_string(kLags) + ", B1");
    b.op("MVK 0, A9");
    b.label(p + "s4i");
    b.op("MV A9, A3");
    b.op("ADDK " + std::to_string(kResultBase) + ", A3");
    b.op("LDW A3, 0, A12");
    b.op("NOP 4");
    b.op("SHRI A12, 16, A12");
    b.op("MV A9, A3");
    b.op("ADDK " + std::to_string(kPBase) + ", A3");
    b.op("STW A12, A3, 0");
    b.op("MV A9, A3");
    b.op("ADDK " + std::to_string(kKBase) + ", A3");
    b.op("STW A12, A3, 0");
    b.op("ADDK 1, A9");
    b.op("ADDK -1, B1");
    b.op("[B1] B " + p + "s4i");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    // clear the output coefficients (early exits leave zeros behind)
    b.op("MVK " + std::to_string(kCoeffs) + ", B1");
    b.op("MVK " + std::to_string(kReflBase) + ", A9");
    b.label(p + "s4c");
    b.op("STW A0, A9, 0");
    b.op("ADDK 1, A9");
    b.op("ADDK -1, B1");
    b.op("[B1] B " + p + "s4c");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    // constants and loop state
    b.op("MVK 32767, B8");
    b.op("MVK -32768, B9");
    b.op("MVK " + std::to_string(kCoeffs) + ", B0");  // outer remaining
    b.op("MVK 0, A10");                               // n
    b.label(p + "s4o");
    b.op("MVK " + std::to_string(kPBase) + ", A3");
    b.op("LDW A3, 0, A11");  // P[0]
    b.op("LDW A3, 1, A12");  // P[1]
    b.op("NOP 4");
    b.op("MV A12, B5");      // keep P[1]
    b.op("ABS A12, A13");    // |P[1]|
    b.op("CMPGT A11, A0, B1");
    b.op("[!B1] B " + p + "s4done");  // P[0] <= 0: stop
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.op("CMPLT A11, A13, B1");
    b.op("[B1] B " + p + "s4done");   // P[0] < |P[1]|: stop
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    // k = div_q15(|P[1]|, P[0]) — 15-step shift-subtract division
    b.op("MVK 0, A14");
    b.op("MV A13, A15");
    b.op("MVK 15, B2");
    b.label(p + "s4d");
    b.op("SHLI A14, 1, A14");
    b.op("SHLI A15, 1, A15");
    b.op("CMPLT A15, A11, B1");
    b.op("[!B1] SUB A15, A11, A15");
    b.op("[!B1] ADDK 1, A14");
    b.op("ADDK -1, B2");
    b.op("[B2] B " + p + "s4d");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.op("CMPGT B5, A0, B1");
    b.op("[B1] SUB A0, A14, A14");    // P[1] > 0: k = -k
    b.op("MV A10, A3");
    b.op("ADDK " + std::to_string(kReflBase) + ", A3");
    b.op("STW A14, A3, 0");           // refl[n]
    b.op("ADDK -1, B0");
    b.op("[!B0] B " + p + "s4done");  // n == 7: stop
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.op("MV A14, B6");               // k
    // P[0] += mult_r(P[1], k), saturated
    b.op("MPY B5, B6, A8");
    b.op("ADDK 16384, A8");
    b.op("SHRI A8, 15, A8");
    b.op("MIN2 A8, B8, A8");
    b.op("MAX2 A8, B9, A8");
    b.op("ADD A11, A8, A8");
    b.op("MIN2 A8, B8, A8");
    b.op("MAX2 A8, B9, A8");
    b.op("MVK " + std::to_string(kPBase) + ", A3");
    b.op("STW A8, A3, 0");
    // inner schur update, m = 1 .. 7-n
    b.op("MVK 7, A3");
    b.op("SUB A3, A10, A3");
    b.op("MV A3, B2");
    b.op("MVK " + std::to_string(kPBase + 1) + ", A4");
    b.op("MVK " + std::to_string(kKBase + 1) + ", A5");
    b.label(p + "s4m");
    b.op("LDW A4, 1, A6");   // P[m+1]
    b.op("LDW A5, 0, A7");   // K[m]
    b.op("NOP 3");
    b.op("MPY A7, B6, A8");  // mult_r(K[m], k)
    b.op("ADDK 16384, A8");
    b.op("SHRI A8, 15, A8");
    b.op("MIN2 A8, B8, A8");
    b.op("MAX2 A8, B9, A8");
    b.op("ADD A6, A8, A8");  // + P[m+1], saturated
    b.op("MIN2 A8, B8, A8");
    b.op("MAX2 A8, B9, A8");
    b.op("STW A8, A4, 0");   // P[m]
    b.op("MPY A6, B6, A9");  // mult_r(P[m+1], k)
    b.op("ADDK 16384, A9");
    b.op("SHRI A9, 15, A9");
    b.op("MIN2 A9, B8, A9");
    b.op("MAX2 A9, B9, A9");
    b.op("ADD A7, A9, A9");  // + K[m], saturated
    b.op("MIN2 A9, B8, A9");
    b.op("MAX2 A9, B9, A9");
    b.op("STW A9, A5, 0");   // K[m]
    b.op("ADDK 1, A4");
    b.op("ADDK 1, A5");
    b.op("ADDK -1, B2");
    b.op("[B2] B " + p + "s4m");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.op("ADDK 1, A10");
    b.op("B " + p + "s4o");
    for (int i = 0; i < 5; ++i) b.op("NOP 1");
    b.label(p + "s4done");
  }
  b.op("HALT");
  b.data("dmem", kInputBase, input);
  w.asm_source = b.take();

  // Reference model.
  std::vector<std::int32_t> s(static_cast<std::size_t>(samples));
  s[0] = static_cast<std::int32_t>(input[0]);
  for (int n = 1; n < samples; ++n) {
    std::int32_t t = detail::c_smpy(
        static_cast<std::int32_t>(input[static_cast<std::size_t>(n - 1)]),
        28180);
    t = detail::c_sadd(t, 32768);
    t >>= 16;
    s[static_cast<std::size_t>(n)] = detail::c_ssub(
        static_cast<std::int32_t>(input[static_cast<std::size_t>(n)]), t);
  }
  std::vector<std::int32_t> rk(kLags, 0);
  for (int k = 0; k < kLags; ++k) {
    std::int32_t acc = 0;
    for (int n = k; n < samples; ++n)
      acc = detail::c_sadd(
          acc, detail::c_smpy(s[static_cast<std::size_t>(n)],
                              s[static_cast<std::size_t>(n - k)]));
    rk[static_cast<std::size_t>(k)] = acc;
  }
  std::int32_t smax = 0;
  for (int k = 0; k < kLags; ++k) {
    const std::int32_t a = detail::sat32(
        std::abs(static_cast<std::int64_t>(rk[static_cast<std::size_t>(k)])));
    if (a > smax) smax = a;
  }
  std::int32_t norm = 0;
  if (smax != 0) {
    std::int32_t v = smax;
    while (v < (1 << 30)) {
      v = static_cast<std::int32_t>(static_cast<std::uint32_t>(v) << 1);
      ++norm;
    }
  }
  std::vector<std::int32_t> r16;
  for (int k = 0; k < kLags; ++k) {
    const std::int32_t scaled = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(rk[static_cast<std::size_t>(k)]) << norm);
    w.expected_dmem.emplace_back(
        kResultBase + static_cast<std::uint64_t>(k), scaled);
    r16.push_back(scaled >> 16);
  }
  w.expected_dmem.emplace_back(kResultBase + kLags, norm);
  const std::vector<std::int32_t> refl = reference_schur(r16);
  for (int n = 0; n < kCoeffs; ++n)
    w.expected_dmem.emplace_back(kReflBase + static_cast<std::uint64_t>(n),
                                 refl[static_cast<std::size_t>(n)]);
  return w;
}

std::vector<Workload> paper_suite() {
  std::vector<Workload> suite;
  suite.push_back(make_fir(16, 64));
  suite.push_back(make_adpcm(256));
  suite.push_back(make_gsm(160));
  return suite;
}

}  // namespace lisasim::workloads
