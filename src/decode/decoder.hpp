// The decoder generator. Constructing a Decoder from a Model precomputes,
// for every operation, the fixed-bit mask/value of its coding segment; the
// decode routine is then a backtracking match over group alternatives that
// prunes with those masks. This component corresponds to the decoding
// machinery that the paper's simulation-compiler generator emits (paper
// §4.1): the interpretive simulator calls it every cycle, the simulation
// compiler calls it once per program location.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "decode/decoded.hpp"
#include "model/model.hpp"

namespace lisasim {

class Decoder {
 public:
  explicit Decoder(const Model& model);

  /// Decode a single instruction word against the model's root operation.
  /// Returns nullptr if no coding alternative matches.
  DecodedNodePtr decode(std::uint64_t word) const;

  /// Decode the execute packet starting at element `index` of `words`
  /// (element-addressed program memory). For single-issue models the packet
  /// has exactly one slot. Throws SimError on decode failure or when the
  /// packet runs past the end of `words`.
  DecodedPacket decode_packet(std::span<const std::int64_t> words,
                              std::uint64_t index) const;

  /// Non-throwing variant for the fetch hot path (wrong-path prefetch of
  /// undecodable words happens on every taken branch near the text end).
  /// Returns false and fills `error` on failure.
  bool try_decode_packet(std::span<const std::int64_t> words,
                         std::uint64_t index, DecodedPacket& out,
                         std::string& error) const;

  /// Inverse of decode: assemble the instruction word from a decode tree
  /// (used by the assembler). The tree must be structurally complete.
  std::uint64_t encode(const DecodedNode& node) const;

  /// True if bit `parallel_bit` of the word chains the following word into
  /// the same execute packet.
  bool chains_next(std::uint64_t word) const {
    return model_->fetch.packet_max > 1 &&
           ((word >> model_->fetch.parallel_bit) & 1) != 0;
  }

  const Model& model() const { return *model_; }

  /// Decoder-generation statistics (useful for the model-translation bench).
  struct Stats {
    std::size_t operations = 0;
    std::size_t coding_operations = 0;
  };
  Stats stats() const { return stats_; }

 private:
  struct OpMask {
    std::uint64_t fixed_mask = 0;   // within the op's segment, MSB-first
    std::uint64_t fixed_bits = 0;
  };

  void compute_masks();
  OpMask mask_of(OperationId id, std::vector<int>& state);

  /// Match `op` against `segment` (the op's coding_width low bits,
  /// MSB-aligned to the segment). Returns nullptr on mismatch.
  DecodedNodePtr match(const Operation& op, std::uint64_t segment,
                       int depth) const;

  /// Materialize children that are not bound by CODING (activation-only
  /// instances) so activations can run and upward references resolve.
  void materialize_noncoding_children(DecodedNode& node, int depth) const;

  void encode_node(const DecodedNode& node, std::uint64_t& word,
                   unsigned& cursor, unsigned total_width) const;

  const Model* model_;
  std::vector<OpMask> masks_;  // by OperationId
  Stats stats_;
};

}  // namespace lisasim
