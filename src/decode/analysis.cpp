#include "decode/analysis.hpp"

#include <functional>

#include <cstddef>

namespace lisasim {

ResourceUsage::ResourceUsage(const Model& model) : model_(&model) {
  per_op_.reserve(model.operations.size());
  for (const auto& op : model.operations)
    per_op_.push_back(direct_writes(*op));
}

std::vector<ScalarWrite> ResourceUsage::direct_writes(
    const Operation& op) const {
  std::vector<ScalarWrite> out;
  const auto add = [&](ResourceId id) {
    const ScalarWrite w{id, op.stage};
    for (const auto& existing : out)
      if (existing == w) return;
    out.push_back(w);
  };
  const std::function<void(const Stmt&)> visit_stmt = [&](const Stmt& s) {
    if (s.kind == StmtKind::kAssign && s.lhs &&
        s.lhs->kind == ExprKind::kSym &&
        s.lhs->sym.kind == SymKind::kResource &&
        !model_->resource(s.lhs->sym.index).is_array())
      add(s.lhs->sym.index);
    for (const auto& sub : s.then_body) visit_stmt(*sub);
    for (const auto& sub : s.else_body) visit_stmt(*sub);
  };
  const std::function<void(const std::vector<OpItemPtr>&)> walk =
      [&](const std::vector<OpItemPtr>& items) {
        for (const auto& item : items) {
          for (const auto& s : item->stmts) visit_stmt(*s);
          walk(item->then_items);
          walk(item->else_items);
          for (const auto& c : item->cases) walk(c.items);
        }
      };
  walk(op.items);
  return out;
}

void ResourceUsage::collect(const DecodedNode& node,
                            std::vector<ScalarWrite>& out) const {
  const int stage = effective_stage_of(node);
  for (const ScalarWrite& w :
       per_op_[static_cast<std::size_t>(node.op->id)]) {
    const ScalarWrite resolved{w.resource, w.stage >= 0 ? w.stage : stage};
    bool seen = false;
    for (const auto& existing : out) seen = seen || existing == resolved;
    if (!seen) out.push_back(resolved);
  }
  // All children: coding-selected operands and statically activated
  // instances alike contribute their writes.
  for (const auto& child : node.children)
    if (child) collect(*child, out);
}

std::vector<ScalarWrite> ResourceUsage::writes_of(
    const DecodedNode& slot) const {
  std::vector<ScalarWrite> out;
  collect(slot, out);
  return out;
}

ResourceId ResourceUsage::first_conflict(const DecodedNode& a,
                                         const DecodedNode& b) const {
  const std::vector<ScalarWrite> wa = writes_of(a);
  const std::vector<ScalarWrite> wb = writes_of(b);
  for (const auto& x : wa)
    for (const auto& y : wb)
      if (x == y) return x.resource;
  return -1;
}

}  // namespace lisasim
