// Static resource-usage analysis of operations. LISA resources "model the
// limited availability of resources for operation access" (paper §5): on a
// VLIW target, two instructions of one execute packet that write the same
// scalar resource in the same pipeline stage (e.g. the multiply unit's
// pipeline register) race — the model encodes the structural hazard, and
// this analysis surfaces it. The assembler uses it to reject over-
// subscribed packets at assembly time.
#pragma once

#include <cstdint>
#include <vector>

#include "decode/decoded.hpp"
#include "model/model.hpp"

namespace lisasim {

/// One scalar-resource write performed by an operation (directly or through
/// any of its statically activated children), attributed to the pipeline
/// stage it executes in. Conservative: writes in all coding-time branches
/// are included; stage -1 means "inherits the activation context's stage".
struct ScalarWrite {
  ResourceId resource = -1;
  int stage = -1;

  friend bool operator==(const ScalarWrite&, const ScalarWrite&) = default;
};

/// Precomputed per-operation scalar write sets.
class ResourceUsage {
 public:
  explicit ResourceUsage(const Model& model);

  /// All scalar writes of a decoded instruction tree (one packet slot),
  /// with inherited stages resolved against the tree.
  std::vector<ScalarWrite> writes_of(const DecodedNode& slot) const;

  /// First resource written by both `a` and `b` in the same stage, or -1.
  /// `a` and `b` are two slots of one execute packet.
  ResourceId first_conflict(const DecodedNode& a, const DecodedNode& b) const;

 private:
  /// Direct writes of one operation's own behavior (no children).
  std::vector<ScalarWrite> direct_writes(const Operation& op) const;

  void collect(const DecodedNode& node, std::vector<ScalarWrite>& out) const;

  const Model* model_;
  std::vector<std::vector<ScalarWrite>> per_op_;  // by OperationId
};

}  // namespace lisasim
