// Decoded-instruction representation: the result of instruction decoding,
// shared by the interpretive simulator (which produces it every fetch) and
// the simulation compiler (which produces it once per program location and
// then specializes it away).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/model.hpp"

namespace lisasim {

/// One node of the decode tree: an operation chosen from the coding, its
/// extracted terminal fields and its child nodes. Children are indexed by
/// the operation's child slots; activation-only children (not bound by
/// CODING) are materialized too so that activations and upward references
/// work uniformly.
struct DecodedNode {
  const Operation* op = nullptr;
  const DecodedNode* parent = nullptr;
  std::vector<std::int64_t> fields;                 // by label slot
  std::vector<std::unique_ptr<DecodedNode>> children;  // by child slot

  explicit DecodedNode(const Operation& operation)
      : op(&operation),
        fields(operation.labels.size(), 0),
        children(operation.children.size()) {}
};

using DecodedNodePtr = std::unique_ptr<DecodedNode>;

/// Effective pipeline stage of a decode-tree node: its own IN stage, else
/// the nearest ancestor's, else stage 0.
inline int effective_stage_of(const DecodedNode& node) {
  for (const DecodedNode* n = &node; n; n = n->parent)
    if (n->op->stage >= 0) return n->op->stage;
  return 0;
}

/// A decoded execute packet: one instruction for single-issue machines, up
/// to `FETCH PACKET n` chained slots for VLIW machines.
struct DecodedPacket {
  std::vector<DecodedNodePtr> slots;
  unsigned words = 0;  // fetch words consumed (== slots.size())
};

}  // namespace lisasim
