#include "decode/decoder.hpp"

#include <cassert>

#include "support/bits.hpp"

namespace lisasim {

namespace {
constexpr int kMaxDecodeDepth = 64;
}

Decoder::Decoder(const Model& model) : model_(&model) {
  compute_masks();
  stats_.operations = model.operations.size();
  for (const auto& op : model.operations)
    if (op->has_coding) ++stats_.coding_operations;
}

void Decoder::compute_masks() {
  masks_.assign(model_->operations.size(), {});
  // state: 0 = unvisited, 1 = in progress, 2 = done. Coding recursion is
  // rejected by sema, but stay robust.
  std::vector<int> state(model_->operations.size(), 0);
  for (const auto& op : model_->operations) mask_of(op->id, state);
}

Decoder::OpMask Decoder::mask_of(OperationId id, std::vector<int>& state) {
  auto& mark = state[static_cast<std::size_t>(id)];
  auto& cached = masks_[static_cast<std::size_t>(id)];
  if (mark == 2) return cached;
  if (mark == 1) return {};  // cycle: no fixed bits claimed
  mark = 1;

  const Operation& op = model_->op(id);
  OpMask result;
  unsigned cursor = op.coding_width;  // bits remaining to the right
  for (const auto& elem : op.coding) {
    cursor -= elem.width;
    switch (elem.kind) {
      case CodingElem::Kind::kBits:
        result.fixed_mask |= low_mask(elem.width) << cursor;
        result.fixed_bits |= elem.bits << cursor;
        break;
      case CodingElem::Kind::kField:
        break;  // operand bits are free
      case CodingElem::Kind::kRef: {
        const auto& child = op.children[static_cast<std::size_t>(elem.slot)];
        if (child.alternatives.size() == 1) {
          // Fixed sub-operation: its fixed bits discriminate at this level.
          const OpMask sub = mask_of(child.alternatives.front(), state);
          result.fixed_mask |= sub.fixed_mask << cursor;
          result.fixed_bits |= sub.fixed_bits << cursor;
        } else {
          // Group: common fixed bits of all alternatives (if any) could be
          // claimed; keep it simple and claim none — the backtracking match
          // recurses into the group.
        }
        break;
      }
    }
  }
  cached = result;
  mark = 2;
  return cached;
}

DecodedNodePtr Decoder::match(const Operation& op, std::uint64_t segment,
                              int depth) const {
  if (depth > kMaxDecodeDepth)
    throw SimError("decode recursion limit exceeded (operation '" + op.name +
                   "')");
  const OpMask& mask = masks_[static_cast<std::size_t>(op.id)];
  if ((segment & mask.fixed_mask) != mask.fixed_bits) return nullptr;

  auto node = std::make_unique<DecodedNode>(op);
  unsigned cursor = op.coding_width;
  for (const auto& elem : op.coding) {
    cursor -= elem.width;
    const std::uint64_t piece = extract_bits(segment, cursor, elem.width);
    switch (elem.kind) {
      case CodingElem::Kind::kBits:
        // Covered by the fixed-mask test above (literal bits are always part
        // of the op's own mask).
        break;
      case CodingElem::Kind::kField:
        node->fields[static_cast<std::size_t>(elem.slot)] =
            static_cast<std::int64_t>(piece);
        break;
      case CodingElem::Kind::kRef: {
        const auto& child = op.children[static_cast<std::size_t>(elem.slot)];
        DecodedNodePtr sub;
        for (OperationId alt : child.alternatives) {
          sub = match(model_->op(alt), piece, depth + 1);
          if (sub) break;
        }
        if (!sub) return nullptr;
        sub->parent = node.get();
        node->children[static_cast<std::size_t>(elem.slot)] = std::move(sub);
        break;
      }
    }
  }
  materialize_noncoding_children(*node, depth);
  return node;
}

void Decoder::materialize_noncoding_children(DecodedNode& node,
                                             int depth) const {
  if (depth > kMaxDecodeDepth)
    throw SimError("activation-instance recursion limit exceeded (operation '" +
                   node.op->name + "')");
  for (std::size_t slot = 0; slot < node.op->children.size(); ++slot) {
    if (node.children[slot]) continue;  // bound by coding
    const ChildDecl& child = node.op->children[slot];
    if (child.alternatives.size() != 1) {
      // A GROUP not bound by coding has no decodable choice; leave it empty.
      // Sema flags activations of such groups when they are used.
      continue;
    }
    const Operation& target = model_->op(child.alternatives.front());
    auto sub = std::make_unique<DecodedNode>(target);
    sub->parent = &node;
    materialize_noncoding_children(*sub, depth + 1);
    node.children[slot] = std::move(sub);
  }
}

DecodedNodePtr Decoder::decode(std::uint64_t word) const {
  if (model_->root < 0) throw SimError("model has no 'instruction' operation");
  const Operation& root = model_->op(model_->root);
  return match(root, word & low_mask(root.coding_width), 0);
}

DecodedPacket Decoder::decode_packet(std::span<const std::int64_t> words,
                                     std::uint64_t index) const {
  DecodedPacket packet;
  std::string error;
  if (!try_decode_packet(words, index, packet, error)) throw SimError(error);
  return packet;
}

bool Decoder::try_decode_packet(std::span<const std::int64_t> words,
                                std::uint64_t index, DecodedPacket& out,
                                std::string& error) const {
  out.slots.clear();
  out.words = 0;
  const unsigned max_slots = model_->fetch.packet_max;
  for (unsigned slot = 0; slot < max_slots; ++slot) {
    const std::uint64_t addr = index + slot;
    if (addr >= words.size()) {
      error = "instruction fetch past end of program memory (address " +
              std::to_string(addr) + ")";
      return false;
    }
    const std::uint64_t word =
        static_cast<std::uint64_t>(words[addr]) &
        low_mask(model_->fetch.word_bits);
    DecodedNodePtr node = decode(word);
    if (!node) {
      error = "cannot decode instruction word at address " +
              std::to_string(addr);
      return false;
    }
    out.slots.push_back(std::move(node));
    if (!chains_next(word)) break;
    if (slot + 1 == max_slots) {
      error = "execute packet at address " + std::to_string(index) +
              " exceeds the maximum packet size";
      return false;
    }
  }
  out.words = static_cast<unsigned>(out.slots.size());
  return true;
}

std::uint64_t Decoder::encode(const DecodedNode& node) const {
  std::uint64_t word = 0;
  unsigned cursor = node.op->coding_width;
  encode_node(node, word, cursor, node.op->coding_width);
  return word;
}

void Decoder::encode_node(const DecodedNode& node, std::uint64_t& word,
                          unsigned& cursor, unsigned total_width) const {
  (void)total_width;
  const Operation& op = *node.op;
  for (const auto& elem : op.coding) {
    cursor -= elem.width;
    switch (elem.kind) {
      case CodingElem::Kind::kBits:
        word = insert_bits(word, cursor, elem.width, elem.bits);
        break;
      case CodingElem::Kind::kField:
        word = insert_bits(
            word, cursor, elem.width,
            static_cast<std::uint64_t>(
                node.fields[static_cast<std::size_t>(elem.slot)]));
        break;
      case CodingElem::Kind::kRef: {
        const auto& sub = node.children[static_cast<std::size_t>(elem.slot)];
        if (!sub)
          throw SimError("encode: child '" +
                         op.children[static_cast<std::size_t>(elem.slot)]
                             .name +
                         "' of operation '" + op.name + "' is unbound");
        // Encode the child into its own sub-segment: temporarily rebase.
        unsigned sub_cursor = cursor + sub->op->coding_width;
        encode_node(*sub, word, sub_cursor, total_width);
        break;
      }
    }
  }
}

}  // namespace lisasim
