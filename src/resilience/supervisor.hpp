// The resilient execution supervisor: wraps any simulation level behind a
// recovery policy so a recoverable SimError no longer kills the run.
//
// The supervisor slices the run into quanta (bounded run() calls) and
// keeps a checkpoint of the last known-good cycle boundary. When a
// quantum raises a recoverable SimError — an injected fault, a staleness
// storm, a compile-shard failure — it restores the checkpoint and retries
// under a bounded-exponential probation budget; when the per-level retry
// budget exhausts it *degrades*: the next level down the ladder
//
//   trace → compiled-static → compiled-dynamic → decode-cached → interp
//
// is built fresh and the run is *replayed* from cycle 0 up to the
// checkpointed cycle. Replay — not cross-level checkpoint restore — is
// what keeps degradation sound: an in-flight tree-walk packet's activation
// queues cannot be reconstructed from a compiled-level checkpoint, but
// every level is bit-identical to the interpretive oracle by construction,
// so re-running the prefix lands on the exact same state. The interpretive
// level is the ladder's floor and retries until the total recovery budget
// runs out.
//
// Every transition is recorded in a RecoveryLog (exposed via --stats and
// the SimObserver::on_recovery callback), so an unattended fleet can see
// *that* and *why* a session fell off the fast path. A run with no faults
// and no recoveries costs one initial checkpoint and one engine re-entry
// per quantum — the ≤2% overhead budget bench_compare now gates.
//
// Caller-supplied RunLimits are interpreted over the *whole* supervised
// run (watchdog_cycles is an absolute cycle budget); a caller watchdog
// expiring is an outcome, not a fault, and is rethrown unrecovered. The
// one semantic caveat of quantization: max_stuck_cycles streaks reset at
// quantum boundaries, so a stuck stop may fire up to one quantum later
// than under a single unsupervised run().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "resilience/fault.hpp"
#include "sim/checkpoint.hpp"
#include "sim/guard.hpp"
#include "sim/observer.hpp"
#include "sim/result.hpp"
#include "sim/table_cache.hpp"

namespace lisasim {

/// One supervisor transition. `kFault` records an injection firing;
/// `kRetry` a restore-and-retry of the current level; `kDegrade` a level
/// drop (from → to) with replay; `kGiveUp` the recovery budget running
/// out just before the error is rethrown.
struct RecoveryEvent {
  enum class Kind : std::uint8_t { kFault, kRetry, kDegrade, kGiveUp };

  Kind kind = Kind::kFault;
  std::uint64_t cycle = 0;  // absolute cycle of the transition
  SimLevel from = SimLevel::kInterpretive;
  SimLevel to = SimLevel::kInterpretive;  // != from only for kDegrade
  FaultKind fault = FaultKind::kMemory;   // valid iff has_fault
  bool has_fault = false;
  unsigned attempt = 0;              // retry ordinal at this level
  std::uint64_t backoff_cycles = 0;  // probation quantum granted (kRetry)
  std::string error;                 // SimError text (kRetry/kDegrade/kGiveUp)
};

const char* recovery_event_kind_name(RecoveryEvent::Kind kind);

/// The supervisor's transition history plus roll-up counters, rendered by
/// summary() for --stats output.
struct RecoveryLog {
  std::vector<RecoveryEvent> events;

  unsigned faults_injected() const { return count(RecoveryEvent::Kind::kFault); }
  unsigned retries() const { return count(RecoveryEvent::Kind::kRetry); }
  unsigned degradations() const {
    return count(RecoveryEvent::Kind::kDegrade);
  }

  std::string summary() const;

 private:
  unsigned count(RecoveryEvent::Kind kind) const {
    unsigned n = 0;
    for (const RecoveryEvent& event : events)
      if (event.kind == kind) ++n;
    return n;
  }
};

struct SupervisorConfig {
  /// Level the run starts at (the top of this run's ladder).
  SimLevel level = SimLevel::kCompiledStatic;
  /// Self-modifying-code policy for the guarded levels.
  GuardPolicy guard_policy = GuardPolicy::kOff;
  /// Optional shared table cache (also the cache-evict/-corrupt target).
  SimTableCache* cache = nullptr;
  /// Sharded-build worker count for load()-time compilation.
  unsigned threads = 1;
  /// Injected fault schedule (empty = plain supervised run).
  FaultPlan faults;
  /// Restore-and-retry attempts at a level before degrading below it.
  unsigned max_retries_per_level = 1;
  /// Hard ceiling on recoveries (retries + degradations) across the whole
  /// run; exceeding it rethrows the last error (kGiveUp).
  unsigned max_total_recoveries = 64;
  /// Probation quantum after attempt k is min(base << k, cap) cycles: a
  /// recurring fault can lose at most that much replayed work, and clean
  /// probations ramp back to full-size quanta (the bounded exponential
  /// backoff of the recovery policy, measured on the simulated clock).
  std::uint64_t backoff_base_cycles = 64;
  std::uint64_t backoff_cap_cycles = 4096;
  /// Supervision slice: the soft cap of one run() call.
  std::uint64_t quantum_cycles = std::uint64_t{1} << 16;
  /// Extra periodic checkpoints every N cycles (0 = checkpoint only at
  /// cycle 0 and at fault boundaries — the no-fault fast configuration).
  std::uint64_t checkpoint_interval = 0;
  /// Receives on_recovery for every logged event (may be nullptr). The
  /// observer is *not* attached to the engine (that would disable the
  /// trace tier and slow the cycle loop); it only sees recovery events.
  SimObserver* observer = nullptr;
};

/// Outcome of a supervised run: the accumulated RunResult (equal to what
/// one unfaulted run() would have returned), the level the run finished
/// at, and the transition log.
struct SupervisedRun {
  RunResult result;
  SimLevel final_level = SimLevel::kInterpretive;
  RecoveryLog log;
};

/// Type-erased simulator handle: the supervisor drives every level —
/// interp, decode-cached, compiled dynamic/static, trace — through this
/// one seam. Optional capabilities (guard staleness, compile-fault arming)
/// default to no-ops on levels that lack the seam.
class AnySim {
 public:
  virtual ~AnySim() = default;
  virtual void load(const LoadedProgram& program) = 0;
  virtual RunResult run(const RunLimits& limits) = 0;
  virtual EngineCheckpoint save_checkpoint() const = 0;
  virtual void restore_checkpoint(const EngineCheckpoint& cp) = 0;
  virtual ProcessorState& state() = 0;
  virtual SimLevel level() const = 0;
  virtual void force_guard_stale() {}
};

/// Build a simulator for `level` configured per `config` (guard policy,
/// cache, threads, compile-fault budget for the levels that compile).
std::unique_ptr<AnySim> make_supervised_sim(
    const Model& model, SimLevel level, const SupervisorConfig& config,
    const std::shared_ptr<std::atomic<int>>& compile_fault_budget);

/// The ladder step below `level`; false at the interpretive floor.
bool sim_level_below(SimLevel level, SimLevel& out);

class RunSupervisor {
 public:
  /// Builds and loads the starting-level simulator. A compile fault
  /// scheduled at cycle 0 fires before the first quantum, not here.
  RunSupervisor(const Model& model, const LoadedProgram& program,
                SupervisorConfig config);
  ~RunSupervisor();

  /// Supervise one run to halt (or to the caller's limits). Recoverable
  /// faults are absorbed per the recovery policy; fatal errors, caller
  /// watchdog expiries and exhausted recovery budgets propagate.
  SupervisedRun run(const RunLimits& limits = {});

  /// Architectural state of the current simulator (bit-compare seam).
  ProcessorState& state();
  SimLevel level() const { return level_; }
  const RecoveryLog& log() const { return log_; }

 private:
  struct Saved {
    EngineCheckpoint engine;
    RunResult acc;
    std::uint64_t pos = 0;
  };

  void record(RecoveryEvent event);
  Saved snapshot(const RunResult& acc, std::uint64_t pos) const;
  void map_fault_hook();
  /// Fire every fault due at `pos`. Returns true when the program must be
  /// reloaded through the cache before the next quantum (cache faults).
  bool fire_due_faults(std::uint64_t pos, RunLimits& quantum,
                       bool& injected_limits);
  /// Drop to the next level down and replay to `target_cycles`; loops
  /// further down if the rebuild itself keeps faulting. Returns the replay
  /// result (== the accumulated result at target_cycles).
  RunResult degrade_and_replay(std::uint64_t target_cycles,
                               const std::string& why);

  const Model* model_;
  const LoadedProgram* program_;
  SupervisorConfig config_;
  SimLevel level_;
  FaultInjector injector_;
  std::shared_ptr<std::atomic<int>> compile_fault_budget_;
  FaultMemoryHook memory_fault_;
  bool hook_mapped_ = false;  // per sim instance; reset on rebuild
  std::unique_ptr<AnySim> sim_;
  RecoveryLog log_;
  unsigned total_recoveries_ = 0;
};

/// Per-lane outcome of a supervised batch: the lane's run (recovered
/// in-place when a fault hit it), the level its final state was produced
/// at, and that lane's recovery log.
struct SupervisedLane {
  LaneRun run;
  SimLevel final_level = SimLevel::kCompiledStatic;
  RecoveryLog log;
  bool recovered = false;  // a fault hit this lane and recovery replayed it
};

/// Batch-wide supervision: drives a BatchedSimulator and recovers faulting
/// lanes individually — the batch keeps running while a hit lane is
/// replayed on a fresh sequential simulator at a degraded level and its
/// final state written back into the lane. Organic retirements (halt,
/// caller watchdog, fatal program errors) pass through untouched.
class BatchSupervisor {
 public:
  /// `config.level` is the degraded level faulting lanes are replayed at
  /// — the batch itself always runs compiled-static, so a config.level of
  /// compiled-static (or trace) degrades to the interpretive floor.
  /// `config.faults` is injected into lane `fault_lane` (the limit kinds
  /// watchdog/stuck apply batch-wide and only when the caller set no limit
  /// of that kind; guard/cache/compile kinds have no per-lane seam and are
  /// logged as no-ops).
  BatchSupervisor(const Model& model, const LoadedProgram& program,
                  unsigned lanes, SupervisorConfig config,
                  unsigned fault_lane = 0);
  ~BatchSupervisor();

  /// Lane state access for pre-run stimulus fan-out (forwarded to the
  /// underlying batch).
  ProcessorState& lane_state(unsigned lane);

  /// Run every lane to retirement (or the caller's limits), recovering
  /// injected-fault casualties. Call once per load.
  void run(const RunLimits& limits = {});

  const SupervisedLane& lane(unsigned lane) const { return lanes_[lane]; }
  unsigned lanes() const { return static_cast<unsigned>(lanes_.size()); }

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<SupervisedLane> lanes_;
};

}  // namespace lisasim
