#include "resilience/supervisor.hpp"

#include <algorithm>
#include <string_view>

#include "sim/batched.hpp"
#include "sim/cached_interp.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"

namespace lisasim {

namespace {

/// Injected watchdog expiry: small enough to fire almost immediately,
/// large enough that the throw still lands on a clean cycle boundary of a
/// non-degenerate quantum.
constexpr std::uint64_t kInjectedWatchdogCycles = 4;

/// Type-erasing holder: every concrete simulator level behind the AnySim
/// seam. Optional capabilities are probed with `requires` so the holder
/// compiles against levels that lack the seam (interp has no guard, the
/// decode-cached level no simulation compiler).
template <typename SimT>
class HolderSim final : public AnySim {
 public:
  template <typename... Args>
  explicit HolderSim(SimLevel level, Args&&... args)
      : sim_(std::forward<Args>(args)...), level_(level) {}

  void load(const LoadedProgram& program) override { sim_.load(program); }
  RunResult run(const RunLimits& limits) override { return sim_.run(limits); }
  EngineCheckpoint save_checkpoint() const override {
    return sim_.save_checkpoint();
  }
  void restore_checkpoint(const EngineCheckpoint& cp) override {
    sim_.restore_checkpoint(cp);
  }
  ProcessorState& state() override { return sim_.state(); }
  SimLevel level() const override { return level_; }
  void force_guard_stale() override {
    if constexpr (requires(SimT& s) { s.force_guard_stale(); })
      sim_.force_guard_stale();
  }

  SimT& sim() { return sim_; }

 private:
  SimT sim_;
  SimLevel level_;
};

}  // namespace

const char* recovery_event_kind_name(RecoveryEvent::Kind kind) {
  switch (kind) {
    case RecoveryEvent::Kind::kFault: return "fault";
    case RecoveryEvent::Kind::kRetry: return "retry";
    case RecoveryEvent::Kind::kDegrade: return "degrade";
    case RecoveryEvent::Kind::kGiveUp: return "give-up";
  }
  return "?";
}

std::string RecoveryLog::summary() const {
  std::string out = "recovery log: " + std::to_string(faults_injected()) +
                    " fault(s) injected, " + std::to_string(retries()) +
                    " retrie(s), " + std::to_string(degradations()) +
                    " degradation(s)\n";
  for (const RecoveryEvent& event : events) {
    out += "  cycle " + std::to_string(event.cycle) + ": " +
           recovery_event_kind_name(event.kind);
    if (event.kind == RecoveryEvent::Kind::kFault) {
      out += " " + std::string(fault_kind_name(event.fault));
    } else if (event.kind == RecoveryEvent::Kind::kDegrade) {
      out += " " + std::string(sim_level_name(event.from)) + " -> " +
             std::string(sim_level_name(event.to));
    } else if (event.kind == RecoveryEvent::Kind::kRetry) {
      out += " attempt " + std::to_string(event.attempt) + " (backoff " +
             std::to_string(event.backoff_cycles) + " cycles)";
    }
    if (!event.error.empty()) out += ": " + event.error;
    out += "\n";
  }
  return out;
}

bool sim_level_below(SimLevel level, SimLevel& out) {
  switch (level) {
    case SimLevel::kNative: out = SimLevel::kTrace; return true;
    case SimLevel::kTrace: out = SimLevel::kCompiledStatic; return true;
    case SimLevel::kCompiledStatic:
      out = SimLevel::kCompiledDynamic;
      return true;
    case SimLevel::kCompiledDynamic:
      out = SimLevel::kDecodeCached;
      return true;
    case SimLevel::kDecodeCached: out = SimLevel::kInterpretive; return true;
    case SimLevel::kInterpretive: return false;
  }
  return false;
}

std::unique_ptr<AnySim> make_supervised_sim(
    const Model& model, SimLevel level, const SupervisorConfig& config,
    const std::shared_ptr<std::atomic<int>>& compile_fault_budget) {
  switch (level) {
    case SimLevel::kInterpretive:
      return std::make_unique<HolderSim<InterpSimulator>>(level, model);
    case SimLevel::kDecodeCached: {
      auto holder =
          std::make_unique<HolderSim<CachedInterpSimulator>>(level, model);
      holder->sim().set_guard_policy(config.guard_policy);
      return holder;
    }
    case SimLevel::kCompiledDynamic:
    case SimLevel::kCompiledStatic:
    case SimLevel::kTrace:
    case SimLevel::kNative: {
      auto holder =
          std::make_unique<HolderSim<CompiledSimulator>>(level, model, level);
      holder->sim().set_guard_policy(config.guard_policy);
      holder->sim().set_threads(config.threads);
      if (config.cache) holder->sim().set_table_cache(config.cache);
      holder->sim().set_compile_fault_budget(compile_fault_budget);
      return holder;
    }
  }
  throw SimError("make_supervised_sim: unknown simulation level");
}

RunSupervisor::RunSupervisor(const Model& model, const LoadedProgram& program,
                             SupervisorConfig config)
    : model_(&model),
      program_(&program),
      config_(std::move(config)),
      level_(config_.level),
      injector_(config_.faults),
      compile_fault_budget_(std::make_shared<std::atomic<int>>(0)) {
  sim_ = make_supervised_sim(*model_, level_, config_, compile_fault_budget_);
  sim_->load(*program_);
}

RunSupervisor::~RunSupervisor() = default;

ProcessorState& RunSupervisor::state() { return sim_->state(); }

void RunSupervisor::record(RecoveryEvent event) {
  if (config_.observer) config_.observer->on_recovery(event);
  log_.events.push_back(std::move(event));
}

RunSupervisor::Saved RunSupervisor::snapshot(const RunResult& acc,
                                             std::uint64_t pos) const {
  return Saved{sim_->save_checkpoint(), acc, pos};
}

void RunSupervisor::map_fault_hook() {
  if (hook_mapped_) return;
  const ResourceId resource = pick_fault_resource(*model_);
  if (resource < 0) return;  // model has no array resource to fault
  const Resource& info =
      model_->resources[static_cast<std::size_t>(resource)];
  sim_->state().map_hook(resource, 0, info.size, &memory_fault_);
  hook_mapped_ = true;
}

bool RunSupervisor::fire_due_faults(std::uint64_t pos, RunLimits& quantum,
                                    bool& injected_limits) {
  bool need_reload = false;
  for (const FaultPoint& point : injector_.take_due(pos)) {
    RecoveryEvent event;
    event.kind = RecoveryEvent::Kind::kFault;
    event.cycle = pos;
    event.from = event.to = level_;
    event.fault = point.kind;
    event.has_fault = true;
    record(std::move(event));
    switch (point.kind) {
      case FaultKind::kMemory: {
        const ResourceId resource = pick_fault_resource(*model_);
        if (resource < 0) break;
        map_fault_hook();
        memory_fault_.arm(
            model_->resources[static_cast<std::size_t>(resource)].name);
        break;
      }
      case FaultKind::kGuardStorm:
        sim_->force_guard_stale();
        break;
      case FaultKind::kCacheEvict:
        if (config_.cache) {
          config_.cache->clear();
          need_reload = true;
        }
        break;
      case FaultKind::kCacheCorrupt:
        if (config_.cache) {
          config_.cache->debug_corrupt();
          need_reload = true;
        }
        break;
      case FaultKind::kCompile:
        // Empty the cache so the reload actually reaches the compiler,
        // then bank one failure. Levels without a simulation compiler
        // (decode-cached, interp) reload untouched — which is exactly the
        // ladder's point.
        if (config_.cache) config_.cache->clear();
        compile_fault_budget_->fetch_add(1);
        need_reload = true;
        break;
      case FaultKind::kWatchdog:
        quantum.watchdog_cycles = kInjectedWatchdogCycles;
        injected_limits = true;
        break;
      case FaultKind::kStuck:
        quantum.max_stuck_cycles = 1;
        injected_limits = true;
        break;
    }
  }
  return need_reload;
}

RunResult RunSupervisor::degrade_and_replay(std::uint64_t target_cycles,
                                            const std::string& why) {
  SimLevel next;
  std::string reason = why;
  while (sim_level_below(level_, next)) {
    RecoveryEvent event;
    event.kind = RecoveryEvent::Kind::kDegrade;
    event.cycle = target_cycles;
    event.from = level_;
    event.to = next;
    event.error = reason;
    record(std::move(event));
    level_ = next;
    sim_ = make_supervised_sim(*model_, level_, config_,
                               compile_fault_budget_);
    hook_mapped_ = false;
    try {
      sim_->load(*program_);
      if (target_cycles == 0) return RunResult{};
      // Replay, don't restore: a checkpoint taken at a higher level cannot
      // carry a tree-walk packet's pending activation queues into a lower
      // one, but all levels are bit-identical by construction, so
      // re-running the prefix reproduces the checkpointed state exactly.
      RunLimits replay;
      replay.max_cycles = target_cycles;
      return sim_->run(replay);
    } catch (const SimError& error) {
      if (!error.recoverable()) throw;
      if (++total_recoveries_ > config_.max_total_recoveries) {
        RecoveryEvent give_up;
        give_up.kind = RecoveryEvent::Kind::kGiveUp;
        give_up.cycle = target_cycles;
        give_up.from = give_up.to = level_;
        give_up.error = error.what();
        record(std::move(give_up));
        throw;
      }
      reason = error.what();  // keep descending
    }
  }
  // Unreachable in practice: the interpretive floor neither compiles nor
  // consults the injected seams during a replay.
  throw SimError("supervisor: replay failed at the interpretive floor: " +
                 reason);
}

SupervisedRun RunSupervisor::run(const RunLimits& caller) {
  RunResult acc;
  std::uint64_t pos = 0;
  unsigned attempt = 0;
  std::uint64_t probation = 0;
  Saved cp = snapshot(acc, pos);
  bool need_reload = false;

  while (!acc.halted && pos < caller.max_cycles) {
    bool injected_limits = false;
    try {
      if (need_reload) {
        // A cache fault dropped (or corrupted) the shared translations:
        // reload through the cache, then rewind to the checkpointed
        // boundary. A failed load leaves the simulator untouched (the
        // compiler throws before any state reset), so the catch below
        // retries without a restore.
        sim_->load(*program_);
        sim_->restore_checkpoint(cp.engine);
        need_reload = false;
        continue;
      }

      RunLimits quantum;
      if (injector_.pending() != 0 || config_.checkpoint_interval != 0) {
        const bool at_interval =
            config_.checkpoint_interval != 0 &&
            pos % config_.checkpoint_interval == 0;
        // Checkpoint the known-good boundary before anything fires at it.
        const bool at_fault =
            pos != 0 && injector_.next_stop(pos - 1) == pos;
        if ((at_interval && pos != cp.pos) || at_fault || pos == 0)
          cp = snapshot(acc, pos);
        need_reload = fire_due_faults(pos, quantum, injected_limits);
        if (need_reload) continue;
      }

      std::uint64_t stop =
          pos + (probation != 0 ? probation : config_.quantum_cycles);
      stop = std::min(stop, injector_.next_stop(pos));
      if (config_.checkpoint_interval != 0)
        stop = std::min(
            stop, (pos / config_.checkpoint_interval + 1) *
                      config_.checkpoint_interval);
      stop = std::min(stop, caller.max_cycles);
      quantum.max_cycles = stop - pos;
      // Caller limits are absolute over the supervised run; the engine's
      // are per call, so rebase them to the current position. An injected
      // limit (set above) overrides for this one quantum.
      if (caller.watchdog_cycles != 0 && quantum.watchdog_cycles == 0)
        quantum.watchdog_cycles =
            caller.watchdog_cycles > pos ? caller.watchdog_cycles - pos : 1;
      if (caller.max_stuck_cycles != 0 && quantum.max_stuck_cycles == 0)
        quantum.max_stuck_cycles = caller.max_stuck_cycles;

      const RunResult slice = sim_->run(quantum);
      acc.cycles += slice.cycles;
      acc.fetches += slice.fetches;
      acc.packets_retired += slice.packets_retired;
      acc.slots_retired += slice.slots_retired;
      acc.halted = slice.halted;
      pos += slice.cycles;
      attempt = 0;
      probation = 0;
    } catch (const SimError& error) {
      if (!error.recoverable()) throw;
      // A watchdog-shaped stop the supervisor did not arm is the caller's
      // own limit expiring: that is an *outcome* of the run, not a fault
      // to recover from.
      if (!injected_limits &&
          std::string_view(error.what()).starts_with("watchdog:"))
        throw;
      if (++total_recoveries_ > config_.max_total_recoveries) {
        RecoveryEvent give_up;
        give_up.kind = RecoveryEvent::Kind::kGiveUp;
        give_up.cycle = cp.pos;
        give_up.from = give_up.to = level_;
        give_up.error = error.what();
        record(std::move(give_up));
        throw;
      }
      const unsigned shift = std::min(attempt, 16u);
      const std::uint64_t backoff =
          std::min(config_.backoff_base_cycles << shift,
                   config_.backoff_cap_cycles);
      SimLevel below;
      const bool can_degrade = sim_level_below(level_, below);
      if (attempt < config_.max_retries_per_level || !can_degrade) {
        RecoveryEvent retry;
        retry.kind = RecoveryEvent::Kind::kRetry;
        retry.cycle = cp.pos;
        retry.from = retry.to = level_;
        retry.attempt = ++attempt;
        retry.backoff_cycles = backoff;
        retry.error = error.what();
        record(std::move(retry));
        probation = backoff;
        if (!need_reload) {
          sim_->restore_checkpoint(cp.engine);
          acc = cp.acc;
          pos = cp.pos;
        }
      } else {
        acc = degrade_and_replay(cp.pos, error.what());
        pos = cp.pos;
        attempt = 0;
        probation = backoff;
        need_reload = false;
        cp = snapshot(acc, pos);
      }
    }
  }
  return SupervisedRun{acc, level_, log_};
}

// ---------------------------------------------------------------------------
// Batch supervision

class BatchSupervisor::Impl {
 public:
  Impl(const Model& model, const LoadedProgram& program, unsigned lanes,
       SupervisorConfig config, unsigned fault_lane)
      : model_(&model),
        program_(&program),
        config_(std::move(config)),
        fault_lane_(fault_lane),
        batch_(model, lanes) {
    batch_.set_threads(config_.threads);
    batch_.set_guard_policy(config_.guard_policy);
    batch_.load(program);
  }

  ProcessorState& lane_state(unsigned lane) { return batch_.lane_state(lane); }

  void run(const RunLimits& caller, std::vector<SupervisedLane>& out) {
    const unsigned lanes = batch_.lanes();
    out.assign(lanes, SupervisedLane{});
    // Cycle-0 checkpoints, taken after the caller fanned stimuli across
    // the lanes: with an empty pipeline they are fully level-portable, so
    // a faulted lane can be replayed on any sequential level.
    std::vector<EngineCheckpoint> initial(lanes);
    for (unsigned lane = 0; lane < lanes; ++lane)
      initial[lane] = batch_.save_lane_checkpoint(lane);

    // Phase 1: run every lane up to the earliest fault cycle, then fire.
    // Lane-targeted kinds arm on fault_lane_ only; the limit kinds apply
    // batch-wide (every casualty is then recovered individually). Kinds
    // with no per-lane seam (guard/cache/compile) are logged as no-ops.
    // BatchedSimulator limits are per run() call (lane results reset each
    // call), so phase-2 limits are rebased past the phase-1 prefix and the
    // prefix results are summed back into the per-lane outcome below.
    std::uint64_t arm_at = UINT64_MAX;
    for (const FaultPoint& point : config_.faults.points)
      arm_at = std::min(arm_at, point.cycle);
    const bool two_phase =
        arm_at != UINT64_MAX && arm_at > 0 && arm_at < caller.max_cycles;
    std::vector<LaneRun> prefix(lanes);
    RunLimits phase2 = caller;
    bool injected_limits = false;
    if (arm_at != UINT64_MAX) {
      if (two_phase) {
        RunLimits phase1 = caller;
        phase1.max_cycles = arm_at;
        batch_.run(phase1);
        for (unsigned lane = 0; lane < lanes; ++lane)
          prefix[lane] = batch_.lane_run(lane);
        if (caller.max_cycles != UINT64_MAX)
          phase2.max_cycles = caller.max_cycles - arm_at;
        if (caller.watchdog_cycles != 0)
          phase2.watchdog_cycles = caller.watchdog_cycles > arm_at
                                       ? caller.watchdog_cycles - arm_at
                                       : 1;
      }
      for (const FaultPoint& point : config_.faults.points) {
        RecoveryEvent event;
        event.kind = RecoveryEvent::Kind::kFault;
        event.cycle = point.cycle;
        event.from = event.to = SimLevel::kCompiledStatic;
        event.fault = point.kind;
        event.has_fault = true;
        out[fault_lane_].log.events.push_back(std::move(event));
        switch (point.kind) {
          case FaultKind::kMemory: {
            const ResourceId resource = pick_fault_resource(*model_);
            if (resource < 0) break;
            ProcessorState& state = batch_.lane_state(fault_lane_);
            if (!hook_mapped_) {
              const Resource& info =
                  model_->resources[static_cast<std::size_t>(resource)];
              state.map_hook(resource, 0, info.size, &memory_fault_);
              hook_mapped_ = true;
            }
            memory_fault_.arm(
                model_->resources[static_cast<std::size_t>(resource)].name);
            break;
          }
          case FaultKind::kWatchdog:
            if (caller.watchdog_cycles == 0) {
              phase2.watchdog_cycles = kInjectedWatchdogCycles;
              injected_limits = true;
            }
            break;
          case FaultKind::kStuck:
            if (caller.max_stuck_cycles == 0) {
              phase2.max_stuck_cycles = 1;
              injected_limits = true;
            }
            break;
          default:
            break;  // no per-lane seam; logged above
        }
      }
    }
    batch_.run(phase2);

    // Aftermath: recover every *injected* casualty by replaying its lane
    // from the cycle-0 checkpoint on a fresh sequential simulator at the
    // degraded level, then write the final state back into the SoA lane.
    // Organic outcomes — halts, fatal program errors, the caller's own
    // watchdog expiring — pass through unmodified.
    for (unsigned lane = 0; lane < lanes; ++lane) {
      SupervisedLane& sup = out[lane];
      sup.run = batch_.lane_run(lane);
      sup.final_level = SimLevel::kCompiledStatic;
      if (two_phase && !prefix[lane].done) {
        sup.run.result.cycles += prefix[lane].result.cycles;
        sup.run.result.fetches += prefix[lane].result.fetches;
        sup.run.result.packets_retired += prefix[lane].result.packets_retired;
        sup.run.result.slots_retired += prefix[lane].result.slots_retired;
      } else if (two_phase && prefix[lane].done) {
        sup.run = prefix[lane];  // retired before the faults armed
      }
      if (!sup.run.errored || !sup.run.recoverable) continue;
      const std::string_view error(sup.run.error);
      const bool injected_memory =
          error.starts_with("injected memory fault");
      const bool injected_limit =
          injected_limits && error.starts_with("watchdog:");
      if (injected_memory || injected_limit)
        recover_lane(lane, initial[lane], caller, sup);
    }
  }

 private:
  void recover_lane(unsigned lane, const EngineCheckpoint& initial,
                    const RunLimits& caller, SupervisedLane& sup) {
    SimLevel target = config_.level;
    if (target == SimLevel::kCompiledStatic || target == SimLevel::kTrace)
      target = SimLevel::kInterpretive;  // degrade off the batch's level
    RecoveryEvent event;
    event.kind = RecoveryEvent::Kind::kDegrade;
    event.cycle = 0;
    event.from = SimLevel::kCompiledStatic;
    event.to = target;
    event.error = sup.run.error;
    sup.log.events.push_back(std::move(event));

    auto sim = make_supervised_sim(*model_, target, config_, nullptr);
    sim->load(*program_);
    sim->restore_checkpoint(initial);
    sup.run = LaneRun{};
    try {
      sup.run.result = sim->run(caller);
      sup.run.done = sup.run.result.halted;
    } catch (const SimError& error) {
      sup.run.done = true;
      sup.run.errored = true;
      sup.run.recoverable = error.recoverable();
      sup.run.error = error.what();
    }
    batch_.lane_state(lane).restore_storage(sim->state().save_storage());
    sup.final_level = target;
    sup.recovered = true;
  }

  const Model* model_;
  const LoadedProgram* program_;
  SupervisorConfig config_;
  unsigned fault_lane_;
  BatchedSimulator batch_;
  FaultMemoryHook memory_fault_;
  bool hook_mapped_ = false;
};

BatchSupervisor::BatchSupervisor(const Model& model,
                                 const LoadedProgram& program, unsigned lanes,
                                 SupervisorConfig config, unsigned fault_lane)
    : impl_(std::make_unique<Impl>(model, program, lanes, std::move(config),
                                   fault_lane)) {}

BatchSupervisor::~BatchSupervisor() = default;

ProcessorState& BatchSupervisor::lane_state(unsigned lane) {
  return impl_->lane_state(lane);
}

void BatchSupervisor::run(const RunLimits& limits) {
  impl_->run(limits, lanes_);
}

}  // namespace lisasim
