// Deterministic fault injection for resilience testing (the supervisor's
// chaos half). A FaultPlan is a seed-driven (or hand-written) schedule of
// FaultPoints; the FaultInjector walks the plan as the supervised run
// advances, firing each point when the run reaches its cycle. Faults are
// injected at seams the simulator already has — nothing here reaches into
// engine internals:
//
//   memory        a one-shot MemoryHook over an architectural array
//                 resource throws a recoverable SimError on the next
//                 access (transient bus fault / ECC stand-in)
//   guard-storm   every guard generation is bumped at once, forcing the
//                 guarded issue path to re-translate (or tree-walk) each
//                 in-flight packet — a staleness storm with no actual
//                 memory change, so semantics are preserved
//   cache-evict   the shared SimTableCache is emptied (eviction under
//                 pressure) and the program reloaded through the miss path
//   cache-corrupt stored table fingerprints are flipped; the next lookup
//                 must detect the corruption and recompile
//   compile       the simulation compiler fails its next N invocations
//                 with a recoverable SimError (compile-shard failure)
//   watchdog      the next supervision quantum runs under a tiny
//                 watchdog_cycles limit, expiring almost immediately
//   stuck         the next supervision quantum runs with max_stuck_cycles
//                 = 1, turning the first non-retiring cycle into a stop
//
// A point's `repeat` is the number of times it re-fires when the
// supervisor rewinds over its cycle during recovery — the knob that turns
// a transient fault into a persistent one and drives the retry budget into
// the degradation ladder.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "model/model.hpp"
#include "model/state.hpp"

namespace lisasim {

enum class FaultKind : std::uint8_t {
  kMemory,
  kGuardStorm,
  kCacheEvict,
  kCacheCorrupt,
  kCompile,
  kWatchdog,
  kStuck,
};

inline constexpr unsigned kFaultKindCount = 7;

const char* fault_kind_name(FaultKind kind);
/// Parse a kind name as printed by fault_kind_name ("memory",
/// "guard-storm", ...). Returns false on an unknown name.
bool parse_fault_kind(std::string_view text, FaultKind& out);

/// One scheduled fault: `kind` fires when the supervised run reaches
/// absolute cycle `cycle`, and re-fires (up to `repeat` times total) each
/// time recovery rewinds the run back to that cycle.
struct FaultPoint {
  FaultKind kind = FaultKind::kMemory;
  std::uint64_t cycle = 0;
  unsigned repeat = 1;

  friend bool operator==(const FaultPoint&, const FaultPoint&) = default;
};

/// An ordered fault schedule. Plans are value types: the CLI parses them
/// from --inject-fault specs, the fuzz differ derives them from the seed.
struct FaultPlan {
  std::vector<FaultPoint> points;

  bool empty() const { return points.empty(); }
  void add(FaultPoint point) { points.push_back(point); }

  /// Parse one "KIND@CYCLE" or "KIND@CYCLExN" spec (e.g. "memory@1000",
  /// "watchdog@500x3"). Throws SimError (fatal — these come from the
  /// command line, not the guest) on malformed input.
  static FaultPoint parse_point(std::string_view spec);

  /// Parse a comma-separated list of point specs.
  static FaultPlan parse(std::string_view specs);

  /// A reproducible random plan: `count` points with cycles in
  /// [1, horizon), kinds and repeats drawn from a splitmix64 stream of
  /// `seed`. Equal arguments always yield the equal plan.
  static FaultPlan random(std::uint64_t seed, std::uint64_t horizon,
                          unsigned count);

  /// Render as a parse()-compatible spec list (logs and repro bundles).
  std::string describe() const;
};

/// The one-shot throwing hook behind FaultKind::kMemory. Mapped (by the
/// supervisor) over a whole array resource; pass-through until armed, then
/// the next read or write throws a recoverable SimError naming the
/// resource and disarms. Restoring a checkpoint and re-running therefore
/// sees a clean access unless the injector re-arms.
class FaultMemoryHook final : public MemoryHook {
 public:
  void arm(std::string resource_name) {
    armed_ = true;
    resource_ = std::move(resource_name);
  }
  void disarm() { armed_ = false; }
  bool armed() const { return armed_; }
  std::uint64_t fired() const { return fired_; }

  std::int64_t on_read(std::uint64_t index, std::int64_t stored) override {
    maybe_throw(index);
    return stored;
  }
  void on_write(std::uint64_t index, std::int64_t /*value*/) override {
    maybe_throw(index);
  }

 private:
  void maybe_throw(std::uint64_t index);

  bool armed_ = false;
  std::uint64_t fired_ = 0;
  std::string resource_;
};

/// The array resource a memory fault targets: the first array resource
/// that is not the fetch memory (so the fault is never masked by a
/// ProgramGuard mapped over the same words), falling back to the fetch
/// memory, or -1 when the model has no array resource at all.
ResourceId pick_fault_resource(const Model& model);

/// Walks a FaultPlan against the advancing run position. The supervisor
/// stops each quantum at the next pending fault cycle, fires everything
/// due, and lets recovery rewinds re-fire points that still have repeat
/// budget.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// Points scheduled exactly at `pos` with fire budget left. Each point
  /// returned has one firing consumed.
  std::vector<FaultPoint> take_due(std::uint64_t pos);

  /// The earliest cycle > `pos` with a pending point (UINT64_MAX = none):
  /// the supervisor's next mandatory quantum boundary.
  std::uint64_t next_stop(std::uint64_t pos) const;

  unsigned pending() const;
  std::uint64_t fired() const { return fired_; }

 private:
  struct Pending {
    FaultPoint point;
    unsigned remaining = 0;
  };
  std::vector<Pending> points_;
  std::uint64_t fired_ = 0;
};

}  // namespace lisasim
