#include "resilience/fault.hpp"

#include <algorithm>
#include <charconv>

namespace lisasim {

namespace {

constexpr const char* kKindNames[kFaultKindCount] = {
    "memory",  "guard-storm", "cache-evict", "cache-corrupt",
    "compile", "watchdog",    "stuck",
};

/// splitmix64: the usual seed scrambler — small, full-period, and
/// reproducible everywhere (used for the seed-driven random plans).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t parse_u64(std::string_view text, std::string_view what,
                        std::string_view spec) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    throw SimError("fault spec '" + std::string(spec) + "': bad " +
                   std::string(what) + " '" + std::string(text) + "'");
  return value;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  const auto index = static_cast<unsigned>(kind);
  return index < kFaultKindCount ? kKindNames[index] : "?";
}

bool parse_fault_kind(std::string_view text, FaultKind& out) {
  for (unsigned i = 0; i < kFaultKindCount; ++i) {
    if (text == kKindNames[i]) {
      out = static_cast<FaultKind>(i);
      return true;
    }
  }
  return false;
}

FaultPoint FaultPlan::parse_point(std::string_view spec) {
  const std::size_t at = spec.find('@');
  if (at == std::string_view::npos)
    throw SimError("fault spec '" + std::string(spec) +
                   "': expected KIND@CYCLE or KIND@CYCLExN");
  FaultPoint point;
  if (!parse_fault_kind(spec.substr(0, at), point.kind)) {
    std::string known;
    for (unsigned i = 0; i < kFaultKindCount; ++i) {
      if (i != 0) known += ", ";
      known += kKindNames[i];
    }
    throw SimError("fault spec '" + std::string(spec) + "': unknown kind '" +
                   std::string(spec.substr(0, at)) + "' (known: " + known +
                   ")");
  }
  std::string_view rest = spec.substr(at + 1);
  const std::size_t x = rest.find('x');
  if (x != std::string_view::npos) {
    const std::uint64_t repeat =
        parse_u64(rest.substr(x + 1), "repeat count", spec);
    if (repeat == 0 || repeat > 1u << 16)
      throw SimError("fault spec '" + std::string(spec) +
                     "': repeat count must be in [1, 65536]");
    point.repeat = static_cast<unsigned>(repeat);
    rest = rest.substr(0, x);
  }
  point.cycle = parse_u64(rest, "cycle", spec);
  return point;
}

FaultPlan FaultPlan::parse(std::string_view specs) {
  FaultPlan plan;
  while (!specs.empty()) {
    const std::size_t comma = specs.find(',');
    const std::string_view spec = specs.substr(0, comma);
    if (!spec.empty()) plan.add(parse_point(spec));
    if (comma == std::string_view::npos) break;
    specs = specs.substr(comma + 1);
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::uint64_t horizon,
                            unsigned count) {
  FaultPlan plan;
  if (horizon < 2) horizon = 2;
  std::uint64_t state = seed ^ 0x5eedfau;
  for (unsigned i = 0; i < count; ++i) {
    FaultPoint point;
    point.kind =
        static_cast<FaultKind>(splitmix64(state) % kFaultKindCount);
    point.cycle = 1 + splitmix64(state) % (horizon - 1);
    point.repeat = 1 + static_cast<unsigned>(splitmix64(state) % 3);
    plan.add(point);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultPoint& point : points) {
    if (!out.empty()) out += ",";
    out += fault_kind_name(point.kind);
    out += "@" + std::to_string(point.cycle);
    if (point.repeat != 1) out += "x" + std::to_string(point.repeat);
  }
  return out;
}

void FaultMemoryHook::maybe_throw(std::uint64_t index) {
  if (!armed_) return;
  armed_ = false;  // one-shot: the retried access is clean
  ++fired_;
  SimErrorContext context;
  context.resource = resource_;
  throw SimError("injected memory fault: " + resource_ + "[" +
                     std::to_string(index) + "]",
                 SimErrorKind::kRecoverable, std::move(context));
}

ResourceId pick_fault_resource(const Model& model) {
  for (std::size_t i = 0; i < model.resources.size(); ++i) {
    const auto id = static_cast<ResourceId>(i);
    if (id == model.fetch_memory) continue;
    if (model.resources[i].is_array()) return id;
  }
  return model.fetch_memory;  // may be -1 (no array resource at all)
}

FaultInjector::FaultInjector(const FaultPlan& plan) {
  points_.reserve(plan.points.size());
  for (const FaultPoint& point : plan.points)
    points_.push_back({point, point.repeat});
  std::stable_sort(points_.begin(), points_.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.point.cycle < b.point.cycle;
                   });
}

std::vector<FaultPoint> FaultInjector::take_due(std::uint64_t pos) {
  std::vector<FaultPoint> due;
  for (Pending& pending : points_) {
    if (pending.point.cycle != pos || pending.remaining == 0) continue;
    --pending.remaining;
    ++fired_;
    due.push_back(pending.point);
  }
  return due;
}

std::uint64_t FaultInjector::next_stop(std::uint64_t pos) const {
  std::uint64_t stop = UINT64_MAX;
  for (const Pending& pending : points_) {
    if (pending.remaining == 0 || pending.point.cycle <= pos) continue;
    stop = std::min(stop, pending.point.cycle);
  }
  return stop;
}

unsigned FaultInjector::pending() const {
  unsigned count = 0;
  for (const Pending& pending : points_) count += pending.remaining;
  return count;
}

}  // namespace lisasim
