// SYNTAX-driven disassembler: the inverse of the assembler, generated from
// the same machine model sections.
#pragma once

#include <cstdint>
#include <string>

#include "decode/decoder.hpp"
#include "model/model.hpp"

namespace lisasim {

/// Render a decoded instruction back to assembly text (canonical form:
/// field values in decimal).
std::string disassemble_node(const DecodedNode& node);

/// Decode + render one instruction word. Returns ".word <hex>" when the
/// word does not decode.
std::string disassemble_word(const Decoder& decoder, std::uint64_t word);

}  // namespace lisasim
