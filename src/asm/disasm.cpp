#include "asm/disasm.hpp"

#include <cstdio>

namespace lisasim {

namespace {

void render(const DecodedNode& node, std::string& out) {
  const Operation& op = *node.op;
  for (const auto& elem : op.syntax) {
    switch (elem.kind) {
      case SyntaxElem::Kind::kLiteral:
        out += elem.text;
        break;
      case SyntaxElem::Kind::kField:
        out += std::to_string(
            node.fields[static_cast<std::size_t>(elem.slot)]);
        break;
      case SyntaxElem::Kind::kChild: {
        const auto& child = node.children[static_cast<std::size_t>(elem.slot)];
        if (child)
          render(*child, out);
        else
          out += "<?" + op.children[static_cast<std::size_t>(elem.slot)].name +
                 ">";
        break;
      }
    }
  }
}

}  // namespace

std::string disassemble_node(const DecodedNode& node) {
  std::string out;
  render(node, out);
  return out;
}

std::string disassemble_word(const Decoder& decoder, std::uint64_t word) {
  DecodedNodePtr node = decoder.decode(word);
  if (!node) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, ".word 0x%llx",
                  static_cast<unsigned long long>(word));
    return buffer;
  }
  return disassemble_node(*node);
}

}  // namespace lisasim
