#include "asm/assembler.hpp"

#include <cassert>
#include <cctype>
#include <optional>
#include <utility>
#include <vector>

#include "decode/analysis.hpp"
#include "support/bits.hpp"

namespace lisasim {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_space(char c) { return c == ' ' || c == '\t'; }

struct Line {
  enum class Kind : std::uint8_t { kEmpty, kDirective, kInstruction };
  Kind kind = Kind::kEmpty;
  std::string label;       // empty if none
  bool parallel = false;   // line started with '||'
  std::string body;        // directive or instruction text, trimmed
  unsigned number = 0;     // 1-based source line
};

/// Strip comments, extract the optional label and the '||' prefix.
std::vector<Line> split_lines(std::string_view source) {
  std::vector<Line> lines;
  unsigned number = 0;
  std::size_t start = 0;
  while (start <= source.size()) {
    std::size_t end = source.find('\n', start);
    if (end == std::string_view::npos) end = source.size();
    std::string_view raw = source.substr(start, end - start);
    start = end + 1;
    ++number;

    // Comments: ';' and '//'.
    if (const auto semi = raw.find(';'); semi != std::string_view::npos)
      raw = raw.substr(0, semi);
    if (const auto slashes = raw.find("//"); slashes != std::string_view::npos)
      raw = raw.substr(0, slashes);

    Line line;
    line.number = number;
    std::size_t pos = 0;
    while (pos < raw.size() && is_space(raw[pos])) ++pos;

    // Optional label.
    if (pos < raw.size() && is_ident_start(raw[pos])) {
      std::size_t p = pos;
      while (p < raw.size() && is_ident_char(raw[p])) ++p;
      if (p < raw.size() && raw[p] == ':') {
        line.label = std::string(raw.substr(pos, p - pos));
        pos = p + 1;
        while (pos < raw.size() && is_space(raw[pos])) ++pos;
      }
    }

    if (pos + 1 < raw.size() && raw[pos] == '|' && raw[pos + 1] == '|') {
      line.parallel = true;
      pos += 2;
      while (pos < raw.size() && is_space(raw[pos])) ++pos;
    }

    std::size_t tail = raw.size();
    while (tail > pos && is_space(raw[tail - 1])) --tail;
    line.body = std::string(raw.substr(pos, tail - pos));

    if (line.body.empty())
      line.kind = Line::Kind::kEmpty;
    else if (line.body[0] == '.')
      line.kind = Line::Kind::kDirective;
    else
      line.kind = Line::Kind::kInstruction;
    lines.push_back(std::move(line));
    if (end == source.size()) break;
  }
  return lines;
}

/// Parse an integer literal: [-]digits or [-]0x... Returns nullopt and
/// leaves pos untouched on failure.
std::optional<std::int64_t> parse_int(std::string_view s, std::size_t& pos) {
  std::size_t p = pos;
  bool negative = false;
  if (p < s.size() && s[p] == '-') {
    negative = true;
    ++p;
  }
  std::int64_t value = 0;
  if (p + 1 < s.size() && s[p] == '0' && (s[p + 1] == 'x' || s[p + 1] == 'X')) {
    p += 2;
    const std::size_t digits_start = p;
    while (p < s.size() && std::isxdigit(static_cast<unsigned char>(s[p]))) {
      const char c = s[p++];
      const int digit = std::isdigit(static_cast<unsigned char>(c))
                            ? c - '0'
                            : (std::tolower(c) - 'a' + 10);
      value = value * 16 + digit;
    }
    if (p == digits_start) return std::nullopt;
  } else {
    const std::size_t digits_start = p;
    while (p < s.size() && std::isdigit(static_cast<unsigned char>(s[p])))
      value = value * 10 + (s[p++] - '0');
    if (p == digits_start) return std::nullopt;
  }
  pos = p;
  return negative ? -value : value;
}

std::optional<std::string> parse_ident(std::string_view s, std::size_t& pos) {
  if (pos >= s.size() || !is_ident_start(s[pos])) return std::nullopt;
  std::size_t p = pos;
  while (p < s.size() && is_ident_char(s[p])) ++p;
  std::string name(s.substr(pos, p - pos));
  pos = p;
  return name;
}

/// Recursive-descent matcher of instruction text against SYNTAX sections.
class SyntaxMatcher {
 public:
  SyntaxMatcher(const Model& model,
                const std::map<std::string, std::int64_t>& symbols)
      : model_(&model), symbols_(&symbols) {}

  /// Match the whole line against the model's root operation. On failure
  /// returns nullptr; `error` carries the deepest failure explanation.
  DecodedNodePtr match_line(std::string_view text, std::string& error) {
    best_pos_ = 0;
    best_msg_ = "unrecognized instruction";
    if (model_->root < 0) {
      error = "model has no 'instruction' operation";
      return nullptr;
    }
    std::size_t pos = 0;
    auto node = match_op(model_->op(model_->root), text, pos);
    if (node) {
      skip_ws(text, pos);
      if (pos != text.size()) {
        note_failure(pos, "trailing characters after instruction");
        node = nullptr;
      }
    }
    if (!node)
      error = best_msg_ + " (at column " + std::to_string(best_pos_ + 1) + ")";
    return node;
  }

 private:
  static void skip_ws(std::string_view s, std::size_t& pos) {
    while (pos < s.size() && is_space(s[pos])) ++pos;
  }

  void note_failure(std::size_t pos, std::string msg) {
    if (pos >= best_pos_) {
      best_pos_ = pos;
      best_msg_ = std::move(msg);
    }
  }

  DecodedNodePtr match_op(const Operation& op, std::string_view s,
                          std::size_t& pos) {
    auto node = std::make_unique<DecodedNode>(op);
    bool require_ws = false;
    for (const auto& elem : op.syntax) {
      const std::size_t before = pos;
      skip_ws(s, pos);
      if (require_ws && pos == before &&
          elem.kind != SyntaxElem::Kind::kLiteral) {
        note_failure(pos, "expected whitespace");
        return nullptr;
      }
      require_ws = false;
      switch (elem.kind) {
        case SyntaxElem::Kind::kLiteral:
          if (!match_literal(elem.text, s, pos, require_ws)) return nullptr;
          break;
        case SyntaxElem::Kind::kField: {
          const auto& label =
              op.labels[static_cast<std::size_t>(elem.slot)];
          std::int64_t value = 0;
          if (auto v = parse_int(s, pos)) {
            value = *v;
          } else if (auto name = parse_ident(s, pos)) {
            auto it = symbols_->find(*name);
            if (it == symbols_->end()) {
              note_failure(pos, "undefined symbol '" + *name + "'");
              return nullptr;
            }
            value = it->second;
          } else {
            note_failure(pos, "expected operand value for field '" +
                                  label.name + "'");
            return nullptr;
          }
          if (!fits_unsigned(static_cast<std::uint64_t>(value), label.width) &&
              !fits_signed(value, label.width)) {
            note_failure(pos, "operand " + std::to_string(value) +
                                  " does not fit in " +
                                  std::to_string(label.width) + "-bit field '" +
                                  label.name + "'");
            return nullptr;
          }
          node->fields[static_cast<std::size_t>(elem.slot)] =
              static_cast<std::int64_t>(truncate(value, label.width));
          break;
        }
        case SyntaxElem::Kind::kChild: {
          const auto& child =
              op.children[static_cast<std::size_t>(elem.slot)];
          DecodedNodePtr sub;
          for (OperationId alt : child.alternatives) {
            std::size_t attempt = pos;
            sub = match_op(model_->op(alt), s, attempt);
            if (sub) {
              pos = attempt;
              break;
            }
          }
          if (!sub) {
            note_failure(pos, "no alternative of '" + child.name +
                                  "' matches");
            return nullptr;
          }
          sub->parent = node.get();
          node->children[static_cast<std::size_t>(elem.slot)] =
              std::move(sub);
          break;
        }
      }
    }
    return node;
  }

  /// Literal matching: spaces inside the literal match optional whitespace,
  /// except that two alphanumeric characters can never fuse across one —
  /// and a trailing space after an alphanumeric character demands real
  /// whitespace before the next element (so "MVK5" never parses as MVK 5).
  bool match_literal(const std::string& lit, std::string_view s,
                     std::size_t& pos, bool& require_ws_after) {
    char prev = '\0';
    for (std::size_t i = 0; i < lit.size(); ++i) {
      const char c = lit[i];
      if (c == ' ') {
        std::size_t skipped = 0;
        while (pos < s.size() && is_space(s[pos])) {
          ++pos;
          ++skipped;
        }
        // Find the next literal character after the space run.
        std::size_t j = i;
        while (j < lit.size() && lit[j] == ' ') ++j;
        if (j == lit.size()) {
          if (std::isalnum(static_cast<unsigned char>(prev)))
            require_ws_after = skipped == 0;
          return true;  // handled below via require_ws_after
        }
        const char next = lit[j];
        if (skipped == 0 &&
            std::isalnum(static_cast<unsigned char>(prev)) &&
            std::isalnum(static_cast<unsigned char>(next))) {
          note_failure(pos, "expected whitespace");
          return false;
        }
        i = j - 1;
        continue;
      }
      if (pos >= s.size() || s[pos] != c) {
        note_failure(pos, "expected '" + lit + "'");
        return false;
      }
      prev = c;
      ++pos;
    }
    return true;
  }

  const Model* model_;
  const std::map<std::string, std::int64_t>* symbols_;
  std::size_t best_pos_ = 0;
  std::string best_msg_;
};

/// Fill coding-bound children that the SYNTAX did not bind, when they have
/// exactly one alternative (fixed sub-encodings such as unit selectors).
void complete_node(const Model& model, DecodedNode& node) {
  for (std::size_t slot = 0; slot < node.op->children.size(); ++slot) {
    const ChildDecl& child = node.op->children[slot];
    if (!child.in_coding) continue;
    if (!node.children[slot]) {
      if (child.alternatives.size() != 1)
        throw SimError("cannot assemble: group '" + child.name +
                       "' of operation '" + node.op->name +
                       "' is not determined by the syntax");
      auto sub = std::make_unique<DecodedNode>(
          model.op(child.alternatives.front()));
      sub->parent = &node;
      node.children[slot] = std::move(sub);
    }
    complete_node(model, *node.children[slot]);
  }
}

struct Directive {
  std::string name;
  std::vector<std::string> args;  // raw comma-separated arguments
};

Directive parse_directive(const std::string& body) {
  Directive d;
  std::size_t pos = 1;  // skip '.'
  while (pos < body.size() && is_ident_char(body[pos]))
    d.name.push_back(body[pos++]);
  // Arguments: first whitespace-separated tokens, then comma-separated.
  std::string rest = body.substr(pos);
  std::string current;
  for (char c : rest) {
    if (c == ',') {
      d.args.push_back(current);
      current.clear();
    } else if (is_space(c) && current.empty()) {
      continue;
    } else if (is_space(c) && !d.args.empty()) {
      current.push_back(c);  // keep interior spaces of later args trimmed below
    } else if (is_space(c)) {
      d.args.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) d.args.push_back(current);
  for (auto& a : d.args) {
    while (!a.empty() && is_space(a.back())) a.pop_back();
    std::size_t lead = 0;
    while (lead < a.size() && is_space(a[lead])) ++lead;
    a = a.substr(lead);
  }
  return d;
}

}  // namespace

LoadedProgram Assembler::assemble(std::string_view source, std::string file,
                                  DiagnosticEngine& diags) const {
  LoadedProgram program;
  const std::vector<Line> lines = split_lines(source);
  const auto loc = [&](const Line& line) {
    return SourceLoc{file, line.number, 1};
  };

  // ---- pass 1: addresses and symbols -------------------------------------
  enum class Section : std::uint8_t { kText, kData };
  Section section = Section::kText;
  std::uint64_t text_cursor = 0;
  std::uint64_t data_cursor = 0;
  bool saw_text_directive = false;
  bool saw_instruction = false;

  const auto count_words = [](const Directive& d) {
    return d.args.size();
  };

  for (const Line& line : lines) {
    if (!line.label.empty()) {
      const std::uint64_t addr =
          section == Section::kText ? text_cursor : data_cursor;
      if (!program.symbols
               .emplace(line.label, static_cast<std::int64_t>(addr))
               .second)
        diags.error(loc(line), "duplicate label '" + line.label + "'");
    }
    switch (line.kind) {
      case Line::Kind::kEmpty:
        break;
      case Line::Kind::kInstruction:
        if (section != Section::kText) {
          diags.error(loc(line), "instruction outside .text section");
          break;
        }
        saw_instruction = true;
        ++text_cursor;
        break;
      case Line::Kind::kDirective: {
        const Directive d = parse_directive(line.body);
        if (d.name == "text") {
          if (saw_instruction || saw_text_directive) {
            diags.error(loc(line), "only one .text section is supported");
            break;
          }
          saw_text_directive = true;
          section = Section::kText;
          if (!d.args.empty()) {
            std::size_t p = 0;
            if (auto v = parse_int(d.args[0], p)) {
              program.text_base = static_cast<std::uint64_t>(*v);
              text_cursor = program.text_base;
            } else {
              diags.error(loc(line), "bad .text address");
            }
          }
        } else if (d.name == "data") {
          section = Section::kData;
          data_cursor = 0;
          if (d.args.size() >= 2) {
            std::size_t p = 0;
            if (auto v = parse_int(d.args[1], p))
              data_cursor = static_cast<std::uint64_t>(*v);
            else
              diags.error(loc(line), "bad .data address");
          }
        } else if (d.name == "word") {
          if (section == Section::kData)
            data_cursor += count_words(d);
          else
            text_cursor += count_words(d);
        } else if (d.name == "space" || d.name == "align") {
          std::uint64_t n = 0;
          std::size_t pos = 0;
          if (d.args.size() == 1) {
            if (auto v = parse_int(d.args[0], pos); v && *v > 0)
              n = static_cast<std::uint64_t>(*v);
          }
          if (n == 0) {
            diags.error(loc(line),
                        "." + d.name + " requires a positive count");
          } else {
            std::uint64_t& cursor =
                section == Section::kData ? data_cursor : text_cursor;
            cursor = d.name == "space" ? cursor + n
                                       : (cursor + n - 1) / n * n;
          }
        } else if (d.name == "entry") {
          // resolved in pass 2
        } else {
          diags.error(loc(line), "unknown directive '." + d.name + "'");
        }
        break;
      }
    }
  }
  if (diags.has_errors()) return program;

  // ---- pass 2: encoding ----------------------------------------------------
  SyntaxMatcher matcher(*model_, program.symbols);
  const ResourceUsage usage(*model_);
  section = Section::kText;
  text_cursor = program.text_base;
  DataSegment* current_data = nullptr;
  std::int64_t last_insn_index = -1;  // index into program.words
  unsigned packet_run = 1;
  // Decoded slots of the packet under construction, for structural-hazard
  // checking (two slots writing one scalar resource in one stage).
  std::vector<DecodedNodePtr> packet_nodes;

  const auto resolve_value = [&](const std::string& token, const Line& line)
      -> std::optional<std::int64_t> {
    std::size_t p = 0;
    if (auto v = parse_int(token, p); v && p == token.size()) return v;
    if (auto it = program.symbols.find(token); it != program.symbols.end())
      return it->second;
    diags.error(loc(line), "bad value '" + token + "'");
    return std::nullopt;
  };

  for (const Line& line : lines) {
    switch (line.kind) {
      case Line::Kind::kEmpty:
        break;
      case Line::Kind::kInstruction: {
        std::string error;
        DecodedNodePtr node = matcher.match_line(line.body, error);
        if (!node) {
          diags.error(loc(line), "cannot assemble '" + line.body + "': " +
                                     error);
          break;
        }
        std::uint64_t word = 0;
        try {
          complete_node(*model_, *node);
          word = decoder_->encode(*node);
        } catch (const SimError& e) {
          diags.error(loc(line), e.what());
          break;
        }
        if (!decoder_->decode(word))
          diags.error(loc(line), "encoded word 0x... does not decode back; "
                                 "the model's CODING is ambiguous for '" +
                                     line.body + "'");
        if (line.parallel) {
          if (model_->fetch.packet_max <= 1) {
            diags.error(loc(line),
                        "'||' used but the model is single-issue");
          } else if (last_insn_index < 0) {
            diags.error(loc(line), "'||' has no previous instruction");
          } else {
            program.words[static_cast<std::size_t>(last_insn_index)] |=
                std::uint64_t{1} << model_->fetch.parallel_bit;
            ++packet_run;
            if (packet_run > model_->fetch.packet_max)
              diags.error(loc(line), "execute packet exceeds " +
                                         std::to_string(
                                             model_->fetch.packet_max) +
                                         " slots");
            // Structural hazards: two packet slots writing the same scalar
            // resource in the same stage (paper §5: resources model the
            // limited availability of units).
            for (const auto& other : packet_nodes) {
              const ResourceId conflict =
                  usage.first_conflict(*other, *node);
              if (conflict >= 0) {
                diags.error(loc(line),
                            "execute packet oversubscribes resource '" +
                                model_->resource(conflict).name +
                                "' (two slots write it in the same stage)");
                break;
              }
            }
          }
        } else {
          packet_run = 1;
          packet_nodes.clear();
        }
        packet_nodes.push_back(std::move(node));
        last_insn_index = static_cast<std::int64_t>(program.words.size());
        program.words.push_back(word & low_mask(model_->fetch.word_bits));
        ++text_cursor;
        break;
      }
      case Line::Kind::kDirective: {
        const Directive d = parse_directive(line.body);
        if (d.name == "data") {
          section = Section::kData;
          program.data.emplace_back();
          current_data = &program.data.back();
          if (d.args.empty()) {
            diags.error(loc(line), ".data requires a memory name");
          } else {
            current_data->memory = d.args[0];
            if (d.args.size() >= 2) {
              std::size_t p = 0;
              if (auto v = parse_int(d.args[1], p))
                current_data->base = static_cast<std::uint64_t>(*v);
            }
          }
        } else if (d.name == "word") {
          for (const auto& token : d.args) {
            const auto v = resolve_value(token, line);
            if (!v) continue;
            if (section == Section::kData && current_data) {
              current_data->values.push_back(*v);
            } else {
              program.words.push_back(static_cast<std::uint64_t>(*v) &
                                      low_mask(model_->fetch.word_bits));
              last_insn_index = -1;
              ++text_cursor;
            }
          }
        } else if (d.name == "space" || d.name == "align") {
          std::size_t pos = 0;
          std::uint64_t n = 0;
          if (d.args.size() == 1) {
            if (auto v = parse_int(d.args[0], pos); v && *v > 0)
              n = static_cast<std::uint64_t>(*v);
          }
          if (n > 0) {  // pass 1 already diagnosed n == 0
            if (section == Section::kData && current_data) {
              const std::uint64_t cursor =
                  current_data->base + current_data->values.size();
              const std::uint64_t target =
                  d.name == "space" ? cursor + n : (cursor + n - 1) / n * n;
              current_data->values.resize(
                  current_data->values.size() + (target - cursor), 0);
            } else {
              const std::uint64_t target = d.name == "space"
                                               ? text_cursor + n
                                               : (text_cursor + n - 1) / n * n;
              while (text_cursor < target) {
                program.words.push_back(0);
                ++text_cursor;
              }
              last_insn_index = -1;
            }
          }
        } else if (d.name == "entry") {
          if (d.args.empty()) {
            diags.error(loc(line), ".entry requires a symbol or address");
          } else if (const auto v = resolve_value(d.args[0], line)) {
            program.entry = static_cast<std::uint64_t>(*v);
          }
        }
        // ".text" was fully handled in pass 1.
        break;
      }
    }
  }
  return program;
}

LoadedProgram assemble_or_throw(const Model& model, const Decoder& decoder,
                                std::string_view source, std::string file) {
  DiagnosticEngine diags;
  Assembler assembler(model, decoder);
  LoadedProgram program = assembler.assemble(source, std::move(file), diags);
  if (diags.has_errors())
    throw SimError("assembly failed:\n" + diags.render());
  return program;
}

}  // namespace lisasim
