// Target program container: the object code the simulation compiler or the
// interpretive simulator consumes, plus initialized data segments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/state.hpp"

namespace lisasim {

struct DataSegment {
  std::string memory;  // name of the MEMORY resource
  std::uint64_t base = 0;
  std::vector<std::int64_t> values;
};

struct LoadedProgram {
  std::string name = "program";
  std::uint64_t text_base = 0;  // word address of words[0] in fetch memory
  std::vector<std::uint64_t> words;
  std::uint64_t entry = 0;
  std::map<std::string, std::int64_t> symbols;
  std::vector<DataSegment> data;

  std::uint64_t text_end() const { return text_base + words.size(); }
};

/// Copy text and data into the processor state and point the PC at the
/// entry. Throws SimError for overruns or unknown data memories.
void load_into_state(const LoadedProgram& program, ProcessorState& state);

}  // namespace lisasim
