// SYNTAX-driven retargetable assembler. The assembler is generated from the
// machine model in the same sense as the simulator: all mnemonics, operand
// forms and encodings come from the model's SYNTAX/CODING sections; this
// component only supplies the generic matching engine, label handling and
// directives.
//
// Source format (DSP-assembler style):
//   ; comment, // comment
//   label:  MVK 5, A1
//        || SUB A4, A5, A6     ; '||' chains into the previous fetch packet
//           .text [addr]       ; switch to text at word address (default 0)
//           .data <memory> [addr]
//           .word v, v, ...    ; initialized data (ints or symbols)
//           .space n           ; advance the cursor by n zero words
//           .align n           ; advance the cursor to a multiple of n
//           .entry <symbol>
#pragma once

#include <string>
#include <string_view>

#include "asm/program.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "support/diag.hpp"

namespace lisasim {

class Assembler {
 public:
  /// `decoder` supplies encode(); it must outlive the assembler.
  Assembler(const Model& model, const Decoder& decoder)
      : model_(&model), decoder_(&decoder) {}

  /// Two-pass assembly. Errors are reported to `diags`; the returned
  /// program is valid only when no errors were reported.
  LoadedProgram assemble(std::string_view source, std::string file,
                         DiagnosticEngine& diags) const;

 private:
  const Model* model_;
  const Decoder* decoder_;
};

/// Convenience wrapper that throws SimError with rendered diagnostics.
LoadedProgram assemble_or_throw(const Model& model, const Decoder& decoder,
                                std::string_view source, std::string file);

}  // namespace lisasim
