#include "asm/program.hpp"

namespace lisasim {

void load_into_state(const LoadedProgram& program, ProcessorState& state) {
  const Model& model = state.model();
  if (model.fetch_memory < 0)
    throw SimError("model has no fetch memory to load program text into");
  for (std::size_t i = 0; i < program.words.size(); ++i)
    state.write(model.fetch_memory, program.text_base + i,
                static_cast<std::int64_t>(program.words[i]));
  for (const auto& segment : program.data) {
    const Resource* mem = model.resource_by_name(segment.memory);
    if (!mem || mem->kind != ast::ResourceKind::kMemory)
      throw SimError("data segment targets unknown memory '" +
                     segment.memory + "'");
    for (std::size_t i = 0; i < segment.values.size(); ++i)
      state.write(mem->id, segment.base + i, segment.values[i]);
  }
  state.set_pc(program.entry);
}

}  // namespace lisasim
