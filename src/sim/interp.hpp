// The interpretive simulator: decodes every fetch at run time and walks the
// unspecialized behavior trees. This is the baseline the compiled technique
// is measured against — it performs, every cycle, exactly the work the
// simulation compiler moves to compile time (instruction decoding, operand
// extraction, operation sequencing), like the vendor instruction-set
// simulators the paper benchmarks TI's sim62x against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asm/program.hpp"
#include "behavior/eval.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/engine.hpp"
#include "sim/result.hpp"

namespace lisasim {

class InterpBackend {
 public:
  struct Work {
    DecodedPacket packet;
    // Tree-order auto-run operations with their effective stages.
    std::vector<std::pair<const DecodedNode*, int>> auto_ops;
    // FIFO activation queues per stage.
    std::vector<std::vector<const DecodedNode*>> sched;
    // Fetches of undecodable words (wrong-path prefetch past a branch or
    // HALT) are deferred: the error is raised only if the packet survives
    // to retirement un-squashed.
    std::string error;
  };

  InterpBackend(const Model& model, ProcessorState& state)
      : model_(&model),
        state_(&state),
        depth_(model.pipeline.depth()),
        decoder_(model),
        eval_(state, control_) {}

  PipelineControl& control() { return control_; }
  void issue(std::uint64_t pc, Work& out, unsigned& words);
  void execute(Work& work, int stage);
  std::uint64_t slot_count(const Work& work) const {
    return work.packet.slots.size();
  }

  const Decoder& decoder() const { return decoder_; }

 private:
  class Sink;

  const Model* model_;
  ProcessorState* state_;
  int depth_;
  Decoder decoder_;
  PipelineControl control_;
  Evaluator eval_;
};

class InterpSimulator {
 public:
  explicit InterpSimulator(const Model& model)
      : model_(&model),
        state_(model),
        backend_(model, state_),
        engine_(model, state_, backend_) {}

  /// Reset state and load `program` (text, data, entry PC).
  void load(const LoadedProgram& program) {
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
  }

  RunResult run(std::uint64_t max_cycles = UINT64_MAX) {
    return engine_.run(max_cycles);
  }

  ProcessorState& state() { return state_; }
  const Model& model() const { return *model_; }
  const Decoder& decoder() const { return backend_.decoder(); }
  void set_observer(SimObserver* observer) { engine_.set_observer(observer); }
  void schedule_interrupt(std::uint64_t cycle, std::uint64_t target) {
    engine_.schedule_interrupt(cycle, target);
  }

 private:
  const Model* model_;
  ProcessorState state_;
  InterpBackend backend_;
  PipelineEngine<InterpBackend> engine_;
};

}  // namespace lisasim
