// The interpretive simulator: decodes every fetch at run time and walks the
// unspecialized behavior trees. This is the baseline the compiled technique
// is measured against — it performs, every cycle, exactly the work the
// simulation compiler moves to compile time (instruction decoding, operand
// extraction, operation sequencing), like the vendor instruction-set
// simulators the paper benchmarks TI's sim62x against.
//
// The tree-walk execution itself lives in sim/treewalk.hpp so the guarded
// compiled levels can fall back to it on self-modified packets; this
// backend is a thin adapter. Because it decodes from live state memory on
// every fetch, the interpretive level needs no write guard: it is the
// oracle the guarded levels are held bit-identical to.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "asm/program.hpp"
#include "behavior/eval.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"
#include "sim/guard.hpp"
#include "sim/result.hpp"
#include "sim/treewalk.hpp"

namespace lisasim {

class InterpBackend {
 public:
  using Work = TreeWalkWork;

  InterpBackend(const Model& model, ProcessorState& state)
      : model_(&model),
        state_(&state),
        depth_(model.pipeline.depth()),
        decoder_(model),
        eval_(state, control_) {}

  PipelineControl& control() { return control_; }
  void issue(std::uint64_t pc, Work& out, unsigned& words) {
    treewalk_issue(decoder_, *model_, *state_, pc, depth_, out, words);
  }
  void execute(Work& work, int stage) {
    treewalk_execute(eval_, work, stage, depth_);
  }
  std::uint64_t slot_count(const Work& work) const {
    return work.packet.slots.size();
  }

  void save_work(const Work& work, WorkSnapshot& out) const {
    treewalk_save(work, out);
  }
  void restore_work(std::uint64_t pc, const WorkSnapshot& snapshot,
                    Work& out) {
    treewalk_restore(decoder_, *model_, *state_, pc, depth_, snapshot, out);
  }

  const Decoder& decoder() const { return decoder_; }

 private:
  const Model* model_;
  ProcessorState* state_;
  int depth_;
  Decoder decoder_;
  PipelineControl control_;
  Evaluator eval_;
};

class InterpSimulator {
 public:
  explicit InterpSimulator(const Model& model)
      : model_(&model),
        state_(model),
        backend_(model, state_),
        engine_(model, state_, backend_) {
    engine_.set_level(SimLevel::kInterpretive);
  }

  /// Reset state and load `program` (text, data, entry PC).
  void load(const LoadedProgram& program) {
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
  }

  RunResult run(std::uint64_t max_cycles = UINT64_MAX) {
    return engine_.run(max_cycles);
  }
  RunResult run(const RunLimits& limits) { return engine_.run(limits); }

  /// Accepted for API uniformity with the compiled levels: the
  /// interpretive simulator decodes from live memory every fetch, so it is
  /// always coherent and every policy is equivalent to kOff.
  void set_guard_policy(GuardPolicy /*policy*/) {}
  /// Uniform guard accessors: nothing here can ever be stale.
  std::uint64_t guarded_writes() const { return 0; }
  const GuardStats& guard_stats() const {
    static const GuardStats kNone{};
    return kNone;
  }

  EngineCheckpoint save_checkpoint() const {
    return engine_.save_checkpoint();
  }
  void restore_checkpoint(const EngineCheckpoint& checkpoint) {
    engine_.restore_checkpoint(checkpoint);
  }

  ProcessorState& state() { return state_; }
  const Model& model() const { return *model_; }
  const Decoder& decoder() const { return backend_.decoder(); }
  void set_observer(SimObserver* observer) { engine_.set_observer(observer); }
  void schedule_interrupt(std::uint64_t cycle, std::uint64_t target) {
    engine_.schedule_interrupt(cycle, target);
  }

 private:
  const Model* model_;
  ProcessorState state_;
  InterpBackend backend_;
  PipelineEngine<InterpBackend> engine_;
};

}  // namespace lisasim
