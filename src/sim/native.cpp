#include "sim/native.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "codegen/nativegen.hpp"
#include "sim/guard.hpp"
#include "sim/table_cache.hpp"
#include "sim/trace.hpp"

namespace lisasim {

namespace fs = std::filesystem;

namespace {

// CMake bakes the configure-time compiler in; an empty string means the
// build found no usable toolchain and the tier degrades to trace level.
#ifndef LISASIM_NATIVE_CXX
#define LISASIM_NATIVE_CXX ""
#endif
// Sanitizer builds forward their -fsanitize flags so the artifact links
// against the same runtime as the host process.
#ifndef LISASIM_NATIVE_EXTRA_FLAGS
#define LISASIM_NATIVE_EXTRA_FLAGS ""
#endif

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string sanitize_target(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                          c == '_'
                      ? c
                      : '_');
  return out.empty() ? std::string("model") : out;
}

std::string read_head(const fs::path& path, std::size_t limit = 2048) {
  std::ifstream f(path);
  std::string s(limit, '\0');
  f.read(s.data(), static_cast<std::streamsize>(s.size()));
  s.resize(static_cast<std::size_t>(f.gcount()));
  return s;
}

}  // namespace

struct NativeRuntime::Module {
  void* handle = nullptr;
  const NativeEntry* entry = nullptr;
  std::string path;
  ~Module() {
    if (handle != nullptr) ::dlclose(handle);
  }
};

struct NativeRuntime::Job {
  std::uint64_t epoch = 0;
  NativeConfig cfg;
  const Model* model = nullptr;
  std::shared_ptr<const LoadedProgram> program;
  std::uint64_t model_hash = 0;
  std::uint64_t program_hash = 0;
  std::uint64_t content_hash = 0;
  std::uint64_t expected_elements = 0;
  std::string target;  // sanitized model name (artifact filenames)
  SimTableCache* cache = nullptr;
  std::vector<NativeRegionSpec> regions;
};

struct NativeRuntime::Pending {
  std::uint64_t epoch = 0;
  std::shared_ptr<Module> module;  // nullptr = round failed
  std::string error;
  std::uint64_t compiles = 0;
  std::uint64_t compile_ns = 0;
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_misses = 0;
  bool module_shared = false;  // served by the process-wide registry
};

namespace {

/// Process-wide registry of live dlopen'd modules, keyed by (model hash,
/// program hash, content hash). Entries are weak: the registry never pins
/// a module past its last runtime, so dlclose timing is unchanged. A
/// `building` slot coalesces concurrent rounds for one key onto a single
/// toolchain invocation — waiters block (each NativeRuntime compiles on
/// its own one-thread pool, so blocking here stalls no engine thread) and
/// adopt the builder's module; if the build fails they re-elect.
struct ModuleRegistry {
  struct Slot {
    bool building = false;
    std::weak_ptr<NativeRuntime::Module> module;
  };
  struct Key {
    std::uint64_t model = 0, program = 0, content = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.model * 1099511628211ull;
      h = (h ^ k.program) * 1099511628211ull;
      h = (h ^ k.content) * 1099511628211ull;
      return static_cast<std::size_t>(h);
    }
  };

  std::mutex mutex;
  std::condition_variable done;
  std::unordered_map<Key, Slot, KeyHash> slots;
  NativeRegistryStats stats;

  /// Drop dead weak entries once the map grows past a process's working
  /// set (mutex held). Bounds growth across many distinct programs.
  void prune_locked() {
    if (slots.size() < 256) return;
    for (auto it = slots.begin(); it != slots.end();)
      it = (!it->second.building && it->second.module.expired())
               ? slots.erase(it)
               : std::next(it);
  }
};

ModuleRegistry& module_registry() {
  static ModuleRegistry registry;
  return registry;
}

}  // namespace

NativeRegistryStats NativeRuntime::registry_stats() {
  ModuleRegistry& reg = module_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.stats;
}

NativeRuntime::NativeRuntime(const Model& model, ProcessorState& state)
    : model_(&model), state_(&state) {}

NativeRuntime::~NativeRuntime() {
  if (pool_) pool_->wait_idle();
}

std::string NativeRuntime::toolchain() {
  static const std::string cached = [] {
    std::string cmd = LISASIM_NATIVE_CXX;
    if (const char* env = std::getenv("LISASIM_NATIVE_CXX"))
      cmd = env;  // empty value = force-unavailable (tests)
    if (cmd.empty()) return std::string();
    if (cmd.find('/') != std::string::npos)
      return ::access(cmd.c_str(), X_OK) == 0 ? cmd : std::string();
    const std::string probe = "command -v '" + cmd + "' >/dev/null 2>&1";
    return std::system(probe.c_str()) == 0 ? cmd : std::string();
  }();
  return cached;
}

bool NativeRuntime::toolchain_available() { return !toolchain().empty(); }

void NativeRuntime::rethrow_fault(const Binding& binding, std::int32_t rc,
                                  std::int64_t fault_arg) const {
  const std::uint32_t idx = static_cast<std::uint32_t>(rc - 1);
  if (idx >= binding.fault_count)
    throw SimError("native region returned an unknown fault index");
  const NativeFault& fault = binding.faults[idx];
  switch (fault.kind) {
    case 0: throw SimError("division by zero");
    case 1: throw SimError("remainder by zero");
    case 2:
    case 3:
      // Reproduce the exact out-of-bounds SimError: the faulting index is
      // out of range by construction, so this read throws before any hook
      // could observe it.
      state_->read(static_cast<ResourceId>(fault.res),
                   static_cast<std::uint64_t>(fault_arg));
      throw SimError("native out-of-bounds fault did not reproduce");
    default:
      throw SimError("native region fault kind unknown");
  }
}

void NativeRuntime::prepare(const SimTable* table,
                            const LoadedProgram& program,
                            std::uint64_t program_hash, TraceRuntime* traces,
                            SimTableCache* cache, const ProgramGuard* guard) {
  ++epoch_;  // in-flight rounds for the previous program die at adoption
  table_ = table;
  traces_ = traces;
  cache_ = cache;
  guard_ = guard;
  program_ = std::make_shared<const LoadedProgram>(program);
  // Recompute rather than trust the caller: load_precompiled() passes 0,
  // and the artifact key must stay stable across both load paths.
  (void)program_hash;
  program_hash_ = SimTableCache::hash_program(program);
  model_hash_ = SimTableCache::hash_model(*model_);
  bindings_.clear();
  static_index_.clear();
  trace_index_.clear();
  modules_.clear();
  stats_.regions = 0;
  failures_ = 0;
  last_attempt_hash_ = 0;
  last_error_.clear();
  enabled_ = toolchain_available();
  if (!enabled_) return;
  if (!pool_) pool_ = std::make_unique<ThreadPool>(1);
  launch_round();
}

void NativeRuntime::note_trace_formed() {
  if (enabled_) launch_round();
}

void NativeRuntime::launch_round() {
  if (!enabled_ || in_flight_.load(std::memory_order_acquire)) return;
  auto job = std::make_shared<Job>();
  job->regions = collect_specs();
  if (job->regions.empty()) return;

  NativeGenInput probe;
  probe.model = model_;
  probe.program = program_.get();
  probe.model_hash = model_hash_;
  probe.program_hash = program_hash_;
  probe.regions = std::move(job->regions);
  const std::uint64_t content = native_content_hash(probe);
  job->regions = std::move(probe.regions);
  if (content == last_attempt_hash_) return;  // nothing new to compile
  last_attempt_hash_ = content;

  job->epoch = epoch_;
  job->cfg = cfg_;
  job->model = model_;
  job->program = program_;
  job->model_hash = model_hash_;
  job->program_hash = program_hash_;
  job->content_hash = content;
  job->expected_elements = state_->total_elements();
  job->target = sanitize_target(model_->name);
  job->cache = cache_;

  in_flight_.store(true, std::memory_order_release);
  ++stats_.rounds;
  pool_->submit([this, job] {
    auto result = std::make_unique<Pending>();
    result->epoch = job->epoch;
    run_compile_job(*job, *result);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_ = std::move(result);
    }
    pending_ready_.store(true, std::memory_order_release);
  });
  if (cfg_.blocking) wait_ready();
}

void NativeRuntime::wait_ready() {
  if (!pool_) return;
  // Adoption can launch a catch-up round (traces formed while compiling);
  // drain until quiescent. The content hash converges, so this terminates.
  for (int i = 0; i < 64; ++i) {
    pool_->wait_idle();
    if (pending_ready_.load(std::memory_order_acquire)) {
      adopt_pending();
      continue;
    }
    if (!in_flight_.load(std::memory_order_acquire)) return;
  }
}

void NativeRuntime::adopt_pending() {
  std::unique_ptr<Pending> done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    done = std::move(pending_);
    pending_ready_.store(false, std::memory_order_relaxed);
  }
  in_flight_.store(false, std::memory_order_release);
  if (!done) return;
  stats_.compiles += done->compiles;
  stats_.compile_ns += done->compile_ns;
  stats_.artifact_hits += done->artifact_hits;
  stats_.artifact_misses += done->artifact_misses;
  if (done->module_shared) ++stats_.module_shares;
  if (done->epoch != epoch_) return;  // round for a previous program
  if (!done->module) {
    ++stats_.compile_failures;
    last_error_ = done->error;
    if (++failures_ >= cfg_.max_failures) enabled_ = false;
    return;
  }
  failures_ = 0;
  install(std::move(done->module));
  // Traces may have formed while the round compiled; catch up (a no-op
  // when the content hash is unchanged).
  launch_round();
}

void NativeRuntime::install(std::shared_ptr<Module> module) {
  bindings_.clear();
  static_index_.assign(table_ != nullptr ? table_->arena().size() + 1 : 1,
                       -1);
  trace_index_.assign(
      traces_ != nullptr ? traces_->trace_arena().size() + 1 : 1, -1);
  const NativeEntry* entry = module->entry;
  for (std::uint32_t i = 0; i < entry->region_count; ++i) {
    const NativeRegion& region = entry->regions[i];
    std::vector<std::int32_t>& index =
        region.kind == 0 ? static_index_ : trace_index_;
    if (region.key >= index.size()) continue;
    bindings_.push_back(
        {region.fn, region.faults, region.fault_count, region.len});
    index[static_cast<std::size_t>(region.key)] =
        static_cast<std::int32_t>(bindings_.size()) - 1;
  }
  stats_.regions = bindings_.size();
  modules_.push_back(std::move(module));
}

std::vector<NativeRegionSpec> NativeRuntime::collect_specs() const {
  std::vector<NativeRegionSpec> specs;
  if (table_ == nullptr) return specs;
  const MicroArena& arena = table_->arena();
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t row = 0; row < table_->size(); ++row) {
    const SimTableEntry* entry = table_->find(table_->base() + row);
    if (entry == nullptr || !entry->valid) continue;
    for (const MicroSpan& span : entry->micro) {
      if (span.len == 0 || !seen.insert(span.offset).second) continue;
      const MicroOp* ops = arena.data() + span.offset;
      // A native span bypasses the guard's on_write hook, so spans that
      // write fetch memory are never compiled — they stay on the micro-op
      // core where the stamp bump happens.
      bool writes_text = false;
      for (std::uint32_t i = 0; i < span.len && !writes_text; ++i)
        writes_text = mo_writes_res(ops[i].kind) &&
                      static_cast<ResourceId>(ops[i].res) ==
                          model_->fetch_memory;
      if (writes_text) continue;
      NativeRegionSpec spec;
      spec.key = span.offset;
      spec.kind = 0;
      spec.num_temps = span.num_temps;
      spec.ops.assign(ops, ops + span.len);
      spec.pool.assign(arena.pool_data(),
                       arena.pool_data() + arena.pool_size());
      specs.push_back(std::move(spec));
    }
  }
  if (traces_ != nullptr) {
    const MicroArena& tarena = traces_->trace_arena();
    for (const Trace& trace : traces_->live_traces()) {
      if (trace.dead || trace.body.len == 0) continue;
      NativeRegionSpec spec;
      spec.key = trace.body.offset;
      spec.kind = 1;
      spec.num_temps = trace.body.num_temps;
      spec.ops.assign(tarena.data() + trace.body.offset,
                      tarena.data() + trace.body.offset + trace.body.len);
      spec.pool.assign(tarena.pool_data(),
                       tarena.pool_data() + tarena.pool_size());
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::shared_ptr<NativeRuntime::Module> NativeRuntime::open_and_verify(
    const std::string& path, const Job& job) {
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) return nullptr;
  auto module = std::make_shared<Module>();
  module->handle = handle;
  module->path = path;
  auto entry_fn = reinterpret_cast<NativeEntryFn>(
      ::dlsym(handle, kNativeEntrySymbol));
  if (entry_fn == nullptr) return nullptr;  // ~Module dlcloses
  const NativeEntry* entry = entry_fn();
  if (entry == nullptr || entry->abi_version != kNativeAbiVersion ||
      entry->model_hash != job.model_hash ||
      entry->program_hash != job.program_hash ||
      entry->content_hash != job.content_hash ||
      entry->state_elements != job.expected_elements ||
      (entry->region_count != 0 && entry->regions == nullptr))
    return nullptr;
  for (std::uint32_t i = 0; i < entry->region_count; ++i) {
    const NativeRegion& region = entry->regions[i];
    if (region.fn == nullptr || region.kind > 1 ||
        (region.fault_count != 0 && region.faults == nullptr))
      return nullptr;
  }
  module->entry = entry;
  return module;
}

void NativeRuntime::run_compile_job(Job& job, Pending& out) {
  // Cross-runtime dedupe: one build per (model, program, content) key per
  // process, shared modules for everyone else. See ModuleRegistry above.
  ModuleRegistry& reg = module_registry();
  const ModuleRegistry::Key key{job.model_hash, job.program_hash,
                                job.content_hash};
  {
    std::unique_lock<std::mutex> lock(reg.mutex);
    for (;;) {
      ModuleRegistry::Slot& slot = reg.slots[key];
      if (auto module = slot.module.lock()) {
        ++reg.stats.shares;
        out.module = std::move(module);
        out.module_shared = true;
        return;
      }
      if (!slot.building) {
        slot.building = true;
        ++reg.stats.builds;
        reg.prune_locked();
        break;
      }
      ++reg.stats.waits;
      reg.done.wait(lock);
    }
  }

  build_module(job, out);

  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    ModuleRegistry::Slot& slot = reg.slots[key];
    slot.building = false;
    if (out.module) slot.module = out.module;  // weak: never pins
  }
  reg.done.notify_all();
}

void NativeRuntime::build_module(Job& job, Pending& out) {
  const std::string artifact_dir =
      job.cache != nullptr ? job.cache->artifact_dir() : std::string();

  // Warm path: a previous process (or load) already compiled exactly this
  // region set — dlopen the published artifact.
  if (!artifact_dir.empty()) {
    const std::string hit = job.cache->find_artifact(
        job.target, job.model_hash, job.program_hash, job.content_hash);
    if (!hit.empty()) {
      ++out.artifact_hits;
      if (auto module = open_and_verify(hit, job)) {
        out.module = std::move(module);
        return;
      }
      std::error_code ec;  // corrupt/stale artifact: drop and recompile
      fs::remove(hit, ec);
    } else {
      ++out.artifact_misses;
    }
  }

  std::string source;
  try {
    NativeGenInput input;
    input.model = job.model;
    input.program = job.program.get();
    input.model_hash = job.model_hash;
    input.program_hash = job.program_hash;
    input.regions = std::move(job.regions);
    source = generate_native_source(input);
  } catch (const std::exception& e) {
    out.error = std::string("native codegen failed: ") + e.what();
    return;
  }

  static std::atomic<std::uint64_t> counter{0};
  const std::string tag =
      job.target + "-m" + hex16(job.model_hash) + "-p" +
      hex16(job.program_hash) + "-c" + hex16(job.content_hash) + "-" +
      std::to_string(::getpid()) + "-" +
      std::to_string(counter.fetch_add(1));
  std::error_code ec;
  fs::path dir = artifact_dir.empty() ? fs::temp_directory_path(ec)
                                      : fs::path(artifact_dir);
  if (ec) dir = ".";
  const fs::path src = dir / (".lisasim-" + tag + ".cpp");
  const fs::path so = dir / (".lisasim-" + tag + ".so");
  const fs::path log = dir / (".lisasim-" + tag + ".log");
  {
    std::ofstream f(src);
    f << source;
    if (!f) {
      out.error = "cannot write " + src.string();
      return;
    }
  }

  std::string extra = LISASIM_NATIVE_EXTRA_FLAGS;
  std::string cmd = "'" + toolchain() + "' -std=c++17 -O" +
                    std::to_string(job.cfg.opt_level) + " -fPIC -shared";
  if (!extra.empty()) cmd += " " + extra;
  cmd += " -o '" + so.string() + "' '" + src.string() + "' 2>'" +
         log.string() + "'";
  const auto t0 = std::chrono::steady_clock::now();
  const int rc = std::system(cmd.c_str());
  out.compile_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  ++out.compiles;
  if (rc != 0) {
    out.error = "native compile failed (" + cmd + "): " + read_head(log);
    fs::remove(src, ec);
    fs::remove(so, ec);
    fs::remove(log, ec);
    return;
  }
  fs::remove(src, ec);
  fs::remove(log, ec);

  std::string final_path = so.string();
  bool transient = true;  // unpublished artifacts die after dlopen
  if (!artifact_dir.empty()) {
    const std::string published = job.cache->publish_artifact(
        job.target, job.model_hash, job.program_hash, job.content_hash,
        so.string());
    if (!published.empty()) {
      final_path = published;
      transient = false;
    }
  }
  auto module = open_and_verify(final_path, job);
  if (transient) fs::remove(final_path, ec);  // dlopen keeps the mapping
  if (!module) {
    out.error = "native artifact failed post-compile verification";
    return;
  }
  out.module = std::move(module);
}

}  // namespace lisasim
