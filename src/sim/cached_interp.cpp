#include "sim/cached_interp.hpp"

#include "behavior/microops.hpp"
#include "behavior/peephole.hpp"

namespace lisasim {

void CachedInterpBackend::build_cache(const LoadedProgram& program) {
  cache_base_ = program.text_base;
  cache_.clear();
  cache_.reserve(program.words.size());
  arena_.clear();
  temps_.clear();
  decode_calls_ = 0;
  instructions_ = 0;
  lazy_lowered_packets_ = 0;
  lowered_microops_ = 0;
  std::vector<std::int64_t> words(program.words.begin(),
                                  program.words.end());
  for (std::uint64_t index = 0; index < words.size(); ++index) {
    CacheEntry entry;
    try {
      ++decode_calls_;
      entry.packet = decoder_.decode_packet(words, index);
      entry.words = entry.packet.words;
      entry.slot_count = static_cast<unsigned>(entry.packet.slots.size());
      entry.valid = true;
      instructions_ += entry.packet.slots.size();
    } catch (const SimError& e) {
      entry.valid = false;
      entry.lowered = true;  // nothing to lower on a poisoned entry
      entry.error = e.what();
      entry.words = 1;
    }
    cache_.push_back(std::move(entry));
  }
  out_of_range_.valid = false;
  out_of_range_.lowered = true;
  out_of_range_.error = "program counter outside the pre-decoded program";
  out_of_range_.words = 1;
}

void CachedInterpBackend::lower_entry(CacheEntry& entry) {
  entry.lowered = true;
  ++lazy_lowered_packets_;
  try {
    const PacketSchedule schedule = specializer_.schedule_packet(entry.packet);
    entry.micro.resize(schedule.stage_programs.size());
    for (std::size_t s = 0; s < schedule.stage_programs.size(); ++s) {
      MicroProgram micro = lower_to_microops(schedule.stage_programs[s]);
      optimize_microops(micro, model_);
      lowered_microops_ += micro.ops.size();
      entry.micro[s] = arena_.append(micro);
      if (!entry.micro[s].empty())
        entry.work_mask |= std::uint32_t{1} << s;
    }
    // Spans are offsets, so earlier entries stay valid as the arena grows;
    // only the shared scratch must keep up with the largest program.
    if (arena_.max_temps() > static_cast<std::int32_t>(temps_.size()))
      temps_.resize(static_cast<std::size_t>(arena_.max_temps()), 0);
  } catch (const SimError& e) {
    // Deferred like an invalid simulation-table row: fatal at retirement.
    entry.valid = false;
    entry.error = e.what();
  }
}

const std::shared_ptr<const PatchedPacket>& CachedInterpBackend::patch_for(
    std::uint64_t pc) {
  auto it = patches_.find(pc);
  if (it == patches_.end() ||
      it->second->stamp != guard_->span_stamp(pc, it->second->stamp_words)) {
    std::shared_ptr<const PatchedPacket> patch = compile_packet_from_state(
        *model_, decoder_, specializer_, *state_, pc,
        /*lower_microops=*/true, *guard_);
    if (patch->arena.max_temps() > static_cast<std::int32_t>(temps_.size()))
      temps_.resize(static_cast<std::size_t>(patch->arena.max_temps()), 0);
    it = patches_.insert_or_assign(pc, std::move(patch)).first;
    ++guard_stats_.recompiles;
  }
  return it->second;
}

void CachedInterpBackend::guarded_issue(std::uint64_t pc, Work& out,
                                        unsigned& words) {
  out.patch.reset();
  out.fallback.reset();
  CacheEntry* entry = lookup(pc);
  const unsigned span = entry->valid ? entry->words : 1;
  if (guard_->span_clean(pc, span)) {
    // No covered write since the pre-decode: the cached packet is sound.
    if (!entry->lowered) lower_entry(*entry);
    out.entry = entry;
    words = entry->words;
    return;
  }
  ++guard_stats_.stale_issues;
  if (policy_ == GuardPolicy::kFallback) {
    out.fallback = std::make_shared<TreeWalkWork>();
    treewalk_issue(decoder_, *model_, *state_, pc, depth_, *out.fallback,
                   words);
    out.entry = nullptr;
    ++guard_stats_.fallbacks;
    return;
  }
  const std::shared_ptr<const PatchedPacket>& patch = patch_for(pc);
  out.entry = nullptr;
  out.patch = patch;
  words = patch->entry.valid ? patch->entry.words : 1;
}

void CachedInterpBackend::issue(std::uint64_t pc, Work& out,
                                unsigned& words) {
  // A clean program pays exactly this one branch per fetch for the guard.
  if (guard_ != nullptr && guard_->writes() != 0) [[unlikely]] {
    guarded_issue(pc, out, words);
    return;
  }
  out.patch.reset();
  out.fallback.reset();
  CacheEntry* entry = lookup(pc);
  if (!entry->lowered) lower_entry(*entry);
  out.entry = entry;
  words = entry->words;
}

void CachedInterpBackend::run_micro(const MicroOp* ops, std::uint32_t len,
                                    const std::int64_t* pool) {
  if (count_microops_) {
    microops_executed_ += exec_microops_counted(ops, len, pool, *state_,
                                                control_, temps_.data());
  } else {
    exec_microops(ops, len, pool, *state_, control_, temps_.data());
  }
}

void CachedInterpBackend::execute(Work& work, int stage) {
  if (work.fallback) [[unlikely]] {
    treewalk_execute(eval_, *work.fallback, stage, depth_);
    return;
  }
  if (work.patch) [[unlikely]] {
    const SimTableEntry& entry = work.patch->entry;
    if (!entry.valid) {
      if (stage == depth_ - 1) throw SimError(entry.error);
      return;
    }
    if ((entry.work_mask >> stage & 1u) == 0) return;
    const MicroSpan span = entry.micro[static_cast<std::size_t>(stage)];
    run_micro(work.patch->arena.data() + span.offset, span.len,
              work.patch->arena.pool_data());
    return;
  }
  const CacheEntry& entry = *work.entry;
  if (!entry.valid) {
    if (stage == depth_ - 1) throw SimError(entry.error);
    return;
  }
  if ((entry.work_mask >> stage & 1u) == 0) return;
  const MicroSpan span = entry.micro[static_cast<std::size_t>(stage)];
  run_micro(arena_.data() + span.offset, span.len, arena_.pool_data());
}

void CachedInterpBackend::save_work(const Work& work,
                                    WorkSnapshot& out) const {
  out = WorkSnapshot{};
  if (work.fallback) {
    treewalk_save(*work.fallback, out);
    return;
  }
  if (work.patch && !work.patch->entry.valid) {
    out.error = work.patch->entry.error;
  } else if (work.entry && !work.entry->valid) {
    out.error = work.entry->error;
  }
}

void CachedInterpBackend::restore_work(std::uint64_t pc,
                                       const WorkSnapshot& snapshot,
                                       Work& out) {
  out = Work{};
  if (snapshot.treewalk) {
    out.fallback = std::make_shared<TreeWalkWork>();
    treewalk_restore(decoder_, *model_, *state_, pc, depth_, snapshot,
                     *out.fallback);
    return;
  }
  // Rebuild from the restored memory, preserving the execution mode (see
  // CompiledBackend::restore_work for why stale packets re-translate here
  // even under kFallback policy).
  if (guard_ != nullptr && guard_->writes() != 0) {
    CacheEntry* entry = lookup(pc);
    const unsigned span = entry->valid ? entry->words : 1;
    if (!guard_->span_clean(pc, span)) {
      out.patch = patch_for(pc);
      return;
    }
  }
  CacheEntry* entry = lookup(pc);
  if (!entry->lowered) lower_entry(*entry);
  out.entry = entry;
}

}  // namespace lisasim
