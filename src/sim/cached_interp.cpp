#include "sim/cached_interp.hpp"

namespace lisasim {

/// Same routing contract as InterpBackend::Sink / the schedule builder.
class CachedInterpBackend::Sink final : public ActivationSink {
 public:
  Sink(Evaluator& eval, Work& work, int stage)
      : eval_(&eval), work_(&work), stage_(stage) {}

  void activate(const DecodedNode& child) override {
    const int child_stage = child.op->stage >= 0 ? child.op->stage : stage_;
    if (child_stage > stage_) {
      if (static_cast<std::size_t>(child_stage) >= work_->sched.size())
        throw SimError("activation of '" + child.op->name +
                       "' beyond the pipeline");
      work_->sched[static_cast<std::size_t>(child_stage)].push_back(&child);
    } else {
      eval_->run_op(child, this);
    }
  }

 private:
  Evaluator* eval_;
  Work* work_;
  int stage_;
};

void CachedInterpBackend::build_cache(const LoadedProgram& program) {
  cache_base_ = program.text_base;
  cache_.clear();
  cache_.reserve(program.words.size());
  std::vector<std::int64_t> words(program.words.begin(),
                                  program.words.end());
  for (std::uint64_t index = 0; index < words.size(); ++index) {
    CacheEntry entry;
    try {
      entry.packet = decoder_.decode_packet(words, index);
      entry.words = entry.packet.words;
      for (const auto& slot : entry.packet.slots)
        collect_auto_ops(*slot, entry.auto_ops);
      entry.valid = true;
    } catch (const SimError& e) {
      entry.valid = false;
      entry.error = e.what();
      entry.words = 1;
    }
    cache_.push_back(std::move(entry));
  }
  out_of_range_.valid = false;
  out_of_range_.error = "program counter outside the pre-decoded program";
  out_of_range_.words = 1;
}

void CachedInterpBackend::issue(std::uint64_t pc, Work& out,
                                unsigned& words) {
  const CacheEntry* entry = &out_of_range_;
  if (pc >= cache_base_ && pc - cache_base_ < cache_.size())
    entry = &cache_[pc - cache_base_];
  out.entry = entry;
  out.sched.assign(static_cast<std::size_t>(depth_), {});
  words = entry->words;
}

void CachedInterpBackend::execute(Work& work, int stage) {
  const CacheEntry& entry = *work.entry;
  if (!entry.valid) {
    if (stage == depth_ - 1) throw SimError(entry.error);
    return;
  }
  for (const auto& [node, node_stage] : entry.auto_ops) {
    if (node_stage != stage) continue;
    Sink sink(eval_, work, stage);
    eval_.run_op(*node, &sink);
  }
  auto& queue = work.sched[static_cast<std::size_t>(stage)];
  for (std::size_t i = 0; i < queue.size(); ++i) {
    Sink sink(eval_, work, stage);
    eval_.run_op(*queue[i], &sink);
  }
}

}  // namespace lisasim
