#include "sim/cached_interp.hpp"

#include "behavior/microops.hpp"
#include "behavior/peephole.hpp"

namespace lisasim {

void CachedInterpBackend::build_cache(const LoadedProgram& program) {
  cache_base_ = program.text_base;
  cache_.clear();
  cache_.reserve(program.words.size());
  arena_.clear();
  temps_.clear();
  std::vector<std::int64_t> words(program.words.begin(),
                                  program.words.end());
  for (std::uint64_t index = 0; index < words.size(); ++index) {
    CacheEntry entry;
    try {
      entry.packet = decoder_.decode_packet(words, index);
      entry.words = entry.packet.words;
      entry.slot_count = static_cast<unsigned>(entry.packet.slots.size());
      entry.valid = true;
    } catch (const SimError& e) {
      entry.valid = false;
      entry.lowered = true;  // nothing to lower on a poisoned entry
      entry.error = e.what();
      entry.words = 1;
    }
    cache_.push_back(std::move(entry));
  }
  out_of_range_.valid = false;
  out_of_range_.lowered = true;
  out_of_range_.error = "program counter outside the pre-decoded program";
  out_of_range_.words = 1;
}

void CachedInterpBackend::lower_entry(CacheEntry& entry) {
  entry.lowered = true;
  try {
    const PacketSchedule schedule = specializer_.schedule_packet(entry.packet);
    entry.micro.resize(schedule.stage_programs.size());
    for (std::size_t s = 0; s < schedule.stage_programs.size(); ++s) {
      MicroProgram micro = lower_to_microops(schedule.stage_programs[s]);
      optimize_microops(micro);
      entry.micro[s] = arena_.append(micro);
      if (!entry.micro[s].empty())
        entry.work_mask |= std::uint32_t{1} << s;
    }
    // Spans are offsets, so earlier entries stay valid as the arena grows;
    // only the shared scratch must keep up with the largest program.
    if (arena_.max_temps() > static_cast<std::int32_t>(temps_.size()))
      temps_.resize(static_cast<std::size_t>(arena_.max_temps()), 0);
  } catch (const SimError& e) {
    // Deferred like an invalid simulation-table row: fatal at retirement.
    entry.valid = false;
    entry.error = e.what();
  }
}

void CachedInterpBackend::issue(std::uint64_t pc, Work& out,
                                unsigned& words) {
  CacheEntry* entry = &out_of_range_;
  if (pc >= cache_base_ && pc - cache_base_ < cache_.size())
    entry = &cache_[pc - cache_base_];
  if (!entry->lowered) lower_entry(*entry);
  out.entry = entry;
  words = entry->words;
}

void CachedInterpBackend::execute(Work& work, int stage) {
  const CacheEntry& entry = *work.entry;
  if (!entry.valid) {
    if (stage == depth_ - 1) throw SimError(entry.error);
    return;
  }
  if ((entry.work_mask >> stage & 1u) == 0) return;
  const MicroSpan span = entry.micro[static_cast<std::size_t>(stage)];
  const MicroOp* ops = arena_.data() + span.offset;
  if (count_microops_) {
    microops_executed_ += exec_microops_counted(ops, span.len, *state_,
                                                control_, temps_.data());
  } else {
    exec_microops(ops, span.len, *state_, control_, temps_.data());
  }
}

}  // namespace lisasim
