#include "sim/checkpoint_io.hpp"

#include <cstdlib>
#include <string>

#include "model/model.hpp"

namespace lisasim {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char c = s[++i];
      out += c == 'n' ? '\n' : c == 'r' ? '\r' : c;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Whitespace/newline token reader over the serialized text.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  /// Next whitespace-delimited token; throws at end of input.
  std::string_view token() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
    if (pos_ >= text_.size())
      throw SimError("checkpoint: truncated (unexpected end of input)");
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' && text_[pos_] != '\n' &&
           text_[pos_] != '\r')
      ++pos_;
    return text_.substr(start, pos_ - start);
  }

  /// Remainder of the current line (for escaped free text); consumes the
  /// trailing newline. Leading single space (the key/value separator) is
  /// stripped.
  std::string_view rest_of_line() {
    if (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    const std::string_view line = text_.substr(start, pos_ - start);
    if (pos_ < text_.size()) ++pos_;
    return line;
  }

  void expect(std::string_view keyword) {
    const std::string_view got = token();
    if (got != keyword)
      throw SimError("checkpoint: expected '" + std::string(keyword) +
                     "', got '" + std::string(got) + "'");
  }

  std::int64_t integer() {
    const std::string_view t = token();
    char* end = nullptr;
    const std::string buf(t);
    const long long v = std::strtoll(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size())
      throw SimError("checkpoint: bad integer '" + buf + "'");
    return static_cast<std::int64_t>(v);
  }

  std::uint64_t unsigned_integer() {
    const std::string_view t = token();
    char* end = nullptr;
    const std::string buf(t);
    const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size() || buf.empty() || buf[0] == '-')
      throw SimError("checkpoint: bad unsigned integer '" + buf + "'");
    return static_cast<std::uint64_t>(v);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Append one engine-checkpoint block to `out` (shared by the single and
/// the batch serializers; the format is self-delimiting, every count
/// explicit, so blocks concatenate).
void append_checkpoint(std::string& out, const EngineCheckpoint& cp) {
  out += "lisasim-checkpoint 1\n";
  out += "total_cycles " + std::to_string(cp.total_cycles) + "\n";
  out += "interrupts " + std::to_string(cp.interrupts.size()) + "\n";
  for (const auto& [cycle, target] : cp.interrupts)
    out += std::to_string(cycle) + " " + std::to_string(target) + "\n";
  out += "state " + std::to_string(cp.state.size()) + "\n";
  for (std::size_t i = 0; i < cp.state.size(); ++i) {
    out += std::to_string(cp.state[i]);
    out += (i + 1) % 16 == 0 || i + 1 == cp.state.size() ? '\n' : ' ';
  }
  out += "slots " + std::to_string(cp.slots.size()) + "\n";
  for (const EngineCheckpoint::SlotImage& slot : cp.slots) {
    out += "slot " + std::to_string(slot.pc) + " " +
           std::to_string(slot.stall) + " " + std::to_string(slot.valid) +
           " " + std::to_string(slot.executed) + " " +
           std::to_string(slot.work.treewalk) + "\n";
    out += "error ";
    append_escaped(out, slot.work.error);
    out += "\n";
    out += "queues " + std::to_string(slot.work.sched_paths.size()) + "\n";
    for (const auto& queue : slot.work.sched_paths) {
      out += "queue " + std::to_string(queue.size()) + "\n";
      for (const auto& path : queue) {
        out += "path " + std::to_string(path.size());
        for (std::int32_t step : path) out += " " + std::to_string(step);
        out += "\n";
      }
    }
  }
}

/// Parse one engine-checkpoint block from `r` (shared by the single and
/// the batch parsers).
EngineCheckpoint parse_checkpoint_block(Reader& r) {
  r.expect("lisasim-checkpoint");
  if (r.unsigned_integer() != 1)
    throw SimError("checkpoint: unsupported format version");
  EngineCheckpoint cp;
  r.expect("total_cycles");
  cp.total_cycles = r.unsigned_integer();
  r.expect("interrupts");
  const std::uint64_t n_irq = r.unsigned_integer();
  for (std::uint64_t i = 0; i < n_irq; ++i) {
    const std::uint64_t cycle = r.unsigned_integer();
    const std::uint64_t target = r.unsigned_integer();
    cp.interrupts.emplace_back(cycle, target);
  }
  r.expect("state");
  const std::uint64_t n_state = r.unsigned_integer();
  cp.state.reserve(n_state);
  for (std::uint64_t i = 0; i < n_state; ++i) cp.state.push_back(r.integer());
  r.expect("slots");
  const std::uint64_t n_slots = r.unsigned_integer();
  for (std::uint64_t i = 0; i < n_slots; ++i) {
    EngineCheckpoint::SlotImage slot;
    r.expect("slot");
    slot.pc = r.unsigned_integer();
    slot.stall = static_cast<int>(r.integer());
    slot.valid = r.unsigned_integer() != 0;
    slot.executed = r.unsigned_integer() != 0;
    slot.work.treewalk = r.unsigned_integer() != 0;
    r.expect("error");
    slot.work.error = unescape(r.rest_of_line());
    r.expect("queues");
    const std::uint64_t n_queues = r.unsigned_integer();
    slot.work.sched_paths.resize(n_queues);
    for (std::uint64_t q = 0; q < n_queues; ++q) {
      r.expect("queue");
      const std::uint64_t n_paths = r.unsigned_integer();
      slot.work.sched_paths[q].resize(n_paths);
      for (std::uint64_t p = 0; p < n_paths; ++p) {
        r.expect("path");
        const std::uint64_t len = r.unsigned_integer();
        auto& path = slot.work.sched_paths[q][p];
        path.reserve(len);
        for (std::uint64_t s = 0; s < len; ++s)
          path.push_back(static_cast<std::int32_t>(r.integer()));
      }
    }
    cp.slots.push_back(std::move(slot));
  }
  return cp;
}

}  // namespace

std::string serialize_checkpoint(const EngineCheckpoint& cp) {
  std::string out;
  append_checkpoint(out, cp);
  return out;
}

EngineCheckpoint parse_checkpoint(std::string_view text) {
  Reader r(text);
  return parse_checkpoint_block(r);
}

std::string serialize_batch_checkpoint(const BatchCheckpoint& cp) {
  std::string out;
  out += "lisasim-batch-checkpoint 1\n";
  out += "lanes " + std::to_string(cp.lanes.size()) + "\n";
  for (std::size_t l = 0; l < cp.lanes.size(); ++l) {
    const BatchCheckpoint::Lane& lane = cp.lanes[l];
    const RunResult& result = lane.run.result;
    out += "lane " + std::to_string(l) + " " +
           std::to_string(lane.run.done) + " " +
           std::to_string(lane.run.errored) + " " +
           std::to_string(lane.run.recoverable) + "\n";
    out += "result " + std::to_string(result.cycles) + " " +
           std::to_string(result.packets_retired) + " " +
           std::to_string(result.slots_retired) + " " +
           std::to_string(result.fetches) + " " +
           std::to_string(result.halted) + "\n";
    out += "error ";
    append_escaped(out, lane.run.error);
    out += "\n";
    append_checkpoint(out, lane.engine);
  }
  return out;
}

BatchCheckpoint parse_batch_checkpoint(std::string_view text) {
  Reader r(text);
  r.expect("lisasim-batch-checkpoint");
  if (r.unsigned_integer() != 1)
    throw SimError("checkpoint: unsupported batch format version");
  BatchCheckpoint cp;
  r.expect("lanes");
  const std::uint64_t n_lanes = r.unsigned_integer();
  cp.lanes.resize(n_lanes);
  for (std::uint64_t l = 0; l < n_lanes; ++l) {
    BatchCheckpoint::Lane& lane = cp.lanes[l];
    r.expect("lane");
    if (r.unsigned_integer() != l)
      throw SimError("checkpoint: batch lanes out of order");
    lane.run.done = r.unsigned_integer() != 0;
    lane.run.errored = r.unsigned_integer() != 0;
    lane.run.recoverable = r.unsigned_integer() != 0;
    r.expect("result");
    lane.run.result.cycles = r.unsigned_integer();
    lane.run.result.packets_retired = r.unsigned_integer();
    lane.run.result.slots_retired = r.unsigned_integer();
    lane.run.result.fetches = r.unsigned_integer();
    lane.run.result.halted = r.unsigned_integer() != 0;
    r.expect("error");
    lane.run.error = unescape(r.rest_of_line());
    lane.engine = parse_checkpoint_block(r);
  }
  return cp;
}

}  // namespace lisasim
