#include "sim/checkpoint_io.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <limits>
#include <string>

#include "model/model.hpp"

namespace lisasim {

namespace {

// Checkpoint text is untrusted input (files restored with --restore, repro
// bundles, fuzz artifacts): every counted section is capped so a corrupted
// or hostile count cannot drive an allocation before parsing proves the
// tokens actually exist. The caps sit far above anything the serializer
// emits (pipeline depth, kMaxBatchLanes, scheduler path depth).
constexpr std::uint64_t kMaxInterrupts = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxSlots = 256;
constexpr std::uint64_t kMaxQueues = 256;
constexpr std::uint64_t kMaxPaths = std::uint64_t{1} << 16;
constexpr std::uint64_t kMaxPathLen = std::uint64_t{1} << 12;
constexpr std::uint64_t kMaxLanes = 64;
constexpr std::uint64_t kMaxStall = std::uint64_t{1} << 20;
// reserve() bound for the (model-sized, so uncapped) state section: the
// vector grows normally past this, and a lying count simply hits
// "truncated" when the tokens run out.
constexpr std::uint64_t kStateReserveCap = std::uint64_t{1} << 16;

/// Corrupt checkpoint input is a *recoverable* condition: the caller's
/// simulator is untouched (parsing happens before any restore), so it may
/// discard the file and keep running. Nothing here may throw the fatal
/// kind.
[[noreturn]] void fail(const std::string& message) {
  throw SimError("checkpoint: " + message, SimErrorKind::kRecoverable);
}

void check_count(std::uint64_t count, std::uint64_t cap,
                 const char* what) {
  if (count > cap)
    fail("implausible " + std::string(what) + " count " +
         std::to_string(count) + " (cap " + std::to_string(cap) + ")");
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char c = s[++i];
      out += c == 'n' ? '\n' : c == 'r' ? '\r' : c;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// Whitespace/newline token reader over the serialized text.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  /// Next whitespace-delimited token; throws (recoverably) at end of
  /// input — a truncated file always fails loudly, never half-parses.
  std::string_view token() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
    if (pos_ >= text_.size()) fail("truncated (unexpected end of input)");
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' && text_[pos_] != '\n' &&
           text_[pos_] != '\r')
      ++pos_;
    return text_.substr(start, pos_ - start);
  }

  /// A complete parse must consume the whole input: anything left over —
  /// a duplicated section, a concatenated second checkpoint — is rejected
  /// rather than silently ignored.
  void expect_end() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
    if (pos_ < text_.size())
      fail("trailing garbage after checkpoint ('" +
           std::string(text_.substr(pos_, 16)) + "...')");
  }

  /// Remainder of the current line (for escaped free text); consumes the
  /// trailing newline. Leading single space (the key/value separator) is
  /// stripped.
  std::string_view rest_of_line() {
    if (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    const std::string_view line = text_.substr(start, pos_ - start);
    if (pos_ < text_.size()) ++pos_;
    return line;
  }

  void expect(std::string_view keyword) {
    const std::string_view got = token();
    if (got != keyword)
      fail("expected '" + std::string(keyword) + "', got '" +
           std::string(got) + "'");
  }

  std::int64_t integer() {
    const std::string_view t = token();
    std::int64_t v = 0;
    const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
    if (ec != std::errc() || ptr != t.data() + t.size())
      fail("bad integer '" + std::string(t) + "'");
    return v;
  }

  std::uint64_t unsigned_integer() {
    const std::string_view t = token();
    std::uint64_t v = 0;
    const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
    if (ec != std::errc() || ptr != t.data() + t.size())
      fail("bad unsigned integer '" + std::string(t) + "'");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Append one engine-checkpoint block to `out` (shared by the single and
/// the batch serializers; the format is self-delimiting, every count
/// explicit, so blocks concatenate).
void append_checkpoint(std::string& out, const EngineCheckpoint& cp) {
  out += "lisasim-checkpoint 1\n";
  out += "total_cycles " + std::to_string(cp.total_cycles) + "\n";
  out += "interrupts " + std::to_string(cp.interrupts.size()) + "\n";
  for (const auto& [cycle, target] : cp.interrupts)
    out += std::to_string(cycle) + " " + std::to_string(target) + "\n";
  out += "state " + std::to_string(cp.state.size()) + "\n";
  for (std::size_t i = 0; i < cp.state.size(); ++i) {
    out += std::to_string(cp.state[i]);
    out += (i + 1) % 16 == 0 || i + 1 == cp.state.size() ? '\n' : ' ';
  }
  out += "slots " + std::to_string(cp.slots.size()) + "\n";
  for (const EngineCheckpoint::SlotImage& slot : cp.slots) {
    out += "slot " + std::to_string(slot.pc) + " " +
           std::to_string(slot.stall) + " " + std::to_string(slot.valid) +
           " " + std::to_string(slot.executed) + " " +
           std::to_string(slot.work.treewalk) + "\n";
    out += "error ";
    append_escaped(out, slot.work.error);
    out += "\n";
    out += "queues " + std::to_string(slot.work.sched_paths.size()) + "\n";
    for (const auto& queue : slot.work.sched_paths) {
      out += "queue " + std::to_string(queue.size()) + "\n";
      for (const auto& path : queue) {
        out += "path " + std::to_string(path.size());
        for (std::int32_t step : path) out += " " + std::to_string(step);
        out += "\n";
      }
    }
  }
}

/// Parse one engine-checkpoint block from `r` (shared by the single and
/// the batch parsers).
EngineCheckpoint parse_checkpoint_block(Reader& r) {
  r.expect("lisasim-checkpoint");
  if (r.unsigned_integer() != 1) fail("unsupported format version");
  EngineCheckpoint cp;
  r.expect("total_cycles");
  cp.total_cycles = r.unsigned_integer();
  r.expect("interrupts");
  const std::uint64_t n_irq = r.unsigned_integer();
  check_count(n_irq, kMaxInterrupts, "interrupt");
  for (std::uint64_t i = 0; i < n_irq; ++i) {
    const std::uint64_t cycle = r.unsigned_integer();
    const std::uint64_t target = r.unsigned_integer();
    cp.interrupts.emplace_back(cycle, target);
  }
  r.expect("state");
  const std::uint64_t n_state = r.unsigned_integer();
  // The state section is model-sized, so it carries no universal cap; the
  // reserve is bounded instead, and a lying count runs out of tokens long
  // before it runs out of memory.
  cp.state.reserve(
      static_cast<std::size_t>(std::min(n_state, kStateReserveCap)));
  for (std::uint64_t i = 0; i < n_state; ++i) cp.state.push_back(r.integer());
  r.expect("slots");
  const std::uint64_t n_slots = r.unsigned_integer();
  check_count(n_slots, kMaxSlots, "pipeline slot");
  for (std::uint64_t i = 0; i < n_slots; ++i) {
    EngineCheckpoint::SlotImage slot;
    r.expect("slot");
    slot.pc = r.unsigned_integer();
    const std::int64_t stall = r.integer();
    if (stall < 0 || stall > static_cast<std::int64_t>(kMaxStall))
      fail("slot stall " + std::to_string(stall) + " out of range");
    slot.stall = static_cast<int>(stall);
    slot.valid = r.unsigned_integer() != 0;
    slot.executed = r.unsigned_integer() != 0;
    slot.work.treewalk = r.unsigned_integer() != 0;
    r.expect("error");
    slot.work.error = unescape(r.rest_of_line());
    r.expect("queues");
    const std::uint64_t n_queues = r.unsigned_integer();
    check_count(n_queues, kMaxQueues, "scheduler queue");
    slot.work.sched_paths.resize(n_queues);
    for (std::uint64_t q = 0; q < n_queues; ++q) {
      r.expect("queue");
      const std::uint64_t n_paths = r.unsigned_integer();
      check_count(n_paths, kMaxPaths, "scheduler path");
      slot.work.sched_paths[q].resize(n_paths);
      for (std::uint64_t p = 0; p < n_paths; ++p) {
        r.expect("path");
        const std::uint64_t len = r.unsigned_integer();
        check_count(len, kMaxPathLen, "path step");
        auto& path = slot.work.sched_paths[q][p];
        path.reserve(len);
        for (std::uint64_t s = 0; s < len; ++s) {
          const std::int64_t step = r.integer();
          if (step < std::numeric_limits<std::int32_t>::min() ||
              step > std::numeric_limits<std::int32_t>::max())
            fail("path step " + std::to_string(step) + " out of range");
          path.push_back(static_cast<std::int32_t>(step));
        }
      }
    }
    cp.slots.push_back(std::move(slot));
  }
  return cp;
}

}  // namespace

std::string serialize_checkpoint(const EngineCheckpoint& cp) {
  std::string out;
  append_checkpoint(out, cp);
  return out;
}

EngineCheckpoint parse_checkpoint(std::string_view text) {
  Reader r(text);
  EngineCheckpoint cp = parse_checkpoint_block(r);
  r.expect_end();
  return cp;
}

std::string serialize_batch_checkpoint(const BatchCheckpoint& cp) {
  std::string out;
  out += "lisasim-batch-checkpoint 1\n";
  out += "lanes " + std::to_string(cp.lanes.size()) + "\n";
  for (std::size_t l = 0; l < cp.lanes.size(); ++l) {
    const BatchCheckpoint::Lane& lane = cp.lanes[l];
    const RunResult& result = lane.run.result;
    out += "lane " + std::to_string(l) + " " +
           std::to_string(lane.run.done) + " " +
           std::to_string(lane.run.errored) + " " +
           std::to_string(lane.run.recoverable) + "\n";
    out += "result " + std::to_string(result.cycles) + " " +
           std::to_string(result.packets_retired) + " " +
           std::to_string(result.slots_retired) + " " +
           std::to_string(result.fetches) + " " +
           std::to_string(result.halted) + "\n";
    out += "error ";
    append_escaped(out, lane.run.error);
    out += "\n";
    append_checkpoint(out, lane.engine);
  }
  return out;
}

BatchCheckpoint parse_batch_checkpoint(std::string_view text) {
  Reader r(text);
  r.expect("lisasim-batch-checkpoint");
  if (r.unsigned_integer() != 1) fail("unsupported batch format version");
  BatchCheckpoint cp;
  r.expect("lanes");
  const std::uint64_t n_lanes = r.unsigned_integer();
  check_count(n_lanes, kMaxLanes, "lane");
  cp.lanes.resize(n_lanes);
  for (std::uint64_t l = 0; l < n_lanes; ++l) {
    BatchCheckpoint::Lane& lane = cp.lanes[l];
    r.expect("lane");
    if (r.unsigned_integer() != l) fail("batch lanes out of order");
    lane.run.done = r.unsigned_integer() != 0;
    lane.run.errored = r.unsigned_integer() != 0;
    lane.run.recoverable = r.unsigned_integer() != 0;
    r.expect("result");
    lane.run.result.cycles = r.unsigned_integer();
    lane.run.result.packets_retired = r.unsigned_integer();
    lane.run.result.slots_retired = r.unsigned_integer();
    lane.run.result.fetches = r.unsigned_integer();
    lane.run.result.halted = r.unsigned_integer() != 0;
    r.expect("error");
    lane.run.error = unescape(r.rest_of_line());
    lane.engine = parse_checkpoint_block(r);
  }
  r.expect_end();
  return cp;
}

}  // namespace lisasim
