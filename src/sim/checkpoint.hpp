// Guarded-execution support types shared by the pipeline engine and the
// backends: run limits (watchdog), and the engine checkpoint format.
//
// A checkpoint snapshots everything the engine needs to resume a run at a
// cycle boundary: the full ProcessorState storage, the scalar fields of
// every pipeline slot, pending interrupts and the absolute cycle count.
// In-flight packet payloads (Backend::Work) are not serialized wholesale —
// they hold pointers into backend-private structures (simulation tables,
// decode caches, decode trees). Instead each backend implements
//
//   void save_work(const Work&, WorkSnapshot&) const;
//   void restore_work(std::uint64_t pc, const WorkSnapshot&, Work&);
//
// where restore_work rebuilds the payload from the slot's PC against the
// restored program memory. The only dynamic in-flight state that cannot be
// re-derived from the PC — the FIFO activation queues of tree-walk packets
// — is serialized structurally as decode-tree node paths (see
// sim/treewalk.hpp). Caveat: a checkpoint taken in the window between the
// fetch of a packet and a later overwrite of that same in-flight packet's
// words re-decodes the overwritten bytes on restore.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/result.hpp"

namespace lisasim {

/// Engine-level run limits. `max_cycles` is the classic soft cap: run()
/// returns normally when it is reached (benchmark slices, cosim lock-step).
/// The watchdog limits are hard: exceeding one throws a *recoverable*
/// SimError with pc/cycle/level context — the engine stays consistent and
/// run() may be called again (or a checkpoint restored) to continue.
struct RunLimits {
  /// Soft stop: run() returns after this many cycles.
  std::uint64_t max_cycles = UINT64_MAX;
  /// Hard stop: a run exceeding this many cycles throws a recoverable
  /// SimError ("runaway program"). 0 disables.
  std::uint64_t watchdog_cycles = 0;
  /// Livelock/deadlock watchdog: this many *consecutive* cycles without a
  /// single packet retiring throws a recoverable SimError. Must be set
  /// above pipeline depth + the longest legitimate stall. 0 disables.
  std::uint64_t max_stuck_cycles = 0;
};

/// Backend-neutral serialization of one in-flight packet payload.
struct WorkSnapshot {
  /// Payload was a tree-walk packet (interpretive work or guard fallback);
  /// restore must rebuild the same execution mode, queues included.
  bool treewalk = false;
  /// Deferred fetch-error text, empty if the packet decoded.
  std::string error;
  /// Tree-walk activation queues: per pipeline stage, per queued request,
  /// the structural path of the activated node in the packet's decode tree
  /// (slot index, then child-slot indices root-to-node).
  std::vector<std::vector<std::vector<std::int32_t>>> sched_paths;
};

/// A resumable snapshot of a PipelineEngine + ProcessorState pair, taken
/// between cycles. Valid for restore into the same simulator (same model,
/// same loaded program image family); restoring into a different pipeline
/// shape throws.
struct EngineCheckpoint {
  struct SlotImage {
    std::uint64_t pc = 0;
    int stall = 0;
    bool valid = false;
    bool executed = false;
    WorkSnapshot work;
  };

  std::vector<std::int64_t> state;  // ProcessorState::save_storage()
  std::vector<SlotImage> slots;     // one per pipeline stage
  std::vector<std::pair<std::uint64_t, std::uint64_t>> interrupts;
  std::uint64_t total_cycles = 0;
};

/// Outcome of one lane of a batched run. While `done` is false the lane is
/// still stepping (or stopped at the soft max_cycles limit and will resume
/// on the next run()). A lane retires from the batch by halting or by
/// raising a SimError; errored lanes freeze exactly where the sequential
/// engine's unwind would leave them, with the error text recorded here —
/// `recoverable` distinguishes watchdog stops from fatal program errors.
struct LaneRun {
  RunResult result;
  bool done = false;
  bool errored = false;
  bool recoverable = false;
  std::string error;
};

/// A resumable snapshot of an entire batch: one EngineCheckpoint per lane
/// (each interchangeable with a sequential simulator's checkpoint of that
/// lane — the SoA lane view gathers into the flat storage layout) plus the
/// lane's retirement status, so a partially retired batch round-trips.
struct BatchCheckpoint {
  struct Lane {
    EngineCheckpoint engine;
    LaneRun run;
  };
  std::vector<Lane> lanes;
};

}  // namespace lisasim
