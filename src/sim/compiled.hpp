// The compiled simulator: runs a program from its simulation table. All
// decoding, operand extraction, coding-time conditional resolution and
// operation sequencing happened in the simulation compiler; the run-time
// loop only advances packets through the pipeline and executes their
// pre-built per-stage programs — as specialized statement trees (dynamic
// scheduling) or as flattened micro-op programs (static scheduling /
// operation instantiation).
#pragma once

#include <cstdint>
#include <vector>

#include "asm/program.hpp"
#include "behavior/eval.hpp"
#include "behavior/microops.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/engine.hpp"
#include "sim/result.hpp"
#include "sim/simcompiler.hpp"
#include "sim/simtable.hpp"
#include "sim/table_cache.hpp"

namespace lisasim {

class CompiledBackend {
 public:
  // Trivially copyable: the engine shifts Work through pipeline slots every
  // cycle, so it must be cheap to move. Packets that could not be compiled
  // (wrong-path fetch of data words, PC outside the table) carry an error
  // id into the backend's error pool; deferred like in the interpretive
  // engine — fatal only at retirement.
  struct Work {
    const SimTableEntry* entry = nullptr;
    std::int32_t error_id = -1;
  };

  CompiledBackend(const Model& model, ProcessorState& state, SimLevel level)
      : state_(&state),
        level_(level),
        depth_(model.pipeline.depth()),
        eval_(state, control_) {}

  void set_table(const SimTable* table) {
    table_ = table;
    // One scratch allocation for the whole run: every span's temps fit.
    temps_.assign(static_cast<std::size_t>(table->max_temps()), 0);
  }

  /// Instrumented dispatch (micro-ops counted per execute) — bench only;
  /// the default path runs the uncounted threaded loop. Enabling resets
  /// the counter.
  void set_count_microops(bool on) {
    count_microops_ = on;
    if (on) microops_executed_ = 0;
  }
  std::uint64_t microops_executed() const { return microops_executed_; }

  PipelineControl& control() { return control_; }

  void issue(std::uint64_t pc, Work& out, unsigned& words) {
    const SimTableEntry* entry = table_->find(pc);
    if (entry && entry->valid) {
      out.error_id = -1;
      out.entry = entry;
      words = entry->words;
      return;
    }
    // Deferred-error path (wrong-path prefetch past the program or onto a
    // data word) — no exceptions here: this happens on every taken branch
    // near the text end. Dedupe against the previous message so loops
    // cannot grow the pool.
    out.entry = nullptr;
    const std::string& message =
        entry ? entry->error : out_of_table_error_;
    if (errors_.empty() || errors_.back() != message)
      errors_.push_back(message);
    out.error_id = static_cast<std::int32_t>(errors_.size()) - 1;
    words = 1;
  }

  void execute(Work& work, int stage) {
    if (work.error_id >= 0) {
      if (stage == depth_ - 1)
        throw SimError(errors_[static_cast<std::size_t>(work.error_id)]);
      return;
    }
    const SimTableEntry& entry = *work.entry;
    if ((entry.work_mask >> stage & 1u) == 0) return;
    if (level_ == SimLevel::kCompiledStatic) {
      const MicroSpan span = entry.micro[static_cast<std::size_t>(stage)];
      const MicroOp* ops = table_->arena().data() + span.offset;
      if (count_microops_) {
        microops_executed_ += exec_microops_counted(ops, span.len, *state_,
                                                    control_, temps_.data());
      } else {
        exec_microops(ops, span.len, *state_, control_, temps_.data());
      }
    } else {
      const SpecProgram& program =
          entry.schedule.stage_programs[static_cast<std::size_t>(stage)];
      eval_.exec_flat(program.stmts, program.num_locals);
    }
  }

  std::uint64_t slot_count(const Work& work) const {
    return work.entry ? work.entry->slot_count : 0;
  }

 private:
  ProcessorState* state_;
  SimLevel level_;
  int depth_;
  const SimTable* table_ = nullptr;
  PipelineControl control_;
  Evaluator eval_;
  std::vector<std::int64_t> temps_;  // shared scratch, sized by the arena
  bool count_microops_ = false;
  std::uint64_t microops_executed_ = 0;
  std::vector<std::string> errors_;  // deferred fetch-error pool
  const std::string out_of_table_error_ =
      "program counter outside the compiled program";
};

class CompiledSimulator {
 public:
  /// Builds the decoder and simulation compiler for `model`; programs are
  /// translated on load(). `level` selects dynamic or static scheduling.
  CompiledSimulator(const Model& model, SimLevel level)
      : model_(&model),
        level_(level),
        state_(model),
        decoder_(model),
        compiler_(model, decoder_),
        backend_(model, state_, level),
        engine_(model, state_, backend_) {}

  /// Sharded-build worker count for load()-time compilation (1 =
  /// sequential, 0 = hardware threads). The table contents are identical
  /// at any setting.
  void set_threads(unsigned threads) { compile_options_.threads = threads; }

  /// Attach a (possibly shared) table cache consulted by load(); nullptr
  /// detaches. The cache must outlive the simulator.
  void set_table_cache(SimTableCache* cache) { cache_ = cache; }

  /// Run the simulation compiler on `program` (or fetch the table from the
  /// attached cache), then load it. Returns the compile statistics (the
  /// bench for paper Fig. 6 times this call); also forwarded to the
  /// observer's on_compile hook.
  SimCompileStats load(const LoadedProgram& program) {
    SimCompileStats stats;
    if (cache_) {
      table_ = cache_->get_or_compile(compiler_, *model_, program, level_,
                                      &stats, compile_options_);
    } else {
      table_ = std::make_shared<const SimTable>(
          compiler_.compile(program, level_, &stats, compile_options_));
    }
    backend_.set_table(table_.get());
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
    if (observer_) observer_->on_compile(stats);
    return stats;
  }

  /// Load with a pre-built table (lets benches time compilation separately).
  void load_precompiled(const LoadedProgram& program, SimTable table) {
    load_precompiled(program,
                     std::make_shared<const SimTable>(std::move(table)));
  }

  /// Shared-table variant: several simulators (or repeated loads) can run
  /// off one cached table object.
  void load_precompiled(const LoadedProgram& program,
                        std::shared_ptr<const SimTable> table) {
    table_ = std::move(table);
    backend_.set_table(table_.get());
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
  }

  /// Reset state and pipeline and reload the program without recompiling —
  /// repeated runs against the same simulation table (benchmark loops).
  void reload(const LoadedProgram& program) {
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
  }

  RunResult run(std::uint64_t max_cycles = UINT64_MAX) {
    return engine_.run(max_cycles);
  }

  /// Dispatched micro-ops per simulated cycle, measured with one
  /// instrumented (switch-dispatch) run of `program` against the loaded
  /// table. Static level only (0 elsewhere). Not meant for timed regions.
  double microops_per_cycle(const LoadedProgram& program,
                            std::uint64_t max_cycles = UINT64_MAX) {
    if (level_ != SimLevel::kCompiledStatic) return 0;
    backend_.set_count_microops(true);
    reload(program);
    const RunResult result = run(max_cycles);
    const std::uint64_t uops = backend_.microops_executed();
    backend_.set_count_microops(false);
    if (result.cycles == 0) return 0;
    return static_cast<double>(uops) / static_cast<double>(result.cycles);
  }

  ProcessorState& state() { return state_; }
  const Model& model() const { return *model_; }
  const Decoder& decoder() const { return decoder_; }
  void set_observer(SimObserver* observer) {
    observer_ = observer;
    engine_.set_observer(observer);
  }
  void schedule_interrupt(std::uint64_t cycle, std::uint64_t target) {
    engine_.schedule_interrupt(cycle, target);
  }
  const SimTable& table() const { return *table_; }
  /// The loaded table object itself — pointer identity shows cache hits.
  std::shared_ptr<const SimTable> table_ptr() const { return table_; }
  SimLevel level() const { return level_; }

 private:
  const Model* model_;
  SimLevel level_;
  ProcessorState state_;
  Decoder decoder_;
  SimulationCompiler compiler_;
  CompiledBackend backend_;
  PipelineEngine<CompiledBackend> engine_;
  std::shared_ptr<const SimTable> table_;
  SimCompileOptions compile_options_;
  SimTableCache* cache_ = nullptr;
  SimObserver* observer_ = nullptr;
};

}  // namespace lisasim
