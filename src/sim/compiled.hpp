// The compiled simulator: runs a program from its simulation table. All
// decoding, operand extraction, coding-time conditional resolution and
// operation sequencing happened in the simulation compiler; the run-time
// loop only advances packets through the pipeline and executes their
// pre-built per-stage programs — as specialized statement trees (dynamic
// scheduling) or as flattened micro-op programs (static scheduling /
// operation instantiation).
//
// With a guard policy enabled (sim/guard.hpp) the backend additionally
// detects writes to program memory and, at issue time, either
// micro-recompiles the affected packet from live memory or executes it
// through the interpretive tree walk — restoring the soundness that
// compiled simulation otherwise loses on self-modifying code.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "asm/program.hpp"
#include "behavior/eval.hpp"
#include "behavior/microops.hpp"
#include "behavior/specialize.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"
#include "sim/guard.hpp"
#include "sim/native.hpp"
#include "sim/result.hpp"
#include "sim/simcompiler.hpp"
#include "sim/simtable.hpp"
#include "sim/table_cache.hpp"
#include "sim/trace.hpp"
#include "sim/treewalk.hpp"

namespace lisasim {

class CompiledBackend {
 public:
  // Cheap to move: the engine shifts Work through pipeline slots every
  // cycle. Packets that could not be compiled (wrong-path fetch of data
  // words, PC outside the table) carry an error id into the backend's
  // error pool; deferred like in the interpretive engine — fatal only at
  // retirement. Guarded packets additionally pin their payload: `patch`
  // keeps a re-translated packet alive even if the same address is
  // re-translated again while this fetch is still in flight (published
  // PatchedPackets are immutable, matching the interpretive simulator's
  // decode-at-fetch snapshot semantics), and `fallback` carries a
  // tree-walk execution.
  struct Work {
    const SimTableEntry* entry = nullptr;
    std::shared_ptr<const PatchedPacket> patch;
    std::shared_ptr<TreeWalkWork> fallback;
    std::int32_t error_id = -1;
    // Copy of the packet's stage mask (all-ones for fallbacks, the
    // retirement stage alone for error packets): execute() tests it with
    // one load from the Work it was handed, so the engine's sweep pays
    // nothing for the many stages a packet does nothing in.
    std::uint32_t mask = 0;
  };

  CompiledBackend(const Model& model, ProcessorState& state,
                  const Decoder& decoder, SimLevel level)
      : model_(&model),
        state_(&state),
        decoder_(&decoder),
        specializer_(model),
        level_(level),
        depth_(model.pipeline.depth()),
        eval_(state, control_) {}

  void set_table(const SimTable* table) {
    table_ = table;
    // One scratch allocation for the whole run: every span's temps fit.
    temps_.assign(static_cast<std::size_t>(table->max_temps()), 0);
  }

  /// Arm (or disarm, guard = nullptr) guarded execution. Drops packets
  /// re-translated under a previous arming and resets the counters; the
  /// simulator calls this on every (re)load.
  void set_guard(const ProgramGuard* guard, GuardPolicy policy) {
    guard_ = guard;
    policy_ = policy;
    patches_.clear();
    guard_stats_ = GuardStats{};
  }
  const GuardStats& guard_stats() const { return guard_stats_; }

  /// Instrumented dispatch (micro-ops counted per execute) — bench only;
  /// the default path runs the uncounted threaded loop. Enabling resets
  /// the counter.
  void set_count_microops(bool on) {
    count_microops_ = on;
    if (on) microops_executed_ = 0;
  }
  std::uint64_t microops_executed() const { return microops_executed_; }

  PipelineControl& control() { return control_; }

  /// Attach the native AOT runtime (kNative; nullptr detaches). Clean-path
  /// static spans dispatch through it when a compiled region is installed.
  void set_native(NativeRuntime* native) { native_ = native; }

  void issue(std::uint64_t pc, Work& out, unsigned& words) {
    // The guarded path only exists once program memory was actually
    // written: a clean program pays exactly this one branch per fetch.
    if (guard_ != nullptr && guard_->writes() != 0) [[unlikely]] {
      guarded_issue(pc, out, words);
      return;
    }
    issue_resolved(table_->find(pc), out, words);
  }

  /// Clean-path issue from an already-resolved table row (`entry` must be
  /// this table's find(pc) result, nullptr for out-of-table). The batched
  /// engine checks guard stamps once per batch step and shares one find()
  /// across lanes sitting at the same pc; issue() funnels through here so
  /// the two paths cannot diverge.
  void issue_resolved(const SimTableEntry* entry, Work& out, unsigned& words) {
    out.patch.reset();
    out.fallback.reset();
    if (entry && entry->valid) {
      out.error_id = -1;
      out.entry = entry;
      out.mask = entry->work_mask;
      words = entry->words;
      return;
    }
    issue_error(entry ? entry->error : out_of_table_error_, out, words);
  }

  void execute(Work& work, int stage) {
    if ((work.mask >> stage & 1u) == 0) return;
    if (work.fallback) [[unlikely]] {
      treewalk_execute(eval_, *work.fallback, stage, depth_);
      return;
    }
    if (work.error_id >= 0) {
      if (stage == depth_ - 1)
        throw SimError(errors_[static_cast<std::size_t>(work.error_id)]);
      return;
    }
    const SimTableEntry& entry = *work.entry;
    if (level_ == SimLevel::kCompiledStatic) {
      const MicroSpan span = entry.micro[static_cast<std::size_t>(stage)];
      // Native AOT seam: only the clean path (no guard re-translation, no
      // instrumented counting) may take a compiled region, and only for
      // spans the runtime verified and installed; anything else falls
      // through to the micro-op core below.
      if (native_ != nullptr && !work.patch && !count_microops_ &&
          native_->run_static_span(span.offset, span.len, control_))
        return;
      const MicroArena& arena =
          work.patch ? work.patch->arena : table_->arena();
      const MicroOp* ops = arena.data() + span.offset;
      if (count_microops_) {
        microops_executed_ += exec_microops_counted(
            ops, span.len, arena.pool_data(), *state_, control_,
            temps_.data());
      } else {
        exec_microops(ops, span.len, arena.pool_data(), *state_, control_,
                      temps_.data());
      }
    } else {
      const SpecProgram& program =
          entry.schedule.stage_programs[static_cast<std::size_t>(stage)];
      eval_.exec_flat(program.stmts, program.num_locals);
    }
  }

  std::uint64_t slot_count(const Work& work) const {
    if (work.fallback) return work.fallback->packet.slots.size();
    return work.entry ? work.entry->slot_count : 0;
  }

  void save_work(const Work& work, WorkSnapshot& out) const;
  void restore_work(std::uint64_t pc, const WorkSnapshot& snapshot, Work& out);

 private:
  void guarded_issue(std::uint64_t pc, Work& out, unsigned& words);

  /// Fill an error payload (deferred, fatal at retirement). No exceptions
  /// here: wrong-path prefetch past the program happens on every taken
  /// branch near the text end. Dedupe against the previous message so
  /// loops cannot grow the pool.
  void issue_error(const std::string& message, Work& out, unsigned& words) {
    out.entry = nullptr;
    out.patch.reset();
    out.fallback.reset();
    if (errors_.empty() || errors_.back() != message)
      errors_.push_back(message);
    out.error_id = static_cast<std::int32_t>(errors_.size()) - 1;
    // Deferred errors act (throw) at retirement only.
    out.mask = 1u << (depth_ - 1);
    words = 1;
  }

  /// Current re-translation of the (written) packet at `pc`, compiling one
  /// if none exists or memory changed again since.
  const std::shared_ptr<const PatchedPacket>& patch_for(std::uint64_t pc);

  const Model* model_;
  ProcessorState* state_;
  const Decoder* decoder_;
  Specializer specializer_;
  SimLevel level_;
  int depth_;
  const SimTable* table_ = nullptr;
  PipelineControl control_;
  Evaluator eval_;
  std::vector<std::int64_t> temps_;  // shared scratch, sized by the arena
  bool count_microops_ = false;
  std::uint64_t microops_executed_ = 0;
  std::vector<std::string> errors_;  // deferred fetch-error pool
  const std::string out_of_table_error_ =
      "program counter outside the compiled program";
  // Guarded execution (null/empty while disarmed).
  const ProgramGuard* guard_ = nullptr;
  GuardPolicy policy_ = GuardPolicy::kOff;
  std::unordered_map<std::uint64_t, std::shared_ptr<const PatchedPacket>>
      patches_;  // by pc: latest re-translation of self-modified packets
  GuardStats guard_stats_;
  NativeRuntime* native_ = nullptr;  // kNative only
};

class CompiledSimulator {
 public:
  /// Builds the decoder and simulation compiler for `model`; programs are
  /// translated on load(). `level` selects dynamic or static scheduling,
  /// or the trace tier (static tables + hot-trace superblock dispatch).
  CompiledSimulator(const Model& model, SimLevel level)
      : model_(&model),
        level_(level),
        state_(model),
        decoder_(model),
        compiler_(model, decoder_),
        backend_(model, state_, decoder_, table_level(level)),
        engine_(model, state_, backend_) {
    engine_.set_level(level);
    if (level == SimLevel::kTrace || level == SimLevel::kNative) {
      traces_ = std::make_unique<TraceRuntime>(model, state_);
      engine_.set_trace_runtime(traces_.get());
      // The native tier is the trace tier plus AOT region dispatch; with
      // no out-of-process toolchain it degrades to exactly the trace tier.
      if (level == SimLevel::kNative && NativeRuntime::toolchain_available()) {
        native_ = std::make_unique<NativeRuntime>(model, state_);
        traces_->set_native(native_.get());
        backend_.set_native(native_.get());
      }
    }
  }

  /// Sharded-build worker count for load()-time compilation (1 =
  /// sequential, 0 = hardware threads). The table contents are identical
  /// at any setting.
  void set_threads(unsigned threads) { compile_options_.threads = threads; }

  /// Attach a (possibly shared) table cache consulted by load(); nullptr
  /// detaches. The cache must outlive the simulator.
  void set_table_cache(SimTableCache* cache) { cache_ = cache; }

  /// Select the self-modifying-code policy. Takes effect at the next
  /// (re)load: the guard baselines against the freshly loaded image.
  void set_guard_policy(GuardPolicy policy) { guard_policy_ = policy; }
  GuardPolicy guard_policy() const { return guard_policy_; }
  /// Guarded-execution counters of the current load (zeros while off).
  const GuardStats& guard_stats() const { return backend_.guard_stats(); }
  /// Program-memory writes the guard observed since load (0 = clean run).
  std::uint64_t guarded_writes() const {
    return guard_.attached() ? guard_.writes() : 0;
  }

  /// Fault-injection seam (src/resilience): conservatively mark every
  /// guarded word written, as restore_checkpoint does — the next issue of
  /// each in-flight or fetched packet takes the guarded path and
  /// re-translates (or tree-walks) against unchanged memory. A staleness
  /// storm with no semantic effect; no-op while the guard is off.
  void force_guard_stale() {
    if (guard_.attached()) guard_.bump_all();
  }

  /// Fault-injection seam: arm the compiler's shared failure budget for
  /// subsequent load()s (nullptr disarms).
  void set_compile_fault_budget(std::shared_ptr<std::atomic<int>> budget) {
    compile_options_.fault_budget = std::move(budget);
  }

  /// Run the simulation compiler on `program` (or fetch the table from the
  /// attached cache), then load it. Returns the compile statistics (the
  /// bench for paper Fig. 6 times this call); also forwarded to the
  /// observer's on_compile hook.
  SimCompileStats load(const LoadedProgram& program) {
    SimCompileStats stats;
    // Publish the traces formed against the outgoing table before it can
    // be dropped: a later load of the same program warm-starts from them.
    publish_traces();
    // A previous load whose program wrote its own text leaves its cached
    // table describing code the image never contained at rest — drop it
    // so the cache can never serve a self-invalidated translation.
    if (cache_ && program_hash_ != 0 && guarded_writes() != 0)
      cache_->invalidate(program_hash_);
    if (cache_) {
      table_ = cache_->get_or_compile(compiler_, *model_, program,
                                      table_level(level_), &stats,
                                      compile_options_);
      program_hash_ = SimTableCache::hash_program(program);
    } else {
      table_ = std::make_shared<const SimTable>(compiler_.compile(
          program, table_level(level_), &stats, compile_options_));
      program_hash_ = 0;
    }
    backend_.set_table(table_.get());
    if (traces_) {
      traces_->set_program(table_.get());
      if (cache_)
        if (auto snapshot = cache_->load_traces(*model_, program))
          traces_->adopt(snapshot);
    }
    reset_and_load(program);
    if (native_)
      native_->prepare(table_.get(), program, program_hash_, traces_.get(),
                       cache_,
                       guard_policy_ == GuardPolicy::kOff ? nullptr : &guard_);
    if (observer_) observer_->on_compile(stats);
    return stats;
  }

  /// Load with a pre-built table (lets benches time compilation separately).
  void load_precompiled(const LoadedProgram& program, SimTable table) {
    load_precompiled(program,
                     std::make_shared<const SimTable>(std::move(table)));
  }

  /// Shared-table variant: several simulators (or repeated loads) can run
  /// off one cached table object.
  void load_precompiled(const LoadedProgram& program,
                        std::shared_ptr<const SimTable> table) {
    table_ = std::move(table);
    program_hash_ = 0;
    backend_.set_table(table_.get());
    if (traces_) traces_->set_program(table_.get());
    reset_and_load(program);
    if (native_)
      native_->prepare(table_.get(), program, program_hash_, traces_.get(),
                       cache_,
                       guard_policy_ == GuardPolicy::kOff ? nullptr : &guard_);
  }

  /// Reset state and pipeline and reload the program without recompiling —
  /// repeated runs against the same simulation table (benchmark loops).
  void reload(const LoadedProgram& program) { reset_and_load(program); }

  RunResult run(std::uint64_t max_cycles = UINT64_MAX) {
    if (native_) native_->poll();
    return engine_.run(max_cycles);
  }
  RunResult run(const RunLimits& limits) {
    if (native_) native_->poll();
    return engine_.run(limits);
  }

  EngineCheckpoint save_checkpoint() const {
    return engine_.save_checkpoint();
  }
  /// Restore a checkpoint of this simulator. The guard (if armed) marks
  /// every translation stale first: restore rewinds program memory without
  /// architectural writes, and generations are monotonic, so a re-translated
  /// packet's stamp could otherwise falsely match the rewound bytes.
  void restore_checkpoint(const EngineCheckpoint& checkpoint) {
    engine_.restore_checkpoint(checkpoint, [this] {
      if (guard_.attached()) guard_.bump_all();
    });
  }

  /// Dispatched micro-ops per simulated cycle, measured with one
  /// instrumented (switch-dispatch) run of `program` against the loaded
  /// table. Static level only (0 elsewhere). Not meant for timed regions.
  double microops_per_cycle(const LoadedProgram& program,
                            std::uint64_t max_cycles = UINT64_MAX) {
    if (level_ != SimLevel::kCompiledStatic && level_ != SimLevel::kTrace &&
        level_ != SimLevel::kNative)
      return 0;
    backend_.set_count_microops(true);
    if (traces_) traces_->set_count_microops(true);
    reload(program);
    const RunResult result = run(max_cycles);
    std::uint64_t uops = backend_.microops_executed();
    if (traces_) uops += traces_->microops_executed();
    backend_.set_count_microops(false);
    if (traces_) traces_->set_count_microops(false);
    if (result.cycles == 0) return 0;
    return static_cast<double>(uops) / static_cast<double>(result.cycles);
  }

  ProcessorState& state() { return state_; }
  const Model& model() const { return *model_; }
  const Decoder& decoder() const { return decoder_; }
  void set_observer(SimObserver* observer) {
    observer_ = observer;
    engine_.set_observer(observer);
  }
  void schedule_interrupt(std::uint64_t cycle, std::uint64_t target) {
    engine_.schedule_interrupt(cycle, target);
  }
  const SimTable& table() const { return *table_; }
  /// The loaded table object itself — pointer identity shows cache hits.
  std::shared_ptr<const SimTable> table_ptr() const { return table_; }
  SimLevel level() const { return level_; }

  /// Trace-tier tuning (hotness threshold etc.); no-op below kTrace.
  void set_trace_config(const TraceConfig& config) {
    if (traces_) traces_->configure(config);
  }
  /// Trace-tier counters; nullptr below kTrace.
  const TraceStats* trace_stats() const {
    return traces_ ? &traces_->stats() : nullptr;
  }

  /// Native-tier tuning (blocking compiles, -O level); no-op below kNative
  /// or when the toolchain is unavailable. Takes effect at the next round.
  void set_native_config(const NativeConfig& config) {
    if (native_) native_->configure(config);
  }
  /// Native-tier counters; nullptr below kNative / without a toolchain.
  const NativeStats* native_stats() const {
    return native_ ? &native_->stats() : nullptr;
  }
  /// True once at least one compiled region is installed and serving.
  bool native_active() const { return native_ && native_->active(); }
  /// Drain in-flight native compile rounds (tests/benches); no-op below
  /// kNative.
  void wait_native_ready() {
    if (native_) native_->wait_ready();
  }
  /// Diagnostic from the most recent failed native compile round.
  std::string native_last_error() const {
    return native_ ? native_->last_error() : std::string();
  }

 private:
  /// The table level a simulation level runs from: the trace tier splices
  /// static-level micro spans, so it compiles (and cache-keys) its tables
  /// at kCompiledStatic and shares them with that level.
  static constexpr SimLevel table_level(SimLevel level) {
    return level == SimLevel::kTrace || level == SimLevel::kNative
               ? SimLevel::kCompiledStatic
               : level;
  }

  /// Publish the current trace set to the attached cache, keyed alongside
  /// the table. Skipped when the guard saw writes: the traces describe a
  /// self-modified image no other load will reproduce.
  void publish_traces() {
    if (cache_ == nullptr || traces_ == nullptr || program_hash_ == 0 ||
        guarded_writes() != 0)
      return;
    if (auto snapshot = traces_->snapshot())
      cache_->store_traces(*model_, program_hash_, std::move(snapshot));
  }

  void reset_and_load(const LoadedProgram& program) {
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
    if (guard_policy_ == GuardPolicy::kOff) {
      guard_.detach();
      backend_.set_guard(nullptr, GuardPolicy::kOff);
    } else {
      guard_.attach(state_);
      // Loading wrote the text through the hook; re-baseline so the load
      // itself does not look like self-modification.
      guard_.reset();
      backend_.set_guard(&guard_, guard_policy_);
    }
    // Traces survive a reload (they are table-derived), but the guard they
    // stamp against follows the current policy.
    if (traces_)
      traces_->set_guard(guard_policy_ == GuardPolicy::kOff ? nullptr
                                                            : &guard_);
    if (native_)
      native_->set_guard(guard_policy_ == GuardPolicy::kOff ? nullptr
                                                            : &guard_);
  }

  const Model* model_;
  SimLevel level_;
  ProcessorState state_;
  Decoder decoder_;
  SimulationCompiler compiler_;
  CompiledBackend backend_;
  PipelineEngine<CompiledBackend> engine_;
  std::unique_ptr<TraceRuntime> traces_;    // kTrace / kNative
  std::unique_ptr<NativeRuntime> native_;   // kNative with a toolchain only
  std::shared_ptr<const SimTable> table_;
  SimCompileOptions compile_options_;
  SimTableCache* cache_ = nullptr;
  SimObserver* observer_ = nullptr;
  ProgramGuard guard_;
  GuardPolicy guard_policy_ = GuardPolicy::kOff;
  std::uint64_t program_hash_ = 0;  // cache key of the loaded program
};

}  // namespace lisasim
