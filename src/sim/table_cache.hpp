// In-memory simulation-table cache. Reloading an unchanged program is the
// dominant pattern in benchmark repetitions and multi-run workloads; the
// table is a pure function of (machine model, program text, simulation
// level), so it can be shared across simulator instances and reloads
// instead of re-running the simulation compiler.
//
// Key = (target id, model hash, program content hash, level):
//   * target id      — the model's name (cheap first-level discriminator);
//   * model hash     — FNV-1a over the canonical model database dump, so
//                      two differently-named but structurally different
//                      models never alias (memoized per Model instance;
//                      models must stay immutable while cached);
//   * program hash   — FNV-1a over name, text base, entry, words, symbols
//                      and data segments;
//   * level          — dynamic and static tables differ (micro-ops).
//
// Entries are shared_ptr<const SimTable>: a hit hands out the same table
// object, so holders keep it alive across LRU eviction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "asm/program.hpp"
#include "model/model.hpp"
#include "sim/result.hpp"
#include "sim/simcompiler.hpp"
#include "sim/simtable.hpp"

namespace lisasim {

struct TraceSet;  // sim/trace.hpp; the cache stores it opaquely

struct TableCacheKey {
  std::string target;
  std::uint64_t model_hash = 0;
  std::uint64_t program_hash = 0;
  SimLevel level = SimLevel::kCompiledDynamic;

  friend bool operator==(const TableCacheKey&, const TableCacheKey&) = default;
};

class SimTableCache {
 public:
  /// Keeps at most `capacity` tables, evicting least-recently-used.
  explicit SimTableCache(std::size_t capacity = 64);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t coalesced = 0;  // misses that waited on an in-flight
                                  // compile of the same key instead of
                                  // compiling again (single-flight)
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;  // tables dropped via invalidate()
    std::uint64_t corruptions = 0;    // entries failing fingerprint re-check
    std::size_t entries = 0;
    // Disk-backed native artifact directory (zeros while unset).
    std::uint64_t artifact_hits = 0;       // .so served from disk
    std::uint64_t artifact_misses = 0;     // lookup found no artifact
    std::uint64_t artifact_evictions = 0;  // .so dropped by the byte cap
  };

  /// Return the cached table for (model, program, level), or run
  /// `compiler` and insert. On a hit `stats` reports cache_hit = true,
  /// zero decode calls and the lookup time; the translation counters
  /// (instructions, rows, micro-ops) are replayed from the original
  /// compile so callers can always print them. Thread-safe and
  /// single-flight: concurrent misses for the same key elect one compiler
  /// — the rest block until it publishes and then take the hit path, so K
  /// simultaneous sessions of one program cost exactly one compile. If
  /// the elected compile throws, one waiter is re-elected and retries;
  /// the exception propagates only to the thread whose own compile threw.
  std::shared_ptr<const SimTable> get_or_compile(
      SimulationCompiler& compiler, const Model& model,
      const LoadedProgram& program, SimLevel level,
      SimCompileStats* stats = nullptr, const SimCompileOptions& options = {});

  Stats stats() const;
  void clear();

  /// Drop every cached table built from a program whose content hash is
  /// `program_hash` — all targets, models and levels. Returns the number
  /// of tables dropped. Guarded simulators call this when their program
  /// wrote its own text: the translation the cache holds describes code
  /// the image no longer runs, and must not be served to a future load.
  /// Holders of already-handed-out shared_ptr tables are unaffected.
  std::size_t invalidate(std::uint64_t program_hash);

  /// Stash the trace set a kTrace simulator formed against (model,
  /// program_hash) — keyed alongside the table with level = kTrace, so a
  /// future load of the same program warm-starts its trace tier instead of
  /// re-profiling. Stored opaquely (shared, immutable); the adopter
  /// re-verifies the table fingerprint inside the snapshot before use.
  /// Replaces any earlier snapshot for the key (later = hotter).
  void store_traces(const Model& model, std::uint64_t program_hash,
                    std::shared_ptr<const TraceSet> traces);

  /// The stashed trace set for (model, program), or nullptr. Does not age
  /// the LRU: snapshots are dropped by invalidate()/clear() only — they
  /// are small next to tables and must not pin table entries alive.
  std::shared_ptr<const TraceSet> load_traces(const Model& model,
                                              const LoadedProgram& program);

  /// FNV-1a content hash of a loaded program (exposed for tests).
  static std::uint64_t hash_program(const LoadedProgram& program);
  /// FNV-1a hash of the canonical model dump (exposed for tests).
  static std::uint64_t hash_model(const Model& model);
  /// Structural fingerprint of a table: O(rows) FNV over the row scalars
  /// and a bounded arena sample — cheap enough to re-verify on every hit,
  /// strong enough that a flipped row/arena field cannot be served.
  /// (signature() would also work, but it renders the whole table.)
  static std::uint64_t fingerprint_table(const SimTable& table);

  /// Fault injection only (resilience tests): flip every stored entry's
  /// fingerprint so the next hit on it is detected as corrupted, dropped,
  /// counted in Stats::corruptions and transparently recompiled.
  void debug_corrupt();

  // -- Disk-backed native artifact cache (the kNative tier's .so files) --
  //
  // Artifacts are keyed by (target, model hash, program hash, content
  // hash) in the filename itself — `native-<target>-m<16hex>-p<16hex>-
  // c<16hex>.so` — so a directory scan is the whole index and a fresh
  // process warm-starts without any sidecar metadata. The directory is
  // byte-capped, LRU-by-mtime (a hit touches the file); invalidate() and
  // clear() delete the matching files alongside the in-memory tables.

  /// Enable (dir != "", created if missing) or disable (dir == "") the
  /// artifact directory, with an LRU byte cap (default 256 MiB). Enabling
  /// enforces the cap immediately over whatever the directory holds.
  void set_artifact_dir(const std::string& dir,
                        std::uint64_t max_bytes = 256ull << 20);
  /// The configured artifact directory ("" while disabled).
  std::string artifact_dir() const;

  /// Path of the artifact for the key, or "" (counted as hit/miss). A hit
  /// refreshes the file's mtime so the byte cap evicts cold programs first.
  std::string find_artifact(const std::string& target,
                            std::uint64_t model_hash,
                            std::uint64_t program_hash,
                            std::uint64_t content_hash);

  /// Move `tmp_so_path` (same filesystem) into the artifact directory
  /// under the key's canonical name, enforce the byte cap (never evicting
  /// the file just published), and return its final path ("" on failure or
  /// while disabled — the caller keeps its transient artifact).
  std::string publish_artifact(const std::string& target,
                               std::uint64_t model_hash,
                               std::uint64_t program_hash,
                               std::uint64_t content_hash,
                               const std::string& tmp_so_path);

 private:
  struct Entry {
    TableCacheKey key;
    std::shared_ptr<const SimTable> table;
    SimCompileStats compile_stats;  // counters from the miss-time build
    std::uint64_t fingerprint = 0;  // fingerprint_table() at insert time
  };
  struct KeyHash {
    std::size_t operator()(const TableCacheKey& key) const;
  };

  std::uint64_t model_hash_for(const Model& model);
  /// Delete oldest-mtime artifacts until the directory fits the byte cap
  /// (mutex_ held). `keep` (a filename) is never evicted.
  void enforce_artifact_cap_locked(const std::string& keep = {});
  /// Delete artifacts whose filename matches `token` (mutex_ held);
  /// returns the number removed. Empty token matches every artifact.
  std::size_t remove_artifacts_locked(const std::string& token);

  /// Memoized model hash. The map is keyed by instance address, so a
  /// destroyed model whose address is reused by a *different* model (the
  /// ABA case a long-lived serving cache can hit) must not inherit the
  /// stale hash: the memo also records the model name and is recomputed
  /// on any mismatch. Two distinct models reusing one address *and* one
  /// name within a cache generation are indistinguishable here; such
  /// callers must clear() between generations (documented in §5.2).
  struct ModelHashMemo {
    std::string name;
    std::uint64_t hash = 0;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<TableCacheKey, std::list<Entry>::iterator, KeyHash> map_;
  std::unordered_map<TableCacheKey, std::shared_ptr<const TraceSet>, KeyHash>
      traces_;  // trace-tier snapshots, key.level = kTrace
  std::unordered_map<const Model*, ModelHashMemo> model_hashes_;
  /// Keys with a compile in flight (single-flight election). Guarded by
  /// mutex_; waiters block on compile_done_ and re-run the lookup loop.
  std::unordered_map<TableCacheKey, unsigned, KeyHash> in_flight_;
  std::condition_variable compile_done_;
  Stats stats_;
  std::string artifact_dir_;  // "" = disk artifacts disabled
  std::uint64_t artifact_max_bytes_ = 256ull << 20;
};

}  // namespace lisasim
