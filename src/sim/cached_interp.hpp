// Decode-cached interpretive simulator: the partial compiled level of
// paper §3 that performs compile-time decoding up front and defers the
// remaining translation steps to first execution. All instruction words
// are decoded once into a packet cache; the first time a packet is fetched
// its behavior is sequenced, specialized and lowered to micro-ops (packed
// into a lazily growing MicroArena), and every subsequent cycle runs the
// same flat dispatch loop as the fully compiled levels. Together with the
// other levels this completes the interpretive → fully-compiled spectrum:
//
//   interpretive        decode per fetch, sequence + tree-walk per cycle
//   decode-cached       decode once, sequence + instantiate on first
//                       execution, micro-op dispatch per cycle  (this file)
//   compiled-dynamic    decode once, sequence once, tree-walk per cycle
//   compiled-static     decode once, sequence once, instantiate once
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "behavior/eval.hpp"
#include "behavior/microarena.hpp"
#include "behavior/specialize.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/engine.hpp"
#include "sim/result.hpp"

namespace lisasim {

class CachedInterpBackend {
 public:
  struct CacheEntry {
    DecodedPacket packet;
    // Lazily lowered micro-programs, one span per pipeline stage, packed
    // into the backend's MicroArena. Empty until `lowered`.
    std::vector<MicroSpan> micro;
    std::uint32_t work_mask = 0;  // bit s set <=> stage s has work
    unsigned words = 1;
    unsigned slot_count = 0;
    bool lowered = false;  // sequencing + lowering ran (lazy, at issue)
    bool valid = false;
    std::string error;
  };

  struct Work {
    const CacheEntry* entry = nullptr;
  };

  CachedInterpBackend(const Model& model, ProcessorState& state)
      : state_(&state),
        depth_(model.pipeline.depth()),
        decoder_(model),
        specializer_(model) {}

  /// Pre-decode the whole program (the up-front compile step of this
  /// level). Sequencing and micro-op lowering happen lazily at issue().
  void build_cache(const LoadedProgram& program);

  /// Instrumented dispatch (micro-ops counted per execute) — bench only.
  /// Enabling resets the counter.
  void set_count_microops(bool on) {
    count_microops_ = on;
    if (on) microops_executed_ = 0;
  }
  std::uint64_t microops_executed() const { return microops_executed_; }

  PipelineControl& control() { return control_; }
  void issue(std::uint64_t pc, Work& out, unsigned& words);
  void execute(Work& work, int stage);
  std::uint64_t slot_count(const Work& work) const {
    return work.entry && work.entry->valid ? work.entry->slot_count : 0;
  }

  const Decoder& decoder() const { return decoder_; }

 private:
  /// First-fetch translation: sequence the packet, lower each stage
  /// program to micro-ops, run the peephole pass and pack the result into
  /// the arena. Failures poison the entry (deferred error, like invalid
  /// simulation-table rows).
  void lower_entry(CacheEntry& entry);

  ProcessorState* state_;
  int depth_;
  Decoder decoder_;
  Specializer specializer_;
  PipelineControl control_;
  MicroArena arena_;
  std::vector<std::int64_t> temps_;  // shared scratch, grown with the arena
  bool count_microops_ = false;
  std::uint64_t microops_executed_ = 0;
  std::uint64_t cache_base_ = 0;
  std::vector<CacheEntry> cache_;
  CacheEntry out_of_range_;  // shared "PC outside program" entry
};

class CachedInterpSimulator {
 public:
  explicit CachedInterpSimulator(const Model& model)
      : model_(&model),
        state_(model),
        backend_(model, state_),
        engine_(model, state_, backend_) {}

  void load(const LoadedProgram& program) {
    backend_.build_cache(program);
    reload(program);
  }

  /// Reset state and pipeline without re-decoding (benchmark loops). The
  /// decode cache and already-lowered micro-programs are kept.
  void reload(const LoadedProgram& program) {
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
  }

  RunResult run(std::uint64_t max_cycles = UINT64_MAX) {
    return engine_.run(max_cycles);
  }

  /// Dispatched micro-ops per simulated cycle, measured with one
  /// instrumented (switch-dispatch) run of `program`. Not for timed
  /// regions.
  double microops_per_cycle(const LoadedProgram& program,
                            std::uint64_t max_cycles = UINT64_MAX) {
    backend_.set_count_microops(true);
    reload(program);
    const RunResult result = run(max_cycles);
    const std::uint64_t uops = backend_.microops_executed();
    backend_.set_count_microops(false);
    if (result.cycles == 0) return 0;
    return static_cast<double>(uops) / static_cast<double>(result.cycles);
  }

  ProcessorState& state() { return state_; }
  const Model& model() const { return *model_; }
  void set_observer(SimObserver* observer) { engine_.set_observer(observer); }
  void schedule_interrupt(std::uint64_t cycle, std::uint64_t target) {
    engine_.schedule_interrupt(cycle, target);
  }

 private:
  const Model* model_;
  ProcessorState state_;
  CachedInterpBackend backend_;
  PipelineEngine<CachedInterpBackend> engine_;
};

}  // namespace lisasim
