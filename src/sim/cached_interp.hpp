// Decode-cached interpretive simulator: the partial compiled level of
// paper §3 that performs compile-time decoding up front and defers the
// remaining translation steps to first execution. All instruction words
// are decoded once into a packet cache; the first time a packet is fetched
// its behavior is sequenced, specialized and lowered to micro-ops (packed
// into a lazily growing MicroArena), and every subsequent cycle runs the
// same flat dispatch loop as the fully compiled levels. Together with the
// other levels this completes the interpretive → fully-compiled spectrum:
//
//   interpretive        decode per fetch, sequence + tree-walk per cycle
//   decode-cached       decode once, sequence + instantiate on first
//                       execution, micro-op dispatch per cycle  (this file)
//   compiled-dynamic    decode once, sequence once, tree-walk per cycle
//   compiled-static     decode once, sequence once, instantiate once
//
// Like the fully compiled levels, the decode cache is stale the moment the
// program writes its own text; the same guard machinery (sim/guard.hpp)
// re-translates or tree-walks affected packets at issue time.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "asm/program.hpp"
#include "behavior/eval.hpp"
#include "behavior/microarena.hpp"
#include "behavior/specialize.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/checkpoint.hpp"
#include "sim/engine.hpp"
#include "sim/guard.hpp"
#include "sim/result.hpp"
#include "sim/simcompiler.hpp"
#include "sim/treewalk.hpp"

namespace lisasim {

class CachedInterpBackend {
 public:
  struct CacheEntry {
    DecodedPacket packet;
    // Lazily lowered micro-programs, one span per pipeline stage, packed
    // into the backend's MicroArena. Empty until `lowered`.
    std::vector<MicroSpan> micro;
    std::uint32_t work_mask = 0;  // bit s set <=> stage s has work
    unsigned words = 1;
    unsigned slot_count = 0;
    bool lowered = false;  // sequencing + lowering ran (lazy, at issue)
    bool valid = false;
    std::string error;
  };

  // `entry` points into the (load-stable) cache vector; guarded packets
  // pin their payload instead: `patch` holds a re-translation of a
  // self-modified packet (immutable once published — an in-flight fetch
  // keeps executing its own snapshot even if the address is re-translated
  // again), `fallback` a tree-walk execution.
  struct Work {
    const CacheEntry* entry = nullptr;
    std::shared_ptr<const PatchedPacket> patch;
    std::shared_ptr<TreeWalkWork> fallback;
  };

  CachedInterpBackend(const Model& model, ProcessorState& state)
      : model_(&model),
        state_(&state),
        depth_(model.pipeline.depth()),
        decoder_(model),
        specializer_(model),
        eval_(state, control_) {}

  /// Pre-decode the whole program (the up-front compile step of this
  /// level). Sequencing and micro-op lowering happen lazily at issue().
  void build_cache(const LoadedProgram& program);

  /// Arm (or disarm) guarded execution; see CompiledBackend::set_guard.
  void set_guard(const ProgramGuard* guard, GuardPolicy policy) {
    guard_ = guard;
    policy_ = policy;
    patches_.clear();
    guard_stats_ = GuardStats{};
  }
  const GuardStats& guard_stats() const { return guard_stats_; }

  /// Instrumented dispatch (micro-ops counted per execute) — bench only.
  /// Enabling resets the counter.
  void set_count_microops(bool on) {
    count_microops_ = on;
    if (on) microops_executed_ = 0;
  }
  std::uint64_t microops_executed() const { return microops_executed_; }

  PipelineControl& control() { return control_; }
  void issue(std::uint64_t pc, Work& out, unsigned& words);
  void execute(Work& work, int stage);
  std::uint64_t slot_count(const Work& work) const {
    if (work.fallback) return work.fallback->packet.slots.size();
    if (work.patch)
      return work.patch->entry.valid ? work.patch->entry.slot_count : 0;
    return work.entry && work.entry->valid ? work.entry->slot_count : 0;
  }

  void save_work(const Work& work, WorkSnapshot& out) const;
  void restore_work(std::uint64_t pc, const WorkSnapshot& snapshot, Work& out);

  const Decoder& decoder() const { return decoder_; }

  // Translation counters: the decode work of build_cache() plus the
  // sequencing/lowering this level defers to first issue (cumulative for
  // the current cache — reload() keeps lowered entries, so these do not
  // restart with the run).
  std::size_t decode_calls() const { return decode_calls_; }
  std::size_t instructions() const { return instructions_; }
  std::size_t cache_rows() const { return cache_.size(); }
  std::size_t lazy_lowered_packets() const { return lazy_lowered_packets_; }
  std::size_t lowered_microops() const { return lowered_microops_; }

 private:
  /// First-fetch translation: sequence the packet, lower each stage
  /// program to micro-ops, run the peephole pass and pack the result into
  /// the arena. Failures poison the entry (deferred error, like invalid
  /// simulation-table rows).
  void lower_entry(CacheEntry& entry);

  CacheEntry* lookup(std::uint64_t pc) {
    if (pc >= cache_base_ && pc - cache_base_ < cache_.size())
      return &cache_[pc - cache_base_];
    return &out_of_range_;
  }

  void guarded_issue(std::uint64_t pc, Work& out, unsigned& words);
  const std::shared_ptr<const PatchedPacket>& patch_for(std::uint64_t pc);
  void run_micro(const MicroOp* ops, std::uint32_t len,
                 const std::int64_t* pool);

  const Model* model_;
  ProcessorState* state_;
  int depth_;
  Decoder decoder_;
  Specializer specializer_;
  PipelineControl control_;
  Evaluator eval_;
  MicroArena arena_;
  std::vector<std::int64_t> temps_;  // shared scratch, grown with the arena
  bool count_microops_ = false;
  std::uint64_t microops_executed_ = 0;
  std::size_t decode_calls_ = 0;
  std::size_t instructions_ = 0;
  std::size_t lazy_lowered_packets_ = 0;
  std::size_t lowered_microops_ = 0;
  std::uint64_t cache_base_ = 0;
  std::vector<CacheEntry> cache_;
  CacheEntry out_of_range_;  // shared "PC outside program" entry
  // Guarded execution (null/empty while disarmed).
  const ProgramGuard* guard_ = nullptr;
  GuardPolicy policy_ = GuardPolicy::kOff;
  std::unordered_map<std::uint64_t, std::shared_ptr<const PatchedPacket>>
      patches_;  // by pc: latest re-translation of self-modified packets
  GuardStats guard_stats_;
};

class CachedInterpSimulator {
 public:
  explicit CachedInterpSimulator(const Model& model)
      : model_(&model),
        state_(model),
        backend_(model, state_),
        engine_(model, state_, backend_) {
    engine_.set_level(SimLevel::kDecodeCached);
  }

  /// Pre-decode `program`. Returns the load-time translation counters;
  /// this level lowers lazily, so compile_stats() after a run reports the
  /// complete picture (lazy_lowered_packets, micro-ops).
  SimCompileStats load(const LoadedProgram& program) {
    const auto start = std::chrono::steady_clock::now();
    backend_.build_cache(program);
    reload(program);
    load_stats_ = SimCompileStats{};
    load_stats_.instructions = backend_.instructions();
    load_stats_.table_rows = backend_.cache_rows();
    load_stats_.decode_calls = backend_.decode_calls();
    load_stats_.compile_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    const SimCompileStats stats = compile_stats();
    if (observer_) observer_->on_compile(stats);
    return stats;
  }

  /// The load-time counters plus the lazy sequencing/lowering performed
  /// since (the decode-cached level's deferred operation instantiation).
  SimCompileStats compile_stats() const {
    SimCompileStats stats = load_stats_;
    stats.lazy_lowered_packets = backend_.lazy_lowered_packets();
    stats.microops = backend_.lowered_microops();
    return stats;
  }

  /// Reset state and pipeline without re-decoding (benchmark loops). The
  /// decode cache and already-lowered micro-programs are kept.
  void reload(const LoadedProgram& program) {
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
    if (guard_policy_ == GuardPolicy::kOff) {
      guard_.detach();
      backend_.set_guard(nullptr, GuardPolicy::kOff);
    } else {
      guard_.attach(state_);
      guard_.reset();  // the load wrote the text through the hook
      backend_.set_guard(&guard_, guard_policy_);
    }
  }

  /// Select the self-modifying-code policy; effective at the next
  /// (re)load, like CompiledSimulator::set_guard_policy.
  void set_guard_policy(GuardPolicy policy) { guard_policy_ = policy; }
  GuardPolicy guard_policy() const { return guard_policy_; }
  const GuardStats& guard_stats() const { return backend_.guard_stats(); }
  std::uint64_t guarded_writes() const {
    return guard_.attached() ? guard_.writes() : 0;
  }

  /// Fault-injection seam (src/resilience): force a staleness storm, as in
  /// CompiledSimulator::force_guard_stale. No-op while the guard is off.
  void force_guard_stale() {
    if (guard_.attached()) guard_.bump_all();
  }

  RunResult run(std::uint64_t max_cycles = UINT64_MAX) {
    return engine_.run(max_cycles);
  }
  RunResult run(const RunLimits& limits) { return engine_.run(limits); }

  EngineCheckpoint save_checkpoint() const {
    return engine_.save_checkpoint();
  }
  void restore_checkpoint(const EngineCheckpoint& checkpoint) {
    engine_.restore_checkpoint(checkpoint, [this] {
      if (guard_.attached()) guard_.bump_all();
    });
  }

  /// Dispatched micro-ops per simulated cycle, measured with one
  /// instrumented (switch-dispatch) run of `program`. Not for timed
  /// regions.
  double microops_per_cycle(const LoadedProgram& program,
                            std::uint64_t max_cycles = UINT64_MAX) {
    backend_.set_count_microops(true);
    reload(program);
    const RunResult result = run(max_cycles);
    const std::uint64_t uops = backend_.microops_executed();
    backend_.set_count_microops(false);
    if (result.cycles == 0) return 0;
    return static_cast<double>(uops) / static_cast<double>(result.cycles);
  }

  ProcessorState& state() { return state_; }
  const Model& model() const { return *model_; }
  void set_observer(SimObserver* observer) {
    observer_ = observer;
    engine_.set_observer(observer);
  }
  void schedule_interrupt(std::uint64_t cycle, std::uint64_t target) {
    engine_.schedule_interrupt(cycle, target);
  }

 private:
  const Model* model_;
  ProcessorState state_;
  CachedInterpBackend backend_;
  PipelineEngine<CachedInterpBackend> engine_;
  ProgramGuard guard_;
  GuardPolicy guard_policy_ = GuardPolicy::kOff;
  SimObserver* observer_ = nullptr;
  SimCompileStats load_stats_;
};

}  // namespace lisasim
