// Decode-cached interpretive simulator: the partial compiled level of
// paper §3 that implements ONLY the first step (compile-time decoding).
// All instruction words are decoded once, up front, into a packet cache;
// operation sequencing (activation scheduling) and behavior evaluation
// still happen at run time on the unspecialized trees. Together with the
// other levels this completes the interpretive → fully-compiled spectrum:
//
//   interpretive        decode per fetch, sequence per cycle
//   decode-cached       decode once,      sequence per cycle   (this file)
//   compiled-dynamic    decode once,      sequence once
//   compiled-static     decode once,      sequence once, instantiate
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "behavior/eval.hpp"
#include "behavior/specialize.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/engine.hpp"
#include "sim/result.hpp"

namespace lisasim {

class CachedInterpBackend {
 public:
  struct CacheEntry {
    DecodedPacket packet;
    std::vector<std::pair<const DecodedNode*, int>> auto_ops;
    unsigned words = 1;
    bool valid = false;
    std::string error;
  };

  struct Work {
    const CacheEntry* entry = nullptr;
    // Run-time operation sequencing: FIFO activation queues per stage.
    std::vector<std::vector<const DecodedNode*>> sched;
  };

  CachedInterpBackend(const Model& model, ProcessorState& state)
      : model_(&model),
        state_(&state),
        depth_(model.pipeline.depth()),
        decoder_(model),
        eval_(state, control_) {}

  /// Pre-decode the whole program (the compile-time step of this level).
  void build_cache(const LoadedProgram& program);

  PipelineControl& control() { return control_; }
  void issue(std::uint64_t pc, Work& out, unsigned& words);
  void execute(Work& work, int stage);
  std::uint64_t slot_count(const Work& work) const {
    return work.entry && work.entry->valid ? work.entry->packet.slots.size()
                                           : 0;
  }

  const Decoder& decoder() const { return decoder_; }

 private:
  class Sink;

  const Model* model_;
  ProcessorState* state_;
  int depth_;
  Decoder decoder_;
  PipelineControl control_;
  Evaluator eval_;
  std::uint64_t cache_base_ = 0;
  std::vector<CacheEntry> cache_;
  CacheEntry out_of_range_;  // shared "PC outside program" entry
};

class CachedInterpSimulator {
 public:
  explicit CachedInterpSimulator(const Model& model)
      : model_(&model),
        state_(model),
        backend_(model, state_),
        engine_(model, state_, backend_) {}

  void load(const LoadedProgram& program) {
    backend_.build_cache(program);
    reload(program);
  }

  /// Reset state and pipeline without re-decoding (benchmark loops).
  void reload(const LoadedProgram& program) {
    state_.reset();
    engine_.reset();
    load_into_state(program, state_);
  }

  RunResult run(std::uint64_t max_cycles = UINT64_MAX) {
    return engine_.run(max_cycles);
  }

  ProcessorState& state() { return state_; }
  const Model& model() const { return *model_; }
  void set_observer(SimObserver* observer) { engine_.set_observer(observer); }
  void schedule_interrupt(std::uint64_t cycle, std::uint64_t target) {
    engine_.schedule_interrupt(cycle, target);
  }

 private:
  const Model* model_;
  ProcessorState state_;
  CachedInterpBackend backend_;
  PipelineEngine<CachedInterpBackend> engine_;
};

}  // namespace lisasim
