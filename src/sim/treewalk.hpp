// Tree-walk packet execution: decode at fetch from live program memory,
// then evaluate the unspecialized operation behaviors directly off the
// decode tree, routing ACTIVATION requests through per-stage FIFO queues.
//
// This is the interpretive simulator's execution mode, factored out of its
// backend so the guarded compiled levels can reuse it verbatim as the
// GuardPolicy::kFallback path for self-modified packets — the fallback is
// then the interpretive oracle by construction, not a re-implementation.
// The same factoring provides checkpoint support: the activation queues are
// the only in-flight packet state that cannot be re-derived from a PC, and
// they serialize structurally as decode-tree node paths.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "behavior/eval.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/checkpoint.hpp"

namespace lisasim {

/// In-flight state of one tree-walk packet.
struct TreeWalkWork {
  DecodedPacket packet;
  // Tree-order auto-run operations with their effective stages.
  std::vector<std::pair<const DecodedNode*, int>> auto_ops;
  // FIFO activation queues per stage.
  std::vector<std::vector<const DecodedNode*>> sched;
  // Fetches of undecodable words (wrong-path prefetch past a branch or
  // HALT) are deferred: the error is raised only if the packet survives
  // to retirement un-squashed.
  std::string error;
};

/// Run-time decode of the packet at `pc` from the live fetch memory —
/// re-done on every fetch of the same address, which is precisely the work
/// compiled simulation eliminates. `depth` is the pipeline depth (sizes the
/// activation queues).
void treewalk_issue(const Decoder& decoder, const Model& model,
                    const ProcessorState& state, std::uint64_t pc, int depth,
                    TreeWalkWork& out, unsigned& words);

/// Execute stage `stage` of a tree-walk packet: auto-run operations in
/// tree order first, then queued activations in FIFO order. A deferred
/// decode error becomes fatal when the packet retires (stage == depth-1).
void treewalk_execute(Evaluator& eval, TreeWalkWork& work, int stage,
                      int depth);

/// Serialize the dynamic part of a tree-walk packet for a checkpoint:
/// the deferred error and the activation queues as structural node paths
/// (slot index, then child-slot indices root-to-node).
void treewalk_save(const TreeWalkWork& work, WorkSnapshot& out);

/// Rebuild a tree-walk packet from a checkpoint: re-decode at `pc` from
/// the restored memory, then resolve the saved queue paths against the
/// fresh decode tree. Throws a fatal SimError if the packet no longer
/// decodes to a tree the paths resolve in (program memory changed between
/// the in-flight fetch and the checkpoint — see sim/checkpoint.hpp).
void treewalk_restore(const Decoder& decoder, const Model& model,
                      const ProcessorState& state, std::uint64_t pc, int depth,
                      const WorkSnapshot& snapshot, TreeWalkWork& out);

}  // namespace lisasim
