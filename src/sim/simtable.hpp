// The simulation table (paper Fig. 1): one row per program location, one
// column per pipeline stage, holding the pre-decoded, pre-sequenced (and,
// at the static level, micro-op-instantiated) operations that drive the
// simulator's transition function.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "behavior/microops.hpp"
#include "behavior/specialize.hpp"
#include "model/model.hpp"
#include "sim/result.hpp"

namespace lisasim {

struct SimTableEntry {
  // Dynamic-scheduling level: specialized statement programs per stage.
  PacketSchedule schedule;
  // Static-scheduling level: the same programs lowered to micro-ops.
  std::vector<MicroProgram> micro;
  unsigned words = 0;       // fetch words the packet consumes
  unsigned slot_count = 0;  // instructions in the packet
  std::uint32_t work_mask = 0;  // bit s set <=> stage s has work
  // Rows that do not decode (data words in the text region) are kept but
  // poisoned: executing onto them raises the same error the interpretive
  // simulator would raise.
  bool valid = true;
  std::string error;
};

class SimTable {
 public:
  SimTable() = default;
  SimTable(std::uint64_t base, std::vector<SimTableEntry> entries)
      : base_(base), entries_(std::move(entries)) {}

  const SimTableEntry& at(std::uint64_t pc) const {
    if (const SimTableEntry* entry = find(pc)) return *entry;
    throw SimError("program counter " + std::to_string(pc) +
                   " outside the compiled program");
  }

  /// Non-throwing lookup: nullptr when `pc` is outside the table. The hot
  /// fetch path uses this — wrong-path prefetch beyond the program happens
  /// every taken branch near the text end and must not cost an exception.
  const SimTableEntry* find(std::uint64_t pc) const noexcept {
    if (pc < base_ || pc - base_ >= entries_.size()) return nullptr;
    return &entries_[pc - base_];
  }

  std::uint64_t base() const { return base_; }
  std::size_t size() const { return entries_.size(); }

  /// Total micro-operations across all rows (bench reporting).
  std::size_t total_microops() const {
    std::size_t total = 0;
    for (const auto& e : entries_)
      for (const auto& p : e.micro) total += p.ops.size();
    return total;
  }

 private:
  std::uint64_t base_ = 0;
  std::vector<SimTableEntry> entries_;
};

}  // namespace lisasim
