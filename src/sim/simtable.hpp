// The simulation table (paper Fig. 1): one row per program location, one
// column per pipeline stage, holding the pre-decoded, pre-sequenced (and,
// at the static level, micro-op-instantiated) operations that drive the
// simulator's transition function. Micro-programs are not stored per row:
// every row's per-stage program is a (offset, len, num_temps) span into one
// shared MicroArena, so the static level executes out of a single flat
// buffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "behavior/microarena.hpp"
#include "behavior/specialize.hpp"
#include "model/model.hpp"
#include "sim/result.hpp"

namespace lisasim {

struct SimTableEntry {
  // Dynamic-scheduling level: specialized statement programs per stage.
  PacketSchedule schedule;
  // Static-scheduling level: the same programs lowered to micro-ops,
  // packed into the table's MicroArena; one span per pipeline stage.
  std::vector<MicroSpan> micro;
  unsigned words = 0;       // fetch words the packet consumes
  unsigned slot_count = 0;  // instructions in the packet
  std::uint32_t work_mask = 0;  // bit s set <=> stage s has work
  // Rows that do not decode (data words in the text region) are kept but
  // poisoned: executing onto them raises the same error the interpretive
  // simulator would raise.
  bool valid = true;
  std::string error;
};

class SimTable {
 public:
  SimTable() = default;
  SimTable(std::uint64_t base, std::vector<SimTableEntry> entries,
           MicroArena arena)
      : base_(base), entries_(std::move(entries)), arena_(std::move(arena)) {}

  const SimTableEntry& at(std::uint64_t pc) const {
    if (const SimTableEntry* entry = find(pc)) return *entry;
    throw SimError("program counter " + std::to_string(pc) +
                   " outside the compiled program");
  }

  /// Non-throwing lookup: nullptr when `pc` is outside the table. The hot
  /// fetch path uses this — wrong-path prefetch beyond the program happens
  /// every taken branch near the text end and must not cost an exception.
  const SimTableEntry* find(std::uint64_t pc) const noexcept {
    if (pc < base_ || pc - base_ >= entries_.size()) return nullptr;
    return &entries_[pc - base_];
  }

  std::uint64_t base() const { return base_; }
  std::size_t size() const { return entries_.size(); }

  /// The packed micro-op buffer every row's spans point into.
  const MicroArena& arena() const { return arena_; }

  /// Largest scratch any span needs; backends size their temp buffer once.
  std::int32_t max_temps() const { return arena_.max_temps(); }

  /// Total micro-operations across all rows (bench reporting).
  std::size_t total_microops() const { return arena_.size(); }

  /// Deterministic full serialization of the table contents: every row,
  /// every per-stage specialized program and micro-program — including each
  /// span's arena placement, so the signature pins the packed layout, not
  /// just the op sequences. Two tables are identical iff their signatures
  /// compare equal — this is how the tests pin the parallel compiler's
  /// merge invariant (any thread count, same bytes).
  std::string signature() const {
    std::string out = "base=" + std::to_string(base_) +
                      " rows=" + std::to_string(entries_.size()) +
                      " arena=" + std::to_string(arena_.size()) +
                      " pool=" + std::to_string(arena_.pool_size()) +
                      " opsize=" + std::to_string(sizeof(MicroOp)) +
                      " max_temps=" + std::to_string(arena_.max_temps()) +
                      "\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const SimTableEntry& e = entries_[i];
      out += "[" + std::to_string(i) + "] words=" + std::to_string(e.words) +
             " slots=" + std::to_string(e.slot_count) +
             " mask=" + std::to_string(e.work_mask) +
             " valid=" + (e.valid ? "1" : "0");
      if (!e.valid) out += " error=" + e.error;
      out += "\n";
      for (std::size_t s = 0; s < e.schedule.stage_programs.size(); ++s) {
        const SpecProgram& p = e.schedule.stage_programs[s];
        if (p.empty()) continue;
        out += " stage " + std::to_string(s) +
               " locals=" + std::to_string(p.num_locals) + "\n";
        for (const StmtPtr& stmt : p.stmts) out += stmt->to_string(2);
      }
      for (std::size_t s = 0; s < e.micro.size(); ++s) {
        const MicroSpan& span = e.micro[s];
        if (span.empty()) continue;
        out += " micro " + std::to_string(s) +
               " temps=" + std::to_string(span.num_temps) + " span=[" +
               std::to_string(span.offset) + "," +
               std::to_string(span.offset + span.len) + ")\n" +
               microops_to_string(arena_.data() + span.offset, span.len,
                                  arena_.pool_data());
      }
    }
    return out;
  }

 private:
  std::uint64_t base_ = 0;
  std::vector<SimTableEntry> entries_;
  MicroArena arena_;
};

}  // namespace lisasim
