// Batched lockstep execution: N instances of one compiled program advance
// cycle-by-cycle against lane-interleaved structure-of-arrays state.
//
// Parameter sweeps, regression farms and fuzzing all run the *same*
// simulation table over different stimuli; a BatchedSimulator pays the
// translation once and replicates only the cheap part — ProcessorState and
// pipeline slots — N-wide. Element storage for all lanes lives in one
// shared buffer laid out lane-innermost (element p of lane l at
// soa[p * N + l]; see ProcessorState::bind_lanes), so when every lane of a
// pipeline stage sits on the same table row the whole group executes its
// micro-op span through exec_microops_lanes: one dispatch per micro-op for
// the group, lanes looped in the innermost position over contiguous
// storage, where the compiler auto-vectorizes the flat 16-byte encoding.
//
// Lanes are architecturally independent — they share the immutable table,
// never state — so any grouping schedule is bit-identical, per lane, to N
// sequential CompiledSimulator runs (the batched differential pins this).
// Lanes whose pipelines diverge (different PCs, guard-patched packets,
// deferred fetch errors) simply execute solo through the ordinary backend
// until their rows coincide again; branch divergence *inside* one shared
// micro-program is handled by exec_microops_lanes' mask-and-split.
//
// Guard stamps are checked once per batch step: a lane whose guard saw no
// program-memory writes fetches through a shared table find(); dirty lanes
// take the per-lane guarded issue path (recompile or tree-walk fallback,
// identical to the sequential simulator). RunLimits apply per lane — a
// watchdog expiry retires just that lane with a recoverable error while
// the rest of the batch keeps running — and checkpoints save/restore
// individual lanes in the standard EngineCheckpoint format.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "behavior/microops.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/checkpoint.hpp"
#include "sim/compiled.hpp"
#include "sim/guard.hpp"
#include "sim/result.hpp"
#include "sim/simcompiler.hpp"
#include "sim/simtable.hpp"

namespace lisasim {

class BatchedSimulator {
 public:
  /// A batch of `lanes` (1..kMaxBatchLanes) lockstep instances. N = 1 is
  /// the degenerate batch: stride-1 lane views compile down to the exact
  /// unbatched state layout, and every group is a singleton executing
  /// through the ordinary backend dispatch.
  BatchedSimulator(const Model& model, unsigned lanes);

  /// Sharded-build worker count for load()-time compilation (1 =
  /// sequential, 0 = hardware threads); table contents are identical at
  /// any setting.
  void set_threads(unsigned threads) { compile_options_.threads = threads; }

  /// Self-modifying-code policy for every lane; takes effect at the next
  /// (re)load. Each lane guards its own program image (SMC is per lane),
  /// but all clean lanes share the one compiled table.
  void set_guard_policy(GuardPolicy policy) { guard_policy_ = policy; }
  GuardPolicy guard_policy() const { return guard_policy_; }

  /// Compile `program` once (static level) and load it into every lane.
  SimCompileStats load(const LoadedProgram& program);

  /// Load every lane from a pre-built shared table (benches and table
  /// sharing across batches).
  void load_precompiled(const LoadedProgram& program,
                        std::shared_ptr<const SimTable> table);

  /// Reset all lanes and reload the program against the current table
  /// without recompiling (benchmark loops).
  void reload(const LoadedProgram& program);

  /// Step every live lane until it halts, errors, or reaches the soft
  /// max_cycles limit; watchdog limits retire individual lanes with a
  /// recoverable error instead of throwing. Callable repeatedly: lanes
  /// stopped at max_cycles resume, retired lanes stay retired. Per-lane
  /// outcomes land in lane_run().
  void run(const RunLimits& limits);
  void run(std::uint64_t max_cycles = UINT64_MAX) {
    RunLimits limits;
    limits.max_cycles = max_cycles;
    run(limits);
  }

  unsigned lanes() const { return lanes_; }
  const Model& model() const { return *model_; }
  std::shared_ptr<const SimTable> table_ptr() const { return table_; }

  /// Lane `l`'s architectural state (a view into the shared SoA buffer).
  /// Callers fan stimuli across the batch by writing per-lane inputs here
  /// after load and before run.
  ProcessorState& lane_state(unsigned lane) { return states_[lane]; }
  const ProcessorState& lane_state(unsigned lane) const {
    return states_[lane];
  }

  const LaneRun& lane_run(unsigned lane) const { return lanes_d_[lane].run; }
  const GuardStats& lane_guard_stats(unsigned lane) const {
    return backends_[lane]->guard_stats();
  }

  /// True once every lane has retired (halted or errored).
  bool all_done() const;

  /// Snapshot lane `l` at the current batch-step boundary. The result is
  /// format-compatible with a sequential CompiledSimulator checkpoint of
  /// the same model: the lane view gathers into flat storage.
  EngineCheckpoint save_lane_checkpoint(unsigned lane) const;

  /// Restore lane `l` (its guard, if armed, conservatively re-stales every
  /// translation, exactly like the sequential simulator's restore). The
  /// lane's retirement status is untouched — use the BatchCheckpoint forms
  /// to round-trip a partially retired batch.
  void restore_lane_checkpoint(unsigned lane, const EngineCheckpoint& cp);

  BatchCheckpoint save_checkpoint() const;
  void restore_checkpoint(const BatchCheckpoint& cp);

 private:
  // Mirror of PipelineEngine's slot: stable payload pointers into the
  // lane's work pool, swapped on advancement.
  struct Slot {
    CompiledBackend::Work* work = nullptr;
    std::uint64_t pc = 0;
    bool valid = false;
    bool executed = false;
    int stall = 0;
  };

  struct Lane {
    std::vector<Slot> slots;                         // one per stage
    std::vector<CompiledBackend::Work> work_pool;    // slot payloads
    LaneRun run;
    std::uint64_t total_cycles = 0;  // absolute, for watchdog context
    std::uint64_t stuck = 0;         // consecutive cycles without retirement
  };

  void attach_table_and_load(const LoadedProgram& program);
  void step(std::uint64_t active, const RunLimits& limits);
  void fail_lane(unsigned lane, const SimError& error);
  void retire_watchdog(unsigned lane, std::string message);

  const Model* model_;
  unsigned lanes_;
  int depth_;
  Decoder decoder_;
  SimulationCompiler compiler_;
  std::vector<ProcessorState> states_;  // lane views into soa_
  std::size_t total_elements_ = 0;      // per-lane flat element count
  std::vector<std::int64_t> soa_;       // element p, lane l at [p*N + l]
  std::vector<std::int64_t> lane_temps_;  // SoA micro-op scratch (stride N)
  std::vector<std::unique_ptr<ProgramGuard>> guards_;
  std::vector<std::unique_ptr<CompiledBackend>> backends_;
  std::vector<Lane> lanes_d_;
  // Lane-indexed pointer arrays handed to exec_microops_lanes.
  std::vector<ProcessorState*> state_ptrs_;
  std::vector<PipelineControl*> control_ptrs_;
  std::vector<std::optional<SimError>> faults_;
  std::shared_ptr<const SimTable> table_;
  SimCompileOptions compile_options_;
  GuardPolicy guard_policy_ = GuardPolicy::kOff;
};

}  // namespace lisasim
