#include "sim/trace.hpp"

#include <algorithm>

#include "behavior/peephole.hpp"
#include "sim/native.hpp"

namespace lisasim {

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  h ^= value;
  h *= 1099511628211ull;
}

}  // namespace

std::uint64_t trace_table_fingerprint(const SimTable& table) {
  std::uint64_t h = 14695981039346656037ull;
  fnv_mix(h, table.base());
  fnv_mix(h, table.size());
  const MicroArena& arena = table.arena();
  fnv_mix(h, arena.size());
  fnv_mix(h, static_cast<std::uint64_t>(arena.max_temps()));
  const MicroOp* ops = arena.data();
  for (std::size_t i = 0; i < arena.size(); ++i) {
    const MicroOp& op = ops[i];
    fnv_mix(h, static_cast<std::uint64_t>(op.kind));
    fnv_mix(h, static_cast<std::uint64_t>(op.sub));
    fnv_mix(h, static_cast<std::uint64_t>(op.a));
    fnv_mix(h, static_cast<std::uint64_t>(op.b));
    fnv_mix(h, static_cast<std::uint64_t>(op.c));
    fnv_mix(h, static_cast<std::uint64_t>(op.res));
    fnv_mix(h, static_cast<std::uint64_t>(op.imm));
  }
  fnv_mix(h, arena.pool_size());
  for (std::size_t i = 0; i < arena.pool_size(); ++i)
    fnv_mix(h, static_cast<std::uint64_t>(arena.pool_data()[i]));
  for (std::uint64_t pc = table.base(); pc < table.base() + table.size();
       ++pc) {
    const SimTableEntry* row = table.find(pc);
    fnv_mix(h, row->words);
    fnv_mix(h, row->slot_count);
    fnv_mix(h, row->work_mask);
    fnv_mix(h, row->valid ? 1 : 0);
    for (const MicroSpan& span : row->micro) {
      fnv_mix(h, span.offset);
      fnv_mix(h, span.len);
      fnv_mix(h, static_cast<std::uint64_t>(span.num_temps));
    }
  }
  return h;
}

TraceRuntime::TraceRuntime(const Model& model, ProcessorState& state)
    : model_(&model), state_(&state), depth_(model.pipeline.depth()) {}

void TraceRuntime::set_program(const SimTable* table) {
  table_ = table;
  set_ = TraceSet{};
  set_.depth = depth_;
  set_.fingerprint = table ? trace_table_fingerprint(*table) : 0;
  base_ = table ? table->base() : 0;
  heat_.assign(table ? table->size() : 0, 0);
  temps_.clear();
}

bool TraceRuntime::adopt(const std::shared_ptr<const TraceSet>& snapshot) {
  if (!snapshot || table_ == nullptr) return false;
  if (snapshot->fingerprint != set_.fingerprint ||
      snapshot->depth != depth_)
    return false;
  set_ = *snapshot;
  temps_.assign(static_cast<std::size_t>(set_.arena.max_temps()), 0);
  // The snapshot exists because these keys were hot; skip the re-warmup.
  std::fill(heat_.begin(), heat_.end(), cfg_.hot_threshold);
  for (const Trace& trace : set_.traces)
    if (!trace.dead) ++stats_.adopted;
  return true;
}

std::shared_ptr<const TraceSet> TraceRuntime::snapshot() const {
  bool any_live = false;
  for (const Trace& trace : set_.traces) any_live |= !trace.dead;
  if (!any_live) return nullptr;
  return std::make_shared<const TraceSet>(set_);
}

TraceRuntime::SpanScan TraceRuntime::scan_span(const MicroOp* ops,
                                               std::uint32_t len) const {
  SpanScan scan;
  const std::int64_t* pool = table_->arena().pool_data();
  bool has_branch = false;
  for (std::uint32_t i = 0; i < len; ++i)
    has_branch |= mo_is_branch(ops[i].kind);
  for (std::uint32_t i = 0; i < len && !scan.bad; ++i) {
    const MicroOp& op = ops[i];
    switch (op.kind) {
      case MKind::kFlush:
      case MKind::kHalt:
        scan.bad = true;
        break;
      case MKind::kStall: {
        // A stall is statically replayable only when its amount is a
        // plain constant on a straight-line path (which is what NOP-style
        // stalls look like after specialization folds their immediate).
        if (has_branch) {
          scan.bad = true;
          break;
        }
        bool found = false;
        for (std::uint32_t j = i; j-- > 0;) {
          const MicroOp& def = ops[j];
          if (mo_def_of(def) != op.a) continue;
          if (def.kind == MKind::kConst) {
            scan.stall += def.imm;
            found = true;
          } else if (def.kind == MKind::kConstPool) {
            scan.stall += pool[def.imm];
            found = true;
          }
          break;
        }
        if (!found) scan.bad = true;
        break;
      }
      default:
        if (mo_writes_res(op.kind)) {
          if (op.res == model_->fetch_memory) scan.bad = true;
          if (op.res == model_->pc) scan.writes_pc = true;
        }
        break;
    }
  }
  return scan;
}

bool TraceRuntime::row_traceable(const SimTableEntry& row) const {
  if (!row.valid) return false;
  if (row.micro.size() < static_cast<std::size_t>(depth_)) return false;
  const MicroOp* arena = table_->arena().data();
  for (int stage = 0; stage < depth_; ++stage) {
    if ((row.work_mask >> stage & 1u) == 0) continue;
    const MicroSpan& span = row.micro[static_cast<std::size_t>(stage)];
    if (scan_span(arena + span.offset, span.len).bad) return false;
  }
  return true;
}

void TraceRuntime::emit_span(const MicroOp* ops, std::uint32_t len,
                             MicroProgram& out, int& temp_base,
                             int span_temps) const {
  const auto base = static_cast<std::int32_t>(out.ops.size());
  const std::int64_t* pool = table_->arena().pool_data();
  for (std::uint32_t i = 0; i < len; ++i) {
    MicroOp op = ops[i];
    if (op.kind == MKind::kStall) {
      // Statically applied to the virtual pipeline; spans holding one
      // are branch-free, so dropping it cannot skew branch targets.
      continue;
    }
    // Rebase every temp operand into the trace's flat temp space; branch
    // targets move with the span, pool loads re-intern their value into
    // the fused program's pool (the table's pool is not carried along).
    mo_for_each_temp_field(op, [&](std::int16_t& field) {
      field = static_cast<std::int16_t>(field + temp_base);
    });
    if (mo_is_branch(op.kind)) op.imm += base;
    if (op.kind == MKind::kConstPool) op.imm = out.add_pool(pool[op.imm]);
    out.ops.push_back(op);
  }
  temp_base += span_temps;
}

std::int32_t TraceRuntime::find_or_build(const std::uint64_t* key) {
  const std::uint64_t hash = hash_key(key, depth_);
  const auto it = set_.index.find(hash);
  if (it != set_.index.end()) {
    if (it->second == kRejected) return kRejected;
    const Trace& trace = set_.traces[static_cast<std::size_t>(it->second)];
    if (!std::equal(trace.key.begin(), trace.key.end(), key))
      return kRejected;  // hash collision: leave the incumbent alone
    return it->second;
  }
  const std::int32_t idx = build(key);
  set_.index.emplace(hash, idx);
  if (idx == kRejected) {
    ++stats_.rejected;
  } else {
    ++stats_.formed;
    // The new body joins the next native compile round.
    if (native_ != nullptr) native_->note_trace_formed();
  }
  return idx;
}

std::int32_t TraceRuntime::build(const std::uint64_t* key) {
  if (set_.traces.size() >= cfg_.max_traces) return kRejected;

  Trace trace;
  trace.key.assign(key, key + depth_);

  // Reconstruct the entry boundary as virtual pipeline slots. Every
  // in-flight packet must be a clean, fully replayable table row — the
  // entry guard stamp then also proves the engine's in-flight Works are
  // plain table entries (no patches, fallbacks or deferred errors).
  std::vector<VSlot> slots(static_cast<std::size_t>(depth_));
  for (int s = 0; s < depth_; ++s) {
    if (key[s] == kNoPacket) continue;
    const SimTableEntry* row = table_->find(key[s]);
    if (row == nullptr || !row_traceable(*row)) return kRejected;
    if (guard_ && !guard_->span_clean(key[s], row->words)) return kRejected;
    slots[static_cast<std::size_t>(s)] = {key[s], row, true, false, 0};
    trace.covered.emplace_back(key[s], row->words);
  }
  if (!slots[0].valid) return kRejected;  // the engine always refills slot 0
  std::uint64_t vpc = key[0] + slots[0].row->words;
  trace.entry_pc_after_fetch = vpc;

  const MicroOp* arena = table_->arena().data();
  MicroProgram fused;
  int temp_base = 0;
  std::vector<std::uint8_t> retired;  // per committed cycle
  bool ended = false;

  while (!ended && trace.cycles < cfg_.max_trace_cycles) {
    // Temp operands are 16-bit: stop growing the trace before the spans
    // this cycle would emit (plus one fetch-PC temp) can overflow the flat
    // temp space. Ending here is a clean boundary, same as the cycle cap.
    std::int64_t cycle_temps = 1;
    for (int s = 0; s < depth_; ++s) {
      const VSlot& slot = slots[static_cast<std::size_t>(s)];
      if (slot.valid && !slot.executed && (slot.row->work_mask >> s & 1u))
        cycle_temps += slot.row->micro[static_cast<std::size_t>(s)].num_temps;
    }
    if (temp_base + cycle_temps > INT16_MAX) break;
    std::vector<VSlot> next = slots;
    std::uint64_t cycle_packets = 0, cycle_slots = 0;
    bool wrote_pc = false;
    // The engine's fused execute + advance sweep, replayed statically.
    for (int stage = depth_ - 1; stage >= 0; --stage) {
      VSlot& slot = next[static_cast<std::size_t>(stage)];
      if (!slot.valid) continue;
      if (!slot.executed) {
        if (slot.row->work_mask >> stage & 1u) {
          const MicroSpan& span =
              slot.row->micro[static_cast<std::size_t>(stage)];
          const SpanScan scan = scan_span(arena + span.offset, span.len);
          emit_span(arena + span.offset, span.len, fused, temp_base,
                    span.num_temps);
          if (scan.stall > 0) slot.stall += scan.stall;
          wrote_pc |= scan.writes_pc;
        }
        slot.executed = true;
      }
      if (slot.stall > 0) {
        --slot.stall;
        continue;
      }
      if (stage == depth_ - 1) {
        ++cycle_packets;
        cycle_slots += slot.row->slot_count;
        slot.valid = false;
        continue;
      }
      VSlot& up = next[static_cast<std::size_t>(stage + 1)];
      if (!up.valid) {
        up = slot;
        up.executed = false;
        up.stall = 0;
        slot.valid = false;
      }
    }
    if (wrote_pc) {
      // Branch cycle: the live PC decides the successor — stop before this
      // cycle's fetch and let the dispatcher fetch (or chain) at it.
      ended = true;
    } else if (!next[0].valid) {
      const SimTableEntry* row = table_->find(vpc);
      const bool fetchable =
          row != nullptr && row_traceable(*row) &&
          (guard_ == nullptr || guard_->span_clean(vpc, row->words));
      if (!fetchable) {
        ended = true;  // static knowledge ends at this fetch
      } else {
        next[0] = {vpc, row, true, false, 0};
        trace.covered.emplace_back(vpc, row->words);
        vpc += row->words;
        // Keep the architectural PC exact inside the trace: mirror the
        // engine's post-fetch set_pc so mid-trace PC reads and the value
        // at any side exit match the cycle-by-cycle run.
        const auto pc_value = static_cast<std::int64_t>(vpc);
        fused.ops.push_back(
            mo_imm_fits(pc_value)
                ? mo_const(temp_base, pc_value)
                : mo_pool(temp_base, fused.add_pool(pc_value)));
        fused.ops.push_back(mo_write_res(model_->pc, temp_base));
        ++temp_base;
        ++trace.fetches;
      }
    }
    // The cycle is committed either way: the sweep (and fetch, if any)
    // above happened exactly as the engine would have run it.
    slots = next;
    ++trace.cycles;
    trace.packets += cycle_packets;
    trace.slots += cycle_slots;
    retired.push_back(cycle_packets != 0);
  }

  if (trace.cycles < cfg_.min_trace_cycles) return kRejected;
  if (trace.packets == 0 && trace.fetches == 0) return kRejected;

  // Non-retirement runs for the livelock watchdog budget.
  std::uint64_t run = 0;
  bool saw_retire = false;
  for (std::size_t i = 0; i < retired.size(); ++i) {
    if (retired[i]) {
      saw_retire = true;
      run = 0;
      continue;
    }
    ++run;
    trace.max_nonretire = std::max(trace.max_nonretire, run);
    if (!saw_retire) trace.lead_nonretire = run;
  }
  trace.tail_nonretire = run;
  trace.any_retire = saw_retire;

  // Exit image + chain eligibility: chaining needs the exit to be a clean
  // boundary (advanced slots only — nothing stalled, nothing blocked).
  trace.image.resize(static_cast<std::size_t>(depth_));
  trace.needs_fetch = !slots[0].valid;
  trace.chainable = true;
  for (int s = 0; s < depth_; ++s) {
    const VSlot& slot = slots[static_cast<std::size_t>(s)];
    TraceExitSlot& image = trace.image[static_cast<std::size_t>(s)];
    image.pc = slot.pc;
    image.valid = slot.valid;
    image.executed = slot.executed;
    image.stall = static_cast<int>(slot.stall);
    if (slot.valid && (slot.executed || slot.stall != 0))
      trace.chainable = false;
  }

  fused.num_temps = temp_base;
  validate_microops(fused);
  // The headline optimization: the optimizer (const-fold, fusion,
  // register caching) now sees one straight-line program spanning every
  // former packet boundary of the trace.
  optimize_microops(fused, model_);
  trace.body = set_.arena.append(fused);
  trace.stamp = 0;
  if (guard_) {
    for (const auto& [pc, words] : trace.covered)
      trace.stamp += guard_->span_stamp(pc, words);
  }

  set_.traces.push_back(std::move(trace));
  temps_.assign(static_cast<std::size_t>(set_.arena.max_temps()), 0);
  return static_cast<std::int32_t>(set_.traces.size()) - 1;
}

bool TraceRuntime::fits_budget(const Trace& trace,
                               const TraceBudget& budget) const {
  if (trace.cycles > budget.cycles_remaining) return false;
  if (trace.cycles >= budget.watchdog_remaining) return false;
  if (trace.cycles >= budget.irq_remaining) return false;
  if (budget.max_stuck != 0) {
    if (!trace.any_retire) {
      if (budget.stuck + trace.cycles >= budget.max_stuck) return false;
    } else {
      if (budget.stuck + trace.lead_nonretire >= budget.max_stuck)
        return false;
      if (trace.max_nonretire >= budget.max_stuck) return false;
    }
  }
  return true;
}

void TraceRuntime::invalidate(std::int32_t idx) {
  Trace& trace = set_.traces[static_cast<std::size_t>(idx)];
  trace.dead = true;
  set_.index.erase(hash_key(trace.key.data(), depth_));
  ++stats_.invalidated;
}

bool TraceRuntime::try_run(const std::uint64_t* slot_pcs, int depth,
                           TraceBudget& budget, TraceExit& out) {
  if (table_ == nullptr || depth != depth_) return false;
  // Adopt any finished native compile round at this clean boundary (one
  // atomic load when nothing is pending).
  if (native_ != nullptr) native_->poll();
  // Hotness pre-filter: one array read on the freshly fetched head pc.
  const std::uint64_t head = slot_pcs[0] - base_;
  if (head >= heat_.size() || heat_[head] < cfg_.hot_threshold) return false;

  std::int32_t idx = find_or_build(slot_pcs);
  if (idx == kRejected) return false;
  const Trace* trace = &set_.traces[static_cast<std::size_t>(idx)];
  if (trace->dead) return false;
  if (state_->pc() != trace->entry_pc_after_fetch) return false;
  if (stale(*trace)) {
    invalidate(idx);
    return false;
  }
  if (!fits_budget(*trace, budget)) return false;

  for (;;) {
    // Native AOT dispatch: every entry check above (staleness, budget,
    // entry pc) already passed, so a compiled region is a drop-in for the
    // micro-op execution of the same body; a stand-down (hooks, strides,
    // region not yet compiled) falls through with no side effects.
    const MicroOp* ops = set_.arena.data() + trace->body.offset;
    if (count_microops_) {
      microops_executed_ +=
          exec_microops_counted(ops, trace->body.len, set_.arena.pool_data(),
                                *state_, control_, temps_.data());
    } else if (native_ == nullptr ||
               !native_->run_trace_body(trace->body.offset,
                                        trace->body.len)) {
      exec_microops(ops, trace->body.len, set_.arena.pool_data(), *state_,
                    control_, temps_.data());
    }
    ++stats_.entries;
    stats_.trace_cycles += trace->cycles;
    out.cycles += trace->cycles;
    out.fetches += trace->fetches;
    out.packets += trace->packets;
    out.slots += trace->slots;
    budget.cycles_remaining -= trace->cycles;
    if (budget.watchdog_remaining != UINT64_MAX)
      budget.watchdog_remaining -= trace->cycles;
    if (budget.irq_remaining != UINT64_MAX)
      budget.irq_remaining -= trace->cycles;
    budget.stuck = trace->any_retire ? trace->tail_nonretire
                                     : budget.stuck + trace->cycles;

    if (!trace->chainable) break;
    // Build the successor's entry key from the exit image; a pre-fetch
    // exit keys on the *live* PC, which is how taken and not-taken
    // branches chain to different successors.
    std::uint64_t chain_key[kMaxDepth];
    std::uint64_t chain_pc;
    if (trace->needs_fetch) {
      chain_pc = state_->pc();
      chain_key[0] = chain_pc;
      for (int s = 1; s < depth_; ++s)
        chain_key[s] = trace->image[static_cast<std::size_t>(s)].valid
                           ? trace->image[static_cast<std::size_t>(s)].pc
                           : kNoPacket;
    } else {
      chain_pc = trace->image[0].pc;
      for (int s = 0; s < depth_; ++s)
        chain_key[s] = trace->image[static_cast<std::size_t>(s)].valid
                           ? trace->image[static_cast<std::size_t>(s)].pc
                           : kNoPacket;
    }
    std::int32_t next = kRejected;
    const std::size_t way_idx = chain_pc & 1;
    if (trace->chain[way_idx].first == chain_pc) {
      next = trace->chain[way_idx].second;
    } else {
      // find_or_build may grow set_.traces and reallocate it out from
      // under `trace`; re-resolve through the index before touching it.
      next = find_or_build(chain_key);
      trace = &set_.traces[static_cast<std::size_t>(idx)];
      trace->chain[way_idx] = {chain_pc, next};
    }
    if (next == kRejected) break;
    const Trace* successor = &set_.traces[static_cast<std::size_t>(next)];
    if (successor->dead) break;
    if (!std::equal(successor->key.begin(), successor->key.end(), chain_key))
      break;  // chain-cache way reused across a different image (paranoia)
    // A no-fetch boundary keys on already-fetched slots only, which does
    // not pin the live PC (a predecessor branch may have redirected it);
    // the successor's replay assumed the sequential value, so verify it.
    if (!trace->needs_fetch &&
        state_->pc() != successor->entry_pc_after_fetch)
      break;
    if (stale(*successor)) {
      invalidate(next);
      break;
    }
    if (!fits_budget(*successor, budget)) break;
    if (trace->needs_fetch) {
      // The chained entry absorbs this cycle's fetch: count it and place
      // the PC where the engine's post-fetch increment would have.
      ++out.fetches;
      state_->set_pc(successor->entry_pc_after_fetch);
    }
    ++stats_.chained;
    trace = successor;
    idx = next;
  }

  ++stats_.side_exits;
  out.image = &trace->image;
  out.needs_fetch = trace->needs_fetch;
  return true;
}

}  // namespace lisasim
