// Run statistics shared by all simulator levels.
#pragma once

#include <cstdint>

namespace lisasim {

/// The simulation levels evaluated by the benchmarks (paper §3):
/// fully interpretive (the sim62x-class baseline), compiled with dynamic
/// scheduling (the paper's implemented system: compile-time decoding +
/// operation sequencing), compiled with static scheduling / operation
/// instantiation (micro-op lowered, the paper's future-work third step),
/// and the profile-guided trace tier on top of static scheduling that
/// splices hot cross-packet micro-op superblocks (the loop-unfolding
/// direction of §3, taken across instruction boundaries).
enum class SimLevel : std::uint8_t {
  kInterpretive,
  kDecodeCached,  // compile-time decoding only (partial compiled level)
  kCompiledDynamic,
  kCompiledStatic,
  kTrace,  // static tables + hot-trace superblock dispatch
  kNative,  // trace tier + dlopen'd AOT-compiled straight-line regions
};

inline const char* sim_level_name(SimLevel level) {
  switch (level) {
    case SimLevel::kInterpretive: return "interpretive";
    case SimLevel::kDecodeCached: return "decode-cached";
    case SimLevel::kCompiledDynamic: return "compiled-dynamic";
    case SimLevel::kCompiledStatic: return "compiled-static";
    case SimLevel::kTrace: return "compiled-trace";
    case SimLevel::kNative: return "compiled-native";
  }
  return "?";
}

struct RunResult {
  std::uint64_t cycles = 0;
  std::uint64_t packets_retired = 0;  // execute packets leaving the pipeline
  std::uint64_t slots_retired = 0;    // instructions (packet slots) retired
  std::uint64_t fetches = 0;          // packets entering the pipeline
  bool halted = false;                // halt() executed

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

}  // namespace lisasim
