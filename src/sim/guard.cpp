#include "sim/guard.hpp"

#include "behavior/microops.hpp"
#include "behavior/peephole.hpp"
#include "behavior/specialize.hpp"

namespace lisasim {

const char* guard_policy_name(GuardPolicy policy) {
  switch (policy) {
    case GuardPolicy::kOff: return "off";
    case GuardPolicy::kRecompile: return "recompile";
    case GuardPolicy::kFallback: return "fallback";
  }
  return "?";
}

std::shared_ptr<const PatchedPacket> compile_packet_from_state(
    const Model& model, const Decoder& decoder, const Specializer& specializer,
    const ProcessorState& state, std::uint64_t pc, bool lower_microops,
    const ProgramGuard& guard) {
  auto patch = std::make_shared<PatchedPacket>();
  SimTableEntry& entry = patch->entry;
  try {
    const DecodedPacket packet =
        decoder.decode_packet(state.array_view(model.fetch_memory), pc);
    entry.words = packet.words;
    entry.slot_count = static_cast<unsigned>(packet.slots.size());
    entry.schedule = specializer.schedule_packet(packet);
    for (std::size_t s = 0; s < entry.schedule.stage_programs.size(); ++s) {
      if (!entry.schedule.stage_programs[s].empty())
        entry.work_mask |= std::uint32_t{1} << s;
    }
    if (lower_microops) {
      entry.micro.resize(entry.schedule.stage_programs.size());
      for (std::size_t s = 0; s < entry.schedule.stage_programs.size(); ++s) {
        MicroProgram micro = lower_to_microops(entry.schedule.stage_programs[s]);
        optimize_microops(micro, &model);
        entry.micro[s] = patch->arena.append(micro);
      }
    }
  } catch (const SimError& e) {
    entry.valid = false;
    entry.error = e.what();
    entry.words = 1;
  }
  // Stamp over what the packet actually consumed (poisoned entries cover
  // one word): a later write to any covered word changes the stamp and
  // forces a fresh translation.
  patch->stamp_words = entry.words > 0 ? entry.words : 1;
  patch->stamp = guard.span_stamp(pc, patch->stamp_words);
  return patch;
}

}  // namespace lisasim
