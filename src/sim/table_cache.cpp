#include "sim/table_cache.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <vector>

#include "model/database.hpp"

namespace lisasim {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

inline void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  fnv_bytes(h, &v, sizeof v);
}

inline void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Canonical artifact filename for a key (the filename is the index).
std::string artifact_name(const std::string& target, std::uint64_t model_hash,
                          std::uint64_t program_hash,
                          std::uint64_t content_hash) {
  return "native-" + target + "-m" + hex16(model_hash) + "-p" +
         hex16(program_hash) + "-c" + hex16(content_hash) + ".so";
}

bool is_artifact_name(const std::string& name) {
  return name.rfind("native-", 0) == 0 && name.size() > 3 &&
         name.compare(name.size() - 3, 3, ".so") == 0;
}

}  // namespace

SimTableCache::SimTableCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::uint64_t SimTableCache::hash_program(const LoadedProgram& program) {
  std::uint64_t h = kFnvOffset;
  fnv_str(h, program.name);
  fnv_u64(h, program.text_base);
  fnv_u64(h, program.entry);
  fnv_u64(h, program.words.size());
  fnv_bytes(h, program.words.data(),
            program.words.size() * sizeof(std::uint64_t));
  fnv_u64(h, program.symbols.size());
  for (const auto& [name, value] : program.symbols) {
    fnv_str(h, name);
    fnv_u64(h, static_cast<std::uint64_t>(value));
  }
  fnv_u64(h, program.data.size());
  for (const DataSegment& segment : program.data) {
    fnv_str(h, segment.memory);
    fnv_u64(h, segment.base);
    fnv_u64(h, segment.values.size());
    fnv_bytes(h, segment.values.data(),
              segment.values.size() * sizeof(std::int64_t));
  }
  return h;
}

std::uint64_t SimTableCache::hash_model(const Model& model) {
  std::uint64_t h = kFnvOffset;
  fnv_str(h, model.name);
  fnv_str(h, dump_model(model));
  return h;
}

std::uint64_t SimTableCache::fingerprint_table(const SimTable& table) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, table.base());
  fnv_u64(h, table.size());
  const MicroArena& arena = table.arena();
  fnv_u64(h, arena.size());
  fnv_u64(h, arena.pool_size());
  fnv_u64(h, static_cast<std::uint64_t>(arena.max_temps()));
  for (std::uint64_t pc = table.base(); pc < table.base() + table.size();
       ++pc) {
    const SimTableEntry& entry = *table.find(pc);
    fnv_u64(h, entry.words);
    fnv_u64(h, entry.slot_count);
    fnv_u64(h, entry.work_mask);
    fnv_u64(h, entry.valid ? 1 : 0);
    for (const MicroSpan& span : entry.micro) {
      fnv_u64(h, span.offset);
      fnv_u64(h, span.len);
    }
  }
  // A bounded sample of the packed micro-op bytes themselves: a bit flip
  // in an op near either end is caught without an O(arena) walk per hit.
  const std::size_t sample =
      std::min<std::size_t>(arena.size(), 64);
  fnv_bytes(h, arena.data(), sample * sizeof(MicroOp));
  if (arena.size() > sample)
    fnv_bytes(h, arena.data() + (arena.size() - sample),
              sample * sizeof(MicroOp));
  return h;
}

std::uint64_t SimTableCache::model_hash_for(const Model& model) {
  // Called with mutex_ held. The dump walks the whole model, so memoize
  // per instance; cached models must not mutate (they never do after
  // sema). The name cross-check catches address reuse by a different
  // model (see the ModelHashMemo comment in the header).
  auto it = model_hashes_.find(&model);
  if (it != model_hashes_.end() && it->second.name == model.name)
    return it->second.hash;
  const std::uint64_t h = hash_model(model);
  model_hashes_[&model] = ModelHashMemo{model.name, h};
  return h;
}

std::size_t SimTableCache::KeyHash::operator()(
    const TableCacheKey& key) const {
  std::uint64_t h = kFnvOffset;
  fnv_str(h, key.target);
  fnv_u64(h, key.model_hash);
  fnv_u64(h, key.program_hash);
  fnv_u64(h, static_cast<std::uint64_t>(key.level));
  return static_cast<std::size_t>(h);
}

std::shared_ptr<const SimTable> SimTableCache::get_or_compile(
    SimulationCompiler& compiler, const Model& model,
    const LoadedProgram& program, SimLevel level, SimCompileStats* stats,
    const SimCompileOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  TableCacheKey key;
  key.target = model.name;
  key.program_hash = hash_program(program);
  key.level = level;

  std::unique_lock<std::mutex> lock(mutex_);
  key.model_hash = model_hash_for(model);
  for (;;) {
    auto it = map_.find(key);
    if (it != map_.end() &&
        fingerprint_table(*it->second->table) != it->second->fingerprint) {
      // The stored table no longer matches the fingerprint taken at insert
      // (bit rot, or an injected cache-corrupt fault): never serve it.
      // Dropping the entry falls through to the miss path, which
      // recompiles and re-inserts a clean copy.
      ++stats_.corruptions;
      lru_.erase(it->second);
      map_.erase(it);
      it = map_.end();
    }
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      std::shared_ptr<const SimTable> table = it->second->table;
      if (stats) {
        *stats = it->second->compile_stats;
        stats->decode_calls = 0;
        stats->threads_used = 0;
        stats->cache_hit = true;
        stats->cache_hits = stats_.hits;
        stats->cache_misses = stats_.misses;
        stats->cache_evictions = stats_.evictions;
        stats->artifact_hits = stats_.artifact_hits;
        stats->artifact_misses = stats_.artifact_misses;
        stats->artifact_evictions = stats_.artifact_evictions;
        stats->compile_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
      }
      return table;
    }
    // Single-flight election: if another thread is already compiling this
    // key, wait for it to publish and take the hit path above on wake-up
    // (or inherit the election if its compile threw). Without this, K
    // concurrent sessions of one program would run K identical compiles.
    if (in_flight_.find(key) == in_flight_.end()) break;  // we compile
    ++stats_.coalesced;
    compile_done_.wait(lock);
  }
  ++stats_.misses;
  in_flight_.emplace(key, 1u);
  lock.unlock();

  // Compile outside the lock: a long build must not serialize unrelated
  // lookups (and the compiler may itself fan out onto the pool).
  SimCompileStats compile_stats;
  std::shared_ptr<const SimTable> table;
  try {
    table = std::make_shared<const SimTable>(
        compiler.compile(program, level, &compile_stats, options));
  } catch (...) {
    // Stand down the election so a waiter can retry, then rethrow to this
    // caller only (compile faults are per-simulator budget events).
    lock.lock();
    in_flight_.erase(key);
    lock.unlock();
    compile_done_.notify_all();
    throw;
  }

  lock.lock();
  in_flight_.erase(key);
  auto it = map_.find(key);
  if (it == map_.end()) {
    lru_.push_front(
        Entry{key, table, compile_stats, fingerprint_table(*table)});
    map_.emplace(key, lru_.begin());
    while (map_.size() > capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
  } else {
    // Belt and braces (an entry can appear between our miss and insert
    // only through external invalidate()+recompile interleavings): keep
    // the installed table so every caller converges on one object.
    lru_.splice(lru_.begin(), lru_, it->second);
    table = it->second->table;
  }
  compile_stats.cache_hits = stats_.hits;
  compile_stats.cache_misses = stats_.misses;
  compile_stats.cache_evictions = stats_.evictions;
  compile_stats.artifact_hits = stats_.artifact_hits;
  compile_stats.artifact_misses = stats_.artifact_misses;
  compile_stats.artifact_evictions = stats_.artifact_evictions;
  lock.unlock();
  compile_done_.notify_all();
  if (stats) *stats = compile_stats;
  return table;
}

void SimTableCache::store_traces(const Model& model,
                                 std::uint64_t program_hash,
                                 std::shared_ptr<const TraceSet> traces) {
  if (!traces) return;
  std::lock_guard<std::mutex> lock(mutex_);
  TableCacheKey key;
  key.target = model.name;
  key.model_hash = model_hash_for(model);
  key.program_hash = program_hash;
  key.level = SimLevel::kTrace;
  traces_[key] = std::move(traces);
}

std::shared_ptr<const TraceSet> SimTableCache::load_traces(
    const Model& model, const LoadedProgram& program) {
  std::lock_guard<std::mutex> lock(mutex_);
  TableCacheKey key;
  key.target = model.name;
  key.model_hash = model_hash_for(model);
  key.program_hash = hash_program(program);
  key.level = SimLevel::kTrace;
  const auto it = traces_.find(key);
  return it == traces_.end() ? nullptr : it->second;
}

void SimTableCache::set_artifact_dir(const std::string& dir,
                                     std::uint64_t max_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  artifact_dir_ = dir;
  artifact_max_bytes_ = max_bytes == 0 ? 1 : max_bytes;
  if (artifact_dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(artifact_dir_, ec);
  if (ec) {
    artifact_dir_.clear();  // unusable directory: run without disk artifacts
    return;
  }
  enforce_artifact_cap_locked();
}

std::string SimTableCache::artifact_dir() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return artifact_dir_;
}

std::string SimTableCache::find_artifact(const std::string& target,
                                         std::uint64_t model_hash,
                                         std::uint64_t program_hash,
                                         std::uint64_t content_hash) {
  namespace fs = std::filesystem;
  std::lock_guard<std::mutex> lock(mutex_);
  if (artifact_dir_.empty()) return {};
  const fs::path path =
      fs::path(artifact_dir_) /
      artifact_name(target, model_hash, program_hash, content_hash);
  std::error_code ec;
  if (!fs::is_regular_file(path, ec)) {
    ++stats_.artifact_misses;
    return {};
  }
  // Touch so the byte cap's LRU-by-mtime keeps warm programs longest.
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  ++stats_.artifact_hits;
  return path.string();
}

std::string SimTableCache::publish_artifact(const std::string& target,
                                            std::uint64_t model_hash,
                                            std::uint64_t program_hash,
                                            std::uint64_t content_hash,
                                            const std::string& tmp_so_path) {
  namespace fs = std::filesystem;
  std::lock_guard<std::mutex> lock(mutex_);
  if (artifact_dir_.empty()) return {};
  const std::string name =
      artifact_name(target, model_hash, program_hash, content_hash);
  const fs::path path = fs::path(artifact_dir_) / name;
  std::error_code ec;
  // rename is atomic within the filesystem (the compile wrote its tmp file
  // into this directory); racing publishers of the same key both win.
  fs::rename(tmp_so_path, path, ec);
  if (ec) {
    ec.clear();
    fs::copy_file(tmp_so_path, path, fs::copy_options::overwrite_existing,
                  ec);
    if (ec) return {};
    fs::remove(tmp_so_path, ec);
  }
  enforce_artifact_cap_locked(name);
  return path.string();
}

void SimTableCache::enforce_artifact_cap_locked(const std::string& keep) {
  namespace fs = std::filesystem;
  struct File {
    fs::path path;
    fs::file_time_type mtime;
    std::uintmax_t size = 0;
  };
  std::error_code ec;
  std::vector<File> files;
  std::uintmax_t total = 0;
  for (const auto& entry : fs::directory_iterator(artifact_dir_, ec)) {
    if (!is_artifact_name(entry.path().filename().string())) continue;
    std::error_code fec;
    const std::uintmax_t size = entry.file_size(fec);
    if (fec) continue;
    const fs::file_time_type mtime = fs::last_write_time(entry.path(), fec);
    if (fec) continue;
    total += size;
    files.push_back({entry.path(), mtime, size});
  }
  if (total <= artifact_max_bytes_) return;
  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.mtime < b.mtime; });
  for (const File& file : files) {
    if (total <= artifact_max_bytes_) break;
    if (!keep.empty() && file.path.filename().string() == keep) continue;
    std::error_code rec;
    if (fs::remove(file.path, rec)) {
      total -= file.size;
      ++stats_.artifact_evictions;
    }
  }
}

std::size_t SimTableCache::remove_artifacts_locked(const std::string& token) {
  namespace fs = std::filesystem;
  if (artifact_dir_.empty()) return 0;
  std::error_code ec;
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(artifact_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!is_artifact_name(name)) continue;
    if (!token.empty() && name.find(token) == std::string::npos) continue;
    std::error_code rec;
    if (fs::remove(entry.path(), rec)) ++removed;
  }
  return removed;
}

std::size_t SimTableCache::invalidate(std::uint64_t program_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  // On-disk native artifacts of the program go with its tables: they were
  // compiled from the same (now stale) translation.
  dropped += remove_artifacts_locked("-p" + hex16(program_hash));
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.program_hash == program_hash) {
      map_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  // Trace snapshots describe the dropped tables' micro layout: a program
  // that invalidated its translations invalidates its traces with them.
  for (auto it = traces_.begin(); it != traces_.end();) {
    if (it->first.program_hash == program_hash) {
      it = traces_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

SimTableCache::Stats SimTableCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.entries = map_.size();
  return s;
}

void SimTableCache::debug_corrupt() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : lru_) entry.fingerprint = ~entry.fingerprint;
}

void SimTableCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
  traces_.clear();
  model_hashes_.clear();
  remove_artifacts_locked({});  // every native-*.so; the directory stays
  stats_ = Stats{};
}

}  // namespace lisasim
