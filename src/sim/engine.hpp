// The generic cycle-driven pipeline engine, shared by the interpretive and
// the compiled simulators. A Backend supplies how an execute packet is
// obtained at a program counter (decode vs. simulation-table lookup) and
// how its per-stage operations are executed (tree walk vs. pre-specialized
// programs); the engine owns the timing semantics, which therefore cannot
// diverge between simulation levels:
//
//  * one in-flight packet per pipeline stage, in-order;
//  * each cycle, occupied stages execute oldest-first (this realizes the
//    transition-function ordering of paper Fig. 3: values written by older
//    instructions are visible to younger ones in the same cycle, which is
//    also what makes scalar pipeline-register resources race-free);
//  * a packet executes a stage's operations once, on entering the stage;
//  * stall(n) holds the packet (and everything younger) n extra cycles;
//  * flush() squashes all younger in-flight packets;
//  * the fetch stage refills after the execute phase, so a PC written this
//    cycle redirects this cycle's fetch (delay-slot count = pipeline depth
//    from fetch to the writing stage minus one... exposed, as on the C6x);
//  * halt() ends the simulation at the end of the current cycle.
//
// Backend requirements:
//   struct Work;                        // per-packet payload
//   PipelineControl& control();
//   void issue(std::uint64_t pc, Work& out, unsigned& words);
//   void execute(Work& work, int stage);
//   std::uint64_t slot_count(const Work& work) const;
//
// Backends that support checkpointing additionally provide (only required
// when save_checkpoint/restore_checkpoint are instantiated):
//   void save_work(const Work&, WorkSnapshot&) const;
//   void restore_work(std::uint64_t pc, const WorkSnapshot&, Work&);
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "behavior/eval.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/checkpoint.hpp"
#include "sim/observer.hpp"
#include "sim/result.hpp"
#include "sim/trace.hpp"

namespace lisasim {

template <typename Backend>
class PipelineEngine {
 public:
  PipelineEngine(const Model& model, ProcessorState& state, Backend& backend)
      : depth_(model.pipeline.depth()), state_(&state), backend_(&backend) {
    slots_.resize(static_cast<std::size_t>(depth_));
    // Payloads live in a fixed pool and slots hold stable pointers into
    // it: advancing a packet swaps two pointers instead of move-assigning
    // a Work (which can carry shared_ptr pins) once per stage per cycle.
    work_pool_.resize(static_cast<std::size_t>(depth_));
    for (int i = 0; i < depth_; ++i)
      slots_[static_cast<std::size_t>(i)].work =
          &work_pool_[static_cast<std::size_t>(i)];
  }

  /// Attach a trace/profile observer (nullptr detaches). Observer events
  /// are engine-level, so traces are comparable across simulation levels.
  void set_observer(SimObserver* observer) { observer_ = observer; }

  /// Schedule an external control hazard (interrupt/exception injection,
  /// paper §4.3): at the end of cycle `cycle` every in-flight packet is
  /// squashed and fetch redirects to `target`. Imprecise semantics: stages
  /// already executed keep their effects. Engine-level, so injection is
  /// identical at every simulation level. Cycles are counted from the next
  /// run() start when the pipeline is empty, i.e. absolute simulation time.
  void schedule_interrupt(std::uint64_t cycle, std::uint64_t target) {
    interrupts_.push_back({cycle, target});
    // Keep sorted by cycle (stable for equal cycles: first scheduled wins).
    std::stable_sort(interrupts_.begin(), interrupts_.end(),
                     [](const Interrupt& a, const Interrupt& b) {
                       return a.cycle < b.cycle;
                     });
  }

  /// Identify the simulation level for error context (diagnostics only —
  /// the engine's semantics are level-independent by construction).
  void set_level(SimLevel level) { level_ctx_ = static_cast<int>(level); }

  /// Attach the hot-trace tier (nullptr detaches). When attached, the run
  /// loop first offers each cycle boundary to the runtime, which may
  /// replay many pre-verified cycles in one micro-op dispatch; the engine
  /// then resumes from the trace's exit image. The runtime only accepts a
  /// boundary when the outcome is provably identical to stepping, so
  /// attaching it never changes RunResult or architectural state.
  void set_trace_runtime(TraceRuntime* traces) { traces_ = traces; }

  /// Run until halt() or `max_cycles`. Can be called repeatedly; pipeline
  /// contents persist between calls.
  RunResult run(std::uint64_t max_cycles) {
    RunLimits limits;
    limits.max_cycles = max_cycles;
    return run(limits);
  }

  /// Run under guarded-execution limits. `max_cycles` returns normally;
  /// the watchdog limits throw a *recoverable* SimError with pc/cycle
  /// context at a completed-cycle boundary — the pipeline stays
  /// consistent, so the caller may raise the limit and run() again, or
  /// restore an earlier checkpoint.
  RunResult run(const RunLimits& limits) {
    // The observer hooks pepper the innermost sweep; compiling an
    // observer-free instantiation keeps the common (unobserved) cycle
    // loop free of their branches.
    return observer_ != nullptr ? run_impl<true>(limits)
                                : run_impl<false>(limits);
  }

 private:
  template <bool kObserved>
  RunResult run_impl(const RunLimits& limits) {
    RunResult result;
    PipelineControl& control = backend_->control();
    bool halted = false;
    std::uint64_t stuck = 0;  // consecutive cycles without a retirement

    // Event-driven clearing: the sweep clears control only after an
    // execute actually raised something, so control.any() below is exact.
    control.clear();
    while (result.cycles < limits.max_cycles) {
      // ---- hot-trace dispatch (cycle boundaries only) --------------------
      // Observers need per-cycle events, so the trace tier stands down
      // while one is attached (execution stays identical either way).
      if constexpr (!kObserved) {
        if (traces_ != nullptr && try_trace(result, limits, stuck)) {
          continue;
        }
      }
      const std::uint64_t retired_before = result.packets_retired;
      // ---- fused execute + advance sweep, oldest first -------------------
      // Processing stages downward keeps the transition-function ordering
      // (older packets' writes are visible to younger ones in the same
      // cycle) while letting each packet advance as soon as it executed:
      // the slot above was already processed, so it is free exactly when
      // an in-order pipeline would free it.
      for (int stage = depth_ - 1; stage >= 0; --stage) {
        Slot& slot = slots_[static_cast<std::size_t>(stage)];
        if (!slot.valid) continue;
        if (!slot.executed) {
          backend_->execute(*slot.work, stage);
          slot.executed = true;
          if constexpr (kObserved)
            observer_->on_execute(result.cycles + 1, stage, slot.pc);
          if (control.any()) [[unlikely]] {
            if (control.stall_cycles > 0) slot.stall += control.stall_cycles;
            if (control.flush) {
              for (int k = 0; k < stage; ++k)
                slots_[static_cast<std::size_t>(k)].valid = false;
              if constexpr (kObserved)
                observer_->on_flush(result.cycles + 1, stage);
            }
            if (control.halt) halted = true;
            control.clear();
          }
        }
        if (halted) continue;  // no advancement in the halting cycle
        if (slot.stall > 0) {
          --slot.stall;
          continue;
        }
        if (stage == depth_ - 1) {
          ++result.packets_retired;
          result.slots_retired += backend_->slot_count(*slot.work);
          if constexpr (kObserved)
            observer_->on_retire(result.cycles + 1, slot.pc);
          slot.valid = false;
          continue;
        }
        Slot& next = slots_[static_cast<std::size_t>(stage + 1)];
        if (!next.valid) {
          typename Backend::Work* const free_work = next.work;
          next.work = slot.work;
          slot.work = free_work;
          next.pc = slot.pc;
          next.valid = true;
          next.executed = false;
          next.stall = 0;
          slot.valid = false;
        }
        // Otherwise blocked by an older stalled packet: stay put.
      }
      ++result.cycles;
      ++total_cycles_;
      if (halted) {
        result.halted = true;
        break;
      }

      // ---- external control hazards (interrupt injection) ----------------
      if (!interrupts_.empty() &&
          interrupts_.front().cycle <= total_cycles_) {
        const Interrupt irq = interrupts_.front();
        interrupts_.erase(interrupts_.begin());
        for (auto& slot : slots_) slot.valid = false;
        state_->set_pc(irq.target);
        if constexpr (kObserved) observer_->on_flush(total_cycles_, depth_);
      }

      // ---- fetch ---------------------------------------------------------
      fetch_head(result);

      // ---- watchdog limits -----------------------------------------------
      // Checked after the fetch phase so the throw happens at the same
      // clean cycle boundary where run() returns and checkpoints are taken:
      // a caught watchdog error leaves the engine resumable.
      if (result.packets_retired == retired_before) {
        ++stuck;
      } else {
        stuck = 0;
      }
      if (limits.watchdog_cycles != 0 &&
          result.cycles >= limits.watchdog_cycles) {
        throw_limit("watchdog: cycle limit " +
                    std::to_string(limits.watchdog_cycles) +
                    " exceeded without the program halting");
      }
      if (limits.max_stuck_cycles != 0 && stuck >= limits.max_stuck_cycles) {
        throw_limit("watchdog: " + std::to_string(stuck) +
                    " consecutive cycles without a retiring packet "
                    "(livelocked or deadlocked pipeline)");
      }
    }
    return result;
  }

 public:

  /// Snapshot the engine + processor state at a cycle boundary (i.e. while
  /// run() is not executing). See sim/checkpoint.hpp for what is captured.
  EngineCheckpoint save_checkpoint() const {
    EngineCheckpoint cp;
    cp.state = state_->save_storage();
    cp.total_cycles = total_cycles_;
    cp.interrupts.reserve(interrupts_.size());
    for (const Interrupt& irq : interrupts_)
      cp.interrupts.push_back({irq.cycle, irq.target});
    cp.slots.resize(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      EngineCheckpoint::SlotImage& image = cp.slots[i];
      image.pc = slot.pc;
      image.stall = slot.stall;
      image.valid = slot.valid;
      image.executed = slot.executed;
      if (slot.valid) backend_->save_work(*slot.work, image.work);
    }
    return cp;
  }

  /// Restore a snapshot taken with save_checkpoint(). `after_state` runs
  /// after the processor state is restored but before in-flight packets
  /// are rebuilt — guarded simulators use it to re-stale their translation
  /// tables (restore rewinds memory without architectural writes, so the
  /// guard would not notice otherwise).
  void restore_checkpoint(const EngineCheckpoint& cp,
                          const std::function<void()>& after_state = {}) {
    if (cp.slots.size() != slots_.size())
      throw SimError("checkpoint has " + std::to_string(cp.slots.size()) +
                     " pipeline slots, engine has " +
                     std::to_string(slots_.size()) +
                     " (checkpoint from a different model?)");
    state_->restore_storage(cp.state);
    if (after_state) after_state();
    total_cycles_ = cp.total_cycles;
    interrupts_.clear();
    for (const auto& [cycle, target] : cp.interrupts)
      interrupts_.push_back({cycle, target});
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      const EngineCheckpoint::SlotImage& image = cp.slots[i];
      slot.pc = image.pc;
      slot.stall = image.stall;
      slot.valid = image.valid;
      slot.executed = image.executed;
      if (image.valid) {
        backend_->restore_work(image.pc, image.work, *slot.work);
      } else {
        *slot.work = {};
      }
    }
  }

  /// Drop all in-flight packets, cancel pending interrupts and restart
  /// simulation time (used between benchmark repetitions and program
  /// loads). Interrupts are anchored to absolute simulation time, so one
  /// scheduled before a reset must not fire into the next repetition.
  void reset() {
    for (auto& slot : slots_) slot.valid = false;
    interrupts_.clear();
    total_cycles_ = 0;
  }

 private:
  struct Slot {
    typename Backend::Work* work = nullptr;  // into work_pool_, never null
    std::uint64_t pc = 0;
    bool valid = false;
    bool executed = false;
    int stall = 0;
  };

  struct Interrupt {
    std::uint64_t cycle = 0;
    std::uint64_t target = 0;
  };

  /// Refill the fetch stage if it is free: the engine's fetch phase, also
  /// used to perform a pre-fetch trace exit's pending fetch. Feeds the
  /// trace tier's hotness counters — fetch frequency is the profile.
  void fetch_head(RunResult& result) {
    Slot& head = slots_[0];
    if (head.valid) return;
    const std::uint64_t pc = state_->pc();
    unsigned words = 0;
    backend_->issue(pc, *head.work, words);
    head.valid = true;
    head.executed = false;
    head.stall = 0;
    head.pc = pc;
    state_->set_pc(pc + words);
    ++result.fetches;
    if (traces_ != nullptr) traces_->note_fetch(pc);
    if (observer_) observer_->on_fetch(result.cycles, pc);
  }

  /// Offer the current cycle boundary to the trace runtime. Preconditions
  /// for a boundary the runtime can reason about statically: every valid
  /// slot is un-executed with no pending stall (i.e. all in-flight packets
  /// sit exactly at a stage entry). On success the engine state is rolled
  /// forward wholesale: counters advance by the trace's totals, in-flight
  /// slots are rebuilt from the exit image by re-issuing their (verified
  /// clean) packets, and the exit cycle's pending fetch is performed.
  bool try_trace(RunResult& result, const RunLimits& limits,
                 std::uint64_t& stuck) {
    if (depth_ > TraceRuntime::kMaxDepth) return false;
    const Slot& head = slots_[0];
    if (!head.valid || head.executed || head.stall != 0) return false;
    std::uint64_t pcs[TraceRuntime::kMaxDepth];
    for (int stage = 0; stage < depth_; ++stage) {
      const Slot& slot = slots_[static_cast<std::size_t>(stage)];
      if (!slot.valid) {
        pcs[stage] = TraceRuntime::kNoPacket;
        continue;
      }
      if (slot.executed || slot.stall != 0) return false;
      pcs[stage] = slot.pc;
    }
    TraceBudget budget;
    budget.cycles_remaining = limits.max_cycles - result.cycles;
    if (limits.watchdog_cycles != 0)
      budget.watchdog_remaining = limits.watchdog_cycles - result.cycles;
    if (!interrupts_.empty())
      budget.irq_remaining = interrupts_.front().cycle - total_cycles_;
    budget.max_stuck = limits.max_stuck_cycles;
    budget.stuck = stuck;
    TraceExit exit;
    if (!traces_->try_run(pcs, depth_, budget, exit)) return false;
    result.cycles += exit.cycles;
    total_cycles_ += exit.cycles;
    result.fetches += exit.fetches;
    result.packets_retired += exit.packets;
    result.slots_retired += exit.slots;
    stuck = budget.stuck;
    for (int stage = 0; stage < depth_; ++stage) {
      Slot& slot = slots_[static_cast<std::size_t>(stage)];
      const TraceExitSlot& image =
          (*exit.image)[static_cast<std::size_t>(stage)];
      slot.valid = image.valid;
      if (!image.valid) continue;
      slot.pc = image.pc;
      slot.executed = image.executed;
      slot.stall = image.stall;
      unsigned words = 0;
      backend_->issue(image.pc, *slot.work, words);
    }
    if (exit.needs_fetch) fetch_head(result);
    return true;
  }

  [[noreturn]] void throw_limit(std::string message) const {
    SimErrorContext context;
    context.pc = state_->pc();
    context.has_pc = true;
    context.cycle = total_cycles_;
    context.has_cycle = true;
    context.level = level_ctx_;
    message += " (pc " + std::to_string(context.pc) + ", cycle " +
               std::to_string(context.cycle);
    if (level_ctx_ >= 0)
      message += ", level " +
                 std::string(sim_level_name(static_cast<SimLevel>(level_ctx_)));
    message += ")";
    throw SimError(message, SimErrorKind::kRecoverable, std::move(context));
  }

  int depth_;
  ProcessorState* state_;
  Backend* backend_;
  SimObserver* observer_ = nullptr;
  TraceRuntime* traces_ = nullptr;
  std::vector<Slot> slots_;
  std::vector<typename Backend::Work> work_pool_;  // slot payload storage
  std::vector<Interrupt> interrupts_;
  std::uint64_t total_cycles_ = 0;
  int level_ctx_ = -1;  // SimLevel for error context, -1 = unset
};

}  // namespace lisasim
