#include "sim/simcompiler.hpp"

#include <span>

#include "behavior/specialize.hpp"

namespace lisasim {

SimTable SimulationCompiler::compile(const LoadedProgram& program,
                                     SimLevel level,
                                     SimCompileStats* stats) const {
  if (level == SimLevel::kInterpretive || level == SimLevel::kDecodeCached)
    throw SimError("only the compiled levels have a simulation table");

  Specializer specializer(*model_);
  // decode_packet reads element-typed memory; present the program words as
  // int64 elements the way they will sit in the fetch memory.
  std::vector<std::int64_t> words(program.words.begin(), program.words.end());

  std::vector<SimTableEntry> entries;
  entries.reserve(words.size());
  std::size_t instructions = 0;

  for (std::uint64_t index = 0; index < words.size(); ++index) {
    SimTableEntry entry;
    try {
      DecodedPacket packet = decoder_->decode_packet(words, index);
      entry.words = packet.words;
      entry.slot_count = static_cast<unsigned>(packet.slots.size());
      entry.schedule = specializer.schedule_packet(packet);
      for (std::size_t s = 0; s < entry.schedule.stage_programs.size(); ++s) {
        if (!entry.schedule.stage_programs[s].empty())
          entry.work_mask |= std::uint32_t{1} << s;
      }
      if (level == SimLevel::kCompiledStatic) {
        entry.micro.resize(entry.schedule.stage_programs.size());
        for (std::size_t s = 0; s < entry.schedule.stage_programs.size(); ++s)
          entry.micro[s] =
              lower_to_microops(entry.schedule.stage_programs[s]);
      }
      instructions += entry.slot_count;
    } catch (const SimError& e) {
      entry.valid = false;
      entry.error = e.what();
    }
    entries.push_back(std::move(entry));
  }

  if (stats) {
    stats->instructions = instructions;
    stats->table_rows = entries.size();
    stats->microops = 0;
    for (const auto& e : entries)
      for (const auto& p : e.micro) stats->microops += p.ops.size();
  }
  return SimTable(program.text_base, std::move(entries));
}

}  // namespace lisasim
