#include "sim/simcompiler.hpp"

#include <chrono>
#include <span>

#include "behavior/peephole.hpp"
#include "behavior/specialize.hpp"
#include "support/thread_pool.hpp"

namespace lisasim {

SimulationCompiler::SimulationCompiler(const Model& model,
                                       const Decoder& decoder)
    : model_(&model), decoder_(&decoder) {}

SimulationCompiler::~SimulationCompiler() = default;

void SimulationCompiler::compile_range(const std::vector<std::int64_t>& words,
                                       SimLevel level, std::size_t begin,
                                       std::size_t end,
                                       std::vector<SimTableEntry>& entries,
                                       MicroArena& arena,
                                       std::size_t& instructions) const {
  // One specializer per shard: schedule_packet is a pure function of the
  // (immutable) model and the decoded packet, so shards never share
  // mutable state.
  Specializer specializer(*model_);
  for (std::size_t index = begin; index < end; ++index) {
    SimTableEntry& entry = entries[index];
    try {
      DecodedPacket packet = decoder_->decode_packet(words, index);
      entry.words = packet.words;
      entry.slot_count = static_cast<unsigned>(packet.slots.size());
      entry.schedule = specializer.schedule_packet(packet);
      for (std::size_t s = 0; s < entry.schedule.stage_programs.size(); ++s) {
        if (!entry.schedule.stage_programs[s].empty())
          entry.work_mask |= std::uint32_t{1} << s;
      }
      if (level == SimLevel::kCompiledStatic) {
        entry.micro.resize(entry.schedule.stage_programs.size());
        for (std::size_t s = 0; s < entry.schedule.stage_programs.size();
             ++s) {
          MicroProgram micro =
              lower_to_microops(entry.schedule.stage_programs[s]);
          optimize_microops(micro, model_);
          entry.micro[s] = arena.append(micro);
        }
      }
      instructions += entry.slot_count;
    } catch (const SimError& e) {
      entry.valid = false;
      entry.error = e.what();
    }
  }
}

SimTable SimulationCompiler::compile(const LoadedProgram& program,
                                     SimLevel level, SimCompileStats* stats,
                                     const SimCompileOptions& options) {
  if (level == SimLevel::kInterpretive || level == SimLevel::kDecodeCached)
    throw SimError("only the compiled levels have a simulation table");

  // Injected compile-shard failure: fail before any translation work so a
  // caller retrying the load sees either the full error or the full table.
  if (options.fault_budget && options.fault_budget->load() > 0) {
    options.fault_budget->fetch_sub(1);
    SimErrorContext context;
    context.resource = "simulation-compiler";
    throw SimError("injected compile-shard failure (budget remaining " +
                       std::to_string(options.fault_budget->load()) + ")",
                   SimErrorKind::kRecoverable, std::move(context));
  }

  const auto start = std::chrono::steady_clock::now();
  const unsigned threads =
      options.threads == 0 ? ThreadPool::hardware_threads() : options.threads;

  // decode_packet reads element-typed memory; present the program words as
  // int64 elements the way they will sit in the fetch memory.
  std::vector<std::int64_t> words(program.words.begin(), program.words.end());
  std::vector<SimTableEntry> entries(words.size());
  MicroArena arena;

  std::size_t instructions = 0;
  if (threads <= 1 || words.size() < 2) {
    compile_range(words, level, 0, words.size(), entries, arena,
                  instructions);
  } else {
    if (!pool_ || pool_->size() != threads)
      pool_ = std::make_unique<ThreadPool>(threads);
    // Each shard owns entries[begin, end) and appends its micro-programs to
    // its own arena: disjoint writes, no locking. Splicing the shard arenas
    // in shard order and rebasing each shard's span offsets reproduces the
    // sequential build's arena byte for byte (shards are contiguous and
    // ordered), so signature() is identical at any thread count.
    std::vector<std::size_t> shard_instructions(threads, 0);
    std::vector<MicroArena> shard_arenas(threads);
    std::vector<std::pair<std::size_t, std::size_t>> shard_rows(
        threads, {0, 0});
    parallel_shards(*pool_, words.size(), threads, [&](const Shard& shard) {
      shard_rows[shard.index] = {shard.begin, shard.end};
      compile_range(words, level, shard.begin, shard.end, entries,
                    shard_arenas[shard.index],
                    shard_instructions[shard.index]);
    });
    for (unsigned s = 0; s < threads; ++s) {
      const std::uint32_t base = arena.splice(shard_arenas[s]);
      for (std::size_t row = shard_rows[s].first; row < shard_rows[s].second;
           ++row) {
        for (MicroSpan& span : entries[row].micro) span.offset += base;
      }
      instructions += shard_instructions[s];
    }
  }

  if (stats) {
    stats->instructions = instructions;
    stats->table_rows = entries.size();
    stats->decode_calls = entries.size();
    stats->threads_used = threads;
    stats->cache_hit = false;
    stats->microops = arena.size();
    stats->compile_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return SimTable(program.text_base, std::move(entries), std::move(arena));
}

}  // namespace lisasim
