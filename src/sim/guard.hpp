// Write guards for compiled simulation (self-modifying-code detection).
//
// Compiled simulation is sound only while program memory is immutable: the
// simulation table, the decode cache and every lazily lowered micro-program
// were derived from the instruction words at translation time (paper §3 —
// the a-priori knowledge the technique exploits). A program that writes its
// own text (overlay loaders, patched inner loops, bootloaders) invalidates
// that knowledge, and an unguarded compiled simulator silently keeps
// executing the stale translation while the interpretive simulator — which
// decodes from live memory on every fetch — follows the new code.
//
// The guard closes that soundness hole with a MemoryHook over the whole
// fetch memory: every architectural write to program memory bumps a
// per-word generation counter. Backends stamp each translated packet with
// the sum of the generations its words had at translation time; at issue
// they compare. Generations only grow, so stamp equality <=> no covered
// word was written since translation. A clean program pays one branch per
// fetch (`writes() == 0`), which is what keeps the guard inside the ≤2%
// overhead budget.
//
// On a stale packet the backend either re-translates it in place
// (GuardPolicy::kRecompile — a micro-recompile of just that packet from
// live memory) or executes it through the interpretive tree-walk path
// (GuardPolicy::kFallback). Both happen at issue time, exactly where the
// interpretive simulator decodes, so RunResult and final state stay
// bit-identical to the interpretive oracle at every level.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "behavior/microarena.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/result.hpp"
#include "sim/simtable.hpp"

namespace lisasim {

class Specializer;

/// What a guarded backend does when it fetches a packet whose words were
/// written since translation.
enum class GuardPolicy : std::uint8_t {
  kOff,        // no guard: stale translations execute silently (fastest)
  kRecompile,  // re-decode/re-sequence/re-lower the packet in place
  kFallback,   // execute the packet through the interpretive tree walk
};

const char* guard_policy_name(GuardPolicy policy);

/// Guarded-execution counters (per backend, reset at load).
struct GuardStats {
  std::uint64_t stale_issues = 0;  // fetches that hit a stale translation
  std::uint64_t recompiles = 0;    // packets re-translated in place
  std::uint64_t fallbacks = 0;     // packets executed via tree walk
};

/// The write guard itself: a MemoryHook spanning the whole fetch memory
/// with one generation counter per word.
class ProgramGuard final : public MemoryHook {
 public:
  ~ProgramGuard() override { detach(); }

  /// Map this guard over all of `state`'s fetch memory. Re-attaching to
  /// the same state is idempotent. The guard must outlive the mapping (it
  /// unmaps itself on destruction).
  void attach(ProcessorState& state) {
    detach();
    const Model& model = state.model();
    if (model.fetch_memory < 0)
      throw SimError("model has no fetch memory to guard");
    state_ = &state;
    resource_ = model.fetch_memory;
    gen_.assign(state.size_of(resource_), 0);
    writes_ = 0;
    state.map_hook(resource_, 0, state.size_of(resource_), this);
  }

  void detach() {
    if (state_) state_->unmap_hook(this);
    state_ = nullptr;
  }

  bool attached() const { return state_ != nullptr; }

  /// Re-baseline: current memory content becomes generation 0 everywhere.
  /// Called after load_into_state (loading writes the text through the
  /// hook, which must not look like self-modification).
  void reset() {
    gen_.assign(gen_.size(), 0);
    writes_ = 0;
  }

  /// Conservatively mark every word written. Used after checkpoint
  /// restore: generations are monotonic but restore_storage rewinds the
  /// memory content, so a patched packet's stamp could otherwise falsely
  /// match bytes it was not translated from.
  void bump_all() {
    for (std::uint32_t& g : gen_) ++g;
    ++writes_;
  }

  /// Total guarded program-memory writes observed since reset(). The hot
  /// fast path: zero means no translation anywhere can be stale.
  std::uint64_t writes() const { return writes_; }

  /// True iff no word of [pc, pc+words) was ever written. Out-of-range
  /// words are clean by definition (nothing was translated from them).
  bool span_clean(std::uint64_t pc, unsigned words) const {
    for (unsigned w = 0; w < words; ++w) {
      const std::uint64_t index = pc + w;
      if (index < gen_.size() && gen_[index] != 0) return false;
    }
    return true;
  }

  /// Monotonic stamp of [pc, pc+words): the sum of the word generations.
  /// Equal stamps <=> no covered write happened in between.
  std::uint64_t span_stamp(std::uint64_t pc, unsigned words) const {
    std::uint64_t stamp = 0;
    for (unsigned w = 0; w < words; ++w) {
      const std::uint64_t index = pc + w;
      if (index < gen_.size()) stamp += gen_[index];
    }
    return stamp;
  }

  void on_write(std::uint64_t index, std::int64_t /*value*/) override {
    if (index < gen_.size()) ++gen_[index];
    ++writes_;
  }

 private:
  ProcessorState* state_ = nullptr;
  ResourceId resource_ = -1;
  std::vector<std::uint32_t> gen_;  // one generation counter per word
  std::uint64_t writes_ = 0;
};

/// One re-translated packet, produced when a guarded backend hits a stale
/// translation under GuardPolicy::kRecompile. Self-contained: the entry's
/// micro spans point into the packet's own arena, and backends hand
/// shared_ptrs to in-flight Work so a packet that is re-translated *again*
/// never mutates under an older in-flight fetch (matching the interpretive
/// simulator's decode-at-fetch snapshot semantics).
struct PatchedPacket {
  SimTableEntry entry;
  MicroArena arena;
  std::uint64_t stamp = 0;       // guard span_stamp at translation time
  unsigned stamp_words = 1;      // words the stamp covers (>= entry.words)
};

/// Translate the packet at `pc` from *live* state memory — the per-row
/// recipe of the simulation compiler (decode, sequence, and for the
/// static/cached levels lower to micro-ops), applied to one packet. Decode
/// failures poison the entry exactly like an invalid simulation-table row
/// (deferred error, fatal at retirement). `lower_microops` selects the
/// micro-op instantiation step (static & decode-cached levels).
std::shared_ptr<const PatchedPacket> compile_packet_from_state(
    const Model& model, const Decoder& decoder, const Specializer& specializer,
    const ProcessorState& state, std::uint64_t pc, bool lower_microops,
    const ProgramGuard& guard);

}  // namespace lisasim
