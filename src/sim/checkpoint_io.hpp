// Text serialization of EngineCheckpoint, the piece that makes repro
// bundles self-contained: a checkpoint written by the differential fuzzer
// in one process can be parsed and restored into a freshly constructed
// simulator in another process (the program image travels inside the
// state vector, and in-flight tree-walk activation queues travel as
// structural decode-tree paths — see sim/checkpoint.hpp).
//
// The format is line-oriented ASCII, versioned by the header line, with
// every count explicit so a truncated file is always detected.
#pragma once

#include <string>
#include <string_view>

#include "sim/checkpoint.hpp"

namespace lisasim {

/// Render `cp` as a self-contained text block (header "lisasim-checkpoint
/// 1"). Deterministic: equal checkpoints serialize to equal text.
std::string serialize_checkpoint(const EngineCheckpoint& cp);

/// Parse text produced by serialize_checkpoint. Throws SimError (fatal) on
/// any malformed or truncated input.
EngineCheckpoint parse_checkpoint(std::string_view text);

/// Render a whole batch (header "lisasim-batch-checkpoint 1"): per lane,
/// its retirement status and result, then its per-lane engine block in the
/// standard "lisasim-checkpoint 1" format — so individual lanes can be
/// extracted and restored into a sequential simulator.
std::string serialize_batch_checkpoint(const BatchCheckpoint& cp);

/// Parse text produced by serialize_batch_checkpoint. Throws SimError
/// (fatal) on any malformed or truncated input.
BatchCheckpoint parse_batch_checkpoint(std::string_view text);

}  // namespace lisasim
