// The simulation compiler: translates a target program into a simulation
// table (paper Fig. 5, "simulation compiler" box). For every word address
// of the text segment it performs, once:
//
//   1. compile-time decoding      — decode_packet()
//   2. operation sequencing       — Specializer::schedule_packet()
//   3. operation instantiation    — lower_to_microops() (static level only)
//
// Every address gets a row (not just sequential packet starts), so branches
// may target any word; re-chaining of execute packets from the branch
// target then matches hardware behavior.
#pragma once

#include <cstdint>

#include "asm/program.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "sim/result.hpp"
#include "sim/simtable.hpp"

namespace lisasim {

struct SimCompileStats {
  std::size_t instructions = 0;   // target instructions translated
  std::size_t table_rows = 0;     // simulation-table rows generated
  std::size_t microops = 0;       // micro-ops instantiated (static level)
};

class SimulationCompiler {
 public:
  /// `decoder` must outlive the compiler.
  SimulationCompiler(const Model& model, const Decoder& decoder)
      : model_(&model), decoder_(&decoder) {}

  /// Translate object code into a simulation table. `level` must be a
  /// compiled level; micro-ops are instantiated only for kCompiledStatic.
  SimTable compile(const LoadedProgram& program, SimLevel level,
                   SimCompileStats* stats = nullptr) const;

 private:
  const Model* model_;
  const Decoder* decoder_;
};

}  // namespace lisasim
