// The simulation compiler: translates a target program into a simulation
// table (paper Fig. 5, "simulation compiler" box). For every word address
// of the text segment it performs, once:
//
//   1. compile-time decoding      — decode_packet()
//   2. operation sequencing       — Specializer::schedule_packet()
//   3. operation instantiation    — lower_to_microops() + optimize_microops()
//                                   packed into a MicroArena (static level)
//
// Every address gets a row (not just sequential packet starts), so branches
// may target any word; re-chaining of execute packets from the branch
// target then matches hardware behavior.
//
// Translation is independent per word address (decode and sequencing read
// only the immutable model and program text), so the compiler can shard
// the address range across a thread pool. Each shard writes its own
// contiguous slice of the row vector; the merged table is therefore
// bit-identical to the sequential build at any thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "asm/program.hpp"
#include "decode/decoder.hpp"
#include "model/model.hpp"
#include "sim/result.hpp"
#include "sim/simtable.hpp"

namespace lisasim {

class ThreadPool;

struct SimCompileStats {
  std::size_t instructions = 0;   // target instructions translated
  std::size_t table_rows = 0;     // simulation-table rows generated
  std::size_t microops = 0;       // micro-ops instantiated (static level)
  std::size_t decode_calls = 0;   // decode_packet invocations (0 on a hit)
  // Packets sequenced + lowered lazily at first issue. The decode-cached
  // level defers operation instantiation to execution time, so its load()
  // alone under-reports translation work; this counter (snapshotted via
  // CachedInterpSimulator::compile_stats() after a run) completes it.
  // Always 0 for the ahead-of-time compiled levels.
  std::size_t lazy_lowered_packets = 0;
  unsigned threads_used = 1;      // workers that built the table
  bool cache_hit = false;         // table came from a SimTableCache
  std::uint64_t compile_ns = 0;   // wall time of compile() / cache lookup
  // Cumulative counters of the consulted SimTableCache, snapshotted after
  // this load's lookup (all zero when no cache is attached). Lets CLI and
  // bench output report cache effectiveness without a second API round
  // trip.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  // Disk-backed native artifact counters of the consulted cache (zero
  // without a cache or while --cache-dir is unset).
  std::uint64_t artifact_hits = 0;
  std::uint64_t artifact_misses = 0;
  std::uint64_t artifact_evictions = 0;
};

struct SimCompileOptions {
  /// Worker threads for the sharded build. 1 = sequential (default),
  /// 0 = one per hardware thread.
  unsigned threads = 1;
  /// Fault-injection seam (src/resilience): while the shared budget is
  /// positive, compile() decrements it and throws a *recoverable* SimError
  /// before translating anything — a deterministic stand-in for a failed
  /// compile shard (OOM, worker loss). Null (the default) is free.
  std::shared_ptr<std::atomic<int>> fault_budget;
};

class SimulationCompiler {
 public:
  /// `decoder` must outlive the compiler.
  SimulationCompiler(const Model& model, const Decoder& decoder);
  ~SimulationCompiler();  // out of line: ThreadPool is incomplete here

  /// Translate object code into a simulation table. `level` must be a
  /// compiled level; micro-ops are instantiated only for kCompiledStatic.
  /// The result is independent of `options.threads`.
  SimTable compile(const LoadedProgram& program, SimLevel level,
                   SimCompileStats* stats = nullptr,
                   const SimCompileOptions& options = {});

 private:
  /// Translate rows [shard.begin, shard.end) into entries[...] (pre-sized
  /// by the caller), accumulating per-shard counters. Micro-programs are
  /// appended to `arena` in row order; the sharded build hands each shard
  /// its own arena and splices them in shard order, which reproduces the
  /// sequential build's packed layout byte for byte.
  void compile_range(const std::vector<std::int64_t>& words, SimLevel level,
                     std::size_t begin, std::size_t end,
                     std::vector<SimTableEntry>& entries, MicroArena& arena,
                     std::size_t& instructions) const;

  const Model* model_;
  const Decoder* decoder_;
  std::unique_ptr<ThreadPool> pool_;  // lazily sized to options.threads
};

}  // namespace lisasim
