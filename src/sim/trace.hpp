// Hot-trace superblock compilation: the profile-guided trace tier on top
// of the flat micro-op core (the natural continuation of the paper's §3
// "simulation loop unfolding" — unfold across *packets*, not only inside
// one). Per-pc fetch counters feed a trace builder; once the packet at the
// head of a clean pipeline boundary crosses the hotness threshold, the
// builder statically replays the engine's cycle loop over the simulation
// table — virtual fetches, constant stalls, advancement, retirement — and
// splices the micro-op spans of every (packet, stage) execution, in engine
// order, into one fused MicroArena program. `optimize_microops` then runs
// across the former packet boundaries, so const-fold/copy-prop/dead-temp
// elimination finally work inter-packet. Executing a trace is a single
// exec_microops dispatch covering many engine cycles, with
//
//   * one guard-stamp check over all constituent words per entry (instead
//     of a per-fetch check per cycle),
//   * one watchdog/limit budget check per trace (instead of per cycle),
//   * a trace-to-trace chaining cache that patches hot exit->entry edges,
//     so steady-state loops run trace-to-trace without touching the engine.
//
// Bit-identity contract: a trace is formed only from table rows whose
// micro-programs are statically replayable — no flush(), no halt(), no
// data-dependent stall(), no write to fetch memory — and it ends exactly
// where static knowledge ends: at the cycle a packet writes the PC (the
// fetch of that cycle is performed live by the dispatcher, so taken,
// not-taken and computed branches all follow the engine path), at a fetch
// that would leave the table or hit an invalid/guard-dirty row, or at the
// cycle cap. RunResult deltas (cycles, fetches, retirements) and the
// watchdog's consecutive-non-retirement runs are precomputed by the same
// static replay, so a trace entry is observationally identical to running
// the engine loop cycle by cycle.
//
// Guard integration: traced packets never write fetch memory, so a trace
// cannot invalidate itself mid-flight; staleness can only arrive between
// entries and is caught by comparing the trace's build-time stamp over all
// covered (pc, words) spans. A stale trace is invalidated (and its key
// permanently rejected after the rebuild attempt sees dirty words), falling
// back to the normal guarded per-packet path. Checkpoints are taken between
// run() calls — always a trace boundary — and restore's bump_all() makes
// every stamp stale, lazily invalidating adopted traces.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "behavior/eval.hpp"
#include "behavior/microarena.hpp"
#include "behavior/microops.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/guard.hpp"
#include "sim/simtable.hpp"

namespace lisasim {

class NativeRuntime;  // sim/native.hpp: AOT-compiled region dispatch

struct TraceConfig {
  /// Fetches of a pc before trace formation is attempted at a boundary
  /// headed by that pc.
  std::uint32_t hot_threshold = 32;
  /// Longest engine-cycle span one trace may cover.
  std::uint32_t max_trace_cycles = 96;
  /// Traces shorter than this are rejected (not worth the dispatch).
  std::uint32_t min_trace_cycles = 3;
  /// Upper bound on formed traces per program (runaway-formation stop).
  std::uint32_t max_traces = 1024;
};

struct TraceStats {
  std::uint64_t formed = 0;       // traces built and installed
  std::uint64_t rejected = 0;     // hot keys found untraceable (cached)
  std::uint64_t entries = 0;      // trace executions, chained ones included
  std::uint64_t chained = 0;      // exit->entry edges taken trace-to-trace
  std::uint64_t invalidated = 0;  // traces dropped on a stale guard stamp
  std::uint64_t side_exits = 0;   // returns into the per-packet engine loop
  std::uint64_t trace_cycles = 0; // simulated cycles covered by traces
  std::uint64_t adopted = 0;      // traces adopted from a cache snapshot
};

/// Pipeline-slot image at a trace's exit boundary; the engine rebuilds its
/// slots from this (re-issuing valid pcs against the table, which is safe
/// because traces never dirty fetch memory).
struct TraceExitSlot {
  std::uint64_t pc = 0;
  int stall = 0;
  bool valid = false;
  bool executed = false;
};

struct Trace {
  /// Entry key: per-slot fetch pcs at a clean cycle boundary, slot 0
  /// (newest) first; TraceRuntime::kNoPacket marks a bubble.
  std::vector<std::uint64_t> key;
  /// The fused, peephole-optimized micro-program in the TraceSet arena.
  MicroSpan body;
  /// state.pc() value the entry boundary implies (key[0] + its words) —
  /// checked at entry, installed by a chaining predecessor.
  std::uint64_t entry_pc_after_fetch = 0;
  // Static RunResult deltas of one execution.
  std::uint64_t cycles = 0;
  std::uint64_t fetches = 0;
  std::uint64_t packets = 0;  // packets retired inside the trace
  std::uint64_t slots = 0;    // instruction slots retired inside the trace
  // Consecutive-non-retirement runs for the livelock watchdog: the run
  // touching the entry edge, the longest run anywhere, the run touching
  // the exit edge, and whether any cycle retired at all.
  std::uint64_t lead_nonretire = 0;
  std::uint64_t max_nonretire = 0;
  std::uint64_t tail_nonretire = 0;
  bool any_retire = false;
  /// Exit contract: the trace ended before its final cycle's fetch — the
  /// dispatcher performs it live (normal issue path) or chains instead.
  bool needs_fetch = false;
  /// Exit image is itself a clean boundary, so a successor trace may be
  /// entered directly (trace-to-trace chaining).
  bool chainable = false;
  bool dead = false;  // invalidated by the guard; kept for index stability
  std::vector<TraceExitSlot> image;  // one per pipeline stage
  /// Every (pc, words) span translated into the trace; the guard stamp at
  /// entry covers exactly these words.
  std::vector<std::pair<std::uint64_t, unsigned>> covered;
  std::uint64_t stamp = 0;  // guard span stamps at build time (sum)
  /// Two-way direct-mapped chain cache: live exit pc -> successor index.
  mutable std::array<std::pair<std::uint64_t, std::int32_t>, 2> chain{
      {{UINT64_MAX, -1}, {UINT64_MAX, -1}}};
};

/// The value object SimTableCache snapshots: everything needed to replay
/// the traces of one (table, model) pair. Copyable by design — snapshot
/// and adopt are plain copies.
struct TraceSet {
  MicroArena arena;
  std::vector<Trace> traces;
  /// Entry-key hash -> trace index, or kRejected for keys proven
  /// untraceable (negative cache: rows and generations only harden).
  std::unordered_map<std::uint64_t, std::int32_t> index;
  std::uint64_t fingerprint = 0;  // trace_table_fingerprint of the table
  int depth = 0;
};

/// Per-entry budget the engine grants a trace run: a trace may only
/// execute if its static cycle/stuck deltas provably cannot cross a limit
/// or interrupt mid-trace — otherwise the engine path runs, bit-identical.
struct TraceBudget {
  std::uint64_t cycles_remaining = 0;             // limits.max_cycles slack
  std::uint64_t watchdog_remaining = UINT64_MAX;  // must stay strictly below
  std::uint64_t irq_remaining = UINT64_MAX;       // cycles to next interrupt
  std::uint64_t max_stuck = 0;                    // 0 = watchdog disabled
  std::uint64_t stuck = 0;  // in: current run; out: run at the exit edge
};

/// What the engine applies after a successful trace run.
struct TraceExit {
  std::uint64_t cycles = 0;
  std::uint64_t fetches = 0;
  std::uint64_t packets = 0;
  std::uint64_t slots = 0;
  const std::vector<TraceExitSlot>* image = nullptr;
  bool needs_fetch = false;
};

/// Cheap deterministic fingerprint of a simulation table's micro layout
/// (FNV-1a over base, rows and every arena op field) — the discriminator a
/// cached TraceSet is keyed alongside: adopting a snapshot against any
/// other table is rejected.
std::uint64_t trace_table_fingerprint(const SimTable& table);

class TraceRuntime {
 public:
  static constexpr int kMaxDepth = 32;
  /// Entry-key sentinel for an empty pipeline slot (bubble).
  static constexpr std::uint64_t kNoPacket = UINT64_MAX;
  static constexpr std::int32_t kRejected = -1;

  TraceRuntime(const Model& model, ProcessorState& state);

  void configure(const TraceConfig& config) { cfg_ = config; }
  const TraceConfig& config() const { return cfg_; }

  /// (Re)target the runtime at a freshly loaded simulation table (must be
  /// a static-level table: traces splice its micro spans). Drops all
  /// traces and heat; adopt() may warm-start from a cache snapshot.
  void set_program(const SimTable* table);

  /// Update the guard the entry stamp checks read (nullptr while the
  /// simulator runs unguarded). Called on every (re)load; traces survive —
  /// they are table-derived, and stamps baseline at zero generations.
  void set_guard(const ProgramGuard* guard) { guard_ = guard; }

  /// Adopt a snapshot published to the table cache by a previous load of
  /// the same table. Rejected (returns false) unless the fingerprint and
  /// pipeline depth match the current table exactly.
  bool adopt(const std::shared_ptr<const TraceSet>& snapshot);

  /// Copy of the current trace set for cache publication; nullptr when no
  /// trace was formed (nothing worth publishing).
  std::shared_ptr<const TraceSet> snapshot() const;

  /// The engine's per-fetch profiling hook (hotness counters).
  void note_fetch(std::uint64_t pc) {
    const std::uint64_t slot = pc - base_;
    if (slot < heat_.size() && heat_[slot] < cfg_.hot_threshold)
      ++heat_[slot];
  }

  /// Attempt to run traces from the clean cycle boundary described by
  /// `slot_pcs` (slot 0 first, kNoPacket = bubble). On success the
  /// accumulated deltas of every chained trace are in `out`, the exit-edge
  /// stuck run in `budget.stuck`, and the caller must rebuild its slots
  /// from `out.image` (then fetch live if `out.needs_fetch`). Returns
  /// false — with no side effects on the simulation — when no trace
  /// applies or the budget does not provably cover one.
  bool try_run(const std::uint64_t* slot_pcs, int depth, TraceBudget& budget,
               TraceExit& out);

  /// Instrumented dispatch for bench (micro-ops counted per trace entry).
  /// Enabling resets the counter.
  void set_count_microops(bool on) {
    count_microops_ = on;
    if (on) microops_executed_ = 0;
  }
  std::uint64_t microops_executed() const { return microops_executed_; }

  const TraceStats& stats() const { return stats_; }

  /// Arm the native AOT tier (nullptr disarms): try_run dispatches trace
  /// bodies through it when a compiled region is installed — after all the
  /// usual entry checks (staleness, budget) already passed — and notifies
  /// it when a new trace forms so the body joins the next compile round.
  void set_native(NativeRuntime* native) { native_ = native; }

  /// Native-tier access to the live trace set: bodies are snapshot-copied
  /// out of the arena before the compile worker sees them.
  const MicroArena& trace_arena() const { return set_.arena; }
  const std::vector<Trace>& live_traces() const { return set_.traces; }

 private:
  /// Per-span static analysis: can this micro-program be replayed without
  /// running it — and what does it do to the pipeline if so?
  struct SpanScan {
    bool bad = false;       // flush/halt/text write/data-dependent stall
    bool writes_pc = false; // branch: ends the trace at this cycle
    std::int64_t stall = 0; // constant stall cycles the span contributes
  };
  struct VSlot {
    std::uint64_t pc = 0;
    const SimTableEntry* row = nullptr;
    bool valid = false;
    bool executed = false;
    std::int64_t stall = 0;
  };

  SpanScan scan_span(const MicroOp* ops, std::uint32_t len) const;
  bool row_traceable(const SimTableEntry& row) const;
  void emit_span(const MicroOp* ops, std::uint32_t len, MicroProgram& out,
                 int& temp_base, int span_temps) const;
  std::int32_t find_or_build(const std::uint64_t* key);
  std::int32_t build(const std::uint64_t* key);
  bool fits_budget(const Trace& trace, const TraceBudget& budget) const;
  bool stale(const Trace& trace) const {
    if (guard_ == nullptr || guard_->writes() == 0) return false;
    std::uint64_t stamp = 0;
    for (const auto& [pc, words] : trace.covered)
      stamp += guard_->span_stamp(pc, words);
    return stamp != trace.stamp;
  }
  void invalidate(std::int32_t idx);
  static std::uint64_t hash_key(const std::uint64_t* key, int depth) {
    std::uint64_t h = 14695981039346656037ull;
    for (int i = 0; i < depth; ++i) {
      h ^= key[i];
      h *= 1099511628211ull;
    }
    return h;
  }

  const Model* model_;
  ProcessorState* state_;
  int depth_;
  const SimTable* table_ = nullptr;
  const ProgramGuard* guard_ = nullptr;
  NativeRuntime* native_ = nullptr;  // kNative only
  TraceConfig cfg_;
  TraceSet set_;
  std::vector<std::uint32_t> heat_;  // per table row, saturates at threshold
  std::uint64_t base_ = 0;           // table base (heat index origin)
  PipelineControl control_;  // scratch; traces contain no control ops
  std::vector<std::int64_t> temps_;  // shared scratch, sized by the arena
  bool count_microops_ = false;
  std::uint64_t microops_executed_ = 0;
  TraceStats stats_;
};

}  // namespace lisasim
