// The native AOT tier (SimLevel::kNative): dlopen'd per-program compiled
// regions on top of the trace tier. NativeRuntime snapshots the eligible
// micro-op regions (static table spans and live trace bodies), generates
// straight-line C++ for them (codegen/nativegen.cpp), compiles the source
// out-of-process on a one-thread pool — the engine keeps simulating on the
// micro-op core meanwhile — dlopens the artifact, verifies its entry table,
// and installs per-region function pointers the dispatch seams consult:
//
//   * TraceRuntime::try_run swaps the body exec_microops for a native call
//     after all its usual entry checks (hotness, stamp staleness, budget)
//     pass — so one ProgramGuard stamp check and one watchdog/interrupt
//     budget check cover a whole native region, exactly like a trace;
//   * CompiledBackend::execute swaps a static span's exec_microops for a
//     native call only on the clean path (no guard patch, no counting).
//
// Every dispatch first re-checks the cheap stand-down conditions (strided
// lane binding, non-guard memory hooks); any refusal falls back to the
// micro-op core mid-run with no state divergence, which is what keeps SMC,
// checkpoints, RunLimits and the RunSupervisor ladder working unchanged.
// Artifacts are keyed by (target, model hash, program hash, content hash)
// in SimTableCache's disk-backed artifact directory, so compiles amortize
// across processes; within one process a module registry additionally
// shares the live dlopen'd modules themselves (shared_ptr, weak-held by
// the registry) across every NativeRuntime of the same content key, with
// in-flight builds coalesced — the serve layer's N-sessions-one-compile
// contract. Sharing is sound because modules are immutable code whose
// per-call state arrives via NativeCtx.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "behavior/eval.hpp"
#include "codegen/native_abi.hpp"
#include "model/model.hpp"
#include "model/state.hpp"
#include "sim/simtable.hpp"
#include "support/thread_pool.hpp"

namespace lisasim {

class ProgramGuard;
class SimTableCache;
class TraceRuntime;
struct NativeRegionSpec;  // codegen/nativegen.hpp

struct NativeConfig {
  /// Wait for every compile round before returning from prepare()/
  /// note_trace_formed() — deterministic dispatch for tests and fuzzing.
  /// The default is asynchronous: the engine simulates on the micro-op
  /// core until the artifact is ready.
  bool blocking = false;
  /// -O level handed to the out-of-process compile (fuzzing drops to 0:
  /// compile latency dominates over region speed there).
  int opt_level = 2;
  /// Consecutive failed compile rounds before the tier disables itself
  /// for the current program (permanent fallback to trace level).
  int max_failures = 3;
};

struct NativeStats {
  std::uint64_t rounds = 0;            // compile rounds launched
  std::uint64_t regions = 0;           // regions currently installed
  std::uint64_t compiles = 0;          // out-of-process compiler runs
  std::uint64_t compile_failures = 0;
  std::uint64_t compile_ns = 0;        // wall time inside the compiler
  std::uint64_t artifact_hits = 0;     // .so served from the artifact dir
  std::uint64_t artifact_misses = 0;
  std::uint64_t trace_dispatches = 0;  // trace bodies run natively
  std::uint64_t span_dispatches = 0;   // static spans run natively
  std::uint64_t stand_downs = 0;       // dispatch refused (hooks/stride)
  std::uint64_t module_shares = 0;     // rounds served by a module another
                                       // runtime already built (registry)
};

/// Process-wide module-registry counters (see NativeRuntime::registry_
/// stats): every compile round first consults a registry of live dlopen'd
/// modules keyed by (model, program, content) hash, so N concurrent
/// sessions of one program coalesce onto one toolchain invocation and one
/// artifact load per content set.
struct NativeRegistryStats {
  std::uint64_t builds = 0;  // rounds elected to build (compile or dlopen)
  std::uint64_t shares = 0;  // rounds served by an already-open module
  std::uint64_t waits = 0;   // rounds that blocked on an in-flight build
};

class NativeRuntime {
 public:
  NativeRuntime(const Model& model, ProcessorState& state);
  ~NativeRuntime();

  NativeRuntime(const NativeRuntime&) = delete;
  NativeRuntime& operator=(const NativeRuntime&) = delete;

  /// Is an out-of-process C++ compiler reachable? Checked once per
  /// process: the configure-time compiler baked in by CMake
  /// (LISASIM_NATIVE_CXX), overridable with the LISASIM_NATIVE_CXX
  /// environment variable (empty value = force-unavailable, the tests'
  /// no-toolchain path).
  static bool toolchain_available();
  /// The compiler command toolchain_available() resolved ("" if none).
  static std::string toolchain();

  void configure(const NativeConfig& config) { cfg_ = config; }

  /// (Re)target the runtime at a freshly loaded program: drops installed
  /// regions, discards in-flight rounds, snapshots the program, and kicks
  /// the first compile round (static table spans; trace bodies join via
  /// note_trace_formed()). `guard` is the attached program guard or
  /// nullptr; `cache` (optional) supplies the disk artifact directory.
  void prepare(const SimTable* table, const LoadedProgram& program,
               std::uint64_t program_hash, TraceRuntime* traces,
               SimTableCache* cache, const ProgramGuard* guard);

  /// Follow the simulator's guard arming across reloads.
  void set_guard(const ProgramGuard* guard) { guard_ = guard; }

  /// TraceRuntime hook: a new trace was formed — schedule a round that
  /// includes its body.
  void note_trace_formed();

  /// Engine-thread adoption point for finished compile rounds; one atomic
  /// load on the fast path. Called at run() start and from try_run.
  void poll() {
    if (pending_ready_.load(std::memory_order_acquire)) adopt_pending();
  }

  /// Block until no round is in flight, then adopt (tests and benches).
  void wait_ready();

  /// Run the trace body at `offset` (trace-set arena) natively. Returns
  /// false — no side effects — when no verified region is installed for it
  /// or a stand-down condition holds; the caller falls back to
  /// exec_microops. Trace bodies contain no control ops by construction.
  bool run_trace_body(std::uint32_t offset, std::uint32_t len) {
    const Binding* binding = lookup(trace_index_, offset, len);
    if (binding == nullptr) return false;
    NativeCtx ctx;
    ctx.state = state_->raw_data();
    const std::int32_t rc = binding->fn(&ctx);
    ++stats_.trace_dispatches;
    if (rc != 0) [[unlikely]]
      rethrow_fault(*binding, rc, ctx.fault_arg);
    return true;
  }

  /// Run the static table span at `offset` (table arena) natively,
  /// transferring control effects (stall/flush/halt) into `control` the
  /// way exec_microops would. Same fallback contract as run_trace_body.
  bool run_static_span(std::uint32_t offset, std::uint32_t len,
                       PipelineControl& control) {
    const Binding* binding = lookup(static_index_, offset, len);
    if (binding == nullptr) return false;
    NativeCtx ctx;
    ctx.state = state_->raw_data();
    const std::int32_t rc = binding->fn(&ctx);
    ++stats_.span_dispatches;
    if (ctx.stall != 0) control.stall_cycles += ctx.stall;
    if (ctx.flush) control.flush = true;
    if (ctx.halt) control.halt = true;
    if (rc != 0) [[unlikely]]
      rethrow_fault(*binding, rc, ctx.fault_arg);
    return true;
  }

  const NativeStats& stats() const { return stats_; }
  /// Snapshot of the process-wide module registry counters.
  static NativeRegistryStats registry_stats();
  /// Diagnostic from the most recent failed compile round ("" if none).
  const std::string& last_error() const { return last_error_; }
  /// Installed and serving regions (at least one round adopted)?
  bool active() const { return !bindings_.empty(); }

  /// dlopen handle + verified entry table (defined in native.cpp; the
  /// declaration is public so the module registry can weak-reference it).
  struct Module;

 private:
  struct Binding {
    NativeRegionFn fn = nullptr;
    const NativeFault* faults = nullptr;
    std::uint32_t fault_count = 0;
    std::uint32_t len = 0;
  };
  struct Job;      // worker-thread input snapshot (native.cpp)
  struct Pending;  // finished round awaiting adoption (native.cpp)

  /// Region lookup with the per-dispatch stand-down checks: stride-1
  /// layout and no memory hooks beyond the guard's own (whose on_read is
  /// the identity, so raw reads stay sound; regions that write fetch
  /// memory are never compiled).
  const Binding* lookup(const std::vector<std::int32_t>& index,
                        std::uint32_t offset, std::uint32_t len) {
    if (index.empty() || offset >= index.size()) return nullptr;
    const std::int32_t b = index[offset];
    if (b < 0) return nullptr;
    const Binding& binding = bindings_[static_cast<std::size_t>(b)];
    if (binding.len != len) return nullptr;
    if (state_->stride() != 1 ||
        state_->hook_count() > (guard_ != nullptr ? 1u : 0u)) {
      ++stats_.stand_downs;
      return nullptr;
    }
    return &binding;
  }

  [[noreturn]] void rethrow_fault(const Binding& binding, std::int32_t rc,
                                  std::int64_t fault_arg) const;

  void launch_round();
  void adopt_pending();
  void install(std::shared_ptr<Module> module);
  std::vector<NativeRegionSpec> collect_specs() const;
  // Worker-thread side: pure functions of the job snapshot (no runtime
  // state is touched off the engine thread). run_compile_job consults the
  // process-wide module registry (single-flight per content key) and
  // falls back to build_module — the artifact-dir probe, codegen,
  // out-of-process compile and dlopen.
  static void run_compile_job(Job& job, Pending& out);
  static void build_module(Job& job, Pending& out);
  static std::shared_ptr<Module> open_and_verify(const std::string& path,
                                                 const Job& job);

  const Model* model_;
  ProcessorState* state_;
  NativeConfig cfg_;

  const SimTable* table_ = nullptr;
  TraceRuntime* traces_ = nullptr;
  SimTableCache* cache_ = nullptr;
  const ProgramGuard* guard_ = nullptr;
  std::shared_ptr<const LoadedProgram> program_;  // worker-owned copy
  std::uint64_t program_hash_ = 0;
  std::uint64_t model_hash_ = 0;
  bool enabled_ = false;
  int failures_ = 0;
  std::uint64_t last_attempt_hash_ = 0;  // content hash of the last round

  // Installed dispatch tables: index[arena offset] -> bindings_ slot.
  std::vector<Binding> bindings_;
  std::vector<std::int32_t> static_index_;
  std::vector<std::int32_t> trace_index_;
  // dlopen'd modules backing the installed fn pointers; freed on the next
  // prepare() (never mid-run).
  std::vector<std::shared_ptr<Module>> modules_;

  // Worker handoff. epoch_ stamps jobs; prepare() bumps it so rounds
  // compiled for a previous program are discarded at adoption.
  std::uint64_t epoch_ = 0;
  std::mutex mutex_;
  std::unique_ptr<Pending> pending_;
  std::atomic<bool> pending_ready_{false};
  std::atomic<bool> in_flight_{false};

  NativeStats stats_;
  std::string last_error_;

  // Last member: its destructor joins the worker before anything above
  // (modules especially) is torn down.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace lisasim
