#include "sim/interp.hpp"

#include "behavior/specialize.hpp"

namespace lisasim {

/// Routes ACTIVATION requests: later stages enqueue FIFO, same-or-earlier
/// stages execute immediately (the ordering contract shared with the
/// simulation compiler's schedule builder).
class InterpBackend::Sink final : public ActivationSink {
 public:
  Sink(Evaluator& eval, Work& work, int stage)
      : eval_(&eval), work_(&work), stage_(stage) {}

  void activate(const DecodedNode& child) override {
    const int child_stage =
        child.op->stage >= 0 ? child.op->stage : stage_;
    if (child_stage > stage_) {
      if (static_cast<std::size_t>(child_stage) >= work_->sched.size())
        throw SimError("activation of '" + child.op->name +
                       "' beyond the pipeline");
      work_->sched[static_cast<std::size_t>(child_stage)].push_back(&child);
    } else {
      eval_->run_op(child, this);
    }
  }

 private:
  Evaluator* eval_;
  Work* work_;
  int stage_;
};

void InterpBackend::issue(std::uint64_t pc, Work& out, unsigned& words) {
  if (model_->fetch_memory < 0)
    throw SimError("model has no fetch memory");
  out.error.clear();
  out.auto_ops.clear();
  // Run-time decoding: this work is re-done on every fetch of the same
  // address — precisely what compiled simulation eliminates.
  if (!decoder_.try_decode_packet(state_->array_view(model_->fetch_memory),
                                  pc, out.packet, out.error)) {
    out.packet = {};
    words = 1;
    return;
  }
  for (const auto& slot : out.packet.slots)
    collect_auto_ops(*slot, out.auto_ops);
  out.sched.assign(static_cast<std::size_t>(depth_), {});
  words = out.packet.words;
}

void InterpBackend::execute(Work& work, int stage) {
  if (!work.error.empty()) {
    // Undecodable packet: harmless while it can still be squashed, fatal
    // once it retires.
    if (stage == depth_ - 1) throw SimError(work.error);
    return;
  }
  // Auto-run operations in tree order first...
  for (const auto& [node, node_stage] : work.auto_ops) {
    if (node_stage != stage) continue;
    Sink sink(eval_, work, stage);
    eval_.run_op(*node, &sink);
  }
  // ...then activations in FIFO order (the list can grow while we run).
  auto& queue = work.sched[static_cast<std::size_t>(stage)];
  for (std::size_t i = 0; i < queue.size(); ++i) {
    Sink sink(eval_, work, stage);
    eval_.run_op(*queue[i], &sink);
  }
}

}  // namespace lisasim
