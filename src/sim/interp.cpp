// The interpretive backend is a thin adapter over sim/treewalk.cpp (the
// shared tree-walk execution core); its members are defined inline in
// interp.hpp. This unit anchors the translation unit for the library.
#include "sim/interp.hpp"
