#include "sim/treewalk.hpp"

#include <algorithm>

#include "behavior/specialize.hpp"

namespace lisasim {

namespace {

/// Routes ACTIVATION requests: later stages enqueue FIFO, same-or-earlier
/// stages execute immediately (the ordering contract shared with the
/// simulation compiler's schedule builder).
class TreeWalkSink final : public ActivationSink {
 public:
  TreeWalkSink(Evaluator& eval, TreeWalkWork& work, int stage)
      : eval_(&eval), work_(&work), stage_(stage) {}

  void activate(const DecodedNode& child) override {
    const int child_stage = child.op->stage >= 0 ? child.op->stage : stage_;
    if (child_stage > stage_) {
      if (static_cast<std::size_t>(child_stage) >= work_->sched.size())
        throw SimError("activation of '" + child.op->name +
                       "' beyond the pipeline");
      work_->sched[static_cast<std::size_t>(child_stage)].push_back(&child);
    } else {
      eval_->run_op(child, this);
    }
  }

 private:
  Evaluator* eval_;
  TreeWalkWork* work_;
  int stage_;
};

/// Structural address of a decode-tree node: the packet slot index
/// followed by the child-slot indices from that root down to the node.
std::vector<std::int32_t> node_path(const DecodedPacket& packet,
                                    const DecodedNode& node) {
  std::vector<std::int32_t> path;
  const DecodedNode* n = &node;
  while (n->parent) {
    const DecodedNode* parent = n->parent;
    std::int32_t slot = -1;
    for (std::size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i].get() == n) {
        slot = static_cast<std::int32_t>(i);
        break;
      }
    }
    if (slot < 0)
      throw SimError("checkpoint: decode-tree node unreachable from parent");
    path.push_back(slot);
    n = parent;
  }
  std::int32_t root = -1;
  for (std::size_t i = 0; i < packet.slots.size(); ++i) {
    if (packet.slots[i].get() == n) {
      root = static_cast<std::int32_t>(i);
      break;
    }
  }
  if (root < 0)
    throw SimError("checkpoint: decode-tree node outside its packet");
  path.push_back(root);
  std::reverse(path.begin(), path.end());
  return path;
}

const DecodedNode* resolve_path(const DecodedPacket& packet,
                                const std::vector<std::int32_t>& path,
                                std::uint64_t pc) {
  const auto fail = [pc]() -> const DecodedNode* {
    throw SimError("checkpoint restore: activation path does not resolve in "
                   "the re-decoded packet at pc " + std::to_string(pc) +
                   " (program memory changed under an in-flight packet?)");
  };
  if (path.empty()) return fail();
  const std::size_t root = static_cast<std::size_t>(path[0]);
  if (path[0] < 0 || root >= packet.slots.size()) return fail();
  const DecodedNode* node = packet.slots[root].get();
  for (std::size_t i = 1; i < path.size(); ++i) {
    const std::size_t child = static_cast<std::size_t>(path[i]);
    if (path[i] < 0 || child >= node->children.size() ||
        !node->children[child])
      return fail();
    node = node->children[child].get();
  }
  return node;
}

}  // namespace

void treewalk_issue(const Decoder& decoder, const Model& model,
                    const ProcessorState& state, std::uint64_t pc, int depth,
                    TreeWalkWork& out, unsigned& words) {
  if (model.fetch_memory < 0) throw SimError("model has no fetch memory");
  out.error.clear();
  out.auto_ops.clear();
  if (!decoder.try_decode_packet(state.array_view(model.fetch_memory), pc,
                                 out.packet, out.error)) {
    out.packet = {};
    out.sched.clear();
    words = 1;
    return;
  }
  for (const auto& slot : out.packet.slots)
    collect_auto_ops(*slot, out.auto_ops);
  out.sched.assign(static_cast<std::size_t>(depth), {});
  words = out.packet.words;
}

void treewalk_execute(Evaluator& eval, TreeWalkWork& work, int stage,
                      int depth) {
  if (!work.error.empty()) {
    // Undecodable packet: harmless while it can still be squashed, fatal
    // once it retires.
    if (stage == depth - 1) throw SimError(work.error);
    return;
  }
  // Auto-run operations in tree order first...
  for (const auto& [node, node_stage] : work.auto_ops) {
    if (node_stage != stage) continue;
    TreeWalkSink sink(eval, work, stage);
    eval.run_op(*node, &sink);
  }
  // ...then activations in FIFO order (the list can grow while we run).
  auto& queue = work.sched[static_cast<std::size_t>(stage)];
  for (std::size_t i = 0; i < queue.size(); ++i) {
    TreeWalkSink sink(eval, work, stage);
    eval.run_op(*queue[i], &sink);
  }
}

void treewalk_save(const TreeWalkWork& work, WorkSnapshot& out) {
  out.treewalk = true;
  out.error = work.error;
  out.sched_paths.clear();
  out.sched_paths.resize(work.sched.size());
  for (std::size_t s = 0; s < work.sched.size(); ++s) {
    for (const DecodedNode* node : work.sched[s])
      out.sched_paths[s].push_back(node_path(work.packet, *node));
  }
}

void treewalk_restore(const Decoder& decoder, const Model& model,
                      const ProcessorState& state, std::uint64_t pc, int depth,
                      const WorkSnapshot& snapshot, TreeWalkWork& out) {
  unsigned words = 0;
  treewalk_issue(decoder, model, state, pc, depth, out, words);
  bool any_queued = false;
  for (const auto& queue : snapshot.sched_paths)
    if (!queue.empty()) any_queued = true;
  if (!any_queued) return;
  if (!out.error.empty())
    throw SimError("checkpoint restore: in-flight packet at pc " +
                   std::to_string(pc) + " no longer decodes: " + out.error);
  if (out.sched.size() < snapshot.sched_paths.size())
    out.sched.resize(snapshot.sched_paths.size());
  for (std::size_t s = 0; s < snapshot.sched_paths.size(); ++s) {
    for (const auto& path : snapshot.sched_paths[s])
      out.sched[s].push_back(resolve_path(out.packet, path, pc));
  }
}

}  // namespace lisasim
