#include "sim/batched.hpp"

#include <bit>

namespace lisasim {

namespace {

inline std::uint64_t lane_bit(unsigned lane) {
  return std::uint64_t{1} << lane;
}

}  // namespace

BatchedSimulator::BatchedSimulator(const Model& model, unsigned lanes)
    : model_(&model),
      lanes_(lanes),
      depth_(model.pipeline.depth()),
      decoder_(model),
      compiler_(model, decoder_) {
  if (lanes == 0 || lanes > kMaxBatchLanes)
    throw SimError("batch width must be between 1 and " +
                   std::to_string(kMaxBatchLanes) + " lanes, got " +
                   std::to_string(lanes));
  states_.reserve(lanes);
  for (unsigned l = 0; l < lanes; ++l) states_.emplace_back(model);
  total_elements_ = states_[0].total_elements();
  soa_.assign(total_elements_ * lanes, 0);
  // Lane l's view: element p at soa_[p * lanes + l] — the same element of
  // every lane is contiguous, which is what the lane-innermost micro-op
  // loops vectorize over. With one lane this is exactly the flat layout.
  for (unsigned l = 0; l < lanes; ++l)
    states_[l].bind_lanes(soa_.data() + l, lanes);
  guards_.resize(lanes);
  backends_.reserve(lanes);
  lanes_d_.resize(lanes);
  state_ptrs_.resize(lanes);
  control_ptrs_.resize(lanes);
  faults_.resize(lanes);
  for (unsigned l = 0; l < lanes; ++l) {
    guards_[l] = std::make_unique<ProgramGuard>();
    backends_.push_back(std::make_unique<CompiledBackend>(
        model, states_[l], decoder_, SimLevel::kCompiledStatic));
    Lane& lane = lanes_d_[l];
    lane.slots.resize(static_cast<std::size_t>(depth_));
    lane.work_pool.resize(static_cast<std::size_t>(depth_));
    for (int i = 0; i < depth_; ++i)
      lane.slots[static_cast<std::size_t>(i)].work =
          &lane.work_pool[static_cast<std::size_t>(i)];
    state_ptrs_[l] = &states_[l];
    control_ptrs_[l] = &backends_[l]->control();
  }
}

SimCompileStats BatchedSimulator::load(const LoadedProgram& program) {
  SimCompileStats stats;
  table_ = std::make_shared<const SimTable>(
      compiler_.compile(program, SimLevel::kCompiledStatic, &stats,
                        compile_options_));
  attach_table_and_load(program);
  return stats;
}

void BatchedSimulator::load_precompiled(const LoadedProgram& program,
                                        std::shared_ptr<const SimTable> table) {
  table_ = std::move(table);
  attach_table_and_load(program);
}

void BatchedSimulator::reload(const LoadedProgram& program) {
  if (!table_) throw SimError("batched reload before any load");
  attach_table_and_load(program);
}

void BatchedSimulator::attach_table_and_load(const LoadedProgram& program) {
  // One scratch strip per temp across all lanes: temp i of lane l at
  // lane_temps_[i * lanes_ + l], matching the state SoA layout.
  lane_temps_.assign(
      static_cast<std::size_t>(table_->max_temps()) * lanes_, 0);
  for (unsigned l = 0; l < lanes_; ++l) {
    backends_[l]->set_table(table_.get());
    states_[l].reset();
    Lane& lane = lanes_d_[l];
    for (Slot& slot : lane.slots) slot.valid = false;
    lane.run = LaneRun{};
    lane.total_cycles = 0;
    lane.stuck = 0;
    backends_[l]->control().clear();
    load_into_state(program, states_[l]);
    if (guard_policy_ == GuardPolicy::kOff) {
      guards_[l]->detach();
      backends_[l]->set_guard(nullptr, GuardPolicy::kOff);
    } else {
      guards_[l]->attach(states_[l]);
      // Loading wrote the text through the hook; re-baseline so the load
      // itself does not look like self-modification.
      guards_[l]->reset();
      backends_[l]->set_guard(guards_[l].get(), guard_policy_);
    }
  }
}

bool BatchedSimulator::all_done() const {
  for (const Lane& lane : lanes_d_)
    if (!lane.run.done) return false;
  return true;
}

void BatchedSimulator::fail_lane(unsigned lane, const SimError& error) {
  LaneRun& run = lanes_d_[lane].run;
  run.done = true;
  run.errored = true;
  run.recoverable = error.recoverable();
  run.error = error.what();
}

void BatchedSimulator::retire_watchdog(unsigned lane, std::string message) {
  // Replicates PipelineEngine::throw_limit's message and context byte for
  // byte, so a batched watchdog stop compares equal to the sequential
  // simulator's recoverable error in the differential.
  const Lane& l = lanes_d_[lane];
  message += " (pc " + std::to_string(states_[lane].pc()) + ", cycle " +
             std::to_string(l.total_cycles) + ", level " +
             std::string(sim_level_name(SimLevel::kCompiledStatic)) + ")";
  fail_lane(lane, SimError(message, SimErrorKind::kRecoverable));
}

void BatchedSimulator::run(const RunLimits& limits) {
  if (!table_) throw SimError("batched run before load");
  // Fresh per-run counters for every live lane (the sequential engine
  // returns a fresh RunResult per run() call); retired lanes keep theirs.
  for (Lane& lane : lanes_d_) {
    if (lane.run.done) continue;
    lane.run.result = RunResult{};
    lane.stuck = 0;
  }
  for (unsigned l = 0; l < lanes_; ++l) backends_[l]->control().clear();
  while (true) {
    std::uint64_t active = 0;
    for (unsigned l = 0; l < lanes_; ++l) {
      const Lane& lane = lanes_d_[l];
      if (!lane.run.done && lane.run.result.cycles < limits.max_cycles)
        active |= lane_bit(l);
    }
    if (active == 0) break;
    step(active, limits);
  }
}

// One batch step = one pipeline cycle of every lane in `active`, mirroring
// PipelineEngine::run_impl stage for stage. Per lane the order of effects
// is exactly the sequential engine's (execute stage s, apply control,
// advance stage s, then stage s-1, ...); grouping only interleaves lanes,
// which share no state.
void BatchedSimulator::step(std::uint64_t active, const RunLimits& limits) {
  // Guard stamps once per batch step: lanes whose guard saw writes take
  // the per-lane guarded fetch path this cycle, the rest share find().
  std::uint64_t dirty = 0;
  if (guard_policy_ != GuardPolicy::kOff) {
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(m));
      if (guards_[l]->attached() && guards_[l]->writes() != 0)
        dirty |= lane_bit(l);
    }
  }

  std::uint64_t halted = 0;  // lanes whose packet executed halt this cycle
  std::uint64_t retired_before[kMaxBatchLanes];
  for (std::uint64_t m = active; m != 0; m &= m - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(m));
    retired_before[l] = lanes_d_[l].run.result.packets_retired;
  }

  for (int stage = depth_ - 1; stage >= 0; --stage) {
    // ---- execute phase --------------------------------------------------
    // Group lanes sitting on the same clean table row; everything else
    // (guard patches, tree-walk fallbacks, deferred fetch errors) executes
    // solo through the ordinary backend.
    const SimTableEntry* group_entry[kMaxBatchLanes];
    std::uint64_t group_mask[kMaxBatchLanes];
    int n_groups = 0;
    std::uint64_t solo = 0;
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(m));
      Slot& slot = lanes_d_[l].slots[static_cast<std::size_t>(stage)];
      if (!slot.valid || slot.executed) continue;
      const CompiledBackend::Work& work = *slot.work;
      if ((work.mask >> stage & 1u) == 0) {
        // Stage has no work: the backend would return immediately, so the
        // slot just counts as executed (no control can have been raised).
        slot.executed = true;
        continue;
      }
      if (work.entry != nullptr && !work.patch && !work.fallback &&
          work.error_id < 0) {
        int g = 0;
        while (g < n_groups && group_entry[g] != work.entry) ++g;
        if (g == n_groups) {
          group_entry[g] = work.entry;
          group_mask[g] = 0;
          ++n_groups;
        }
        group_mask[g] |= lane_bit(l);
      } else {
        solo |= lane_bit(l);
      }
    }
    for (int g = 0; g < n_groups; ++g) {
      std::uint64_t executed_mask = group_mask[g];
      if (std::popcount(group_mask[g]) >= 2) {
        const MicroSpan span =
            group_entry[g]->micro[static_cast<std::size_t>(stage)];
        const MicroArena& arena = table_->arena();
        const std::uint64_t faulted = exec_microops_lanes(
            arena.data() + span.offset, span.len, arena.pool_data(),
            state_ptrs_.data(), control_ptrs_.data(), group_mask[g],
            lane_temps_.data(), lanes_, faults_.data());
        for (std::uint64_t m = faulted; m != 0; m &= m - 1) {
          const unsigned l = static_cast<unsigned>(std::countr_zero(m));
          fail_lane(l, *faults_[l]);
          faults_[l].reset();
        }
        active &= ~faulted;
        executed_mask &= ~faulted;
      } else {
        solo |= group_mask[g];
        executed_mask = 0;
      }
      for (std::uint64_t m = executed_mask; m != 0; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        lanes_d_[l].slots[static_cast<std::size_t>(stage)].executed = true;
      }
    }
    for (std::uint64_t m = solo; m != 0; m &= m - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(m));
      Slot& slot = lanes_d_[l].slots[static_cast<std::size_t>(stage)];
      try {
        backends_[l]->execute(*slot.work, stage);
        slot.executed = true;
      } catch (const SimError& e) {
        // The lane freezes exactly where the sequential engine's unwind
        // would leave it: mid-cycle, slot un-executed, no fetch.
        fail_lane(l, e);
        active &= ~lane_bit(l);
      }
    }
    // ---- control + advancement, per lane --------------------------------
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
      const unsigned l = static_cast<unsigned>(std::countr_zero(m));
      Lane& lane = lanes_d_[l];
      Slot& slot = lane.slots[static_cast<std::size_t>(stage)];
      if (!slot.valid) continue;
      PipelineControl& control = backends_[l]->control();
      if (control.any()) [[unlikely]] {
        if (control.stall_cycles > 0) slot.stall += control.stall_cycles;
        if (control.flush) {
          for (int k = 0; k < stage; ++k)
            lane.slots[static_cast<std::size_t>(k)].valid = false;
        }
        if (control.halt) halted |= lane_bit(l);
        control.clear();
      }
      if (halted & lane_bit(l)) continue;  // no advancement while halting
      if (slot.stall > 0) {
        --slot.stall;
        continue;
      }
      if (stage == depth_ - 1) {
        ++lane.run.result.packets_retired;
        lane.run.result.slots_retired += backends_[l]->slot_count(*slot.work);
        slot.valid = false;
        continue;
      }
      Slot& next = lane.slots[static_cast<std::size_t>(stage + 1)];
      if (!next.valid) {
        CompiledBackend::Work* const free_work = next.work;
        next.work = slot.work;
        slot.work = free_work;
        next.pc = slot.pc;
        next.valid = true;
        next.executed = false;
        next.stall = 0;
        slot.valid = false;
      }
      // Otherwise blocked by an older stalled packet: stay put.
    }
  }

  for (std::uint64_t m = active; m != 0; m &= m - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(m));
    Lane& lane = lanes_d_[l];
    ++lane.run.result.cycles;
    ++lane.total_cycles;
    if (halted & lane_bit(l)) {
      lane.run.result.halted = true;
      lane.run.done = true;
    }
  }
  active &= ~halted;

  // ---- fetch ------------------------------------------------------------
  // Lockstep lanes sit at the same pc, so one table find() usually serves
  // the whole batch; the one-entry memo keeps that true across the loop.
  std::uint64_t memo_pc = ~std::uint64_t{0};
  const SimTableEntry* memo_entry = nullptr;
  bool memo_valid = false;
  for (std::uint64_t m = active; m != 0; m &= m - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(m));
    Lane& lane = lanes_d_[l];
    Slot& head = lane.slots[0];
    if (head.valid) continue;
    const std::uint64_t pc = states_[l].pc();
    unsigned words = 0;
    try {
      if (dirty & lane_bit(l)) {
        backends_[l]->issue(pc, *head.work, words);
      } else {
        if (!memo_valid || pc != memo_pc) {
          memo_pc = pc;
          memo_entry = table_->find(pc);
          memo_valid = true;
        }
        backends_[l]->issue_resolved(memo_entry, *head.work, words);
      }
    } catch (const SimError& e) {
      fail_lane(l, e);
      active &= ~lane_bit(l);
      continue;
    }
    head.valid = true;
    head.executed = false;
    head.stall = 0;
    head.pc = pc;
    states_[l].set_pc(pc + words);
    ++lane.run.result.fetches;
  }

  // ---- per-lane watchdog limits -----------------------------------------
  // Checked at the same clean cycle boundary as the sequential engine; an
  // expiring lane retires from the batch with the engine's recoverable
  // error instead of throwing, so the rest of the batch keeps running.
  for (std::uint64_t m = active; m != 0; m &= m - 1) {
    const unsigned l = static_cast<unsigned>(std::countr_zero(m));
    Lane& lane = lanes_d_[l];
    if (lane.run.result.packets_retired == retired_before[l]) {
      ++lane.stuck;
    } else {
      lane.stuck = 0;
    }
    if (limits.watchdog_cycles != 0 &&
        lane.run.result.cycles >= limits.watchdog_cycles) {
      retire_watchdog(l, "watchdog: cycle limit " +
                             std::to_string(limits.watchdog_cycles) +
                             " exceeded without the program halting");
      continue;
    }
    if (limits.max_stuck_cycles != 0 &&
        lane.stuck >= limits.max_stuck_cycles) {
      retire_watchdog(l, "watchdog: " + std::to_string(lane.stuck) +
                             " consecutive cycles without a retiring packet "
                             "(livelocked or deadlocked pipeline)");
    }
  }
}

EngineCheckpoint BatchedSimulator::save_lane_checkpoint(unsigned lane) const {
  if (lane >= lanes_)
    throw SimError("lane " + std::to_string(lane) + " out of range");
  const Lane& l = lanes_d_[lane];
  EngineCheckpoint cp;
  cp.state = states_[lane].save_storage();
  cp.total_cycles = l.total_cycles;
  cp.slots.resize(l.slots.size());
  for (std::size_t i = 0; i < l.slots.size(); ++i) {
    const Slot& slot = l.slots[i];
    EngineCheckpoint::SlotImage& image = cp.slots[i];
    image.pc = slot.pc;
    image.stall = slot.stall;
    image.valid = slot.valid;
    image.executed = slot.executed;
    if (slot.valid) backends_[lane]->save_work(*slot.work, image.work);
  }
  return cp;
}

void BatchedSimulator::restore_lane_checkpoint(unsigned lane,
                                               const EngineCheckpoint& cp) {
  if (lane >= lanes_)
    throw SimError("lane " + std::to_string(lane) + " out of range");
  Lane& l = lanes_d_[lane];
  if (cp.slots.size() != l.slots.size())
    throw SimError("checkpoint has " + std::to_string(cp.slots.size()) +
                   " pipeline slots, engine has " +
                   std::to_string(l.slots.size()) +
                   " (checkpoint from a different model?)");
  states_[lane].restore_storage(cp.state);
  // Restore rewinds program memory without architectural writes; the
  // guard's generations are monotonic, so conservatively re-stale every
  // translation (same as the sequential simulator's restore).
  if (guards_[lane]->attached()) guards_[lane]->bump_all();
  l.total_cycles = cp.total_cycles;
  for (std::size_t i = 0; i < l.slots.size(); ++i) {
    Slot& slot = l.slots[i];
    const EngineCheckpoint::SlotImage& image = cp.slots[i];
    slot.pc = image.pc;
    slot.stall = image.stall;
    slot.valid = image.valid;
    slot.executed = image.executed;
    if (image.valid) {
      backends_[lane]->restore_work(image.pc, image.work, *slot.work);
    } else {
      *slot.work = {};
    }
  }
}

BatchCheckpoint BatchedSimulator::save_checkpoint() const {
  BatchCheckpoint cp;
  cp.lanes.resize(lanes_);
  for (unsigned l = 0; l < lanes_; ++l) {
    cp.lanes[l].engine = save_lane_checkpoint(l);
    cp.lanes[l].run = lanes_d_[l].run;
  }
  return cp;
}

void BatchedSimulator::restore_checkpoint(const BatchCheckpoint& cp) {
  if (cp.lanes.size() != lanes_)
    throw SimError("batch checkpoint has " + std::to_string(cp.lanes.size()) +
                   " lanes, batch has " + std::to_string(lanes_));
  for (unsigned l = 0; l < lanes_; ++l) {
    restore_lane_checkpoint(l, cp.lanes[l].engine);
    lanes_d_[l].run = cp.lanes[l].run;
  }
}

}  // namespace lisasim
