// Simulation observers: tracing and profiling hooks raised by the pipeline
// engine. Observers are engine-level (backend-agnostic), so a trace taken
// on the interpretive simulator and one taken on a compiled simulator can
// be compared event-for-event — another face of the accuracy claim.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace lisasim {

struct SimCompileStats;
struct RecoveryEvent;  // resilience/supervisor.hpp

class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// A packet at `pc` entered the pipeline (end of `cycle`).
  virtual void on_fetch(std::uint64_t cycle, std::uint64_t pc) = 0;
  /// The packet fetched from `pc` executed its `stage` operations.
  virtual void on_execute(std::uint64_t cycle, int stage,
                          std::uint64_t pc) = 0;
  /// The packet fetched from `pc` left the pipeline.
  virtual void on_retire(std::uint64_t cycle, std::uint64_t pc) = 0;
  /// Younger packets were squashed by a flush raised at `stage`.
  virtual void on_flush(std::uint64_t cycle, int stage) = 0;
  /// A compiled simulator translated (or cache-fetched) a program; `stats`
  /// carries compile time, worker count and cache-hit flag. Default no-op:
  /// only levels with a simulation compiler raise it.
  virtual void on_compile(const SimCompileStats&) {}
  /// A RunSupervisor logged a recovery transition (fault fired, retry,
  /// level degradation, give-up). Raised supervisor-level, not
  /// engine-level: a supervised observer sees these without paying the
  /// per-cycle event cost (or standing the trace tier down). Default
  /// no-op.
  virtual void on_recovery(const RecoveryEvent&) {}
};

/// Streams a human-readable event trace. Pass a disassembly callback to
/// annotate fetches (typically wrapping disassemble_word + program memory).
class TraceObserver final : public SimObserver {
 public:
  using DisasmFn = std::function<std::string(std::uint64_t pc)>;

  explicit TraceObserver(std::ostream& out, DisasmFn disasm = nullptr,
                         std::uint64_t max_events = UINT64_MAX)
      : out_(&out), disasm_(std::move(disasm)), max_events_(max_events) {}

  void on_fetch(std::uint64_t cycle, std::uint64_t pc) override {
    if (!take_event()) return;
    *out_ << "cycle " << cycle << ": fetch   @" << pc;
    if (disasm_) *out_ << "  " << disasm_(pc);
    *out_ << "\n";
  }
  void on_execute(std::uint64_t cycle, int stage, std::uint64_t pc) override {
    if (!take_event()) return;
    *out_ << "cycle " << cycle << ": stage " << stage << " @" << pc << "\n";
  }
  void on_retire(std::uint64_t cycle, std::uint64_t pc) override {
    if (!take_event()) return;
    *out_ << "cycle " << cycle << ": retire  @" << pc << "\n";
  }
  void on_flush(std::uint64_t cycle, int stage) override {
    if (!take_event()) return;
    *out_ << "cycle " << cycle << ": flush below stage " << stage << "\n";
  }

 private:
  bool take_event() {
    if (events_ >= max_events_) return false;
    ++events_;
    return true;
  }

  std::ostream* out_;
  DisasmFn disasm_;
  std::uint64_t max_events_;
  std::uint64_t events_ = 0;
};

/// Aggregates execution statistics: per-address fetch counts (hot spots)
/// and flush/retire totals.
class ProfileObserver final : public SimObserver {
 public:
  void on_fetch(std::uint64_t, std::uint64_t pc) override {
    ++fetch_counts_[pc];
    ++total_fetches_;
  }
  void on_execute(std::uint64_t, int, std::uint64_t) override {}
  void on_retire(std::uint64_t, std::uint64_t) override { ++retires_; }
  void on_flush(std::uint64_t, int) override { ++flushes_; }

  const std::map<std::uint64_t, std::uint64_t>& fetch_counts() const {
    return fetch_counts_;
  }
  std::uint64_t total_fetches() const { return total_fetches_; }
  std::uint64_t retires() const { return retires_; }
  std::uint64_t flushes() const { return flushes_; }

  /// Top-`n` hottest fetch addresses, most frequent first.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> hottest(
      std::size_t n) const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(
        fetch_counts_.begin(), fetch_counts_.end());
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    if (entries.size() > n) entries.resize(n);
    return entries;
  }

  /// Render a hot-spot table; `disasm` may be null.
  std::string report(std::size_t top_n,
                     const TraceObserver::DisasmFn& disasm = nullptr) const;

 private:
  std::map<std::uint64_t, std::uint64_t> fetch_counts_;
  std::uint64_t total_fetches_ = 0;
  std::uint64_t retires_ = 0;
  std::uint64_t flushes_ = 0;
};

inline std::string ProfileObserver::report(
    std::size_t top_n, const TraceObserver::DisasmFn& disasm) const {
  std::string out = "address     fetches  share\n";
  for (const auto& [pc, count] : hottest(top_n)) {
    char line[128];
    std::snprintf(line, sizeof line, "%-10llu %8llu %5.1f%%",
                  static_cast<unsigned long long>(pc),
                  static_cast<unsigned long long>(count),
                  100.0 * static_cast<double>(count) /
                      static_cast<double>(total_fetches_ ? total_fetches_
                                                         : 1));
    out += line;
    if (disasm) out += "  " + disasm(pc);
    out += "\n";
  }
  return out;
}

}  // namespace lisasim
