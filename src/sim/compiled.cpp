// Guarded-execution paths of the compiled backend: stale-packet detection,
// in-place micro-recompile, tree-walk fallback, and in-flight packet
// serialization for checkpoints. Kept out of line — these run only after
// the program wrote its own text (or around a checkpoint), never on the
// clean hot path.
#include "sim/compiled.hpp"

namespace lisasim {

const std::shared_ptr<const PatchedPacket>& CompiledBackend::patch_for(
    std::uint64_t pc) {
  auto it = patches_.find(pc);
  if (it == patches_.end() ||
      it->second->stamp != guard_->span_stamp(pc, it->second->stamp_words)) {
    std::shared_ptr<const PatchedPacket> patch = compile_packet_from_state(
        *model_, *decoder_, specializer_, *state_, pc,
        level_ == SimLevel::kCompiledStatic, *guard_);
    // The shared scratch must fit the largest program of table and patches.
    if (patch->arena.max_temps() >
        static_cast<std::int32_t>(temps_.size()))
      temps_.resize(static_cast<std::size_t>(patch->arena.max_temps()), 0);
    it = patches_.insert_or_assign(pc, std::move(patch)).first;
    ++guard_stats_.recompiles;
  }
  return it->second;
}

void CompiledBackend::guarded_issue(std::uint64_t pc, Work& out,
                                    unsigned& words) {
  out.patch.reset();
  out.fallback.reset();
  const SimTableEntry* entry = table_->find(pc);
  const unsigned span = entry && entry->valid ? entry->words : 1;
  if (guard_->span_clean(pc, span)) {
    // No covered write since translation: the original row is sound.
    // (Once a word is written its generation never returns to zero, so a
    // packet that was ever patched can never take this branch again.)
    if (entry && entry->valid) {
      out.error_id = -1;
      out.entry = entry;
      out.mask = entry->work_mask;
      words = entry->words;
      return;
    }
    issue_error(entry ? entry->error : out_of_table_error_, out, words);
    return;
  }
  ++guard_stats_.stale_issues;
  if (policy_ == GuardPolicy::kFallback) {
    // Execute this packet the way the interpretive oracle would: decode
    // from live memory, walk the trees.
    out.fallback = std::make_shared<TreeWalkWork>();
    treewalk_issue(*decoder_, *model_, *state_, pc, depth_, *out.fallback,
                   words);
    out.entry = nullptr;
    out.error_id = -1;
    out.mask = ~0u;  // the tree walk decides per stage what to run
    ++guard_stats_.fallbacks;
    return;
  }
  // kRecompile: run the simulation compiler's per-row recipe on just this
  // packet, against live memory. Works for any pc — including addresses
  // beyond the original table that the program wrote code into.
  const std::shared_ptr<const PatchedPacket>& patch = patch_for(pc);
  if (patch->entry.valid) {
    out.entry = &patch->entry;
    out.patch = patch;
    out.error_id = -1;
    out.mask = patch->entry.work_mask;
    words = patch->entry.words;
    return;
  }
  issue_error(patch->entry.error, out, words);
}

void CompiledBackend::save_work(const Work& work, WorkSnapshot& out) const {
  out = WorkSnapshot{};
  if (work.fallback) {
    treewalk_save(*work.fallback, out);
    return;
  }
  if (work.error_id >= 0)
    out.error = errors_[static_cast<std::size_t>(work.error_id)];
}

void CompiledBackend::restore_work(std::uint64_t pc,
                                   const WorkSnapshot& snapshot, Work& out) {
  out = Work{};
  if (snapshot.treewalk) {
    out.fallback = std::make_shared<TreeWalkWork>();
    treewalk_restore(*decoder_, *model_, *state_, pc, depth_, snapshot,
                     *out.fallback);
    out.mask = ~0u;
    return;
  }
  // Rebuild a compiled payload from the restored memory. The execution
  // mode must be preserved — a compiled in-flight packet has the
  // activations of its already-executed stages statically scheduled into
  // its later-stage programs, so switching it to a (freshly queued) tree
  // walk would drop them. Hence even under kFallback policy the restore
  // path re-translates stale packets instead of falling back.
  unsigned words = 0;
  if (guard_ != nullptr && guard_->writes() != 0) {
    const SimTableEntry* entry = table_->find(pc);
    const unsigned span = entry && entry->valid ? entry->words : 1;
    if (!guard_->span_clean(pc, span)) {
      const std::shared_ptr<const PatchedPacket>& patch = patch_for(pc);
      if (patch->entry.valid) {
        out.entry = &patch->entry;
        out.patch = patch;
        out.error_id = -1;
        out.mask = patch->entry.work_mask;
      } else {
        issue_error(patch->entry.error, out, words);
      }
      return;
    }
  }
  const SimTableEntry* entry = table_->find(pc);
  if (entry && entry->valid) {
    out.entry = entry;
    out.error_id = -1;
    out.mask = entry->work_mask;
    return;
  }
  issue_error(entry ? entry->error : out_of_table_error_, out, words);
}

}  // namespace lisasim
