#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace lisasim {

unsigned ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
  // Compact the consumed prefix while quiescent.
  queue_.clear();
  queue_head_ = 0;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(
          lock, [this] { return stop_ || queue_head_ < queue_.size(); });
      if (queue_head_ >= queue_.size()) return;  // stop_ and drained
      task = std::move(queue_[queue_head_]);
      ++queue_head_;
      // Long self-resubmitting chains (one task per scheduler quantum)
      // never pass through wait_idle's compaction, so the consumed prefix
      // of moved-from slots would grow without bound. Fold it eagerly once
      // it dominates the vector.
      if (queue_head_ >= 1024 && queue_head_ * 2 >= queue_.size()) {
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(queue_head_));
        queue_head_ = 0;
      }
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_shards(ThreadPool& pool, std::size_t total, std::size_t shards,
                     const std::function<void(const Shard&)>& fn) {
  shards = std::min(shards, total);
  if (shards <= 1) {
    if (total > 0) fn(Shard{0, 0, total});
    return;
  }
  const std::size_t base = total / shards;
  const std::size_t extra = total % shards;  // first `extra` shards get +1
  std::vector<std::exception_ptr> errors(shards);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t end = begin + base + (i < extra ? 1 : 0);
    pool.submit([&fn, &errors, i, begin, end] {
      try {
        fn(Shard{i, begin, end});
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    begin = end;
  }
  pool.wait_idle();
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);
}

}  // namespace lisasim
