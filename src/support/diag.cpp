#include "support/diag.hpp"

namespace lisasim {

std::string SourceLoc::to_string() const {
  return file + ":" + std::to_string(line) + ":" + std::to_string(column);
}

std::string Diagnostic::to_string() const {
  const char* tag = severity == Severity::kError     ? "error"
                    : severity == Severity::kWarning ? "warning"
                                                     : "note";
  return loc.to_string() + ": " + tag + ": " + message;
}

void DiagnosticEngine::report(Severity severity, SourceLoc loc,
                              std::string message) {
  if (severity == Severity::kError) ++error_count_;
  diagnostics_.push_back({severity, std::move(loc), std::move(message)});
}

std::string DiagnosticEngine::render() const {
  std::string out;
  for (const auto& d : diagnostics_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace lisasim
