// String interning. Identifiers that occur in machine descriptions and in
// decoded-instruction bindings are interned to small integers so that the
// simulators never compare strings on the hot path.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lisasim {

/// Opaque id of an interned string. Id 0 is reserved for the empty string.
using StringId = std::uint32_t;

class StringInterner {
 public:
  StringInterner() { intern(""); }

  StringId intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const StringId id = static_cast<StringId>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id of `s` if it has been interned, 0 otherwise. Useful for
  /// lookups that must not grow the table.
  StringId lookup(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? 0 : it->second;
  }

  std::string_view str(StringId id) const {
    assert(id < strings_.size());
    return strings_[id];
  }

  std::size_t size() const { return strings_.size(); }

 private:
  // std::deque never relocates elements, so string_view keys into ids_
  // remain valid as the table grows (std::vector would invalidate
  // small-string buffers on reallocation).
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, StringId> ids_;
};

}  // namespace lisasim
