// The one seeded pseudo-random generator shared by every randomized
// component: the fuzz program generator, the fuzz tests and the workload
// data generators. SplitMix64 (Steele/Lea/Flood) — a counter-based mixer
// with a full 2^64 period, no bad seeds (including 0) and statistically
// independent outputs for adjacent seeds, which matters for seed-sweep
// fuzzing where seeds 0..N must not produce correlated programs.
//
// range(lo, hi) is unbiased: the previous hand-rolled xorshift copies used
// `next() % n`, whose modulo bias skews operand distributions for spans
// that do not divide 2^64.
#pragma once

#include <cstdint>

namespace lisasim::support {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniform bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [lo, hi], inclusive, without modulo bias (rejection
  /// sampling over the largest multiple of the span).
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                               static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full domain
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % span;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// True with probability percent/100.
  bool chance(unsigned percent) {
    return range(0, 99) < static_cast<std::int64_t>(percent);
  }

 private:
  std::uint64_t state_;
};

}  // namespace lisasim::support
