// Diagnostics for the LISA front end, the assembler and the simulation
// compiler. Errors discovered while processing user-supplied text (model
// source, assembly source) are collected in a DiagnosticEngine so that a
// single run can report all problems; internal invariant violations use
// assertions/exceptions instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lisasim {

/// A position in an input text. Line/column are 1-based; `file` names the
/// buffer (model name, assembly file name).
struct SourceLoc {
  std::string file;
  unsigned line = 0;
  unsigned column = 0;

  std::string to_string() const;
};

enum class Severity : std::uint8_t { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;

  std::string to_string() const;
};

/// Collects diagnostics produced while translating one input. Cheap to pass
/// by reference through recursive-descent parsing and semantic analysis.
class DiagnosticEngine {
 public:
  void report(Severity severity, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::kError, std::move(loc), std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::kWarning, std::move(loc), std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::kNote, std::move(loc), std::move(message));
  }

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// All diagnostics rendered one per line — convenient for test failure
  /// messages and CLI error output.
  std::string render() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
};

}  // namespace lisasim
