#include "support/value.hpp"

namespace lisasim {

std::string ValueType::to_string() const {
  if (width == 1 && !is_signed) return "bool";
  return (is_signed ? "int" : "uint") + std::to_string(width);
}

std::optional<ValueType> ValueType::parse(std::string_view name) {
  if (name == "bool") return ValueType{1, false};
  bool is_signed = true;
  if (name.starts_with("uint")) {
    is_signed = false;
    name.remove_prefix(4);
  } else if (name.starts_with("int")) {
    name.remove_prefix(3);
  } else {
    return std::nullopt;
  }
  unsigned width = 0;
  if (name.empty() || name.size() > 2) return std::nullopt;
  for (char c : name) {
    if (c < '0' || c > '9') return std::nullopt;
    width = width * 10 + static_cast<unsigned>(c - '0');
  }
  if (width != 8 && width != 16 && width != 32 && width != 64)
    return std::nullopt;
  return ValueType{width, is_signed};
}

}  // namespace lisasim
