// Bit-manipulation primitives shared by the decoder generator, the
// assembler/encoder and the simulators. All routines operate on 64-bit
// words; instruction words wider than 64 bits are not supported (the widest
// modelled target uses 32-bit instruction words).
#pragma once

#include <cassert>
#include <cstdint>

namespace lisasim {

/// Mask with the low `width` bits set. `width` may be 0..64.
constexpr std::uint64_t low_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Extract `width` bits starting at bit `lsb` (bit 0 = least significant).
constexpr std::uint64_t extract_bits(std::uint64_t word, unsigned lsb,
                                     unsigned width) {
  return (word >> lsb) & low_mask(width);
}

/// Insert the low `width` bits of `value` into `word` at bit `lsb`.
constexpr std::uint64_t insert_bits(std::uint64_t word, unsigned lsb,
                                    unsigned width, std::uint64_t value) {
  const std::uint64_t mask = low_mask(width) << lsb;
  return (word & ~mask) | ((value << lsb) & mask);
}

/// Sign-extend the low `width` bits of `value` to a signed 64-bit integer.
constexpr std::int64_t sign_extend(std::uint64_t value, unsigned width) {
  if (width == 0 || width >= 64) return static_cast<std::int64_t>(value);
  const std::uint64_t sign_bit = std::uint64_t{1} << (width - 1);
  value &= low_mask(width);
  return static_cast<std::int64_t>((value ^ sign_bit) - sign_bit);
}

/// Truncate a signed value to the low `width` bits (two's complement wrap).
constexpr std::uint64_t truncate(std::int64_t value, unsigned width) {
  return static_cast<std::uint64_t>(value) & low_mask(width);
}

/// True if `value` fits in `width` bits as an unsigned quantity.
constexpr bool fits_unsigned(std::uint64_t value, unsigned width) {
  return (value & ~low_mask(width)) == 0;
}

/// True if `value` fits in `width` bits as a two's-complement quantity.
constexpr bool fits_signed(std::int64_t value, unsigned width) {
  if (width == 0) return value == 0;
  if (width >= 64) return true;
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

}  // namespace lisasim
