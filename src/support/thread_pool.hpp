// A small fixed-size worker pool for compile-time parallelism (simulation
// compilation shards, paper Fig. 6 amortization argument) and for the
// serve layer's run-quantum scheduler. The pool is deliberately simple: a
// mutex-protected FIFO of type-erased tasks and a blocking wait for
// quiescence. Simulation hot loops never touch it — it exists so one-shot
// translation work (decode + sequencing per program location) and
// session-quantum ticks can use all cores without perturbing run-time
// determinism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lisasim {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 means one worker per hardware thread.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. A task may submit follow-up work to the pool it runs
  /// on (the serve scheduler's requeue-after-quantum pattern): the
  /// in-flight count covers queued *and* running tasks under one lock, so
  /// a concurrent wait_idle() cannot observe a false quiescence between a
  /// task's resubmission and its own completion.
  void submit(std::function<void()> task);

  /// Block until every submitted task — including work submitted by tasks
  /// while they ran — has finished.
  void wait_idle();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Best-effort hardware concurrency, never 0.
  static unsigned hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::vector<std::function<void()>> queue_;  // FIFO via head index
  std::size_t queue_head_ = 0;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Shard description handed to parallel_shards workers.
struct Shard {
  std::size_t index = 0;  // shard number, 0-based, in program order
  std::size_t begin = 0;  // first element (inclusive)
  std::size_t end = 0;    // last element (exclusive)
};

/// Split [0, total) into `shards` contiguous, roughly equal ranges and run
/// `fn(shard)` for each on the pool, blocking until all finish. Shards are
/// contiguous and ordered so callers can merge results in program order —
/// output is independent of worker scheduling. If a shard throws, the
/// exception of the lowest-indexed failing shard is rethrown (again:
/// deterministic regardless of which worker faulted first). With `shards`
/// <= 1 (or `total` == 0) the single shard runs inline on the caller.
void parallel_shards(ThreadPool& pool, std::size_t total, std::size_t shards,
                     const std::function<void(const Shard&)>& fn);

}  // namespace lisasim
