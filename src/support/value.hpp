// Sized integer values: the scalar type system of the machine description
// language. Storage cells (registers, memory elements, locals) carry a
// ValueType (bit width + signedness); evaluation is performed on 64-bit
// integers and narrowed on assignment, mirroring C integer semantics that
// the BEHAVIOR sections use.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/bits.hpp"

namespace lisasim {

/// Type of a storage cell or declared local: width in bits (1..64) and
/// signedness. BEHAVIOR arithmetic happens at 64 bits; `canonicalize`
/// re-applies the type on store (wrap for unsigned, sign-extended
/// two's-complement wrap for signed).
struct ValueType {
  unsigned width = 32;
  bool is_signed = true;

  friend bool operator==(const ValueType&, const ValueType&) = default;

  /// Narrow a 64-bit evaluation result to this type, returning the value as
  /// it would be read back from a cell of this type.
  std::int64_t canonicalize(std::int64_t v) const {
    const std::uint64_t t = truncate(v, width);
    return is_signed ? sign_extend(t, width) : static_cast<std::int64_t>(t);
  }

  /// Raw bit pattern of a stored value (low `width` bits).
  std::uint64_t bits_of(std::int64_t v) const { return truncate(v, width); }

  std::string to_string() const;

  /// Parse a type name such as "int32", "uint16", "int8", "uint64", "bool".
  /// Returns std::nullopt for unknown names.
  static std::optional<ValueType> parse(std::string_view name);
};

}  // namespace lisasim
