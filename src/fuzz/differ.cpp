#include "fuzz/differ.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "asm/assembler.hpp"
#include "resilience/supervisor.hpp"
#include "serve/session_manager.hpp"
#include "sim/cached_interp.hpp"
#include "sim/checkpoint_io.hpp"
#include "sim/compiled.hpp"
#include "sim/interp.hpp"

namespace lisasim::fuzz {

namespace {

/// Level indices mirror tests/sim_test_util.hpp's run_all_levels order.
constexpr int kLevelCount = 6;
constexpr const char* kLevelNames[kLevelCount] = {"interp",  "cached",
                                                 "dynamic", "static",
                                                 "trace",   "native"};

/// The native level needs an out-of-process C++ compiler; without one the
/// tier is identical to trace, so sweeping it would only repeat level 4.
bool level_available(int level) {
  return level != 5 || NativeRuntime::toolchain_available();
}

/// Per-attempt sub-seed derivation (splitmix increment keeps attempts of
/// one seed far apart from the next seed's attempts).
std::uint64_t derive_seed(std::uint64_t seed, int attempt) {
  return seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(attempt);
}

template <typename Sim>
Outcome finish_run(Sim& sim, const RunLimits& limits) {
  Outcome o;
  try {
    o.result = sim.run(limits);
    o.kind = o.result.halted ? OutcomeKind::kHalted : OutcomeKind::kLimit;
    o.state = sim.state().dump_nonzero();
  } catch (const SimError& e) {
    o.kind = e.recoverable() ? OutcomeKind::kRecoverable
                             : OutcomeKind::kFatal;
    o.error = e.what();
    // Watchdog stops leave the engine consistent at a cycle boundary, so
    // the architectural state is comparable across levels. Fatal errors
    // may leave a half-executed packet behind; only the kind compares.
    if (e.recoverable()) o.state = sim.state().dump_nonzero();
  }
  return o;
}

Outcome run_level(const Model& model, int level, GuardPolicy policy,
                  const LoadedProgram& program, const RunLimits& limits) {
  try {
    switch (level) {
      case 0: {
        InterpSimulator sim(model);
        sim.load(program);
        return finish_run(sim, limits);
      }
      case 1: {
        CachedInterpSimulator sim(model);
        sim.set_guard_policy(policy);
        sim.load(program);
        return finish_run(sim, limits);
      }
      case 4: {
        CompiledSimulator sim(model, SimLevel::kTrace);
        TraceConfig eager;
        eager.hot_threshold = 1;
        eager.min_trace_cycles = 1;
        sim.set_trace_config(eager);
        sim.set_guard_policy(policy);
        sim.load(program);
        return finish_run(sim, limits);
      }
      case 5: {
        CompiledSimulator sim(model, SimLevel::kNative);
        TraceConfig eager;
        eager.hot_threshold = 1;
        eager.min_trace_cycles = 1;
        sim.set_trace_config(eager);
        // Deterministic dispatch: every run of a seed sees the same
        // (fully compiled) region set. -O0 — fuzz programs run for
        // microseconds, the compile dominates.
        NativeConfig native;
        native.blocking = true;
        native.opt_level = 0;
        sim.set_native_config(native);
        sim.set_guard_policy(policy);
        sim.load(program);
        return finish_run(sim, limits);
      }
      default: {
        CompiledSimulator sim(model, level == 2 ? SimLevel::kCompiledDynamic
                                                : SimLevel::kCompiledStatic);
        sim.set_guard_policy(policy);
        sim.load(program);
        return finish_run(sim, limits);
      }
    }
  } catch (const SimError& e) {
    // load()/compile failures count as outcomes too: a level that cannot
    // even load a program the oracle accepts is itself a divergence.
    Outcome o;
    o.kind = e.recoverable() ? OutcomeKind::kRecoverable
                             : OutcomeKind::kFatal;
    o.error = e.what();
    return o;
  }
}

std::string describe_result_diff(const RunResult& a, const RunResult& b) {
  std::string out;
  const auto field = [&](const char* name, std::uint64_t x, std::uint64_t y) {
    if (x == y) return;
    if (!out.empty()) out += ", ";
    out += std::string(name) + " " + std::to_string(x) + " vs " +
           std::to_string(y);
  };
  field("cycles", a.cycles, b.cycles);
  field("fetches", a.fetches, b.fetches);
  field("packets_retired", a.packets_retired, b.packets_retired);
  field("slots_retired", a.slots_retired, b.slots_retired);
  field("halted", a.halted ? 1 : 0, b.halted ? 1 : 0);
  return out;
}

/// nullopt when `other` agrees with the oracle; otherwise a description.
std::optional<std::string> compare_outcomes(const Outcome& oracle,
                                            const Outcome& other) {
  if (oracle.kind != other.kind)
    return "outcome kind: oracle " +
           std::string(outcome_kind_name(oracle.kind)) + " vs " +
           std::string(outcome_kind_name(other.kind)) +
           (other.error.empty() ? "" : " (" + other.error + ")") +
           (oracle.error.empty() ? "" : " [oracle: " + oracle.error + "]");
  switch (oracle.kind) {
    case OutcomeKind::kFatal:
      return std::nullopt;  // both fatal: agreement on kind is enough
    case OutcomeKind::kRecoverable:
      if (oracle.state != other.state)
        return std::string("state mismatch at watchdog stop");
      return std::nullopt;
    case OutcomeKind::kHalted:
    case OutcomeKind::kLimit: {
      if (!(oracle.result == other.result))
        return "run result: " +
               describe_result_diff(oracle.result, other.result);
      if (oracle.state != other.state)
        return std::string("final state mismatch");
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<LoadedProgram> assemble_quiet(const Model& model,
                                            const Decoder& decoder,
                                            const std::string& source) {
  try {
    return assemble_or_throw(model, decoder, source, "fuzz");
  } catch (const SimError&) {
    return std::nullopt;
  }
}

RunLimits make_limits(const FuzzOptions& opts) {
  RunLimits limits;
  limits.max_cycles = opts.max_cycles;
  limits.watchdog_cycles = opts.watchdog_cycles;
  limits.max_stuck_cycles = opts.max_stuck_cycles;
  return limits;
}

/// Binary-search the last cycle where the oracle and the diverging level
/// still agree on architectural state, by replaying both from scratch to
/// candidate boundaries. Watchdogs stay off so every boundary is
/// reachable.
std::uint64_t find_last_agree_cycle(const Model& model,
                                    const LoadedProgram& program, int level,
                                    GuardPolicy policy,
                                    std::uint64_t max_cycles) {
  const auto agree_at = [&](std::uint64_t c) {
    RunLimits limits;
    limits.max_cycles = c;
    const Outcome a = run_level(model, 0, GuardPolicy::kOff, program, limits);
    const Outcome b = run_level(model, level, policy, program, limits);
    return a.kind == b.kind && a.state == b.state;
  };
  std::uint64_t lo = 0;
  std::uint64_t hi = max_cycles;
  if (agree_at(hi)) return hi;  // divergence is in RunResult bookkeeping
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (agree_at(mid))
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

/// Run `program` under a RunSupervisor at the compiled-static tier with
/// `plan` injected, producing an Outcome comparable to the oracle's. A
/// supervised run that throws where the oracle completed surfaces as an
/// outcome-kind mismatch in compare_outcomes.
Outcome run_supervised(const Model& model, const LoadedProgram& program,
                       const FaultPlan& plan, GuardPolicy policy,
                       const RunLimits& limits) {
  Outcome o;
  try {
    SupervisorConfig config;
    config.level = SimLevel::kCompiledStatic;
    config.guard_policy = policy;
    config.faults = plan;
    RunSupervisor sup(model, program, config);
    const SupervisedRun run = sup.run(limits);
    o.result = run.result;
    o.kind = run.result.halted ? OutcomeKind::kHalted : OutcomeKind::kLimit;
    o.state = sup.state().dump_nonzero();
  } catch (const SimError& e) {
    o.kind = e.recoverable() ? OutcomeKind::kRecoverable
                             : OutcomeKind::kFatal;
    o.error = e.what();
  }
  return o;
}

/// One serve-sweep divergence: which session disagreed and how.
struct ServeDiff {
  std::string policy;       // guard_policy_name() of the offending session
  std::string description;  // session identity + compare_outcomes text
};

/// Run `sessions` concurrent copies of `program` through a SessionManager
/// — levels cycling over the table-backed tiers, deliberately small run
/// quanta so every session crosses many scheduler slices, and (for three
/// or more sessions) a resident cap that forces LRU eviction/rehydration
/// through the on-disk session-checkpoint format — then hold every
/// session's report to the oracle outcome, bit for bit. Gating the sweep
/// on a completed oracle (halted / cycle-limit) is what makes that exact:
/// a completed oracle means no stuck-streak fired, and serve's quantum
/// slicing can only make stuck stops rarer, never change a completed
/// run's result (the watchdog is rebased to absolute cycles).
std::optional<ServeDiff> run_serve_sweep(const Model& model,
                                         const LoadedProgram& program,
                                         bool has_smc, unsigned sessions,
                                         std::uint64_t quantum,
                                         const RunLimits& limits,
                                         const Outcome& oracle) {
  namespace fs = std::filesystem;
  static constexpr SimLevel kSweepLevels[] = {
      SimLevel::kDecodeCached, SimLevel::kCompiledDynamic,
      SimLevel::kCompiledStatic, SimLevel::kTrace};
  ServeConfig cfg;
  cfg.threads = std::min(4u, sessions);
  cfg.quantum_cycles = quantum;
  fs::path evict_dir;
  if (sessions >= 3) {
    evict_dir = fs::temp_directory_path() /
                ("lisasim-serve-fuzz-" + std::to_string(::getpid()));
    cfg.max_resident = sessions - 1;
    cfg.evict_dir = evict_dir.string();
  }
  std::optional<ServeDiff> found;
  try {
    SessionManager manager(cfg);
    const auto shared = std::make_shared<const LoadedProgram>(program);
    for (unsigned i = 0; i < sessions; ++i) {
      SessionSpec spec;
      spec.name = "s" + std::to_string(i);
      spec.model = &model;
      spec.program = shared;
      spec.level = kSweepLevels[i % std::size(kSweepLevels)];
      // SMC programs must run guarded (kOff legitimately diverges);
      // alternate the two guarded policies across sessions.
      spec.guard = has_smc ? (i % 2 == 0 ? GuardPolicy::kRecompile
                                         : GuardPolicy::kFallback)
                           : GuardPolicy::kOff;
      spec.limits = limits;
      manager.add_session(spec);
    }
    manager.run_all();
    for (const SessionReport& report : manager.reports()) {
      Outcome o;
      if (report.outcome == SessionOutcome::kError) {
        o.kind = report.recoverable ? OutcomeKind::kRecoverable
                                    : OutcomeKind::kFatal;
        o.error = report.error;
        o.state = report.state_dump;
      } else {
        o.kind = report.outcome == SessionOutcome::kHalted
                     ? OutcomeKind::kHalted
                     : OutcomeKind::kLimit;
        o.result = report.result;
        o.state = report.state_dump;
      }
      if (const auto diff = compare_outcomes(oracle, o)) {
        found = ServeDiff{
            guard_policy_name(report.guard),
            "session " + report.name + " (level " +
                sim_level_name(report.level) + ", guard " +
                guard_policy_name(report.guard) + ", " +
                std::to_string(report.quanta) + " quanta, " +
                std::to_string(report.rehydrations) + " rehydrations): " +
                *diff};
        break;
      }
    }
  } catch (const std::exception& e) {
    found = ServeDiff{"off", std::string("serve sweep threw: ") + e.what()};
  }
  if (!evict_dir.empty()) {
    std::error_code ec;
    fs::remove_all(evict_dir, ec);
  }
  return found;
}

std::string checkpoint_at(const Model& model, const LoadedProgram& program,
                          std::uint64_t cycle) {
  InterpSimulator sim(model);
  sim.load(program);
  if (cycle > 0) {
    RunLimits limits;
    limits.max_cycles = cycle;
    sim.run(limits);
  }
  return serialize_checkpoint(sim.save_checkpoint());
}

// ---- greedy program minimizer ---------------------------------------------

/// One deletable unit of a generated program: an instruction line plus its
/// `||` continuations, or a `.data` directive plus its `.word`/`.space`
/// initializer lines. Deleting an instruction unit keeps its label as a
/// label-only line so branch targets elsewhere still resolve (they then
/// bind to the next emitted unit).
struct SourceUnit {
  std::vector<std::string> lines;
  std::string label;  // "L<n>" for instruction units, else empty
};

bool is_continuation(std::string_view line) {
  const std::size_t p = line.find_first_not_of(" \t");
  if (p == std::string_view::npos) return true;  // blank: glue to previous
  const std::string_view body = line.substr(p);
  return body.rfind("||", 0) == 0 || body.rfind(".word", 0) == 0 ||
         body.rfind(".space", 0) == 0;
}

std::vector<SourceUnit> split_units(const std::string& source) {
  std::vector<SourceUnit> units;
  std::size_t pos = 0;
  while (pos < source.size()) {
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string::npos) eol = source.size();
    std::string line = source.substr(pos, eol - pos);
    pos = eol + 1;
    if (!units.empty() && is_continuation(line)) {
      units.back().lines.push_back(std::move(line));
      continue;
    }
    SourceUnit unit;
    const std::size_t colon = line.find(':');
    const std::size_t sp = line.find_first_of(" \t");
    if (colon != std::string::npos && (sp == std::string::npos || colon < sp))
      unit.label = line.substr(0, colon);
    unit.lines.push_back(std::move(line));
    units.push_back(std::move(unit));
  }
  return units;
}

std::string join_units(const std::vector<SourceUnit>& units,
                       const std::vector<bool>& keep) {
  std::string out;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (keep[i]) {
      for (const std::string& line : units[i].lines) out += line + "\n";
    } else if (!units[i].label.empty()) {
      out += units[i].label + ":\n";
    }
  }
  return out;
}

int count_packets(const std::vector<SourceUnit>& units,
                  const std::vector<bool>& keep) {
  int n = 0;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (!keep[i] || units[i].label.empty()) continue;
    // A kept labeled line that carries an instruction is one packet.
    const std::string& first = units[i].lines.front();
    const std::size_t colon = first.find(':');
    if (first.find_first_not_of(" \t", colon + 1) != std::string::npos) ++n;
  }
  return n;
}

/// Shared divergence finishing for the level and resilience sweeps:
/// greedily minimize `d.source` against `reproduces` (when enabled) and
/// persist the repro bundle. `extra_meta` lines land in meta.txt — the
/// resilience sweep records its fault plan there so the bundle replays
/// the exact schedule.
template <typename Repro>
void finish_divergence(const Model& model, const LoadedProgram& loaded,
                       const FuzzOptions& opts, const Repro& reproduces,
                       const std::string& extra_meta, Divergence& d) {
  std::vector<SourceUnit> units = split_units(d.source);
  std::vector<bool> keep(units.size(), true);
  if (opts.minimize) {
    int budget = 300;
    bool shrunk = true;
    while (shrunk && budget > 0) {
      shrunk = false;
      for (std::size_t i = 0; i < units.size() && budget > 0; ++i) {
        if (!keep[i]) continue;
        keep[i] = false;
        --budget;
        if (reproduces(join_units(units, keep)))
          shrunk = true;
        else
          keep[i] = true;
      }
    }
    d.minimized = join_units(units, keep);
  }
  d.minimized_packets = count_packets(units, keep);

  if (!opts.repro_dir.empty()) {
    try {
      namespace fs = std::filesystem;
      const fs::path dir =
          fs::path(opts.repro_dir) /
          ("seed" + std::to_string(d.seed) + "_" + d.level + "_" + d.policy);
      fs::create_directories(dir);
      const auto write = [&](const char* name, const std::string& body) {
        std::ofstream out(dir / name, std::ios::binary);
        out << body;
      };
      write("program.asm", d.source);
      write("minimized.asm", d.minimized);
      write("checkpoint.txt", checkpoint_at(model, loaded,
                                            d.last_agree_cycle));
      std::string meta;
      meta += "target " + model.name + "\n";
      meta += "seed " + std::to_string(d.seed) + "\n";
      meta += "level " + d.level + "\n";
      meta += "policy " + d.policy + "\n";
      meta += "last_agree_cycle " + std::to_string(d.last_agree_cycle) +
              "\n";
      meta += "max_cycles " + std::to_string(opts.max_cycles) + "\n";
      meta += "minimized_packets " + std::to_string(d.minimized_packets) +
              "\n";
      meta += extra_meta;
      meta += "description " + d.description + "\n";
      write("meta.txt", meta);
      d.bundle_dir = dir.string();
    } catch (const std::exception&) {
      d.bundle_dir.clear();
    }
  }
}

}  // namespace

const char* outcome_kind_name(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kHalted: return "halted";
    case OutcomeKind::kLimit: return "cycle-limit";
    case OutcomeKind::kRecoverable: return "watchdog";
    case OutcomeKind::kFatal: return "fatal";
  }
  return "?";
}

DifferentialFuzzer::DifferentialFuzzer(const Model& model)
    : model_(model), decoder_(model), gen_(model) {}

GeneratedProgram DifferentialFuzzer::program_for_seed(
    std::uint64_t seed, const FuzzOptions& opts) const {
  GeneratedProgram first;
  for (int attempt = 0; attempt < std::max(1, opts.attempts_per_seed);
       ++attempt) {
    GeneratedProgram prog = gen_.generate(derive_seed(seed, attempt),
                                          opts.gen);
    if (attempt == 0) first = prog;
    const auto loaded = assemble_quiet(model_, decoder_, prog.source);
    if (!loaded) continue;
    const Outcome oracle =
        run_level(model_, 0, GuardPolicy::kOff, *loaded, make_limits(opts));
    if (oracle.kind != OutcomeKind::kFatal) return prog;
  }
  return first;
}

std::optional<Divergence> DifferentialFuzzer::run_seed(
    std::uint64_t seed, const FuzzOptions& opts, FuzzStats& stats) const {
  ++stats.seeds;
  const RunLimits limits = make_limits(opts);

  // Coverage-guided scheduling steers this seed's feature mix toward
  // whatever the campaign has under-hit so far. `stats.coverage` is only
  // updated after acceptance below, so every attempt of one seed draws
  // from the same weights.
  GenOptions gen_opts = opts.gen;
  if (opts.coverage_schedule)
    gen_opts.weights = schedule_weights(opts.gen.weights, stats.coverage);

  GeneratedProgram prog;
  std::optional<LoadedProgram> loaded;
  Outcome oracle;
  bool accepted = false;
  for (int attempt = 0; attempt < std::max(1, opts.attempts_per_seed);
       ++attempt) {
    prog = gen_.generate(derive_seed(seed, attempt), gen_opts);
    loaded = assemble_quiet(model_, decoder_, prog.source);
    if (!loaded) {
      ++stats.rejected;
      continue;
    }
    oracle = run_level(model_, 0, GuardPolicy::kOff, *loaded, limits);
    if (oracle.kind == OutcomeKind::kFatal) {
      // Usually a chaos-weighted operand escaping its bound; fatal
      // errors abort mid-packet, so cross-level state comparison is
      // meaningless. Reject and try the next attempt.
      ++stats.rejected;
      continue;
    }
    accepted = true;
    break;
  }
  if (!accepted) return std::nullopt;

  ++stats.programs;
  stats.coverage += prog.coverage;

  // SMC programs must run guarded: kOff executes stale translations by
  // design and legitimately disagrees with the interpretive oracle.
  std::vector<GuardPolicy> policies;
  if (!prog.has_smc) policies.push_back(GuardPolicy::kOff);
  policies.push_back(GuardPolicy::kRecompile);
  policies.push_back(GuardPolicy::kFallback);

  const bool corrupt_trace = opts.inject && opts.inject_seed == seed;
  for (const GuardPolicy policy : policies) {
    for (int level = 1; level < kLevelCount; ++level) {
      if (!level_available(level)) continue;
      Outcome other = run_level(model_, level, policy, *loaded, limits);
      if (corrupt_trace && level == 4)
        other.state += "\n<injected divergence>";
      const auto diff = compare_outcomes(oracle, other);
      if (!diff) continue;

      ++stats.divergences;
      Divergence d;
      d.seed = seed;
      d.level = kLevelNames[level];
      d.policy = guard_policy_name(policy);
      d.description = *diff;
      d.source = prog.source;
      d.minimized = prog.source;
      d.last_agree_cycle = find_last_agree_cycle(model_, *loaded, level,
                                                 policy, opts.max_cycles);

      // Reproduction predicate for the minimizer: the candidate must
      // assemble, stay non-fatal on the oracle, and still disagree at
      // the same level under the same policy.
      const auto reproduces = [&](const std::string& candidate) {
        const auto cand = assemble_quiet(model_, decoder_, candidate);
        if (!cand) return false;
        const Outcome o = run_level(model_, 0, GuardPolicy::kOff, *cand,
                                    limits);
        if (o.kind == OutcomeKind::kFatal) return false;
        Outcome v = run_level(model_, level, policy, *cand, limits);
        if (corrupt_trace && level == 4) v.state += "\n<injected divergence>";
        return compare_outcomes(o, v).has_value();
      };

      finish_divergence(model_, *loaded, opts, reproduces, "", d);
      return d;
    }
  }

  // Sixth sweep: supervised execution under seed-derived fault injection
  // must stay bit-identical to the unfaulted oracle. Gated on oracle
  // completion — a watchdog or fatal oracle outcome has no well-defined
  // unfaulted reference to hold the supervisor to.
  if (opts.resilience && (oracle.kind == OutcomeKind::kHalted ||
                          oracle.kind == OutcomeKind::kLimit)) {
    const GuardPolicy policy =
        prog.has_smc ? GuardPolicy::kRecompile : GuardPolicy::kOff;
    const std::uint64_t horizon =
        std::max<std::uint64_t>(2, oracle.result.cycles);
    const FaultPlan plan = FaultPlan::random(derive_seed(seed, 101), horizon,
                                             opts.resilience_faults);
    const Outcome other =
        run_supervised(model_, *loaded, plan, policy, limits);
    if (const auto diff = compare_outcomes(oracle, other)) {
      ++stats.divergences;
      Divergence d;
      d.seed = seed;
      d.level = "resilience";
      d.policy = guard_policy_name(policy);
      d.description = *diff + " [plan " + plan.describe() + "]";
      d.source = prog.source;
      d.minimized = prog.source;

      // Candidate must assemble, complete on the oracle, and still lose
      // bit-equality under the same fault plan (points past a shorter
      // candidate's horizon simply never fire).
      const auto reproduces = [&](const std::string& candidate) {
        const auto cand = assemble_quiet(model_, decoder_, candidate);
        if (!cand) return false;
        const Outcome o = run_level(model_, 0, GuardPolicy::kOff, *cand,
                                    limits);
        if (o.kind != OutcomeKind::kHalted && o.kind != OutcomeKind::kLimit)
          return false;
        const Outcome v = run_supervised(model_, *cand, plan, policy,
                                         limits);
        return compare_outcomes(o, v).has_value();
      };
      finish_divergence(model_, *loaded, opts, reproduces,
                        "fault_plan " + plan.describe() + "\n", d);
      return d;
    }
  }

  // Seventh sweep: N concurrent serve sessions of the program, quantum-
  // scheduled over shared tables with eviction churn, must each finish
  // bit-identical to the oracle. Same completion gate as the resilience
  // sweep (see run_serve_sweep for why that makes equality exact).
  if (opts.serve_sessions > 0 && (oracle.kind == OutcomeKind::kHalted ||
                                  oracle.kind == OutcomeKind::kLimit)) {
    // A small, odd quantum maximizes scheduler crossings without aligning
    // with generated loop periods.
    constexpr std::uint64_t kServeQuantum = 257;
    if (const auto serve_diff =
            run_serve_sweep(model_, *loaded, prog.has_smc,
                            opts.serve_sessions, kServeQuantum, limits,
                            oracle)) {
      ++stats.divergences;
      Divergence d;
      d.seed = seed;
      d.level = "serve";
      d.policy = serve_diff->policy;
      d.description = serve_diff->description;
      d.source = prog.source;
      d.minimized = prog.source;

      const auto reproduces = [&](const std::string& candidate) {
        const auto cand = assemble_quiet(model_, decoder_, candidate);
        if (!cand) return false;
        const Outcome o = run_level(model_, 0, GuardPolicy::kOff, *cand,
                                    limits);
        if (o.kind != OutcomeKind::kHalted && o.kind != OutcomeKind::kLimit)
          return false;
        return run_serve_sweep(model_, *cand, prog.has_smc,
                               opts.serve_sessions, kServeQuantum, limits, o)
            .has_value();
      };
      finish_divergence(
          model_, *loaded, opts, reproduces,
          "serve_sessions " + std::to_string(opts.serve_sessions) + "\n", d);
      return d;
    }
  }
  return std::nullopt;
}

}  // namespace lisasim::fuzz
