#include "fuzz/progen.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/bits.hpp"
#include "support/rng.hpp"

namespace lisasim::fuzz {

namespace {

using support::SplitMix64;

/// A coding field, identified by the operation that declares the LABEL and
/// the label slot. All field-level constraints are keyed this way so the
/// renderer can look them up while walking the SYNTAX tree.
struct FieldKey {
  OperationId op = -1;
  std::int32_t slot = -1;
  friend bool operator==(const FieldKey&, const FieldKey&) = default;
  friend bool operator<(const FieldKey& a, const FieldKey& b) {
    return a.op != b.op ? a.op < b.op : a.slot < b.slot;
  }
};

/// What a field means to the generated program, derived from the BEHAVIOR
/// trees. Ordered by precedence: when one field plays several parts in a
/// template, the strongest constraint wins.
enum class FieldRole : std::uint8_t {
  kFree,      // no constraint beyond the field width
  kRegIndex,  // indexes a register file that is only read
  kAddrPart,  // feeds address arithmetic (kept small and non-negative)
  kPoolBase,  // indexes a register file element used as an address base
  kRegWrite,  // indexes a register file element that is written
  kMemIndex,  // directly indexes a memory
};

struct FieldInfo {
  FieldRole role = FieldRole::kFree;
  ResourceId resource = -1;  // memory or register file, role-dependent
  std::uint64_t cap = 0;     // kMemIndex: exclusive bound from zext/sext
                             // truncation in the behavior; 0 = none
};

int role_rank(FieldRole r) { return static_cast<int>(r); }

/// How an operand operation (an alternative reachable through a GROUP
/// child) resolves to storage: either a scalar resource or an element of a
/// register file selected by a coding field of some descendant operation.
/// `steps` records the (child slot, alternative) path from the shape's
/// owner down to the resolving EXPRESSION.
struct Shape {
  ResourceId file = -1;
  bool is_file = false;
  OperationId leaf = -1;     // op whose EXPRESSION is file[field]
  std::int32_t idx_slot = -1;
  std::vector<std::pair<std::int32_t, OperationId>> steps;
};

/// A shape of a specific child slot: the chosen top alternative plus the
/// path within it.
struct ChildShape {
  OperationId alt = -1;
  Shape shape;
};

/// Captured "load a constant into a register" pattern: a template whose
/// whole behavior is one assignment of a (possibly sign/zero-extended)
/// immediate field into a register-file element. Used to build address
/// pools and to load label addresses for SMC patch sequences.
struct RecipeCapture {
  bool valid = false;
  bool via_child = false;  // destination is an operand child vs file[field]
  FieldKey dst_child;
  ResourceId file = -1;    // !via_child
  FieldKey dst_index;      // !via_child
  FieldKey imm;
  std::uint64_t max_value = 0;  // largest non-negative loadable value
};

/// A direct program-text access pattern: mem_fetch[base (+ sext(off))]
/// read into / written from an operand child. The raw material for
/// ProgramGuard-visible SMC patch sequences.
struct TextAccess {
  int tmpl = -1;
  FieldKey base_child;
  FieldKey off_field;   // op = -1 when the index is the bare base child
  FieldKey data_child;
};

/// Everything the analysis learned about one instruction template (one
/// alternative of the root's instruction GROUP).
struct TemplateInfo {
  OperationId op = -1;
  bool is_halt = false;
  bool is_branch = false;        // writes the program counter
  bool branch_targeted = false;  // PC target is a plain coding field
  FieldKey branch_target;
  unsigned branch_width = 0;     // width of the target field
  int branch_stage = 0;
  int pc_writes = 0;
  int uncond_pc_writes = 0;
  bool has_load = false;    // reads a non-fetch memory
  bool has_store = false;   // writes a non-fetch memory
  bool text_load = false;   // reads the fetch memory
  bool text_store = false;  // writes the fetch memory
  std::map<FieldKey, FieldInfo> fields;
  std::set<FieldKey> written_children;  // operand children that are written
  std::set<FieldKey> base_children;     // operands used as address bases
  std::vector<std::pair<ResourceId, int>> scalar_writes;  // (scalar, stage)
  int assign_count = 0;
  RecipeCapture recipe;
  std::optional<TextAccess> store_access;
  std::optional<TextAccess> load_access;

  bool inherently_cond() const { return pc_writes > 0 && uncond_pc_writes == 0; }
};

/// A usable per-register-file const-load recipe.
struct PoolRecipe {
  int tmpl = -1;
  bool via_child = false;
  FieldKey dst_child;
  int shape_idx = -1;  // into Analysis::child_shapes[dst_child]
  FieldKey dst_index;
  FieldKey imm;
  std::uint64_t max_value = 0;
};

/// Memoized computation of operand shapes from EXPRESSION sections.
class ShapeCache {
 public:
  explicit ShapeCache(const Model& m) : m_(m) {}

  const std::vector<Shape>& of(OperationId id) {
    auto it = memo_.find(id);
    if (it != memo_.end()) return it->second;
    memo_[id] = {};  // break recursion on (malformed) cyclic trees
    std::vector<Shape> shapes;
    const Operation& op = m_.op(id);
    std::vector<const Expr*> exprs;
    for (const auto& item : op.items) collect_exprs(*item, exprs);
    for (const Expr* e : exprs) add_shapes(id, *e, shapes);
    return memo_[id] = std::move(shapes);
  }

 private:
  static void collect_exprs(const OpItem& item,
                            std::vector<const Expr*>& out) {
    switch (item.kind) {
      case OpItem::Kind::kExpression:
        if (item.expr) out.push_back(item.expr.get());
        break;
      case OpItem::Kind::kIf:
        for (const auto& i : item.then_items) collect_exprs(*i, out);
        for (const auto& i : item.else_items) collect_exprs(*i, out);
        break;
      case OpItem::Kind::kSwitch:
        for (const auto& c : item.cases)
          for (const auto& i : c.items) collect_exprs(*i, out);
        break;
      default:
        break;
    }
  }

  void add_shapes(OperationId id, const Expr& e, std::vector<Shape>& out) {
    const Operation& op = m_.op(id);
    if (e.kind == ExprKind::kSym && e.sym.kind == SymKind::kResource) {
      const Resource& r = m_.resource(e.sym.index);
      if (!r.is_array()) {
        Shape s;
        s.file = r.id;
        out.push_back(std::move(s));
      }
    } else if (e.kind == ExprKind::kIndex &&
               e.sym.kind == SymKind::kResource && !e.children.empty() &&
               e.children[0]->kind == ExprKind::kSym &&
               e.children[0]->sym.kind == SymKind::kField) {
      const Resource& r = m_.resource(e.sym.index);
      if (r.kind == ast::ResourceKind::kRegisterFile) {
        Shape s;
        s.file = r.id;
        s.is_file = true;
        s.leaf = id;
        s.idx_slot = e.children[0]->sym.index;
        out.push_back(std::move(s));
      }
    } else if (e.kind == ExprKind::kSym && e.sym.kind == SymKind::kChild) {
      const ChildDecl& child =
          op.children[static_cast<std::size_t>(e.sym.index)];
      for (OperationId alt : child.alternatives) {
        for (const Shape& sub : of(alt)) {
          Shape s = sub;
          s.steps.insert(s.steps.begin(), {e.sym.index, alt});
          out.push_back(std::move(s));
        }
      }
    }
  }

  const Model& m_;
  std::map<OperationId, std::vector<Shape>> memo_;
};

std::uint64_t pow2(unsigned bits) {
  return bits >= 63 ? (std::uint64_t{1} << 62) : (std::uint64_t{1} << bits);
}

/// Largest value the assembler accepts for a field of this width
/// (fits_unsigned), used as the generic upper clamp.
std::int64_t field_max(unsigned width) {
  return static_cast<std::int64_t>(pow2(width) - 1);
}

bool is_plain_field(const Expr& e) {
  return e.kind == ExprKind::kSym && (e.sym.kind == SymKind::kField ||
                                      e.sym.kind == SymKind::kUpward);
}

/// sext(field, k) / zext(field, k) with a literal width. Returns the inner
/// field expression and fills `nonneg_cap` with the largest non-negative
/// value that survives the truncation.
const Expr* unwrap_extend(const Expr& e, std::uint64_t& nonneg_cap) {
  if (e.kind != ExprKind::kCall) return nullptr;
  if (e.intrinsic != Intrinsic::kSext && e.intrinsic != Intrinsic::kZext)
    return nullptr;
  if (e.children.size() != 2 || !is_plain_field(*e.children[0]) ||
      e.children[1]->kind != ExprKind::kIntLit)
    return nullptr;
  const auto k = static_cast<unsigned>(e.children[1]->value);
  nonneg_cap = e.intrinsic == Intrinsic::kZext
                   ? pow2(k)
                   : (k > 0 ? pow2(k - 1) : 1);
  return e.children[0].get();
}

}  // namespace

/// The full static analysis of a model: decorations, instruction
/// templates with field roles, operand shapes, const-load recipes,
/// text-access recipes and the derived capability flags. Built once per
/// generator; generate() only reads it.
struct ProgramGenerator::Analysis {
  const Model* m = nullptr;
  OperationId root = -1;
  std::int32_t insn_slot = -1;

  struct Decoration {
    std::int32_t slot = -1;
    OperationId default_alt = -1;        // the alternative rendering ""
    std::vector<OperationId> others;     // non-default alternatives
  };
  std::vector<Decoration> decorations;

  std::vector<TemplateInfo> templates;
  std::vector<int> branch_tmpls;  // targeted branches only
  std::vector<int> mem_tmpls;     // loads/stores (text stores excluded)
  std::vector<int> alu_tmpls;     // everything else except halt/branch
  int halt_tmpl = -1;
  unsigned min_branch_width = 64;

  std::map<FieldKey, std::vector<ChildShape>> child_shapes;
  std::map<ResourceId, PoolRecipe> recipes;
  std::set<ResourceId> pool_files;   // register files used as address bases
  std::set<ResourceId> addr_scalars; // scalars carrying addresses

  // SMC plan: one register file serving template/victim/data registers for
  // the load/store text-access pair. Unset when the model cannot patch its
  // own text through plain stores (e.g. c54x has no store to pmem).
  bool smc_ok = false;
  ResourceId smc_file = -1;
  TextAccess smc_store, smc_load;
  int smc_store_base_shape = -1, smc_store_data_shape = -1;
  int smc_load_base_shape = -1, smc_load_data_shape = -1;

  std::map<ResourceId, std::set<std::uint64_t>> reserved;  // per file
};

namespace {

/// Walks one template's subtree (behaviors, expressions, activations and
/// both arms of every conditional), resolving REFERENCEs upward through
/// the decode-tree stack, and fills a TemplateInfo. Address knowledge
/// (which scalars and register files carry addresses) accumulates in the
/// Analysis across templates; the caller re-scans to a fixed point.
class Scanner {
 public:
  Scanner(ProgramGenerator::Analysis& a, ShapeCache& shapes)
      : a_(a), m_(*a.m), shapes_(shapes) {}

  TemplateInfo scan_template(OperationId tmpl) {
    TemplateInfo t;
    t.op = tmpl;
    t_ = &t;
    stack_.clear();
    stack_.push_back(&m_.op(a_.root));
    const int root_stage = std::max(0, m_.op(a_.root).stage);
    stage_stack_.assign(1, root_stage);
    nondec_conds_ = 0;
    scan_op(tmpl, 0);
    return t;
  }

 private:
  struct Resolved {
    enum class Kind : std::uint8_t { kNone, kField, kChild, kResource };
    Kind kind = Kind::kNone;
    OperationId op = -1;      // kField/kChild: owning operation
    std::int32_t slot = -1;
    ResourceId res = -1;      // kResource
  };

  Resolved resolve(const SymRef& sym) const {
    Resolved r;
    const Operation* cur = stack_.back();
    switch (sym.kind) {
      case SymKind::kField:
        r = {Resolved::Kind::kField, cur->id, sym.index, -1};
        break;
      case SymKind::kChild:
        r = {Resolved::Kind::kChild, cur->id, sym.index, -1};
        break;
      case SymKind::kResource:
        r = {Resolved::Kind::kResource, -1, -1, sym.index};
        break;
      case SymKind::kUpward:
        for (std::size_t i = stack_.size(); i-- > 0;) {
          const Operation* op = stack_[i];
          if (op == cur) continue;
          if (int s = op->label_slot(sym.name_id); s >= 0)
            return {Resolved::Kind::kField, op->id,
                    static_cast<std::int32_t>(s), -1};
          if (int s = op->child_slot(sym.name_id); s >= 0)
            return {Resolved::Kind::kChild, op->id,
                    static_cast<std::int32_t>(s), -1};
        }
        break;
      default:
        break;
    }
    return r;
  }

  std::optional<FieldKey> plain_field(const Expr& e) const {
    if (!is_plain_field(e)) return std::nullopt;
    const Resolved r = resolve(e.sym);
    if (r.kind != Resolved::Kind::kField) return std::nullopt;
    return FieldKey{r.op, r.slot};
  }

  std::optional<FieldKey> child_ref(const Expr& e) const {
    if (e.kind != ExprKind::kSym) return std::nullopt;
    if (e.sym.kind != SymKind::kChild && e.sym.kind != SymKind::kUpward)
      return std::nullopt;
    const Resolved r = resolve(e.sym);
    if (r.kind != Resolved::Kind::kChild) return std::nullopt;
    return FieldKey{r.op, r.slot};
  }

  unsigned field_width(FieldKey k) const {
    return m_.op(k.op).labels[static_cast<std::size_t>(k.slot)].width;
  }

  void set_role(FieldKey k, FieldRole role, ResourceId res,
                std::uint64_t cap = 0) {
    FieldInfo& info = t_->fields[k];
    if (role_rank(role) > role_rank(info.role)) {
      info = {role, res, cap};
    } else if (role == info.role && role == FieldRole::kMemIndex && cap) {
      info.cap = info.cap ? std::min(info.cap, cap) : cap;
    }
  }

  /// Is this condition a bare reference to a root decoration child (a
  /// predicate guard)? Those make an instruction *predicable*, not
  /// inherently conditional.
  bool is_decoration_guard(const Expr& e) const {
    const auto c = child_ref(e);
    if (!c || c->op != a_.root) return false;
    for (const auto& d : a_.decorations)
      if (d.slot == c->slot) return true;
    return false;
  }

  int cur_stage() const { return stage_stack_.back(); }

  void scan_op(OperationId id, int depth) {
    if (depth > 24) return;  // decode trees are shallow; guard cycles
    const Operation& op = m_.op(id);
    stack_.push_back(&op);
    stage_stack_.push_back(op.stage >= 0 ? op.stage : cur_stage());
    for (const auto& item : op.items) scan_item(*item);
    for (const auto& child : op.children)
      for (OperationId alt : child.alternatives) scan_op(alt, depth + 1);
    stage_stack_.pop_back();
    stack_.pop_back();
  }

  void scan_item(const OpItem& item) {
    switch (item.kind) {
      case OpItem::Kind::kBehavior:
        for (const auto& s : item.stmts) scan_stmt(*s);
        break;
      case OpItem::Kind::kExpression:
        if (item.expr) walk_read(*item.expr);
        break;
      case OpItem::Kind::kIf:
        // Coding-time conditional: both arms are possible specializations.
        for (const auto& i : item.then_items) scan_item(*i);
        for (const auto& i : item.else_items) scan_item(*i);
        break;
      case OpItem::Kind::kSwitch:
        for (const auto& c : item.cases)
          for (const auto& i : c.items) scan_item(*i);
        break;
      case OpItem::Kind::kActivation:
        break;  // activated children are scanned via the child loop
    }
  }

  void scan_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kLocalDecl:
      case StmtKind::kExpr:
        if (s.value) walk_read(*s.value);
        break;
      case StmtKind::kIf: {
        const bool dec = s.value && is_decoration_guard(*s.value);
        if (s.value) walk_read(*s.value);
        nondec_conds_ += dec ? 0 : 1;
        for (const auto& b : s.then_body) scan_stmt(*b);
        for (const auto& b : s.else_body) scan_stmt(*b);
        nondec_conds_ -= dec ? 0 : 1;
        break;
      }
      case StmtKind::kAssign:
        handle_assign(s);
        break;
    }
  }

  void handle_assign(const Stmt& s) {
    if (!s.lhs || !s.value) return;
    walk_read(*s.value);
    capture_recipe(s);
    maybe_capture_text_load(s);
    const Expr& lhs = *s.lhs;
    if (lhs.kind == ExprKind::kSym) {
      const Resolved r = resolve(lhs.sym);
      if (r.kind == Resolved::Kind::kChild) {
        t_->written_children.insert({r.op, r.slot});
      } else if (r.kind == Resolved::Kind::kResource) {
        const Resource& res = m_.resource(r.res);
        if (res.id == m_.pc) {
          handle_pc_write(*s.value);
        } else if (!res.is_array()) {
          t_->scalar_writes.emplace_back(res.id, cur_stage());
          if (a_.addr_scalars.count(res.id)) mark_address(*s.value);
        }
      }
    } else if (lhs.kind == ExprKind::kIndex && !lhs.children.empty()) {
      if (lhs.sym.kind != SymKind::kResource) return;
      const Resource& res = m_.resource(lhs.sym.index);
      const Expr& idx = *lhs.children[0];
      if (res.kind == ast::ResourceKind::kMemory) {
        if (res.id == m_.fetch_memory) {
          t_->text_store = true;
          capture_text_store(idx, *s.value);
        } else {
          t_->has_store = true;
        }
        analyze_index(res, idx);
      } else if (res.kind == ast::ResourceKind::kRegisterFile) {
        if (auto k = plain_field(idx))
          set_role(*k, FieldRole::kRegWrite, res.id);
        else
          walk_read(idx);
        if (a_.pool_files.count(res.id)) mark_address(*s.value);
      }
    }
  }

  void handle_pc_write(const Expr& rhs) {
    ++t_->pc_writes;
    if (nondec_conds_ == 0) ++t_->uncond_pc_writes;
    t_->is_branch = true;
    t_->branch_stage = cur_stage();
    t_->scalar_writes.emplace_back(m_.pc, cur_stage());
    std::uint64_t cap = 0;
    const Expr* field = unwrap_extend(rhs, cap);
    if (!field && is_plain_field(rhs)) field = &rhs;
    if (field && !t_->branch_targeted) {
      if (auto k = plain_field(*field)) {
        t_->branch_targeted = true;
        t_->branch_target = *k;
        t_->branch_width = field_width(*k);
      }
    }
  }

  /// Classify the index expression of a memory access.
  void analyze_index(const Resource& mem, const Expr& idx) {
    std::uint64_t cap = 0;
    if (const Expr* inner = unwrap_extend(idx, cap)) {
      if (auto k = plain_field(*inner)) {
        set_role(*k, FieldRole::kMemIndex, mem.id, std::min(cap, mem.size));
        return;
      }
    }
    if (auto k = plain_field(idx)) {
      set_role(*k, FieldRole::kMemIndex, mem.id, mem.size);
      return;
    }
    mark_address(idx);
  }

  /// The expression contributes to an address: small fields, pooled base
  /// registers, and propagate through scalars (fixed point across scans).
  void mark_address(const Expr& e) {
    std::uint64_t cap = 0;
    if (const Expr* inner = unwrap_extend(e, cap)) {
      if (auto k = plain_field(*inner)) {
        set_role(*k, FieldRole::kAddrPart, -1);
        return;
      }
    }
    if (auto k = plain_field(e)) {
      set_role(*k, FieldRole::kAddrPart, -1);
      return;
    }
    if (auto c = child_ref(e)) {
      t_->base_children.insert(*c);
      for (const ChildShape& cs : shapes_of(*c))
        if (cs.shape.is_file) a_.pool_files.insert(cs.shape.file);
      return;
    }
    if (e.kind == ExprKind::kSym && e.sym.kind == SymKind::kResource) {
      const Resource& r = m_.resource(e.sym.index);
      if (!r.is_array()) a_.addr_scalars.insert(r.id);
      return;
    }
    if (e.kind == ExprKind::kIndex && e.sym.kind == SymKind::kResource) {
      const Resource& r = m_.resource(e.sym.index);
      if (r.kind == ast::ResourceKind::kRegisterFile &&
          !e.children.empty()) {
        a_.pool_files.insert(r.id);
        if (auto k = plain_field(*e.children[0]))
          set_role(*k, FieldRole::kPoolBase, r.id);
        return;
      }
    }
    for (const auto& c : e.children)
      if (c) mark_address(*c);
  }

  /// Generic read walk: memory loads, register-file index roles, halt.
  void walk_read(const Expr& e) {
    if (e.kind == ExprKind::kIndex && e.sym.kind == SymKind::kResource) {
      const Resource& res = m_.resource(e.sym.index);
      if (res.kind == ast::ResourceKind::kMemory && !e.children.empty()) {
        if (res.id == m_.fetch_memory)
          t_->text_load = true;
        else
          t_->has_load = true;
        analyze_index(res, *e.children[0]);
        return;
      }
      if (res.kind == ast::ResourceKind::kRegisterFile &&
          !e.children.empty()) {
        if (auto k = plain_field(*e.children[0]))
          set_role(*k, FieldRole::kRegIndex, res.id);
        walk_read(*e.children[0]);
        return;
      }
    }
    if (e.kind == ExprKind::kCall && e.intrinsic == Intrinsic::kHalt)
      t_->is_halt = true;
    for (const auto& c : e.children)
      if (c) walk_read(*c);
  }

  const std::vector<ChildShape>& shapes_of(FieldKey child) {
    auto it = a_.child_shapes.find(child);
    if (it != a_.child_shapes.end()) return it->second;
    std::vector<ChildShape> out;
    const Operation& op = m_.op(child.op);
    const ChildDecl& decl = op.children[static_cast<std::size_t>(child.slot)];
    for (OperationId alt : decl.alternatives)
      for (const Shape& s : shapes_.of(alt)) out.push_back({alt, s});
    return a_.child_shapes[child] = std::move(out);
  }

  void capture_recipe(const Stmt& s) {
    TemplateInfo& t = *t_;
    if (++t.assign_count > 1 || nondec_conds_ > 0) {
      t.recipe.valid = false;
      return;
    }
    RecipeCapture r;
    const Expr& lhs = *s.lhs;
    if (auto c = child_ref(lhs)) {
      r.via_child = true;
      r.dst_child = *c;
    } else if (lhs.kind == ExprKind::kIndex &&
               lhs.sym.kind == SymKind::kResource && !lhs.children.empty()) {
      const Resource& res = m_.resource(lhs.sym.index);
      if (res.kind != ast::ResourceKind::kRegisterFile) return;
      auto k = plain_field(*lhs.children[0]);
      if (!k) return;
      r.file = res.id;
      r.dst_index = *k;
    } else {
      return;
    }
    std::uint64_t cap = 0;
    const Expr* imm = unwrap_extend(*s.value, cap);
    if (!imm && is_plain_field(*s.value)) imm = s.value.get();
    if (!imm) return;
    auto k = plain_field(*imm);
    if (!k) return;
    r.imm = *k;
    const std::uint64_t wmax = pow2(field_width(*k));
    r.max_value = (cap ? std::min(cap, wmax) : wmax) - 1;
    r.valid = true;
    t.recipe = r;
  }

  void capture_text_store(const Expr& idx, const Expr& value) {
    auto access = match_text_index(idx);
    if (!access) return;
    auto data = child_ref(value);
    if (!data) return;
    access->data_child = *data;
    if (!t_->store_access) t_->store_access = *access;
  }

 public:
  /// Called from handle_assign for `child = fetchmem[...]` loads; public so
  /// the per-statement hook below can live with the other capture logic.
  void maybe_capture_text_load(const Stmt& s) {
    if (!s.lhs || !s.value) return;
    auto data = child_ref(*s.lhs);
    if (!data) return;
    const Expr& rhs = *s.value;
    if (rhs.kind != ExprKind::kIndex || rhs.sym.kind != SymKind::kResource ||
        rhs.children.empty())
      return;
    if (m_.resource(rhs.sym.index).id != m_.fetch_memory) return;
    auto access = match_text_index(*rhs.children[0]);
    if (!access) return;
    access->data_child = *data;
    if (!t_->load_access) t_->load_access = *access;
  }

 private:
  std::optional<TextAccess> match_text_index(const Expr& idx) {
    TextAccess a;
    a.off_field = {-1, -1};
    if (auto base = child_ref(idx)) {
      a.base_child = *base;
      return a;
    }
    if (idx.kind == ExprKind::kBinary && idx.bin_op == BinOp::kAdd &&
        idx.children.size() == 2) {
      for (int i = 0; i < 2; ++i) {
        auto base = child_ref(*idx.children[i]);
        if (!base) continue;
        const Expr& other = *idx.children[1 - i];
        std::uint64_t cap = 0;
        const Expr* field = unwrap_extend(other, cap);
        if (!field && is_plain_field(other)) field = &other;
        if (!field) continue;
        auto off = plain_field(*field);
        if (!off) continue;
        a.base_child = *base;
        a.off_field = *off;
        return a;
      }
    }
    return std::nullopt;
  }

  ProgramGenerator::Analysis& a_;
  const Model& m_;
  ShapeCache& shapes_;
  TemplateInfo* t_ = nullptr;
  std::vector<const Operation*> stack_;
  std::vector<int> stage_stack_;
  int nondec_conds_ = 0;
};

}  // namespace

namespace {

bool subtree_has_behavior(const Model& m, OperationId id,
                          std::map<OperationId, bool>& memo, int depth) {
  if (depth > 24) return false;
  auto it = memo.find(id);
  if (it != memo.end()) return it->second;
  memo[id] = false;
  const Operation& op = m.op(id);
  bool result = op.has_behavior;
  for (const auto& child : op.children)
    for (OperationId alt : child.alternatives)
      result = result || subtree_has_behavior(m, alt, memo, depth + 1);
  return memo[id] = result;
}

bool renders_empty(const Model& m, OperationId id) {
  for (const auto& e : m.op(id).syntax) {
    if (e.kind != SyntaxElem::Kind::kLiteral) return false;
    for (char c : e.text)
      if (c != ' ') return false;
  }
  return true;
}

const std::vector<ChildShape>& ensure_shapes(ProgramGenerator::Analysis& a,
                                             ShapeCache& sc, FieldKey child) {
  auto it = a.child_shapes.find(child);
  if (it != a.child_shapes.end()) return it->second;
  std::vector<ChildShape> out;
  const ChildDecl& decl =
      a.m->op(child.op).children[static_cast<std::size_t>(child.slot)];
  for (OperationId alt : decl.alternatives)
    for (const Shape& s : sc.of(alt)) out.push_back({alt, s});
  return a.child_shapes[child] = std::move(out);
}

int shape_for_file(const std::vector<ChildShape>& shapes, ResourceId file) {
  for (std::size_t i = 0; i < shapes.size(); ++i)
    if (shapes[i].shape.is_file && shapes[i].shape.file == file)
      return static_cast<int>(i);
  return -1;
}

void build_analysis(ProgramGenerator::Analysis& a, const Model& m) {
  a.m = &m;
  a.root = m.root;
  if (m.root < 0) throw SimError("fuzz: model has no root instruction");
  ShapeCache shapes(m);

  // Root children: the instruction group (first child with behavior in its
  // subtree) and the decoration groups (behavior-free groups with a
  // neutral, empty-rendering default such as the c62x p_always predicate).
  const Operation& root = m.op(m.root);
  std::map<OperationId, bool> beh_memo;
  for (std::size_t slot = 0; slot < root.children.size(); ++slot) {
    const ChildDecl& child = root.children[slot];
    bool any_beh = false;
    for (OperationId alt : child.alternatives)
      any_beh = any_beh || subtree_has_behavior(m, alt, beh_memo, 0);
    if (any_beh) {
      if (a.insn_slot < 0) a.insn_slot = static_cast<std::int32_t>(slot);
      continue;
    }
    if (!child.is_group || child.alternatives.size() < 2) continue;
    ProgramGenerator::Analysis::Decoration d;
    d.slot = static_cast<std::int32_t>(slot);
    for (OperationId alt : child.alternatives) {
      if (d.default_alt < 0 && renders_empty(m, alt))
        d.default_alt = alt;
      else
        d.others.push_back(alt);
    }
    if (d.default_alt >= 0 && !d.others.empty())
      a.decorations.push_back(std::move(d));
  }
  if (a.insn_slot < 0)
    throw SimError("fuzz: model has no instruction group with behavior");

  // Scan every template, iterating until the global address knowledge
  // (pooled register files, address-carrying scalars) stops growing —
  // pipelined memory behaviors reveal their base registers only after the
  // intermediate address scalars are known.
  const ChildDecl& insn =
      root.children[static_cast<std::size_t>(a.insn_slot)];
  Scanner scanner(a, shapes);
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t before = a.pool_files.size() + a.addr_scalars.size();
    a.templates.clear();
    for (OperationId alt : insn.alternatives) {
      if (!m.op(alt).has_syntax) continue;
      a.templates.push_back(scanner.scan_template(alt));
    }
    if (iter > 0 && a.pool_files.size() + a.addr_scalars.size() == before)
      break;
  }
  if (a.templates.empty())
    throw SimError("fuzz: model has no renderable instruction templates");

  // Selection pools.
  for (std::size_t i = 0; i < a.templates.size(); ++i) {
    const TemplateInfo& t = a.templates[i];
    const int idx = static_cast<int>(i);
    // Pre-compute operand shapes the renderer will need.
    for (const FieldKey& k : t.written_children) ensure_shapes(a, shapes, k);
    for (const FieldKey& k : t.base_children) ensure_shapes(a, shapes, k);
    if (t.is_halt && !t.is_branch) {
      if (a.halt_tmpl < 0) a.halt_tmpl = idx;
      continue;
    }
    if (t.is_branch) {
      if (t.branch_targeted && t.branch_width >= 2) {
        a.branch_tmpls.push_back(idx);
        a.min_branch_width = std::min(a.min_branch_width, t.branch_width);
      }
      continue;  // indirect branches are not generated
    }
    if (t.text_store) continue;  // only used via planned patch sequences
    if (t.has_load || t.has_store || t.text_load)
      a.mem_tmpls.push_back(idx);
    else
      a.alu_tmpls.push_back(idx);
  }

  // Const-load recipes per register file; keep the widest immediate.
  for (std::size_t i = 0; i < a.templates.size(); ++i) {
    const TemplateInfo& t = a.templates[i];
    const RecipeCapture& rc = t.recipe;
    if (!rc.valid || t.assign_count != 1 || t.is_branch || t.is_halt ||
        t.has_load || t.has_store || t.text_load || t.text_store)
      continue;
    PoolRecipe r;
    r.tmpl = static_cast<int>(i);
    r.via_child = rc.via_child;
    r.dst_child = rc.dst_child;
    r.dst_index = rc.dst_index;
    r.imm = rc.imm;
    r.max_value = rc.max_value;
    const auto consider = [&a](ResourceId file, const PoolRecipe& cand) {
      auto it = a.recipes.find(file);
      if (it == a.recipes.end() || cand.max_value > it->second.max_value)
        a.recipes[file] = cand;
    };
    if (!rc.via_child) {
      consider(rc.file, r);
    } else {
      const auto& cs = ensure_shapes(a, shapes, rc.dst_child);
      for (std::size_t j = 0; j < cs.size(); ++j) {
        if (!cs[j].shape.is_file) continue;
        r.shape_idx = static_cast<int>(j);
        consider(cs[j].shape.file, r);
      }
    }
  }

  // SMC plan: a direct text-load/text-store pair plus one register file
  // (with a const-load recipe and three spare reserved registers) that all
  // four forced operands can name.
  std::optional<TextAccess> store, load;
  for (std::size_t i = 0; i < a.templates.size(); ++i) {
    if (a.templates[i].store_access && !store) {
      store = *a.templates[i].store_access;
      store->tmpl = static_cast<int>(i);
    }
    if (a.templates[i].load_access && !load) {
      load = *a.templates[i].load_access;
      load->tmpl = static_cast<int>(i);
    }
  }
  if (store && load) {
    const auto& sb = ensure_shapes(a, shapes, store->base_child);
    const auto& sd = ensure_shapes(a, shapes, store->data_child);
    const auto& lb = ensure_shapes(a, shapes, load->base_child);
    const auto& ld = ensure_shapes(a, shapes, load->data_child);
    for (const auto& [file, recipe] : a.recipes) {
      if (m.resource(file).size < 8) continue;
      const int isb = shape_for_file(sb, file), isd = shape_for_file(sd, file);
      const int ilb = shape_for_file(lb, file), ild = shape_for_file(ld, file);
      if (isb < 0 || isd < 0 || ilb < 0 || ild < 0) continue;
      a.smc_ok = true;
      a.smc_file = file;
      a.smc_store = *store;
      a.smc_load = *load;
      a.smc_store_base_shape = isb;
      a.smc_store_data_shape = isd;
      a.smc_load_base_shape = ilb;
      a.smc_load_data_shape = ild;
      break;
    }
  }

  // Reserved register-file elements: pool bases (top two elements when a
  // recipe can initialize them, element 0 — which resets to zero — when
  // not) and the three SMC scratch registers.
  for (ResourceId f : a.pool_files) {
    const Resource& res = m.resource(f);
    if (a.recipes.count(f) && res.size >= 4) {
      a.reserved[f].insert(res.size - 1);
      a.reserved[f].insert(res.size - 2);
    } else {
      a.reserved[f].insert(0);
    }
  }
  if (a.smc_ok) {
    const Resource& res = m.resource(a.smc_file);
    a.reserved[a.smc_file].insert(res.size - 3);
    a.reserved[a.smc_file].insert(res.size - 4);
    a.reserved[a.smc_file].insert(res.size - 5);
  }
}

}  // namespace

namespace {

/// Renders instructions by walking SYNTAX trees, honoring the field roles
/// and operand constraints of the template being rendered.
struct Renderer {
  const ProgramGenerator::Analysis& a;
  const Model& m;
  SplitMix64& rng;
  const GenOptions& opts;
  std::uint64_t bound;  // effective data-memory bound
  std::map<ResourceId, std::vector<std::pair<std::uint64_t, std::int64_t>>>
      pools;  // per file: (element index, preloaded value)
  const TemplateInfo* t = nullptr;
  bool predicated = false;  // last render chose a non-default decoration

  struct Ctx {
    std::map<FieldKey, std::string> field_text;
    std::map<FieldKey, OperationId> forced_alt;
    std::map<FieldKey, std::pair<const ChildShape*, std::int64_t>>
        forced_operand;
  };

  struct Forced {
    const Shape* shape = nullptr;
    std::size_t step = 0;
    std::int64_t index = 0;
  };

  std::string render_instruction(int tmpl_idx, Ctx ctx, bool plain,
                                 unsigned pred_weight) {
    t = &a.templates[static_cast<std::size_t>(tmpl_idx)];
    predicated = false;
    ctx.forced_alt[{a.root, a.insn_slot}] = t->op;
    for (const auto& d : a.decorations) {
      const FieldKey k{a.root, d.slot};
      if (ctx.forced_alt.count(k)) continue;
      OperationId alt = d.default_alt;
      if (!plain && pred_weight && rng.chance(pred_weight)) {
        alt = d.others[static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(d.others.size()) - 1))];
        predicated = true;
      }
      ctx.forced_alt[k] = alt;
    }
    return render_op(a.root, ctx, std::nullopt);
  }

  /// Render a const-load of `value_text` into element `idx` of `file`.
  std::string const_load(ResourceId file, std::uint64_t idx,
                         const std::string& value_text) {
    const PoolRecipe& r = a.recipes.at(file);
    Ctx ctx;
    ctx.field_text[r.imm] = value_text;
    if (r.via_child) {
      const ChildShape* cs =
          &a.child_shapes.at(r.dst_child)[static_cast<std::size_t>(
              r.shape_idx)];
      ctx.forced_operand[r.dst_child] = {cs,
                                         static_cast<std::int64_t>(idx)};
    } else {
      ctx.field_text[r.dst_index] = std::to_string(idx);
    }
    return render_instruction(r.tmpl, std::move(ctx), true, 0);
  }

  /// Render a text access with both operands pinned to scratch registers.
  std::string text_access(const TextAccess& ta, int base_shape,
                          int data_shape, std::uint64_t base_reg,
                          std::uint64_t data_reg) {
    Ctx ctx;
    ctx.forced_operand[ta.base_child] = {
        &a.child_shapes.at(ta.base_child)[static_cast<std::size_t>(
            base_shape)],
        static_cast<std::int64_t>(base_reg)};
    ctx.forced_operand[ta.data_child] = {
        &a.child_shapes.at(ta.data_child)[static_cast<std::size_t>(
            data_shape)],
        static_cast<std::int64_t>(data_reg)};
    if (ta.off_field.op >= 0) ctx.field_text[ta.off_field] = "0";
    return render_instruction(ta.tmpl, std::move(ctx), true, 0);
  }

  std::string render_op(OperationId id, const Ctx& ctx,
                        std::optional<Forced> forced) {
    const Operation& op = m.op(id);
    std::string out;
    for (const auto& elem : op.syntax) {
      switch (elem.kind) {
        case SyntaxElem::Kind::kLiteral:
          out += elem.text;
          break;
        case SyntaxElem::Kind::kField: {
          const FieldKey k{id, elem.slot};
          if (auto it = ctx.field_text.find(k);
              it != ctx.field_text.end()) {
            out += it->second;
          } else if (forced && forced->step == forced->shape->steps.size() &&
                     id == forced->shape->leaf &&
                     elem.slot == forced->shape->idx_slot) {
            out += std::to_string(forced->index);
          } else {
            const unsigned width =
                op.labels[static_cast<std::size_t>(elem.slot)].width;
            out += std::to_string(field_value(k, width, elem.field_signed));
          }
          break;
        }
        case SyntaxElem::Kind::kChild: {
          const FieldKey k{id, elem.slot};
          const ChildDecl& child =
              op.children[static_cast<std::size_t>(elem.slot)];
          if (forced && forced->step < forced->shape->steps.size() &&
              forced->shape->steps[forced->step].first == elem.slot) {
            out += render_op(
                forced->shape->steps[forced->step].second, ctx,
                Forced{forced->shape, forced->step + 1, forced->index});
            break;
          }
          if (auto it = ctx.forced_alt.find(k); it != ctx.forced_alt.end()) {
            out += render_op(it->second, ctx, std::nullopt);
            break;
          }
          if (auto it = ctx.forced_operand.find(k);
              it != ctx.forced_operand.end()) {
            const ChildShape* cs = it->second.first;
            out += render_op(cs->alt, ctx,
                             Forced{&cs->shape, 0, it->second.second});
            break;
          }
          const bool as_base = t->base_children.count(k) != 0;
          if (as_base || t->written_children.count(k)) {
            if (auto pick = pick_operand(k, as_base)) {
              out += render_op(pick->first->alt, ctx,
                               Forced{&pick->first->shape, 0, pick->second});
              break;
            }
          }
          const OperationId alt =
              child.alternatives[static_cast<std::size_t>(rng.range(
                  0,
                  static_cast<std::int64_t>(child.alternatives.size()) - 1))];
          out += render_op(alt, ctx, std::nullopt);
          break;
        }
      }
    }
    return out;
  }

  std::optional<std::pair<const ChildShape*, std::int64_t>> pick_operand(
      FieldKey k, bool as_base) {
    auto it = a.child_shapes.find(k);
    if (it == a.child_shapes.end() || it->second.empty())
      return std::nullopt;
    const std::vector<ChildShape>& shapes = it->second;
    if (as_base) {
      std::vector<const ChildShape*> cands;
      for (const ChildShape& cs : shapes)
        if (cs.shape.is_file && pools.count(cs.shape.file))
          cands.push_back(&cs);
      if (!cands.empty()) {
        const ChildShape* cs = cands[static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(cands.size()) - 1))];
        const auto& pool = pools.at(cs->shape.file);
        const auto& entry = pool[static_cast<std::size_t>(
            rng.range(0, static_cast<std::int64_t>(pool.size()) - 1))];
        return std::make_pair(cs, static_cast<std::int64_t>(entry.first));
      }
      for (const ChildShape& cs : shapes)
        if (cs.shape.is_file)
          return std::make_pair(&cs, std::int64_t{0});
      return std::make_pair(&shapes[0], std::int64_t{0});
    }
    const ChildShape* cs = &shapes[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(shapes.size()) - 1))];
    std::int64_t idx = 0;
    if (cs->shape.is_file) {
      const unsigned width =
          m.op(cs->shape.leaf)
              .labels[static_cast<std::size_t>(cs->shape.idx_slot)]
              .width;
      idx = reg_write_index(cs->shape.file, width);
    }
    return std::make_pair(cs, idx);
  }

  std::int64_t reg_write_index(ResourceId file, unsigned width) {
    const Resource& res = m.resource(file);
    const std::int64_t hi =
        static_cast<std::int64_t>(std::min<std::uint64_t>(
            res.size, pow2(width))) - 1;
    if (hi <= 0) return 0;
    const auto rit = a.reserved.find(file);
    if (rit == a.reserved.end()) return rng.range(0, hi);
    for (int tries = 0; tries < 16; ++tries) {
      const std::int64_t v = rng.range(0, hi);
      if (!rit->second.count(static_cast<std::uint64_t>(v))) return v;
    }
    for (std::int64_t v = 0; v <= hi; ++v)
      if (!rit->second.count(static_cast<std::uint64_t>(v))) return v;
    return 0;
  }

  std::int64_t field_value(FieldKey k, unsigned width, bool signed_syntax) {
    FieldInfo info;
    if (auto it = t->fields.find(k); it != t->fields.end()) info = it->second;
    const std::int64_t fmax = field_max(width);
    switch (info.role) {
      case FieldRole::kMemIndex: {
        const Resource& mem = m.resource(info.resource);
        std::uint64_t hard = std::min<std::uint64_t>(mem.size, pow2(width));
        if (info.cap) hard = std::min(hard, info.cap);
        const std::uint64_t soft = std::min<std::uint64_t>(hard, bound);
        const std::uint64_t hi =
            rng.chance(opts.weights.chaos) ? hard : soft;
        return hi ? rng.range(0, static_cast<std::int64_t>(hi) - 1) : 0;
      }
      case FieldRole::kRegWrite:
        return reg_write_index(info.resource, width);
      case FieldRole::kPoolBase: {
        auto it = pools.find(info.resource);
        if (it == pools.end() || it->second.empty()) return 0;
        const auto& entry = it->second[static_cast<std::size_t>(rng.range(
            0, static_cast<std::int64_t>(it->second.size()) - 1))];
        return static_cast<std::int64_t>(entry.first);
      }
      case FieldRole::kRegIndex: {
        const Resource& res = m.resource(info.resource);
        const std::int64_t hi =
            static_cast<std::int64_t>(std::min<std::uint64_t>(
                res.size, pow2(width))) - 1;
        return hi > 0 ? rng.range(0, hi) : 0;
      }
      case FieldRole::kAddrPart: {
        const std::int64_t soft = std::min<std::int64_t>(
            static_cast<std::int64_t>(bound / 4), fmax);
        const std::int64_t hard =
            std::min<std::int64_t>(static_cast<std::int64_t>(bound), fmax);
        return rng.range(0, rng.chance(opts.weights.chaos) ? hard : soft);
      }
      case FieldRole::kFree: {
        const std::int64_t pick = rng.range(0, 9);
        if (pick < 6) return rng.range(0, std::min<std::int64_t>(7, fmax));
        if (pick < 9) return rng.range(0, std::min<std::int64_t>(255, fmax));
        if (signed_syntax && width > 1) {
          const std::int64_t lo = -static_cast<std::int64_t>(
              std::min<std::uint64_t>(128, pow2(width - 1)));
          return rng.range(lo, std::min<std::int64_t>(4095, fmax));
        }
        return rng.range(0, std::min<std::int64_t>(4095, fmax));
      }
    }
    return 0;
  }
};

}  // namespace

GeneratedProgram ProgramGenerator::generate(std::uint64_t seed,
                                            const GenOptions& opts) const {
  const Analysis& a = *analysis_;
  const Model& m = *a.m;
  SplitMix64 rng(seed);
  GeneratedProgram out;
  Coverage& cov = out.coverage;
  cov.programs = 1;

  // Effective data bound: the configured bound, but inside every memory.
  std::uint64_t bound = std::max<std::uint64_t>(8, opts.mem_bound);
  for (const Resource& r : m.resources)
    if (r.kind == ast::ResourceKind::kMemory)
      bound = std::min(bound, r.size);

  Renderer ren{a, m, rng, opts, bound, {}};

  // Address pools: two preloaded elements per pooled register file. Files
  // without a const-load recipe fall back to element 0, which resets to 0.
  struct PoolLoad {
    ResourceId file;
    std::uint64_t idx;
    std::int64_t val;
  };
  std::vector<PoolLoad> preamble;
  for (ResourceId f : a.pool_files) {
    const Resource& res = m.resource(f);
    const auto rit = a.recipes.find(f);
    if (rit == a.recipes.end() || res.size < 4) {
      ren.pools[f] = {{0, 0}};
      continue;
    }
    const std::int64_t vmax = std::min<std::int64_t>(
        static_cast<std::int64_t>(bound - bound / 4) - 1,
        static_cast<std::int64_t>(rit->second.max_value));
    for (const std::uint64_t idx : {res.size - 1, res.size - 2}) {
      const std::int64_t val = vmax > 0 ? rng.range(0, vmax) : 0;
      ren.pools[f].push_back({idx, val});
      preamble.push_back({f, idx, val});
    }
  }

  const unsigned packet_max = std::max(1u, m.fetch.packet_max);

  // Program-size cap: branch-target field widths and the fetch memory.
  std::uint64_t cap_words = m.resource(m.fetch_memory).size;
  if (!a.branch_tmpls.empty())
    cap_words = std::min(cap_words, pow2(a.min_branch_width - 1));

  int n_body = static_cast<int>(
      rng.range(std::max(1, opts.min_packets),
                std::max(opts.min_packets, opts.max_packets)));
  bool do_smc = a.smc_ok && rng.chance(opts.weights.smc);
  const std::uint64_t fixed_units = preamble.size() + (do_smc ? 5 : 0) + 1;
  while (n_body > 1 &&
         fixed_units + static_cast<std::uint64_t>(n_body) * packet_max >
             cap_words)
    --n_body;
  if (do_smc &&
      a.recipes.at(a.smc_file).max_value <
          fixed_units + static_cast<std::uint64_t>(n_body) * packet_max)
    do_smc = false;

  // Unit schedule. Every unit gets a label L<unit-id> (its index in the
  // schedule), so branches and the SMC address loads can name any packet.
  struct UnitPlan {
    enum Kind : std::uint8_t { kPool, kBody, kPatch, kHalt, kTmpl } kind;
    int index;
  };
  std::vector<UnitPlan> schedule;
  for (std::size_t i = 0; i < preamble.size(); ++i)
    schedule.push_back({UnitPlan::kPool, static_cast<int>(i)});
  const int patch_pos =
      do_smc ? static_cast<int>(rng.range(0, n_body - 1)) : -1;
  std::vector<int> body_unit(static_cast<std::size_t>(n_body), -1);
  for (int i = 0; i < n_body; ++i) {
    if (i == patch_pos)
      for (int p = 0; p < 4; ++p) schedule.push_back({UnitPlan::kPatch, p});
    body_unit[static_cast<std::size_t>(i)] =
        static_cast<int>(schedule.size());
    schedule.push_back({UnitPlan::kBody, i});
  }
  // Fix up body unit ids now that patch units shifted them.
  {
    int id = 0;
    for (std::size_t u = 0; u < schedule.size(); ++u)
      if (schedule[u].kind == UnitPlan::kBody)
        body_unit[static_cast<std::size_t>(id++)] = static_cast<int>(u);
  }
  const int halt_unit = static_cast<int>(schedule.size());
  schedule.push_back({UnitPlan::kHalt, 0});
  const int tmpl_unit = static_cast<int>(schedule.size());
  if (do_smc) schedule.push_back({UnitPlan::kTmpl, 0});
  const int vict_pos =
      do_smc ? static_cast<int>(rng.range(patch_pos, n_body - 1)) : -1;

  // Template selection pools, with fallbacks for sparse models.
  std::vector<int> alu_list = a.alu_tmpls;
  if (alu_list.empty()) alu_list = a.mem_tmpls;
  if (alu_list.empty())
    alu_list.push_back(a.halt_tmpl >= 0 ? a.halt_tmpl : 0);
  std::vector<int> mem_list = a.mem_tmpls.empty() ? alu_list : a.mem_tmpls;

  const auto pick_from = [&rng](const std::vector<int>& list) {
    return list[static_cast<std::size_t>(
        rng.range(0, static_cast<std::int64_t>(list.size()) - 1))];
  };
  const auto note_template = [&](const TemplateInfo& ti, bool pred) {
    ++cov.instructions;
    if (ti.has_load || ti.text_load) ++cov.loads;
    if (ti.has_store) ++cov.stores;
    if (pred) ++cov.predicated;
  };
  const auto label_of = [](int u) { return "L" + std::to_string(u); };

  std::string text;
  int branch_shadow = 0;  // body/patch units still inside a branch shadow

  for (std::size_t u = 0; u < schedule.size(); ++u) {
    const UnitPlan& plan = schedule[u];
    std::string line;
    std::vector<std::string> extra;
    switch (plan.kind) {
      case UnitPlan::kPool: {
        const PoolLoad& pl = preamble[static_cast<std::size_t>(plan.index)];
        line = ren.const_load(pl.file, pl.idx, std::to_string(pl.val));
        note_template(a.templates[static_cast<std::size_t>(
                          a.recipes.at(pl.file).tmpl)],
                      false);
        break;
      }
      case UnitPlan::kPatch: {
        const Resource& fres = m.resource(a.smc_file);
        const std::uint64_t rt = fres.size - 3;
        const std::uint64_t rv = fres.size - 4;
        const std::uint64_t rd = fres.size - 5;
        switch (plan.index) {
          case 0:
            line = ren.const_load(a.smc_file, rt, label_of(tmpl_unit));
            break;
          case 1:
            line = ren.const_load(
                a.smc_file, rv,
                label_of(body_unit[static_cast<std::size_t>(vict_pos)]));
            break;
          case 2:
            line = ren.text_access(a.smc_load, a.smc_load_base_shape,
                                   a.smc_load_data_shape, rt, rd);
            ++cov.loads;
            break;
          case 3:
            line = ren.text_access(a.smc_store, a.smc_store_base_shape,
                                   a.smc_store_data_shape, rv, rd);
            ++cov.smc_patches;
            out.has_smc = true;
            break;
        }
        ++cov.instructions;
        if (branch_shadow > 0) {
          ++cov.delay_slot_fills;
          --branch_shadow;
        }
        break;
      }
      case UnitPlan::kBody: {
        const bool single = plan.index == vict_pos;
        Renderer::Ctx ctx;
        int first;
        bool force_pred = false;
        bool took_branch = false;
        bool backward = false;
        if (!a.branch_tmpls.empty() && n_body >= 2 &&
            rng.chance(opts.weights.branch)) {
          first = pick_from(a.branch_tmpls);
          const TemplateInfo& bt =
              a.templates[static_cast<std::size_t>(first)];
          backward = plan.index > 0 && rng.chance(opts.weights.backward);
          if (backward && !bt.inherently_cond()) {
            if (!a.decorations.empty())
              force_pred = true;  // predicate the loop-back edge
            else if (!rng.chance(25))
              backward = false;  // most unconditional edges aim forward
          }
          int target_unit;
          if (backward) {
            target_unit = body_unit[static_cast<std::size_t>(
                rng.range(0, plan.index - 1))];
          } else {
            const std::int64_t r = rng.range(plan.index + 1, n_body);
            target_unit = r == n_body
                              ? halt_unit
                              : body_unit[static_cast<std::size_t>(r)];
          }
          ctx.field_text[bt.branch_target] = label_of(target_unit);
          took_branch = true;
        } else {
          first = rng.chance(opts.weights.memory) ? pick_from(mem_list)
                                                  : pick_from(alu_list);
        }
        const TemplateInfo& ft = a.templates[static_cast<std::size_t>(first)];
        line = ren.render_instruction(first, std::move(ctx), false,
                                      force_pred ? 100
                                                 : opts.weights.predicate);
        note_template(ft, ren.predicated);
        if (took_branch) {
          ++cov.branches;
          if (backward) ++cov.backward_branches;
          if (ft.inherently_cond() || ren.predicated) ++cov.cond_branches;
          branch_shadow = ft.branch_stage;
        } else if (branch_shadow > 0) {
          ++cov.delay_slot_fills;
          --branch_shadow;
        }
        // Extend into a parallel packet, pre-checking structural hazards
        // (two slots writing one scalar resource in one stage).
        std::vector<const TemplateInfo*> in_packet{&ft};
        while (!single && packet_max > 1 &&
               in_packet.size() < packet_max &&
               rng.chance(opts.weights.parallel)) {
          int cand = -1;
          for (int tries = 0; tries < 4 && cand < 0; ++tries) {
            const int c = rng.chance(opts.weights.memory)
                              ? pick_from(mem_list)
                              : pick_from(alu_list);
            const TemplateInfo& ct =
                a.templates[static_cast<std::size_t>(c)];
            if (ct.is_branch || ct.is_halt) continue;
            bool conflict = false;
            for (const auto& [res, stage] : ct.scalar_writes)
              for (const TemplateInfo* pi : in_packet)
                for (const auto& [pres, pstage] : pi->scalar_writes)
                  conflict = conflict || (res == pres && stage == pstage);
            if (!conflict) cand = c;
          }
          if (cand < 0) break;
          const TemplateInfo& ct =
              a.templates[static_cast<std::size_t>(cand)];
          extra.push_back(ren.render_instruction(
              cand, {}, false, opts.weights.predicate));
          note_template(ct, ren.predicated);
          in_packet.push_back(&ct);
        }
        if (!extra.empty()) ++cov.parallel_packets;
        break;
      }
      case UnitPlan::kHalt:
        line = a.halt_tmpl >= 0
                   ? ren.render_instruction(a.halt_tmpl, {}, true, 0)
                   : ren.render_instruction(pick_from(alu_list), {}, true, 0);
        ++cov.instructions;
        break;
      case UnitPlan::kTmpl:
        line = ren.render_instruction(pick_from(alu_list), {}, true, 0);
        ++cov.instructions;
        break;
    }
    text += label_of(static_cast<int>(u)) + ": " + line + "\n";
    for (const std::string& e : extra) text += "        || " + e + "\n";
    ++cov.packets;
  }

  // Data sections: deterministic contents for every non-fetch memory.
  for (const Resource& r : m.resources) {
    if (r.kind != ast::ResourceKind::kMemory || r.id == m.fetch_memory)
      continue;
    const std::uint64_t n = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(std::max(0, opts.data_words)), r.size);
    if (n == 0) continue;
    text += "        .data " + r.name + " 0\n";
    std::string row;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::int64_t v;
      if (r.type.is_signed && r.type.width > 1) {
        const std::int64_t h =
            static_cast<std::int64_t>(pow2(r.type.width - 1));
        v = rng.range(-h, h - 1);
      } else {
        v = rng.range(0, field_max(r.type.width));
      }
      row += (row.empty() ? "" : ", ") + std::to_string(v);
      if ((i + 1) % 8 == 0 || i + 1 == n) {
        text += "        .word " + row + "\n";
        row.clear();
      }
    }
  }

  out.source = std::move(text);
  return out;
}

Coverage& Coverage::operator+=(const Coverage& o) {
  programs += o.programs;
  packets += o.packets;
  instructions += o.instructions;
  parallel_packets += o.parallel_packets;
  branches += o.branches;
  backward_branches += o.backward_branches;
  cond_branches += o.cond_branches;
  predicated += o.predicated;
  loads += o.loads;
  stores += o.stores;
  smc_patches += o.smc_patches;
  delay_slot_fills += o.delay_slot_fills;
  return *this;
}

FeatureWeights schedule_weights(const FeatureWeights& base,
                                const Coverage& seen) {
  // Weight w targets an observed rate of w% of `total`; when the campaign
  // so far sits below that, add the percentage-point deficit to the
  // weight. The clamp keeps every other feature drawable.
  const auto steer = [](unsigned w, std::uint64_t hits, std::uint64_t total) {
    if (total == 0) return w;
    const std::uint64_t observed_pct = hits * 100 / total;
    if (observed_pct >= w) return w;
    return std::min<unsigned>(95, w + static_cast<unsigned>(w - observed_pct));
  };
  FeatureWeights out = base;
  out.branch = steer(base.branch, seen.branches, seen.packets);
  out.backward = steer(base.backward, seen.backward_branches, seen.branches);
  out.predicate = steer(base.predicate, seen.predicated, seen.instructions);
  out.parallel = steer(base.parallel, seen.parallel_packets, seen.packets);
  out.memory = steer(base.memory, seen.loads + seen.stores,
                     seen.instructions);
  out.smc = steer(base.smc, seen.smc_patches, seen.programs);
  return out;  // chaos stays fixed: escapes are a hazard dial, not coverage
}

std::string Coverage::to_string() const {
  const auto line = [](const char* key, std::uint64_t v) {
    std::string s = "  ";
    s += key;
    s.append(s.size() < 20 ? 20 - s.size() : 1, ' ');
    return s + std::to_string(v) + "\n";
  };
  std::string out;
  out += line("programs", programs);
  out += line("packets", packets);
  out += line("instructions", instructions);
  out += line("parallel_packets", parallel_packets);
  out += line("branches", branches);
  out += line("backward_branches", backward_branches);
  out += line("cond_branches", cond_branches);
  out += line("predicated", predicated);
  out += line("loads", loads);
  out += line("stores", stores);
  out += line("smc_patches", smc_patches);
  out += line("delay_slot_fills", delay_slot_fills);
  return out;
}

ProgramGenerator::ProgramGenerator(const Model& model) {
  auto a = std::make_unique<Analysis>();
  build_analysis(*a, model);
  analysis_ = std::move(a);
}

ProgramGenerator::~ProgramGenerator() = default;

bool ProgramGenerator::supports_smc() const { return analysis_->smc_ok; }
bool ProgramGenerator::supports_predication() const {
  return !analysis_->decorations.empty();
}
bool ProgramGenerator::supports_branches() const {
  return !analysis_->branch_tmpls.empty();
}
bool ProgramGenerator::supports_packets() const {
  return analysis_->m->fetch.packet_max > 1;
}
std::size_t ProgramGenerator::instruction_templates() const {
  return analysis_->templates.size();
}

}  // namespace lisasim::fuzz
