// Differential fuzzer: assemble generated programs and run them through
// all five simulation levels (interpretive oracle, decode-cached,
// compiled-dynamic, compiled-static, hot-trace) under every applicable
// guard policy, comparing the full RunResult and final architectural
// state. A disagreement is a bug in one of the table-based tiers; the
// fuzzer then persists a self-contained repro bundle — the seed, the
// assembly source, a greedily minimized variant, and an EngineCheckpoint
// of the interpretive oracle at the last cycle where all levels still
// agree — so the failure can be replayed in a fresh process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "decode/decoder.hpp"
#include "fuzz/progen.hpp"
#include "sim/result.hpp"

namespace lisasim::fuzz {

/// How one simulation run ended. Watchdog stops (recoverable SimError)
/// and soft cycle-cap returns are legitimate outcomes for random
/// programs; only the *kind and resulting state* must agree across
/// levels, never whether the program was "correct".
enum class OutcomeKind : std::uint8_t {
  kHalted,       // run() returned with result.halted
  kLimit,        // run() returned at the soft max_cycles cap
  kRecoverable,  // watchdog threw a recoverable SimError
  kFatal,        // fatal SimError (bad access, decode failure, ...)
};

const char* outcome_kind_name(OutcomeKind kind);

struct Outcome {
  OutcomeKind kind = OutcomeKind::kHalted;
  RunResult result;   // meaningful for kHalted / kLimit
  std::string state;  // dump_nonzero(); empty for kFatal
  std::string error;  // SimError text for kRecoverable / kFatal
};

struct FuzzOptions {
  GenOptions gen;
  /// Soft cycle cap: non-halting programs are compared at this boundary.
  std::uint64_t max_cycles = 30000;
  /// Hard watchdog limits, forwarded to RunLimits (0 = disabled).
  std::uint64_t watchdog_cycles = 0;
  std::uint64_t max_stuck_cycles = 2048;
  /// Generation attempts per seed before the seed counts as rejected
  /// (a program that does not assemble or is fatal on the oracle).
  int attempts_per_seed = 16;
  /// Coverage-guided seed scheduling: before each seed, reweight the
  /// feature mix toward whatever the accumulated Coverage has under-hit
  /// so far (see schedule_weights). Deterministic for a fixed seed range
  /// consumed in order, so campaigns stay replayable.
  bool coverage_schedule = false;
  bool minimize = true;
  /// Where repro bundles land; empty disables bundle writing.
  std::string repro_dir = "fuzz-repros";
  /// Test hook: corrupt the trace-level state comparison for this seed,
  /// forcing a divergence through the bundle + minimizer machinery.
  bool inject = false;
  std::uint64_t inject_seed = 0;
  /// Sixth sweep mode: when the five levels agree and the oracle halted
  /// (or hit the soft cap), re-run the program under a RunSupervisor with
  /// a seed-derived FaultPlan and require the supervised run to stay
  /// bit-identical to the unfaulted oracle. A mismatch — or a supervised
  /// run that dies where the oracle completed — is a divergence at level
  /// "resilience".
  bool resilience = false;
  /// Faults per resilience run, drawn from the seed over the oracle's
  /// cycle horizon.
  unsigned resilience_faults = 3;
  /// Seventh sweep mode: when the levels agree and the oracle completed,
  /// run this many concurrent sessions of the program through a
  /// SessionManager (levels cycling over the table-backed tiers, small
  /// run quanta, LRU eviction/rehydration engaged) and require every
  /// session's report to stay bit-identical to the oracle. A mismatch is
  /// a divergence at level "serve". 0 = sweep off.
  unsigned serve_sessions = 0;
};

struct Divergence {
  std::uint64_t seed = 0;
  std::string level;  // "cached", "dynamic", "static", "trace", "resilience"
  std::string policy;       // guard_policy_name()
  std::string description;  // what disagreed, with both sides
  std::string source;       // full assembly source
  std::string minimized;    // greedily shrunk source (== source if off)
  int minimized_packets = 0;
  std::string bundle_dir;   // empty if bundle writing was disabled/failed
  std::uint64_t last_agree_cycle = 0;
};

struct FuzzStats {
  std::uint64_t seeds = 0;
  std::uint64_t programs = 0;  // accepted programs actually compared
  std::uint64_t rejected = 0;  // attempts dropped (assembly/oracle-fatal)
  std::uint64_t divergences = 0;
  Coverage coverage;
};

class DifferentialFuzzer {
 public:
  /// `model` is kept by reference and must outlive the fuzzer. Throws
  /// SimError if the model yields no renderable instructions.
  explicit DifferentialFuzzer(const Model& model);

  /// Fuzz one seed: generate (retrying within the seed on rejected
  /// programs), assemble, run every applicable guard policy across all
  /// five levels, and compare. On divergence, minimizes and writes a
  /// repro bundle per `opts`, and returns the report. Updates `stats`
  /// either way.
  std::optional<Divergence> run_seed(std::uint64_t seed,
                                     const FuzzOptions& opts,
                                     FuzzStats& stats) const;

  /// The generated program a seed maps to (first accepted attempt, or
  /// the raw first attempt if none assembles), for --print.
  GeneratedProgram program_for_seed(std::uint64_t seed,
                                    const FuzzOptions& opts) const;

  const ProgramGenerator& generator() const { return gen_; }

 private:
  const Model& model_;
  Decoder decoder_;
  ProgramGenerator gen_;
};

}  // namespace lisasim::fuzz
