// Retargetable random program generator, driven by the model data base.
//
// The generator is given nothing but a compiled Model. It walks the decode
// tree from the root operation's SYNTAX/CODING tables to enumerate the
// renderable instruction templates, and classifies every coding field and
// operand child by walking the BEHAVIOR/EXPRESSION trees of each template's
// subtree: which fields index memories (kept inside a configured bound),
// which index register files that are written (kept away from reserved
// base registers), which feed address arithmetic (kept small), which
// operations branch (targets rendered as labels), halt, access memory, or
// patch program text. Because everything is derived from the machine
// description, the same generator produces valid tinydsp, c54x and c62x
// programs — and programs for any future or generated model — with a
// weighted feature mix: branches (taken/not-taken/backward), predication
// (decoration groups such as the c62x predicate field), `||` parallel
// packets (bounded by FETCH PACKET and pre-checked against structural
// hazards), delay-slot fills, bounded memory traffic, and mid-run SMC
// patch sequences applied through ProgramGuard-visible stores.
//
// Programs are deterministic in (model, seed, options).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "model/model.hpp"

namespace lisasim::fuzz {

/// Weighted feature mix, in percent.
struct FeatureWeights {
  unsigned branch = 18;     // packets that are branches
  unsigned backward = 30;   // branches that aim backward
  unsigned predicate = 30;  // instructions with a non-default decoration
  unsigned parallel = 35;   // chance to extend a packet with another slot
  unsigned memory = 35;     // non-branch instructions drawn from memory ops
  unsigned smc = 60;        // chance a program patches its own text mid-run
  unsigned chaos = 3;       // chance a constrained operand escapes its bound
};

struct GenOptions {
  FeatureWeights weights;
  int min_packets = 10;
  int max_packets = 40;
  /// Data-memory traffic is confined to element indices [0, mem_bound).
  std::uint64_t mem_bound = 48;
  /// .word initializers emitted per non-fetch memory.
  int data_words = 12;
};

/// Static feature counters, accumulated across generated programs and
/// printed by `lisasim-fuzz --stats`.
struct Coverage {
  std::uint64_t programs = 0;
  std::uint64_t packets = 0;
  std::uint64_t instructions = 0;
  std::uint64_t parallel_packets = 0;
  std::uint64_t branches = 0;
  std::uint64_t backward_branches = 0;
  std::uint64_t cond_branches = 0;
  std::uint64_t predicated = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t smc_patches = 0;
  std::uint64_t delay_slot_fills = 0;

  Coverage& operator+=(const Coverage& other);
  std::string to_string() const;
};

struct GeneratedProgram {
  std::string source;    // assembly text (labels on every packet)
  Coverage coverage;     // static counters for this one program
  bool has_smc = false;  // program stores into its own text mid-run
};

/// Coverage-guided seed scheduling: reweight `base` toward the features
/// the cumulative Coverage has under-hit so far. For every feature whose
/// observed rate (e.g. branches per packet, SMC patches per program) falls
/// short of its weight, the weight is raised by the deficit, clamped to
/// 95% so no feature ever drowns out the rest. Deterministic in (base,
/// seen): a fuzzing campaign replays exactly from its seed range. With an
/// empty Coverage, returns `base` unchanged.
FeatureWeights schedule_weights(const FeatureWeights& base,
                                const Coverage& seen);

class ProgramGenerator {
 public:
  /// Analyze `model` (kept by reference; must outlive the generator).
  /// Throws SimError if the model has no renderable instructions.
  explicit ProgramGenerator(const Model& model);
  ~ProgramGenerator();
  ProgramGenerator(const ProgramGenerator&) = delete;
  ProgramGenerator& operator=(const ProgramGenerator&) = delete;

  /// Generate one program. Deterministic in (seed, opts).
  GeneratedProgram generate(std::uint64_t seed,
                            const GenOptions& opts = {}) const;

  /// Capability probes, derived from the machine description: whether the
  /// model has text-store/-load recipes (SMC), decoration groups with a
  /// neutral default (predication), PC-writing operations with a plain
  /// target field (aimable branches), and multi-slot fetch packets.
  bool supports_smc() const;
  bool supports_predication() const;
  bool supports_branches() const;
  bool supports_packets() const;
  std::size_t instruction_templates() const;

  /// Opaque analysis result (defined in progen.cpp; public so the
  /// file-local scanner/renderer helpers can name it).
  struct Analysis;

 private:
  std::unique_ptr<const Analysis> analysis_;
};

}  // namespace lisasim::fuzz
