#include "model/state.hpp"

namespace lisasim {

ProcessorState::ProcessorState(const Model& model) : model_(&model) {
  cells_.reserve(model.resources.size());
  std::size_t total = 0;
  for (const auto& r : model.resources) {
    cells_.push_back({total, r.size, r.type});
    total += r.size;
  }
  storage_.assign(total, 0);
  data_ = storage_.data();
  total_ = total;
  hooked_.assign(model.resources.size(), 0);
}

void ProcessorState::reset() {
  for (std::size_t i = 0; i < total_; ++i) data_[i * stride_] = 0;
}

void ProcessorState::restore_storage(const std::vector<std::int64_t>& snapshot) {
  if (snapshot.size() != total_)
    throw SimError("state snapshot has " + std::to_string(snapshot.size()) +
                   " elements, state has " + std::to_string(total_) +
                   " (checkpoint from a different model?)");
  for (std::size_t i = 0; i < total_; ++i) data_[i * stride_] = snapshot[i];
}

void ProcessorState::throw_out_of_bounds(ResourceId id,
                                         std::uint64_t index) const {
  const Resource& r = model_->resource(id);
  SimErrorContext context;
  context.resource = r.name;
  throw SimError("out-of-bounds access to resource '" + r.name + "': index " +
                     std::to_string(index) + ", size " +
                     std::to_string(r.size),
                 SimErrorKind::kFatal, std::move(context));
}

std::string ProcessorState::dump_nonzero() const {
  std::string out;
  for (const auto& r : model_->resources) {
    const Cell& cell = cells_[static_cast<std::size_t>(r.id)];
    for (std::uint64_t i = 0; i < cell.size; ++i) {
      const std::int64_t v = data_[(cell.offset + i) * stride_];
      if (v == 0) continue;
      out += r.name;
      if (r.is_array()) out += "[" + std::to_string(i) + "]";
      out += " = " + std::to_string(v) + "\n";
    }
  }
  return out;
}

}  // namespace lisasim
