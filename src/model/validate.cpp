#include "model/validate.hpp"

#include <functional>
#include <vector>

#include "support/bits.hpp"

namespace lisasim {

namespace {

class Validator {
 public:
  Validator(const Model& model, DiagnosticEngine& diags)
      : model_(&model), diags_(&diags) {}

  std::size_t run() {
    compute_fixed_masks();
    check_group_ambiguity();
    check_reachability();
    check_child_cycles();
    check_activation_stages();
    check_unbound_labels();
    check_syntax_coverage();
    check_resource_usage();
    return findings_;
  }

 private:
  void warn(const std::string& message) {
    diags_->warning({model_->name, 0, 0}, message);
    ++findings_;
  }
  void note(const std::string& message) {
    diags_->note({model_->name, 0, 0}, message);
    ++findings_;
  }

  // Fixed-bit mask/value of each operation's coding segment, including
  // nested single-alternative children (mirrors the decoder generator).
  struct OpMask {
    std::uint64_t mask = 0;
    std::uint64_t bits = 0;
  };

  void compute_fixed_masks() {
    masks_.assign(model_->operations.size(), {});
    std::vector<int> state(model_->operations.size(), 0);
    const std::function<OpMask(OperationId)> mask_of =
        [&](OperationId id) -> OpMask {
      auto& mark = state[static_cast<std::size_t>(id)];
      if (mark == 2) return masks_[static_cast<std::size_t>(id)];
      if (mark == 1) return {};
      mark = 1;
      const Operation& op = model_->op(id);
      OpMask result;
      unsigned cursor = op.coding_width;
      for (const auto& elem : op.coding) {
        cursor -= elem.width;
        switch (elem.kind) {
          case CodingElem::Kind::kBits:
            result.mask |= low_mask(elem.width) << cursor;
            result.bits |= elem.bits << cursor;
            break;
          case CodingElem::Kind::kField:
            break;
          case CodingElem::Kind::kRef: {
            const auto& child =
                op.children[static_cast<std::size_t>(elem.slot)];
            if (child.alternatives.size() == 1) {
              const OpMask sub = mask_of(child.alternatives.front());
              result.mask |= sub.mask << cursor;
              result.bits |= sub.bits << cursor;
            }
            break;
          }
        }
      }
      masks_[static_cast<std::size_t>(id)] = result;
      mark = 2;
      return result;
    };
    for (const auto& op : model_->operations) mask_of(op->id);
  }

  /// Two alternatives of one group whose fixed bits are compatible can both
  /// match the same word: the decoder resolves by declaration order, which
  /// is usually a model bug.
  void check_group_ambiguity() {
    for (const auto& op : model_->operations) {
      for (const auto& child : op->children) {
        if (child.alternatives.size() < 2) continue;
        for (std::size_t i = 0; i < child.alternatives.size(); ++i) {
          for (std::size_t j = i + 1; j < child.alternatives.size(); ++j) {
            const OpMask& a =
                masks_[static_cast<std::size_t>(child.alternatives[i])];
            const OpMask& b =
                masks_[static_cast<std::size_t>(child.alternatives[j])];
            const std::uint64_t common = a.mask & b.mask;
            if ((a.bits & common) == (b.bits & common)) {
              warn("group '" + child.name + "' of operation '" + op->name +
                   "': alternatives '" +
                   model_->op(child.alternatives[i]).name + "' and '" +
                   model_->op(child.alternatives[j]).name +
                   "' have compatible codings; decode order decides");
            }
          }
        }
      }
    }
  }

  void check_reachability() {
    if (model_->root < 0) {
      note("model has no 'instruction' operation: simulators and assembler "
           "are unavailable");
      return;
    }
    std::vector<bool> reachable(model_->operations.size(), false);
    const std::function<void(OperationId)> visit = [&](OperationId id) {
      if (reachable[static_cast<std::size_t>(id)]) return;
      reachable[static_cast<std::size_t>(id)] = true;
      for (const auto& child : model_->op(id).children)
        for (OperationId alt : child.alternatives) visit(alt);
    };
    visit(model_->root);
    for (const auto& op : model_->operations)
      if (!reachable[static_cast<std::size_t>(op->id)])
        warn("operation '" + op->name +
             "' is unreachable from 'instruction'");
  }

  /// Instance chains (coding children + activation-only instances) must be
  /// acyclic or decode-time materialization would recurse forever.
  void check_child_cycles() {
    enum { kWhite, kGray, kBlack };
    std::vector<int> color(model_->operations.size(), kWhite);
    bool reported = false;
    const std::function<void(OperationId)> visit = [&](OperationId id) {
      auto& c = color[static_cast<std::size_t>(id)];
      if (c != kWhite) return;
      c = kGray;
      for (const auto& child : model_->op(id).children) {
        // Groups in coding cannot cycle (sema checks coding recursion);
        // single-alternative instances are materialized unconditionally.
        if (child.alternatives.size() != 1) continue;
        const OperationId target = child.alternatives.front();
        if (color[static_cast<std::size_t>(target)] == kGray) {
          if (!reported)
            warn("instance cycle through operation '" +
                 model_->op(target).name + "'");
          reported = true;
          continue;
        }
        visit(target);
      }
      c = kBlack;
    };
    for (const auto& op : model_->operations) visit(op->id);
  }

  /// An ACTIVATION whose target is staged strictly earlier than the
  /// activator executes immediately in the activator's stage — legal, but
  /// usually a typo in the stage assignment.
  void check_activation_stages() {
    for (const auto& op : model_->operations) {
      if (op->stage < 0) continue;
      const std::function<void(const std::vector<OpItemPtr>&)> walk =
          [&](const std::vector<OpItemPtr>& items) {
            for (const auto& item : items) {
              switch (item->kind) {
                case OpItem::Kind::kActivation:
                  for (std::int32_t slot : item->activation_slots) {
                    const auto& child =
                        op->children[static_cast<std::size_t>(slot)];
                    for (OperationId alt : child.alternatives) {
                      const Operation& target = model_->op(alt);
                      if (target.stage >= 0 && target.stage < op->stage)
                        warn("operation '" + op->name + "' (stage " +
                             model_->pipeline.stages[static_cast<std::size_t>(
                                 op->stage)] +
                             ") activates '" + target.name +
                             "' of an earlier stage; it will run "
                             "immediately");
                    }
                  }
                  break;
                case OpItem::Kind::kIf:
                  walk(item->then_items);
                  walk(item->else_items);
                  break;
                case OpItem::Kind::kSwitch:
                  for (const auto& c : item->cases) walk(c.items);
                  break;
                default:
                  break;
              }
            }
          };
      walk(op->items);
    }
  }

  void check_unbound_labels() {
    for (const auto& op : model_->operations)
      for (const auto& label : op->labels)
        if (label.width == 0)
          warn("label '" + label.name + "' of operation '" + op->name +
               "' is never bound in CODING (always reads 0)");
  }

  /// A coding-bound group with several alternatives that does not appear in
  /// SYNTAX cannot be assembled (the assembler cannot choose).
  void check_syntax_coverage() {
    for (const auto& op : model_->operations) {
      if (!op->has_syntax) continue;
      for (std::size_t slot = 0; slot < op->children.size(); ++slot) {
        const auto& child = op->children[slot];
        if (!child.in_coding || child.alternatives.size() < 2) continue;
        bool in_syntax = false;
        for (const auto& elem : op->syntax)
          if (elem.kind == SyntaxElem::Kind::kChild &&
              elem.slot == static_cast<std::int32_t>(slot))
            in_syntax = true;
        if (!in_syntax)
          warn("group '" + child.name + "' of operation '" + op->name +
               "' is in CODING but not in SYNTAX; such instructions cannot "
               "be assembled");
      }
    }
  }

  void check_resource_usage() {
    std::vector<bool> used(model_->resources.size(), false);
    if (model_->pc >= 0) used[static_cast<std::size_t>(model_->pc)] = true;
    if (model_->fetch_memory >= 0)
      used[static_cast<std::size_t>(model_->fetch_memory)] = true;
    const std::function<void(const Expr&)> visit_expr = [&](const Expr& e) {
      if ((e.kind == ExprKind::kSym || e.kind == ExprKind::kIndex) &&
          e.sym.kind == SymKind::kResource)
        used[static_cast<std::size_t>(e.sym.index)] = true;
      for (const auto& c : e.children) visit_expr(*c);
    };
    const std::function<void(const Stmt&)> visit_stmt = [&](const Stmt& s) {
      if (s.lhs) visit_expr(*s.lhs);
      if (s.value) visit_expr(*s.value);
      for (const auto& sub : s.then_body) visit_stmt(*sub);
      for (const auto& sub : s.else_body) visit_stmt(*sub);
    };
    const std::function<void(const std::vector<OpItemPtr>&)> walk =
        [&](const std::vector<OpItemPtr>& items) {
          for (const auto& item : items) {
            for (const auto& s : item->stmts) visit_stmt(*s);
            if (item->expr) visit_expr(*item->expr);
            if (item->cond) visit_expr(*item->cond);
            walk(item->then_items);
            walk(item->else_items);
            for (const auto& c : item->cases) {
              if (c.match) visit_expr(*c.match);
              walk(c.items);
            }
          }
        };
    for (const auto& op : model_->operations) walk(op->items);
    for (const auto& r : model_->resources)
      if (!used[static_cast<std::size_t>(r.id)])
        note("resource '" + r.name + "' is never referenced by any behavior");
  }

  const Model* model_;
  DiagnosticEngine* diags_;
  std::vector<OpMask> masks_;
  std::size_t findings_ = 0;
};

}  // namespace

std::size_t validate_model(const Model& model, DiagnosticEngine& diags) {
  return Validator(model, diags).run();
}

}  // namespace lisasim
