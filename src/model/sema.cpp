#include "model/sema.hpp"

#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "lisa/parser.hpp"

namespace lisasim {

namespace {

class Sema {
 public:
  Sema(const ast::ModelAst& ast, DiagnosticEngine& diags)
      : ast_(ast), diags_(diags), model_(std::make_unique<Model>()) {}

  std::unique_ptr<Model> run() {
    collect_resources();
    collect_pipeline();
    create_operation_shells();
    for (std::size_t i = 0; i < ast_.operations.size(); ++i)
      resolve_operation(ast_.operations[i],
                        *model_->operations[i]);
    compute_coding_widths();
    resolve_model_roots();
    if (diags_.has_errors()) return nullptr;
    return std::move(model_);
  }

 private:
  // ---------------------------------------------------------------- resources

  void collect_resources() {
    model_->name = ast_.name;
    model_->fetch = ast_.fetch;
    for (const auto& decl : ast_.resources) {
      if (res_ids_.contains(decl.name)) {
        diags_.error(decl.loc, "duplicate resource '" + decl.name + "'");
        continue;
      }
      Resource r;
      r.id = static_cast<ResourceId>(model_->resources.size());
      r.kind = decl.kind;
      r.type = decl.type;
      r.name = decl.name;
      r.name_id = model_->interner().intern(decl.name);
      r.size = decl.kind == ast::ResourceKind::kScalar ||
                       decl.kind == ast::ResourceKind::kProgramCounter
                   ? 1
                   : decl.size;
      if (r.is_array() && r.size == 0)
        diags_.error(decl.loc, "resource '" + decl.name + "' has size 0");
      if (decl.kind == ast::ResourceKind::kProgramCounter) {
        if (model_->pc >= 0)
          diags_.error(decl.loc, "multiple PROGRAM_COUNTER resources");
        model_->pc = r.id;
      }
      res_ids_.emplace(decl.name, r.id);
      model_->resources.push_back(std::move(r));
    }
  }

  void collect_pipeline() {
    if (ast_.pipelines.empty()) {
      // A degenerate single-stage pipeline keeps the engine uniform for
      // models that only exercise the front end (parser/assembler tests).
      model_->pipeline.name = "pipe";
      model_->pipeline.stages = {"EX"};
      return;
    }
    if (ast_.pipelines.size() > 1)
      diags_.error(ast_.pipelines[1].loc,
                   "only a single pipeline is supported");
    const auto& p = ast_.pipelines.front();
    if (p.stages.empty())
      diags_.error(p.loc, "pipeline '" + p.name + "' has no stages");
    std::unordered_set<std::string> seen;
    for (const auto& s : p.stages)
      if (!seen.insert(s).second)
        diags_.error(p.loc, "duplicate pipeline stage '" + s + "'");
    model_->pipeline.name = p.name;
    model_->pipeline.stages = p.stages;
  }

  // --------------------------------------------------------------- operations

  void create_operation_shells() {
    for (const auto& op_ast : ast_.operations) {
      // Duplicates still get a shell (the resolve pass walks AST and shell
      // lists in lockstep); name lookup keeps the first definition.
      if (op_ids_.contains(op_ast.name))
        diags_.error(op_ast.loc, "duplicate operation '" + op_ast.name + "'");
      auto op = std::make_unique<Operation>();
      op->id = static_cast<OperationId>(model_->operations.size());
      op->name = op_ast.name;
      op->name_id = model_->interner().intern(op_ast.name);
      op_ids_.emplace(op_ast.name, op->id);
      model_->operations.push_back(std::move(op));
    }
  }

  void resolve_operation(const ast::OperationAst& op_ast, Operation& op) {
    if (op_ast.has_stage) {
      if (!model_->pipeline.name.empty() &&
          op_ast.pipe != model_->pipeline.name)
        diags_.error(op_ast.loc, "unknown pipeline '" + op_ast.pipe + "'");
      op.stage = model_->pipeline.stage_index(op_ast.stage);
      if (op.stage < 0)
        diags_.error(op_ast.loc,
                     "unknown pipeline stage '" + op_ast.stage + "'");
    }

    resolve_declares(op_ast, op);
    cur_op_ = &op;
    resolve_body(op_ast.body, op.items, op, /*top_level=*/true);
    cur_op_ = nullptr;
  }

  void resolve_declares(const ast::OperationAst& op_ast, Operation& op) {
    std::unordered_set<std::string> names;
    for (const auto& item : op_ast.declares) {
      if (!names.insert(item.name).second) {
        diags_.error(item.loc,
                     "duplicate declaration '" + item.name + "' in operation '" +
                         op.name + "'");
        continue;
      }
      switch (item.kind) {
        case ast::DeclareItem::Kind::kLabel: {
          LabelDecl label;
          label.name = item.name;
          label.name_id = model_->interner().intern(item.name);
          op.labels.push_back(std::move(label));
          break;
        }
        case ast::DeclareItem::Kind::kReference: {
          RefDecl ref;
          ref.name = item.name;
          ref.name_id = model_->interner().intern(item.name);
          op.references.push_back(std::move(ref));
          break;
        }
        case ast::DeclareItem::Kind::kGroup:
        case ast::DeclareItem::Kind::kInstance: {
          ChildDecl child;
          child.name = item.name;
          child.name_id = model_->interner().intern(item.name);
          child.is_group = item.kind == ast::DeclareItem::Kind::kGroup;
          if (item.targets.empty())
            diags_.error(item.loc, "'" + item.name + "' has no target");
          for (const auto& target : item.targets) {
            auto it = op_ids_.find(target);
            if (it == op_ids_.end()) {
              diags_.error(item.loc, "unknown operation '" + target +
                                         "' in declaration of '" + item.name +
                                         "'");
              continue;
            }
            child.alternatives.push_back(it->second);
          }
          op.children.push_back(std::move(child));
          break;
        }
      }
    }
  }

  void resolve_body(const ast::OpBody& body, std::vector<OpItemPtr>& out,
                    Operation& op, bool top_level) {
    for (const auto& item : body.items) {
      std::visit(
          [&](const auto& sec) {
            resolve_section(sec, out, op, top_level);
          },
          item);
    }
  }

  void resolve_section(const ast::CodingSec& sec, std::vector<OpItemPtr>&,
                       Operation& op, bool top_level) {
    if (!top_level) {
      diags_.error(sec.loc,
                   "CODING inside coding-time conditionals is not supported; "
                   "move the conditional into BEHAVIOR/ACTIVATION/EXPRESSION");
      return;
    }
    if (op.has_coding) {
      diags_.error(sec.loc, "multiple CODING sections in operation '" +
                                op.name + "'");
      return;
    }
    op.has_coding = true;
    for (const auto& elem : sec.elems) {
      CodingElem out_elem;
      switch (elem.kind) {
        case ast::CodingElem::Kind::kBits:
          out_elem.kind = CodingElem::Kind::kBits;
          out_elem.bits = elem.bits;
          out_elem.width = elem.width;
          break;
        case ast::CodingElem::Kind::kField: {
          const StringId id = model_->interner().intern(elem.name);
          const int slot = op.label_slot(id);
          if (slot < 0) {
            diags_.error(elem.loc, "coding field '" + elem.name +
                                       "' is not a declared LABEL");
            continue;
          }
          if (op.labels[static_cast<std::size_t>(slot)].width != 0) {
            diags_.error(elem.loc,
                         "label '" + elem.name + "' bound twice in CODING");
            continue;
          }
          op.labels[static_cast<std::size_t>(slot)].width = elem.width;
          out_elem.kind = CodingElem::Kind::kField;
          out_elem.width = elem.width;
          out_elem.slot = slot;
          break;
        }
        case ast::CodingElem::Kind::kRef: {
          const StringId id = model_->interner().intern(elem.name);
          const int slot = op.child_slot(id);
          if (slot < 0) {
            diags_.error(elem.loc, "coding reference '" + elem.name +
                                       "' is not a declared GROUP/INSTANCE");
            continue;
          }
          op.children[static_cast<std::size_t>(slot)].in_coding = true;
          out_elem.kind = CodingElem::Kind::kRef;
          out_elem.slot = slot;
          break;
        }
      }
      op.coding.push_back(out_elem);
    }
  }

  void resolve_section(const ast::SyntaxSec& sec, std::vector<OpItemPtr>&,
                       Operation& op, bool top_level) {
    if (!top_level) {
      diags_.error(sec.loc,
                   "SYNTAX inside coding-time conditionals is not supported");
      return;
    }
    if (op.has_syntax) {
      diags_.error(sec.loc, "multiple SYNTAX sections in operation '" +
                                op.name + "'");
      return;
    }
    op.has_syntax = true;
    for (const auto& elem : sec.elems) {
      SyntaxElem out_elem;
      if (elem.kind == ast::SyntaxElem::Kind::kLiteral) {
        out_elem.kind = SyntaxElem::Kind::kLiteral;
        out_elem.text = elem.text;
      } else {
        const StringId id = model_->interner().intern(elem.text);
        if (int slot = op.label_slot(id); slot >= 0) {
          out_elem.kind = SyntaxElem::Kind::kField;
          out_elem.slot = slot;
        } else if (slot = op.child_slot(id); slot >= 0) {
          out_elem.kind = SyntaxElem::Kind::kChild;
          out_elem.slot = slot;
        } else {
          diags_.error(elem.loc, "syntax reference '" + elem.text +
                                     "' is not a LABEL or GROUP/INSTANCE");
          continue;
        }
      }
      op.syntax.push_back(std::move(out_elem));
    }
  }

  void resolve_section(const ast::BehaviorSec& sec,
                       std::vector<OpItemPtr>& out, Operation& op, bool) {
    auto item = std::make_unique<OpItem>();
    item->kind = OpItem::Kind::kBehavior;
    item->stmts = clone_stmts(sec.stmts);
    ScopeStack scopes;
    scopes.emplace_back();
    for (auto& stmt : item->stmts) resolve_stmt(*stmt, op, scopes);
    op.has_behavior = true;
    out.push_back(std::move(item));
  }

  void resolve_section(const ast::ActivationSec& sec,
                       std::vector<OpItemPtr>& out, Operation& op, bool) {
    auto item = std::make_unique<OpItem>();
    item->kind = OpItem::Kind::kActivation;
    for (const auto& target : sec.targets) {
      const StringId id = model_->interner().intern(target);
      int slot = op.child_slot(id);
      if (slot < 0) {
        // Activating an operation that was not declared creates an implicit
        // INSTANCE child — keeps models terse for pure timing chains like
        // load write-back operations.
        auto it = op_ids_.find(target);
        if (it == op_ids_.end()) {
          diags_.error(sec.loc, "unknown activation target '" + target + "'");
          continue;
        }
        ChildDecl child;
        child.name = target;
        child.name_id = id;
        child.is_group = false;
        child.alternatives = {it->second};
        slot = static_cast<int>(op.children.size());
        op.children.push_back(std::move(child));
      }
      item->activation_slots.push_back(slot);
    }
    out.push_back(std::move(item));
  }

  void resolve_section(const ast::ExpressionSec& sec,
                       std::vector<OpItemPtr>& out, Operation& op, bool) {
    auto item = std::make_unique<OpItem>();
    item->kind = OpItem::Kind::kExpression;
    item->expr = sec.expr ? sec.expr->clone() : Expr::make_int(0);
    ScopeStack scopes;
    scopes.emplace_back();
    resolve_expr(*item->expr, op, scopes);
    op.has_expression = true;
    out.push_back(std::move(item));
  }

  void resolve_section(const std::unique_ptr<ast::CondSections>& sec,
                       std::vector<OpItemPtr>& out, Operation& op, bool) {
    auto item = std::make_unique<OpItem>();
    item->kind = OpItem::Kind::kIf;
    item->cond = sec->cond ? sec->cond->clone() : Expr::make_int(0);
    ScopeStack scopes;
    scopes.emplace_back();
    resolve_expr(*item->cond, op, scopes);
    resolve_body(sec->then_body, item->then_items, op, /*top_level=*/false);
    resolve_body(sec->else_body, item->else_items, op, /*top_level=*/false);
    out.push_back(std::move(item));
  }

  void resolve_section(const std::unique_ptr<ast::SwitchSections>& sec,
                       std::vector<OpItemPtr>& out, Operation& op, bool) {
    auto item = std::make_unique<OpItem>();
    item->kind = OpItem::Kind::kSwitch;
    item->cond = sec->subject ? sec->subject->clone() : Expr::make_int(0);
    ScopeStack scopes;
    scopes.emplace_back();
    resolve_expr(*item->cond, op, scopes);
    bool saw_default = false;
    for (const auto& c : sec->cases) {
      OpItem::Case out_case;
      out_case.is_default = c.is_default;
      if (c.is_default) {
        if (saw_default) diags_.error(c.loc, "multiple DEFAULT cases");
        saw_default = true;
      } else {
        out_case.match = c.match ? c.match->clone() : Expr::make_int(0);
        resolve_expr(*out_case.match, op, scopes);
      }
      resolve_body(c.body, out_case.items, op, /*top_level=*/false);
      item->cases.push_back(std::move(out_case));
    }
    out.push_back(std::move(item));
  }

  // ----------------------------------------------------------- behavior code

  using ScopeStack = std::vector<std::unordered_map<std::string, int>>;

  void resolve_stmt(Stmt& stmt, Operation& op, ScopeStack& scopes) {
    switch (stmt.kind) {
      case StmtKind::kLocalDecl: {
        if (stmt.value) resolve_expr(*stmt.value, op, scopes);
        stmt.local_slot = op.num_locals++;
        scopes.back()[stmt.name] = stmt.local_slot;
        break;
      }
      case StmtKind::kAssign:
        resolve_expr(*stmt.lhs, op, scopes);
        resolve_expr(*stmt.value, op, scopes);
        check_lvalue(*stmt.lhs);
        break;
      case StmtKind::kExpr:
        resolve_expr(*stmt.value, op, scopes);
        break;
      case StmtKind::kIf: {
        resolve_expr(*stmt.value, op, scopes);
        scopes.emplace_back();
        for (auto& s : stmt.then_body) resolve_stmt(*s, op, scopes);
        scopes.pop_back();
        scopes.emplace_back();
        for (auto& s : stmt.else_body) resolve_stmt(*s, op, scopes);
        scopes.pop_back();
        break;
      }
    }
  }

  void check_lvalue(const Expr& lhs) {
    switch (lhs.kind) {
      case ExprKind::kIndex:
        return;  // resource element, checked during resolution
      case ExprKind::kSym:
        switch (lhs.sym.kind) {
          case SymKind::kLocal:
          case SymKind::kChild:
          case SymKind::kUpward:
            return;
          case SymKind::kResource: {
            const auto& r = model_->resource(lhs.sym.index);
            if (r.is_array())
              diags_.error(lhs.loc, "cannot assign to whole array resource '" +
                                        r.name + "'");
            return;
          }
          case SymKind::kField:
            diags_.error(lhs.loc,
                         "coding field '" + lhs.sym.name + "' is read-only");
            return;
          default:
            break;
        }
        [[fallthrough]];
      default:
        diags_.error(lhs.loc, "invalid assignment target");
    }
  }

  void resolve_expr(Expr& expr, Operation& op, ScopeStack& scopes) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        return;
      case ExprKind::kSym:
        resolve_sym(expr.sym, expr.loc, op, scopes);
        if (expr.sym.kind == SymKind::kResource &&
            model_->resource(expr.sym.index).is_array())
          diags_.error(expr.loc, "array resource '" + expr.sym.name +
                                     "' must be indexed");
        return;
      case ExprKind::kIndex:
        resolve_sym(expr.sym, expr.loc, op, scopes);
        if (expr.sym.kind == SymKind::kResource) {
          if (!model_->resource(expr.sym.index).is_array())
            diags_.error(expr.loc, "scalar resource '" + expr.sym.name +
                                       "' cannot be indexed");
        } else if (expr.sym.kind != SymKind::kUnresolved) {
          diags_.error(expr.loc,
                       "only memory/register-file resources can be indexed");
        }
        resolve_expr(*expr.children[0], op, scopes);
        return;
      case ExprKind::kUnary:
      case ExprKind::kBinary:
      case ExprKind::kTernary:
        for (auto& c : expr.children) resolve_expr(*c, op, scopes);
        return;
      case ExprKind::kCall: {
        expr.intrinsic = intrinsic_by_name(expr.callee);
        if (expr.intrinsic == Intrinsic::kNone) {
          diags_.error(expr.loc, "unknown intrinsic '" + expr.callee + "'");
        } else if (static_cast<int>(expr.children.size()) !=
                   intrinsic_arity(expr.intrinsic)) {
          diags_.error(expr.loc,
                       "intrinsic '" + expr.callee + "' expects " +
                           std::to_string(intrinsic_arity(expr.intrinsic)) +
                           " argument(s)");
        }
        for (auto& c : expr.children) resolve_expr(*c, op, scopes);
        return;
      }
    }
  }

  void resolve_sym(SymRef& sym, const SourceLoc& loc, Operation& op,
                   ScopeStack& scopes) {
    sym.name_id = model_->interner().intern(sym.name);
    // 1. local variables, innermost scope first
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      auto found = it->find(sym.name);
      if (found != it->end()) {
        sym.kind = SymKind::kLocal;
        sym.index = found->second;
        return;
      }
    }
    // 2. coding fields of this operation
    if (int slot = op.label_slot(sym.name_id); slot >= 0) {
      sym.kind = SymKind::kField;
      sym.index = slot;
      return;
    }
    // 3. child operations (groups/instances)
    if (int slot = op.child_slot(sym.name_id); slot >= 0) {
      sym.kind = SymKind::kChild;
      sym.index = slot;
      return;
    }
    // 4. REFERENCE declarations: resolved upward at evaluation time
    for (const auto& ref : op.references) {
      if (ref.name_id == sym.name_id) {
        sym.kind = SymKind::kUpward;
        sym.index = -1;
        return;
      }
    }
    // 5. model resources
    if (auto it = res_ids_.find(sym.name); it != res_ids_.end()) {
      sym.kind = SymKind::kResource;
      sym.index = it->second;
      return;
    }
    // 6. operation names (coding-time comparisons: `mode == short`)
    if (auto it = op_ids_.find(sym.name); it != op_ids_.end()) {
      sym.kind = SymKind::kEnumOp;
      sym.index = it->second;
      return;
    }
    diags_.error(loc, "undeclared identifier '" + sym.name +
                          "' in operation '" + op.name + "'");
  }

  // ------------------------------------------------------------ coding widths

  void compute_coding_widths() {
    enum class Mark : std::uint8_t { kUnvisited, kInProgress, kDone };
    std::vector<Mark> marks(model_->operations.size(), Mark::kUnvisited);

    // Explicit recursion via lambda; group alternatives must agree in width.
    auto width_of = [&](auto&& self, OperationId id) -> unsigned {
      auto& op = *model_->operations[static_cast<std::size_t>(id)];
      auto& mark = marks[static_cast<std::size_t>(id)];
      if (mark == Mark::kDone) return op.coding_width;
      if (mark == Mark::kInProgress) {
        diags_.error({}, "recursive CODING through operation '" + op.name +
                             "'");
        return 0;
      }
      mark = Mark::kInProgress;
      unsigned total = 0;
      for (auto& elem : op.coding) {
        switch (elem.kind) {
          case CodingElem::Kind::kBits:
          case CodingElem::Kind::kField:
            total += elem.width;
            break;
          case CodingElem::Kind::kRef: {
            auto& child = op.children[static_cast<std::size_t>(elem.slot)];
            unsigned child_width = 0;
            bool first = true;
            for (OperationId alt : child.alternatives) {
              const unsigned w = self(self, alt);
              const auto& alt_op =
                  *model_->operations[static_cast<std::size_t>(alt)];
              if (!alt_op.has_coding)
                diags_.error({}, "operation '" + alt_op.name +
                                     "' is used in CODING of '" + op.name +
                                     "' but has no CODING section");
              if (first) {
                child_width = w;
                first = false;
              } else if (w != child_width) {
                diags_.error({}, "alternatives of group '" + child.name +
                                     "' in operation '" + op.name +
                                     "' have different coding widths");
              }
            }
            elem.width = child_width;
            total += child_width;
            break;
          }
        }
      }
      op.coding_width = total;
      mark = Mark::kDone;
      return total;
    };

    for (const auto& op : model_->operations) width_of(width_of, op->id);
  }

  // ------------------------------------------------------------- model roots

  void resolve_model_roots() {
    if (const Operation* root = model_->operation_by_name("instruction")) {
      model_->root = root->id;
      if (root->has_coding && root->coding_width != model_->fetch.word_bits)
        diags_.error({}, "operation 'instruction' coding width (" +
                             std::to_string(root->coding_width) +
                             ") does not match FETCH WORD (" +
                             std::to_string(model_->fetch.word_bits) + ")");
    }

    if (!model_->fetch.memory.empty()) {
      const Resource* mem = model_->resource_by_name(model_->fetch.memory);
      if (!mem || mem->kind != ast::ResourceKind::kMemory)
        diags_.error(model_->fetch.loc, "FETCH MEMORY '" +
                                            model_->fetch.memory +
                                            "' is not a declared MEMORY");
      else
        model_->fetch_memory = mem->id;
    } else {
      // Default: the unique memory, if there is exactly one.
      ResourceId only = -1;
      int count = 0;
      for (const auto& r : model_->resources) {
        if (r.kind == ast::ResourceKind::kMemory) {
          only = r.id;
          ++count;
        }
      }
      if (count == 1) model_->fetch_memory = only;
    }

    if (model_->fetch.packet_max == 0)
      diags_.error(model_->fetch.loc, "PACKET size must be >= 1");
    if (model_->fetch.packet_max > 1 &&
        (model_->fetch.parallel_bit < 0 ||
         model_->fetch.parallel_bit >=
             static_cast<int>(model_->fetch.word_bits)))
      diags_.error(model_->fetch.loc,
                   "PACKET requires a PARALLEL_BIT within the word");
  }

  const ast::ModelAst& ast_;
  DiagnosticEngine& diags_;
  std::unique_ptr<Model> model_;
  std::unordered_map<std::string, OperationId> op_ids_;
  std::unordered_map<std::string, ResourceId> res_ids_;
  Operation* cur_op_ = nullptr;
};

}  // namespace

std::unique_ptr<Model> analyze_model(const ast::ModelAst& ast,
                                     DiagnosticEngine& diags) {
  Sema sema(ast, diags);
  return sema.run();
}

std::unique_ptr<Model> compile_model_source(std::string_view source,
                                            std::string file,
                                            DiagnosticEngine& diags) {
  const ast::ModelAst ast = parse_model_source(source, std::move(file), diags);
  if (diags.has_errors()) return nullptr;
  return analyze_model(ast, diags);
}

std::unique_ptr<Model> compile_model_source_or_throw(std::string_view source,
                                                     std::string file) {
  DiagnosticEngine diags;
  auto model = compile_model_source(source, std::move(file), diags);
  if (!model) throw SimError("model compilation failed:\n" + diags.render());
  return model;
}

}  // namespace lisasim
