#include "model/database.hpp"

#include <fstream>
#include <sstream>

#include "model/sema.hpp"

namespace lisasim {

namespace {

std::string escape_string(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string bits_to_string(std::uint64_t bits, unsigned width) {
  std::string out = "0b";
  for (unsigned i = width; i-- > 0;)
    out.push_back((bits >> i) & 1 ? '1' : '0');
  return out;
}

class Printer {
 public:
  explicit Printer(const Model& model) : model_(model) {}

  std::string print() {
    out_ << "MODEL " << model_.name << ";\n\n";
    print_resources();
    print_fetch();
    for (const auto& op : model_.operations) print_operation(*op);
    return out_.str();
  }

 private:
  void print_resources() {
    out_ << "RESOURCE {\n";
    for (const auto& r : model_.resources) {
      out_ << "  ";
      switch (r.kind) {
        case ast::ResourceKind::kScalar:
          out_ << r.type.to_string() << " " << r.name << ";\n";
          break;
        case ast::ResourceKind::kRegisterFile:
          out_ << "REGISTER " << r.type.to_string() << " " << r.name << "["
               << r.size << "];\n";
          break;
        case ast::ResourceKind::kMemory:
          out_ << "MEMORY " << r.type.to_string() << " " << r.name << "["
               << r.size << "];\n";
          break;
        case ast::ResourceKind::kProgramCounter:
          out_ << "PROGRAM_COUNTER " << r.type.to_string() << " " << r.name
               << ";\n";
          break;
      }
    }
    out_ << "  PIPELINE " << model_.pipeline.name << " = { ";
    for (std::size_t i = 0; i < model_.pipeline.stages.size(); ++i) {
      if (i) out_ << "; ";
      out_ << model_.pipeline.stages[i];
    }
    out_ << " };\n";
    out_ << "}\n\n";
  }

  void print_fetch() {
    out_ << "FETCH {\n";
    out_ << "  WORD " << model_.fetch.word_bits << ";\n";
    if (model_.fetch.packet_max > 1)
      out_ << "  PACKET " << model_.fetch.packet_max << " PARALLEL_BIT "
           << model_.fetch.parallel_bit << ";\n";
    if (model_.fetch_memory >= 0)
      out_ << "  MEMORY " << model_.resource(model_.fetch_memory).name
           << ";\n";
    out_ << "}\n\n";
  }

  void print_operation(const Operation& op) {
    out_ << "OPERATION " << op.name;
    if (op.stage >= 0)
      out_ << " IN " << model_.pipeline.name << "."
           << model_.pipeline.stages[static_cast<std::size_t>(op.stage)];
    out_ << " {\n";
    print_declares(op);
    if (op.has_coding) print_coding(op);
    if (op.has_syntax) print_syntax(op);
    for (const auto& item : op.items) print_item(op, *item, 1);
    out_ << "}\n\n";
  }

  void print_declares(const Operation& op) {
    // Implicit activation-only instances (created by sema) are re-declared
    // explicitly; re-analysis will then simply find them already declared.
    if (op.labels.empty() && op.children.empty() && op.references.empty())
      return;
    out_ << "  DECLARE {\n";
    for (const auto& label : op.labels)
      out_ << "    LABEL " << label.name << ";\n";
    for (const auto& ref : op.references)
      out_ << "    REFERENCE " << ref.name << ";\n";
    for (const auto& child : op.children) {
      if (child.is_group) {
        out_ << "    GROUP " << child.name << " = { ";
        for (std::size_t i = 0; i < child.alternatives.size(); ++i) {
          if (i) out_ << " || ";
          out_ << model_.op(child.alternatives[i]).name;
        }
        out_ << " };\n";
      } else {
        out_ << "    INSTANCE " << child.name << " = "
             << model_.op(child.alternatives.front()).name << ";\n";
      }
    }
    out_ << "  }\n";
  }

  void print_coding(const Operation& op) {
    out_ << "  CODING { ";
    for (const auto& elem : op.coding) {
      switch (elem.kind) {
        case CodingElem::Kind::kBits:
          out_ << bits_to_string(elem.bits, elem.width) << " ";
          break;
        case CodingElem::Kind::kField:
          out_ << op.labels[static_cast<std::size_t>(elem.slot)].name
               << "=0bx[" << elem.width << "] ";
          break;
        case CodingElem::Kind::kRef:
          out_ << op.children[static_cast<std::size_t>(elem.slot)].name
               << " ";
          break;
      }
    }
    out_ << "}\n";
  }

  void print_syntax(const Operation& op) {
    out_ << "  SYNTAX { ";
    for (const auto& elem : op.syntax) {
      switch (elem.kind) {
        case SyntaxElem::Kind::kLiteral:
          out_ << "\"" << escape_string(elem.text) << "\" ";
          break;
        case SyntaxElem::Kind::kField:
          out_ << op.labels[static_cast<std::size_t>(elem.slot)].name << " ";
          break;
        case SyntaxElem::Kind::kChild:
          out_ << op.children[static_cast<std::size_t>(elem.slot)].name
               << " ";
          break;
      }
    }
    out_ << "}\n";
  }

  void indent(int level) {
    for (int i = 0; i < level; ++i) out_ << "  ";
  }

  void print_item(const Operation& op, const OpItem& item, int level) {
    switch (item.kind) {
      case OpItem::Kind::kBehavior:
        indent(level);
        out_ << "BEHAVIOR {\n";
        for (const auto& s : item.stmts) out_ << s->to_string(level + 1);
        indent(level);
        out_ << "}\n";
        break;
      case OpItem::Kind::kActivation:
        indent(level);
        out_ << "ACTIVATION { ";
        for (std::size_t i = 0; i < item.activation_slots.size(); ++i) {
          if (i) out_ << ", ";
          out_ << op.children[static_cast<std::size_t>(
                                  item.activation_slots[i])]
                      .name;
        }
        out_ << " }\n";
        break;
      case OpItem::Kind::kExpression:
        indent(level);
        out_ << "EXPRESSION { " << item.expr->to_string() << " }\n";
        break;
      case OpItem::Kind::kIf:
        indent(level);
        out_ << "IF (" << item.cond->to_string() << ") {\n";
        for (const auto& sub : item.then_items)
          print_item(op, *sub, level + 1);
        indent(level);
        out_ << "}";
        if (!item.else_items.empty()) {
          out_ << " ELSE {\n";
          for (const auto& sub : item.else_items)
            print_item(op, *sub, level + 1);
          indent(level);
          out_ << "}";
        }
        out_ << "\n";
        break;
      case OpItem::Kind::kSwitch:
        indent(level);
        out_ << "SWITCH (" << item.cond->to_string() << ") {\n";
        for (const auto& c : item.cases) {
          indent(level + 1);
          if (c.is_default)
            out_ << "DEFAULT: {\n";
          else
            out_ << "CASE " << c.match->to_string() << ": {\n";
          for (const auto& sub : c.items) print_item(op, *sub, level + 2);
          indent(level + 1);
          out_ << "}\n";
        }
        indent(level);
        out_ << "}\n";
        break;
    }
  }

  const Model& model_;
  std::ostringstream out_;
};

}  // namespace

std::string dump_model(const Model& model) { return Printer(model).print(); }

std::unique_ptr<Model> load_model(std::string_view text,
                                  DiagnosticEngine& diags) {
  return compile_model_source(text, "<database>", diags);
}

void save_model_to_file(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw SimError("cannot open '" + path + "' for writing");
  out << dump_model(model);
  if (!out) throw SimError("failed writing model data base to '" + path + "'");
}

std::unique_ptr<Model> load_model_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SimError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  DiagnosticEngine diags;
  auto model = load_model(buffer.str(), diags);
  if (!model)
    throw SimError("model data base '" + path + "' is invalid:\n" +
                   diags.render());
  return model;
}

}  // namespace lisasim
